package bookx

import (
	"testing"

	"courserank/internal/catalog"
	"courserank/internal/relation"
)

func fixture(t *testing.T) (*Service, int64, int64) {
	t.Helper()
	db := relation.NewDB()
	cat, err := catalog.Setup(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDepartment(catalog.Department{ID: "CS", Name: "CS", School: "Engineering"}); err != nil {
		t.Fatal(err)
	}
	cid, _ := cat.AddCourse(catalog.Course{DepID: "CS", Number: "145", Title: "Databases", Units: 4})
	bid, _ := cat.ReportTextbook(catalog.Textbook{CourseID: cid, Title: "Database Systems", Author: "GMUW", ReportedBy: 1})
	svc, err := Setup(db, cat)
	if err != nil {
		t.Fatal(err)
	}
	return svc, cid, bid
}

func TestPostValidation(t *testing.T) {
	svc, _, bid := fixture(t)
	if _, err := svc.Post(Listing{BookID: bid, SuID: 1, Side: "steal", Price: 10}); err == nil {
		t.Error("bad side should fail")
	}
	if _, err := svc.Post(Listing{BookID: bid, SuID: 1, Side: Buy, Price: -1}); err == nil {
		t.Error("negative price should fail")
	}
	id, err := svc.Post(Listing{BookID: bid, SuID: 1, Side: Sell, Price: 40})
	if err != nil || id == 0 {
		t.Fatalf("post: %v", err)
	}
	if got := svc.Active(bid); len(got) != 1 || got[0].Side != Sell {
		t.Errorf("Active = %v", got)
	}
}

func TestMatching(t *testing.T) {
	svc, _, bid := fixture(t)
	// Sellers at 30, 45, 60; buyers with budgets 50 and 35.
	svc.Post(Listing{BookID: bid, SuID: 10, Side: Sell, Price: 30})
	svc.Post(Listing{BookID: bid, SuID: 11, Side: Sell, Price: 45})
	svc.Post(Listing{BookID: bid, SuID: 12, Side: Sell, Price: 60})
	svc.Post(Listing{BookID: bid, SuID: 20, Side: Buy, Price: 50})
	svc.Post(Listing{BookID: bid, SuID: 21, Side: Buy, Price: 35})
	// Highest-budget buyer (20) takes the cheapest sell (30); buyer 21
	// cannot afford the remaining 45 and 60, so exactly one match forms.
	matches := svc.MatchBook(bid)
	if len(matches) != 1 {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].Buy.SuID != 20 || matches[0].Sell.Price != 30 {
		t.Errorf("match0 = %+v", matches[0])
	}
	// A second seller at 33 lets buyer 21 in.
	svc.Post(Listing{BookID: bid, SuID: 13, Side: Sell, Price: 33})
	matches = svc.MatchBook(bid)
	if len(matches) != 2 || matches[1].Buy.SuID != 21 || matches[1].Sell.Price != 33 {
		t.Fatalf("after new seller: %+v", matches)
	}
}

func TestMatchingBudgets(t *testing.T) {
	svc, _, bid := fixture(t)
	svc.Post(Listing{BookID: bid, SuID: 10, Side: Sell, Price: 30})
	svc.Post(Listing{BookID: bid, SuID: 20, Side: Buy, Price: 25})
	if m := svc.MatchBook(bid); len(m) != 0 {
		t.Errorf("unaffordable sell matched: %+v", m)
	}
	// Self-trade is excluded.
	svc.Post(Listing{BookID: bid, SuID: 10, Side: Buy, Price: 100})
	m := svc.MatchBook(bid)
	if len(m) != 0 {
		t.Errorf("self trade: %+v", m)
	}
}

func TestSettleClosesBoth(t *testing.T) {
	svc, cid, bid := fixture(t)
	svc.Post(Listing{BookID: bid, SuID: 10, Side: Sell, Price: 30})
	svc.Post(Listing{BookID: bid, SuID: 20, Side: Buy, Price: 50})
	matches := svc.ForCourse(cid)
	if len(matches) != 1 {
		t.Fatalf("ForCourse = %+v", matches)
	}
	if err := svc.Settle(matches[0]); err != nil {
		t.Fatal(err)
	}
	if got := svc.Active(bid); len(got) != 0 {
		t.Errorf("after settle: %v", got)
	}
	if len(svc.MatchBook(bid)) != 0 {
		t.Error("settled listings must not rematch")
	}
	if err := svc.Close(999); err == nil {
		t.Error("closing missing listing should fail")
	}
}

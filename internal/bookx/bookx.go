// Package bookx implements CourseRank's Book Exchange (Figure 2): the
// marketplace that grew out of the §2.2 bookstore anecdote. Textbooks
// themselves are volunteer-reported into the catalog; here students post
// buy and sell listings against those books and the exchange matches
// compatible pairs (sell price within the buyer's budget, best price
// first).
package bookx

import (
	"fmt"
	"sort"

	"courserank/internal/catalog"
	"courserank/internal/relation"
)

// Side distinguishes listing directions.
type Side string

// Listing sides.
const (
	Buy  Side = "buy"
	Sell Side = "sell"
)

// Listing is one open buy or sell order for a textbook. For buys, Price
// is the maximum the buyer will pay; for sells, the asking price.
type Listing struct {
	ID     int64
	BookID int64
	SuID   int64
	Side   Side
	Price  float64
	Active bool
}

// Match pairs a buy listing with a compatible sell listing.
type Match struct {
	Buy  Listing
	Sell Listing
}

// Service manages the exchange tables.
type Service struct {
	db  *relation.DB
	cat *catalog.Store
}

// Setup creates the listing table.
func Setup(db *relation.DB, cat *catalog.Store) (*Service, error) {
	listings := relation.MustTable("BookListings",
		relation.NewSchema(
			relation.NotNullCol("ListingID", relation.TypeInt),
			relation.NotNullCol("BookID", relation.TypeInt),
			relation.NotNullCol("SuID", relation.TypeInt),
			relation.NotNullCol("Side", relation.TypeString),
			relation.NotNullCol("Price", relation.TypeFloat),
			relation.NotNullCol("Active", relation.TypeBool),
		), relation.WithPrimaryKey("ListingID"), relation.WithAutoIncrement("ListingID"), relation.WithIndex("BookID"))
	if _, err := db.Ensure(listings); err != nil {
		return nil, err
	}
	return &Service{db: db, cat: cat}, nil
}

// Post creates a listing and returns its id.
func (s *Service) Post(l Listing) (int64, error) {
	if l.Side != Buy && l.Side != Sell {
		return 0, fmt.Errorf("bookx: side must be buy or sell")
	}
	if l.Price < 0 {
		return 0, fmt.Errorf("bookx: negative price")
	}
	row, err := s.db.MustTable("BookListings").InsertGet(relation.Row{nil, l.BookID, l.SuID, string(l.Side), l.Price, true})
	if err != nil {
		return 0, err
	}
	return row[0].(int64), nil
}

func listingFromRow(r relation.Row) Listing {
	return Listing{
		ID: r[0].(int64), BookID: r[1].(int64), SuID: r[2].(int64),
		Side: Side(r[3].(string)), Price: r[4].(float64), Active: r[5].(bool),
	}
}

// Active returns a book's open listings.
func (s *Service) Active(bookID int64) []Listing {
	var out []Listing
	for _, r := range s.db.MustTable("BookListings").Lookup("BookID", bookID) {
		l := listingFromRow(r)
		if l.Active {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// MatchBook proposes matches for one book: every active buy is paired
// with the cheapest compatible active sell, each sell used at most once.
func (s *Service) MatchBook(bookID int64) []Match {
	var buys, sells []Listing
	for _, l := range s.Active(bookID) {
		if l.Side == Buy {
			buys = append(buys, l)
		} else {
			sells = append(sells, l)
		}
	}
	// Highest-budget buyers choose first; cheapest sells go first.
	sort.Slice(buys, func(a, b int) bool {
		if buys[a].Price != buys[b].Price {
			return buys[a].Price > buys[b].Price
		}
		return buys[a].ID < buys[b].ID
	})
	sort.Slice(sells, func(a, b int) bool {
		if sells[a].Price != sells[b].Price {
			return sells[a].Price < sells[b].Price
		}
		return sells[a].ID < sells[b].ID
	})
	used := make([]bool, len(sells))
	var out []Match
	for _, b := range buys {
		for i, sl := range sells {
			if used[i] || sl.Price > b.Price || sl.SuID == b.SuID {
				continue
			}
			used[i] = true
			out = append(out, Match{Buy: b, Sell: sl})
			break
		}
	}
	return out
}

// Close deactivates a listing (sold, bought, or withdrawn).
func (s *Service) Close(listingID int64) error {
	n, err := s.db.MustTable("BookListings").UpdateWhere(
		func(r relation.Row) bool { return r[0] == listingID },
		func(r relation.Row) relation.Row { r[5] = false; return r })
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("bookx: no listing %d", listingID)
	}
	return nil
}

// Settle executes a match atomically-enough for a single-process store:
// both listings close together.
func (s *Service) Settle(m Match) error {
	if err := s.Close(m.Buy.ID); err != nil {
		return err
	}
	return s.Close(m.Sell.ID)
}

// ForCourse lists matches across all of a course's textbooks.
func (s *Service) ForCourse(courseID int64) []Match {
	var out []Match
	for _, b := range s.cat.Textbooks(courseID) {
		out = append(out, s.MatchBook(b.ID)...)
	}
	return out
}

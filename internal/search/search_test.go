package search

import (
	"fmt"
	"testing"
	"testing/quick"
)

func courseDef() EntityDef {
	return EntityDef{
		Name: "course",
		Fields: []FieldSpec{
			{Name: "title", Weight: 4},
			{Name: "description", Weight: 2},
			{Name: "comments", Weight: 1},
		},
	}
}

func buildIndex(t *testing.T) *Index {
	t.Helper()
	b, err := NewBuilder(courseDef())
	if err != nil {
		t.Fatal(err)
	}
	// Entity 1: "american" only in comments — found because entities span
	// relations (§3.1).
	must(t, b.Append(1, "title", "History of Science"))
	must(t, b.Append(1, "description", "famous greek scientists and their discoveries"))
	must(t, b.Append(1, "comments", "covers some american contributions too"))
	must(t, b.Append(2, "title", "American Politics"))
	must(t, b.Append(2, "description", "government and political culture"))
	must(t, b.Append(2, "comments", "loved the debates"))
	must(t, b.Append(2, "comments", "very american focused"))
	must(t, b.Append(3, "title", "Latin American Literature"))
	must(t, b.Append(3, "description", "novels from latin america"))
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestEntitySpansRelations(t *testing.T) {
	ix := buildIndex(t)
	res := ix.Search("american")
	if res.Total() != 3 {
		t.Fatalf("Total = %d, want 3 (comment-only match must count)", res.Total())
	}
	// Title matches outrank the comment-only match.
	if res.Hits[len(res.Hits)-1].DocID != 1 {
		t.Errorf("comment-only match should rank last: %v", res.Hits)
	}
}

func TestRefineIsSubset(t *testing.T) {
	ix := buildIndex(t)
	res := ix.Search("american")
	ref := ix.Refine(res, "latin american")
	if ref.Total() != 1 || ref.Hits[0].DocID != 3 {
		t.Fatalf("refined = %v", ref.Hits)
	}
	orig := map[int64]bool{}
	for _, id := range res.IDs() {
		orig[id] = true
	}
	for _, id := range ref.IDs() {
		if !orig[id] {
			t.Errorf("refined result %d not in original", id)
		}
	}
	// Single-word refinement.
	ref2 := ix.Refine(res, "politics")
	if ref2.Total() != 1 || ref2.Hits[0].DocID != 2 {
		t.Fatalf("keyword refine = %v", ref2.Hits)
	}
}

func TestCountAndTop(t *testing.T) {
	ix := buildIndex(t)
	if n := ix.Count("american"); n != 3 {
		t.Errorf("Count = %d", n)
	}
	res := ix.Search("american")
	if len(res.Top(2)) != 2 {
		t.Error("Top(2)")
	}
	if len(res.Top(10)) != 3 {
		t.Error("Top(10) should clamp")
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.Def().Name != "course" {
		t.Error("Def")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(EntityDef{Name: "x"}); err == nil {
		t.Error("no fields should fail")
	}
	if _, err := NewBuilder(EntityDef{Name: "x", Fields: []FieldSpec{{Name: "a", Weight: 0}}}); err == nil {
		t.Error("zero weight should fail")
	}
	if _, err := NewBuilder(EntityDef{Name: "x", Fields: []FieldSpec{{Name: "a", Weight: 1}, {Name: "A", Weight: 1}}}); err == nil {
		t.Error("duplicate field should fail")
	}
	b, _ := NewBuilder(courseDef())
	if err := b.Append(1, "nosuch", "text"); err == nil {
		t.Error("unknown field should fail")
	}
}

// Property: refinement never grows the result set, for arbitrary numbers
// of themed documents.
func TestRefineMonotoneProperty(t *testing.T) {
	f := func(nA, nB uint8) bool {
		a, bCount := int(nA%20)+1, int(nB%20)
		bld, err := NewBuilder(EntityDef{Name: "e", Fields: []FieldSpec{{Name: "f", Weight: 1}}})
		if err != nil {
			return false
		}
		id := int64(0)
		for i := 0; i < a; i++ {
			id++
			if bld.Append(id, "f", "american history") != nil {
				return false
			}
		}
		for i := 0; i < bCount; i++ {
			id++
			if bld.Append(id, "f", "american jazz music") != nil {
				return false
			}
		}
		ix, err := bld.Build()
		if err != nil {
			return false
		}
		res := ix.Search("american")
		ref := ix.Refine(res, "jazz")
		return res.Total() == a+bCount && ref.Total() == bCount && ref.Total() <= res.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestManyEntitiesDistinctFields(t *testing.T) {
	b, _ := NewBuilder(courseDef())
	for i := int64(1); i <= 50; i++ {
		must(t, b.Append(i, "title", fmt.Sprintf("Course number%d", i)))
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 50; i++ {
		res := ix.Search(fmt.Sprintf("number%d", i))
		if res.Total() != 1 || res.Hits[0].DocID != i {
			t.Fatalf("entity %d not found: %v", i, res.Hits)
		}
	}
}

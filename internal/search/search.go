// Package search implements CourseRank's keyword search over *search
// entities that span multiple relations* (paper §3.1). A course entity is
// not just the Courses tuple: it aggregates the title, the bulletin
// description, every student comment, the instructor names and the
// department — each as a weighted field, so a query term found in a title
// scores differently from one found in a comment. Results feed the data
// cloud layer and support click-to-refine.
package search

import (
	"fmt"
	"strings"

	"courserank/internal/textindex"
)

// FieldSpec declares one weighted entity field.
type FieldSpec struct {
	Name   string
	Weight float64
}

// EntityDef names an entity type and its fields, e.g. the course entity
// with title/description/comments/instructors/department parts.
type EntityDef struct {
	Name   string
	Fields []FieldSpec
}

// Builder accumulates entity text part by part. The parts of one entity
// typically come from several relations (Courses, Comments, Instructors),
// appended in any order, then Build seals the index.
type Builder struct {
	def      EntityDef
	fieldIdx map[string]int
	texts    map[int64][]*strings.Builder
	order    []int64
}

// NewBuilder creates a builder for the entity definition.
func NewBuilder(def EntityDef) (*Builder, error) {
	if len(def.Fields) == 0 {
		return nil, fmt.Errorf("search: entity %q needs at least one field", def.Name)
	}
	b := &Builder{
		def:      def,
		fieldIdx: make(map[string]int, len(def.Fields)),
		texts:    make(map[int64][]*strings.Builder),
	}
	for i, f := range def.Fields {
		key := strings.ToLower(f.Name)
		if _, dup := b.fieldIdx[key]; dup {
			return nil, fmt.Errorf("search: duplicate field %q", f.Name)
		}
		if f.Weight <= 0 {
			return nil, fmt.Errorf("search: field %q must have positive weight", f.Name)
		}
		b.fieldIdx[key] = i
	}
	return b, nil
}

// Append adds text to one field of an entity, creating the entity on
// first use. Multiple appends to the same field concatenate.
func (b *Builder) Append(entityID int64, field, text string) error {
	fi, ok := b.fieldIdx[strings.ToLower(field)]
	if !ok {
		return fmt.Errorf("search: entity %q has no field %q", b.def.Name, field)
	}
	parts, ok := b.texts[entityID]
	if !ok {
		parts = make([]*strings.Builder, len(b.def.Fields))
		for i := range parts {
			parts[i] = &strings.Builder{}
		}
		b.texts[entityID] = parts
		b.order = append(b.order, entityID)
	}
	if parts[fi].Len() > 0 {
		parts[fi].WriteByte('\n')
	}
	parts[fi].WriteString(text)
	return nil
}

// Build seals the accumulated entities into a searchable index.
func (b *Builder) Build() (*Index, error) {
	fields := make([]textindex.Field, len(b.def.Fields))
	for i, f := range b.def.Fields {
		fields[i] = textindex.Field{Name: f.Name, Weight: f.Weight}
	}
	ti, err := textindex.New(fields...)
	if err != nil {
		return nil, err
	}
	for _, id := range b.order {
		parts := b.texts[id]
		vals := make([]string, len(parts))
		for i, sb := range parts {
			vals[i] = sb.String()
		}
		if err := ti.Add(id, vals); err != nil {
			return nil, err
		}
	}
	ti.Finish()
	return &Index{def: b.def, ti: ti}, nil
}

// Index is a sealed entity-search index.
type Index struct {
	def EntityDef
	ti  *textindex.Index
}

// Def returns the entity definition the index was built from.
func (ix *Index) Def() EntityDef { return ix.def }

// Text returns the underlying text index (used by the cloud layer for
// corpus statistics).
func (ix *Index) Text() *textindex.Index { return ix.ti }

// Len returns the number of indexed entities.
func (ix *Index) Len() int { return ix.ti.DocCount() }

// Results is the outcome of a search: the parsed query plus every
// matching entity with its relevance score, best first.
type Results struct {
	Query textindex.Query
	Hits  []textindex.Hit
}

// Total returns the number of matching entities — the "1160 courses
// returned for this search" figure of paper §3.1.
func (r *Results) Total() int { return len(r.Hits) }

// IDs returns all matching entity ids, best first.
func (r *Results) IDs() []int64 {
	out := make([]int64, len(r.Hits))
	for i, h := range r.Hits {
		out[i] = h.DocID
	}
	return out
}

// Top returns at most k leading hits.
func (r *Results) Top(k int) []textindex.Hit {
	if k > len(r.Hits) {
		k = len(r.Hits)
	}
	return r.Hits[:k]
}

// Search runs a keyword query (quoted spans become phrases) and returns
// every match ranked by field-weighted BM25F.
func (ix *Index) Search(query string) *Results {
	q := textindex.ParseQuery(query)
	return &Results{Query: q, Hits: ix.ti.Search(q, 0)}
}

// SearchQuery runs an already-parsed query.
func (ix *Index) SearchQuery(q textindex.Query) *Results {
	return &Results{Query: q, Hits: ix.ti.Search(q, 0)}
}

// Refine narrows previous results by one clicked cloud term: multi-word
// terms refine as phrases, single words as keywords — exactly the
// click-to-refine interaction of Figures 3→4. The refined result set is
// always a subset of the original.
func (ix *Index) Refine(prev *Results, term string) *Results {
	q := prev.Query
	next := textindex.Query{
		Keywords: append([]string(nil), q.Keywords...),
		Phrases:  append([]string(nil), q.Phrases...),
	}
	toks := textindex.Tokenize(term)
	switch {
	case len(toks) == 1:
		next.Keywords = append(next.Keywords, toks[0])
	case len(toks) >= 2:
		next.Phrases = append(next.Phrases, textindex.Bigrams(toks)...)
	}
	return &Results{Query: next, Hits: ix.ti.Search(next, 0)}
}

// Count reports how many entities match the query without ranking them.
func (ix *Index) Count(query string) int {
	return ix.ti.Count(textindex.ParseQuery(query))
}

// Package qa implements CourseRank's Question & Answer forum (Figure 2
// "Q/A") together with the two remedies §2.2 prescribes for its
// cold-start problem: seeding the forum with staff-curated FAQs, and
// routing new questions "to people who are likely to be able to answer
// them" — here, students and faculty with experience in the question's
// department. Best answers and helpful votes feed the community point
// scheme.
package qa

import (
	"fmt"
	"sort"

	"courserank/internal/relation"
)

// Question is one forum question. CourseID and DepID scope it (either
// may be empty/zero for general questions). Seeded marks staff FAQs.
type Question struct {
	ID       int64
	SuID     int64
	Title    string
	Text     string
	CourseID int64
	DepID    string
	Seeded   bool
}

// Answer is one reply to a question.
type Answer struct {
	ID     int64
	QID    int64
	SuID   int64
	Text   string
	Votes  int
	IsBest bool
}

// PointAwarder decouples qa from the community package: the facade
// passes the community service in so best answers and winning votes
// earn points without an import cycle.
type PointAwarder interface {
	Award(userID int64, kind string, points int, note string) error
}

// Point values mirrored from the paper's Yahoo! Answers description.
const (
	pointsBestAnswer     = 10
	pointsVoteBecameBest = 1
)

// Expertise lets the router ask who has experience where; the facade
// implements it over planner enrollments and teaching assignments.
type Expertise interface {
	// ExpertsIn returns user ids with experience in the department,
	// strongest first.
	ExpertsIn(depID string, limit int) []int64
}

// Service manages the forum tables.
type Service struct {
	db     *relation.DB
	points PointAwarder
	expert Expertise
}

// Setup creates the forum tables. points and expert may be nil (no
// point awards, no routing).
func Setup(db *relation.DB, points PointAwarder, expert Expertise) (*Service, error) {
	tables := []*relation.Table{
		relation.MustTable("Questions",
			relation.NewSchema(
				relation.NotNullCol("QID", relation.TypeInt),
				relation.NotNullCol("SuID", relation.TypeInt),
				relation.NotNullCol("Title", relation.TypeString),
				relation.NotNullCol("Text", relation.TypeString),
				relation.Col("CourseID", relation.TypeInt),
				relation.Col("DepID", relation.TypeString),
				relation.NotNullCol("Seeded", relation.TypeBool),
			), relation.WithPrimaryKey("QID"), relation.WithAutoIncrement("QID"), relation.WithIndex("DepID")),
		relation.MustTable("Answers",
			relation.NewSchema(
				relation.NotNullCol("AID", relation.TypeInt),
				relation.NotNullCol("QID", relation.TypeInt),
				relation.NotNullCol("SuID", relation.TypeInt),
				relation.NotNullCol("Text", relation.TypeString),
				relation.NotNullCol("Votes", relation.TypeInt),
				relation.NotNullCol("IsBest", relation.TypeBool),
			), relation.WithPrimaryKey("AID"), relation.WithAutoIncrement("AID"), relation.WithIndex("QID")),
		relation.MustTable("AnswerVotes",
			relation.NewSchema(
				relation.NotNullCol("AID", relation.TypeInt),
				relation.NotNullCol("SuID", relation.TypeInt),
			), relation.WithPrimaryKey("AID", "SuID")),
	}
	for _, t := range tables {
		if _, err := db.Ensure(t); err != nil {
			return nil, err
		}
	}
	return &Service{db: db, points: points, expert: expert}, nil
}

// Ask posts a question and returns its id plus the user ids it was
// routed to for answering.
func (s *Service) Ask(q Question) (int64, []int64, error) {
	if q.Title == "" {
		return 0, nil, fmt.Errorf("qa: question needs a title")
	}
	var courseID, depID relation.Value
	if q.CourseID != 0 {
		courseID = q.CourseID
	}
	if q.DepID != "" {
		depID = q.DepID
	}
	row, err := s.db.MustTable("Questions").InsertGet(relation.Row{
		nil, q.SuID, q.Title, q.Text, courseID, depID, q.Seeded,
	})
	if err != nil {
		return 0, nil, err
	}
	id := row[0].(int64)
	var routed []int64
	if s.expert != nil && q.DepID != "" {
		for _, uid := range s.expert.ExpertsIn(q.DepID, 5) {
			if uid != q.SuID {
				routed = append(routed, uid)
			}
		}
	}
	return id, routed, nil
}

// SeedFAQ posts a staff-curated FAQ with its canonical answer — the
// §2.2 plan for bootstrapping forum traffic ("seed the forum with
// frequently asked questions developed in conjunction with department
// managers").
func (s *Service) SeedFAQ(staffID int64, depID, title, question, answer string) (int64, error) {
	qid, _, err := s.Ask(Question{SuID: staffID, Title: title, Text: question, DepID: depID, Seeded: true})
	if err != nil {
		return 0, err
	}
	aid, err := s.Answer(Answer{QID: qid, SuID: staffID, Text: answer})
	if err != nil {
		return 0, err
	}
	// Canonical FAQ answers are pre-marked best without point awards.
	_, err = s.db.MustTable("Answers").UpdateWhere(
		func(r relation.Row) bool { return r[0] == aid },
		func(r relation.Row) relation.Row { r[5] = true; return r })
	return qid, err
}

// Question fetches a question by id.
func (s *Service) Question(qid int64) (Question, bool) {
	r, ok := s.db.MustTable("Questions").Get(qid)
	if !ok {
		return Question{}, false
	}
	return questionFromRow(r), true
}

func questionFromRow(r relation.Row) Question {
	var courseID int64
	if r[4] != nil {
		courseID = r[4].(int64)
	}
	var depID string
	if r[5] != nil {
		depID = r[5].(string)
	}
	return Question{
		ID: r[0].(int64), SuID: r[1].(int64), Title: r[2].(string), Text: r[3].(string),
		CourseID: courseID, DepID: depID, Seeded: r[6].(bool),
	}
}

// ByDepartment lists a department's questions, seeded FAQs first.
func (s *Service) ByDepartment(depID string) []Question {
	rows := s.db.MustTable("Questions").Lookup("DepID", depID)
	out := make([]Question, len(rows))
	for i, r := range rows {
		out[i] = questionFromRow(r)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Seeded != out[b].Seeded {
			return out[a].Seeded
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// QuestionCount returns the forum size.
func (s *Service) QuestionCount() int { return s.db.MustTable("Questions").Len() }

// Answer posts an answer and returns its id.
func (s *Service) Answer(a Answer) (int64, error) {
	if _, ok := s.Question(a.QID); !ok {
		return 0, fmt.Errorf("qa: no question %d", a.QID)
	}
	if a.Text == "" {
		return 0, fmt.Errorf("qa: empty answer")
	}
	row, err := s.db.MustTable("Answers").InsertGet(relation.Row{nil, a.QID, a.SuID, a.Text, int64(0), false})
	if err != nil {
		return 0, err
	}
	return row[0].(int64), nil
}

func answerFromRow(r relation.Row) Answer {
	return Answer{
		ID: r[0].(int64), QID: r[1].(int64), SuID: r[2].(int64),
		Text: r[3].(string), Votes: int(r[4].(int64)), IsBest: r[5].(bool),
	}
}

// Answers lists a question's answers, best first then by votes.
func (s *Service) Answers(qid int64) []Answer {
	rows := s.db.MustTable("Answers").Lookup("QID", qid)
	out := make([]Answer, len(rows))
	for i, r := range rows {
		out[i] = answerFromRow(r)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].IsBest != out[b].IsBest {
			return out[a].IsBest
		}
		if out[a].Votes != out[b].Votes {
			return out[a].Votes > out[b].Votes
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Vote records one user's up-vote on an answer (idempotent per user).
func (s *Service) Vote(aid, voterID int64) error {
	if _, err := s.db.MustTable("AnswerVotes").Insert(relation.Row{aid, voterID}); err != nil {
		return fmt.Errorf("qa: already voted or bad answer: %w", err)
	}
	_, err := s.db.MustTable("Answers").UpdateWhere(
		func(r relation.Row) bool { return r[0] == aid },
		func(r relation.Row) relation.Row { r[4] = r[4].(int64) + 1; return r })
	return err
}

// MarkBest marks an answer as the asker's best answer, awarding the
// §2.2 points: 10 to the answerer and 1 to each voter who picked it.
// Only the question's asker may mark, and only once per question.
func (s *Service) MarkBest(qid, aid, byUser int64) error {
	q, ok := s.Question(qid)
	if !ok {
		return fmt.Errorf("qa: no question %d", qid)
	}
	if q.SuID != byUser {
		return fmt.Errorf("qa: only the asker may mark the best answer")
	}
	for _, a := range s.Answers(qid) {
		if a.IsBest {
			return fmt.Errorf("qa: question %d already has a best answer", qid)
		}
	}
	var target Answer
	found := false
	for _, a := range s.Answers(qid) {
		if a.ID == aid {
			target = a
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("qa: answer %d does not belong to question %d", aid, qid)
	}
	if _, err := s.db.MustTable("Answers").UpdateWhere(
		func(r relation.Row) bool { return r[0] == aid },
		func(r relation.Row) relation.Row { r[5] = true; return r }); err != nil {
		return err
	}
	if s.points != nil {
		if err := s.points.Award(target.SuID, "best-answer", pointsBestAnswer, q.Title); err != nil {
			return err
		}
		for _, r := range s.db.MustTable("AnswerVotes").Rows() {
			if r[0] == aid {
				if err := s.points.Award(r[1].(int64), "voted-best", pointsVoteBecameBest, q.Title); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

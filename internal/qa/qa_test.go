package qa

import (
	"testing"

	"courserank/internal/relation"
)

// fakePoints records awards for verification.
type fakePoints struct {
	awards map[int64]int
}

func (f *fakePoints) Award(userID int64, kind string, points int, note string) error {
	if f.awards == nil {
		f.awards = map[int64]int{}
	}
	f.awards[userID] += points
	return nil
}

// fakeExperts routes CS questions to fixed users.
type fakeExperts struct{}

func (fakeExperts) ExpertsIn(depID string, limit int) []int64 {
	if depID == "CS" {
		return []int64{7, 8, 9}
	}
	return nil
}

func newService(t *testing.T) (*Service, *fakePoints) {
	t.Helper()
	fp := &fakePoints{}
	s, err := Setup(relation.NewDB(), fp, fakeExperts{})
	if err != nil {
		t.Fatal(err)
	}
	return s, fp
}

func TestAskAndRoute(t *testing.T) {
	s, _ := newService(t)
	qid, routed, err := s.Ask(Question{SuID: 1, Title: "Good intro CS class for non-majors?", Text: "…", DepID: "CS"})
	if err != nil {
		t.Fatal(err)
	}
	if qid == 0 {
		t.Error("qid")
	}
	if len(routed) != 3 {
		t.Errorf("routed = %v", routed)
	}
	// The asker is never routed to themselves.
	qid2, routed2, err := s.Ask(Question{SuID: 8, Title: "Another", Text: "…", DepID: "CS"})
	if err != nil || qid2 == 0 {
		t.Fatal(err)
	}
	for _, u := range routed2 {
		if u == 8 {
			t.Error("asker routed to self")
		}
	}
	if _, _, err := s.Ask(Question{SuID: 1, Title: ""}); err == nil {
		t.Error("missing title should fail")
	}
	if _, routed, _ := s.Ask(Question{SuID: 1, Title: "General", Text: "…"}); routed != nil {
		t.Error("department-less question should not route")
	}
	if s.QuestionCount() != 3 {
		t.Errorf("count = %d", s.QuestionCount())
	}
}

func TestAnswersVotesAndBest(t *testing.T) {
	s, fp := newService(t)
	qid, _, _ := s.Ask(Question{SuID: 1, Title: "Q", Text: "?", DepID: "CS"})
	a1, err := s.Answer(Answer{QID: qid, SuID: 2, Text: "first answer"})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := s.Answer(Answer{QID: qid, SuID: 3, Text: "second answer"})
	if _, err := s.Answer(Answer{QID: 999, SuID: 2, Text: "x"}); err == nil {
		t.Error("answer to missing question should fail")
	}
	if _, err := s.Answer(Answer{QID: qid, SuID: 2, Text: ""}); err == nil {
		t.Error("empty answer should fail")
	}

	// Votes.
	if err := s.Vote(a2, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Vote(a2, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Vote(a2, 4); err == nil {
		t.Error("double vote should fail")
	}
	answers := s.Answers(qid)
	if answers[0].ID != a2 || answers[0].Votes != 2 {
		t.Errorf("vote ordering: %+v", answers)
	}

	// Best answer: only the asker, only once; awards 10 + 1 per voter.
	if err := s.MarkBest(qid, a2, 99); err == nil {
		t.Error("non-asker marking best should fail")
	}
	if err := s.MarkBest(qid, a2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkBest(qid, a1, 1); err == nil {
		t.Error("second best should fail")
	}
	if fp.awards[3] != 10 {
		t.Errorf("answerer points = %d", fp.awards[3])
	}
	if fp.awards[4] != 1 || fp.awards[5] != 1 {
		t.Errorf("voter points = %v", fp.awards)
	}
	answers = s.Answers(qid)
	if !answers[0].IsBest || answers[0].ID != a2 {
		t.Errorf("best first: %+v", answers)
	}
	if err := s.MarkBest(999, a1, 1); err == nil {
		t.Error("missing question")
	}
	if err := s.MarkBest(qid, 999, 1); err == nil {
		t.Error("missing answer")
	}
}

func TestSeedFAQ(t *testing.T) {
	s, fp := newService(t)
	qid, err := s.SeedFAQ(50, "CS", "Who approves my program?", "Ask the student services desk.", "The student services desk in Gates B08.")
	if err != nil {
		t.Fatal(err)
	}
	q, ok := s.Question(qid)
	if !ok || !q.Seeded {
		t.Fatalf("seeded question = %+v", q)
	}
	answers := s.Answers(qid)
	if len(answers) != 1 || !answers[0].IsBest {
		t.Errorf("FAQ answer should be pre-marked best: %+v", answers)
	}
	// FAQ seeding awards no points.
	if len(fp.awards) != 0 {
		t.Errorf("FAQ must not award points: %v", fp.awards)
	}
	// Seeded questions list first in the department.
	s.Ask(Question{SuID: 1, Title: "later q", Text: "?", DepID: "CS"})
	dept := s.ByDepartment("CS")
	if len(dept) != 2 || !dept[0].Seeded {
		t.Errorf("ByDepartment = %+v", dept)
	}
}

func TestNilHooks(t *testing.T) {
	s, err := Setup(relation.NewDB(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	qid, routed, err := s.Ask(Question{SuID: 1, Title: "Q", Text: "?", DepID: "CS"})
	if err != nil || routed != nil {
		t.Fatalf("nil expertise should not route: %v %v", routed, err)
	}
	aid, _ := s.Answer(Answer{QID: qid, SuID: 2, Text: "a"})
	if err := s.MarkBest(qid, aid, 1); err != nil {
		t.Errorf("nil points should still mark best: %v", err)
	}
}

// Package community models CourseRank's closed community (§2.1):
// authenticated users of three distinct constituent types (students,
// faculty, staff) validated against the university directory, session
// management, privacy opt-outs, and the meaningful-incentive point
// scheme of §2.2 (modeled on Yahoo! Answers scoring).
package community

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"courserank/internal/relation"
)

// Role is a constituent type. CourseRank — unlike single-user-type
// social sites — distinguishes three (§2.1 "Constituents").
type Role string

// The three constituencies.
const (
	RoleStudent Role = "student"
	RoleFaculty Role = "faculty"
	RoleStaff   Role = "staff"
)

// Valid reports whether the role is one of the three constituencies.
func (r Role) Valid() bool {
	return r == RoleStudent || r == RoleFaculty || r == RoleStaff
}

// DirectoryEntry is one person in the (simulated) university directory.
// CourseRank has "access to official user names on the Stanford network
// and can therefore validate that a user is a student or a professor or
// staff" (§2.1 "Restricted Access"); this registry plays that role.
type DirectoryEntry struct {
	Username  string
	Name      string
	Role      Role
	DepID     string // faculty/staff department, or student major
	ClassYear int64  // students: expected graduation year
	Undergrad bool
}

// Directory is the university identity provider. Only people listed
// here may register — the mechanism that keeps the community closed.
type Directory struct {
	mu sync.RWMutex
	m  map[string]DirectoryEntry
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return &Directory{m: make(map[string]DirectoryEntry)} }

// Add registers a person with the university.
func (d *Directory) Add(e DirectoryEntry) error {
	if e.Username == "" {
		return fmt.Errorf("community: directory entry needs a username")
	}
	if !e.Role.Valid() {
		return fmt.Errorf("community: bad role %q", e.Role)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.m[e.Username]; dup {
		return fmt.Errorf("community: username %q already in directory", e.Username)
	}
	d.m[e.Username] = e
	return nil
}

// Lookup finds a directory entry.
func (d *Directory) Lookup(username string) (DirectoryEntry, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.m[username]
	return e, ok
}

// Len returns the directory size (the paper's ~14,000 students plus
// faculty and staff).
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.m)
}

// CountRole returns how many directory entries have the given role —
// e.g. the university's total student population.
func (d *Directory) CountRole(role Role) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, e := range d.m {
		if e.Role == role {
			n++
		}
	}
	return n
}

// User is a registered CourseRank account.
type User struct {
	ID        int64
	Username  string
	Name      string
	Role      Role
	DepID     string
	ClassYear int64
	Undergrad bool
	// SharePlans controls whether other students can see this student's
	// planned courses — on by default with an opt-out, the outcome of
	// the §2.2 "privacy can be shared" anecdote.
	SharePlans bool
}

// Point values of the §2.2 incentive scheme (Yahoo! Answers scoring),
// plus CourseRank-specific contribution rewards.
const (
	PointsBestAnswer     = 10
	PointsDailyLogin     = 1
	PointsVoteBecameBest = 1
	PointsComment        = 2
	PointsRating         = 1
	PointsReportBook     = 2
)

// Service manages accounts, sessions and the point ledger.
type Service struct {
	dir *Directory
	db  *relation.DB

	mu        sync.Mutex
	sessions  map[string]int64 // token → user id
	lastLogin map[int64]int64  // user id → last login day awarded
	nextToken int64
}

// Setup creates the community tables and returns a service bound to the
// directory.
func Setup(db *relation.DB, dir *Directory) (*Service, error) {
	users := relation.MustTable("Users",
		relation.NewSchema(
			relation.NotNullCol("UserID", relation.TypeInt),
			relation.NotNullCol("Username", relation.TypeString),
			relation.NotNullCol("Name", relation.TypeString),
			relation.NotNullCol("Role", relation.TypeString),
			relation.Col("DepID", relation.TypeString),
			relation.Col("ClassYear", relation.TypeInt),
			relation.NotNullCol("Undergrad", relation.TypeBool),
			relation.NotNullCol("SharePlans", relation.TypeBool),
		), relation.WithPrimaryKey("UserID"), relation.WithAutoIncrement("UserID"), relation.WithIndex("Username"))
	points := relation.MustTable("PointEvents",
		relation.NewSchema(
			relation.NotNullCol("EventID", relation.TypeInt),
			relation.NotNullCol("UserID", relation.TypeInt),
			relation.NotNullCol("Kind", relation.TypeString),
			relation.NotNullCol("Points", relation.TypeInt),
			relation.Col("Note", relation.TypeString),
		), relation.WithPrimaryKey("EventID"), relation.WithAutoIncrement("EventID"), relation.WithIndex("UserID"))
	for _, t := range []*relation.Table{users, points} {
		if _, err := db.Ensure(t); err != nil {
			return nil, err
		}
	}
	return &Service{
		dir:       dir,
		db:        db,
		sessions:  make(map[string]int64),
		lastLogin: make(map[int64]int64),
	}, nil
}

// Register creates an account for a directory-validated username. The
// account inherits its role from the directory — users cannot claim to
// be faculty.
func (s *Service) Register(username string) (User, error) {
	e, ok := s.dir.Lookup(username)
	if !ok {
		return User{}, fmt.Errorf("community: %q is not in the university directory", username)
	}
	if _, exists := s.UserByUsername(username); exists {
		return User{}, fmt.Errorf("community: %q is already registered", username)
	}
	var classYear relation.Value
	if e.ClassYear != 0 {
		classYear = e.ClassYear
	}
	row, err := s.db.MustTable("Users").InsertGet(relation.Row{
		nil, e.Username, e.Name, string(e.Role), e.DepID, classYear, e.Undergrad, true,
	})
	if err != nil {
		return User{}, err
	}
	return userFromRow(row), nil
}

func userFromRow(r relation.Row) User {
	var dep string
	if r[4] != nil {
		dep = r[4].(string)
	}
	var cy int64
	if r[5] != nil {
		cy = r[5].(int64)
	}
	return User{
		ID: r[0].(int64), Username: r[1].(string), Name: r[2].(string),
		Role: Role(r[3].(string)), DepID: dep, ClassYear: cy,
		Undergrad: r[6].(bool), SharePlans: r[7].(bool),
	}
}

// User fetches an account by id.
func (s *Service) User(id int64) (User, bool) {
	r, ok := s.db.MustTable("Users").Get(id)
	if !ok {
		return User{}, false
	}
	return userFromRow(r), true
}

// UserByUsername fetches an account by username.
func (s *Service) UserByUsername(username string) (User, bool) {
	rows := s.db.MustTable("Users").Lookup("Username", username)
	if len(rows) == 0 {
		return User{}, false
	}
	return userFromRow(rows[0]), true
}

// UserCount returns the number of registered accounts — the paper's
// "more than 9,000 Stanford students".
func (s *Service) UserCount() int { return s.db.MustTable("Users").Len() }

// CountByRole tallies accounts per constituency.
func (s *Service) CountByRole() map[Role]int {
	out := map[Role]int{}
	s.db.MustTable("Users").Scan(func(_ int, r relation.Row) bool {
		out[Role(r[3].(string))]++
		return true
	})
	return out
}

// UndergradCount returns registered undergraduate students (the paper's
// ~6,500 benchmark).
func (s *Service) UndergradCount() int {
	n := 0
	s.db.MustTable("Users").Scan(func(_ int, r relation.Row) bool {
		if r[6].(bool) {
			n++
		}
		return true
	})
	return n
}

// Login authenticates a registered user on the given day (an abstract
// day number) and returns a session token. The first login of each day
// earns the daily point (§2.2).
func (s *Service) Login(username string, day int64) (string, error) {
	u, ok := s.UserByUsername(username)
	if !ok {
		return "", fmt.Errorf("community: %q is not registered", username)
	}
	s.mu.Lock()
	s.nextToken++
	token := "sess-" + strconv.FormatInt(s.nextToken, 10)
	s.sessions[token] = u.ID
	award := s.lastLogin[u.ID] != day
	s.lastLogin[u.ID] = day
	s.mu.Unlock()
	if award {
		if err := s.Award(u.ID, "daily-login", PointsDailyLogin, "login day "+strconv.FormatInt(day, 10)); err != nil {
			return "", err
		}
	}
	return token, nil
}

// Session resolves a token to the logged-in user.
func (s *Service) Session(token string) (User, bool) {
	s.mu.Lock()
	id, ok := s.sessions[token]
	s.mu.Unlock()
	if !ok {
		return User{}, false
	}
	return s.User(id)
}

// Logout invalidates a session token.
func (s *Service) Logout(token string) {
	s.mu.Lock()
	delete(s.sessions, token)
	s.mu.Unlock()
}

// SetSharePlans records the student's plan-sharing choice (§2.2: "one
// can opt out of sharing").
func (s *Service) SetSharePlans(userID int64, share bool) error {
	n, err := s.db.MustTable("Users").UpdateWhere(
		func(r relation.Row) bool { return r[0] == userID },
		func(r relation.Row) relation.Row { r[7] = share; return r })
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("community: no user %d", userID)
	}
	return nil
}

// Award appends a point event to the ledger.
func (s *Service) Award(userID int64, kind string, points int, note string) error {
	if _, ok := s.User(userID); !ok {
		return fmt.Errorf("community: no user %d", userID)
	}
	_, err := s.db.MustTable("PointEvents").Insert(relation.Row{nil, userID, kind, int64(points), note})
	return err
}

// Points sums a user's ledger.
func (s *Service) Points(userID int64) int {
	total := 0
	for _, r := range s.db.MustTable("PointEvents").Lookup("UserID", userID) {
		total += int(r[3].(int64))
	}
	return total
}

// LedgerEntry is one point event for display.
type LedgerEntry struct {
	Kind   string
	Points int
	Note   string
}

// Ledger returns a user's point history in insertion order.
func (s *Service) Ledger(userID int64) []LedgerEntry {
	rows := s.db.MustTable("PointEvents").Lookup("UserID", userID)
	out := make([]LedgerEntry, len(rows))
	for i, r := range rows {
		var note string
		if r[4] != nil {
			note = r[4].(string)
		}
		out[i] = LedgerEntry{Kind: r[2].(string), Points: int(r[3].(int64)), Note: note}
	}
	return out
}

// LeaderboardEntry pairs a user with their point total.
type LeaderboardEntry struct {
	User   User
	Points int
}

// Leaderboard returns the top-k point earners, ties broken by user id.
func (s *Service) Leaderboard(k int) []LeaderboardEntry {
	totals := map[int64]int{}
	s.db.MustTable("PointEvents").Scan(func(_ int, r relation.Row) bool {
		totals[r[1].(int64)] += int(r[3].(int64))
		return true
	})
	out := make([]LeaderboardEntry, 0, len(totals))
	for id, pts := range totals {
		if u, ok := s.User(id); ok {
			out = append(out, LeaderboardEntry{User: u, Points: pts})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Points != out[b].Points {
			return out[a].Points > out[b].Points
		}
		return out[a].User.ID < out[b].User.ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

package community

import (
	"testing"

	"courserank/internal/relation"
)

func newService(t *testing.T) (*Service, *Directory) {
	t.Helper()
	dir := NewDirectory()
	entries := []DirectoryEntry{
		{Username: "sally", Name: "Sally Stanford", Role: RoleStudent, DepID: "CS", ClassYear: 2009, Undergrad: true},
		{Username: "bob", Name: "Bob Cardinal", Role: RoleStudent, DepID: "HIST", ClassYear: 2010, Undergrad: true},
		{Username: "gradkate", Name: "Kate Grad", Role: RoleStudent, DepID: "CS", ClassYear: 2011},
		{Username: "widom", Name: "Prof. Widom", Role: RoleFaculty, DepID: "CS"},
		{Username: "dean", Name: "Dean Staff", Role: RoleStaff, DepID: "ENG"},
	}
	for _, e := range entries {
		if err := dir.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := Setup(relation.NewDB(), dir)
	if err != nil {
		t.Fatal(err)
	}
	return svc, dir
}

func TestDirectoryValidation(t *testing.T) {
	dir := NewDirectory()
	if err := dir.Add(DirectoryEntry{Username: "", Role: RoleStudent}); err == nil {
		t.Error("empty username should fail")
	}
	if err := dir.Add(DirectoryEntry{Username: "x", Role: "alien"}); err == nil {
		t.Error("bad role should fail")
	}
	if err := dir.Add(DirectoryEntry{Username: "x", Role: RoleStudent}); err != nil {
		t.Fatal(err)
	}
	if err := dir.Add(DirectoryEntry{Username: "x", Role: RoleStudent}); err == nil {
		t.Error("duplicate should fail")
	}
	if dir.Len() != 1 {
		t.Error("Len")
	}
}

func TestRegisterValidatesAgainstDirectory(t *testing.T) {
	svc, _ := newService(t)
	u, err := svc.Register("sally")
	if err != nil {
		t.Fatal(err)
	}
	if u.Role != RoleStudent || !u.Undergrad || !u.SharePlans {
		t.Errorf("user = %+v", u)
	}
	// Role comes from the directory, not the caller.
	f, err := svc.Register("widom")
	if err != nil {
		t.Fatal(err)
	}
	if f.Role != RoleFaculty {
		t.Errorf("faculty role = %v", f.Role)
	}
	if _, err := svc.Register("intruder"); err == nil {
		t.Error("non-directory registration must fail (closed community)")
	}
	if _, err := svc.Register("sally"); err == nil {
		t.Error("double registration should fail")
	}
	if svc.UserCount() != 2 {
		t.Errorf("UserCount = %d", svc.UserCount())
	}
}

func TestConstituentCounts(t *testing.T) {
	svc, _ := newService(t)
	for _, u := range []string{"sally", "bob", "gradkate", "widom", "dean"} {
		if _, err := svc.Register(u); err != nil {
			t.Fatal(err)
		}
	}
	by := svc.CountByRole()
	if by[RoleStudent] != 3 || by[RoleFaculty] != 1 || by[RoleStaff] != 1 {
		t.Errorf("CountByRole = %v", by)
	}
	if svc.UndergradCount() != 2 {
		t.Errorf("UndergradCount = %d", svc.UndergradCount())
	}
}

func TestLoginSessionsAndDailyPoint(t *testing.T) {
	svc, _ := newService(t)
	u, _ := svc.Register("sally")
	tok, err := svc.Login("sally", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := svc.Session(tok)
	if !ok || got.ID != u.ID {
		t.Fatal("session lookup failed")
	}
	if p := svc.Points(u.ID); p != PointsDailyLogin {
		t.Errorf("points after first login = %d", p)
	}
	// Second login the same day: no extra point.
	if _, err := svc.Login("sally", 1); err != nil {
		t.Fatal(err)
	}
	if p := svc.Points(u.ID); p != PointsDailyLogin {
		t.Errorf("points after same-day relogin = %d", p)
	}
	// New day: one more point.
	if _, err := svc.Login("sally", 2); err != nil {
		t.Fatal(err)
	}
	if p := svc.Points(u.ID); p != 2*PointsDailyLogin {
		t.Errorf("points after day 2 = %d", p)
	}
	svc.Logout(tok)
	if _, ok := svc.Session(tok); ok {
		t.Error("logout should invalidate token")
	}
	if _, err := svc.Login("ghost", 1); err == nil {
		t.Error("unregistered login should fail")
	}
}

func TestAwardLedgerLeaderboard(t *testing.T) {
	svc, _ := newService(t)
	s, _ := svc.Register("sally")
	b, _ := svc.Register("bob")
	if err := svc.Award(s.ID, "best-answer", PointsBestAnswer, "great answer"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Award(b.ID, "comment", PointsComment, ""); err != nil {
		t.Fatal(err)
	}
	if err := svc.Award(b.ID, "rating", PointsRating, ""); err != nil {
		t.Fatal(err)
	}
	if err := svc.Award(999, "x", 1, ""); err == nil {
		t.Error("award to missing user should fail")
	}
	if p := svc.Points(s.ID); p != 10 {
		t.Errorf("sally points = %d", p)
	}
	lb := svc.Leaderboard(10)
	if len(lb) != 2 || lb[0].User.ID != s.ID || lb[0].Points != 10 || lb[1].Points != 3 {
		t.Errorf("leaderboard = %+v", lb)
	}
	if lb := svc.Leaderboard(1); len(lb) != 1 {
		t.Error("leaderboard limit")
	}
	led := svc.Ledger(b.ID)
	if len(led) != 2 || led[0].Kind != "comment" {
		t.Errorf("ledger = %+v", led)
	}
}

func TestSharePlansOptOut(t *testing.T) {
	svc, _ := newService(t)
	u, _ := svc.Register("sally")
	if !u.SharePlans {
		t.Fatal("sharing should default on")
	}
	if err := svc.SetSharePlans(u.ID, false); err != nil {
		t.Fatal(err)
	}
	got, _ := svc.User(u.ID)
	if got.SharePlans {
		t.Error("opt-out did not stick")
	}
	if err := svc.SetSharePlans(999, true); err == nil {
		t.Error("missing user should fail")
	}
}

func TestUserLookups(t *testing.T) {
	svc, _ := newService(t)
	u, _ := svc.Register("gradkate")
	if got, ok := svc.UserByUsername("gradkate"); !ok || got.ID != u.ID {
		t.Error("UserByUsername")
	}
	if _, ok := svc.UserByUsername("nope"); ok {
		t.Error("missing username")
	}
	if _, ok := svc.User(12345); ok {
		t.Error("missing id")
	}
	if u.Undergrad {
		t.Error("gradkate is a grad student")
	}
}

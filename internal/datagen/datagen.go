// Package datagen synthesizes a CourseRank deployment at configurable
// scale. The paper's live numbers (§2: 18,605 courses; 134,000 comments;
// 50,300 ratings; 9,000 of ~14,000 students, ~6,500 undergrads) are the
// PaperScale preset, and the Figure 3/4 searches are calibrated exactly:
// the fraction of courses carrying the "american" theme equals
// 1160/18605 of the catalog, and the "african american" sub-theme equals
// 123/1160 of those, so the published result counts reappear at any
// scale. Generation is deterministic for a given seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"courserank/internal/bookx"
	"courserank/internal/catalog"
	"courserank/internal/comments"
	"courserank/internal/community"
	"courserank/internal/core"
	"courserank/internal/planner"
	"courserank/internal/qa"
	"courserank/internal/relation"
	"courserank/internal/requirements"
)

// Config sizes a synthetic deployment.
type Config struct {
	Seed               int64
	Departments        int
	Courses            int
	DirectoryStudents  int
	RegisteredStudents int
	Undergrads         int // among registered students
	Faculty            int
	Staff              int
	Comments           int
	Ratings            int
	Years              []int64
	CoursesPerQuarter  int // per student per quarter (mean)
	QASeedPerDept      int
	StudentQuestions   int
	BookListings       int
}

// PaperScale is the deployment §2 of the paper reports.
func PaperScale() Config {
	return Config{
		Seed:               42,
		Departments:        40,
		Courses:            18605,
		DirectoryStudents:  14000,
		RegisteredStudents: 9000,
		Undergrads:         6500,
		Faculty:            1200,
		Staff:              80,
		Comments:           134000,
		Ratings:            50300,
		Years:              []int64{2006, 2007, 2008},
		CoursesPerQuarter:  2,
		QASeedPerDept:      2,
		StudentQuestions:   60,
		BookListings:       400,
	}
}

// Small is roughly a tenth of paper scale; integration tests and quick
// demos use it.
func Small() Config {
	return Config{
		Seed:               42,
		Departments:        24,
		Courses:            1861,
		DirectoryStudents:  1400,
		RegisteredStudents: 900,
		Undergrads:         650,
		Faculty:            120,
		Staff:              20,
		Comments:           13400,
		Ratings:            5030,
		Years:              []int64{2006, 2007, 2008},
		CoursesPerQuarter:  2,
		QASeedPerDept:      1,
		StudentQuestions:   20,
		BookListings:       60,
	}
}

// Tiny is the unit-test preset.
func Tiny() Config {
	return Config{
		Seed:               42,
		Departments:        10,
		Courses:            220,
		DirectoryStudents:  120,
		RegisteredStudents: 80,
		Undergrads:         60,
		Faculty:            20,
		Staff:              5,
		Comments:           900,
		Ratings:            400,
		Years:              []int64{2007, 2008},
		CoursesPerQuarter:  2,
		QASeedPerDept:      1,
		StudentQuestions:   6,
		BookListings:       12,
	}
}

// Fig3Fraction and Fig4Fraction are the published calibration ratios.
const (
	fig3Fraction = 1160.0 / 18605.0 // courses matching "american"
	fig4Fraction = 123.0 / 1160.0   // of those, matching "african american"
)

// Manifest reports what the generator planted, for experiments that
// need stable anchors.
type Manifest struct {
	// Planted maps anchor names to course ids: intro-programming,
	// programming-methodology, advanced-programming,
	// programming-abstractions, operating-systems, greek-science,
	// java-programming.
	Planted map[string]int64
	// SampleStudent is a registered student with a dense rating history
	// (the paper's "student 444" role).
	SampleStudent int64
	// TwinStudent rates almost identically to SampleStudent.
	TwinStudent int64
	// ThemedCourses and AfricanAmericanCourses are the calibrated theme
	// counts (the expected Figure 3/4 result sizes).
	ThemedCourses          int
	AfricanAmericanCourses int
	// Programs lists the requirement programs defined.
	Programs []string
}

type subTheme uint8

const (
	themeNone subTheme = iota
	themePlain
	themeAfrican
	themeLatin
	themeIndians
)

type generator struct {
	site *core.Site
	cfg  Config
	rng  *rand.Rand
	man  *Manifest

	deptIDs        []string
	deptKind       map[string]string
	themedDepts    []string
	courseIDs      []int64
	courseTheme    map[int64]subTheme
	courseDiff     map[int64]float64 // 0 = easy A course, 1 = brutal
	courseDept     map[int64]string
	instructors    map[string][]int64 // dept → instructor ids
	studentIDs     []int64
	staffIDs       []int64
	facultyIDs     []int64
	bookIDs        []int64
	reservedTitles map[string]bool
}

// Populate fills an empty Site with a synthetic deployment and builds
// the derived tables and the search index. It must be called on a fresh
// site.
func Populate(site *core.Site, cfg Config) (*Manifest, error) {
	if len(cfg.Years) == 0 {
		return nil, fmt.Errorf("datagen: config needs at least one year")
	}
	g := &generator{
		site: site,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		man: &Manifest{
			Planted: map[string]int64{},
		},
		deptKind:       map[string]string{},
		courseTheme:    map[int64]subTheme{},
		courseDiff:     map[int64]float64{},
		courseDept:     map[int64]string{},
		instructors:    map[string][]int64{},
		reservedTitles: map[string]bool{},
	}
	steps := []func() error{
		g.genDepartments,
		g.genInstructors,
		g.genCourses,
		g.genOfferings,
		g.genPrereqs,
		g.genPeople,
		g.genEnrollments,
		g.genSampleRatings,
		g.genComments,
		g.genStandaloneRatings,
		g.genOfficialGrades,
		g.genTextbooks,
		g.genQA,
		g.genPrograms,
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	if err := site.RefreshDerived(); err != nil {
		return nil, err
	}
	if err := site.BuildSearchIndex(); err != nil {
		return nil, err
	}
	if err := site.BuildAuxIndexes(); err != nil {
		return nil, err
	}
	return g.man, nil
}

func (g *generator) genDepartments() error {
	n := g.cfg.Departments
	if n > len(departments) {
		n = len(departments)
	}
	for _, d := range departments[:n] {
		if err := g.site.Catalog.AddDepartment(catalog.Department{ID: d.ID, Name: d.Name, School: d.School}); err != nil {
			return err
		}
		g.deptIDs = append(g.deptIDs, d.ID)
		g.deptKind[d.ID] = d.Kind
		if themedDeptKinds[d.Kind] {
			g.themedDepts = append(g.themedDepts, d.ID)
		}
	}
	if len(g.themedDepts) == 0 {
		return fmt.Errorf("datagen: need at least one humanities/social department for theme calibration")
	}
	return nil
}

func (g *generator) name() string {
	return firstNames[g.rng.Intn(len(firstNames))] + " " + lastNames[g.rng.Intn(len(lastNames))]
}

func (g *generator) genInstructors() error {
	for i := 0; i < g.cfg.Faculty; i++ {
		dep := g.deptIDs[g.rng.Intn(len(g.deptIDs))]
		id, err := g.site.Catalog.AddInstructor(catalog.Instructor{Name: "Prof. " + g.name(), DepID: dep})
		if err != nil {
			return err
		}
		g.instructors[dep] = append(g.instructors[dep], id)
	}
	return nil
}

// plantCourse inserts one anchor course.
func (g *generator) plantCourse(key, dep, number, title, desc string, units int64) error {
	id, err := g.site.Catalog.AddCourse(catalog.Course{DepID: dep, Number: number, Title: title, Description: desc, Units: units})
	if err != nil {
		return err
	}
	g.man.Planted[key] = id
	g.courseIDs = append(g.courseIDs, id)
	g.courseTheme[id] = themeNone
	g.courseDiff[id] = 0.25 + 0.4*g.rng.Float64()
	g.courseDept[id] = dep
	return nil
}

func (g *generator) genCourses() error {
	// Anchors first (they take the lowest ids and hence sit in the
	// "popular" pool that attracts comments and enrollments).
	planted := []struct {
		key, dep, num, title, desc string
		units                      int64
	}{
		{"intro-programming", "CS", "106A", "Introduction to Programming",
			"Introduction to the engineering of computer programs: variables, control flow, decomposition, and testing. No prior experience required.", 5},
		{"programming-methodology", "CS", "106X", "Introduction to Programming Methodology",
			"Accelerated introduction covering abstraction, object decomposition and style for students with prior experience.", 5},
		{"programming-abstractions", "CS", "106B", "Programming Abstractions",
			"Abstraction and its relation to programming: recursion, classic data structures, and algorithm analysis.", 5},
		{"advanced-programming", "CS", "107", "Advanced Programming",
			"The machine model beneath the abstractions: memory, pointers, generic code, and performance.", 5},
		{"operating-systems", "CS", "140", "Operating Systems",
			"Processes, scheduling, virtual memory, file systems and concurrency, with a substantial kernel project.", 4},
		{"java-programming", "CS", "108", "Object Oriented Programming in Java",
			"Java language practice: object oriented design, collections, graphical interfaces, and a team project.", 4},
		{"greek-science", "HISTORY", "114", "History of Science in Antiquity",
			"The history of science from Thales to Ptolemy, centered on the famous greek scientists and their mathematical astronomy.", 3},
	}
	for _, p := range planted {
		if _, ok := g.site.Catalog.Department(p.dep); !ok {
			continue // tiny configs may omit the department
		}
		if err := g.plantCourse(p.key, p.dep, p.num, p.title, p.desc, p.units); err != nil {
			return err
		}
		g.reservedTitles[p.title] = true
	}

	nGen := g.cfg.Courses - len(g.courseIDs)
	if nGen < 0 {
		nGen = 0
	}
	themedTotal := int(math.Round(float64(g.cfg.Courses) * fig3Fraction))
	africanTotal := int(math.Round(float64(themedTotal) * fig4Fraction))
	latinTotal := int(math.Round(float64(themedTotal) * 0.15))
	indiansTotal := int(math.Round(float64(themedTotal) * 0.07))
	g.man.ThemedCourses = themedTotal
	g.man.AfricanAmericanCourses = africanTotal

	themedSoFar, africanSoFar, latinSoFar, indiansSoFar := 0, 0, 0, 0
	for i := 0; i < nGen; i++ {
		// Bresenham spread: exactly themedTotal of the nGen generated
		// courses carry the theme, evenly interleaved.
		themed := (i*themedTotal)/nGen != ((i+1)*themedTotal)/nGen
		theme := themeNone
		if themed {
			switch {
			case africanSoFar < africanTotal && themedSoFar%9 == 0:
				theme = themeAfrican
				africanSoFar++
			case latinSoFar < latinTotal && themedSoFar%9 == 1:
				theme = themeLatin
				latinSoFar++
			case indiansSoFar < indiansTotal && themedSoFar%9 == 2:
				theme = themeIndians
				indiansSoFar++
			default:
				theme = themePlain
			}
			themedSoFar++
		}
		if err := g.genOneCourse(i, theme); err != nil {
			return err
		}
	}
	// Distribute any sub-theme remainders onto plain themed courses.
	for _, rem := range []struct {
		left  *int
		total int
		theme subTheme
	}{{&africanSoFar, africanTotal, themeAfrican}, {&latinSoFar, latinTotal, themeLatin}, {&indiansSoFar, indiansTotal, themeIndians}} {
		for *rem.left < rem.total {
			if !g.promotePlain(rem.theme) {
				break
			}
			*rem.left++
		}
	}
	return nil
}

// promotePlain upgrades one plain-themed course to the given sub-theme,
// rewriting its description to carry the sub-theme phrase.
func (g *generator) promotePlain(to subTheme) bool {
	for _, id := range g.courseIDs {
		if g.courseTheme[id] != themePlain {
			continue
		}
		g.courseTheme[id] = to
		extra := g.themeSentence(to)
		err := g.site.DB.MustTable("Courses").UpdateByKey(
			[]relation.Value{id},
			func(r relation.Row) relation.Row {
				desc, _ := r[4].(string)
				r[4] = desc + " " + extra
				return r
			})
		return err == nil
	}
	return false
}

// themeSentence produces the guaranteed theme text for a description.
// Templates vary their connective words so the data cloud sees the
// thematic bigrams ("american history", "latin american") rather than
// frozen template artifacts.
func (g *generator) themeSentence(t subTheme) string {
	cw := func() string { return themeCowords[g.rng.Intn(len(themeCowords))] }
	pick := func(ts []string) string { return ts[g.rng.Intn(len(ts))] }
	switch t {
	case themePlain:
		return fmt.Sprintf(pick([]string{
			"A survey of american %s and the forces behind american %s.",
			"Explores american %s from the colonial era to the present, with a unit on %s.",
			"Readings trace american %s through primary sources and %s.",
			"How american %s shaped %s across the twentieth century.",
			"Seminar on american %s, with weekly debate over %s.",
			"Close study of american %s beside comparative cases in %s.",
		}), cw(), cw())
	case themeAfrican:
		return fmt.Sprintf(pick([]string{
			"Centers the african american experience in %s and american %s.",
			"Examines african american %s and its legacies for american %s.",
			"Traces african american %s from reconstruction onward, against american %s.",
			"Foregrounds african american %s, music, and american %s.",
		}), cw(), cw())
	case themeLatin:
		return fmt.Sprintf(pick([]string{
			"Comparative readings in latin american %s and american %s.",
			"Special attention to latin american %s alongside american %s.",
			"Surveys latin american %s and hemispheric american %s.",
			"New work on latin american %s in dialogue with american %s.",
		}), cw(), cw())
	case themeIndians:
		return fmt.Sprintf("Examines %s within american %s.", indiansContexts[g.rng.Intn(len(indiansContexts))], cw())
	}
	return ""
}

// sentence builds n neutral words, seasoned with the department's
// title-noun family.
func (g *generator) sentence(dep string, n int) string {
	kind := g.deptKind[dep]
	nouns := titleNouns[kind]
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		var w string
		if g.rng.Float64() < 0.15 && len(nouns) > 0 {
			w = nouns[g.rng.Intn(len(nouns))]
		} else {
			w = neutralWords[g.rng.Intn(len(neutralWords))]
		}
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, w...)
	}
	return string(out)
}

func (g *generator) genOneCourse(i int, theme subTheme) error {
	var dep string
	if theme != themeNone {
		dep = g.themedDepts[g.rng.Intn(len(g.themedDepts))]
	} else {
		dep = g.deptIDs[g.rng.Intn(len(g.deptIDs))]
	}
	kind := g.deptKind[dep]
	nouns := titleNouns[kind]
	noun := nouns[g.rng.Intn(len(nouns))]
	var title string
	switch g.rng.Intn(5) {
	case 0:
		title = "Introduction to " + noun
	case 1:
		title = "Advanced " + noun
	case 2:
		title = "Topics in " + noun
	case 3:
		title = noun + " " + titleAdjuncts[g.rng.Intn(len(titleAdjuncts))]
	default:
		title = noun + " and " + nouns[g.rng.Intn(len(nouns))]
	}
	// Themed courses often carry the theme in the title, like the
	// Figure 3 result list ("Latin American Studies", ...).
	if theme != themeNone && g.rng.Float64() < 0.4 {
		switch theme {
		case themeAfrican:
			title = "African American " + noun
		case themeLatin:
			title = "Latin American " + noun
		case themeIndians:
			title = "American Indians: " + noun
		default:
			title = "American " + noun
		}
	}
	// Anchor titles are reserved so the Figure 5(a) workflow has one
	// unambiguous target; colliding generated titles get a suffix.
	if g.reservedTitles[title] {
		title += " " + titleAdjuncts[g.rng.Intn(len(titleAdjuncts))]
	}
	desc := g.sentence(dep, 20+g.rng.Intn(25)) + "."
	if theme != themeNone {
		desc += " " + g.themeSentence(theme)
	}
	number := fmt.Sprintf("%d%s", 10+g.rng.Intn(280), string(rune('A'+g.rng.Intn(3))))
	id, err := g.site.Catalog.AddCourse(catalog.Course{
		DepID: dep, Number: number, Title: title, Description: desc,
		Units: int64(1 + g.rng.Intn(5)),
	})
	if err != nil {
		return err
	}
	g.courseIDs = append(g.courseIDs, id)
	g.courseTheme[id] = theme
	g.courseDiff[id] = g.rng.Float64()
	g.courseDept[id] = dep
	return nil
}

func (g *generator) genOfferings() error {
	slots := []struct {
		days       string
		start, end int64
	}{
		{"MWF", 9 * 60, 9*60 + 50}, {"MWF", 10 * 60, 10*60 + 50}, {"MWF", 11 * 60, 11*60 + 50},
		{"MWF", 13 * 60, 13*60 + 50}, {"TR", 9 * 60, 10*60 + 15}, {"TR", 11 * 60, 12*60 + 15},
		{"TR", 13*60 + 30, 14*60 + 45}, {"MW", 15 * 60, 16*60 + 20}, {"F", 13 * 60, 15 * 60},
	}
	terms := []catalog.Term{catalog.Autumn, catalog.Winter, catalog.Spring}
	for _, cid := range g.courseIDs {
		dep := g.courseDept[cid]
		insts := g.instructors[dep]
		n := 1 + g.rng.Intn(2)
		_, planted := g.plantedID(cid)
		for k := 0; k < n; k++ {
			year := g.cfg.Years[g.rng.Intn(len(g.cfg.Years))]
			if planted {
				// Anchors are always offered in the last (paper: 2008)
				// year so the Figure 5 workflows find them.
				year = g.cfg.Years[len(g.cfg.Years)-1]
			}
			slot := slots[g.rng.Intn(len(slots))]
			var inst int64
			if len(insts) > 0 {
				inst = insts[g.rng.Intn(len(insts))]
			}
			if _, err := g.site.Catalog.AddOffering(catalog.Offering{
				CourseID: cid, Year: year, Term: terms[g.rng.Intn(len(terms))],
				Days: slot.days, StartMin: slot.start, EndMin: slot.end, InstructorID: inst,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *generator) plantedID(cid int64) (string, bool) {
	for k, id := range g.man.Planted {
		if id == cid {
			return k, true
		}
	}
	return "", false
}

func (g *generator) genPrereqs() error {
	// Planted chain: 106A → 106B → 107; 106B → 140.
	chain := [][2]string{
		{"programming-abstractions", "intro-programming"},
		{"advanced-programming", "programming-abstractions"},
		{"operating-systems", "programming-abstractions"},
		{"java-programming", "intro-programming"},
	}
	for _, c := range chain {
		a, okA := g.man.Planted[c[0]]
		b, okB := g.man.Planted[c[1]]
		if okA && okB {
			if err := g.site.Catalog.AddPrereq(a, b); err != nil {
				return err
			}
		}
	}
	// Random in-department chains (acyclic by id order).
	byDept := map[string][]int64{}
	for _, cid := range g.courseIDs {
		byDept[g.courseDept[cid]] = append(byDept[g.courseDept[cid]], cid)
	}
	for _, ids := range byDept {
		for i := 1; i < len(ids); i++ {
			if g.rng.Float64() < 0.12 {
				if err := g.site.Catalog.AddPrereq(ids[i], ids[g.rng.Intn(i)]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (g *generator) genPeople() error {
	lastYear := g.cfg.Years[len(g.cfg.Years)-1]
	for i := 0; i < g.cfg.DirectoryStudents; i++ {
		undergrad := i < g.cfg.Undergrads || (i >= g.cfg.RegisteredStudents && g.rng.Float64() < 0.5)
		if err := g.site.Directory.Add(community.DirectoryEntry{
			Username:  fmt.Sprintf("stu%05d", i+1),
			Name:      g.name(),
			Role:      community.RoleStudent,
			DepID:     g.deptIDs[g.rng.Intn(len(g.deptIDs))],
			ClassYear: lastYear + 1 + int64(g.rng.Intn(4)),
			Undergrad: undergrad,
		}); err != nil {
			return err
		}
	}
	for i := 0; i < g.cfg.Faculty; i++ {
		if err := g.site.Directory.Add(community.DirectoryEntry{
			Username: fmt.Sprintf("fac%04d", i+1),
			Name:     g.name(),
			Role:     community.RoleFaculty,
			DepID:    g.deptIDs[g.rng.Intn(len(g.deptIDs))],
		}); err != nil {
			return err
		}
	}
	for i := 0; i < g.cfg.Staff; i++ {
		if err := g.site.Directory.Add(community.DirectoryEntry{
			Username: fmt.Sprintf("staff%03d", i+1),
			Name:     g.name(),
			Role:     community.RoleStaff,
			DepID:    g.deptIDs[g.rng.Intn(len(g.deptIDs))],
		}); err != nil {
			return err
		}
	}
	// Registration: the first RegisteredStudents students, every staff
	// member, and a twentieth of the faculty.
	for i := 0; i < g.cfg.RegisteredStudents; i++ {
		u, err := g.site.Community.Register(fmt.Sprintf("stu%05d", i+1))
		if err != nil {
			return err
		}
		g.studentIDs = append(g.studentIDs, u.ID)
		if g.rng.Float64() < 0.05 {
			if err := g.site.Community.SetSharePlans(u.ID, false); err != nil {
				return err
			}
		}
	}
	for i := 0; i < g.cfg.Staff; i++ {
		u, err := g.site.Community.Register(fmt.Sprintf("staff%03d", i+1))
		if err != nil {
			return err
		}
		g.staffIDs = append(g.staffIDs, u.ID)
	}
	for i := 0; i < g.cfg.Faculty; i += 20 {
		u, err := g.site.Community.Register(fmt.Sprintf("fac%04d", i+1))
		if err != nil {
			return err
		}
		g.facultyIDs = append(g.facultyIDs, u.ID)
	}
	if len(g.studentIDs) >= 444 {
		g.man.SampleStudent = g.studentIDs[443]
		g.man.TwinStudent = g.studentIDs[444]
	} else if len(g.studentIDs) >= 2 {
		g.man.SampleStudent = g.studentIDs[0]
		g.man.TwinStudent = g.studentIDs[1]
	}
	return nil
}

// pickCourse draws a course id with popularity skew: anchors and other
// low-id courses attract the bulk of activity, like a real catalog's
// intro courses.
func (g *generator) pickCourse() int64 {
	if g.rng.Float64() < 0.6 {
		pool := len(g.courseIDs) / 20
		if pool < 10 {
			pool = min(10, len(g.courseIDs))
		}
		return g.courseIDs[g.rng.Intn(pool)]
	}
	return g.courseIDs[g.rng.Intn(len(g.courseIDs))]
}

// gradeFor samples a letter grade from the course's difficulty profile.
func (g *generator) gradeFor(cid int64) catalog.Grade {
	mu := g.courseDiff[cid] * 6 // 0 (easy A) … 6 (C+ mean)
	idx := int(math.Round(mu + g.rng.NormFloat64()*1.6))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(catalog.LetterGrades) {
		idx = len(catalog.LetterGrades) - 1
	}
	return catalog.LetterGrades[idx]
}

func (g *generator) genEnrollments() error {
	terms := []catalog.Term{catalog.Autumn, catalog.Winter, catalog.Spring}
	lastYear := g.cfg.Years[len(g.cfg.Years)-1]
	for _, su := range g.studentIDs {
		taken := map[int64]bool{}
		for _, year := range g.cfg.Years {
			for _, term := range terms {
				n := 1 + g.rng.Intn(g.cfg.CoursesPerQuarter*2)
				for k := 0; k < n; k++ {
					cid := g.pickCourse()
					if taken[cid] {
						continue
					}
					taken[cid] = true
					planned := year == lastYear && term == catalog.Spring && g.rng.Float64() < 0.5
					e := planner.Entry{SuID: su, CourseID: cid, Year: year, Term: term, Planned: planned}
					if !planned && g.rng.Float64() < 0.9 {
						e.Grade = g.gradeFor(cid)
					}
					if err := g.site.Planner.Record(e); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// genSampleRatings plants a dense, predictable rating history for the
// sample student and a near-identical twin, so the Figure 5(b) workflow
// has a meaningful nearest neighbor at every scale.
func (g *generator) genSampleRatings() error {
	if g.man.SampleStudent == 0 {
		return nil
	}
	keys := []string{"intro-programming", "programming-abstractions", "advanced-programming",
		"operating-systems", "java-programming", "greek-science"}
	scores := []float64{5, 5, 4, 3, 4, 2}
	year := g.cfg.Years[len(g.cfg.Years)-1]
	for i, key := range keys {
		cid, ok := g.man.Planted[key]
		if !ok {
			continue
		}
		for _, pair := range []struct {
			su    int64
			delta float64
		}{{g.man.SampleStudent, 0}, {g.man.TwinStudent, 0}} {
			if pair.su == 0 {
				continue
			}
			r := scores[i] + pair.delta
			if _, err := g.site.Comments.Add(comments.Comment{
				SuID: pair.su, CourseID: cid, Year: year, Term: "Autumn",
				Text:   g.commentText(cid),
				Rating: r, Date: fmt.Sprintf("%d-10-01", year),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// commentText builds one comment for a course, theme-aware.
func (g *generator) commentText(cid int64) string {
	text := commentOpeners[g.rng.Intn(len(commentOpeners))] + ". " +
		g.sentence(g.courseDept[cid], 6+g.rng.Intn(14))
	theme := g.courseTheme[cid]
	if theme == themeNone {
		return text
	}
	cw := func() string { return themeCowords[g.rng.Intn(len(themeCowords))] }
	pick := func(ts []string) string { return ts[g.rng.Intn(len(ts))] }
	if g.rng.Float64() < 0.5 {
		text += pick([]string{
			" loved the american %s unit",
			" strong weeks on american %s",
			" the american %s readings were great",
			" wish there was more american %s",
			" american %s came alive here",
			" finally understood american %s",
		})
		text = fmt.Sprintf(text, cw())
	}
	if g.rng.Float64() < 0.35 {
		switch theme {
		case themeAfrican:
			text += fmt.Sprintf(pick([]string{
				" and the african american %s unit was the highlight",
				" best part was the african american %s week",
				" the african american %s sources were moving",
			}), cw())
		case themeLatin:
			text += fmt.Sprintf(pick([]string{
				" and the latin american %s readings were strong",
				" the latin american %s section surprised me",
				" more latin american %s please",
			}), cw())
		case themeIndians:
			text += " and the weeks on " + indiansContexts[g.rng.Intn(len(indiansContexts))] + " were fascinating"
		default:
			text += fmt.Sprintf(pick([]string{
				" especially the american %s debates",
				" the discussion of american %s got heated",
				" great lectures on american %s",
			}), cw())
		}
	}
	return text
}

func (g *generator) genComments() error {
	if len(g.studentIDs) == 0 {
		return nil
	}
	terms := []string{"Autumn", "Winter", "Spring"}
	remaining := g.cfg.Comments - g.site.Comments.Count()
	for i := 0; i < remaining; i++ {
		cid := g.pickCourse()
		su := g.studentIDs[g.rng.Intn(len(g.studentIDs))]
		year := g.cfg.Years[g.rng.Intn(len(g.cfg.Years))]
		c := comments.Comment{
			SuID: su, CourseID: cid, Year: year, Term: terms[g.rng.Intn(len(terms))],
			Text: g.commentText(cid),
			Date: fmt.Sprintf("%d-%02d-%02d", year, 1+g.rng.Intn(12), 1+g.rng.Intn(28)),
		}
		if g.rng.Float64() < 0.8 {
			// Ratings lean toward the course's quality profile.
			r := 5.5 - g.courseDiff[cid]*3 + g.rng.NormFloat64()
			if r < 1 {
				r = 1
			}
			if r > 5 {
				r = 5
			}
			c.Rating = math.Round(r)
		}
		if _, err := g.site.Comments.Add(c); err != nil {
			return err
		}
	}
	// A sprinkling of accuracy votes so comment quality ordering is live.
	votes := remaining / 20
	maxComment := int64(g.site.Comments.Count())
	for i := 0; i < votes; i++ {
		commentID := 1 + g.rng.Int63n(maxComment)
		voter := g.studentIDs[g.rng.Intn(len(g.studentIDs))]
		if err := g.site.Comments.VoteAccuracy(commentID, voter, g.rng.Float64() < 0.8); err != nil {
			return err
		}
	}
	// Faculty participation (§2): instructor notes on the anchor
	// courses and responses to a few early comments.
	for _, key := range []string{"intro-programming", "operating-systems"} {
		cid, ok := g.man.Planted[key]
		if !ok {
			continue
		}
		insts := g.instructors[g.courseDept[cid]]
		if len(insts) == 0 {
			continue
		}
		if _, err := g.site.Comments.AddNote(cid, insts[0],
			"Updated syllabus this year; see the new project sequence and office hours."); err != nil {
			return err
		}
	}
	for i := int64(1); i <= maxComment && i <= 20; i += 4 {
		insts := g.instructors[g.deptIDs[0]]
		if len(insts) == 0 {
			break
		}
		if _, err := g.site.Comments.Respond(i, insts[0],
			"Thanks for the feedback; the grading rubric is posted."); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) genStandaloneRatings() error {
	if len(g.studentIDs) == 0 {
		return nil
	}
	attempts := 0
	for g.site.Comments.RatingCount() < g.cfg.Ratings && attempts < g.cfg.Ratings*3 {
		attempts++
		cid := g.pickCourse()
		su := g.studentIDs[g.rng.Intn(len(g.studentIDs))]
		r := 5.5 - g.courseDiff[cid]*3 + g.rng.NormFloat64()
		if r < 1 {
			r = 1
		}
		if r > 5 {
			r = 5
		}
		if err := g.site.Comments.Rate(su, cid, math.Round(r)); err != nil {
			return err
		}
	}
	return nil
}

// gradeProfile returns the per-letter probability distribution implied
// by a course's difficulty (the same normal model gradeFor samples).
func (g *generator) gradeProfile(cid int64) []float64 {
	mu := g.courseDiff[cid] * 6
	const sigma = 1.6
	probs := make([]float64, len(catalog.LetterGrades))
	total := 0.0
	for i := range probs {
		d := (float64(i) - mu) / sigma
		probs[i] = math.Exp(-0.5 * d * d)
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	return probs
}

// genOfficialGrades loads official distributions as the *expected*
// counts of the same per-course difficulty profile the self-reported
// grades are sampled from. The registrar sees the whole class while
// CourseRank sees a sample, so the official side is the low-noise one —
// which is what makes the §2.2 Engineering comparison come out "very
// close".
func (g *generator) genOfficialGrades() error {
	for i, cid := range g.courseIDs {
		// Official data exists for roughly half the catalog, always
		// including the popular pool.
		if i >= len(g.courseIDs)/20 && g.rng.Float64() > 0.5 {
			continue
		}
		classSize := 15 + g.rng.Intn(120)
		probs := g.gradeProfile(cid)
		for gi, p := range probs {
			n := int(math.Round(p * float64(classSize)))
			if n == 0 {
				continue
			}
			if err := g.site.Stats.LoadOfficial(cid, g.cfg.Years[len(g.cfg.Years)-1], catalog.LetterGrades[gi], n); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *generator) genTextbooks() error {
	for i, cid := range g.courseIDs {
		if g.rng.Float64() > 0.3 {
			continue
		}
		var reporter int64
		if len(g.studentIDs) > 0 && g.rng.Float64() < 0.8 {
			reporter = g.studentIDs[g.rng.Intn(len(g.studentIDs))]
		}
		title := fmt.Sprintf("%s of %s",
			bookTitleWords[g.rng.Intn(len(bookTitleWords))],
			titleNouns[g.deptKind[g.courseDept[cid]]][g.rng.Intn(len(titleNouns[g.deptKind[g.courseDept[cid]]]))])
		bid, err := g.site.Catalog.ReportTextbook(catalog.Textbook{
			CourseID: cid, Title: title, Author: g.name(), ReportedBy: reporter,
		})
		if err != nil {
			return err
		}
		g.bookIDs = append(g.bookIDs, bid)
		_ = i
	}
	// Listings against the reported books.
	for i := 0; i < g.cfg.BookListings && len(g.bookIDs) > 0 && len(g.studentIDs) > 0; i++ {
		side := bookx.Buy
		price := 20 + g.rng.Float64()*60
		if g.rng.Float64() < 0.5 {
			side = bookx.Sell
			price = 15 + g.rng.Float64()*70
		}
		if _, err := g.site.Books.Post(bookx.Listing{
			BookID: g.bookIDs[g.rng.Intn(len(g.bookIDs))],
			SuID:   g.studentIDs[g.rng.Intn(len(g.studentIDs))],
			Side:   side, Price: math.Round(price),
		}); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) genQA() error {
	if len(g.staffIDs) > 0 {
		faqs := []struct{ q, a string }{
			{"Who do I see to have my program approved?", "Bring the worksheet to your department student services office."},
			{"What is a good introductory class for non-majors?", "Look for 3-unit introductory courses without prerequisites and read the course cloud."},
		}
		for _, dep := range g.deptIDs {
			for k := 0; k < g.cfg.QASeedPerDept && k < len(faqs); k++ {
				staff := g.staffIDs[g.rng.Intn(len(g.staffIDs))]
				if _, err := g.site.QA.SeedFAQ(staff, dep, faqs[k].q, faqs[k].q, faqs[k].a); err != nil {
					return err
				}
			}
		}
	}
	if len(g.studentIDs) < 3 {
		return nil
	}
	for i := 0; i < g.cfg.StudentQuestions; i++ {
		asker := g.studentIDs[g.rng.Intn(len(g.studentIDs))]
		dep := g.deptIDs[g.rng.Intn(len(g.deptIDs))]
		qid, _, err := g.site.QA.Ask(qa.Question{
			SuID:  asker,
			Title: fmt.Sprintf("Is %s manageable alongside a full load?", dep),
			Text:  g.sentence(dep, 12),
			DepID: dep,
		})
		if err != nil {
			return err
		}
		nAns := 1 + g.rng.Intn(3)
		var aids []int64
		for k := 0; k < nAns; k++ {
			aid, err := g.site.QA.Answer(qa.Answer{QID: qid, SuID: g.studentIDs[g.rng.Intn(len(g.studentIDs))], Text: g.sentence(dep, 10)})
			if err != nil {
				return err
			}
			aids = append(aids, aid)
		}
		for k := 0; k < g.rng.Intn(4); k++ {
			_ = g.site.QA.Vote(aids[g.rng.Intn(len(aids))], g.studentIDs[g.rng.Intn(len(g.studentIDs))])
		}
		if g.rng.Float64() < 0.5 {
			if err := g.site.QA.MarkBest(qid, aids[0], asker); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *generator) genPrograms() error {
	intro, ok1 := g.man.Planted["intro-programming"]
	abstr, ok2 := g.man.Planted["programming-abstractions"]
	if ok1 && ok2 {
		var electives []int64
		for _, c := range g.site.Catalog.CoursesByDept("CS") {
			electives = append(electives, c.ID)
			if len(electives) >= 12 {
				break
			}
		}
		prog := requirements.Program{
			Name:  "CS-BS",
			DepID: "CS",
			Requirements: []requirements.Requirement{
				{Name: "Introductory sequence", Kind: requirements.KindAll, Courses: []int64{intro, abstr}},
				{Name: "Systems depth", Kind: requirements.KindChoose, K: 1, Courses: plantedList(g.man, "advanced-programming", "operating-systems", "java-programming")},
				{Name: "Electives", Kind: requirements.KindUnits, Units: 12, Courses: electives},
			},
		}
		if err := g.site.Requirements.Define(prog); err != nil {
			return err
		}
		g.man.Programs = append(g.man.Programs, "CS-BS")
	}
	// One humanities program over the largest themed department.
	if len(g.themedDepts) > 0 {
		dep := g.themedDepts[0]
		var ids []int64
		for _, c := range g.site.Catalog.CoursesByDept(dep) {
			ids = append(ids, c.ID)
			if len(ids) >= 10 {
				break
			}
		}
		if len(ids) >= 3 {
			prog := requirements.Program{
				Name:  dep + "-BA",
				DepID: dep,
				Requirements: []requirements.Requirement{
					{Name: "Core", Kind: requirements.KindChoose, K: 2, Courses: ids[:3]},
					{Name: "Breadth", Kind: requirements.KindUnits, Units: 9, Courses: ids},
				},
			}
			if err := g.site.Requirements.Define(prog); err != nil {
				return err
			}
			g.man.Programs = append(g.man.Programs, prog.Name)
		}
	}
	return nil
}

func plantedList(m *Manifest, keys ...string) []int64 {
	var out []int64
	for _, k := range keys {
		if id, ok := m.Planted[k]; ok {
			out = append(out, id)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package datagen

import (
	"bytes"
	"testing"

	"courserank/internal/core"
	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// populateTiny builds a Tiny site once per test needing it.
func populateTiny(t *testing.T) (*core.Site, *Manifest) {
	t.Helper()
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	man, err := Populate(site, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return site, man
}

func TestTinyScaleCounts(t *testing.T) {
	site, man := populateTiny(t)
	cfg := Tiny()
	scale := site.Scale()
	if scale.Courses != cfg.Courses {
		t.Errorf("courses = %d, want %d", scale.Courses, cfg.Courses)
	}
	if scale.Comments != cfg.Comments {
		t.Errorf("comments = %d, want %d", scale.Comments, cfg.Comments)
	}
	if scale.Ratings != cfg.Ratings {
		t.Errorf("ratings = %d, want %d", scale.Ratings, cfg.Ratings)
	}
	if scale.DirectorySize != cfg.DirectoryStudents+cfg.Faculty+cfg.Staff {
		t.Errorf("directory = %d", scale.DirectorySize)
	}
	if man.SampleStudent == 0 || man.TwinStudent == 0 {
		t.Error("sample students should be assigned")
	}
	if len(man.Planted) < 6 {
		t.Errorf("planted = %v", man.Planted)
	}
}

// TestThemeCalibration is the heart of Figures 3 and 4: the "american"
// search count equals the themed-course count, and refining to
// "african american" matches the sub-theme count.
func TestThemeCalibration(t *testing.T) {
	site, man := populateTiny(t)
	res, err := site.SearchCourses("american")
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != man.ThemedCourses {
		t.Errorf("search 'american' = %d results, want exactly %d", res.Total(), man.ThemedCourses)
	}
	ref, err := site.RefineSearch(res, "african american")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Total() != man.AfricanAmericanCourses {
		t.Errorf("refine 'african american' = %d, want exactly %d", ref.Total(), man.AfricanAmericanCourses)
	}
	// Proportions follow the paper's 1160/18605 and 123/1160.
	cfg := Tiny()
	wantThemed := int(float64(cfg.Courses)*1160.0/18605.0 + 0.5)
	if man.ThemedCourses != wantThemed {
		t.Errorf("themed = %d, want %d", man.ThemedCourses, wantThemed)
	}
}

func TestCloudContainsSubThemes(t *testing.T) {
	site, _ := populateTiny(t)
	res, err := site.SearchCourses("american")
	if err != nil {
		t.Fatal(err)
	}
	c, err := site.CourseCloud(res, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Terms) == 0 {
		t.Fatal("cloud is empty")
	}
	if c.Has("american") {
		t.Error("query term must not appear in its own cloud")
	}
	// At tiny scale at least one of the published sub-themes should
	// surface.
	if !c.Has("latin american") && !c.Has("african american") && !c.Has("history") && !c.Has("politics") {
		t.Errorf("no sub-theme in cloud: %s", c.String())
	}
}

func TestFigure5aWorkflowOnGeneratedData(t *testing.T) {
	site, man := populateTiny(t)
	res, err := site.Strategies.Run(site.Flex, "related-courses", map[string]any{
		"title": "Introduction to Programming",
		"year":  int64(2008),
		"k":     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no related courses")
	}
	ti := res.MustCol("Title")
	if res.Rows[0][ti] != "Introduction to Programming" {
		t.Errorf("top related course = %v", res.Rows[0][ti])
	}
	_ = man
}

func TestFigure5bWorkflowOnGeneratedData(t *testing.T) {
	site, man := populateTiny(t)
	res, err := site.Strategies.Run(site.Flex, "cf-courses", map[string]any{
		"student": man.SampleStudent,
		"k":       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no CF recommendations")
	}
	si := res.MustCol("Score")
	if res.Rows[0][si].(float64) <= 0 {
		t.Errorf("top score = %v", res.Rows[0][si])
	}
}

func TestGradePeersStrategy(t *testing.T) {
	site, man := populateTiny(t)
	res, err := site.Strategies.Run(site.Flex, "grade-peers", map[string]any{
		"student": man.SampleStudent,
		"k":       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("grade-peers returned nothing")
	}
}

func TestHybridStrategy(t *testing.T) {
	site, man := populateTiny(t)
	res, err := site.Strategies.Run(site.Flex, "hybrid", map[string]any{
		"student": man.SampleStudent,
		"title":   "Introduction to Programming",
		"k":       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("hybrid returned nothing")
	}
	// The title-identical course should blend to the top (content 1.0
	// plus its CF contribution).
	ci := res.MustCol("CourseID")
	if res.Rows[0][ci] != man.Planted["intro-programming"] {
		t.Errorf("top hybrid = %v", res.Rows[0][ci])
	}
}

func TestDepartmentPopularStrategy(t *testing.T) {
	site, _ := populateTiny(t)
	res, err := site.Strategies.Run(site.Flex, "department-popular", map[string]any{"dep": "CS", "k": 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("department-popular returned nothing")
	}
}

func TestRequirementProgramsDefined(t *testing.T) {
	site, man := populateTiny(t)
	if len(man.Programs) == 0 {
		t.Fatal("no programs defined")
	}
	prog, ok := site.Requirements.Get("CS-BS")
	if !ok {
		t.Fatal("CS-BS missing")
	}
	// A student who took the full intro sequence plus systems satisfies
	// the first two requirements.
	taken := []int64{
		man.Planted["intro-programming"],
		man.Planted["programming-abstractions"],
		man.Planted["operating-systems"],
	}
	rep := site.RequirementsCheck(prog, taken)
	if !rep.Results[0].Satisfied || !rep.Results[1].Satisfied {
		t.Errorf("intro+systems should satisfy: %+v", rep.Results[:2])
	}
}

func TestDeterminism(t *testing.T) {
	s1, m1 := populateTiny(t)
	s2, m2 := populateTiny(t)
	if m1.ThemedCourses != m2.ThemedCourses || m1.SampleStudent != m2.SampleStudent {
		t.Error("generation is not deterministic")
	}
	r1, _ := s1.SearchCourses("american")
	r2, _ := s2.SearchCourses("american")
	if r1.Total() != r2.Total() {
		t.Error("search results differ across identical seeds")
	}
	if len(r1.Hits) > 0 && r1.Hits[0].DocID != r2.Hits[0].DocID {
		t.Error("rankings differ across identical seeds")
	}
}

func TestTable1Verified(t *testing.T) {
	site, _ := populateTiny(t)
	rows := site.Table1()
	if len(rows) != 10 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("row %q not verified against the live instance", r.Dimension)
		}
	}
}

func TestComponentsAllHealthy(t *testing.T) {
	site, _ := populateTiny(t)
	for _, c := range site.Components() {
		if !c.OK {
			t.Errorf("component %q unhealthy", c.Name)
		}
	}
	if len(site.Components()) != 13 {
		t.Errorf("components = %d", len(site.Components()))
	}
}

func TestExpertRouting(t *testing.T) {
	site, _ := populateTiny(t)
	experts := site.QA.ByDepartment("CS")
	if len(experts) == 0 {
		t.Error("CS should have seeded FAQs")
	}
}

func TestSnapshotRoundTripOfDeployment(t *testing.T) {
	site, _ := populateTiny(t)
	var buf bytes.Buffer
	if err := site.DB.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := relation.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Every table survives with identical cardinality.
	for _, name := range site.DB.Names() {
		orig, _ := site.DB.Table(name)
		got, ok := loaded.Table(name)
		if !ok {
			t.Fatalf("table %s lost", name)
		}
		if got.Len() != orig.Len() {
			t.Errorf("table %s: %d rows, want %d", name, got.Len(), orig.Len())
		}
	}
	// And the SQL engine works against the restored database.
	res, err := sqlmini.New(loaded).Query(`SELECT COUNT(*) FROM Courses`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(site.Scale().Courses) {
		t.Errorf("restored course count = %v", res.Rows[0][0])
	}
}

func TestFacultyContentGenerated(t *testing.T) {
	site, man := populateTiny(t)
	notes := site.Comments.Notes(man.Planted["intro-programming"])
	if len(notes) == 0 {
		t.Error("anchor course should have an instructor note")
	}
	// At least one early comment has an instructor response.
	found := false
	for i := int64(1); i <= 20; i++ {
		if len(site.Comments.Responses(i)) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no instructor responses generated")
	}
}

func TestPopulateValidation(t *testing.T) {
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Populate(site, Config{}); err == nil {
		t.Error("empty config should fail")
	}
}

package datagen

// This file holds the controlled vocabularies of the generator. The
// Figure 3/4 calibration depends on one invariant: the theme tokens
// ("american", "african", "latin", "indians") appear ONLY in text
// generated for theme-assigned courses, so the result count of the
// query "american" equals the themed-course count exactly.

// departments is the university layout; the first Config.Departments
// entries are used. Department and school names deliberately avoid the
// theme tokens.
var departments = []struct {
	ID     string
	Name   string
	School string
	Kind   string // vocabulary family
}{
	{"CS", "Computer Science", "Engineering", "eng"},
	{"EE", "Electrical Engineering", "Engineering", "eng"},
	{"ME", "Mechanical Engineering", "Engineering", "eng"},
	{"CHEMENG", "Chemical Engineering", "Engineering", "eng"},
	{"CEE", "Civil and Environmental Engineering", "Engineering", "eng"},
	{"MSE", "Management Science and Engineering", "Engineering", "eng"},
	{"AERO", "Aeronautics and Astronautics", "Engineering", "eng"},
	{"BIOE", "Bioengineering", "Engineering", "eng"},
	{"HISTORY", "History", "Humanities and Sciences", "hum"},
	{"ENGLISH", "English", "Humanities and Sciences", "hum"},
	{"CLASSICS", "Classics", "Humanities and Sciences", "hum"},
	{"PHIL", "Philosophy", "Humanities and Sciences", "hum"},
	{"MUSIC", "Music", "Humanities and Sciences", "hum"},
	{"ARTHIST", "Art History", "Humanities and Sciences", "hum"},
	{"DRAMA", "Drama", "Humanities and Sciences", "hum"},
	{"LINGUIST", "Linguistics", "Humanities and Sciences", "hum"},
	{"POLISCI", "Political Science", "Humanities and Sciences", "soc"},
	{"ECON", "Economics", "Humanities and Sciences", "soc"},
	{"PSYCH", "Psychology", "Humanities and Sciences", "soc"},
	{"SOC", "Sociology", "Humanities and Sciences", "soc"},
	{"COMM", "Communication", "Humanities and Sciences", "soc"},
	{"INTLREL", "International Relations", "Humanities and Sciences", "soc"},
	{"MATH", "Mathematics", "Humanities and Sciences", "sci"},
	{"STATS", "Statistics", "Humanities and Sciences", "sci"},
	{"PHYSICS", "Physics", "Humanities and Sciences", "sci"},
	{"CHEM", "Chemistry", "Humanities and Sciences", "sci"},
	{"BIO", "Biology", "Humanities and Sciences", "sci"},
	{"GEOPHYS", "Geophysics", "Earth Sciences", "sci"},
	{"EESS", "Earth System Science", "Earth Sciences", "sci"},
	{"ENERGY", "Energy Resources", "Earth Sciences", "sci"},
	{"MED", "Medicine", "Medicine", "sci"},
	{"HRP", "Health Research and Policy", "Medicine", "soc"},
	{"LAW", "Law", "Law", "soc"},
	{"GSB", "Business", "Business", "soc"},
	{"EDUC", "Education", "Education", "soc"},
	{"FRENCH", "French and Italian", "Humanities and Sciences", "hum"},
	{"GERMAN", "German Studies", "Humanities and Sciences", "hum"},
	{"EASTASIA", "East Asian Studies", "Humanities and Sciences", "hum"},
	{"RELIGST", "Religious Studies", "Humanities and Sciences", "hum"},
	{"ATHLETIC", "Athletics and Wellness", "Humanities and Sciences", "soc"},
}

// themedDeptKinds are the vocabulary families eligible to host themed
// (american-topic) courses; engineering catalogs plausibly stay neutral.
var themedDeptKinds = map[string]bool{"hum": true, "soc": true}

// titleNouns per vocabulary family feed the course-title templates.
var titleNouns = map[string][]string{
	"eng": {"Programming", "Systems", "Algorithms", "Networks", "Databases", "Compilers",
		"Robotics", "Circuits", "Signals", "Control", "Thermodynamics", "Fluids",
		"Materials", "Optimization", "Graphics", "Security", "Architecture", "Machines"},
	"hum": {"Literature", "Poetry", "Drama", "Philosophy", "Ethics", "Mythology",
		"Novels", "Rhetoric", "Criticism", "Aesthetics", "Translation", "Memory",
		"Narrative", "Language", "Opera", "Painting", "Sculpture", "Film"},
	"soc": {"Politics", "Markets", "Behavior", "Cognition", "Policy", "Institutions",
		"Development", "Justice", "Media", "Organizations", "Negotiation", "Elections",
		"Globalization", "Cities", "Migration", "Education", "Health", "Leadership"},
	"sci": {"Calculus", "Probability", "Mechanics", "Electromagnetism", "Genetics",
		"Ecology", "Evolution", "Biochemistry", "Astrophysics", "Geology",
		"Climate", "Oceanography", "Neuroscience", "Statistics", "Topology", "Analysis"},
}

// titleAdjuncts complete two-noun titles.
var titleAdjuncts = []string{
	"Theory", "Methods", "Practice", "Foundations", "Applications",
	"Perspectives", "Workshop", "Laboratory", "Seminar", "Studio",
}

// neutralWords build descriptions and comments for every course. The
// theme tokens and their sub-theme words never appear here.
var neutralWords = []string{
	"course", "students", "weekly", "project", "reading", "discussion", "lecture",
	"analysis", "methods", "theory", "practice", "introduction", "survey", "advanced",
	"topics", "research", "writing", "problem", "sets", "exam", "final", "midterm",
	"group", "work", "presentation", "seminar", "laboratory", "section", "required",
	"elective", "concepts", "skills", "techniques", "approaches", "frameworks",
	"models", "case", "studies", "examples", "applications", "foundations",
	"principles", "perspectives", "critical", "thinking", "evidence", "argument",
	"sources", "texts", "materials", "tools", "design", "evaluation", "review",
	"background", "preparation", "instructor", "guest", "speakers", "field", "trips",
	"workshop", "portfolio", "capstone", "thesis", "independent", "study",
	"collaboration", "teamwork", "feedback", "revision", "draft", "quarter",
	"units", "grading", "attendance", "participation", "syllabus", "schedule",
	"office", "hours", "recommended", "optional", "challenging", "rewarding",
	"interesting", "engaging", "rigorous", "fast", "paced", "gentle", "thorough",
	"deep", "broad", "practical", "theoretical", "hands", "modern", "classical",
	"contemporary", "fundamental", "essential", "useful", "helpful", "clear",
	"organized", "fair", "generous", "tough", "demanding", "inspiring", "fun",
	"unit", "week", "weeks", "part", "readings", "lectures", "debates",
	"era", "material", "discussions", "primary", "forces", "legacies",
	"loved", "wish", "finally", "understood", "heated", "alive", "came",
	"got", "strong", "best", "moving", "highlight", "section", "stood",
	"surveys", "explores", "examines", "traces", "centers", "foregrounds",
	"comparative", "close", "beside", "against", "sources", "onward",
}

// commentOpeners start generated comments; kept free of theme tokens.
var commentOpeners = []string{
	"loved this class", "great course overall", "tough but rewarding",
	"the lectures were excellent", "problem sets took forever",
	"best class i have taken", "would not recommend", "surprisingly enjoyable",
	"the instructor was amazing", "grading felt fair", "readings were heavy",
	"perfect for beginners", "only take this if prepared", "solid introduction",
	"changed how i think", "easy and fun", "a lot of work", "well organized",
	"sections were useful", "exams were reasonable",
}

// themeCowords co-occur with the theme inside themed text; several also
// exist in neutral vocabulary families, so their cloud significance
// comes from enrichment rather than exclusivity.
var themeCowords = []string{
	"history", "politics", "culture", "literature", "society", "democracy",
	"immigration", "jazz", "slavery", "cinema", "identity", "frontier",
	"revolution", "civil", "rights", "labor", "religion", "press",
}

// indiansContexts give the "indians" unigram varied neighbors so the
// cloud shows it standalone (as Figure 3 does) instead of a single
// frozen bigram.
var indiansContexts = []string{
	"american indians and tribal nations",
	"indians of the great plains",
	"history of the indians before settlement",
	"indians in the southwest borderlands",
}

// firstNames and lastNames build people; no theme tokens.
var firstNames = []string{
	"Alice", "Ben", "Carla", "David", "Elena", "Frank", "Grace", "Hugo",
	"Irene", "James", "Karen", "Liam", "Maria", "Noah", "Olga", "Peter",
	"Quinn", "Rosa", "Sam", "Tina", "Umar", "Vera", "Walt", "Xenia",
	"Yuri", "Zoe", "Amir", "Bella", "Chen", "Dora", "Emil", "Fiona",
	"Gita", "Hans", "Ines", "Jorge", "Kira", "Lars", "Mona", "Nils",
	"Omar", "Pia", "Ravi", "Sara", "Tom", "Ula", "Viktor", "Wendy",
}

var lastNames = []string{
	"Anderson", "Brooks", "Chavez", "Dimitrov", "Evans", "Fischer", "Garcia",
	"Huang", "Ivanov", "Johnson", "Kim", "Lopez", "Miller", "Nguyen",
	"Okafor", "Patel", "Quist", "Rossi", "Sato", "Tanaka", "Ueda", "Vasquez",
	"Wong", "Xu", "Yamamoto", "Zhang", "Ahmed", "Bauer", "Costa", "Dubois",
	"Eriksen", "Ferrari", "Gupta", "Hansen", "Ito", "Jensen", "Kumar",
	"Larsen", "Moreau", "Novak", "Olsen", "Popov", "Quinn", "Rahman",
	"Silva", "Torres", "Ural", "Weber",
}

// bookTitleWords build textbook titles.
var bookTitleWords = []string{
	"Principles", "Foundations", "Handbook", "Introduction", "Elements",
	"Concepts", "Readings", "Essentials", "Companion", "Anthology",
}

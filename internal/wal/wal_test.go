package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, path string, opts Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs := openT(t, path, Options{Sync: SyncAlways})
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(7, []byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := openT(t, path, Options{Sync: SyncAlways})
	defer l2.Close()
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Type != 7 || string(r.Data) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Appends continue the LSN sequence.
	if lsn, err := l2.Append(7, []byte("more")); err != nil || lsn != 6 {
		t.Fatalf("append after reopen: lsn %d err %v", lsn, err)
	}
}

// TestTornTailDiscarded cuts the file mid-record and mid-header; the
// torn record vanishes, earlier ones survive, and the file is
// physically truncated back to a record boundary so appends resume
// cleanly.
func TestTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	var ends []int64
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 20)); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Size())
	}
	l.Sync()
	l.Close()

	for _, cut := range []int64{ends[2] - 3, ends[1] + 5, ends[1] + recHeader + 1} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		torn := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs := openT(t, torn, Options{Sync: SyncAlways})
		want := 1
		if cut >= ends[1] {
			want = 2
		}
		if len(recs) != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(recs), want)
		}
		// The torn bytes are gone from disk and the next append lands on
		// a clean boundary.
		if st, _ := os.Stat(torn); st.Size() != ends[want-1] {
			t.Fatalf("cut at %d: file size %d, want %d", cut, st.Size(), ends[want-1])
		}
		lsn, err := l2.Append(2, []byte("after"))
		if err != nil || lsn != uint64(want+1) {
			t.Fatalf("append after torn recovery: lsn %d err %v", lsn, err)
		}
		l2.Close()
		recs2, err := ScanFile(torn)
		if err != nil || len(recs2) != want+1 {
			t.Fatalf("rescan: %d records err %v", len(recs2), err)
		}
	}
}

// TestCorruptTailDiscarded flips a byte in the LAST record's payload:
// scan must stop before it, keeping the intact prefix.
func TestCorruptTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	size := l.Size()
	l.Sync()
	l.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, size-5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs := openT(t, path, Options{Sync: SyncAlways})
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after corrupt tail, want 2", len(recs))
	}
}

func TestTruncatePreservesLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	for i := 0; i < 4; i++ {
		if _, err := l.Append(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.Append(1, []byte("y")); err != nil || lsn != 5 {
		t.Fatalf("append after truncate: lsn %d err %v", lsn, err)
	}
	l.Close()
	l2, recs := openT(t, path, Options{Sync: SyncAlways})
	defer l2.Close()
	if len(recs) != 1 || recs[0].LSN != 5 {
		t.Fatalf("after truncate+reopen: %d records, first LSN %d", len(recs), recs[0].LSN)
	}
}

// TestGroupCommit runs concurrent committers under SyncAlways and
// checks every commit became durable with fewer fsyncs than commits
// (the group shared flushes).
func TestGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	defer l.Close()
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append(3, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := l.Commit(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != writers*per || st.Commits != writers*per {
		t.Fatalf("stats %+v", st)
	}
	if st.DurableLSN != st.LastLSN {
		t.Fatalf("durable %d != last %d", st.DurableLSN, st.LastLSN)
	}
	if st.Syncs+st.GroupRides < st.Commits {
		t.Fatalf("every commit must fsync or ride one: %+v", st)
	}
}

func TestAsyncFlusher(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path, Options{Sync: SyncNone, FlushEvery: 5 * time.Millisecond})
	lsn, err := l.Append(1, []byte("async"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err) // must not block
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().DurableLSN < lsn {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never made the record durable")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

// Package wal implements the write-ahead redo log under the relational
// store. The log is an append-only file of checksummed, LSN-stamped
// records; the relation layer journals the logical effects of every
// mutation here before acknowledging it, and crash recovery replays the
// committed records onto the last checkpoint.
//
// Record format (little-endian):
//
//	uint32  payload length
//	uint32  CRC32-Castagnoli over (lsn, type, payload)
//	uint64  LSN
//	uint8   record type (opaque to this package)
//	[]byte  payload
//
// The file starts with a small header carrying a magic string and the
// start LSN — the LSN of the last record truncated away by a
// checkpoint — so LSNs stay monotonic across checkpoint truncations.
//
// Scanning stops at the first torn or corrupt record: a crash mid-append
// leaves a record with a short or checksum-failing tail, which Open
// discards (physically truncating the file back to the last intact
// record) so the log always ends on a record boundary. A record is
// therefore atomic: either its checksum verifies and it replays, or it
// never happened.
//
// Commit durability follows the sync policy. Under SyncAlways, Commit
// fsyncs before returning — with group commit: concurrent committers
// pile behind one leader whose single fsync covers every record
// appended before it, so N writers pay ~1 fsync, not N. Under SyncNone,
// Commit returns immediately and a background flusher (plus Close and
// checkpoints) fsyncs on an interval — bounded data loss on power
// failure, none on process crash.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when Commit forces the log to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Commit returns (group commit
	// shares fsyncs between concurrent committers).
	SyncAlways SyncPolicy = iota
	// SyncNone acknowledges commits immediately; the background
	// flusher, checkpoints and Close fsync. Process crashes lose
	// nothing (the OS has the writes); power loss can lose the last
	// flush interval.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "sync"
	case SyncNone:
		return "async"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

const (
	magic        = "CRWAL1\x00\x00"
	headerSize   = len(magic) + 8 // magic + start LSN
	recHeader    = 4 + 4 + 8 + 1  // length, crc, lsn, type
	maxRecordLen = 1 << 28        // 256 MB sanity cap on one record
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one log entry.
type Record struct {
	LSN  uint64
	Type byte
	Data []byte
	End  int64 // file offset just past this record — a clean truncation boundary
}

// Options configures a Log.
type Options struct {
	Sync       SyncPolicy
	FlushEvery time.Duration // SyncNone background fsync interval; 0 means 100ms
}

// Stats counts log activity since Open.
type Stats struct {
	Appends    uint64 `json:"appends"`    // records appended
	Commits    uint64 `json:"commits"`    // Commit calls
	Syncs      uint64 `json:"syncs"`      // fsyncs issued
	GroupRides uint64 `json:"groupRides"` // commits satisfied by another committer's fsync
	Truncates  uint64 `json:"truncates"`  // checkpoint truncations
	Bytes      int64  `json:"bytes"`      // current file size
	LastLSN    uint64 `json:"lastLSN"`    // last appended LSN
	DurableLSN uint64 `json:"durableLSN"` // last LSN known fsynced

	// Durability-wait attribution: total nanoseconds Commit callers
	// spent doing their own fsync (leader) vs waiting behind another
	// committer's fsync and riding it (follower). A commit satisfied
	// without blocking (already durable) contributes to neither.
	SyncWaitNs int64 `json:"syncWaitNs"`
	RideWaitNs int64 `json:"rideWaitNs"`
}

// Log is an append-only record log. All methods are safe for
// concurrent use.
type Log struct {
	mu       sync.Mutex // file writes, size, lsn counters
	f        *os.File
	path     string
	size     int64
	startLSN uint64 // LSN of the last record truncated away
	appended uint64 // last appended LSN
	policy   SyncPolicy

	syncMu  sync.Mutex // serializes fsyncs (group-commit leader election)
	durable atomic.Uint64

	appends    atomic.Uint64
	commits    atomic.Uint64
	syncs      atomic.Uint64
	groupRides atomic.Uint64
	truncates  atomic.Uint64
	syncWaitNs atomic.Int64
	rideWaitNs atomic.Int64

	failed atomic.Bool // a write or fsync error poisons the log

	flushStop chan struct{}
	flushDone chan struct{}
	closed    bool
}

// Open opens (or creates) the log at path, scans it, discards a torn
// tail, and returns the log positioned for appending plus every intact
// record for replay.
func Open(path string, opts Options) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{f: f, path: path, policy: opts.Sync}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var recs []Record
	if st.Size() == 0 {
		if err := l.writeFileHeader(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.size = int64(headerSize)
	} else {
		start, rs, end, err := scan(io.NewSectionReader(f, 0, st.Size()))
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if end < st.Size() {
			// Torn tail: cut the file back to the last intact record.
			if err := f.Truncate(end); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
		l.startLSN = start
		l.size = end
		recs = rs
		l.appended = start
		if n := len(rs); n > 0 {
			l.appended = rs[n-1].LSN
		}
		if _, err := f.Seek(l.size, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	l.durable.Store(l.appended) // everything scanned is on disk
	if opts.Sync == SyncNone {
		every := opts.FlushEvery
		if every <= 0 {
			every = 100 * time.Millisecond
		}
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop(every)
	}
	return l, recs, nil
}

func (l *Log) writeFileHeader(startLSN uint64) error {
	buf := make([]byte, headerSize)
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[len(magic):], startLSN)
	_, err := l.f.WriteAt(buf, 0)
	return err
}

// scan reads the header and every intact record, stopping (without
// error) at the first torn or corrupt one. It returns the start LSN,
// the records, and the offset just past the last intact record.
func scan(r *io.SectionReader) (startLSN uint64, recs []Record, end int64, err error) {
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, 0, fmt.Errorf("wal: short header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return 0, nil, 0, fmt.Errorf("wal: bad magic (not a log file)")
	}
	startLSN = binary.LittleEndian.Uint64(head[len(magic):])
	off := int64(headerSize)
	total := r.Size()
	hdr := make([]byte, recHeader)
	for {
		if total-off < int64(recHeader) {
			return startLSN, recs, off, nil // clean EOF or torn header
		}
		if _, err := r.ReadAt(hdr, off); err != nil {
			return startLSN, recs, off, nil
		}
		length := binary.LittleEndian.Uint32(hdr)
		if length > maxRecordLen || total-off-int64(recHeader) < int64(length) {
			return startLSN, recs, off, nil // nonsense length or torn payload
		}
		crc := binary.LittleEndian.Uint32(hdr[4:])
		lsn := binary.LittleEndian.Uint64(hdr[8:])
		typ := hdr[16]
		payload := make([]byte, length)
		if _, err := r.ReadAt(payload, off+int64(recHeader)); err != nil {
			return startLSN, recs, off, nil
		}
		if recordCRC(lsn, typ, payload) != crc {
			return startLSN, recs, off, nil // torn or corrupt: discard from here
		}
		off += int64(recHeader) + int64(length)
		recs = append(recs, Record{LSN: lsn, Type: typ, Data: payload, End: off})
	}
}

// ScanFile reads every intact record of a log file without opening it
// for appending — the recovery-test and tooling entry point.
func ScanFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	_, recs, _, err := scan(io.NewSectionReader(f, 0, st.Size()))
	return recs, err
}

func recordCRC(lsn uint64, typ byte, payload []byte) uint32 {
	var hdr [9]byte
	binary.LittleEndian.PutUint64(hdr[:], lsn)
	hdr[8] = typ
	crc := crc32.Update(0, castagnoli, hdr[:])
	return crc32.Update(crc, castagnoli, payload)
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// ErrFailed is returned once a write or fsync error has poisoned the
// log: the in-memory state may be ahead of the durable state, so no
// further appends are accepted.
var ErrFailed = errors.New("wal: log failed; reopen to recover")

// Append writes one record and returns its LSN. The record is in the
// OS buffer when Append returns; call Commit to make it durable under
// the sync policy.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload) > maxRecordLen {
		return 0, fmt.Errorf("wal: record %d bytes exceeds cap", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed.Load() {
		return 0, ErrFailed
	}
	lsn := l.appended + 1
	buf := make([]byte, recHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], recordCRC(lsn, typ, payload))
	binary.LittleEndian.PutUint64(buf[8:], lsn)
	buf[16] = typ
	copy(buf[recHeader:], payload)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		l.failed.Store(true)
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.appended = lsn
	l.appends.Add(1)
	return lsn, nil
}

// Commit blocks until lsn is durable under the sync policy.
func (l *Log) Commit(lsn uint64) error {
	l.commits.Add(1)
	if l.policy == SyncNone {
		return nil
	}
	if l.durable.Load() >= lsn {
		l.groupRides.Add(1)
		return nil
	}
	start := time.Now()
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.durable.Load() >= lsn {
		// Another committer's fsync covered us while we waited: the
		// group-commit ride.
		l.groupRides.Add(1)
		l.rideWaitNs.Add(int64(time.Since(start)))
		return nil
	}
	err := l.syncLocked()
	l.syncWaitNs.Add(int64(time.Since(start)))
	return err
}

// syncLocked fsyncs and advances the durable LSN; caller holds syncMu.
func (l *Log) syncLocked() error {
	l.mu.Lock()
	cur := l.appended
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		l.failed.Store(true)
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	// cur was read before the fsync, so every record up to it is on disk.
	if l.durable.Load() < cur {
		l.durable.Store(cur)
	}
	return nil
}

// Sync forces an fsync now regardless of policy.
func (l *Log) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncLocked()
}

// flushLoop is the SyncNone background fsyncer.
func (l *Log) flushLoop(every time.Duration) {
	defer close(l.flushDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.syncMu.Lock()
			if l.durable.Load() < l.lastAppended() {
				_ = l.syncLocked()
			}
			l.syncMu.Unlock()
		}
	}
}

func (l *Log) lastAppended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// LastLSN returns the LSN of the last appended record.
func (l *Log) LastLSN() uint64 { return l.lastAppended() }

// Policy returns the configured sync policy.
func (l *Log) Policy() SyncPolicy { return l.policy }

// Size returns the current file size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Truncate discards every record — the checkpoint has made them
// redundant — while preserving LSN monotonicity: the next Append gets
// afterLSN+1. afterLSN must cover the whole log (you cannot truncate
// past records that exist only here).
func (l *Log) Truncate(afterLSN uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if afterLSN < l.appended {
		return fmt.Errorf("wal: truncate after LSN %d would drop records up to %d", afterLSN, l.appended)
	}
	if err := l.f.Truncate(int64(headerSize)); err != nil {
		l.failed.Store(true)
		return err
	}
	if err := l.writeFileHeader(afterLSN); err != nil {
		l.failed.Store(true)
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.failed.Store(true)
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	l.size = int64(headerSize)
	l.startLSN = afterLSN
	l.appended = afterLSN
	l.durable.Store(afterLSN)
	l.truncates.Add(1)
	return nil
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	size, last := l.size, l.appended
	l.mu.Unlock()
	return Stats{
		Appends:    l.appends.Load(),
		Commits:    l.commits.Load(),
		Syncs:      l.syncs.Load(),
		GroupRides: l.groupRides.Load(),
		Truncates:  l.truncates.Load(),
		Bytes:      size,
		LastLSN:    last,
		DurableLSN: l.durable.Load(),
		SyncWaitNs: l.syncWaitNs.Load(),
		RideWaitNs: l.rideWaitNs.Load(),
	}
}

// Close drains the log — final fsync of everything appended — and
// closes the file.
func (l *Log) Close() error {
	if l.flushStop != nil {
		select {
		case <-l.flushStop:
		default:
			close(l.flushStop)
		}
		<-l.flushDone
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var firstErr error
	if err := l.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := l.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	l.closed = true
	l.durable.Store(l.appended)
	l.mu.Unlock()
	return firstErr
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"courserank/internal/core"
	"courserank/internal/datagen"
	"courserank/internal/relation"
	"courserank/internal/wal"
)

func testServer(t *testing.T) (*httptest.Server, *core.Site, *datagen.Manifest) {
	t.Helper()
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	man, err := datagen.Populate(site, datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)
	t.Cleanup(site.Close)
	return ts, site, man
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// login obtains a session token for a registered directory user.
func login(t *testing.T, ts *httptest.Server, username string) string {
	t.Helper()
	resp := postJSON(t, ts.URL+"/api/login", map[string]string{"username": username})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login status %d", resp.StatusCode)
	}
	out := decode[map[string]string](t, resp)
	return out["token"]
}

func TestHealth(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	if out["ok"] != true {
		t.Errorf("health = %v", out)
	}
}

func TestClosedCommunityGate(t *testing.T) {
	ts, _, _ := testServer(t)
	// No token → 401.
	resp, err := http.Get(ts.URL + "/api/search?q=american")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated search status = %d", resp.StatusCode)
	}
	// Registration requires a directory entry.
	resp = postJSON(t, ts.URL+"/api/register", map[string]string{"username": "intruder"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("intruder register status = %d", resp.StatusCode)
	}
}

func TestSearchAndCloudEndpoint(t *testing.T) {
	ts, _, _ := testServer(t)
	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/search?q=american&token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	if out["total"].(float64) <= 0 {
		t.Errorf("total = %v", out["total"])
	}
	if len(out["cloud"].([]any)) == 0 {
		t.Error("cloud empty")
	}
	// Refinement narrows.
	resp2, err := http.Get(ts.URL + "/api/search?q=american&refine=african+american&token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out2 := decode[map[string]any](t, resp2)
	if out2["total"].(float64) >= out["total"].(float64) {
		t.Errorf("refine did not narrow: %v → %v", out["total"], out2["total"])
	}
}

func TestCourseAndPlanEndpoints(t *testing.T) {
	ts, _, man := testServer(t)
	token := login(t, ts, "stu00001")
	resp, err := http.Get(fmt.Sprintf("%s/api/course/%d?token=%s", ts.URL, man.Planted["intro-programming"], token))
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	if out["page"] == nil {
		t.Error("missing rendered page")
	}
	resp2, err := http.Get(ts.URL + "/api/plan?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out2 := decode[map[string]any](t, resp2)
	if out2["plan"] == nil {
		t.Error("missing plan")
	}
	// Bad course id.
	resp3, _ := http.Get(ts.URL + "/api/course/99999999?token=" + token)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("missing course status = %d", resp3.StatusCode)
	}
}

func TestReviewEndpoint(t *testing.T) {
	ts, site, man := testServer(t)
	token := login(t, ts, "stu00007")
	u, _ := site.Community.UserByUsername("stu00007")
	before := site.Community.Points(u.ID)
	baseEnrolls := len(site.Planner.Entries(u.ID))
	course := man.Planted["intro-programming"]

	resp := postJSON(t, ts.URL+"/api/review?token="+token, map[string]any{
		"courseId": course, "year": 2008, "term": "Autumn", "grade": "A",
		"text": "exactly as advertised", "rating": 4,
	})
	out := decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("review status = %d (%v)", resp.StatusCode, out)
	}
	if out["commentId"].(float64) <= 0 {
		t.Errorf("commentId = %v", out["commentId"])
	}
	// All three writes landed: enrollment, comment, standalone rating.
	if n := len(site.Planner.Entries(u.ID)) - baseEnrolls; n != 1 {
		t.Errorf("new enrollments = %d, want 1", n)
	}
	if n := len(site.Comments.ByCourse(course)); n == 0 {
		t.Error("comment missing")
	}
	if _, n := site.Comments.AvgRating(course); n == 0 {
		t.Error("rating missing")
	}
	// Comment (2) + rating (1) points awarded together.
	if got := site.Community.Points(u.ID) - before; got != 3 {
		t.Errorf("points earned = %d, want 3", got)
	}
	// The transaction counters moved and the workflow committed.
	if st := site.DB.TxStats(); st.Committed == 0 || st.Active != 0 {
		t.Errorf("tx stats after review = %+v", st)
	}

	// A duplicate submission is rejected whole: no second enrollment,
	// no orphan comment, no points.
	before = site.Community.Points(u.ID)
	resp = postJSON(t, ts.URL+"/api/review?token="+token, map[string]any{
		"courseId": course, "year": 2008, "term": "Autumn",
		"text": "double-posted by accident", "rating": 2,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate review status = %d", resp.StatusCode)
	}
	if n := len(site.Planner.Entries(u.ID)) - baseEnrolls; n != 1 {
		t.Errorf("new enrollments after duplicate = %d, want 1", n)
	}
	if got := site.Community.Points(u.ID) - before; got != 0 {
		t.Errorf("points after rejected review = %d, want 0", got)
	}
}

func TestCommentRateAndPoints(t *testing.T) {
	ts, site, man := testServer(t)
	token := login(t, ts, "stu00005")
	u, _ := site.Community.UserByUsername("stu00005")
	before := site.Community.Points(u.ID)

	resp := postJSON(t, ts.URL+"/api/comment?token="+token, map[string]any{
		"courseId": man.Planted["intro-programming"], "year": 2008, "term": "Autumn",
		"text": "wonderful course", "rating": 5,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("comment status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/api/rate?token="+token, map[string]any{
		"courseId": man.Planted["intro-programming"], "rating": 5,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rate status = %d", resp.StatusCode)
	}
	// Comment (2) + rating (1); the login point landed before the
	// snapshot was taken.
	got := site.Community.Points(u.ID) - before
	if got != 3 {
		t.Errorf("points earned = %d, want 3", got)
	}
	respP, err := http.Get(ts.URL + "/api/points?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, respP)
	if out["points"].(float64) < 4 {
		t.Errorf("points endpoint = %v", out["points"])
	}
	// Bad rating rejected.
	resp = postJSON(t, ts.URL+"/api/rate?token="+token, map[string]any{
		"courseId": man.Planted["intro-programming"], "rating": 9,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rating status = %d", resp.StatusCode)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	ts, _, _ := testServer(t)
	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/recommend/related-courses?title=Introduction+to+Programming&k=3&token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	if len(out["rows"].([]any)) == 0 {
		t.Error("no recommendations")
	}
	resp2, _ := http.Get(ts.URL + "/api/recommend/no-such-strategy?token=" + token)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown strategy status = %d", resp2.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts, _, _ := testServer(t)
	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/explain/related-courses?title=Introduction+to+Programming&year=2008&k=3&token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]string](t, resp)
	plan := out["plan"]
	// The plan must surface both layers: the compiled SQL and the
	// physical access paths the query planner picked underneath it.
	for _, want := range []string{"SQL>", "index probe", "hash join"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	resp2, err := http.Get(ts.URL + "/api/explain/no-such-strategy?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown strategy status = %d", resp2.StatusCode)
	}
}

// TestStatsEndpoint: /api/stats is authenticated, reports the shared
// plan cache, and its counters move when repeated recommendation
// requests hit cached plans.
func TestStatsEndpoint(t *testing.T) {
	ts, site, _ := testServer(t)

	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated stats status = %d", resp.StatusCode)
	}

	token := login(t, ts, "stu00001")
	site.SQL.ResetCacheStats()
	// Same strategy three times: the first may plan, the rest must hit.
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/api/recommend/related-courses?title=Introduction+to+Programming&k=3&token=" + token)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	resp, err = http.Get(ts.URL + "/api/stats?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	pc, ok := out["planCache"].(map[string]any)
	if !ok {
		t.Fatalf("no planCache in %v", out)
	}
	for _, key := range []string{"hits", "misses", "invalidations", "entries", "hitRate"} {
		if _, ok := pc[key]; !ok {
			t.Errorf("planCache missing %q: %v", key, pc)
		}
	}
	if hits := pc["hits"].(float64); hits == 0 {
		t.Errorf("repeated recommendations produced no cache hits: %v", pc)
	}
	if rate := pc["hitRate"].(float64); rate <= 0.5 {
		t.Errorf("hit rate %v after repeated identical requests", rate)
	}
	if _, ok := out["scale"]; !ok {
		t.Errorf("stats missing scale: %v", out)
	}
	mv, ok := out["matviews"].(map[string]any)
	if !ok {
		t.Fatalf("no matviews in %v", out)
	}
	if _, ok := out["flexMaterialize"].(map[string]any); !ok {
		t.Fatalf("no flexMaterialize in %v", out)
	}
	for _, key := range []string{"views", "hits", "staleHits", "misses", "refreshes", "invalidations", "errors"} {
		if _, ok := mv[key]; !ok {
			t.Errorf("matviews missing %q: %v", key, mv)
		}
	}
	if _, ok := out["durability"]; ok {
		t.Errorf("memory-backed site should not report durability: %v", out["durability"])
	}
	if _, ok := out["sharding"]; ok {
		t.Errorf("monolithic site should not report sharding: %v", out["sharding"])
	}
	tx, ok := out["transactions"].(map[string]any)
	if !ok {
		t.Fatalf("no transactions in %v", out)
	}
	for _, key := range []string{"active", "committed", "aborted", "conflicts", "notifyUnconfirmed", "notifyDropped"} {
		if _, ok := tx[key]; !ok {
			t.Errorf("transactions missing %q: %v", key, tx)
		}
	}
	if active := tx["active"].(float64); active != 0 {
		t.Errorf("idle site reports %v active transactions", active)
	}
}

// TestShardedStatsEndpoint: a sharded site's /api/stats grows a
// sharding section with the shard count, per-shard row totals and the
// routing counters.
func TestShardedStatsEndpoint(t *testing.T) {
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.Populate(site, datagen.Tiny()); err != nil {
		t.Fatal(err)
	}
	if err := site.EnableSharding(2); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)
	t.Cleanup(site.Close)

	// Move the routing counters: a feed request rebuilds the view
	// through the cluster's combine-merge fan-out.
	if _, _, err := site.TopRatedFeed("CS", 5); err != nil {
		t.Fatal(err)
	}

	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/stats?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	sh, ok := out["sharding"].(map[string]any)
	if !ok {
		t.Fatalf("no sharding section in %v", out)
	}
	if sh["shards"].(float64) != 2 {
		t.Errorf("shards = %v, want 2", sh["shards"])
	}
	if rows, ok := sh["rows_per_shard"].([]any); !ok || len(rows) != 2 {
		t.Errorf("rows_per_shard = %v, want one total per shard", sh["rows_per_shard"])
	}
	if sh["fan_out"].(float64) == 0 || sh["merge_combine"].(float64) == 0 {
		t.Errorf("feed rebuild moved no fan-out counters: %v", sh)
	}
	parts, ok := sh["partitioned_tables"].([]any)
	if !ok || len(parts) == 0 {
		t.Errorf("no partitioned tables reported: %v", sh)
	}
}

// TestDurableStatsEndpoint: a durable site's /api/stats grows a
// durability section whose WAL counters reflect the journaled writes.
func TestDurableStatsEndpoint(t *testing.T) {
	site, err := core.NewDurableSite(t.TempDir(), relation.DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.Populate(site, datagen.Tiny()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)
	t.Cleanup(site.Close)

	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/stats?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	dur, ok := out["durability"].(map[string]any)
	if !ok {
		t.Fatalf("no durability section in %v", out)
	}
	w, ok := dur["wal"].(map[string]any)
	if !ok {
		t.Fatalf("durability missing wal: %v", dur)
	}
	if appends := w["appends"].(float64); appends == 0 {
		t.Errorf("populated durable site reports zero WAL appends: %v", w)
	}
	if dur["policy"] != "sync" {
		t.Errorf("policy = %v, want sync", dur["policy"])
	}
	if _, ok := dur["pager"].(map[string]any); !ok {
		t.Errorf("durability missing pager: %v", dur)
	}
}

// TestViewsAndFeedEndpoints: /api/views lists the registered
// materialized views with their counters, and /api/feed serves a
// department feed off the async view, moving the view's hit counters.
func TestViewsAndFeedEndpoints(t *testing.T) {
	ts, site, _ := testServer(t)

	resp, err := http.Get(ts.URL + "/api/views")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated views status = %d", resp.StatusCode)
	}

	token := login(t, ts, "stu00001")
	// Traffic through the view-backed paths: the baseline recommenders'
	// ratings view and the top-rated feed.
	if out := site.Baseline.Popularity(2, 5); len(out) == 0 {
		t.Fatal("no popularity results")
	}
	for i := 0; i < 2; i++ {
		r, err := http.Get(ts.URL + "/api/feed/CS?k=5&token=" + token)
		if err != nil {
			t.Fatal(err)
		}
		feed := decode[map[string]any](t, r)
		entries, ok := feed["entries"].([]any)
		if !ok || len(entries) == 0 {
			t.Fatalf("feed = %v, want entries", feed)
		}
		if feed["served"] != "built" && feed["served"] != "fresh" && feed["served"] != "stale" {
			t.Fatalf("feed served = %v", feed["served"])
		}
	}

	respV, err := http.Get(ts.URL + "/api/views?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, respV)
	views, ok := out["views"].([]any)
	if !ok || len(views) < 2 {
		t.Fatalf("views = %v, want at least the ratings view and the feed view", out)
	}
	byName := map[string]map[string]any{}
	for _, v := range views {
		m := v.(map[string]any)
		byName[m["name"].(string)] = m
	}
	feed, ok := byName["core/top-rated-by-dept"]
	if !ok {
		t.Fatalf("feed view missing from %v", byName)
	}
	if feed["mode"] != "async" || feed["hasSnapshot"] != true {
		t.Errorf("feed view entry = %v", feed)
	}
	// One build plus one warm hit from the two feed requests.
	if feed["hits"].(float64) < 1 || feed["refreshes"].(float64) < 1 {
		t.Errorf("feed view counters did not move: %v", feed)
	}
	if _, ok := byName["recommend/ratings-by-student"]; !ok {
		t.Errorf("ratings view missing from %v", byName)
	}
}

func TestLeaderboardAndComponents(t *testing.T) {
	ts, _, _ := testServer(t)
	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/leaderboard?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("leaderboard status = %d", resp.StatusCode)
	}
	respC, err := http.Get(ts.URL + "/api/components?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	comps := decode[[]map[string]any](t, respC)
	if len(comps) != 13 {
		t.Errorf("components = %d", len(comps))
	}
}

func TestAdvisorEndpoints(t *testing.T) {
	ts, _, man := testServer(t)
	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/advise/majors?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	fits := decode[[]map[string]any](t, resp)
	if len(fits) == 0 {
		t.Error("no major recommendations")
	}
	resp2, err := http.Get(fmt.Sprintf("%s/api/advise/quarters/%d?token=%s", ts.URL, man.Planted["intro-programming"], token))
	if err != nil {
		t.Fatal(err)
	}
	quarters := decode[[]map[string]any](t, resp2)
	if len(quarters) == 0 {
		t.Error("no quarter recommendations")
	}
	resp3, _ := http.Get(ts.URL + "/api/advise/quarters/99999999?token=" + token)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("missing course status = %d", resp3.StatusCode)
	}
}

func TestCompareEndpointRoleGate(t *testing.T) {
	ts, site, man := testServer(t)
	course := man.Planted["intro-programming"]
	// Students are rejected.
	stu := login(t, ts, "stu00001")
	resp, _ := http.Get(fmt.Sprintf("%s/api/compare/%d?token=%s", ts.URL, course, stu))
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("student compare status = %d", resp.StatusCode)
	}
	// Faculty see the comparison (fac0001 is registered by datagen).
	fac := login(t, ts, "fac0001")
	resp2, err := http.Get(fmt.Sprintf("%s/api/compare/%d?token=%s", ts.URL, course, fac))
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp2)
	if out["AvgRating"] == nil {
		t.Errorf("comparison = %v", out)
	}
	_ = site
}

func TestBearerTokenHeader(t *testing.T) {
	ts, _, _ := testServer(t)
	token := login(t, ts, "stu00002")
	req, _ := http.NewRequest("GET", ts.URL+"/api/search?q=american", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("bearer auth status = %d", resp.StatusCode)
	}
}

package server

import (
	"net/http"
	"net/http/httptest"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, as cmd/courserank -pprof does
	"reflect"
	"sort"
	"strings"
	"testing"

	"courserank/internal/core"
	"courserank/internal/datagen"
	"courserank/internal/relation"
	"courserank/internal/wal"
)

// observedServer is testServer with query-level observability on —
// the configuration cmd/courserank runs with.
func observedServer(t *testing.T) (*httptest.Server, *core.Site) {
	t.Helper()
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.Populate(site, datagen.Tiny()); err != nil {
		t.Fatal(err)
	}
	site.EnableObservability()
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)
	t.Cleanup(site.Close)
	return ts, site
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestStatsPayloadGoldenKeys pins the /api/stats key set — the typed
// statsPayload struct is the contract, and this golden asserts the
// full set for each deployment shape.
func TestStatsPayloadGoldenKeys(t *testing.T) {
	ts, _, _ := testServer(t)
	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/stats?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	want := []string{"flexCompile", "flexMaterialize", "matviews", "planCache", "scale", "transactions"}
	if got := keysOf(out); !reflect.DeepEqual(got, want) {
		t.Errorf("plain site stats keys = %v, want %v", got, want)
	}
	wantTx := []string{"aborted", "active", "committed", "conflicts", "notifyDropped", "notifyUnconfirmed"}
	if got := keysOf(out["transactions"].(map[string]any)); !reflect.DeepEqual(got, wantTx) {
		t.Errorf("transactions keys = %v, want %v", got, wantTx)
	}
	wantPC := []string{"entries", "hitRate", "hits", "invalidations", "misses"}
	if got := keysOf(out["planCache"].(map[string]any)); !reflect.DeepEqual(got, wantPC) {
		t.Errorf("planCache keys = %v, want %v", got, wantPC)
	}

	// A durable, observed site grows durability + walWait, and the
	// transactions section grows the collector's observed outcomes.
	site, err := core.NewDurableSite(t.TempDir(), relation.DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.Populate(site, datagen.Tiny()); err != nil {
		t.Fatal(err)
	}
	site.EnableObservability()
	dts := httptest.NewServer(New(site))
	t.Cleanup(dts.Close)
	t.Cleanup(site.Close)
	dtoken := login(t, dts, "stu00001")
	resp, err = http.Get(dts.URL + "/api/stats?token=" + dtoken)
	if err != nil {
		t.Fatal(err)
	}
	dout := decode[map[string]any](t, resp)
	dwant := []string{"durability", "flexCompile", "flexMaterialize", "matviews", "planCache", "scale", "transactions", "walWait"}
	if got := keysOf(dout); !reflect.DeepEqual(got, dwant) {
		t.Errorf("durable site stats keys = %v, want %v", got, dwant)
	}
	ww := dout["walWait"].(map[string]any)
	for _, k := range []string{"syncWaitNs", "rideWaitNs", "syncs", "groupRides"} {
		if _, ok := ww[k]; !ok {
			t.Errorf("walWait missing %q: %v", k, ww)
		}
	}
	if ww["syncs"].(float64) == 0 {
		t.Errorf("SyncAlways site with populated data reports zero fsyncs: %v", ww)
	}
	if _, ok := dout["transactions"].(map[string]any)["observed"]; !ok {
		t.Errorf("observed site's transactions section missing observed outcomes: %v", dout["transactions"])
	}
}

// TestQueriesEndpoint: /api/queries surfaces per-statement histograms
// after traffic, ranked and bounded by k, with both SQL and HTTP
// fingerprints present.
func TestQueriesEndpoint(t *testing.T) {
	ts, site := observedServer(t)
	token := login(t, ts, "stu00001")
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/api/recommend/related-courses?title=Introduction+to+Programming&k=3&token=" + token)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/api/queries?by=p99&token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	if out["by"] != "p99" {
		t.Errorf("by = %v", out["by"])
	}
	qs := out["queries"].([]any)
	if len(qs) == 0 {
		t.Fatal("no queries recorded after traffic")
	}
	var sawSQL, sawHTTP bool
	for _, q := range qs {
		m := q.(map[string]any)
		if m["p99_ns"].(float64) <= 0 || m["count"].(float64) == 0 {
			t.Errorf("empty summary: %v", m)
		}
		switch m["route"] {
		case "query":
			sawSQL = true
		case "http":
			sawHTTP = true
		}
	}
	if !sawSQL || !sawHTTP {
		t.Errorf("want both SQL and HTTP fingerprints (sawSQL=%v sawHTTP=%v): %v", sawSQL, sawHTTP, qs)
	}

	// k bounds the list; bad ?by is a 400.
	resp, err = http.Get(ts.URL + "/api/queries?k=1&token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	if out := decode[map[string]any](t, resp); len(out["queries"].([]any)) != 1 {
		t.Errorf("k=1 returned %d summaries", len(out["queries"].([]any)))
	}
	bad, err := http.Get(ts.URL + "/api/queries?by=p42&token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad by status = %d", bad.StatusCode)
	}

	// Disabling flips the endpoint to 503.
	site.DisableObservability()
	off, err := http.Get(ts.URL + "/api/queries?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	off.Body.Close()
	if off.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("disabled queries status = %d", off.StatusCode)
	}
}

// TestSlowlogEndpoint: slow statements land in /api/slowlog and their
// ANALYZE plans are back-filled by the statement's next execution.
func TestSlowlogEndpoint(t *testing.T) {
	ts, _ := observedServer(t)
	token := login(t, ts, "stu00001")
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/api/recommend/related-courses?title=Introduction+to+Programming&k=3&token=" + token)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/api/slowlog?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	entries := out["entries"].([]any)
	if len(entries) == 0 {
		t.Fatal("slow log empty after traffic")
	}
	var withPlan bool
	for _, e := range entries {
		m := e.(map[string]any)
		if m["latency_ns"].(float64) <= 0 {
			t.Errorf("entry without latency: %v", m)
		}
		if p, ok := m["plan"].(string); ok && strings.Contains(p, "actual rows=") {
			withPlan = true
		}
	}
	if !withPlan {
		t.Error("no slow-log entry carries an ANALYZE-annotated plan")
	}
}

// TestAnalyzeEndpoint: /api/analyze/{strategy} really executes the
// strategy and returns the annotated workflow report.
func TestAnalyzeEndpoint(t *testing.T) {
	ts, _ := observedServer(t)
	token := login(t, ts, "stu00001")
	resp, err := http.Get(ts.URL + "/api/analyze/related-courses?title=Introduction+to+Programming&year=2008&k=3&token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	plan := out["plan"].(string)
	for _, want := range []string{"SQL>", "actual rows=", "analyzed workflow:"} {
		if !strings.Contains(plan, want) {
			t.Errorf("analyze report missing %q:\n%s", want, plan)
		}
	}
	if out["rows"].(float64) == 0 {
		t.Errorf("analyze executed no rows: %v", out)
	}
	missing, err := http.Get(ts.URL + "/api/analyze/no-such-strategy?token=" + token)
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown strategy status = %d", missing.StatusCode)
	}
}

// TestPprofLiveness: the profiling surface cmd/courserank exposes with
// -pprof — net/http/pprof on the default mux — answers.
func TestPprofLiveness(t *testing.T) {
	ts := httptest.NewServer(http.DefaultServeMux)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", resp.StatusCode)
	}
}

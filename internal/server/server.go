// Package server exposes CourseRank over HTTP as a JSON API — the "User
// Interface" box of Figure 2. Access follows the paper's closed-
// community model: every data endpoint requires a session token issued
// by /api/login, and logins are validated against the university
// directory through the community service.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"courserank/internal/catalog"
	"courserank/internal/cloud"
	"courserank/internal/comments"
	"courserank/internal/community"
	"courserank/internal/core"
	"courserank/internal/matview"
	"courserank/internal/relation"
	"courserank/internal/render"
)

// Server is the HTTP front end over a Site.
type Server struct {
	site *core.Site
	mux  *http.ServeMux
	day  int64 // abstract login day for the incentive scheme
}

// New builds the server and its routes.
func New(site *core.Site) *Server {
	s := &Server{site: site, mux: http.NewServeMux(), day: 1}
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("POST /api/register", s.handleRegister)
	s.mux.HandleFunc("POST /api/login", s.handleLogin)
	s.mux.HandleFunc("GET /api/search", s.auth(s.handleSearch))
	s.mux.HandleFunc("GET /api/course/{id}", s.auth(s.handleCourse))
	s.mux.HandleFunc("GET /api/plan", s.auth(s.handlePlan))
	s.mux.HandleFunc("POST /api/comment", s.auth(s.handleComment))
	s.mux.HandleFunc("POST /api/rate", s.auth(s.handleRate))
	s.mux.HandleFunc("POST /api/review", s.auth(s.handleReview))
	s.mux.HandleFunc("GET /api/recommend/{strategy}", s.auth(s.handleRecommend))
	s.mux.HandleFunc("GET /api/explain/{strategy}", s.auth(s.handleExplain))
	s.mux.HandleFunc("GET /api/stats", s.auth(s.handleStats))
	s.mux.HandleFunc("GET /api/queries", s.auth(s.handleQueries))
	s.mux.HandleFunc("GET /api/slowlog", s.auth(s.handleSlowlog))
	s.mux.HandleFunc("GET /api/analyze/{strategy}", s.auth(s.handleAnalyze))
	s.mux.HandleFunc("GET /api/views", s.auth(s.handleViews))
	s.mux.HandleFunc("GET /api/feed/{dep}", s.auth(s.handleFeed))
	s.mux.HandleFunc("GET /api/points", s.auth(s.handlePoints))
	s.mux.HandleFunc("GET /api/leaderboard", s.auth(s.handleLeaderboard))
	s.mux.HandleFunc("GET /api/components", s.auth(s.handleComponents))
	s.mux.HandleFunc("GET /api/advise/majors", s.auth(s.handleAdviseMajors))
	s.mux.HandleFunc("GET /api/advise/quarters/{courseId}", s.auth(s.handleAdviseQuarters))
	s.mux.HandleFunc("GET /api/compare/{courseId}", s.auth(s.handleCompare))
	return s
}

// ServeHTTP implements http.Handler. On an observability-enabled site
// every request also lands in a per-endpoint latency histogram.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c := s.site.Obs; c != nil {
		s.observedServe(c, w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// auth wraps a handler with session-token validation — the closed
// community gate.
func (s *Server) auth(next func(http.ResponseWriter, *http.Request, community.User)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if token == "" {
			token = r.URL.Query().Get("token")
		}
		u, ok := s.site.Community.Session(token)
		if !ok {
			writeErr(w, http.StatusUnauthorized, fmt.Errorf("valid session required (closed community)"))
			return
		}
		next(w, r, u)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "scale": s.site.Scale()})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Username string `json:"username"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	u, err := s.site.Community.Register(req.Username)
	if err != nil {
		writeErr(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, u)
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Username string `json:"username"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	token, err := s.site.Community.Login(req.Username, s.day)
	if err != nil {
		writeErr(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"token": token})
}

// handleSearch runs a keyword search and returns hits plus the data
// cloud; ?refine= terms chain Figure 3 → Figure 4 interactions.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, _ community.User) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	res, err := s.site.SearchCourses(q)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	for _, term := range r.URL.Query()["refine"] {
		if res, err = s.site.RefineSearch(res, term); err != nil {
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	cl, err := s.site.CourseCloud(res, 30)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	type hit struct {
		CourseID int64   `json:"courseId"`
		Code     string  `json:"code"`
		Title    string  `json:"title"`
		Score    float64 `json:"score"`
	}
	hits := make([]hit, 0, 20)
	for _, h := range res.Top(20) {
		if c, ok := s.site.Catalog.Course(h.DocID); ok {
			hits = append(hits, hit{CourseID: c.ID, Code: c.Code(), Title: c.Title, Score: h.Score})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total": res.Total(),
		"query": res.Query.String(),
		"hits":  hits,
		"cloud": cloudJSON(cl),
	})
}

func cloudJSON(c *cloud.Cloud) []map[string]any {
	out := make([]map[string]any, 0, len(c.Terms))
	for _, t := range c.Alphabetical() {
		out = append(out, map[string]any{"term": t.Text, "weight": t.Weight, "docs": t.ResultDocs})
	}
	return out
}

func (s *Server) handleCourse(w http.ResponseWriter, r *http.Request, _ community.User) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	page, err := render.CoursePage(s.site, id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	c, _ := s.site.Catalog.Course(id)
	avg, n := s.site.Comments.AvgRating(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"course": c, "avgRating": avg, "raters": n, "page": page,
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request, u community.User) {
	writeJSON(w, http.StatusOK, map[string]any{
		"plan": s.site.Planner.Plan(u.ID),
		"page": render.Plan(s.site, u.ID),
	})
}

func (s *Server) handleComment(w http.ResponseWriter, r *http.Request, u community.User) {
	var req struct {
		CourseID int64   `json:"courseId"`
		Year     int64   `json:"year"`
		Term     string  `json:"term"`
		Text     string  `json:"text"`
		Rating   float64 `json:"rating"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.site.Comments.Add(comments.Comment{
		SuID: u.ID, CourseID: req.CourseID, Year: req.Year, Term: req.Term,
		Text: req.Text, Rating: req.Rating,
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.site.Community.Award(u.ID, "comment", community.PointsComment, ""); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"commentId": id})
}

// handleReview runs the atomic enroll+comment+rate workflow for the
// logged-in student: all three writes commit in one snapshot-isolation
// transaction or none do. A concurrent submission for the same student
// (two devices racing) loses first-committer-wins and reports 409 so
// the client can retry.
func (s *Server) handleReview(w http.ResponseWriter, r *http.Request, u community.User) {
	var req struct {
		CourseID int64   `json:"courseId"`
		Year     int64   `json:"year"`
		Term     string  `json:"term"`
		Grade    string  `json:"grade"`
		Text     string  `json:"text"`
		Rating   float64 `json:"rating"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.site.EnrollCommentRate(core.Review{
		SuID: u.ID, CourseID: req.CourseID, Year: req.Year,
		Term: catalog.Term(req.Term), Grade: catalog.Grade(req.Grade),
		Text: req.Text, Rating: req.Rating,
	})
	if err != nil {
		if errors.Is(err, relation.ErrTxConflict) {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	for _, award := range []struct {
		kind   string
		points int
	}{{"comment", community.PointsComment}, {"rating", community.PointsRating}} {
		if err := s.site.Community.Award(u.ID, award.kind, award.points, ""); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int64{"commentId": id})
}

func (s *Server) handleRate(w http.ResponseWriter, r *http.Request, u community.User) {
	var req struct {
		CourseID int64   `json:"courseId"`
		Rating   float64 `json:"rating"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.site.Comments.Rate(u.ID, req.CourseID, req.Rating); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.site.Community.Award(u.ID, "rating", community.PointsRating, ""); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleRecommend runs a registered FlexRecs strategy with query
// parameters as workflow parameters — the per-student personalization
// the paper's FlexRecs interface offers.
// strategyParams collects a strategy's personalization parameters from
// the query string: the logged-in student plus every non-reserved query
// key, integers coerced.
func strategyParams(r *http.Request, u community.User) map[string]any {
	params := map[string]any{"student": u.ID}
	for key, vals := range r.URL.Query() {
		if len(vals) == 0 || key == "token" {
			continue
		}
		if n, err := strconv.ParseInt(vals[0], 10, 64); err == nil {
			params[key] = n
		} else {
			params[key] = vals[0]
		}
	}
	return params
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request, u community.User) {
	strategy := r.PathValue("strategy")
	res, err := s.site.Strategies.Run(s.site.Flex, strategy, strategyParams(r, u))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rows := make([][]string, res.Len())
	for i := range res.Rows {
		rows[i] = res.Strings(i)
	}
	writeJSON(w, http.StatusOK, map[string]any{"columns": res.Cols, "rows": rows})
}

// handleExplain renders a strategy's execution plan without running it:
// the FlexRecs operator tree, the SQL statements its relational
// subtrees compile into, and the access paths and join algorithms the
// query planner chose for each — the end-to-end view of one
// recommendation request.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, u community.User) {
	strategy := r.PathValue("strategy")
	tpl, ok := s.site.Strategies.Get(strategy)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no strategy %q", strategy))
		return
	}
	wf, err := tpl.Build(strategyParams(r, u))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"strategy": strategy,
		"plan":     s.site.Flex.Explain(wf),
	})
}

// handleStats reports engine health counters: the shared plan cache's
// hit/miss/invalidation tallies (every subsystem's SQL flows through
// it, so the hit rate is the fraction of requests that skipped
// parse/plan entirely), the FlexRecs compile cache (a hit means a
// workflow request skipped SQL re-rendering too), the materialized-view
// registry (hits serve a precomputed snapshot, stale hits serve inside
// an async bound while a refresh runs behind the read, misses pay for a
// build), transaction health, plus the deployment scale. Durable sites
// additionally expose "durability" (WAL, pager and checkpoint
// counters) and "walWait" (own-fsync vs group-commit-ride wait
// attribution); sharded sites expose "sharding" (routing health). The
// payload is the typed statsPayload in observe.go — its key set is the
// API contract.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, _ community.User) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleViews lists every registered materialized view with its serving
// mode, staleness bound, dependencies, snapshot age and counters — the
// operational window into the materialization layer.
func (s *Server) handleViews(w http.ResponseWriter, r *http.Request, _ community.User) {
	views := s.site.Views.Views()
	out := make([]map[string]any, 0, len(views))
	for _, v := range views {
		st := v.Stats()
		entry := map[string]any{
			"name":          st.Name,
			"mode":          st.Mode,
			"maxStaleMs":    st.MaxStale.Milliseconds(),
			"deps":          st.Deps,
			"hits":          st.Hits,
			"staleHits":     st.StaleHits,
			"misses":        st.Misses,
			"refreshes":     st.Refreshes,
			"invalidations": st.Invalidations,
			"errors":        st.Errors,
			"hasSnapshot":   st.HasSnapshot,
		}
		if st.HasSnapshot {
			entry["ageMs"] = st.Age.Milliseconds()
			entry["lastBuildMs"] = st.LastBuild.Milliseconds()
		}
		out = append(out, entry)
	}
	writeJSON(w, http.StatusOK, map[string]any{"views": out})
}

// handleFeed serves one department's top-rated feed from the async
// materialized view — the stale-bounded read path: inside the bound the
// previous ranking returns instantly while a refresh runs behind it.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request, _ community.User) {
	dep := r.PathValue("dep")
	k := 10
	if n, err := strconv.Atoi(r.URL.Query().Get("k")); err == nil && n > 0 {
		k = n
	}
	entries, serve, err := s.site.TopRatedFeed(dep, k)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	served := "fresh"
	switch serve.Kind {
	case matview.ServeStale:
		served = "stale"
	case matview.ServeBuilt:
		served = "built"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dep":     dep,
		"entries": entries,
		"served":  served,
		"ageMs":   serve.Age.Milliseconds(),
	})
}

func (s *Server) handlePoints(w http.ResponseWriter, r *http.Request, u community.User) {
	writeJSON(w, http.StatusOK, map[string]any{
		"points": s.site.Community.Points(u.ID),
		"ledger": s.site.Community.Ledger(u.ID),
	})
}

func (s *Server) handleLeaderboard(w http.ResponseWriter, r *http.Request, _ community.User) {
	writeJSON(w, http.StatusOK, s.site.Community.Leaderboard(10))
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request, _ community.User) {
	writeJSON(w, http.StatusOK, s.site.Components())
}

// handleAdviseMajors ranks degree programs by fit with the logged-in
// student's transcript (§3.2 "recommended majors").
func (s *Server) handleAdviseMajors(w http.ResponseWriter, r *http.Request, u community.User) {
	writeJSON(w, http.StatusOK, s.site.Advisor.RecommendMajors(u.ID, 10))
}

// handleAdviseQuarters ranks the quarters in which to take a course
// (§3.2 "recommended quarters in which to take a given course").
func (s *Server) handleAdviseQuarters(w http.ResponseWriter, r *http.Request, u community.User) {
	id, err := strconv.ParseInt(r.PathValue("courseId"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fits, err := s.site.Advisor.BestQuarters(u.ID, id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, fits)
}

// handleCompare is the faculty view: how a class compares to others
// (§2 "can see how their class compares to other classes"). Faculty and
// staff only — students see ratings through the course page instead.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request, u community.User) {
	if u.Role == community.RoleStudent {
		writeErr(w, http.StatusForbidden, fmt.Errorf("comparison view is for faculty and staff"))
		return
	}
	id, err := strconv.ParseInt(r.PathValue("courseId"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cmp, ok := s.site.Stats.CompareCourse(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("course %d has no ratings to compare", id))
		return
	}
	writeJSON(w, http.StatusOK, cmp)
}

package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"courserank/internal/community"
	"courserank/internal/core"
	"courserank/internal/matview"
	"courserank/internal/obs"
	"courserank/internal/relation"
	"courserank/internal/shard"
)

// The observability surface: a typed /api/stats payload (so the key
// set is part of the API contract and golden-tested), /api/queries
// (top statements by p99 or total time), /api/slowlog, and
// /api/analyze/{strategy} — EXPLAIN ANALYZE for a whole
// recommendation workflow. The query-level sections exist when the
// site has observability enabled (core.Site.EnableObservability);
// without it the endpoints say so instead of guessing.

// statsPayload is the /api/stats response. Every field below without
// omitempty is always present; durability, walWait and sharding appear
// on durable and sharded deployments respectively.
type statsPayload struct {
	PlanCache       planCacheSection       `json:"planCache"`
	FlexCompile     flexCompileSection     `json:"flexCompile"`
	FlexMaterialize flexMaterializeSection `json:"flexMaterialize"`
	Matviews        matviewSection         `json:"matviews"`
	Scale           core.Scale             `json:"scale"`
	Transactions    txSection              `json:"transactions"`
	Durability      *relation.DurableStats `json:"durability,omitempty"`
	WALWait         *walWaitSection        `json:"walWait,omitempty"`
	Sharding        *shard.Stats           `json:"sharding,omitempty"`
}

type planCacheSection struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Invalidations uint64  `json:"invalidations"`
	Entries       int     `json:"entries"`
	HitRate       float64 `json:"hitRate"`
}

type flexCompileSection struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type flexMaterializeSection struct {
	Hits      uint64 `json:"hits"`
	StaleHits uint64 `json:"staleHits"`
	Misses    uint64 `json:"misses"`
}

type matviewSection struct {
	Views         int    `json:"views"`
	Hits          uint64 `json:"hits"`
	StaleHits     uint64 `json:"staleHits"`
	Misses        uint64 `json:"misses"`
	Refreshes     uint64 `json:"refreshes"`
	Invalidations uint64 `json:"invalidations"`
	Errors        uint64 `json:"errors"`
}

type txSection struct {
	Active            int64  `json:"active"`
	Committed         uint64 `json:"committed"`
	Aborted           uint64 `json:"aborted"`
	Conflicts         uint64 `json:"conflicts"`
	NotifyUnconfirmed uint64 `json:"notifyUnconfirmed"`
	NotifyDropped     uint64 `json:"notifyDropped"`

	// Observed is the query-level collector's view — transactions that
	// ran through observed statement handles — when observability is on.
	Observed *txObservedSection `json:"observed,omitempty"`
}

type txObservedSection struct {
	Commits   uint64 `json:"commits"`
	Conflicts uint64 `json:"conflicts"`
	Rollbacks uint64 `json:"rollbacks"`
}

// walWaitSection attributes commit durability waits: time spent
// leading an fsync vs waiting behind another committer's and riding
// it. Syncs and groupRides are the matching counts.
type walWaitSection struct {
	SyncWaitNs int64  `json:"syncWaitNs"`
	RideWaitNs int64  `json:"rideWaitNs"`
	Syncs      uint64 `json:"syncs"`
	GroupRides uint64 `json:"groupRides"`
}

func matviewSectionOf(mv matview.Stats) matviewSection {
	return matviewSection{
		Views:         mv.Views,
		Hits:          mv.Hits,
		StaleHits:     mv.StaleHits,
		Misses:        mv.Misses,
		Refreshes:     mv.Refreshes,
		Invalidations: mv.Invalidations,
		Errors:        mv.Errors,
	}
}

// statsSnapshot assembles the /api/stats payload; split from the
// handler so tests can golden the struct directly.
func (s *Server) statsSnapshot() statsPayload {
	cs := s.site.SQL.CacheStats()
	fh, fm := s.site.Flex.CompileStats()
	mh, mst, mm := s.site.Flex.MatStats()
	tst := s.site.DB.TxStats()
	unconfirmed, dropped := s.site.DB.NotifyStats()
	out := statsPayload{
		PlanCache: planCacheSection{
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Invalidations: cs.Invalidations,
			Entries:       cs.Entries,
			HitRate:       cs.HitRate(),
		},
		FlexCompile:     flexCompileSection{Hits: fh, Misses: fm},
		FlexMaterialize: flexMaterializeSection{Hits: mh, StaleHits: mst, Misses: mm},
		Matviews:        matviewSectionOf(s.site.Views.Stats()),
		Scale:           s.site.Scale(),
		Transactions: txSection{
			Active:            tst.Active,
			Committed:         tst.Committed,
			Aborted:           tst.Aborted,
			Conflicts:         tst.Conflicts,
			NotifyUnconfirmed: unconfirmed,
			NotifyDropped:     dropped,
		},
	}
	if c := s.site.Obs; c != nil {
		commits, conflicts, rollbacks := c.TxCounts()
		out.Transactions.Observed = &txObservedSection{Commits: commits, Conflicts: conflicts, Rollbacks: rollbacks}
	}
	if s.site.Durable != nil {
		ds := s.site.Durable.Stats()
		out.Durability = &ds
		out.WALWait = &walWaitSection{
			SyncWaitNs: ds.WAL.SyncWaitNs,
			RideWaitNs: ds.WAL.RideWaitNs,
			Syncs:      ds.WAL.Syncs,
			GroupRides: ds.WAL.GroupRides,
		}
	}
	if s.site.Sharded != nil {
		ss := s.site.Sharded.Stats()
		out.Sharding = &ss
	}
	return out
}

// errObsDisabled is what the query-level endpoints return on a site
// without EnableObservability.
var errObsDisabled = errors.New("observability disabled (site was built without EnableObservability)")

// handleQueries serves the top-K statement fingerprints by p99 or
// total time: per-statement counts, rows, and latency percentiles out
// of the lock-free histograms.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request, _ community.User) {
	c := s.site.Obs
	if c == nil {
		writeErr(w, http.StatusServiceUnavailable, errObsDisabled)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k: %w", err))
			return
		}
		k = n
	}
	by := r.URL.Query().Get("by")
	switch by {
	case "":
		by = "total"
	case "p99", "total":
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("by must be p99 or total, got %q", by))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		By      string             `json:"by"`
		Queries []obs.QuerySummary `json:"queries"`
	}{By: by, Queries: c.Top(k, by)})
}

// handleSlowlog serves the slow-query log, slowest first: SQL, bound
// params (unless redacted), the ANALYZE-annotated plan once the
// statement ran again, transaction outcome, and WAL wait attribution.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request, _ community.User) {
	c := s.site.Obs
	if c == nil {
		writeErr(w, http.StatusServiceUnavailable, errObsDisabled)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Entries []obs.SlowEntry `json:"entries"`
	}{Entries: c.Slow().Entries()})
}

// handleAnalyze is EXPLAIN ANALYZE for a recommendation strategy: the
// workflow executes for real and the response is its operator tree
// annotated with per-step actuals, each compiled subtree carrying the
// SQL engine's per-operator instrumentation (and, on sharded sites,
// the fan-out's per-shard breakdown).
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, u community.User) {
	strategy := r.PathValue("strategy")
	tpl, ok := s.site.Strategies.Get(strategy)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no strategy %q", strategy))
		return
	}
	wf, err := tpl.Build(strategyParams(r, u))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, report, err := s.site.Flex.RunAnalyze(wf)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Strategy string `json:"strategy"`
		Rows     int    `json:"rows"`
		Plan     string `json:"plan"`
	}{Strategy: strategy, Rows: res.Len(), Plan: report})
}

// statusWriter captures the response code for endpoint latency
// recording.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// observedServe wraps the mux with endpoint latency recording: one
// histogram per "METHOD /path" fingerprint, route "http", server
// errors counted. Runs only when the site has a collector.
func (s *Server) observedServe(c *obs.Collector, w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	c.Record(r.Method+" "+r.URL.Path, "http", time.Since(start), 0, sw.code >= http.StatusInternalServerError)
}

// Package catalog models CourseRank's official university data (§2.1
// "Hybrid system"): departments, courses, offerings with meeting times,
// instructors, prerequisites, and volunteer-reported textbooks. This is
// the "official" half of the hybrid; user-contributed data lives in the
// comments, community and planner packages.
package catalog

import (
	"fmt"
	"strings"

	"courserank/internal/relation"
)

// Term is an academic quarter.
type Term string

// The four Stanford quarters in academic-year order.
const (
	Autumn Term = "Autumn"
	Winter Term = "Winter"
	Spring Term = "Spring"
	Summer Term = "Summer"
)

// Terms lists the quarters in academic-year order.
var Terms = []Term{Autumn, Winter, Spring, Summer}

// TermIndex returns the position of a term within the academic year,
// or -1 for an unknown term.
func TermIndex(t Term) int {
	for i, x := range Terms {
		if x == t {
			return i
		}
	}
	return -1
}

// Grade is a letter grade.
type Grade string

// gradePoints maps letter grades to grade points on Stanford's 4.3 scale.
var gradePoints = map[Grade]float64{
	"A+": 4.3, "A": 4.0, "A-": 3.7,
	"B+": 3.3, "B": 3.0, "B-": 2.7,
	"C+": 2.3, "C": 2.0, "C-": 1.7,
	"D+": 1.3, "D": 1.0, "D-": 0.7,
	"F": 0.0,
}

// LetterGrades lists grades from best to worst.
var LetterGrades = []Grade{"A+", "A", "A-", "B+", "B", "B-", "C+", "C", "C-", "D+", "D", "D-", "F"}

// Points returns the grade-point value and whether the grade counts
// toward a GPA (pass/fail and blank grades do not).
func (g Grade) Points() (float64, bool) {
	p, ok := gradePoints[g]
	return p, ok
}

// Valid reports whether g is a recognized letter grade.
func (g Grade) Valid() bool {
	_, ok := gradePoints[g]
	return ok
}

// Department is one academic department.
type Department struct {
	ID     string // e.g. "CS"
	Name   string // e.g. "Computer Science"
	School string // e.g. "Engineering"
}

// Course is one catalog course (identity is stable across offerings).
type Course struct {
	ID          int64
	DepID       string
	Number      string // e.g. "106A"
	Title       string
	Description string
	Units       int64
}

// Code renders the catalog code, e.g. "CS106A".
func (c Course) Code() string { return c.DepID + c.Number }

// Offering is one scheduled instance of a course in a quarter, with its
// weekly meeting pattern. Times are minutes from midnight.
type Offering struct {
	ID           int64
	CourseID     int64
	Year         int64
	Term         Term
	Days         string // subset of "MTWRF"
	StartMin     int64
	EndMin       int64
	InstructorID int64
}

// Overlaps reports whether two offerings meet at the same time in the
// same quarter: same year and term, at least one shared day, and
// overlapping time ranges.
func (o Offering) Overlaps(p Offering) bool {
	if o.Year != p.Year || o.Term != p.Term {
		return false
	}
	shared := false
	for _, d := range o.Days {
		if strings.ContainsRune(p.Days, d) {
			shared = true
			break
		}
	}
	if !shared {
		return false
	}
	return o.StartMin < p.EndMin && p.StartMin < o.EndMin
}

// Instructor is a faculty member who teaches offerings.
type Instructor struct {
	ID    int64
	Name  string
	DepID string
}

// Textbook is a course textbook. ReportedBy records the volunteer
// student who reported it (0 for official imports) — the paper's
// bookstore anecdote: the official list was withheld, so CourseRank
// built a volunteer reporting system instead (§2.2).
type Textbook struct {
	ID         int64
	CourseID   int64
	Title      string
	Author     string
	ReportedBy int64
}

// Store provides typed access to the catalog tables inside a
// relation.DB.
type Store struct {
	db *relation.DB
}

// Setup creates the catalog tables in db and returns a store.
func Setup(db *relation.DB) (*Store, error) {
	tables := []*relation.Table{
		relation.MustTable("Departments",
			relation.NewSchema(
				relation.NotNullCol("DepID", relation.TypeString),
				relation.NotNullCol("Name", relation.TypeString),
				relation.NotNullCol("School", relation.TypeString),
			), relation.WithPrimaryKey("DepID")),
		relation.MustTable("Courses",
			relation.NewSchema(
				relation.NotNullCol("CourseID", relation.TypeInt),
				relation.NotNullCol("DepID", relation.TypeString),
				relation.NotNullCol("Number", relation.TypeString),
				relation.NotNullCol("Title", relation.TypeString),
				relation.Col("Description", relation.TypeString),
				relation.NotNullCol("Units", relation.TypeInt),
			), relation.WithPrimaryKey("CourseID"), relation.WithAutoIncrement("CourseID"), relation.WithIndex("DepID"),
			// Title is the equality key of the FlexRecs "related-courses"
			// reference query; the index makes it a planner probe.
			relation.WithIndex("Title")),
		relation.MustTable("Offerings",
			relation.NewSchema(
				relation.NotNullCol("OfferingID", relation.TypeInt),
				relation.NotNullCol("CourseID", relation.TypeInt),
				relation.NotNullCol("Year", relation.TypeInt),
				relation.NotNullCol("Term", relation.TypeString),
				relation.NotNullCol("Days", relation.TypeString),
				relation.NotNullCol("StartMin", relation.TypeInt),
				relation.NotNullCol("EndMin", relation.TypeInt),
				relation.Col("InstructorID", relation.TypeInt),
			), relation.WithPrimaryKey("OfferingID"), relation.WithAutoIncrement("OfferingID"), relation.WithIndex("CourseID"),
			// "Year >= 2008"-style schedule scopes ride the ordered
			// index as planner range scans instead of full scans.
			relation.WithOrderedIndex("Year")),
		relation.MustTable("Instructors",
			relation.NewSchema(
				relation.NotNullCol("InstructorID", relation.TypeInt),
				relation.NotNullCol("Name", relation.TypeString),
				relation.NotNullCol("DepID", relation.TypeString),
			), relation.WithPrimaryKey("InstructorID"), relation.WithAutoIncrement("InstructorID"), relation.WithIndex("DepID")),
		relation.MustTable("Prereqs",
			relation.NewSchema(
				relation.NotNullCol("CourseID", relation.TypeInt),
				relation.NotNullCol("RequiresID", relation.TypeInt),
			), relation.WithIndex("CourseID")),
		relation.MustTable("Textbooks",
			relation.NewSchema(
				relation.NotNullCol("BookID", relation.TypeInt),
				relation.NotNullCol("CourseID", relation.TypeInt),
				relation.NotNullCol("Title", relation.TypeString),
				relation.Col("Author", relation.TypeString),
				relation.Col("ReportedBy", relation.TypeInt),
			), relation.WithPrimaryKey("BookID"), relation.WithAutoIncrement("BookID"), relation.WithIndex("CourseID")),
	}
	for _, t := range tables {
		if _, err := db.Ensure(t); err != nil {
			return nil, err
		}
	}
	return &Store{db: db}, nil
}

// Open wraps an existing database whose catalog tables were already
// created by Setup.
func Open(db *relation.DB) *Store { return &Store{db: db} }

// DB returns the underlying database.
func (s *Store) DB() *relation.DB { return s.db }

// AddDepartment inserts a department.
func (s *Store) AddDepartment(d Department) error {
	if d.ID == "" {
		return fmt.Errorf("catalog: department needs an id")
	}
	_, err := s.db.MustTable("Departments").Insert(relation.Row{d.ID, d.Name, d.School})
	return err
}

// Department fetches a department by id.
func (s *Store) Department(id string) (Department, bool) {
	row, ok := s.db.MustTable("Departments").Get(id)
	if !ok {
		return Department{}, false
	}
	return Department{ID: row[0].(string), Name: row[1].(string), School: row[2].(string)}, true
}

// Departments returns all departments.
func (s *Store) Departments() []Department {
	var out []Department
	s.db.MustTable("Departments").Scan(func(_ int, r relation.Row) bool {
		out = append(out, Department{ID: r[0].(string), Name: r[1].(string), School: r[2].(string)})
		return true
	})
	return out
}

// AddCourse inserts a course; a zero ID auto-assigns, and the assigned
// id is returned.
func (s *Store) AddCourse(c Course) (int64, error) {
	if c.Units <= 0 {
		return 0, fmt.Errorf("catalog: course %q needs positive units", c.Title)
	}
	if _, ok := s.Department(c.DepID); !ok {
		return 0, fmt.Errorf("catalog: unknown department %q", c.DepID)
	}
	var id relation.Value
	if c.ID != 0 {
		id = c.ID
	}
	r, err := s.db.MustTable("Courses").InsertGet(relation.Row{id, c.DepID, c.Number, c.Title, c.Description, c.Units})
	if err != nil {
		return 0, err
	}
	return r[0].(int64), nil
}

func courseFromRow(r relation.Row) Course {
	desc := ""
	if r[4] != nil {
		desc = r[4].(string)
	}
	return Course{
		ID: r[0].(int64), DepID: r[1].(string), Number: r[2].(string),
		Title: r[3].(string), Description: desc, Units: r[5].(int64),
	}
}

// Course fetches a course by id. The row reference is safe without a
// clone: courseFromRow copies every field out before the lock drops.
func (s *Store) Course(id int64) (Course, bool) {
	row, ok := s.db.MustTable("Courses").GetRef(id)
	if !ok {
		return Course{}, false
	}
	return courseFromRow(row), true
}

// CoursesByDept returns the department's courses.
func (s *Store) CoursesByDept(depID string) []Course {
	rows := s.db.MustTable("Courses").Lookup("DepID", depID)
	out := make([]Course, len(rows))
	for i, r := range rows {
		out[i] = courseFromRow(r)
	}
	return out
}

// EachCourse streams every course; fn returning false stops.
func (s *Store) EachCourse(fn func(Course) bool) {
	s.db.MustTable("Courses").Scan(func(_ int, r relation.Row) bool {
		return fn(courseFromRow(r))
	})
}

// CourseCount returns the catalog size — the paper's "18,605 courses".
func (s *Store) CourseCount() int { return s.db.MustTable("Courses").Len() }

// AddOffering schedules an offering and returns its id.
func (s *Store) AddOffering(o Offering) (int64, error) {
	if _, ok := s.Course(o.CourseID); !ok {
		return 0, fmt.Errorf("catalog: unknown course %d", o.CourseID)
	}
	if TermIndex(o.Term) < 0 {
		return 0, fmt.Errorf("catalog: unknown term %q", o.Term)
	}
	if o.EndMin <= o.StartMin {
		return 0, fmt.Errorf("catalog: offering must end after it starts")
	}
	for _, d := range o.Days {
		if !strings.ContainsRune("MTWRF", d) {
			return 0, fmt.Errorf("catalog: bad meeting day %q", string(d))
		}
	}
	var id relation.Value
	if o.ID != 0 {
		id = o.ID
	}
	var inst relation.Value
	if o.InstructorID != 0 {
		inst = o.InstructorID
	}
	r, err := s.db.MustTable("Offerings").InsertGet(relation.Row{id, o.CourseID, o.Year, string(o.Term), o.Days, o.StartMin, o.EndMin, inst})
	if err != nil {
		return 0, err
	}
	return r[0].(int64), nil
}

func offeringFromRow(r relation.Row) Offering {
	var inst int64
	if r[7] != nil {
		inst = r[7].(int64)
	}
	return Offering{
		ID: r[0].(int64), CourseID: r[1].(int64), Year: r[2].(int64),
		Term: Term(r[3].(string)), Days: r[4].(string),
		StartMin: r[5].(int64), EndMin: r[6].(int64), InstructorID: inst,
	}
}

// Offerings returns a course's offerings.
func (s *Store) Offerings(courseID int64) []Offering {
	rows := s.db.MustTable("Offerings").Lookup("CourseID", courseID)
	out := make([]Offering, len(rows))
	for i, r := range rows {
		out[i] = offeringFromRow(r)
	}
	return out
}

// OfferingsIn returns all offerings in a given quarter.
func (s *Store) OfferingsIn(year int64, term Term) []Offering {
	var out []Offering
	s.db.MustTable("Offerings").Scan(func(_ int, r relation.Row) bool {
		o := offeringFromRow(r)
		if o.Year == year && o.Term == term {
			out = append(out, o)
		}
		return true
	})
	return out
}

// AddInstructor inserts an instructor and returns the id.
func (s *Store) AddInstructor(in Instructor) (int64, error) {
	var id relation.Value
	if in.ID != 0 {
		id = in.ID
	}
	r, err := s.db.MustTable("Instructors").InsertGet(relation.Row{id, in.Name, in.DepID})
	if err != nil {
		return 0, err
	}
	return r[0].(int64), nil
}

// Instructor fetches an instructor by id.
func (s *Store) Instructor(id int64) (Instructor, bool) {
	r, ok := s.db.MustTable("Instructors").Get(id)
	if !ok {
		return Instructor{}, false
	}
	return Instructor{ID: r[0].(int64), Name: r[1].(string), DepID: r[2].(string)}, true
}

// AddPrereq declares that course requires another course first. Cycles
// are rejected (a course cannot transitively require itself).
func (s *Store) AddPrereq(courseID, requiresID int64) error {
	if courseID == requiresID {
		return fmt.Errorf("catalog: course %d cannot require itself", courseID)
	}
	if _, ok := s.Course(courseID); !ok {
		return fmt.Errorf("catalog: unknown course %d", courseID)
	}
	if _, ok := s.Course(requiresID); !ok {
		return fmt.Errorf("catalog: unknown course %d", requiresID)
	}
	// Reject if courseID is reachable from requiresID.
	seen := map[int64]bool{}
	stack := []int64{requiresID}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == courseID {
			return fmt.Errorf("catalog: prerequisite cycle: %d ⇢ %d", courseID, requiresID)
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, s.Prereqs(cur)...)
	}
	_, err := s.db.MustTable("Prereqs").Insert(relation.Row{courseID, requiresID})
	return err
}

// Prereqs returns the direct prerequisites of a course.
func (s *Store) Prereqs(courseID int64) []int64 {
	rows := s.db.MustTable("Prereqs").Lookup("CourseID", courseID)
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[1].(int64)
	}
	return out
}

// ReportTextbook records a (possibly volunteer-reported) textbook.
func (s *Store) ReportTextbook(b Textbook) (int64, error) {
	if _, ok := s.Course(b.CourseID); !ok {
		return 0, fmt.Errorf("catalog: unknown course %d", b.CourseID)
	}
	if b.Title == "" {
		return 0, fmt.Errorf("catalog: textbook needs a title")
	}
	var reporter relation.Value
	if b.ReportedBy != 0 {
		reporter = b.ReportedBy
	}
	r, err := s.db.MustTable("Textbooks").InsertGet(relation.Row{nil, b.CourseID, b.Title, b.Author, reporter})
	if err != nil {
		return 0, err
	}
	return r[0].(int64), nil
}

// Textbooks returns a course's textbooks.
func (s *Store) Textbooks(courseID int64) []Textbook {
	rows := s.db.MustTable("Textbooks").Lookup("CourseID", courseID)
	out := make([]Textbook, len(rows))
	for i, r := range rows {
		var author string
		if r[3] != nil {
			author = r[3].(string)
		}
		var rep int64
		if r[4] != nil {
			rep = r[4].(int64)
		}
		out[i] = Textbook{ID: r[0].(int64), CourseID: r[1].(int64), Title: r[2].(string), Author: author, ReportedBy: rep}
	}
	return out
}

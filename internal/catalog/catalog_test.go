package catalog

import (
	"testing"
	"testing/quick"

	"courserank/internal/relation"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Setup(relation.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddDepartment(Department{ID: "CS", Name: "Computer Science", School: "Engineering"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDepartment(Department{ID: "HIST", Name: "History", School: "Humanities and Sciences"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGradePoints(t *testing.T) {
	cases := []struct {
		g   Grade
		pts float64
		gpa bool
	}{
		{"A+", 4.3, true}, {"A", 4.0, true}, {"B-", 2.7, true}, {"F", 0, true},
		{"P", 0, false}, {"", 0, false}, {"Z", 0, false},
	}
	for _, c := range cases {
		p, ok := c.g.Points()
		if ok != c.gpa || (ok && p != c.pts) {
			t.Errorf("Grade(%q).Points() = %v, %v", c.g, p, ok)
		}
		if c.g.Valid() != c.gpa {
			t.Errorf("Grade(%q).Valid() = %v", c.g, c.g.Valid())
		}
	}
	if len(LetterGrades) != 13 {
		t.Errorf("LetterGrades = %d", len(LetterGrades))
	}
}

func TestTermIndex(t *testing.T) {
	if TermIndex(Autumn) != 0 || TermIndex(Summer) != 3 {
		t.Error("term order wrong")
	}
	if TermIndex("Fall") != -1 {
		t.Error("unknown term should be -1")
	}
}

func TestCourseLifecycle(t *testing.T) {
	s := newStore(t)
	id, err := s.AddCourse(Course{DepID: "CS", Number: "106A", Title: "Programming Methodology", Description: "intro", Units: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.Course(id)
	if !ok || c.Title != "Programming Methodology" || c.Units != 5 {
		t.Fatalf("Course = %+v", c)
	}
	if c.Code() != "CS106A" {
		t.Errorf("Code = %q", c.Code())
	}
	if _, err := s.AddCourse(Course{DepID: "NOPE", Number: "1", Title: "x", Units: 3}); err == nil {
		t.Error("unknown department should fail")
	}
	if _, err := s.AddCourse(Course{DepID: "CS", Number: "1", Title: "x", Units: 0}); err == nil {
		t.Error("zero units should fail")
	}
	if got := s.CoursesByDept("CS"); len(got) != 1 {
		t.Errorf("CoursesByDept = %v", got)
	}
	if s.CourseCount() != 1 {
		t.Error("CourseCount")
	}
	n := 0
	s.EachCourse(func(Course) bool { n++; return true })
	if n != 1 {
		t.Error("EachCourse")
	}
}

func TestOfferings(t *testing.T) {
	s := newStore(t)
	cid, _ := s.AddCourse(Course{DepID: "CS", Number: "106A", Title: "Programming", Units: 5})
	oid, err := s.AddOffering(Offering{CourseID: cid, Year: 2008, Term: Autumn, Days: "MWF", StartMin: 600, EndMin: 650})
	if err != nil {
		t.Fatal(err)
	}
	if oid == 0 {
		t.Error("offering id should be assigned")
	}
	if _, err := s.AddOffering(Offering{CourseID: 999, Year: 2008, Term: Autumn, Days: "M", StartMin: 1, EndMin: 2}); err == nil {
		t.Error("unknown course should fail")
	}
	if _, err := s.AddOffering(Offering{CourseID: cid, Year: 2008, Term: "Fall", Days: "M", StartMin: 1, EndMin: 2}); err == nil {
		t.Error("bad term should fail")
	}
	if _, err := s.AddOffering(Offering{CourseID: cid, Year: 2008, Term: Autumn, Days: "MX", StartMin: 1, EndMin: 2}); err == nil {
		t.Error("bad day should fail")
	}
	if _, err := s.AddOffering(Offering{CourseID: cid, Year: 2008, Term: Autumn, Days: "M", StartMin: 5, EndMin: 5}); err == nil {
		t.Error("zero-length meeting should fail")
	}
	if got := s.Offerings(cid); len(got) != 1 || got[0].Days != "MWF" {
		t.Errorf("Offerings = %v", got)
	}
	if got := s.OfferingsIn(2008, Autumn); len(got) != 1 {
		t.Errorf("OfferingsIn = %v", got)
	}
	if got := s.OfferingsIn(2009, Autumn); len(got) != 0 {
		t.Errorf("OfferingsIn wrong year = %v", got)
	}
}

func TestOverlaps(t *testing.T) {
	base := Offering{Year: 2008, Term: Autumn, Days: "MWF", StartMin: 600, EndMin: 660}
	cases := []struct {
		o    Offering
		want bool
	}{
		{Offering{Year: 2008, Term: Autumn, Days: "MWF", StartMin: 630, EndMin: 690}, true},
		{Offering{Year: 2008, Term: Autumn, Days: "TR", StartMin: 600, EndMin: 660}, false},  // disjoint days
		{Offering{Year: 2008, Term: Winter, Days: "MWF", StartMin: 600, EndMin: 660}, false}, // other term
		{Offering{Year: 2009, Term: Autumn, Days: "MWF", StartMin: 600, EndMin: 660}, false}, // other year
		{Offering{Year: 2008, Term: Autumn, Days: "F", StartMin: 660, EndMin: 720}, false},   // back-to-back
		{Offering{Year: 2008, Term: Autumn, Days: "F", StartMin: 659, EndMin: 720}, true},    // 1-minute overlap
	}
	for i, c := range cases {
		if got := base.Overlaps(c.o); got != c.want {
			t.Errorf("case %d: Overlaps = %v, want %v", i, got, c.want)
		}
		if c.o.Overlaps(base) != base.Overlaps(c.o) {
			t.Errorf("case %d: Overlaps not symmetric", i)
		}
	}
}

// Property: Overlaps is symmetric for arbitrary meeting patterns.
func TestOverlapsSymmetricProperty(t *testing.T) {
	days := []string{"M", "TR", "MWF", "F", "MTWRF"}
	f := func(d1, d2, s1, s2 uint8, l1, l2 uint8) bool {
		a := Offering{Year: 2008, Term: Autumn, Days: days[int(d1)%len(days)], StartMin: int64(s1), EndMin: int64(s1) + int64(l1%90) + 1}
		b := Offering{Year: 2008, Term: Autumn, Days: days[int(d2)%len(days)], StartMin: int64(s2), EndMin: int64(s2) + int64(l2%90) + 1}
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPrereqsAndCycles(t *testing.T) {
	s := newStore(t)
	a, _ := s.AddCourse(Course{DepID: "CS", Number: "106A", Title: "A", Units: 5})
	b, _ := s.AddCourse(Course{DepID: "CS", Number: "106B", Title: "B", Units: 5})
	c, _ := s.AddCourse(Course{DepID: "CS", Number: "107", Title: "C", Units: 5})
	if err := s.AddPrereq(b, a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPrereq(c, b); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPrereq(a, a); err == nil {
		t.Error("self prereq should fail")
	}
	if err := s.AddPrereq(a, c); err == nil {
		t.Error("cycle a→c→b→a should be rejected")
	}
	if err := s.AddPrereq(a, 999); err == nil {
		t.Error("unknown course should fail")
	}
	if got := s.Prereqs(b); len(got) != 1 || got[0] != a {
		t.Errorf("Prereqs(b) = %v", got)
	}
}

func TestInstructors(t *testing.T) {
	s := newStore(t)
	id, err := s.AddInstructor(Instructor{Name: "Prof. Widom", DepID: "CS"})
	if err != nil {
		t.Fatal(err)
	}
	in, ok := s.Instructor(id)
	if !ok || in.Name != "Prof. Widom" {
		t.Fatalf("Instructor = %+v", in)
	}
	if _, ok := s.Instructor(999); ok {
		t.Error("missing instructor")
	}
}

func TestTextbooks(t *testing.T) {
	s := newStore(t)
	cid, _ := s.AddCourse(Course{DepID: "CS", Number: "145", Title: "Databases", Units: 4})
	bid, err := s.ReportTextbook(Textbook{CourseID: cid, Title: "Database Systems", Author: "GMUW", ReportedBy: 42})
	if err != nil {
		t.Fatal(err)
	}
	if bid == 0 {
		t.Error("book id")
	}
	if _, err := s.ReportTextbook(Textbook{CourseID: 999, Title: "x"}); err == nil {
		t.Error("unknown course should fail")
	}
	if _, err := s.ReportTextbook(Textbook{CourseID: cid, Title: ""}); err == nil {
		t.Error("empty title should fail")
	}
	books := s.Textbooks(cid)
	if len(books) != 1 || books[0].ReportedBy != 42 {
		t.Errorf("Textbooks = %v", books)
	}
}

func TestDepartments(t *testing.T) {
	s := newStore(t)
	if err := s.AddDepartment(Department{ID: ""}); err == nil {
		t.Error("empty id should fail")
	}
	d, ok := s.Department("CS")
	if !ok || d.School != "Engineering" {
		t.Errorf("Department = %+v", d)
	}
	if got := s.Departments(); len(got) != 2 {
		t.Errorf("Departments = %v", got)
	}
	if _, ok := s.Department("NOPE"); ok {
		t.Error("missing department")
	}
	if Open(s.DB()) == nil {
		t.Error("Open")
	}
}

package shard

import (
	"regexp"
	"strings"
	"testing"
)

var shardTimeRe = regexp.MustCompile(`in [0-9][^\n]*`)

// TestExplainAnalyzeSingleShard pins the pinned-route report: route
// header plus the owning shard's annotated plan.
func TestExplainAnalyzeSingleShard(t *testing.T) {
	c, _ := testCluster(t, 4)
	st, err := c.Prepare(`SELECT Score FROM Ratings WHERE SuID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, report, err := st.QueryAnalyze(int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(report, "Route: single shard ") {
		t.Fatalf("missing single-shard route header:\n%s", report)
	}
	if !strings.Contains(report, "index probe Ratings (SuID = 7)") || !strings.Contains(report, "actual rows=") {
		t.Fatalf("missing annotated plan:\n%s", report)
	}
	if !strings.Contains(report, "analyzed: ") {
		t.Fatalf("missing execution footer:\n%s", report)
	}
	// The analyze ran the query for real: rows match the plain path.
	plain, err := st.Query(int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(plain.Rows) {
		t.Fatalf("analyzed %d rows, plain %d", len(res.Rows), len(plain.Rows))
	}
}

// TestExplainAnalyzeFanout pins the scatter-gather report: per-shard
// rows/time lines, the merge kind, the short-circuit window, and the
// merged row accounting.
func TestExplainAnalyzeFanout(t *testing.T) {
	c, e := testCluster(t, 4)
	st, err := c.Prepare(`SELECT RID, Score FROM Ratings ORDER BY RID LIMIT 10 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	res, report, err := st.QueryAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(`SELECT RID, Score FROM Ratings ORDER BY RID LIMIT 10 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("analyzed fan-out returned %d rows, mono %d", len(res.Rows), len(want.Rows))
	}
	norm := shardTimeRe.ReplaceAllString(report, "in T")
	for _, wantLine := range []string{
		"Route: fan-out over 4 shards, merge=by-order\n",
		"short-circuit: each shard windowed to 15 rows (LIMIT 10 + OFFSET 5)\n",
		" rows out\n",
		"shard 0 plan:\n",
		"scan Ratings ~28 of 28 rows",
		"actual rows=",
	} {
		if !strings.Contains(norm, wantLine) {
			t.Errorf("report missing %q:\n%s", wantLine, report)
		}
	}
	// One "shard i: N rows in T" line per shard, and the per-shard rows
	// sum to the merged-in count.
	for _, pre := range []string{"  shard 0: ", "  shard 1: ", "  shard 2: ", "  shard 3: "} {
		if !strings.Contains(norm, pre) {
			t.Errorf("report missing per-shard line %q:\n%s", pre, report)
		}
	}
	if !regexp.MustCompile(`merged: \d+ rows in, 10 rows out`).MatchString(norm) {
		t.Errorf("merged accounting line wrong:\n%s", report)
	}
}

// TestExplainAnalyzeAggregateFanout: aggregates disable the
// short-circuit (each shard must send full partials).
func TestExplainAnalyzeAggregateFanout(t *testing.T) {
	c, _ := testCluster(t, 4)
	st, err := c.Prepare(`SELECT SuID, COUNT(*) FROM Ratings GROUP BY SuID`)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := st.QueryAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "merge=combine-partials") {
		t.Fatalf("aggregate merge kind missing:\n%s", report)
	}
	if strings.Contains(report, "short-circuit") {
		t.Fatalf("aggregate fan-out must not short-circuit:\n%s", report)
	}
}

func TestExplainAnalyzeRejectsDML(t *testing.T) {
	c, _ := testCluster(t, 2)
	st, err := c.Prepare(`DELETE FROM Points WHERE Pts < 0`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.QueryAnalyze(); err == nil {
		t.Fatal("QueryAnalyze of DML should fail")
	}
}

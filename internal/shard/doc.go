// Package shard is the scatter-gather layer above the planner: it runs
// one sqlmini engine per shard and routes prepared statements across
// them, so fan-out queries scale with cores while shard-key point
// lookups stay one-engine cheap.
//
// # Placement
//
// A table with a declared shard key (relation.WithShardKey /
// Table.SetShardKey) is PARTITIONED: each row lives on exactly one
// shard, chosen by hashing the key value (NULL keys hash to shard 0).
// Tables without a shard key are REPLICATED: every shard holds a full
// copy. CourseRank partitions its fact tables (Comments, Enrollments,
// EnrollmentPoints) by student id and replicates the catalog
// (Courses, Offerings, Departments, ...), so the social joins the
// paper's workloads issue — a student's ratings against the course
// catalog — stay partition-local.
//
// # Routing rules
//
// At prepare time the router extracts equality conjuncts from WHERE
// and JOIN ON clauses and closes them into equivalence classes. At
// execution it decides, per statement:
//
//   - Single-shard fast path: every partitioned table's shard key is
//     pinned — directly or through an equality class — to a value that
//     hashes to one owner. The statement runs on that shard alone.
//   - Replicated route: the statement touches no partitioned table.
//     It runs on one shard, rotated round-robin for balance.
//   - Fan-out: otherwise, the prepared statement runs on every shard
//     on parallel goroutines (a per-query pool bounded by GOMAXPROCS)
//     and the per-shard results are gathered.
//
// A fan-out is refused at execution (never silently wrong) when:
//
//   - two partitioned tables join without their shard keys in one
//     equivalence class (a cross-shard join — rows that must meet
//     live on different shards);
//   - a LEFT JOIN's right side is partitioned while no partitioned
//     table precedes it (every shard would NULL-extend its own copy
//     of the replicated left rows, duplicating them in the union);
//   - an ORDER BY key is not an output column (the cross-shard order
//     contract — see the sqlmini package docs);
//   - an aggregate cannot be combined from per-shard partials: AVG
//     (rewrite as SUM and COUNT), HAVING, DISTINCT aggregates, or
//     expressions over aggregates.
//
// Such statements still execute fine when pinned to a single shard.
//
// # Merge strategies
//
//   - merge-by-order: ORDER BY fan-outs reuse the engine's sort
//     contract — each shard's result arrives sorted, so the gather is
//     a k-way merge on output columns. With LIMIT l OFFSET o each
//     shard is asked for l+o rows (Stmt.QueryWindow) and the global
//     window applies once after the merge.
//   - streaming concat: unordered fan-outs interleave per-shard rows
//     in arrival order. A LIMIT short-circuit cancels still-running
//     shard cursors as soon as the window is filled, as does closing
//     the Rows early.
//   - partial-aggregate combine: GROUP BY fan-outs run per shard and
//     the coordinator merges groups by key, summing COUNT/SUM
//     partials and folding MIN/MAX. Every group key must appear in the
//     projection — the coordinator merges BY those output values, so a
//     dropped key is refused rather than folding distinct groups.
//
// Streamed fan-outs (QueryRows) apply backpressure: once a per-shard
// backlog passes a high-water mark, that shard's worker blocks until
// the consumer drains it, so even a slow consumer bounds gather memory
// at roughly shards × high-water rows instead of materializing whole
// shard results. Abandoning a stream requires Close, which wakes and
// cancels blocked workers.
//
// # DML
//
// INSERTs into partitioned tables route by the inserted key value
// (multi-row inserts must target one shard); unpinned UPDATE/DELETE
// broadcast — each shard mutates its local rows and the counts sum.
// Updating a shard key via SQL is refused (the row would have to
// migrate); CREATE broadcasts and new tables are replicated. A
// cluster can also follow a live base database (FollowBase): row
// observers propagate every committed base mutation into the shards,
// which is how core.Site keeps serving all non-SQL subsystems from
// the base store while SQL reads scatter. Split and FollowBase require
// a quiescent base (no writes until FollowBase returns); writes that
// slip into the window between the copy and the observers attaching
// are detected by table-version comparison and counted in
// Stats.ApplyErrors.
//
// # Skew caveats
//
// Hash placement balances students, not load: a department-popular
// workload hammers whichever shards own the loud students (the Digg
// friend-feed skew), and per-shard row-count stats (Stats.RowsPerShard)
// make that visible rather than fixing it. Replicated tables multiply
// write amplification by the shard count, so broadcasts are kept off
// the fast path. NULL shard keys all land on shard 0 by construction.
package shard

package shard

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// gatherBatch is how many rows a shard worker accumulates before
// publishing to the coordinator — one lock acquisition per batch.
const gatherBatch = 64

// gatherHighWater is the per-shard backlog (pushed, not yet consumed)
// above which a worker blocks until the consumer drains, bounding a
// streamed fan-out's memory at roughly shards × (highWater + batch)
// rows however slow the consumer is. A var so tests can shrink it.
var gatherHighWater = 1024

// gatherCompact is the consumed-prefix length past which a buffer is
// compacted in place, so a long stream releases rows as it goes.
const gatherCompact = 1024

// fanoutQuery executes the statement on every shard in parallel and
// gathers the materialized result.
func (s *Stmt) fanoutQuery(args []any) (*sqlmini.Result, error) {
	if s.fanoutErr != nil {
		return nil, s.fanoutErr
	}
	s.c.fanOut.Add(1)
	limit, offset, err := s.per[0].WindowValues(args...)
	if err != nil {
		return nil, err
	}
	// Non-aggregate shards each produce limit+offset rows — enough for
	// any global window. Aggregates need every group's full partials.
	perWindow := int64(-1)
	if limit >= 0 && !s.info.Agg {
		perWindow = limit + offset
	}
	results, err := s.parQuery(func(i int) (*sqlmini.Result, error) {
		return s.per[i].QueryWindow(perWindow, 0, args...)
	})
	if err != nil {
		return nil, err
	}
	var rows []relation.Row
	switch {
	case s.info.Agg:
		s.c.mergeCombine.Add(1)
		rows = combineRows(results, s.info.Combine)
		sortRows(rows, s.info.MergeKeys)
	case s.info.Distinct:
		s.c.mergeConcat.Add(1)
		rows = dedupeRows(results)
		sortRows(rows, s.info.MergeKeys)
	case s.info.HasOrder:
		s.c.mergeOrdered.Add(1)
		rows = mergeByOrder(results, s.info.MergeKeys)
	default:
		s.c.mergeConcat.Add(1)
		rows = concatRows(results)
	}
	return &sqlmini.Result{Columns: results[0].Columns, Rows: applyWindow(rows, limit, offset)}, nil
}

// fanoutRows executes the statement on every shard and streams the
// gathered rows: a k-way merge for ordered plans, arrival-order concat
// otherwise. Aggregates and DISTINCT need the whole result to combine
// or dedupe, so they materialize.
func (s *Stmt) fanoutRows(args []any) (*Rows, error) {
	if s.fanoutErr != nil {
		return nil, s.fanoutErr
	}
	if s.info.Agg || s.info.Distinct {
		res, err := s.fanoutQuery(args)
		if err != nil {
			return nil, err
		}
		return &Rows{cols: res.Columns, out: res.Rows, materialized: true}, nil
	}
	s.c.fanOut.Add(1)
	limit, offset, err := s.per[0].WindowValues(args...)
	if err != nil {
		return nil, err
	}
	perWindow := int64(-1)
	if limit >= 0 {
		perWindow = limit + offset
	}
	ordered := s.info.HasOrder
	if ordered {
		s.c.mergeOrdered.Add(1)
	} else {
		s.c.mergeConcat.Add(1)
	}
	g := s.startGather(args, perWindow, ordered, s.info.MergeKeys)
	return &Rows{cols: s.per[0].Columns(), g: g, skip: offset, remain: limit}, nil
}

// parQuery runs one task per shard on a pool of min(shards, workers)
// goroutines and waits for all of them.
func (s *Stmt) parQuery(run func(i int) (*sqlmini.Result, error)) ([]*sqlmini.Result, error) {
	n := s.c.n
	results := make([]*sqlmini.Result, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(s.c.workers, n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// --- merge strategies (materialized) -----------------------------------

func concatRows(results []*sqlmini.Result) []relation.Row {
	total := 0
	for _, r := range results {
		total += len(r.Rows)
	}
	out := make([]relation.Row, 0, total)
	for _, r := range results {
		out = append(out, r.Rows...)
	}
	return out
}

// mergeByOrder k-way merges per-shard results that each arrive sorted
// by keys — the engine's sort contract makes the heads comparable.
func mergeByOrder(results []*sqlmini.Result, keys []sqlmini.MergeKey) []relation.Row {
	total := 0
	heads := make([]int, len(results))
	for _, r := range results {
		total += len(r.Rows)
	}
	out := make([]relation.Row, 0, total)
	for {
		best := -1
		for i, r := range results {
			if heads[i] >= len(r.Rows) {
				continue
			}
			if best < 0 || lessRows(r.Rows[heads[i]], results[best].Rows[heads[best]], keys) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, results[best].Rows[heads[best]])
		heads[best]++
	}
}

func dedupeRows(results []*sqlmini.Result) []relation.Row {
	seen := map[string]bool{}
	var out []relation.Row
	var key []byte
	for _, r := range results {
		for _, row := range r.Rows {
			key = key[:0]
			for _, v := range row {
				key = appendValueKey(key, v)
			}
			if seen[string(key)] {
				continue
			}
			seen[string(key)] = true
			out = append(out, row)
		}
	}
	return out
}

// combineRows merges per-shard partial aggregates: rows with equal
// group keys fold into one, per the statement's combine ops.
func combineRows(results []*sqlmini.Result, ops []sqlmini.CombineOp) []relation.Row {
	idx := map[string]int{}
	var out []relation.Row
	var key []byte
	for _, r := range results {
		for _, row := range r.Rows {
			key = key[:0]
			for i, op := range ops {
				if op == sqlmini.CombineKey {
					key = appendValueKey(key, row[i])
				}
			}
			j, ok := idx[string(key)]
			if !ok {
				idx[string(key)] = len(out)
				out = append(out, row.Clone())
				continue
			}
			dst := out[j]
			for i, op := range ops {
				switch op {
				case sqlmini.CombineSum:
					dst[i] = addValues(dst[i], row[i])
				case sqlmini.CombineMin:
					if dst[i] == nil || (row[i] != nil && relation.Compare(row[i], dst[i]) < 0) {
						dst[i] = row[i]
					}
				case sqlmini.CombineMax:
					if dst[i] == nil || (row[i] != nil && relation.Compare(row[i], dst[i]) > 0) {
						dst[i] = row[i]
					}
				}
			}
		}
	}
	return out
}

// addValues sums COUNT/SUM partials; NULL partials (SUM over an empty
// shard) are identity.
func addValues(a, b relation.Value) relation.Value {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if ai, ok := a.(int64); ok {
		if bi, ok := b.(int64); ok {
			return ai + bi
		}
	}
	return valueFloat(a) + valueFloat(b)
}

func valueFloat(v relation.Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

func lessRows(a, b relation.Row, keys []sqlmini.MergeKey) bool {
	for _, k := range keys {
		cmp := relation.Compare(a[k.Out], b[k.Out])
		if k.Desc {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

func sortRows(rows []relation.Row, keys []sqlmini.MergeKey) {
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool { return lessRows(rows[i], rows[j], keys) })
}

func applyWindow(rows []relation.Row, limit, offset int64) []relation.Row {
	if offset > 0 {
		if offset >= int64(len(rows)) {
			return nil
		}
		rows = rows[offset:]
	}
	if limit >= 0 && limit < int64(len(rows)) {
		rows = rows[:limit]
	}
	return rows
}

// appendValueKey encodes one value for grouping/dedup, normalizing
// integral floats to their integer encoding exactly like the engine's
// join keys, so 7 and 7.0 land in one group.
func appendValueKey(b []byte, v relation.Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, 'n', 0)
	case int64:
		b = append(b, 'i')
		b = strconv.AppendInt(b, x, 10)
		return append(b, 0)
	case float64:
		if integralInt64(x) {
			b = append(b, 'i')
			b = strconv.AppendInt(b, int64(x), 10)
			return append(b, 0)
		}
		b = append(b, 'f')
		b = strconv.AppendUint(b, math.Float64bits(x), 16)
		return append(b, 0)
	case string:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(x)), 10)
		b = append(b, ':')
		b = append(b, x...)
		return append(b, 0)
	case bool:
		if x {
			return append(b, 'b', 1, 0)
		}
		return append(b, 'b', 0, 0)
	}
	return append(b, '?', 0)
}

// --- streaming gather ---------------------------------------------------

// gather coordinates shard workers feeding one consumer. Workers
// append rows to per-shard buffers; the consumer pops in arrival order
// (concat) or k-way merge order, compacting consumed prefixes away.
// Once every shard has been claimed by a worker, a worker whose
// backlog exceeds gatherHighWater blocks until the consumer drains it,
// so a slow consumer bounds memory instead of buffering whole shard
// results. (Before all shards are claimed, pushes never block: a
// blocked worker holds a pool slot, and waiting on a consumer that is
// itself waiting for an unstarted shard's first row would deadlock an
// ordered merge.) Cancelling — an early Close, a filled LIMIT — stops
// workers at their next batch boundary and wakes any blocked on the
// high-water mark, closing the per-shard cursors so no goroutine or
// pipeline leaks.
type gather struct {
	mu      sync.Mutex
	cond    *sync.Cond
	claims  atomic.Int64 // shards handed to workers; >= len(bufs) gates backpressure
	bufs    [][]relation.Row
	pos     []int
	done    []bool
	active  int
	err     error
	cancel  bool
	ordered bool
	keys    []sqlmini.MergeKey
	next    int // concat fairness rotor
}

// startGather opens the per-shard cursors on a bounded pool and
// returns the coordinator state.
func (s *Stmt) startGather(args []any, perWindow int64, ordered bool, keys []sqlmini.MergeKey) *gather {
	n := s.c.n
	g := &gather{
		bufs:    make([][]relation.Row, n),
		pos:     make([]int, n),
		done:    make([]bool, n),
		active:  n,
		ordered: ordered,
		keys:    keys,
	}
	g.cond = sync.NewCond(&g.mu)
	for w := 0; w < min(s.c.workers, n); w++ {
		go func() {
			for {
				i := int(g.claims.Add(1)) - 1
				if i >= n {
					return
				}
				s.gatherShard(g, i, args, perWindow)
			}
		}()
	}
	return g
}

// gatherShard streams one shard's cursor into its buffer.
func (s *Stmt) gatherShard(g *gather, i int, args []any, perWindow int64) {
	defer g.markDone(i)
	if g.cancelled() {
		return
	}
	rows, err := s.per[i].QueryRowsWindow(perWindow, 0, args...)
	if err != nil {
		g.fail(err)
		return
	}
	defer rows.Close()
	ncols := len(rows.Columns())
	ptrs := make([]any, ncols)
	batch := make([]relation.Row, 0, gatherBatch)
	for rows.Next() {
		vals := make(relation.Row, ncols)
		for j := range vals {
			ptrs[j] = &vals[j]
		}
		if err := rows.Scan(ptrs...); err != nil {
			g.fail(err)
			return
		}
		batch = append(batch, vals)
		if len(batch) == gatherBatch {
			if !g.push(i, batch) {
				return // cancelled
			}
			batch = batch[:0]
		}
	}
	if err := rows.Err(); err != nil {
		g.fail(err)
		return
	}
	g.push(i, batch)
}

// push publishes rows to shard i's buffer, reporting false when the
// gather has been cancelled. Once every shard is claimed it applies
// backpressure: a backlog past the high-water mark waits for the
// consumer (each claimed, unfinished shard has its own goroutine then,
// so the consumer always has a producer to drain and progress holds).
func (g *gather) push(i int, rows []relation.Row) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.cancel && len(g.bufs[i])-g.pos[i] > gatherHighWater && int(g.claims.Load()) >= len(g.bufs) {
		g.cond.Wait()
	}
	if g.cancel {
		return false
	}
	if len(rows) > 0 {
		g.bufs[i] = append(g.bufs[i], rows...)
		g.cond.Broadcast()
	}
	return true
}

func (g *gather) markDone(i int) {
	g.mu.Lock()
	g.done[i] = true
	g.active--
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *gather) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.cancel = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *gather) cancelled() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cancel
}

func (g *gather) cancelAll() {
	g.mu.Lock()
	g.cancel = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// popLocked takes shard i's head row, waking a worker blocked on the
// high-water mark the moment the backlog drains back to it, and
// compacting the consumed prefix so a long stream holds at most the
// backlog, not every row ever gathered. Caller holds mu.
func (g *gather) popLocked(i int) relation.Row {
	r := g.bufs[i][g.pos[i]]
	g.pos[i]++
	if len(g.bufs[i])-g.pos[i] == gatherHighWater {
		g.cond.Broadcast()
	}
	if g.pos[i] >= gatherCompact && g.pos[i]*2 >= len(g.bufs[i]) {
		rem := copy(g.bufs[i], g.bufs[i][g.pos[i]:])
		clear(g.bufs[i][rem:])
		g.bufs[i] = g.bufs[i][:rem]
		g.pos[i] = 0
	}
	return r
}

// nextRow blocks for the next gathered row; (nil, nil) means
// exhausted. Concat mode pops from any non-empty buffer, rotating for
// fairness; merge mode waits until every unfinished shard has a head,
// then pops the least.
func (g *gather) nextRow() (relation.Row, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return nil, g.err
		}
		if g.ordered {
			ready, best := true, -1
			for i := range g.bufs {
				if g.pos[i] < len(g.bufs[i]) {
					if best < 0 || lessRows(g.bufs[i][g.pos[i]], g.bufs[best][g.pos[best]], g.keys) {
						best = i
					}
				} else if !g.done[i] {
					ready = false
					break
				}
			}
			if ready {
				if best < 0 {
					return nil, nil
				}
				return g.popLocked(best), nil
			}
		} else {
			n := len(g.bufs)
			for k := 0; k < n; k++ {
				i := (g.next + k) % n
				if g.pos[i] < len(g.bufs[i]) {
					g.next = (i + 1) % n
					return g.popLocked(i), nil
				}
			}
			if g.active == 0 {
				return nil, nil
			}
		}
		g.cond.Wait()
	}
}

// Rows is the cluster's streaming result cursor. Unlike sqlmini.Rows
// it exposes the raw row (Row) rather than typed Scan destinations.
// A Rows is not safe for concurrent use; Close it when abandoning it
// early so shard cursors stop — on a fan-out, workers past the
// high-water mark stay blocked until the stream is drained or Closed.
type Rows struct {
	cols         []string
	inner        *sqlmini.Rows  // single-shard passthrough
	ptrs         []any          // scan buffer for passthrough mode
	out          []relation.Row // materialized fan-out (agg/distinct)
	oi           int
	materialized bool
	g            *gather // streaming fan-out
	skip         int64   // global OFFSET still to drop
	remain       int64   // global LIMIT still to emit; -1 unlimited
	row          relation.Row
	err          error
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Err returns the first error the gather or any shard cursor hit.
func (r *Rows) Err() error { return r.err }

// Row returns the current row; valid after a true Next, until the
// next call. The caller must not mutate it.
func (r *Rows) Row() relation.Row { return r.row }

// Next advances the cursor. Filling the global LIMIT cancels
// still-running shard cursors.
func (r *Rows) Next() bool {
	if r.err != nil {
		return false
	}
	switch {
	case r.inner != nil:
		if !r.inner.Next() {
			r.err = r.inner.Err()
			return false
		}
		vals := make(relation.Row, len(r.cols))
		if r.ptrs == nil {
			r.ptrs = make([]any, len(r.cols))
		}
		for j := range vals {
			r.ptrs[j] = &vals[j]
		}
		if err := r.inner.Scan(r.ptrs...); err != nil {
			r.err = err
			return false
		}
		r.row = vals
		return true
	case r.g != nil:
		for {
			if r.remain == 0 {
				r.g.cancelAll()
				return false
			}
			row, err := r.g.nextRow()
			if err != nil {
				r.err = err
				r.g.cancelAll()
				return false
			}
			if row == nil {
				return false
			}
			if r.skip > 0 {
				r.skip--
				continue
			}
			if r.remain > 0 {
				r.remain--
			}
			r.row = row
			return true
		}
	default:
		if r.oi >= len(r.out) {
			return false
		}
		r.row = r.out[r.oi]
		r.oi++
		return true
	}
}

// Close stops the underlying shard cursors; idempotent.
func (r *Rows) Close() {
	if r.inner != nil {
		r.inner.Close()
		r.inner = nil
	}
	if r.g != nil {
		r.g.cancelAll()
		r.g = nil
	}
	r.out, r.row = nil, nil
}

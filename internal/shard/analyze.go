package shard

import (
	"fmt"
	"strings"
	"time"

	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// EXPLAIN ANALYZE across the cluster: the statement really executes —
// routed exactly like Query — and the report shows the route taken,
// per-shard rows and wall time, the merge strategy, the short-circuit
// point (the per-shard window each leg was clamped to), and shard 0's
// fully annotated physical plan. Shard plans are identical by
// construction (same DDL everywhere), so one annotated tree suffices;
// the per-shard lines carry the skew.

// QueryAnalyze executes the SELECT with instrumentation and returns
// the result plus the analyze report.
func (s *Stmt) QueryAnalyze(args ...any) (*sqlmini.Result, string, error) {
	if s.info.Kind != sqlmini.RouteSelect {
		return nil, "", fmt.Errorf("shard: EXPLAIN ANALYZE requires a SELECT statement")
	}
	kind, owner := s.route(args)
	switch kind {
	case routeSingle:
		s.c.fastPath.Add(1)
		return s.singleAnalyze(owner, fmt.Sprintf("Route: single shard %d/%d (shard key pinned)\n", owner, s.c.n), args)
	case routeReplicated:
		s.c.replicated.Add(1)
		return s.singleAnalyze(owner, "Route: any single shard (replicated tables only)\n", args)
	default:
		return s.fanoutAnalyze(args)
	}
}

// ExplainAnalyze is QueryAnalyze discarding the rows.
func (s *Stmt) ExplainAnalyze(args ...any) (string, error) {
	_, report, err := s.QueryAnalyze(args...)
	return report, err
}

func (s *Stmt) singleAnalyze(owner int, header string, args []any) (*sqlmini.Result, string, error) {
	res, plan, err := s.per[owner].QueryAnalyze(args...)
	if err != nil {
		return nil, "", err
	}
	return res, header + plan, nil
}

// fanoutAnalyze mirrors fanoutQuery — same window math, same parallel
// scatter, same merge — with each shard leg running instrumented.
func (s *Stmt) fanoutAnalyze(args []any) (*sqlmini.Result, string, error) {
	if s.fanoutErr != nil {
		return nil, "", s.fanoutErr
	}
	s.c.fanOut.Add(1)
	limit, offset, err := s.per[0].WindowValues(args...)
	if err != nil {
		return nil, "", err
	}
	perWindow := int64(-1)
	if limit >= 0 && !s.info.Agg {
		perWindow = limit + offset
	}
	plans := make([]string, s.c.n)
	times := make([]time.Duration, s.c.n)
	results, err := s.parQuery(func(i int) (*sqlmini.Result, error) {
		t0 := time.Now()
		res, plan, err := s.per[i].QueryAnalyzeWindow(perWindow, 0, args...)
		times[i] = time.Since(t0)
		plans[i] = plan
		return res, err
	})
	if err != nil {
		return nil, "", err
	}
	var rows []relation.Row
	switch {
	case s.info.Agg:
		s.c.mergeCombine.Add(1)
		rows = combineRows(results, s.info.Combine)
		sortRows(rows, s.info.MergeKeys)
	case s.info.Distinct:
		s.c.mergeConcat.Add(1)
		rows = dedupeRows(results)
		sortRows(rows, s.info.MergeKeys)
	case s.info.HasOrder:
		s.c.mergeOrdered.Add(1)
		rows = mergeByOrder(results, s.info.MergeKeys)
	default:
		s.c.mergeConcat.Add(1)
		rows = concatRows(results)
	}
	out := applyWindow(rows, limit, offset)

	var b strings.Builder
	fmt.Fprintf(&b, "Route: fan-out over %d shards, merge=%s\n", s.c.n, s.mergeName())
	in := 0
	for i, r := range results {
		fmt.Fprintf(&b, "  shard %d: %d rows in %s\n", i, len(r.Rows), times[i].Round(time.Microsecond))
		in += len(r.Rows)
	}
	if perWindow >= 0 {
		fmt.Fprintf(&b, "short-circuit: each shard windowed to %d rows (LIMIT %d + OFFSET %d)\n", perWindow, limit, offset)
	}
	fmt.Fprintf(&b, "merged: %d rows in, %d rows out\n", in, len(out))
	b.WriteString("shard 0 plan:\n")
	b.WriteString(plans[0])
	return &sqlmini.Result{Columns: results[0].Columns, Rows: out}, b.String(), nil
}

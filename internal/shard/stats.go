package shard

// Stats is a point-in-time snapshot of the cluster's routing counters
// and per-shard placement, served under /api/stats.
type Stats struct {
	Shards int `json:"shards"`

	// Routing outcomes.
	FastPath   uint64 `json:"fast_path"`  // single-shard, pinned by shard key
	Replicated uint64 `json:"replicated"` // single-shard, round-robin (no partitioned table)
	FanOut     uint64 `json:"fan_out"`    // scattered to every shard

	// Merge strategy tallies for fan-outs.
	MergeOrdered uint64 `json:"merge_ordered"`
	MergeConcat  uint64 `json:"merge_concat"`
	MergeCombine uint64 `json:"merge_combine"`

	// DML routing.
	DMLRouted    uint64 `json:"dml_routed"`    // pinned to one owner shard
	DMLBroadcast uint64 `json:"dml_broadcast"` // applied on every shard

	// Base-follow propagation failures (shards diverged from base).
	ApplyErrors uint64 `json:"apply_errors"`

	// Observer-delivery durability window on the followed base: commits
	// whose observers fired before the commit policy confirmed the
	// fsync (async WAL policies), and notifications dropped because the
	// WAL append itself failed.
	NotifyUnconfirmed uint64 `json:"notify_unconfirmed"`
	NotifyDropped     uint64 `json:"notify_dropped"`

	// Placement snapshot.
	RowsPerShard      []int    `json:"rows_per_shard"`
	PartitionedTables []string `json:"partitioned_tables"`
}

// Stats snapshots the routing counters and per-shard row totals.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Shards:       c.n,
		FastPath:     c.fastPath.Load(),
		Replicated:   c.replicated.Load(),
		FanOut:       c.fanOut.Load(),
		MergeOrdered: c.mergeOrdered.Load(),
		MergeConcat:  c.mergeConcat.Load(),
		MergeCombine: c.mergeCombine.Load(),
		DMLRouted:    c.dmlRouted.Load(),
		DMLBroadcast: c.dmlBroadcast.Load(),
		ApplyErrors:  c.applyErrors.Load(),
		RowsPerShard: make([]int, c.n),
	}
	if c.base != nil {
		st.NotifyUnconfirmed, st.NotifyDropped = c.base.NotifyStats()
	}
	for _, name := range c.dbs[0].Names() {
		if _, ok := c.shardKeyOf(name); ok {
			st.PartitionedTables = append(st.PartitionedTables, name)
		}
	}
	for i, db := range c.dbs {
		total := 0
		for _, name := range db.Names() {
			total += db.MustTable(name).Len()
		}
		st.RowsPerShard[i] = total
	}
	return st
}

package shard

import (
	"fmt"
	"strings"

	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// pinSrc says where a partitioned binding's shard-key value comes from
// at execution: a placeholder, or a literal baked into the text.
type pinSrc struct {
	ok    bool
	param int            // >= 0: args[param]
	value relation.Value // literal, when param < 0
}

// partUse is one partitioned binding of a SELECT plus its pin.
type partUse struct {
	binding string
	table   string
	joinPos int
	pin     pinSrc
}

// Stmt is a prepared statement across the cluster: one per-shard
// prepared statement plus the routing decision state. Statements are
// safe for concurrent use and cached per text on the cluster.
type Stmt struct {
	c    *Cluster
	text string
	per  []*sqlmini.Stmt
	info *sqlmini.RouteInfo

	parts     []partUse
	fanoutErr error // fan-out illegal/unsupported; pinned execution still works
}

// Prepare parses, plans and route-analyzes sql once per shard,
// memoized on the cluster by text.
func (c *Cluster) Prepare(text string) (*Stmt, error) {
	if v, ok := c.stmts.Load(text); ok {
		return v.(*Stmt), nil
	}
	per := make([]*sqlmini.Stmt, c.n)
	for i, e := range c.eng {
		st, err := e.Prepare(text)
		if err != nil {
			return nil, err
		}
		per[i] = st
	}
	info, err := per[0].RouteInfo()
	if err != nil {
		return nil, err
	}
	s := &Stmt{c: c, text: text, per: per, info: info}
	if info.Kind == sqlmini.RouteSelect {
		s.analyze()
	}
	c.stmts.Store(text, s)
	return s, nil
}

// Text returns the statement's SQL text.
func (s *Stmt) Text() string { return s.text }

// Columns returns the output column names of a prepared SELECT.
func (s *Stmt) Columns() []string { return s.per[0].Columns() }

// analyze closes the statement's equality conjuncts into equivalence
// classes, resolves each partitioned binding's pin, and decides
// whether a fan-out would be legal.
func (s *Stmt) analyze() {
	info := s.info

	// Union-find over (binding, column) nodes.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	node := func(bc sqlmini.BoundCol) string {
		return strings.ToLower(bc.Binding) + "\x00" + strings.ToLower(bc.Col)
	}

	for _, eq := range info.Eq {
		if eq.Other != nil {
			union(node(eq.Col), node(*eq.Other))
		}
	}
	// First value pin per class wins; a second, conflicting pin would
	// make the predicate unsatisfiable, so routing by either is correct.
	pins := map[string]pinSrc{}
	for _, eq := range info.Eq {
		if eq.Other != nil {
			continue
		}
		root := find(node(eq.Col))
		if _, dup := pins[root]; dup {
			continue
		}
		pins[root] = pinSrc{ok: true, param: eq.Param, value: eq.Value}
	}

	partPos := map[string]int{} // binding (lower) → JoinPos, partitioned only
	for _, t := range info.Tables {
		key, partitioned := s.c.shardKeyOf(t.Name)
		if !partitioned {
			continue
		}
		partPos[strings.ToLower(t.Binding)] = t.JoinPos
		root := find(node(sqlmini.BoundCol{Binding: t.Binding, Col: key}))
		s.parts = append(s.parts, partUse{
			binding: t.Binding,
			table:   t.Name,
			joinPos: t.JoinPos,
			pin:     pins[root],
		})
	}

	// Fan-out legality, cheapest refusal first.
	if info.Agg && !info.CombineOK {
		s.fanoutErr = fmt.Errorf("shard: %s: fan-out unsupported: %s", s.text, info.CombineErr)
		return
	}
	if info.HasOrder && !info.MergeOK {
		s.fanoutErr = fmt.Errorf("shard: %s: fan-out unsupported: %s", s.text, info.MergeErr)
		return
	}
	for i := 1; i < len(s.parts); i++ {
		a, b := s.parts[0], s.parts[i]
		ka, _ := s.c.shardKeyOf(a.table)
		kb, _ := s.c.shardKeyOf(b.table)
		ra := find(node(sqlmini.BoundCol{Binding: a.binding, Col: ka}))
		rb := find(node(sqlmini.BoundCol{Binding: b.binding, Col: kb}))
		if ra != rb {
			s.fanoutErr = fmt.Errorf("shard: %s: fan-out unsupported: join of %s and %s is not co-located on their shard keys", s.text, a.binding, b.binding)
			return
		}
	}
	for _, t := range info.Tables {
		if !t.LeftOuter {
			continue
		}
		if _, partitioned := partPos[strings.ToLower(t.Binding)]; !partitioned {
			continue
		}
		prefixPartitioned := false
		for _, pos := range partPos {
			if pos < t.JoinPos {
				prefixPartitioned = true
				break
			}
		}
		if !prefixPartitioned {
			s.fanoutErr = fmt.Errorf("shard: %s: fan-out unsupported: LEFT JOIN %s has a partitioned right side with no partitioned table before it", s.text, t.Binding)
			return
		}
	}
}

// routeKind is the execution-time routing decision.
type routeKind int

const (
	routeSingle routeKind = iota
	routeReplicated
	routeFanout
)

// route resolves the statement's pins against args. Single-shard
// requires every partitioned binding pinned to one owner.
func (s *Stmt) route(args []any) (routeKind, int) {
	if len(s.parts) == 0 {
		return routeReplicated, int(s.c.rr.Add(1) % uint64(s.c.n))
	}
	owner := -1
	for _, p := range s.parts {
		if !p.pin.ok {
			return routeFanout, 0
		}
		v := p.pin.value
		if p.pin.param >= 0 {
			if p.pin.param >= len(args) {
				return routeFanout, 0
			}
			nv, err := relation.Normalize(args[p.pin.param])
			if err != nil {
				return routeFanout, 0
			}
			v = nv
		}
		o := s.c.ownerOf(v)
		if owner < 0 {
			owner = o
		} else if o != owner {
			// All partitioned tables pinned, but to different shards: only a
			// co-located fan-out could answer this, and co-location implies
			// one class, hence one value. Let the fan-out path decide.
			return routeFanout, 0
		}
	}
	return routeSingle, owner
}

// Query routes and executes a SELECT, returning the materialized
// result. Single-shard routes delegate untouched to the owning
// engine; fan-outs gather per gather.go.
func (s *Stmt) Query(args ...any) (*sqlmini.Result, error) {
	if s.info.Kind != sqlmini.RouteSelect {
		return nil, fmt.Errorf("shard: Query requires a SELECT statement")
	}
	kind, owner := s.route(args)
	switch kind {
	case routeSingle:
		s.c.fastPath.Add(1)
		return s.per[owner].Query(args...)
	case routeReplicated:
		s.c.replicated.Add(1)
		return s.per[owner].Query(args...)
	default:
		return s.fanoutQuery(args)
	}
}

// QueryRows routes a SELECT and streams the result.
func (s *Stmt) QueryRows(args ...any) (*Rows, error) {
	if s.info.Kind != sqlmini.RouteSelect {
		return nil, fmt.Errorf("shard: Query requires a SELECT statement")
	}
	kind, owner := s.route(args)
	switch kind {
	case routeSingle:
		s.c.fastPath.Add(1)
	case routeReplicated:
		s.c.replicated.Add(1)
	default:
		return s.fanoutRows(args)
	}
	inner, err := s.per[owner].QueryRows(args...)
	if err != nil {
		return nil, err
	}
	return &Rows{cols: s.per[owner].Columns(), inner: inner}, nil
}

// Explain describes the statement's routing, then shard 0's physical
// plan.
func (s *Stmt) Explain() (string, error) { return s.explain(nil, false) }

// ExplainArgs is Explain with the concrete route args would take.
func (s *Stmt) ExplainArgs(args ...any) (string, error) { return s.explain(args, true) }

func (s *Stmt) explain(args []any, concrete bool) (string, error) {
	var b strings.Builder
	switch s.info.Kind {
	case sqlmini.RouteSelect:
		if concrete {
			kind, owner := s.route(args)
			switch kind {
			case routeSingle:
				fmt.Fprintf(&b, "Route: single shard %d/%d (shard key pinned)\n", owner, s.c.n)
			case routeReplicated:
				fmt.Fprintf(&b, "Route: any single shard (replicated tables only)\n")
			default:
				fmt.Fprintf(&b, "Route: fan-out over %d shards, merge=%s\n", s.c.n, s.mergeName())
			}
		} else if len(s.parts) == 0 {
			fmt.Fprintf(&b, "Route: any single shard (replicated tables only)\n")
		} else {
			fmt.Fprintf(&b, "Route: single shard when pinned, else fan-out over %d shards, merge=%s\n", s.c.n, s.mergeName())
		}
		if s.fanoutErr != nil {
			fmt.Fprintf(&b, "Fan-out: unsupported (%v)\n", s.fanoutErr)
		}
		plan, err := s.per[0].Explain()
		if err != nil {
			return "", err
		}
		b.WriteString(plan)
		return b.String(), nil
	default:
		return fmt.Sprintf("Route: DML on %s\n", s.info.Table), nil
	}
}

func (s *Stmt) mergeName() string {
	switch {
	case s.info.Agg:
		return "combine-partials"
	case s.info.HasOrder:
		return "by-order"
	default:
		return "concat"
	}
}

// Exec routes and executes a non-SELECT statement.
func (s *Stmt) Exec(args ...any) (int, error) {
	switch s.info.Kind {
	case sqlmini.RouteInsert:
		return s.execInsert(args)
	case sqlmini.RouteUpdate, sqlmini.RouteDelete:
		return s.execUpdateDelete(args)
	case sqlmini.RouteCreate:
		s.dmlBroadcastCount()
		return s.broadcast(args)
	default:
		return 0, fmt.Errorf("shard: Exec requires a non-SELECT statement")
	}
}

func (s *Stmt) execInsert(args []any) (int, error) {
	key, partitioned := s.c.shardKeyOf(s.info.Table)
	if !partitioned {
		s.dmlBroadcastCount()
		return s.broadcast(args)
	}
	vals, found, err := s.per[0].InsertColumnValues(key, args...)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("shard: INSERT into partitioned table %s must set its shard key %s", s.info.Table, key)
	}
	owner := s.c.ownerOf(vals[0])
	for _, v := range vals[1:] {
		if s.c.ownerOf(v) != owner {
			return 0, fmt.Errorf("shard: multi-row INSERT into %s spans shards; split it per shard key", s.info.Table)
		}
	}
	s.c.dmlRouted.Add(1)
	return s.per[owner].Exec(args...)
}

func (s *Stmt) execUpdateDelete(args []any) (int, error) {
	key, partitioned := s.c.shardKeyOf(s.info.Table)
	if !partitioned {
		s.dmlBroadcastCount()
		return s.broadcast(args)
	}
	if s.info.Kind == sqlmini.RouteUpdate {
		for _, col := range s.info.SetCols {
			if strings.EqualFold(col, key) {
				return 0, fmt.Errorf("shard: UPDATE %s cannot assign shard key %s (the row would have to migrate)", s.info.Table, key)
			}
		}
	}
	// A WHERE pin on the shard key routes to the owner; otherwise each
	// shard mutates its local rows and the counts sum.
	for _, eq := range s.info.Eq {
		if !strings.EqualFold(eq.Col.Col, key) {
			continue
		}
		v := eq.Value
		if eq.Param >= 0 {
			if eq.Param >= len(args) {
				break
			}
			nv, err := relation.Normalize(args[eq.Param])
			if err != nil {
				break
			}
			v = nv
		}
		s.c.dmlRouted.Add(1)
		return s.per[s.c.ownerOf(v)].Exec(args...)
	}
	s.dmlBroadcastCount()
	total := 0
	var firstErr error
	for i := range s.per {
		n, err := s.per[i].Exec(args...)
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// broadcast executes the statement on every shard — replicated-table
// DML and DDL. Every shard runs even after an error (the copies must
// not diverge); the count comes from shard 0, where all copies agree.
func (s *Stmt) broadcast(args []any) (int, error) {
	n := 0
	var firstErr error
	for i := range s.per {
		ni, err := s.per[i].Exec(args...)
		if i == 0 {
			n = ni
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return n, firstErr
}

func (s *Stmt) dmlBroadcastCount() { s.c.dmlBroadcast.Add(1) }

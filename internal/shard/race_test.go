package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentScatterGatherChurn drives concurrent fan-out readers —
// materialized, streamed to completion, and streamed-then-abandoned —
// against per-shard DML and DDL churn, under -race in CI. Early Close
// must cancel still-running shard cursors, and when everything quiets
// down no gather goroutine may remain: the goroutine count has to
// settle back to its baseline.
func TestConcurrentScatterGatherChurn(t *testing.T) {
	c, _ := testCluster(t, 4)
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	var rid atomic.Int64
	rid.Store(10_000)
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf(format, args...)
	}

	// Fan-out readers: every merge strategy, plus the fast path.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				switch i % 4 {
				case 0: // materialized ordered fan-out
					if _, err := c.Query(`SELECT RID, SuID, Score FROM Ratings ORDER BY Score DESC, RID LIMIT 20`); err != nil {
						fail("ordered fan-out: %v", err)
						return
					}
				case 1: // streamed concat, consumed fully
					rows, err := c.QueryRows(`SELECT RID, SuID FROM Ratings`)
					if err != nil {
						fail("concat fan-out: %v", err)
						return
					}
					for rows.Next() {
					}
					rows.Close()
					if err := rows.Err(); err != nil {
						fail("concat stream: %v", err)
						return
					}
				case 2: // streamed, abandoned after a prefix: cancellation path
					rows, err := c.QueryRows(`SELECT RID, SuID, CID, Score FROM Ratings ORDER BY RID`)
					if err != nil {
						fail("abandoned fan-out: %v", err)
						return
					}
					for j := 0; j < 2+g && rows.Next(); j++ {
					}
					rows.Close()
					if err := rows.Err(); err != nil {
						fail("abandoned stream: %v", err)
						return
					}
				default: // pinned fast path and combine
					if _, err := c.Query(`SELECT COUNT(*), SUM(Score) FROM Ratings WHERE SuID = ?`, int64(i%20)); err != nil {
						fail("fast path: %v", err)
						return
					}
					if _, err := c.Query(`SELECT CID, COUNT(*) FROM Ratings GROUP BY CID ORDER BY CID`); err != nil {
						fail("combine fan-out: %v", err)
						return
					}
				}
			}
		}(g)
	}

	// DML churn: routed inserts, pinned updates, broadcast deletes.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				id := rid.Add(1)
				if _, err := c.Exec(`INSERT INTO Ratings VALUES (?, ?, ?, ?)`, id, id%20, id%8, int64(1+i%5)); err != nil {
					fail("churn insert: %v", err)
					return
				}
				if i%3 == 0 {
					if _, err := c.Exec(`UPDATE Ratings SET Score = ? WHERE SuID = ?`, int64(1+i%5), id%20); err != nil {
						fail("churn update: %v", err)
						return
					}
				}
				if i%7 == 0 {
					if _, err := c.Exec(`DELETE FROM Ratings WHERE RID = ?`, id); err != nil {
						fail("churn delete: %v", err)
						return
					}
				}
			}
		}(g)
	}

	// DDL churn: create, write, drop scratch tables while reads run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("Scratch%d", i)
			if _, err := c.Exec(`CREATE TABLE ` + name + ` (N INT NOT NULL)`); err != nil {
				fail("ddl create: %v", err)
				return
			}
			if _, err := c.Exec(`INSERT INTO `+name+` VALUES (?)`, int64(i)); err != nil {
				fail("ddl insert: %v", err)
				return
			}
			if !c.Drop(name) {
				fail("ddl drop lost %s", name)
				return
			}
		}
	}()

	wg.Wait()

	// Gather workers run to completion after cancellation; give them a
	// bounded window to drain, then require the baseline back.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	if st := c.Stats(); st.FanOut == 0 || st.DMLRouted == 0 || st.DMLBroadcast == 0 {
		t.Fatalf("churn did not cover routing paths: %+v", st)
	}
}

package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// Cluster is N shard databases plus one sqlmini engine per shard and
// the routing state above them. It is safe for concurrent use.
type Cluster struct {
	dbs     []*relation.DB
	eng     []*sqlmini.Engine
	n       int
	workers int // per-query fan-out pool bound, sized by GOMAXPROCS

	rr    atomic.Uint64 // round-robin cursor for replicated-only routes
	stmts sync.Map      // sql text → *Stmt

	// Split records the source database and each table's version as its
	// scan begins, so FollowBase can detect writes that landed in the
	// window between the copy and the observers attaching.
	splitSrc  *relation.DB
	splitVers map[string]uint64
	base      *relation.DB // followed base database, for its notify counters

	fastPath     atomic.Uint64
	replicated   atomic.Uint64
	fanOut       atomic.Uint64
	mergeOrdered atomic.Uint64
	mergeConcat  atomic.Uint64
	mergeCombine atomic.Uint64
	dmlRouted    atomic.Uint64
	dmlBroadcast atomic.Uint64
	applyErrors  atomic.Uint64
}

// New builds a cluster over pre-populated shard databases. The caller
// is responsible for having placed rows consistently with the tables'
// declared shard keys (Split does this for you).
func New(dbs []*relation.DB) (*Cluster, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("shard: cluster needs at least one shard")
	}
	c := &Cluster{
		dbs:     dbs,
		n:       len(dbs),
		workers: max(1, runtime.GOMAXPROCS(0)),
	}
	for _, db := range dbs {
		c.eng = append(c.eng, sqlmini.New(db))
	}
	return c, nil
}

// Split partitions a populated database into n shards: tables with a
// declared shard key scatter row-by-row to the key's hash owner,
// tables without one replicate to every shard. The source database is
// not modified; call FollowBase to keep the shards trailing it.
//
// Quiescence: the source must not be written between the start of
// Split and FollowBase returning — the copy is per-table and observers
// attach only in FollowBase, so a write landing in that window would
// be silently absent from the shards. Call both after bulk loading
// completes, before serving writes. FollowBase detects violations by
// comparing table versions and counts them in Stats.ApplyErrors.
func Split(src *relation.DB, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: cannot split into %d shards", n)
	}
	dbs := make([]*relation.DB, n)
	for i := range dbs {
		dbs[i] = relation.NewDB()
	}
	c, err := New(dbs)
	if err != nil {
		return nil, err
	}
	c.splitSrc = src
	c.splitVers = make(map[string]uint64)
	for _, name := range src.Names() {
		t := src.MustTable(name)
		c.splitVers[name] = t.Version()
		shardTables := make([]*relation.Table, n)
		for i, db := range dbs {
			nt, err := cloneEmpty(t)
			if err != nil {
				return nil, err
			}
			if err := db.Create(nt); err != nil {
				return nil, err
			}
			shardTables[i] = nt
		}
		keyIdx := -1
		if key, ok := t.ShardKey(); ok {
			if i, ok := t.Schema().Index(key); ok {
				keyIdx = i
			}
		}
		var ierr error
		t.Scan(func(_ int, row relation.Row) bool {
			if keyIdx >= 0 {
				_, ierr = shardTables[c.ownerOf(row[keyIdx])].Insert(row)
			} else {
				for _, st := range shardTables {
					if _, ierr = st.Insert(row); ierr != nil {
						break
					}
				}
			}
			return ierr == nil
		})
		if ierr != nil {
			return nil, fmt.Errorf("shard: splitting %s: %w", name, ierr)
		}
	}
	return c, nil
}

// cloneEmpty reconstructs a table's shape — schema, primary key,
// auto-increment, hash and ordered indexes, shard key — with no rows.
func cloneEmpty(t *relation.Table) (*relation.Table, error) {
	s := t.Schema()
	cols := make([]relation.Column, s.Len())
	for i := range cols {
		cols[i] = s.Column(i)
	}
	var opts []relation.TableOption
	if pk := t.PrimaryKey(); len(pk) > 0 {
		opts = append(opts, relation.WithPrimaryKey(pk...))
	}
	if ac := t.AutoIncrement(); ac != "" {
		opts = append(opts, relation.WithAutoIncrement(ac))
	}
	for _, col := range t.SecondaryIndexes() {
		opts = append(opts, relation.WithIndex(col))
	}
	for _, col := range t.OrderedIndexes() {
		opts = append(opts, relation.WithOrderedIndex(col))
	}
	if key, ok := t.ShardKey(); ok {
		opts = append(opts, relation.WithShardKey(key))
	}
	return relation.NewTable(t.Name(), relation.NewSchema(cols...), opts...)
}

// FollowBase attaches row observers to every table of a base database
// so committed base mutations propagate into the shards synchronously
// (the observers run under the base table's write lock, so a reader
// that has seen the base version bump will find the row sharded).
// Tables created on the base afterwards are not followed; reshard
// after DDL on the base. Propagation failures — which would mean the
// shards and base disagree on a row's validity — are counted in
// Stats.ApplyErrors rather than panicking the writer.
//
// Call immediately after Split, with no writes in between (see the
// quiescence note there). Writes that slipped into the window are
// detected here — the table's version no longer matches what Split
// saw — and counted in Stats.ApplyErrors, since the shards have
// diverged from the base exactly as if a propagation had failed.
func (c *Cluster) FollowBase(src *relation.DB) {
	c.base = src
	for _, name := range src.Names() {
		t := src.MustTable(name)
		name := name
		// Version is read before the observer attaches: a write the
		// observer will propagate must not count as divergence.
		if src == c.splitSrc {
			if v, ok := c.splitVers[name]; ok && t.Version() != v {
				c.applyErrors.Add(1)
			}
		}
		t.Observe(func(kind relation.MutKind, before, after relation.Row) {
			c.applyBase(name, kind, before, after)
		})
	}
}

// applyBase mirrors one committed base mutation into the shards.
func (c *Cluster) applyBase(table string, kind relation.MutKind, before, after relation.Row) {
	keyIdx, partitioned := c.keyIdxOf(table)
	switch kind {
	case relation.MutInsert:
		if partitioned {
			c.applyInsert(c.ownerOf(after[keyIdx]), table, after)
			return
		}
		for i := 0; i < c.n; i++ {
			c.applyInsert(i, table, after)
		}
	case relation.MutUpdate:
		if partitioned {
			from, to := c.ownerOf(before[keyIdx]), c.ownerOf(after[keyIdx])
			c.applyDelete(from, table, before)
			c.applyInsert(to, table, after)
			return
		}
		for i := 0; i < c.n; i++ {
			c.applyDelete(i, table, before)
			c.applyInsert(i, table, after)
		}
	case relation.MutDelete:
		if partitioned {
			c.applyDelete(c.ownerOf(before[keyIdx]), table, before)
			return
		}
		for i := 0; i < c.n; i++ {
			c.applyDelete(i, table, before)
		}
	}
}

func (c *Cluster) applyInsert(shard int, table string, row relation.Row) {
	t, ok := c.dbs[shard].Table(table)
	if !ok {
		c.applyErrors.Add(1)
		return
	}
	if _, err := t.Insert(row); err != nil {
		c.applyErrors.Add(1)
	}
}

// applyDelete removes exactly one shard row equal to the base
// pre-image — one, not all, so duplicate rows on keyless tables track
// the base's slot-precise delete.
func (c *Cluster) applyDelete(shard int, table string, row relation.Row) {
	t, ok := c.dbs[shard].Table(table)
	if !ok {
		c.applyErrors.Add(1)
		return
	}
	done := false
	n, err := t.DeleteWhere(func(r relation.Row) bool {
		if done || !rowsEqual(r, row) {
			return false
		}
		done = true
		return true
	})
	if err != nil || n != 1 {
		c.applyErrors.Add(1)
	}
}

func rowsEqual(a, b relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !relation.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.n }

// DB returns shard i's database; for tests and diagnostics.
func (c *Cluster) DB(i int) *relation.DB { return c.dbs[i] }

// Engine returns shard i's SQL engine; for tests and diagnostics.
func (c *Cluster) Engine(i int) *sqlmini.Engine { return c.eng[i] }

// keyIdxOf resolves a table's shard-key column index from shard 0's
// metadata (every shard carries identical shapes).
func (c *Cluster) keyIdxOf(table string) (int, bool) {
	t, ok := c.dbs[0].Table(table)
	if !ok {
		return -1, false
	}
	key, ok := t.ShardKey()
	if !ok {
		return -1, false
	}
	i, ok := t.Schema().Index(key)
	if !ok {
		return -1, false
	}
	return i, true
}

// shardKeyOf returns a table's declared shard key column name.
func (c *Cluster) shardKeyOf(table string) (string, bool) {
	t, ok := c.dbs[0].Table(table)
	if !ok {
		return "", false
	}
	return t.ShardKey()
}

// ownerOf hashes a shard-key value to its owning shard. Integral
// floats inside int64 range hash like the equal integer (mirroring the
// engine's key normalization, so SuID = 7 and SuID = 7.0 pin the same
// shard); outside that range the float-to-int conversion would be
// implementation-defined, so such keys keep the float encoding and
// placement stays platform-independent. NULL keys own to shard 0.
func (c *Cluster) ownerOf(v relation.Value) int {
	nv, err := relation.Normalize(v)
	if err != nil || nv == nil {
		return 0
	}
	h := fnv.New64a()
	var b [9]byte
	switch x := nv.(type) {
	case int64:
		b[0] = 'i'
		binary.LittleEndian.PutUint64(b[1:], uint64(x))
		h.Write(b[:])
	case float64:
		if integralInt64(x) {
			b[0] = 'i'
			binary.LittleEndian.PutUint64(b[1:], uint64(int64(x)))
		} else {
			b[0] = 'f'
			binary.LittleEndian.PutUint64(b[1:], math.Float64bits(x))
		}
		h.Write(b[:])
	case string:
		b[0] = 's'
		h.Write(b[:1])
		h.Write([]byte(x))
	case bool:
		b[0] = 'b'
		if x {
			b[1] = 1
		}
		h.Write(b[:2])
	default:
		return 0
	}
	return int(h.Sum64() % uint64(c.n))
}

// integralInt64 reports whether the float is a whole number an int64
// can represent, so int64(x) is well-defined. The upper bound is
// exclusive: float64(MaxInt64) rounds up to 2^63, one past the last
// representable value.
func integralInt64(x float64) bool {
	return x == math.Trunc(x) && x >= math.MinInt64 && x < math.MaxInt64
}

// Drop removes a table from every shard, reporting whether any shard
// had it.
func (c *Cluster) Drop(name string) bool {
	c.stmts.Range(func(k, v any) bool {
		c.stmts.Delete(k)
		return true
	})
	any := false
	for _, db := range c.dbs {
		if db.Drop(name) {
			any = true
		}
	}
	return any
}

// Query routes and executes a SELECT, materialized.
func (c *Cluster) Query(text string, args ...any) (*sqlmini.Result, error) {
	st, err := c.Prepare(text)
	if err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// QueryRows routes a SELECT and streams the result.
func (c *Cluster) QueryRows(text string, args ...any) (*Rows, error) {
	st, err := c.Prepare(text)
	if err != nil {
		return nil, err
	}
	return st.QueryRows(args...)
}

// Exec routes and executes a non-SELECT statement.
func (c *Cluster) Exec(text string, args ...any) (int, error) {
	st, err := c.Prepare(text)
	if err != nil {
		return 0, err
	}
	return st.Exec(args...)
}

// Explain describes how the statement routes, then the underlying
// single-shard physical plan.
func (c *Cluster) Explain(text string, args ...any) (string, error) {
	st, err := c.Prepare(text)
	if err != nil {
		return "", err
	}
	return st.ExplainArgs(args...)
}

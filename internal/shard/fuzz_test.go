package shard

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// This file extends the differential query-fuzz harness (see
// sqlmini/fuzz_test.go) across the shard boundary: the same playground
// schema, with Items and Peers partitioned and co-located on K, is
// split over a cluster that follows the base engine, and every
// generated query must return from the cluster exactly what the mono
// engine returns — row for row where the query pins a total order,
// as a multiset otherwise. Mid-corpus DML churn on the base engine
// exercises FollowBase propagation (including shard-key migration)
// under the same differential check.
//
// Order discipline: the sharded merge breaks ties by shard arrival,
// not base slot order, so unlike the mono harness every ORDER BY here
// ends in the driving primary key — a total order both sides must
// realize identically. LEFT JOINs with a partitioned right side are
// generated on purpose and must be REFUSED (never silently wrong);
// the harness asserts the refusal and that the mono engine still
// answers.

// shardFuzzBase builds the mono playground with shard keys declared.
func shardFuzzBase(t testing.TB) (*relation.DB, *sqlmini.Engine) {
	t.Helper()
	db := relation.NewDB()
	e := sqlmini.New(db)
	mustExec := func(sql string, args ...any) {
		t.Helper()
		if _, err := e.Exec(sql, args...); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE Items (ID INT NOT NULL, K INT NOT NULL, V INT, Cat TEXT NOT NULL,
		PRIMARY KEY (ID), INDEX (Cat), ORDERED INDEX (K))`)
	mustExec(`CREATE TABLE Bands (ID INT NOT NULL, AK INT NOT NULL, Lo INT NOT NULL, Hi INT NOT NULL,
		PRIMARY KEY (ID), INDEX (AK))`)
	mustExec(`CREATE TABLE Peers (ID INT NOT NULL, K INT NOT NULL, W FLOAT,
		PRIMARY KEY (ID), ORDERED INDEX (K))`)
	for _, tbl := range []string{"Items", "Peers"} {
		if err := db.MustTable(tbl).SetShardKey("K"); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(7))
	cats := []string{"ca", "cb", "cc"}
	for i := 0; i < 90; i++ {
		var v any
		if r.Intn(4) != 0 {
			v = int64(r.Intn(40))
		}
		mustExec(`INSERT INTO Items VALUES (?, ?, ?, ?)`, int64(i), int64(r.Intn(25)), v, cats[r.Intn(3)])
	}
	for i := 0; i < 150; i++ {
		lo := r.Intn(22)
		mustExec(`INSERT INTO Bands VALUES (?, ?, ?, ?)`, int64(i), int64(r.Intn(95)), int64(lo), int64(lo+r.Intn(6)))
	}
	for i := 0; i < 70; i++ {
		var w any
		if r.Intn(5) != 0 {
			w = float64(r.Intn(50)) / 10
		}
		mustExec(`INSERT INTO Peers VALUES (?, ?, ?)`, int64(i), int64(r.Intn(25)), w)
	}
	return db, e
}

type shardFuzzQB struct {
	r    *rand.Rand
	args []any
}

func (q *shardFuzzQB) lit(v any) string {
	if q.r.Intn(2) == 0 {
		q.args = append(q.args, v)
		return "?"
	}
	if s, ok := v.(string); ok {
		return "'" + s + "'"
	}
	return fmt.Sprint(v)
}

func (q *shardFuzzQB) limitSuffix() string {
	switch q.r.Intn(3) {
	case 0:
		return fmt.Sprintf(" LIMIT %d", 1+q.r.Intn(30))
	case 1:
		return fmt.Sprintf(" LIMIT %d OFFSET %d", 1+q.r.Intn(30), q.r.Intn(6))
	}
	return ""
}

// genShardFuzzQuery produces one SELECT of the given shape. exact
// reports a total-order ORDER BY; refuse marks a deliberately
// fan-out-illegal shape the cluster must reject.
func genShardFuzzQuery(r *rand.Rand, shape int) (sql string, args []any, exact, refuse bool) {
	q := &shardFuzzQB{r: r}
	defer func() { args = q.args }()

	switch shape % 7 {
	case 0: // single partitioned table, mixed predicates, sometimes pinned
		var conds []string
		for _, c := range []func() string{
			func() string { return "K = " + q.lit(int64(r.Intn(25))) }, // shard-key pin: fast path
			func() string { return "K >= " + q.lit(int64(r.Intn(25))) },
			func() string {
				lo := r.Intn(20)
				return fmt.Sprintf("K BETWEEN %s AND %s", q.lit(int64(lo)), q.lit(int64(lo+r.Intn(8))))
			},
			func() string { return "Cat = " + q.lit([]string{"ca", "cb", "cc"}[r.Intn(3)]) },
			func() string { return "V IS NOT NULL" },
			func() string { return "K < " + q.lit(int64(r.Intn(25))) },
		} {
			if r.Intn(3) == 0 {
				conds = append(conds, c())
			}
		}
		sql = `SELECT ID, K, V, Cat FROM Items`
		if len(conds) > 0 {
			sql += " WHERE " + strings.Join(conds, " AND ")
		}
		switch r.Intn(5) {
		case 0:
			sql += " ORDER BY K, ID" + q.limitSuffix()
			exact = true
		case 1:
			sql += " ORDER BY K DESC, ID" + q.limitSuffix()
			exact = true
		case 2:
			sql += " ORDER BY V DESC, ID" + q.limitSuffix()
			exact = true
		}
		return

	case 1: // ranges × asc/desc × limit over the ordered shard key
		tbl := "Items"
		if r.Intn(2) == 0 {
			tbl = "Peers"
		}
		sql = fmt.Sprintf(`SELECT * FROM %s`, tbl)
		switch r.Intn(4) {
		case 0:
			sql += " WHERE K >= " + q.lit(int64(r.Intn(25)))
		case 1:
			sql += " WHERE K <= " + q.lit(int64(r.Intn(25)))
		case 2:
			lo := r.Intn(20)
			sql += fmt.Sprintf(" WHERE K BETWEEN %s AND %s", q.lit(int64(lo)), q.lit(int64(lo+r.Intn(10))))
		}
		if r.Intn(2) == 0 {
			sql += " ORDER BY K, ID"
		} else {
			sql += " ORDER BY K DESC, ID"
		}
		sql += q.limitSuffix()
		return sql, q.args, true, false

	case 2: // co-located merge join on the shared shard key
		sql = `SELECT i.ID, i.K, p.ID, p.W FROM Items i JOIN Peers p ON i.K = p.K`
		switch r.Intn(4) {
		case 0:
			sql += " WHERE i.K = " + q.lit(int64(r.Intn(25))) // pins both sides via the class
		case 1:
			sql += " WHERE p.W IS NOT NULL"
		case 2:
			sql += " WHERE i.Cat = " + q.lit([]string{"ca", "cb", "cc"}[r.Intn(3)])
		}
		if r.Intn(3) != 0 {
			sql += " ORDER BY i.K, i.ID, p.ID" + q.limitSuffix()
			exact = true
		}
		return

	case 3: // band join against the replicated side; LEFT must refuse
		join := "JOIN"
		if r.Intn(3) == 0 {
			join, refuse = "LEFT JOIN", true
		}
		on := "a.K BETWEEN b.Lo AND b.Hi"
		if r.Intn(3) == 0 {
			on = "a.K BETWEEN b.Lo - 1 AND b.Hi + 1"
		}
		sql = fmt.Sprintf(`SELECT b.ID, b.Lo, b.Hi, a.ID, a.K FROM Bands b %s Items a ON %s`, join, on)
		switch r.Intn(3) {
		case 0:
			sql += " WHERE b.ID = " + q.lit(int64(r.Intn(160)))
		case 1:
			sql += " WHERE b.AK < " + q.lit(int64(r.Intn(95)))
		}
		if r.Intn(3) != 0 {
			sql += " ORDER BY b.ID, a.ID" + q.limitSuffix()
			exact = true
		}
		return

	case 4: // equi join partitioned × replicated off the shard key
		sql = `SELECT i.ID, i.Cat, b.ID, b.AK FROM Items i JOIN Bands b ON i.ID = b.AK`
		conds := []string{}
		if r.Intn(2) == 0 {
			conds = append(conds, "i.Cat = "+q.lit([]string{"ca", "cb", "cc"}[r.Intn(3)]))
		}
		if r.Intn(3) == 0 {
			conds = append(conds, "i.K < "+q.lit(int64(r.Intn(25))))
		}
		if len(conds) > 0 {
			sql += " WHERE " + strings.Join(conds, " AND ")
		}
		if r.Intn(3) != 0 {
			sql += " ORDER BY i.ID, b.ID" + q.limitSuffix()
			exact = true
		}
		return

	case 5: // three-table chain: co-located pair plus replicated
		sql = `SELECT i.ID, b.ID, p.ID FROM Items i JOIN Bands b ON i.ID = b.AK JOIN Peers p ON i.K = p.K`
		conds := []string{}
		if r.Intn(2) == 0 {
			conds = append(conds, "i.Cat = "+q.lit([]string{"ca", "cb", "cc"}[r.Intn(3)]))
		}
		if r.Intn(2) == 0 {
			conds = append(conds, "p.K >= "+q.lit(int64(r.Intn(25))))
		}
		if len(conds) > 0 {
			sql += " WHERE " + strings.Join(conds, " AND ")
		}
		if r.Intn(4) != 0 {
			sql += " ORDER BY i.ID, b.ID, p.ID" + q.limitSuffix()
			exact = true
		}
		return

	default: // partial-aggregate combine, plus the replicated-only route
		switch r.Intn(5) {
		case 4:
			// Group key dropped from the projection: the coordinator has
			// nothing to merge partials by, so the fan-out must be
			// REFUSED — never fold every shard's groups into one row.
			sql = `SELECT COUNT(*), SUM(V) FROM Items GROUP BY Cat`
			if r.Intn(2) == 0 {
				sql = `SELECT COUNT(*) FROM Peers GROUP BY K`
			}
			return sql, q.args, false, true
		case 3:
			sql = `SELECT ID, Lo, Hi FROM Bands WHERE Lo >= ` + q.lit(int64(r.Intn(22))) + ` ORDER BY ID`
			return sql, q.args, true, false
		case 0:
			sql = `SELECT Cat, COUNT(*), SUM(V), MIN(V), MAX(V) FROM Items`
			if r.Intn(2) == 0 {
				sql += " WHERE K >= " + q.lit(int64(r.Intn(25)))
			}
			sql += " GROUP BY Cat ORDER BY Cat"
		case 1:
			sql = `SELECT K, COUNT(*) FROM Peers GROUP BY K ORDER BY K`
		default:
			sql = `SELECT COUNT(*), SUM(W), MIN(W), MAX(W) FROM Peers`
			if r.Intn(2) == 0 {
				sql += " WHERE K < " + q.lit(int64(r.Intn(25)))
			}
		}
		return sql, q.args, true, false
	}
}

// valClose compares one output value, tolerating the float ulps a
// per-shard SUM legitimately reassociates; everything else is exact.
func valClose(a, b relation.Value) bool {
	if af, ok := a.(float64); ok {
		if bf, ok := b.(float64); ok {
			d := math.Abs(af - bf)
			return d <= 1e-9*math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
		}
	}
	return relation.Equal(a, b)
}

func rowsClose(a, b []relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !valClose(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

// checkShardFuzzCase runs one generated query on the cluster and the
// mono engine and compares under the declared order discipline.
func checkShardFuzzCase(t testing.TB, c *Cluster, e *sqlmini.Engine, sql string, args []any, exact, refuse bool) {
	t.Helper()
	want, err := e.Query(sql, args...)
	if err != nil {
		t.Fatalf("mono %q %v: %v", sql, args, err)
	}
	got, gerr := c.Query(sql, args...)
	if refuse {
		// The route may still pin single-shard (b.ID = const does not pin,
		// but nothing stops a future generator change) — what is forbidden
		// is a silently-wrong fan-out.
		if gerr == nil {
			t.Fatalf("%q: cluster answered a fan-out-illegal shape", sql)
		}
		if !strings.Contains(gerr.Error(), "fan-out unsupported") {
			t.Fatalf("%q: wrong refusal: %v", sql, gerr)
		}
		return
	}
	if gerr != nil {
		t.Fatalf("cluster %q %v: %v", sql, args, gerr)
	}
	if !reflect.DeepEqual(got.Columns, want.Columns) {
		t.Fatalf("%q: columns %v vs %v", sql, got.Columns, want.Columns)
	}
	if exact {
		if !rowsClose(got.Rows, want.Rows) {
			t.Fatalf("%q %v: sharded and mono rows diverge\nsharded: %v\nmono:    %v", sql, args, got.Rows, want.Rows)
		}
	} else if !reflect.DeepEqual(asMultiset(got.Rows), asMultiset(want.Rows)) {
		t.Fatalf("%q %v: sharded and mono multisets diverge\nsharded: %v\nmono:    %v", sql, args, got.Rows, want.Rows)
	}

	// Streaming path parity.
	rows, err := c.QueryRows(sql, args...)
	if err != nil {
		t.Fatalf("cluster stream %q: %v", sql, err)
	}
	var streamed []relation.Row
	for rows.Next() {
		streamed = append(streamed, rows.Row().Clone())
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatalf("cluster stream %q: %v", sql, err)
	}
	if exact {
		if !rowsClose(streamed, want.Rows) {
			t.Fatalf("%q %v: streamed rows diverge\nsharded: %v\nmono:    %v", sql, args, streamed, want.Rows)
		}
	} else if !reflect.DeepEqual(asMultiset(streamed), asMultiset(want.Rows)) {
		t.Fatalf("%q %v: streamed multisets diverge", sql, args)
	}
}

// TestShardFuzzParity is the deterministic corpus: 420 generated
// queries against a 3-shard cluster following the base, with DML churn
// — inserts, deletes and shard-key migrations — applied to the base
// mid-corpus so FollowBase propagation is differentially checked too.
func TestShardFuzzParity(t *testing.T) {
	db, e := shardFuzzBase(t)
	c, err := Split(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.FollowBase(db)
	r := rand.New(rand.NewSource(42))

	churnID := int64(1000)
	for i := 0; i < 420; i++ {
		sql, args, exact, refuse := genShardFuzzQuery(r, i)
		checkShardFuzzCase(t, c, e, sql, args, exact, refuse)
		if i%37 == 36 {
			if _, err := e.Exec(`INSERT INTO Items VALUES (?, ?, ?, ?)`, churnID, int64(r.Intn(25)), int64(r.Intn(40)), "cb"); err != nil {
				t.Fatal(err)
			}
			if churnID%3 == 0 {
				if _, err := e.Exec(`DELETE FROM Items WHERE ID = ?`, churnID-2); err != nil {
					t.Fatal(err)
				}
			}
			if churnID%2 == 0 {
				// Shard-key migration: the row must move owners in the shards.
				if _, err := e.Exec(`UPDATE Items SET K = ? WHERE ID = ?`, int64(r.Intn(25)), churnID); err != nil {
					t.Fatal(err)
				}
			}
			churnID++
		}
	}
	st := c.Stats()
	if st.ApplyErrors != 0 {
		t.Fatalf("base-follow propagation errors: %+v", st)
	}
	// The corpus must actually reach every routing and merge path — a
	// fuzzer that never fans out proves nothing about the gather.
	if st.FastPath == 0 || st.Replicated == 0 || st.FanOut == 0 {
		t.Fatalf("routing coverage regressed: %+v", st)
	}
	if st.MergeOrdered == 0 || st.MergeConcat == 0 || st.MergeCombine == 0 {
		t.Fatalf("merge coverage regressed: %+v", st)
	}
	t.Logf("shard fuzz routing over 420 queries: fast=%d repl=%d fanout=%d (ordered=%d concat=%d combine=%d)",
		st.FastPath, st.Replicated, st.FanOut, st.MergeOrdered, st.MergeConcat, st.MergeCombine)
}

// FuzzShardParity is the go-native entry point: each input seeds the
// generator, committed seeds replay as differential cases and
// `go test -fuzz=FuzzShardParity ./internal/shard` explores further.
func FuzzShardParity(f *testing.F) {
	db, e := shardFuzzBase(f)
	c, err := Split(db, 3)
	if err != nil {
		f.Fatal(err)
	}
	for seed := int64(0); seed < 24; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		for shape := 0; shape < 7; shape++ {
			sql, args, exact, refuse := genShardFuzzQuery(r, shape)
			checkShardFuzzCase(t, c, e, sql, args, exact, refuse)
		}
	})
}

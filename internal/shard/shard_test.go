package shard

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// testBase builds a small CourseRank-shaped base: a replicated catalog
// table (Students) and two fact tables partitioned and co-located on
// SuID (Ratings, Points), populated deterministically.
func testBase(t testing.TB) (*relation.DB, *sqlmini.Engine) {
	t.Helper()
	db := relation.NewDB()
	e := sqlmini.New(db)
	mustExec := func(sql string, args ...any) {
		t.Helper()
		if _, err := e.Exec(sql, args...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE Students (SuID INT NOT NULL, Name TEXT NOT NULL, PRIMARY KEY (SuID))`)
	mustExec(`CREATE TABLE Ratings (RID INT NOT NULL, SuID INT NOT NULL, CID INT NOT NULL, Score INT,
		PRIMARY KEY (RID), INDEX (SuID))`)
	mustExec(`CREATE TABLE Points (PID INT NOT NULL, SuID INT NOT NULL, Pts INT NOT NULL,
		PRIMARY KEY (PID), INDEX (SuID))`)
	for _, tbl := range []string{"Ratings", "Points"} {
		if err := db.MustTable(tbl).SetShardKey("SuID"); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(11))
	for su := 0; su < 20; su++ {
		mustExec(`INSERT INTO Students VALUES (?, ?)`, int64(su), fmt.Sprintf("s%02d", su))
	}
	for i := 0; i < 120; i++ {
		var score any
		if r.Intn(5) != 0 {
			score = int64(1 + r.Intn(5))
		}
		mustExec(`INSERT INTO Ratings VALUES (?, ?, ?, ?)`, int64(i), int64(r.Intn(20)), int64(r.Intn(8)), score)
	}
	for i := 0; i < 40; i++ {
		mustExec(`INSERT INTO Points VALUES (?, ?, ?)`, int64(i), int64(r.Intn(20)), int64(r.Intn(100)))
	}
	return db, e
}

func testCluster(t testing.TB, n int) (*Cluster, *sqlmini.Engine) {
	t.Helper()
	db, e := testBase(t)
	c, err := Split(db, n)
	if err != nil {
		t.Fatal(err)
	}
	return c, e
}

func asMultiset(rows []relation.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// checkAgainstMono runs one SELECT on both cluster and mono engine and
// compares, exactly when exact, else as multisets. Streaming parity
// rides along.
func checkAgainstMono(t *testing.T, c *Cluster, e *sqlmini.Engine, exact bool, sql string, args ...any) {
	t.Helper()
	got, err := c.Query(sql, args...)
	if err != nil {
		t.Fatalf("cluster %q: %v", sql, err)
	}
	want, err := e.Query(sql, args...)
	if err != nil {
		t.Fatalf("mono %q: %v", sql, err)
	}
	if !reflect.DeepEqual(got.Columns, want.Columns) {
		t.Fatalf("%q: columns %v vs %v", sql, got.Columns, want.Columns)
	}
	if exact {
		if !reflect.DeepEqual(asMultiset(got.Rows), asMultiset(want.Rows)) || !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("%q: rows diverge\ncluster: %v\nmono:    %v", sql, got.Rows, want.Rows)
		}
	} else if !reflect.DeepEqual(asMultiset(got.Rows), asMultiset(want.Rows)) {
		t.Fatalf("%q: row multisets diverge\ncluster: %v\nmono:    %v", sql, got.Rows, want.Rows)
	}
	rows, err := c.QueryRows(sql, args...)
	if err != nil {
		t.Fatalf("cluster stream %q: %v", sql, err)
	}
	var streamed []relation.Row
	for rows.Next() {
		streamed = append(streamed, rows.Row().Clone())
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatalf("cluster stream %q: %v", sql, err)
	}
	if exact {
		if len(streamed)+len(want.Rows) > 0 && !reflect.DeepEqual(streamed, want.Rows) {
			t.Fatalf("%q: streamed rows diverge\ncluster: %v\nmono:    %v", sql, streamed, want.Rows)
		}
	} else if !reflect.DeepEqual(asMultiset(streamed), asMultiset(want.Rows)) {
		t.Fatalf("%q: streamed multisets diverge\ncluster: %v\nmono:    %v", sql, streamed, want.Rows)
	}
}

func TestSplitPlacement(t *testing.T) {
	c, _ := testCluster(t, 4)
	// Replicated tables carry a full copy everywhere.
	for i := 0; i < c.Shards(); i++ {
		if n := c.DB(i).MustTable("Students").Len(); n != 20 {
			t.Fatalf("shard %d Students = %d rows, want 20", i, n)
		}
	}
	// Partitioned tables are a disjoint union, each row on its owner.
	total := 0
	for i := 0; i < c.Shards(); i++ {
		tb := c.DB(i).MustTable("Ratings")
		total += tb.Len()
		shard := i
		tb.Scan(func(_ int, row relation.Row) bool {
			if own := c.ownerOf(row[1]); own != shard {
				t.Fatalf("Ratings row %v on shard %d, owner %d", row, shard, own)
			}
			return true
		})
	}
	if total != 120 {
		t.Fatalf("Ratings rows across shards = %d, want 120", total)
	}
	st := c.Stats()
	if st.Shards != 4 || len(st.RowsPerShard) != 4 {
		t.Fatalf("stats shape: %+v", st)
	}
	if !reflect.DeepEqual(st.PartitionedTables, []string{"Points", "Ratings"}) {
		t.Fatalf("partitioned tables: %v", st.PartitionedTables)
	}
}

func TestSingleShardRouting(t *testing.T) {
	c, e := testCluster(t, 4)
	// Pinned by placeholder: the canonical fast path.
	for su := int64(0); su < 20; su++ {
		checkAgainstMono(t, c, e, true, `SELECT RID, CID, Score FROM Ratings WHERE SuID = ? ORDER BY RID`, su)
	}
	// Pinned by literal, and transitively through a join equality class.
	checkAgainstMono(t, c, e, true, `SELECT RID FROM Ratings WHERE SuID = 7 ORDER BY RID`)
	checkAgainstMono(t, c, e, true,
		`SELECT r.RID, p.Pts FROM Ratings r JOIN Points p ON r.SuID = p.SuID WHERE p.SuID = ? ORDER BY r.RID, p.PID`, int64(3))
	st := c.Stats()
	if st.FanOut != 0 {
		t.Fatalf("pinned queries fanned out: %+v", st)
	}
	// 22 statements × (Query + QueryRows).
	if st.FastPath != 44 {
		t.Fatalf("fast path count = %d, want 44", st.FastPath)
	}
	// Replicated-only statements round-robin across shards.
	for i := 0; i < 8; i++ {
		checkAgainstMono(t, c, e, true, `SELECT Name FROM Students WHERE SuID = ? ORDER BY Name`, int64(i))
	}
	if st := c.Stats(); st.Replicated != 16 || st.FanOut != 0 {
		t.Fatalf("replicated routing: %+v", st)
	}
	out, err := c.Explain(`SELECT RID FROM Ratings WHERE SuID = ?`, int64(5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "single shard") || !strings.Contains(out, "shard key pinned") {
		t.Fatalf("explain lacks routing line:\n%s", out)
	}
}

func TestFanoutMerges(t *testing.T) {
	c, e := testCluster(t, 4)
	// Unordered scatter: streaming concat.
	checkAgainstMono(t, c, e, false, `SELECT RID, SuID FROM Ratings WHERE Score >= ?`, int64(3))
	// Ordered scatter: per-shard sorted streams k-way merged, the
	// global window applied after (ORDER BY ends in the PK, so the
	// order is total and the comparison exact).
	checkAgainstMono(t, c, e, true, `SELECT RID, SuID, Score FROM Ratings ORDER BY Score DESC, RID LIMIT 10 OFFSET 3`)
	checkAgainstMono(t, c, e, true, `SELECT RID, CID FROM Ratings WHERE CID < 6 ORDER BY CID, RID`)
	// Partial-aggregate combine: COUNT/SUM sum, MIN/MAX fold.
	checkAgainstMono(t, c, e, true,
		`SELECT CID, COUNT(*), SUM(Score), MIN(Score), MAX(Score) FROM Ratings GROUP BY CID ORDER BY CID`)
	checkAgainstMono(t, c, e, true, `SELECT COUNT(*), SUM(Pts) FROM Points`)
	// Co-located join fans out shard-locally.
	checkAgainstMono(t, c, e, false,
		`SELECT r.RID, p.PID FROM Ratings r JOIN Points p ON r.SuID = p.SuID`)
	// Partitioned × replicated join is always legal.
	checkAgainstMono(t, c, e, true,
		`SELECT s.Name, r.RID FROM Ratings r JOIN Students s ON r.SuID = s.SuID ORDER BY r.RID`)
	st := c.Stats()
	if st.MergeConcat == 0 || st.MergeOrdered == 0 || st.MergeCombine == 0 {
		t.Fatalf("merge tallies incomplete: %+v", st)
	}
	out, err := c.Explain(`SELECT RID, SuID, Score FROM Ratings ORDER BY Score DESC, RID LIMIT 10 OFFSET 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fan-out over 4 shards, merge=by-order") {
		t.Fatalf("explain lacks merge strategy:\n%s", out)
	}
}

func TestFanoutRefusals(t *testing.T) {
	c, e := testCluster(t, 4)
	refused := func(sql, why string) {
		t.Helper()
		_, err := c.Query(sql)
		if err == nil || !strings.Contains(err.Error(), why) {
			t.Fatalf("%q: error %v, want %q", sql, err, why)
		}
	}
	refused(`SELECT CID, AVG(Score) FROM Ratings GROUP BY CID`, "AVG cannot combine")
	refused(`SELECT CID, COUNT(*) FROM Ratings GROUP BY CID HAVING COUNT(*) > 3`, "HAVING")
	refused(`SELECT RID FROM Ratings ORDER BY Score`, "not an output column")
	refused(`SELECT r.RID, p.PID FROM Ratings r JOIN Points p ON r.CID = p.Pts`, "not co-located")
	refused(`SELECT s.SuID, r.RID FROM Students s LEFT JOIN Ratings r ON s.SuID = r.SuID`, "LEFT JOIN")
	// A group key the projection drops cannot key the coordinator's
	// partial merge — without the refusal, every shard's groups would
	// silently fold into one row.
	refused(`SELECT COUNT(*) FROM Ratings GROUP BY SuID`, "not projected")
	refused(`SELECT CID, COUNT(*) FROM Ratings GROUP BY CID, SuID`, "not projected")

	// Every refused shape still answers when pinned to one shard.
	checkAgainstMono(t, c, e, true, `SELECT AVG(Score) FROM Ratings WHERE SuID = ?`, int64(4))
	checkAgainstMono(t, c, e, true,
		`SELECT s.SuID, r.RID FROM Students s LEFT JOIN Ratings r ON s.SuID = r.SuID WHERE s.SuID = ? ORDER BY s.SuID, r.RID`, int64(9))
	checkAgainstMono(t, c, e, true, `SELECT COUNT(*) FROM Ratings WHERE SuID = ? GROUP BY SuID`, int64(4))
}

func TestShardedDML(t *testing.T) {
	c, _ := testCluster(t, 4)
	// Routed INSERT: the row lands on its owner shard only.
	if n, err := c.Exec(`INSERT INTO Ratings VALUES (?, ?, ?, ?)`, int64(500), int64(7), int64(3), int64(5)); err != nil || n != 1 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	owner := c.ownerOf(int64(7))
	for i := 0; i < c.Shards(); i++ {
		res, err := c.Engine(i).Query(`SELECT RID FROM Ratings WHERE RID = 500`)
		if err != nil {
			t.Fatal(err)
		}
		if want := i == owner; (len(res.Rows) == 1) != want {
			t.Fatalf("shard %d has row: %v, owner %d", i, res.Rows, owner)
		}
	}
	// Pinned UPDATE/DELETE route to the owner; unpinned broadcast.
	if n, err := c.Exec(`UPDATE Ratings SET Score = 1 WHERE SuID = ?`, int64(7)); err != nil || n == 0 {
		t.Fatalf("pinned update: n=%d err=%v", n, err)
	}
	before := c.Stats()
	if n, err := c.Exec(`DELETE FROM Ratings WHERE Score = 1`); err != nil || n == 0 {
		t.Fatalf("broadcast delete: n=%d err=%v", n, err)
	}
	after := c.Stats()
	if after.DMLBroadcast != before.DMLBroadcast+1 {
		t.Fatalf("broadcast not tallied: %+v vs %+v", before, after)
	}
	res, err := c.Query(`SELECT COUNT(*) FROM Ratings WHERE Score = 1`)
	if err != nil || res.Rows[0][0] != int64(0) {
		t.Fatalf("rows survive broadcast delete: %v %v", res, err)
	}

	// Refusals.
	if _, err := c.Exec(`UPDATE Ratings SET SuID = 3 WHERE RID = 1`); err == nil || !strings.Contains(err.Error(), "shard key") {
		t.Fatalf("shard-key update: %v", err)
	}
	if _, err := c.Exec(`INSERT INTO Ratings (RID, CID, Score) VALUES (9000, 1, 1)`); err == nil || !strings.Contains(err.Error(), "shard key") {
		t.Fatalf("keyless insert: %v", err)
	}

	// Replicated DML and DDL broadcast to every shard.
	if _, err := c.Exec(`INSERT INTO Students VALUES (?, ?)`, int64(20), "s20"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`CREATE TABLE Tags (Tag TEXT NOT NULL)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO Tags VALUES ('x')`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Shards(); i++ {
		if n := c.DB(i).MustTable("Students").Len(); n != 21 {
			t.Fatalf("shard %d Students = %d, want 21", i, n)
		}
		if n := c.DB(i).MustTable("Tags").Len(); n != 1 {
			t.Fatalf("shard %d Tags = %d, want 1", i, n)
		}
	}
	if !c.Drop("Tags") {
		t.Fatal("drop reported no table")
	}
}

func TestFollowBase(t *testing.T) {
	db, e := testBase(t)
	c, err := Split(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.FollowBase(db)
	mustExec := func(sql string, args ...any) {
		t.Helper()
		if _, err := e.Exec(sql, args...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`INSERT INTO Ratings VALUES (?, ?, ?, ?)`, int64(800), int64(12), int64(2), int64(4))
	mustExec(`UPDATE Ratings SET Score = 5 WHERE CID = 3`)
	// Key migration: the base update moves rows between shard owners.
	mustExec(`UPDATE Ratings SET SuID = 19 WHERE SuID = 2`)
	mustExec(`DELETE FROM Ratings WHERE Score IS NULL`)
	mustExec(`INSERT INTO Students VALUES (?, ?)`, int64(21), "s21")
	mustExec(`DELETE FROM Points WHERE Pts < 10`)

	for _, q := range []string{
		`SELECT RID, SuID, CID, Score FROM Ratings ORDER BY RID`,
		`SELECT SuID, Name FROM Students ORDER BY SuID`,
		`SELECT PID, SuID, Pts FROM Points ORDER BY PID`,
	} {
		got, err := c.Query(q)
		if err != nil {
			t.Fatalf("cluster %q: %v", q, err)
		}
		want, err := e.Query(q)
		if err != nil {
			t.Fatalf("mono %q: %v", q, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("%q: shards diverged from base\ncluster: %v\nbase:    %v", q, got.Rows, want.Rows)
		}
	}
	// Migrated rows must sit on their new owners.
	for i := 0; i < c.Shards(); i++ {
		shard := i
		c.DB(i).MustTable("Ratings").Scan(func(_ int, row relation.Row) bool {
			if own := c.ownerOf(row[1]); own != shard {
				t.Fatalf("row %v on shard %d, owner %d", row, shard, own)
			}
			return true
		})
	}
	if st := c.Stats(); st.ApplyErrors != 0 {
		t.Fatalf("propagation errors: %+v", st)
	}
}

// TestFollowBaseDetectsSplitWindowWrites: a write landing between
// Split's copy and FollowBase attaching observers violates the
// quiescence contract — the shards silently miss the row — and must
// surface as divergence in ApplyErrors rather than pass unnoticed.
func TestFollowBaseDetectsSplitWindowWrites(t *testing.T) {
	db, e := testBase(t)
	c, err := Split(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`INSERT INTO Ratings VALUES (?, ?, ?, ?)`, int64(900), int64(3), int64(1), int64(2)); err != nil {
		t.Fatal(err)
	}
	c.FollowBase(db)
	if st := c.Stats(); st.ApplyErrors == 0 {
		t.Fatalf("split-window write went undetected: %+v", st)
	}
}

// TestIntegralFloatKeyNormalization: integral floats inside int64
// range place and group like the equal integer; outside that range the
// float-to-int conversion would be implementation-defined, so the
// float encoding is kept and placement stays platform-independent.
func TestIntegralFloatKeyNormalization(t *testing.T) {
	c, _ := testCluster(t, 4)
	if c.ownerOf(float64(7)) != c.ownerOf(int64(7)) {
		t.Fatal("7.0 and 7 place on different shards")
	}
	if !bytes.Equal(appendValueKey(nil, float64(7)), appendValueKey(nil, int64(7))) {
		t.Fatal("7.0 and 7 group apart")
	}
	if k := appendValueKey(nil, math.Ldexp(-1, 63)); k[0] != 'i' { // MinInt64 is representable
		t.Fatalf("-2^63 key encoding %q, want integer", k)
	}
	for _, huge := range []float64{math.Ldexp(1, 63), -math.Ldexp(1, 64), 1e300} {
		if k := appendValueKey(nil, huge); k[0] != 'f' {
			t.Fatalf("%g key encoding %q, want float", huge, k)
		}
		if o := c.ownerOf(huge); o < 0 || o >= c.Shards() {
			t.Fatalf("%g owner %d out of range", huge, o)
		}
	}
}

// TestStreamingGatherBackpressure shrinks the high-water mark so shard
// workers actually block on the consumer, with fewer pool slots than
// shards so the all-claimed gate is what keeps the ordered merge
// deadlock-free, and checks full parity plus clean cancellation.
func TestStreamingGatherBackpressure(t *testing.T) {
	oldHW := gatherHighWater
	gatherHighWater = 8
	defer func() { gatherHighWater = oldHW }()

	db := relation.NewDB()
	e := sqlmini.New(db)
	if _, err := e.Exec(`CREATE TABLE Big (ID INT NOT NULL, K INT NOT NULL, PRIMARY KEY (ID))`); err != nil {
		t.Fatal(err)
	}
	if err := db.MustTable("Big").SetShardKey("K"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2400; i++ {
		if _, err := e.Exec(`INSERT INTO Big VALUES (?, ?)`, int64(i), int64(i%13)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Split(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.workers = 2
	baseline := runtime.NumGoroutine()

	// Concat and ordered merges, drained one row at a time well past
	// the high-water mark, still deliver every row.
	checkAgainstMono(t, c, e, false, `SELECT ID, K FROM Big`)
	checkAgainstMono(t, c, e, true, `SELECT ID, K FROM Big ORDER BY ID`)

	// Abandoning a stream while workers sit blocked on full buffers
	// must wake and cancel them — no goroutine may linger.
	rows, err := c.QueryRows(`SELECT ID, K FROM Big`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && rows.Next(); i++ {
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("gather goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStreamingLimitShortCircuit(t *testing.T) {
	c, _ := testCluster(t, 4)
	st, err := c.Prepare(`SELECT RID, Score FROM Ratings ORDER BY RID LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.QueryRows()
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for rows.Next() {
		got = append(got, rows.Row()[0].(int64))
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int64{0, 1, 2, 3, 4}) {
		t.Fatalf("limited merge: %v", got)
	}
	// Early close mid-stream must not error or wedge later queries.
	rows, err = c.QueryRows(`SELECT RID FROM Ratings`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && rows.Next(); i++ {
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`SELECT COUNT(*) FROM Ratings`); err != nil {
		t.Fatal(err)
	}
}

func TestSingleShardClusterMatchesMono(t *testing.T) {
	// n=1 is the degenerate cluster: every route lands on shard 0 and
	// every answer must equal the mono engine's bit for bit.
	c, e := testCluster(t, 1)
	checkAgainstMono(t, c, e, true, `SELECT RID, SuID, Score FROM Ratings ORDER BY Score DESC, RID LIMIT 7`)
	checkAgainstMono(t, c, e, true, `SELECT CID, COUNT(*), SUM(Score) FROM Ratings GROUP BY CID ORDER BY CID`)
	checkAgainstMono(t, c, e, false, `SELECT r.RID, p.PID FROM Ratings r JOIN Points p ON r.SuID = p.SuID`)
}

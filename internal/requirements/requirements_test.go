package requirements

import (
	"testing"
	"testing/quick"

	"courserank/internal/catalog"
	"courserank/internal/relation"
)

// cat builds a catalog with courses 1..8 (ids assigned in order); units
// are 5,5,4,4,3,3,2,2.
func cat(t *testing.T) *catalog.Store {
	t.Helper()
	c, err := catalog.Setup(relation.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDepartment(catalog.Department{ID: "CS", Name: "CS", School: "Engineering"}); err != nil {
		t.Fatal(err)
	}
	units := []int64{5, 5, 4, 4, 3, 3, 2, 2}
	for i, u := range units {
		if _, err := c.AddCourse(catalog.Course{DepID: "CS", Number: string(rune('A' + i)), Title: "C", Units: u}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestValidate(t *testing.T) {
	bad := []Requirement{
		{Name: "x", Kind: KindAll},
		{Name: "x", Kind: KindChoose, K: 0, Courses: []int64{1}},
		{Name: "x", Kind: KindChoose, K: 3, Courses: []int64{1, 2}},
		{Name: "x", Kind: KindUnits, Units: 0, Courses: []int64{1}},
		{Name: "x", Kind: KindUnits, Units: 5},
		{Name: "x", Kind: KindGroup},
		{Name: "x", Kind: "bogus"},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("bad requirement %d validated", i)
		}
	}
	good := Requirement{Name: "core", Kind: KindGroup, Children: []Requirement{
		{Name: "intro", Kind: KindAll, Courses: []int64{1, 2}},
		{Name: "electives", Kind: KindChoose, K: 1, Courses: []int64{3, 4}},
	}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if (Program{}).Validate() == nil {
		t.Error("empty program should fail")
	}
	if (Program{Name: "CS"}).Validate() == nil {
		t.Error("program without requirements should fail")
	}
}

func TestAllOfAndChoose(t *testing.T) {
	c := cat(t)
	p := Program{Name: "CS-BS", DepID: "CS", Requirements: []Requirement{
		{Name: "intro", Kind: KindAll, Courses: []int64{1, 2}},
		{Name: "systems", Kind: KindChoose, K: 1, Courses: []int64{3, 4}},
	}}
	rep := Check(p, []int64{1, 2, 3}, c)
	if !rep.Satisfied {
		t.Fatalf("should satisfy: %+v", rep)
	}
	rep = Check(p, []int64{1, 3}, c)
	if rep.Satisfied || rep.Results[0].Satisfied {
		t.Errorf("missing course 2: %+v", rep.Results[0])
	}
	if !rep.Results[1].Satisfied {
		t.Errorf("choose should hold: %+v", rep.Results[1])
	}
	if rep.Results[0].Missing == "" {
		t.Error("missing description expected")
	}
}

// TestNoDoubleCounting is the key matcher property: course 3 can satisfy
// either requirement but not both.
func TestNoDoubleCounting(t *testing.T) {
	c := cat(t)
	p := Program{Name: "X", Requirements: []Requirement{
		{Name: "a", Kind: KindChoose, K: 1, Courses: []int64{3}},
		{Name: "b", Kind: KindChoose, K: 1, Courses: []int64{3, 4}},
	}}
	// With only course 3 taken, exactly one requirement can be satisfied.
	rep := Check(p, []int64{3}, c)
	sat := 0
	for _, r := range rep.Results {
		if r.Satisfied {
			sat++
		}
	}
	if sat != 1 || rep.Satisfied {
		t.Errorf("expected exactly one satisfied requirement: %+v", rep)
	}
	// With 3 and 4 both taken, matching must route 3→a and 4→b (greedy
	// 3→b would fail a).
	rep = Check(p, []int64{3, 4}, c)
	if !rep.Satisfied {
		t.Fatalf("matching failed to find the assignment: %+v", rep)
	}
}

// TestMatchingBeatsGreedy forces a chain of augmenting paths.
func TestMatchingBeatsGreedy(t *testing.T) {
	c := cat(t)
	p := Program{Name: "chain", Requirements: []Requirement{
		{Name: "r1", Kind: KindChoose, K: 1, Courses: []int64{1, 2}},
		{Name: "r2", Kind: KindChoose, K: 1, Courses: []int64{2, 3}},
		{Name: "r3", Kind: KindChoose, K: 1, Courses: []int64{3}},
	}}
	rep := Check(p, []int64{1, 2, 3}, c)
	if !rep.Satisfied {
		t.Fatalf("perfect matching exists (1→r1, 2→r2, 3→r3): %+v", rep)
	}
}

func TestUnitsRequirement(t *testing.T) {
	c := cat(t)
	p := Program{Name: "breadth", Requirements: []Requirement{
		{Name: "core", Kind: KindAll, Courses: []int64{1}},
		{Name: "electives", Kind: KindUnits, Units: 8, Courses: []int64{3, 4, 5, 6}},
	}}
	// Courses 3 (4u) + 4 (4u) = 8 units: satisfied.
	rep := Check(p, []int64{1, 3, 4}, c)
	if !rep.Satisfied {
		t.Fatalf("units should satisfy: %+v", rep)
	}
	// Courses 5 (3u) + 6 (3u) = 6 < 8: unsatisfied with message.
	rep = Check(p, []int64{1, 5, 6}, c)
	if rep.Satisfied || rep.Results[1].Missing == "" {
		t.Errorf("6 units must not satisfy 8: %+v", rep.Results[1])
	}
	// A course consumed by an exact requirement does not count toward
	// units.
	p2 := Program{Name: "x", Requirements: []Requirement{
		{Name: "core", Kind: KindAll, Courses: []int64{3}},
		{Name: "breadth", Kind: KindUnits, Units: 4, Courses: []int64{3, 4}},
	}}
	rep = Check(p2, []int64{3}, c)
	if rep.Results[1].Satisfied {
		t.Errorf("course 3 double-counted: %+v", rep.Results[1])
	}
	rep = Check(p2, []int64{3, 4}, c)
	if !rep.Satisfied {
		t.Errorf("4 covers breadth: %+v", rep)
	}
}

func TestNestedGroups(t *testing.T) {
	c := cat(t)
	p := Program{Name: "nested", Requirements: []Requirement{
		{Name: "major", Kind: KindGroup, Children: []Requirement{
			{Name: "intro", Kind: KindAll, Courses: []int64{1}},
			{Name: "depth", Kind: KindGroup, Children: []Requirement{
				{Name: "sys", Kind: KindChoose, K: 1, Courses: []int64{3, 4}},
			}},
		}},
	}}
	rep := Check(p, []int64{1, 4}, c)
	if !rep.Satisfied {
		t.Fatalf("nested groups: %+v", rep)
	}
	if len(rep.Results[0].Children) != 2 {
		t.Errorf("children = %+v", rep.Results[0].Children)
	}
	rep = Check(p, []int64{1}, c)
	if rep.Satisfied || rep.Results[0].Children[1].Satisfied {
		t.Errorf("depth unmet: %+v", rep)
	}
}

func TestRetakesCountOnce(t *testing.T) {
	c := cat(t)
	p := Program{Name: "x", Requirements: []Requirement{
		{Name: "two", Kind: KindChoose, K: 2, Courses: []int64{1, 2}},
	}}
	rep := Check(p, []int64{1, 1, 1}, c)
	if rep.Satisfied {
		t.Errorf("retaking course 1 three times fills one slot: %+v", rep)
	}
}

func TestRegistryAndJSON(t *testing.T) {
	g := NewRegistry()
	p := Program{Name: "CS-BS", DepID: "CS", Requirements: []Requirement{
		{Name: "intro", Kind: KindAll, Courses: []int64{1}},
	}}
	if err := g.Define(p); err != nil {
		t.Fatal(err)
	}
	if err := g.Define(Program{Name: "bad"}); err == nil {
		t.Error("invalid program should fail")
	}
	got, ok := g.Get("CS-BS")
	if !ok || got.DepID != "CS" {
		t.Error("Get")
	}
	if names := g.Names(); len(names) != 1 || names[0] != "CS-BS" {
		t.Errorf("Names = %v", names)
	}
	enc, err := MarshalProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := UnmarshalProgram(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != p.Name || len(dec.Requirements) != 1 {
		t.Errorf("round trip = %+v", dec)
	}
	if _, err := UnmarshalProgram("{"); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := UnmarshalProgram(`{"name":""}`); err == nil {
		t.Error("invalid decoded program should fail")
	}
}

// Property: adding courses to a transcript never un-satisfies a
// requirement (monotonicity of Check).
func TestCheckMonotoneProperty(t *testing.T) {
	c := cat(t)
	p := Program{Name: "m", Requirements: []Requirement{
		{Name: "a", Kind: KindChoose, K: 2, Courses: []int64{1, 2, 3}},
		{Name: "b", Kind: KindUnits, Units: 6, Courses: []int64{4, 5, 6}},
	}}
	f := func(mask uint8) bool {
		var taken []int64
		for i := int64(1); i <= 8; i++ {
			if mask&(1<<(i-1)) != 0 {
				taken = append(taken, i)
			}
		}
		base := Check(p, taken, c)
		more := Check(p, append(taken, 1, 2, 3, 4, 5, 6), c)
		if !more.Satisfied {
			return false // full transcript always satisfies
		}
		for i := range base.Results {
			if base.Results[i].Satisfied && !more.Results[i].Satisfied {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestCheckNilCatalog(t *testing.T) {
	// Without a catalog, units default to 1 per course.
	p := Program{Name: "u", Requirements: []Requirement{
		{Name: "three", Kind: KindUnits, Units: 3, Courses: []int64{1, 2, 3, 4}},
	}}
	rep := Check(p, []int64{1, 2, 3}, nil)
	if !rep.Satisfied {
		t.Errorf("3 courses at 1 unit each: %+v", rep)
	}
}

// Package requirements implements CourseRank's Requirement Tracker
// (§2.1 "New Tools"): department staff define the requirements of an
// academic program through a small declarative structure, and students
// check which requirements the courses they have taken satisfy. A course
// may satisfy at most one requirement slot (no double counting), which
// the checker enforces with bipartite matching rather than greedy
// assignment, so "CS106 counts for A or B" puzzles resolve correctly.
package requirements

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"courserank/internal/catalog"
)

// Kind distinguishes requirement node types.
type Kind string

// Requirement node kinds.
const (
	// KindAll requires every listed course.
	KindAll Kind = "all"
	// KindChoose requires any K of the listed courses.
	KindChoose Kind = "choose"
	// KindUnits requires at least Units course-units from the listed set.
	KindUnits Kind = "units"
	// KindGroup requires every child requirement (nesting).
	KindGroup Kind = "group"
)

// Requirement is one node of a program's requirement tree.
type Requirement struct {
	Name     string        `json:"name"`
	Kind     Kind          `json:"kind"`
	K        int           `json:"k,omitempty"`     // KindChoose
	Units    int64         `json:"units,omitempty"` // KindUnits
	Courses  []int64       `json:"courses,omitempty"`
	Children []Requirement `json:"children,omitempty"`
}

// Validate checks structural sanity of the requirement tree.
func (r Requirement) Validate() error {
	switch r.Kind {
	case KindAll:
		if len(r.Courses) == 0 {
			return fmt.Errorf("requirements: %q: all-of needs courses", r.Name)
		}
	case KindChoose:
		if r.K <= 0 || r.K > len(r.Courses) {
			return fmt.Errorf("requirements: %q: choose needs 0 < k ≤ |courses|", r.Name)
		}
	case KindUnits:
		if r.Units <= 0 || len(r.Courses) == 0 {
			return fmt.Errorf("requirements: %q: units-from needs positive units and courses", r.Name)
		}
	case KindGroup:
		if len(r.Children) == 0 {
			return fmt.Errorf("requirements: %q: group needs children", r.Name)
		}
		for _, c := range r.Children {
			if err := c.Validate(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("requirements: %q: unknown kind %q", r.Name, r.Kind)
	}
	return nil
}

// Program is a named degree program with its requirement tree.
type Program struct {
	Name         string        `json:"name"`
	DepID        string        `json:"depId"`
	Requirements []Requirement `json:"requirements"`
}

// Validate checks the program definition.
func (p Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("requirements: program needs a name")
	}
	if len(p.Requirements) == 0 {
		return fmt.Errorf("requirements: program %q has no requirements", p.Name)
	}
	for _, r := range p.Requirements {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Registry stores programs, as entered through the staff interface the
// paper describes ("a dedicated interface for department managers that
// allows them to define the requirements for their programs", §2.2).
type Registry struct {
	mu sync.RWMutex
	m  map[string]Program
}

// NewRegistry returns an empty program registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]Program)} }

// Define validates and stores a program, replacing any previous
// definition with the same name.
func (g *Registry) Define(p Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.m[p.Name] = p
	return nil
}

// Get fetches a program by name.
func (g *Registry) Get(name string) (Program, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.m[name]
	return p, ok
}

// Names lists defined programs.
func (g *Registry) Names() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.m))
	for n := range g.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MarshalProgram encodes a program as JSON (the storage format used to
// persist staff-entered definitions).
func MarshalProgram(p Program) (string, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// UnmarshalProgram decodes and validates a stored program.
func UnmarshalProgram(s string) (Program, error) {
	var p Program
	if err := json.Unmarshal([]byte(s), &p); err != nil {
		return Program{}, err
	}
	if err := p.Validate(); err != nil {
		return Program{}, err
	}
	return p, nil
}

// ReqResult reports one requirement's satisfaction.
type ReqResult struct {
	Name      string
	Satisfied bool
	// Used lists the course ids allocated to this requirement.
	Used []int64
	// Missing describes what is still needed, human-readably.
	Missing string
	// Children reports nested group results.
	Children []ReqResult
}

// Report is the tracker's output for one student against one program.
type Report struct {
	Program   string
	Satisfied bool
	Results   []ReqResult
}

// Check evaluates which requirements the taken courses satisfy. Each
// course id may be allocated to at most one leaf slot across the whole
// program; allocation uses augmenting-path bipartite matching so that an
// unlucky greedy choice never reports a satisfiable program as unmet.
// Units requirements draw from the courses left unmatched by the exact
// requirements, largest-units first.
func Check(p Program, taken []int64, cat *catalog.Store) Report {
	// Deduplicate taken courses (retakes satisfy a slot once).
	seen := map[int64]bool{}
	var courses []int64
	for _, c := range taken {
		if !seen[c] {
			seen[c] = true
			courses = append(courses, c)
		}
	}
	sort.Slice(courses, func(a, b int) bool { return courses[a] < courses[b] })

	// Collect leaf slots from all/choose requirements.
	type slot struct {
		leaf    *leafState
		accepts map[int64]bool
	}
	var slots []slot
	var leaves []*leafState
	var collect func(r Requirement) *leafState
	collect = func(r Requirement) *leafState {
		st := &leafState{req: r}
		leaves = append(leaves, st)
		switch r.Kind {
		case KindAll:
			for _, c := range r.Courses {
				slots = append(slots, slot{leaf: st, accepts: map[int64]bool{c: true}})
				st.slots++
			}
		case KindChoose:
			acc := map[int64]bool{}
			for _, c := range r.Courses {
				acc[c] = true
			}
			for i := 0; i < r.K; i++ {
				slots = append(slots, slot{leaf: st, accepts: acc})
				st.slots++
			}
		case KindUnits:
			// Handled after matching.
		case KindGroup:
			for _, ch := range r.Children {
				st.children = append(st.children, collect(ch))
			}
		}
		return st
	}
	var roots []*leafState
	for _, r := range p.Requirements {
		roots = append(roots, collect(r))
	}

	// Bipartite matching: courses × slots.
	slotOf := make([]int, len(courses)) // course index → slot index or -1
	courseOf := make([]int, len(slots)) // slot index → course index or -1
	for i := range slotOf {
		slotOf[i] = -1
	}
	for i := range courseOf {
		courseOf[i] = -1
	}
	var try func(ci int, visited []bool) bool
	try = func(ci int, visited []bool) bool {
		for si := range slots {
			if visited[si] || !slots[si].accepts[courses[ci]] {
				continue
			}
			visited[si] = true
			if courseOf[si] == -1 || try(courseOf[si], visited) {
				courseOf[si] = ci
				slotOf[ci] = si
				return true
			}
		}
		return false
	}
	for ci := range courses {
		try(ci, make([]bool, len(slots)))
	}
	for si, ci := range courseOf {
		if ci >= 0 {
			slots[si].leaf.used = append(slots[si].leaf.used, courses[ci])
			slots[si].leaf.filled++
		}
	}

	// Remaining courses feed units requirements, largest units first so
	// fewer leftovers are wasted.
	var leftovers []int64
	for ci, si := range slotOf {
		if si == -1 {
			leftovers = append(leftovers, courses[ci])
		}
	}
	sort.Slice(leftovers, func(a, b int) bool {
		ua, ub := unitsOf(cat, leftovers[a]), unitsOf(cat, leftovers[b])
		if ua != ub {
			return ua > ub
		}
		return leftovers[a] < leftovers[b]
	})
	usedLeftover := map[int64]bool{}
	for _, st := range leaves {
		if st.req.Kind != KindUnits {
			continue
		}
		acc := map[int64]bool{}
		for _, c := range st.req.Courses {
			acc[c] = true
		}
		for _, c := range leftovers {
			if st.units >= st.req.Units {
				break
			}
			if usedLeftover[c] || !acc[c] {
				continue
			}
			usedLeftover[c] = true
			st.used = append(st.used, c)
			st.units += unitsOf(cat, c)
		}
	}

	// Assemble the report.
	var assemble func(st *leafState) ReqResult
	assemble = func(st *leafState) ReqResult {
		res := ReqResult{Name: st.req.Name, Used: st.used}
		switch st.req.Kind {
		case KindAll, KindChoose:
			res.Satisfied = st.filled == st.slots
			if !res.Satisfied {
				res.Missing = fmt.Sprintf("%d of %d course slots unfilled", st.slots-st.filled, st.slots)
			}
		case KindUnits:
			res.Satisfied = st.units >= st.req.Units
			if !res.Satisfied {
				res.Missing = fmt.Sprintf("%d more units needed", st.req.Units-st.units)
			}
		case KindGroup:
			res.Satisfied = true
			for _, ch := range st.children {
				cr := assemble(ch)
				res.Children = append(res.Children, cr)
				if !cr.Satisfied {
					res.Satisfied = false
				}
			}
			if !res.Satisfied {
				res.Missing = "unsatisfied sub-requirements"
			}
		}
		return res
	}
	rep := Report{Program: p.Name, Satisfied: true}
	for _, st := range roots {
		rr := assemble(st)
		rep.Results = append(rep.Results, rr)
		if !rr.Satisfied {
			rep.Satisfied = false
		}
	}
	return rep
}

// leafState tracks matching progress per requirement node.
type leafState struct {
	req      Requirement
	slots    int
	filled   int
	units    int64
	used     []int64
	children []*leafState
}

func unitsOf(cat *catalog.Store, courseID int64) int64 {
	if cat == nil {
		return 1
	}
	c, ok := cat.Course(courseID)
	if !ok {
		return 0
	}
	return c.Units
}

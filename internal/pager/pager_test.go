package pager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func fillPage(pg *Page, b byte) {
	d := pg.Data()
	for i := range d {
		d[i] = b
	}
	pg.MarkDirty()
}

func TestPageRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := Open(path, Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(pg, byte('a'+i))
		pg.Release()
	}
	if err := p.SetMeta([]byte("checkpoint=42")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path, Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.PageCount(); got != 3 {
		t.Fatalf("page count = %d, want 3", got)
	}
	if got := string(p2.Meta()); got != "checkpoint=42" {
		t.Fatalf("meta = %q", got)
	}
	for i := 1; i <= 3; i++ {
		pg, err := p2.Acquire(i)
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte('a' + i - 1)}, p2.PayloadSize())
		if !bytes.Equal(pg.Data(), want) {
			t.Fatalf("page %d contents wrong: %q...", i, pg.Data()[:8])
		}
		pg.Release()
	}
}

// TestLRUEviction proves a pool smaller than the working set evicts and
// still serves correct bytes, with dirty pages written back.
func TestLRUEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := Open(path, Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 16
	for i := 0; i < n; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(pg, byte(i))
		pg.Release()
	}
	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with pool 4 over %d pages, got stats %+v", n, st)
	}
	if st.Cached > 4 {
		t.Fatalf("pool overgrew: %d frames resident", st.Cached)
	}
	// Re-read everything: evicted pages must come back from disk intact.
	for i := 1; i <= n; i++ {
		pg, err := p.Acquire(i)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Data()[0] != byte(i-1) {
			t.Fatalf("page %d first byte = %d, want %d", i, pg.Data()[0], i-1)
		}
		pg.Release()
	}
	if st := p.Stats(); st.Misses == 0 {
		t.Fatal("expected pool misses after eviction")
	}
}

// TestPinPreventsEviction pins one page, thrashes the pool, and checks
// the pinned frame stayed resident (its pointer identity survives).
func TestPinPreventsEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := Open(path, Options{PageSize: 256, PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pinned, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fillPage(pinned, 0xAA)
	data := pinned.Data()
	for i := 0; i < 8; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(pg, byte(i))
		pg.Release()
	}
	// Still the same backing array, still our bytes.
	if &data[0] != &pinned.Data()[0] || data[0] != 0xAA {
		t.Fatal("pinned page was evicted or relocated")
	}
	pinned.Release()
}

func TestChecksumDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := Open(path, Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fillPage(pg, 0x55)
	pg.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of page 1 on disk.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0x56}, 256+checksumBytes+10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2, err := Open(path, Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, err := p2.Acquire(1); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted page read err = %v, want ErrChecksum", err)
	}
}

func TestTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := Open(path, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(pg, byte(i))
		pg.Release()
	}
	if err := p.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.PageCount(); got != 2 {
		t.Fatalf("page count after truncate = %d, want 2", got)
	}
	if _, err := p2.Acquire(3); err == nil {
		t.Fatal("acquire past truncation succeeded")
	}
}

// Package pager implements the durable page layer under the relational
// store: a fixed-size page file fronted by a buffer pool. Pages are the
// unit of disk I/O; the pool caches recently used pages with LRU
// eviction, tracks dirty pages, and lets callers pin pages while their
// bytes are in use. Every data page carries a CRC32 checksum verified
// on read, so a torn or bit-rotted page is detected at the first
// access instead of silently corrupting the database above it.
//
// File layout:
//
//	page 0:     header — magic, page size, page count, plus an opaque
//	            client metadata blob (the relation layer stores its
//	            checkpoint LSN and snapshot extent there)
//	page 1..N:  data pages — 4-byte CRC32 (Castagnoli) over the payload,
//	            then pageSize-4 payload bytes
//
// The pager knows nothing about rows or tables; the relation package's
// durable backend streams its checkpoint snapshots through sequential
// pages, and future B-tree work allocates node pages the same way.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// DefaultPageSize is the page size used when Options.PageSize is zero.
const DefaultPageSize = 4096

// DefaultPoolPages is the buffer-pool capacity (in pages) used when
// Options.PoolPages is zero.
const DefaultPoolPages = 256

const (
	magic         = "CRPG1\x00"
	headerFixed   = len(magic) + 4 + 8 + 4 // magic, pageSize, pageCount, metaLen
	checksumBytes = 4
	minPageSize   = 128
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a page whose stored CRC32 does not match its
// payload — a torn write or on-disk corruption.
var ErrChecksum = errors.New("pager: page checksum mismatch")

// Options configures a Pager.
type Options struct {
	PageSize  int // bytes per on-disk page; 0 means DefaultPageSize
	PoolPages int // buffer-pool capacity in pages; 0 means DefaultPoolPages
}

// Stats counts buffer-pool and I/O activity since Open.
type Stats struct {
	Hits      uint64 `json:"hits"`      // Acquire served from the pool
	Misses    uint64 `json:"misses"`    // Acquire read from disk
	Evictions uint64 `json:"evictions"` // frames evicted to make room
	Flushes   uint64 `json:"flushes"`   // dirty pages written back
	Pages     int    `json:"pages"`     // data pages in the file
	Pinned    int    `json:"pinned"`    // currently pinned frames
	Cached    int    `json:"cached"`    // frames resident in the pool
}

// frame is one resident page.
type frame struct {
	id    int
	data  []byte // payload (pageSize - checksumBytes)
	dirty bool
	pins  int
	prev  *frame // LRU list; head = most recent
	next  *frame
}

// Pager is a page file with a buffer pool. All methods are safe for
// concurrent use.
type Pager struct {
	mu        sync.Mutex
	f         *os.File
	pageSize  int
	poolCap   int
	pageCount int // data pages (excluding the header page)
	meta      []byte
	metaDirty bool
	frames    map[int]*frame
	lruHead   *frame
	lruTail   *frame
	stats     Stats
	closed    bool
}

// Open opens (or creates) the page file at path.
func Open(path string, opts Options) (*Pager, error) {
	ps := opts.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if ps < minPageSize {
		return nil, fmt.Errorf("pager: page size %d below minimum %d", ps, minPageSize)
	}
	pool := opts.PoolPages
	if pool == 0 {
		pool = DefaultPoolPages
	}
	if pool < 1 {
		pool = 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	p := &Pager{f: f, pageSize: ps, poolCap: pool, frames: make(map[int]*frame)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		// Fresh file: write the header page.
		if err := p.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	if err := p.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// writeHeader serializes the header page; caller holds mu (or has
// exclusive access during Open).
func (p *Pager) writeHeader() error {
	buf := make([]byte, p.pageSize)
	copy(buf, magic)
	off := len(magic)
	binary.LittleEndian.PutUint32(buf[off:], uint32(p.pageSize))
	off += 4
	binary.LittleEndian.PutUint64(buf[off:], uint64(p.pageCount))
	off += 8
	if headerFixed+len(p.meta) > p.pageSize {
		return fmt.Errorf("pager: metadata blob %d bytes exceeds header page capacity %d", len(p.meta), p.pageSize-headerFixed)
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(p.meta)))
	off += 4
	copy(buf[off:], p.meta)
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return err
	}
	p.metaDirty = false
	return nil
}

func (p *Pager) readHeader() error {
	buf := make([]byte, p.pageSize)
	if _, err := io.ReadFull(io.NewSectionReader(p.f, 0, int64(p.pageSize)), buf); err != nil {
		return fmt.Errorf("pager: short header: %w", err)
	}
	if string(buf[:len(magic)]) != magic {
		return fmt.Errorf("pager: bad magic (not a page file)")
	}
	off := len(magic)
	ps := int(binary.LittleEndian.Uint32(buf[off:]))
	if ps != p.pageSize {
		return fmt.Errorf("pager: file has page size %d, opened with %d", ps, p.pageSize)
	}
	off += 4
	p.pageCount = int(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	metaLen := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if metaLen < 0 || off+metaLen > p.pageSize {
		return fmt.Errorf("pager: corrupt header metadata length %d", metaLen)
	}
	p.meta = append([]byte(nil), buf[off:off+metaLen]...)
	return nil
}

// PageSize returns the on-disk page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// PayloadSize returns the usable bytes per page (page size minus the
// checksum).
func (p *Pager) PayloadSize() int { return p.pageSize - checksumBytes }

// PageCount returns the number of data pages in the file.
func (p *Pager) PageCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pageCount
}

// Meta returns a copy of the client metadata blob stored in the header.
func (p *Pager) Meta() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.meta...)
}

// SetMeta replaces the client metadata blob. The blob is persisted on
// the next FlushAll (or Close); it must fit the header page.
func (p *Pager) SetMeta(meta []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if headerFixed+len(meta) > p.pageSize {
		return fmt.Errorf("pager: metadata blob %d bytes exceeds header page capacity %d", len(meta), p.pageSize-headerFixed)
	}
	p.meta = append([]byte(nil), meta...)
	p.metaDirty = true
	return nil
}

// Page is a pinned page handle. Data aliases the pool frame: reads and
// writes go through it directly. Call MarkDirty after modifying and
// Release when done; an unreleased page can never be evicted.
type Page struct {
	p  *Pager
	fr *frame
}

// ID returns the page number (1-based; the header page is not
// addressable).
func (pg *Page) ID() int { return pg.fr.id }

// Data returns the page payload. The slice is valid until Release.
func (pg *Page) Data() []byte { return pg.fr.data }

// MarkDirty records that the payload changed; the page will be written
// back on eviction or FlushAll.
func (pg *Page) MarkDirty() {
	pg.p.mu.Lock()
	pg.fr.dirty = true
	pg.p.mu.Unlock()
}

// Release unpins the page, making it evictable again.
func (pg *Page) Release() {
	pg.p.mu.Lock()
	if pg.fr.pins > 0 {
		pg.fr.pins--
	}
	pg.p.mu.Unlock()
}

// lruTouch moves fr to the head (most recently used). Caller holds mu.
func (p *Pager) lruTouch(fr *frame) {
	if p.lruHead == fr {
		return
	}
	p.lruUnlink(fr)
	fr.next = p.lruHead
	fr.prev = nil
	if p.lruHead != nil {
		p.lruHead.prev = fr
	}
	p.lruHead = fr
	if p.lruTail == nil {
		p.lruTail = fr
	}
}

func (p *Pager) lruUnlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	}
	if p.lruHead == fr {
		p.lruHead = fr.next
	}
	if p.lruTail == fr {
		p.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

// evictIfFull makes room for one more frame; caller holds mu. Pinned
// frames are skipped; if every frame is pinned the pool grows past its
// capacity rather than failing.
func (p *Pager) evictIfFull() error {
	if len(p.frames) < p.poolCap {
		return nil
	}
	for fr := p.lruTail; fr != nil; fr = fr.prev {
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := p.writeFrame(fr); err != nil {
				return err
			}
		}
		p.lruUnlink(fr)
		delete(p.frames, fr.id)
		p.stats.Evictions++
		return nil
	}
	return nil // all pinned: grow
}

// writeFrame writes one frame's payload with its checksum; caller
// holds mu.
func (p *Pager) writeFrame(fr *frame) error {
	buf := make([]byte, p.pageSize)
	binary.LittleEndian.PutUint32(buf, crc32.Checksum(fr.data, castagnoli))
	copy(buf[checksumBytes:], fr.data)
	if _, err := p.f.WriteAt(buf, int64(fr.id)*int64(p.pageSize)); err != nil {
		return err
	}
	fr.dirty = false
	p.stats.Flushes++
	return nil
}

// readFrame reads page id from disk, verifying its checksum; caller
// holds mu.
func (p *Pager) readFrame(id int) (*frame, error) {
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	want := binary.LittleEndian.Uint32(buf)
	payload := buf[checksumBytes:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: page %d (stored %08x, computed %08x)", ErrChecksum, id, want, got)
	}
	return &frame{id: id, data: payload}, nil
}

// Acquire pins page id (1-based), reading it from disk on a pool miss.
func (p *Pager) Acquire(id int) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("pager: closed")
	}
	if id < 1 || id > p.pageCount {
		return nil, fmt.Errorf("pager: page %d out of range [1,%d]", id, p.pageCount)
	}
	if fr, ok := p.frames[id]; ok {
		fr.pins++
		p.stats.Hits++
		p.lruTouch(fr)
		return &Page{p: p, fr: fr}, nil
	}
	if err := p.evictIfFull(); err != nil {
		return nil, err
	}
	fr, err := p.readFrame(id)
	if err != nil {
		return nil, err
	}
	fr.pins = 1
	p.frames[id] = fr
	p.lruTouch(fr)
	p.stats.Misses++
	return &Page{p: p, fr: fr}, nil
}

// Allocate extends the file by one page and returns it pinned, zeroed
// and dirty.
func (p *Pager) Allocate() (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("pager: closed")
	}
	if err := p.evictIfFull(); err != nil {
		return nil, err
	}
	p.pageCount++
	fr := &frame{id: p.pageCount, data: make([]byte, p.pageSize-checksumBytes), dirty: true, pins: 1}
	p.frames[fr.id] = fr
	p.lruTouch(fr)
	return &Page{p: p, fr: fr}, nil
}

// Truncate drops every data page past n, shrinking the file. Resident
// frames beyond n are discarded (their dirty state included) — callers
// truncate only page ranges they no longer reference.
func (p *Pager) Truncate(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 0 || n > p.pageCount {
		return fmt.Errorf("pager: truncate to %d pages out of range [0,%d]", n, p.pageCount)
	}
	for id, fr := range p.frames {
		if id > n {
			p.lruUnlink(fr)
			delete(p.frames, id)
		}
	}
	if err := p.f.Truncate(int64(n+1) * int64(p.pageSize)); err != nil {
		return err
	}
	p.pageCount = n
	p.metaDirty = true // header page count changed
	return nil
}

// FlushAll writes every dirty page and the header (when changed) back
// to the file. It does not fsync; pair with Sync for durability.
func (p *Pager) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.writeFrame(fr); err != nil {
				return err
			}
		}
	}
	return p.writeHeader()
}

// Sync fsyncs the page file.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.f.Sync()
}

// Stats returns a snapshot of pool and I/O counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Pages = p.pageCount
	s.Cached = len(p.frames)
	for _, fr := range p.frames {
		if fr.pins > 0 {
			s.Pinned++
		}
	}
	return s
}

// Close flushes dirty state, fsyncs and closes the file.
func (p *Pager) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	var firstErr error
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.writeFrame(fr); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := p.writeHeader(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	p.closed = true
	p.mu.Unlock()
	return firstErr
}

package advisor

import (
	"testing"

	"courserank/internal/catalog"
	"courserank/internal/planner"
	"courserank/internal/relation"
	"courserank/internal/requirements"
)

// fixture: CS program (intro + choose-1 systems) and HIST program
// (choose-2), with offerings across quarters carrying different peer
// outcomes.
func fixture(t *testing.T) (*Advisor, *planner.Store, map[string]int64) {
	t.Helper()
	db := relation.NewDB()
	cat, err := catalog.Setup(db)
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(cat.AddDepartment(catalog.Department{ID: "CS", Name: "CS", School: "Engineering"}))
	must(cat.AddDepartment(catalog.Department{ID: "HIST", Name: "History", School: "H&S"}))
	ids := map[string]int64{}
	add := func(key, dep, num string, units int64) {
		id, err := cat.AddCourse(catalog.Course{DepID: dep, Number: num, Title: key, Units: units})
		must(err)
		ids[key] = id
	}
	add("cs-intro", "CS", "106A", 5)
	add("cs-sys", "CS", "140", 4)
	add("cs-extra", "CS", "107", 4)
	add("hist-1", "HIST", "1", 3)
	add("hist-2", "HIST", "2", 3)
	add("calculus", "CS", "200", 3)

	// Calculus offered Autumn (overlapping intro's slot) and Winter.
	_, err = cat.AddOffering(catalog.Offering{CourseID: ids["calculus"], Year: 2008, Term: catalog.Autumn, Days: "MWF", StartMin: 600, EndMin: 650})
	must(err)
	_, err = cat.AddOffering(catalog.Offering{CourseID: ids["calculus"], Year: 2008, Term: catalog.Winter, Days: "MWF", StartMin: 600, EndMin: 650})
	must(err)
	_, err = cat.AddOffering(catalog.Offering{CourseID: ids["cs-sys"], Year: 2008, Term: catalog.Autumn, Days: "MWF", StartMin: 600, EndMin: 650})
	must(err)

	pl, err := planner.Setup(db, cat)
	must(err)
	reqs := requirements.NewRegistry()
	must(reqs.Define(requirements.Program{Name: "CS-BS", DepID: "CS", Requirements: []requirements.Requirement{
		{Name: "intro", Kind: requirements.KindAll, Courses: []int64{ids["cs-intro"]}},
		{Name: "systems", Kind: requirements.KindChoose, K: 1, Courses: []int64{ids["cs-sys"], ids["cs-extra"]}},
	}}))
	must(reqs.Define(requirements.Program{Name: "HIST-BA", DepID: "HIST", Requirements: []requirements.Requirement{
		{Name: "core", Kind: requirements.KindChoose, K: 2, Courses: []int64{ids["hist-1"], ids["hist-2"]}},
	}}))
	return New(db, cat, pl, reqs), pl, ids
}

func TestRecommendMajorsPrefersCoveredProgram(t *testing.T) {
	adv, pl, ids := fixture(t)
	su := int64(1)
	// Transcript: both CS requirements covered with A grades.
	if err := pl.Record(planner.Entry{SuID: su, CourseID: ids["cs-intro"], Year: 2007, Term: catalog.Autumn, Grade: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := pl.Record(planner.Entry{SuID: su, CourseID: ids["cs-sys"], Year: 2007, Term: catalog.Winter, Grade: "A"}); err != nil {
		t.Fatal(err)
	}
	fits := adv.RecommendMajors(su, 0)
	if len(fits) != 2 {
		t.Fatalf("fits = %+v", fits)
	}
	if fits[0].Program != "CS-BS" {
		t.Errorf("top major = %s", fits[0].Program)
	}
	if fits[0].SatisfiedReqs != 2 || fits[0].TotalReqs != 2 {
		t.Errorf("coverage = %d/%d", fits[0].SatisfiedReqs, fits[0].TotalReqs)
	}
	if fits[0].CoursesApplied != 2 {
		t.Errorf("applied = %d", fits[0].CoursesApplied)
	}
	if fits[0].AffinityGPA != 4.0 {
		t.Errorf("affinity = %v", fits[0].AffinityGPA)
	}
	if fits[0].Score <= fits[1].Score {
		t.Errorf("scores: %v", fits)
	}
}

func TestRecommendMajorsGradeAffinityBreaksTies(t *testing.T) {
	adv, pl, ids := fixture(t)
	su := int64(2)
	// One course toward each program, but As in history and Cs in CS.
	pl.Record(planner.Entry{SuID: su, CourseID: ids["cs-intro"], Year: 2007, Term: catalog.Autumn, Grade: "C"})
	pl.Record(planner.Entry{SuID: su, CourseID: ids["hist-1"], Year: 2007, Term: catalog.Autumn, Grade: "A"})
	pl.Record(planner.Entry{SuID: su, CourseID: ids["hist-2"], Year: 2007, Term: catalog.Winter, Grade: "A"})
	fits := adv.RecommendMajors(su, 1)
	if len(fits) != 1 || fits[0].Program != "HIST-BA" {
		t.Errorf("top = %+v", fits)
	}
}

func TestBestQuartersAvoidsConflicts(t *testing.T) {
	adv, pl, ids := fixture(t)
	su := int64(3)
	// Student already takes cs-sys in Autumn 2008 at the same time slot
	// as calculus's Autumn offering; Winter is free.
	if err := pl.Record(planner.Entry{SuID: su, CourseID: ids["cs-sys"], Year: 2008, Term: catalog.Autumn, Planned: true}); err != nil {
		t.Fatal(err)
	}
	// Historical peers did well in Winter.
	pl.Record(planner.Entry{SuID: 100, CourseID: ids["calculus"], Year: 2007, Term: catalog.Winter, Grade: "A"})
	pl.Record(planner.Entry{SuID: 101, CourseID: ids["calculus"], Year: 2007, Term: catalog.Autumn, Grade: "C"})

	fits, err := adv.BestQuarters(su, ids["calculus"])
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 2 {
		t.Fatalf("fits = %+v", fits)
	}
	if fits[0].Term != catalog.Winter {
		t.Errorf("best quarter = %+v", fits[0])
	}
	if fits[1].Conflicts != 1 {
		t.Errorf("autumn conflicts = %d", fits[1].Conflicts)
	}
	if fits[0].PeerGPA != 4.0 || fits[0].PeerCount != 1 {
		t.Errorf("winter peers = %+v", fits[0])
	}
}

func TestBestQuartersErrors(t *testing.T) {
	adv, _, ids := fixture(t)
	if _, err := adv.BestQuarters(1, 999999); err == nil {
		t.Error("unknown course should fail")
	}
	// cs-intro has no offerings in the fixture.
	if _, err := adv.BestQuarters(1, ids["cs-intro"]); err == nil {
		t.Error("offering-less course should fail")
	}
}

func TestRecommendMajorsEmptyTranscript(t *testing.T) {
	adv, _, _ := fixture(t)
	fits := adv.RecommendMajors(999, 0)
	if len(fits) != 2 {
		t.Fatalf("fits = %+v", fits)
	}
	for _, f := range fits {
		if f.Score != 0 || f.SatisfiedReqs != 0 {
			t.Errorf("empty transcript should score 0: %+v", f)
		}
	}
}

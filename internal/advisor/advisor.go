// Package advisor implements the advisory queries §3.2 of the paper
// sketches beyond plain course recommendation: "maybe a student is not
// looking for a course, but is looking for a major that suits the
// courses she has taken, or trying to figure out what is the best
// quarter to take a calculus course this year". RecommendMajors ranks
// degree programs by fit with a transcript; BestQuarters ranks the
// future offerings of one course by schedule fit and peer outcomes.
package advisor

import (
	"fmt"
	"sort"

	"courserank/internal/catalog"
	"courserank/internal/planner"
	"courserank/internal/relation"
	"courserank/internal/requirements"
)

// Advisor answers major- and quarter-level advisory queries.
type Advisor struct {
	cat  *catalog.Store
	plan *planner.Store
	reqs *requirements.Registry
	db   *relation.DB
}

// New wires an advisor over the shared stores.
func New(db *relation.DB, cat *catalog.Store, plan *planner.Store, reqs *requirements.Registry) *Advisor {
	return &Advisor{cat: cat, plan: plan, reqs: reqs, db: db}
}

// MajorFit scores one program against a transcript.
type MajorFit struct {
	Program string
	DepID   string
	// SatisfiedReqs / TotalReqs counts top-level requirements met.
	SatisfiedReqs, TotalReqs int
	// CoursesApplied counts transcript courses the program would use.
	CoursesApplied int
	// AffinityGPA is the student's grade-point mean in the program's
	// department (0 when no graded course there).
	AffinityGPA float64
	// Score combines requirement coverage (60%) and grade affinity
	// (40%), both in [0,1].
	Score float64
}

// RecommendMajors ranks every defined program by fit with the courses
// the student has taken: how much of the program the transcript already
// satisfies, and how well the student scores in that department — the
// "people with similar grades" angle applied to the student themself.
func (a *Advisor) RecommendMajors(suID int64, k int) []MajorFit {
	taken := a.plan.Taken(suID)
	gradeByDept := a.deptGradePoints(suID)
	var out []MajorFit
	for _, name := range a.reqs.Names() {
		prog, ok := a.reqs.Get(name)
		if !ok {
			continue
		}
		rep := requirements.Check(prog, taken, a.cat)
		fit := MajorFit{Program: prog.Name, DepID: prog.DepID, TotalReqs: len(rep.Results)}
		used := map[int64]bool{}
		var collectUsed func(rs []requirements.ReqResult)
		collectUsed = func(rs []requirements.ReqResult) {
			for _, r := range rs {
				for _, c := range r.Used {
					used[c] = true
				}
				collectUsed(r.Children)
			}
		}
		// Top-level satisfaction drives coverage; nested results only
		// contribute used courses.
		for _, r := range rep.Results {
			if r.Satisfied {
				fit.SatisfiedReqs++
			}
		}
		collectUsed(rep.Results)
		fit.CoursesApplied = len(used)
		if g, ok := gradeByDept[prog.DepID]; ok {
			fit.AffinityGPA = g
		}
		coverage := 0.0
		if fit.TotalReqs > 0 {
			coverage = float64(fit.SatisfiedReqs) / float64(fit.TotalReqs)
		}
		fit.Score = 0.6*coverage + 0.4*(fit.AffinityGPA/4.3)
		out = append(out, fit)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Program < out[j].Program
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// deptGradePoints computes the student's units-weighted grade-point
// mean per department.
func (a *Advisor) deptGradePoints(suID int64) map[string]float64 {
	pts := map[string]float64{}
	units := map[string]int64{}
	for _, e := range a.plan.Entries(suID) {
		if e.Planned {
			continue
		}
		p, ok := e.Grade.Points()
		if !ok {
			continue
		}
		c, ok := a.cat.Course(e.CourseID)
		if !ok {
			continue
		}
		pts[c.DepID] += p * float64(c.Units)
		units[c.DepID] += c.Units
	}
	out := make(map[string]float64, len(pts))
	for dep, p := range pts {
		if units[dep] > 0 {
			out[dep] = p / float64(units[dep])
		}
	}
	return out
}

// QuarterFit scores one candidate quarter for taking a course.
type QuarterFit struct {
	Year int64
	Term catalog.Term
	// Conflicts counts schedule collisions with the student's existing
	// entries in that quarter.
	Conflicts int
	// UnitLoad is the student's load that quarter if the course is added.
	UnitLoad int64
	// PeerGPA is the mean grade-point outcome of students who took this
	// course in this term historically (0 when unknown).
	PeerGPA float64
	// PeerCount is how many outcomes PeerGPA averages.
	PeerCount int
	// Score ranks candidates: conflict-free light quarters with strong
	// peer outcomes first.
	Score float64
}

// BestQuarters ranks the quarters in which the course is offered by how
// well they suit the student: no schedule conflicts, sane unit load,
// and good historical outcomes of peers who took it in that term — the
// paper's "what is the best quarter to take a calculus course this
// year" query.
func (a *Advisor) BestQuarters(suID, courseID int64) ([]QuarterFit, error) {
	course, ok := a.cat.Course(courseID)
	if !ok {
		return nil, fmt.Errorf("advisor: unknown course %d", courseID)
	}
	offerings := a.cat.Offerings(courseID)
	if len(offerings) == 0 {
		return nil, fmt.Errorf("advisor: course %d has no offerings", courseID)
	}
	termOutcome, termCount := a.peerOutcomesByTerm(courseID)

	seen := map[planner.Quarter]bool{}
	var out []QuarterFit
	for _, off := range offerings {
		q := planner.Quarter{Year: off.Year, Term: off.Term}
		if seen[q] {
			continue
		}
		seen[q] = true
		fit := QuarterFit{Year: off.Year, Term: off.Term}
		// Conflicts against the student's existing entries that quarter.
		for _, e := range a.plan.Entries(suID) {
			if e.Year != off.Year || e.Term != off.Term {
				continue
			}
			for _, other := range a.cat.Offerings(e.CourseID) {
				if other.Year == off.Year && other.Term == off.Term && off.Overlaps(other) {
					fit.Conflicts++
					break
				}
			}
		}
		fit.UnitLoad = a.plan.UnitLoad(suID, off.Year, off.Term) + course.Units
		fit.PeerGPA = termOutcome[off.Term]
		fit.PeerCount = termCount[off.Term]
		fit.Score = fit.PeerGPA - 5*float64(fit.Conflicts)
		if fit.UnitLoad > planner.MaxUnitsPerQuarter {
			fit.Score -= float64(fit.UnitLoad - planner.MaxUnitsPerQuarter)
		}
		out = append(out, fit)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Year != out[j].Year {
			return out[i].Year < out[j].Year
		}
		return catalog.TermIndex(out[i].Term) < catalog.TermIndex(out[j].Term)
	})
	return out, nil
}

// peerOutcomesByTerm averages historical self-reported grade points for
// the course per term, from the shared Enrollments table.
func (a *Advisor) peerOutcomesByTerm(courseID int64) (map[catalog.Term]float64, map[catalog.Term]int) {
	sums := map[catalog.Term]float64{}
	counts := map[catalog.Term]int{}
	enroll, ok := a.db.Table("Enrollments")
	if !ok {
		return map[catalog.Term]float64{}, counts
	}
	sch := enroll.Schema()
	gr, pl, tm := sch.MustIndex("Grade"), sch.MustIndex("Planned"), sch.MustIndex("Term")
	for _, r := range enroll.Lookup("CourseID", courseID) {
		if r[pl].(bool) || r[gr] == nil {
			continue
		}
		p, ok := catalog.Grade(r[gr].(string)).Points()
		if !ok {
			continue
		}
		term := catalog.Term(r[tm].(string))
		sums[term] += p
		counts[term]++
	}
	out := make(map[catalog.Term]float64, len(sums))
	for t, s := range sums {
		out[t] = s / float64(counts[t])
	}
	return out, counts
}

package planner

import (
	"math"
	"testing"

	"courserank/internal/catalog"
	"courserank/internal/relation"
)

// fixture builds a catalog with four courses and offerings, plus a
// planner store.
func fixture(t *testing.T) (*Store, *catalog.Store, map[string]int64) {
	t.Helper()
	db := relation.NewDB()
	cat, err := catalog.Setup(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDepartment(catalog.Department{ID: "CS", Name: "CS", School: "Engineering"}); err != nil {
		t.Fatal(err)
	}
	ids := map[string]int64{}
	add := func(key, num, title string, units int64) {
		id, err := cat.AddCourse(catalog.Course{DepID: "CS", Number: num, Title: title, Units: units})
		if err != nil {
			t.Fatal(err)
		}
		ids[key] = id
	}
	add("intro", "106A", "Programming Methodology", 5)
	add("abstr", "106B", "Programming Abstractions", 5)
	add("os", "140", "Operating Systems", 4)
	add("db", "145", "Databases", 4)
	// 106A and OS meet at overlapping times in Autumn 2008.
	mustOffer := func(course int64, term catalog.Term, days string, start, end int64) {
		if _, err := cat.AddOffering(catalog.Offering{CourseID: course, Year: 2008, Term: term, Days: days, StartMin: start, EndMin: end}); err != nil {
			t.Fatal(err)
		}
	}
	mustOffer(ids["intro"], catalog.Autumn, "MWF", 600, 650)
	mustOffer(ids["os"], catalog.Autumn, "MW", 630, 710)
	mustOffer(ids["db"], catalog.Autumn, "TR", 600, 675)
	if err := cat.AddPrereq(ids["abstr"], ids["intro"]); err != nil {
		t.Fatal(err)
	}
	p, err := Setup(db, cat)
	if err != nil {
		t.Fatal(err)
	}
	return p, cat, ids
}

func TestRecordValidation(t *testing.T) {
	p, _, ids := fixture(t)
	ok := Entry{SuID: 1, CourseID: ids["intro"], Year: 2008, Term: catalog.Autumn, Grade: "A"}
	if err := p.Record(ok); err != nil {
		t.Fatal(err)
	}
	if err := p.Record(ok); err == nil {
		t.Error("duplicate entry should fail")
	}
	bad := []Entry{
		{SuID: 1, CourseID: 999, Year: 2008, Term: catalog.Autumn},
		{SuID: 1, CourseID: ids["os"], Year: 2008, Term: "Fall"},
		{SuID: 1, CourseID: ids["os"], Year: 2008, Term: catalog.Autumn, Grade: "Z"},
		{SuID: 1, CourseID: ids["os"], Year: 2009, Term: catalog.Autumn, Grade: "A", Planned: true},
	}
	for i, e := range bad {
		if err := p.Record(e); err == nil {
			t.Errorf("bad entry %d accepted", i)
		}
	}
}

func TestGPAComputation(t *testing.T) {
	p, _, ids := fixture(t)
	// A in 5-unit intro, B in 4-unit OS → (4.0*5 + 3.0*4) / 9.
	p.Record(Entry{SuID: 1, CourseID: ids["intro"], Year: 2008, Term: catalog.Autumn, Grade: "A"})
	p.Record(Entry{SuID: 1, CourseID: ids["os"], Year: 2008, Term: catalog.Autumn, Grade: "B"})
	// Ungraded entry is excluded from GPA but counts units in UnitLoad.
	p.Record(Entry{SuID: 1, CourseID: ids["db"], Year: 2008, Term: catalog.Autumn})
	gpa, units := p.QuarterGPA(1, 2008, catalog.Autumn)
	want := (4.0*5 + 3.0*4) / 9.0
	if units != 9 || math.Abs(gpa-want) > 1e-9 {
		t.Errorf("QuarterGPA = %v (%d units), want %v (9)", gpa, units, want)
	}
	cum, cu := p.CumulativeGPA(1)
	if cu != 9 || math.Abs(cum-want) > 1e-9 {
		t.Errorf("CumulativeGPA = %v (%d)", cum, cu)
	}
	if load := p.UnitLoad(1, 2008, catalog.Autumn); load != 13 {
		t.Errorf("UnitLoad = %d, want 13", load)
	}
	if g, u := p.QuarterGPA(1, 2009, catalog.Winter); g != 0 || u != 0 {
		t.Error("empty quarter GPA should be 0,0")
	}
}

func TestConflicts(t *testing.T) {
	p, _, ids := fixture(t)
	p.Record(Entry{SuID: 1, CourseID: ids["intro"], Year: 2008, Term: catalog.Autumn, Planned: true})
	p.Record(Entry{SuID: 1, CourseID: ids["os"], Year: 2008, Term: catalog.Autumn, Planned: true})
	p.Record(Entry{SuID: 1, CourseID: ids["db"], Year: 2008, Term: catalog.Autumn, Planned: true})
	conflicts := p.Conflicts(1, 2008, catalog.Autumn)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v", conflicts)
	}
	got := map[int64]bool{conflicts[0].A.CourseID: true, conflicts[0].B.CourseID: true}
	if !got[ids["intro"]] || !got[ids["os"]] {
		t.Errorf("conflict pair = %v", got)
	}
}

func TestPrereqValidation(t *testing.T) {
	p, _, ids := fixture(t)
	// Abstractions planned before intro: violation.
	p.Record(Entry{SuID: 1, CourseID: ids["abstr"], Year: 2008, Term: catalog.Autumn, Planned: true})
	v := p.ValidatePrereqs(1)
	if len(v) != 1 || v[0].CourseID != ids["abstr"] || v[0].RequiresID != ids["intro"] {
		t.Fatalf("violations = %v", v)
	}
	// Taking intro in an earlier quarter fixes it.
	p.Drop(1, ids["abstr"], 2008, catalog.Autumn)
	p.Record(Entry{SuID: 1, CourseID: ids["intro"], Year: 2008, Term: catalog.Autumn, Grade: "A"})
	p.Record(Entry{SuID: 1, CourseID: ids["abstr"], Year: 2008, Term: catalog.Winter, Planned: true})
	if v := p.ValidatePrereqs(1); len(v) != 0 {
		t.Errorf("violations after fix = %v", v)
	}
	// Same-quarter prereq still violates (must be strictly earlier).
	p.Drop(1, ids["abstr"], 2008, catalog.Winter)
	p.Record(Entry{SuID: 1, CourseID: ids["abstr"], Year: 2008, Term: catalog.Autumn, Planned: true})
	if v := p.ValidatePrereqs(1); len(v) != 1 {
		t.Errorf("same-quarter prereq should violate: %v", v)
	}
}

func TestPlannedByHonorsPrivacy(t *testing.T) {
	p, _, ids := fixture(t)
	p.Record(Entry{SuID: 1, CourseID: ids["db"], Year: 2008, Term: catalog.Autumn, Planned: true})
	p.Record(Entry{SuID: 2, CourseID: ids["db"], Year: 2008, Term: catalog.Autumn, Planned: true})
	p.Record(Entry{SuID: 3, CourseID: ids["db"], Year: 2008, Term: catalog.Autumn, Grade: "A"}) // taken, not planned
	all := p.PlannedBy(ids["db"], nil)
	if len(all) != 2 {
		t.Fatalf("PlannedBy = %v", all)
	}
	// Student 2 opted out.
	vis := p.PlannedBy(ids["db"], func(su int64) bool { return su != 2 })
	if len(vis) != 1 || vis[0] != 1 {
		t.Errorf("visible = %v", vis)
	}
}

func TestDrop(t *testing.T) {
	p, _, ids := fixture(t)
	p.Record(Entry{SuID: 1, CourseID: ids["db"], Year: 2008, Term: catalog.Autumn, Planned: true})
	if !p.Drop(1, ids["db"], 2008, catalog.Autumn) {
		t.Error("Drop should succeed")
	}
	if p.Drop(1, ids["db"], 2008, catalog.Autumn) {
		t.Error("second Drop should report false")
	}
	if len(p.Entries(1)) != 0 {
		t.Error("entries should be empty")
	}
}

func TestOverloadedQuarters(t *testing.T) {
	p, cat, ids := fixture(t)
	// Add big courses to exceed 20 units.
	for i := 0; i < 3; i++ {
		id, _ := cat.AddCourse(catalog.Course{DepID: "CS", Number: "X" + string(rune('0'+i)), Title: "Big", Units: 5})
		p.Record(Entry{SuID: 1, CourseID: id, Year: 2008, Term: catalog.Spring, Planned: true})
	}
	p.Record(Entry{SuID: 1, CourseID: ids["intro"], Year: 2008, Term: catalog.Spring, Planned: true})
	p.Record(Entry{SuID: 1, CourseID: ids["abstr"], Year: 2008, Term: catalog.Spring, Planned: true})
	got := p.OverloadedQuarters(1)
	if len(got) != 1 || got[0].Term != catalog.Spring {
		t.Errorf("OverloadedQuarters = %v", got)
	}
}

func TestPlanAssembly(t *testing.T) {
	p, _, ids := fixture(t)
	p.Record(Entry{SuID: 1, CourseID: ids["intro"], Year: 2008, Term: catalog.Autumn, Grade: "A"})
	p.Record(Entry{SuID: 1, CourseID: ids["abstr"], Year: 2008, Term: catalog.Winter, Grade: "B+"})
	p.Record(Entry{SuID: 1, CourseID: ids["os"], Year: 2009, Term: catalog.Autumn, Planned: true})
	plan := p.Plan(1)
	if len(plan.Quarters) != 3 {
		t.Fatalf("quarters = %d", len(plan.Quarters))
	}
	// Chronological order.
	if plan.Quarters[0].Term != catalog.Autumn || plan.Quarters[0].Year != 2008 {
		t.Errorf("q0 = %+v", plan.Quarters[0])
	}
	if plan.Quarters[1].Term != catalog.Winter {
		t.Errorf("q1 = %+v", plan.Quarters[1])
	}
	if !plan.Quarters[0].HasGPA || plan.Quarters[0].GPA != 4.0 {
		t.Errorf("q0 GPA = %+v", plan.Quarters[0])
	}
	if plan.Quarters[2].HasGPA {
		t.Error("planned quarter should have no GPA")
	}
	if plan.Units != 10 {
		t.Errorf("total graded units = %d", plan.Units)
	}
	wantGPA := (4.0*5 + 3.3*5) / 10
	if math.Abs(plan.GPA-wantGPA) > 1e-9 {
		t.Errorf("cumulative = %v, want %v", plan.GPA, wantGPA)
	}
}

// Package planner implements CourseRank's course planner (§2.1 "New
// Tools", Figure 1 right): students record courses taken (with
// self-reported grades) and courses planned, organize them into
// quarterly schedules and multi-year plans, detect schedule conflicts,
// compute per-quarter and cumulative GPAs, and validate prerequisite
// order. The planner is the paper's flagship "sticky" incentive: it is
// useful enough that students enter accurate data (§2.2).
package planner

import (
	"fmt"
	"sort"

	"courserank/internal/catalog"
	"courserank/internal/relation"
)

// Entry is one course on a student's record: either taken (with an
// optional self-reported grade) or planned for a future quarter.
type Entry struct {
	SuID     int64
	CourseID int64
	Year     int64
	Term     catalog.Term
	Grade    catalog.Grade // taken entries only; "" when ungraded
	Planned  bool
}

// Store provides typed access to enrollment and plan data.
type Store struct {
	db  *relation.DB
	cat *catalog.Store
}

// Setup creates the planner tables.
func Setup(db *relation.DB, cat *catalog.Store) (*Store, error) {
	enroll := relation.MustTable("Enrollments",
		relation.NewSchema(
			relation.NotNullCol("SuID", relation.TypeInt),
			relation.NotNullCol("CourseID", relation.TypeInt),
			relation.NotNullCol("Year", relation.TypeInt),
			relation.NotNullCol("Term", relation.TypeString),
			relation.Col("Grade", relation.TypeString),
			relation.NotNullCol("Planned", relation.TypeBool),
		), relation.WithIndex("SuID"), relation.WithIndex("CourseID"))
	if _, err := db.Ensure(enroll); err != nil {
		return nil, err
	}
	return &Store{db: db, cat: cat}, nil
}

// Open wraps a database whose planner tables already exist.
func Open(db *relation.DB, cat *catalog.Store) *Store { return &Store{db: db, cat: cat} }

// Record adds an entry to a student's record. Grades are validated;
// planned entries cannot carry grades; duplicates (same student, course,
// quarter) are rejected.
func (s *Store) Record(e Entry) error {
	if _, ok := s.cat.Course(e.CourseID); !ok {
		return fmt.Errorf("planner: unknown course %d", e.CourseID)
	}
	if catalog.TermIndex(e.Term) < 0 {
		return fmt.Errorf("planner: unknown term %q", e.Term)
	}
	if e.Planned && e.Grade != "" {
		return fmt.Errorf("planner: planned courses cannot have grades")
	}
	if e.Grade != "" && !e.Grade.Valid() {
		return fmt.Errorf("planner: unknown grade %q", e.Grade)
	}
	for _, x := range s.Entries(e.SuID) {
		if x.CourseID == e.CourseID && x.Year == e.Year && x.Term == e.Term {
			return fmt.Errorf("planner: duplicate entry for course %d in %s %d", e.CourseID, e.Term, e.Year)
		}
	}
	var grade relation.Value
	if e.Grade != "" {
		grade = string(e.Grade)
	}
	_, err := s.db.MustTable("Enrollments").Insert(relation.Row{e.SuID, e.CourseID, e.Year, string(e.Term), grade, e.Planned})
	return err
}

// Drop removes an entry, reporting whether it existed. A durable-write
// failure reports false — the entry is still there.
func (s *Store) Drop(suID, courseID, year int64, term catalog.Term) bool {
	n, err := s.db.MustTable("Enrollments").DeleteWhere(func(r relation.Row) bool {
		return r[0] == suID && r[1] == courseID && r[2] == year && r[3] == string(term)
	})
	return err == nil && n > 0
}

func entryFromRow(r relation.Row) Entry {
	var g catalog.Grade
	if r[4] != nil {
		g = catalog.Grade(r[4].(string))
	}
	return Entry{
		SuID: r[0].(int64), CourseID: r[1].(int64), Year: r[2].(int64),
		Term: catalog.Term(r[3].(string)), Grade: g, Planned: r[5].(bool),
	}
}

// Entries returns a student's full record, ordered chronologically.
func (s *Store) Entries(suID int64) []Entry {
	rows := s.db.MustTable("Enrollments").Lookup("SuID", suID)
	out := make([]Entry, len(rows))
	for i, r := range rows {
		out[i] = entryFromRow(r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Year != out[b].Year {
			return out[a].Year < out[b].Year
		}
		ta, tb := catalog.TermIndex(out[a].Term), catalog.TermIndex(out[b].Term)
		if ta != tb {
			return ta < tb
		}
		return out[a].CourseID < out[b].CourseID
	})
	return out
}

// Taken returns the ids of courses the student has completed.
func (s *Store) Taken(suID int64) []int64 {
	var out []int64
	for _, e := range s.Entries(suID) {
		if !e.Planned {
			out = append(out, e.CourseID)
		}
	}
	return out
}

// PlannedBy returns the students planning to take a course, honoring
// each student's privacy choice via the shareOK callback (§2.2: "we
// allowed students to see who is planning to take a class (one can opt
// out of sharing)").
func (s *Store) PlannedBy(courseID int64, shareOK func(suID int64) bool) []int64 {
	var out []int64
	seen := map[int64]bool{}
	for _, r := range s.db.MustTable("Enrollments").Lookup("CourseID", courseID) {
		e := entryFromRow(r)
		if !e.Planned || seen[e.SuID] {
			continue
		}
		seen[e.SuID] = true
		if shareOK == nil || shareOK(e.SuID) {
			out = append(out, e.SuID)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// QuarterGPA computes the units-weighted GPA of one quarter of a
// student's record, with the units that counted. Ungraded and planned
// entries are excluded.
func (s *Store) QuarterGPA(suID, year int64, term catalog.Term) (gpa float64, units int64) {
	var pts float64
	for _, e := range s.Entries(suID) {
		if e.Year != year || e.Term != term || e.Planned {
			continue
		}
		p, ok := e.Grade.Points()
		if !ok {
			continue
		}
		c, _ := s.cat.Course(e.CourseID)
		pts += p * float64(c.Units)
		units += c.Units
	}
	if units == 0 {
		return 0, 0
	}
	return pts / float64(units), units
}

// CumulativeGPA computes the units-weighted GPA over the whole record.
func (s *Store) CumulativeGPA(suID int64) (gpa float64, units int64) {
	var pts float64
	for _, e := range s.Entries(suID) {
		if e.Planned {
			continue
		}
		p, ok := e.Grade.Points()
		if !ok {
			continue
		}
		c, _ := s.cat.Course(e.CourseID)
		pts += p * float64(c.Units)
		units += c.Units
	}
	if units == 0 {
		return 0, 0
	}
	return pts / float64(units), units
}

// Conflict describes two offerings that meet at overlapping times.
type Conflict struct {
	A, B catalog.Offering
}

// Conflicts finds schedule conflicts among the offerings of the courses
// a student has planned or taken in one quarter. Courses without a
// scheduled offering that quarter are skipped; for multi-offering
// courses the first offering is assumed.
func (s *Store) Conflicts(suID, year int64, term catalog.Term) []Conflict {
	var offs []catalog.Offering
	for _, e := range s.Entries(suID) {
		if e.Year != year || e.Term != term {
			continue
		}
		for _, o := range s.cat.Offerings(e.CourseID) {
			if o.Year == year && o.Term == term {
				offs = append(offs, o)
				break
			}
		}
	}
	var out []Conflict
	for i := 0; i < len(offs); i++ {
		for j := i + 1; j < len(offs); j++ {
			if offs[i].Overlaps(offs[j]) {
				out = append(out, Conflict{A: offs[i], B: offs[j]})
			}
		}
	}
	return out
}

// UnitLoad sums the units of one quarter's entries.
func (s *Store) UnitLoad(suID, year int64, term catalog.Term) int64 {
	var units int64
	for _, e := range s.Entries(suID) {
		if e.Year != year || e.Term != term {
			continue
		}
		c, _ := s.cat.Course(e.CourseID)
		units += c.Units
	}
	return units
}

// MaxUnitsPerQuarter is the registrar's normal unit cap; OverloadedQuarters
// flags quarters above it.
const MaxUnitsPerQuarter = 20

// Quarter identifies one academic quarter.
type Quarter struct {
	Year int64
	Term catalog.Term
}

// OverloadedQuarters returns the quarters whose unit load exceeds
// MaxUnitsPerQuarter.
func (s *Store) OverloadedQuarters(suID int64) []Quarter {
	loads := map[Quarter]int64{}
	for _, e := range s.Entries(suID) {
		c, _ := s.cat.Course(e.CourseID)
		loads[Quarter{e.Year, e.Term}] += c.Units
	}
	var out []Quarter
	for q, u := range loads {
		if u > MaxUnitsPerQuarter {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Year != out[b].Year {
			return out[a].Year < out[b].Year
		}
		return catalog.TermIndex(out[a].Term) < catalog.TermIndex(out[b].Term)
	})
	return out
}

// PrereqViolation reports a course scheduled before (or without) one of
// its prerequisites.
type PrereqViolation struct {
	CourseID   int64
	RequiresID int64
	Year       int64
	Term       catalog.Term
}

// ValidatePrereqs checks that every entry's prerequisites are completed
// or scheduled in a strictly earlier quarter.
func (s *Store) ValidatePrereqs(suID int64) []PrereqViolation {
	entries := s.Entries(suID)
	// Earliest quarter each course appears in.
	pos := map[int64]int64{} // courseID → year*4 + term index
	for _, e := range entries {
		key := e.Year*4 + int64(catalog.TermIndex(e.Term))
		if old, ok := pos[e.CourseID]; !ok || key < old {
			pos[e.CourseID] = key
		}
	}
	var out []PrereqViolation
	for _, e := range entries {
		ekey := e.Year*4 + int64(catalog.TermIndex(e.Term))
		if pos[e.CourseID] != ekey {
			continue // only check the first occurrence
		}
		for _, req := range s.cat.Prereqs(e.CourseID) {
			rkey, taken := pos[req]
			if !taken || rkey >= ekey {
				out = append(out, PrereqViolation{CourseID: e.CourseID, RequiresID: req, Year: e.Year, Term: e.Term})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].CourseID != out[b].CourseID {
			return out[a].CourseID < out[b].CourseID
		}
		return out[a].RequiresID < out[b].RequiresID
	})
	return out
}

// FourYearPlan lays a student's record out as the Figure-1-style grid:
// quarters in chronological order with their entries, unit loads, and
// quarter GPAs.
type FourYearPlan struct {
	SuID     int64
	Quarters []PlanQuarter
	GPA      float64
	Units    int64
}

// PlanQuarter is one cell row of the plan grid.
type PlanQuarter struct {
	Year    int64
	Term    catalog.Term
	Entries []Entry
	Units   int64
	GPA     float64
	HasGPA  bool
}

// Plan assembles the student's full multi-year plan.
func (s *Store) Plan(suID int64) FourYearPlan {
	entries := s.Entries(suID)
	var quarters []PlanQuarter
	index := map[Quarter]int{}
	for _, e := range entries {
		q := Quarter{e.Year, e.Term}
		i, ok := index[q]
		if !ok {
			i = len(quarters)
			index[q] = i
			quarters = append(quarters, PlanQuarter{Year: e.Year, Term: e.Term})
		}
		quarters[i].Entries = append(quarters[i].Entries, e)
	}
	for i := range quarters {
		quarters[i].Units = s.UnitLoad(suID, quarters[i].Year, quarters[i].Term)
		gpa, units := s.QuarterGPA(suID, quarters[i].Year, quarters[i].Term)
		if units > 0 {
			quarters[i].GPA, quarters[i].HasGPA = gpa, true
		}
	}
	cum, units := s.CumulativeGPA(suID)
	return FourYearPlan{SuID: suID, Quarters: quarters, GPA: cum, Units: units}
}

package relation

import (
	"fmt"
	"sort"
	"sync"
)

// DB is a named collection of tables — the database instance the rest of
// CourseRank (SQL engine, FlexRecs, search indexing) operates on.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	store  Storage  // nil = ephemeral; set once via attachStorage before serving
	clock  *txClock // transaction-ID allocator + committed-snapshot watermark
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table), clock: newTxClock()}
}

// attachStorage wires s behind every current table and every table
// created afterwards. Called while the DB is quiescent (open, Bulk).
func (db *DB) attachStorage(s Storage) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store = s
	box := &storageBox{s: s}
	for _, t := range db.tables {
		t.store.Store(box)
		t.clock = db.clock
	}
}

// detachStorage unwires the backend, returning every table to the
// ephemeral fast path. Called while the DB is quiescent.
func (db *DB) detachStorage() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store = nil
	for _, t := range db.tables {
		t.store.Store(nil)
	}
}

// Create registers a table. It fails if a table with the same
// (case-sensitive) name already exists. On a durable DB the definition
// is journaled before Create returns.
func (db *DB) Create(t *Table) error {
	db.mu.Lock()
	s := db.store
	if s == nil {
		defer db.mu.Unlock()
		if _, dup := db.tables[t.name]; dup {
			return fmt.Errorf("relation: table %q already exists", t.name)
		}
		t.clock = db.clock
		db.tables[t.name] = t
		return nil
	}
	// Durable path: the checkpoint gate must be entered before db.mu
	// (lock order gate → db.mu → table.mu), so release and retake.
	db.mu.Unlock()
	s.BeginMutate()
	db.mu.Lock()
	if _, dup := db.tables[t.name]; dup {
		db.mu.Unlock()
		s.EndMutate()
		return fmt.Errorf("relation: table %q already exists", t.name)
	}
	lsn, err := s.LogCreate(t)
	if err != nil {
		db.mu.Unlock()
		s.EndMutate()
		return err
	}
	t.store.Store(&storageBox{s: s})
	t.clock = db.clock
	db.tables[t.name] = t
	db.mu.Unlock()
	s.EndMutate()
	return s.WaitDurable(lsn)
}

// MustCreate registers a table and panics on conflict; for schema setup.
func (db *DB) MustCreate(t *Table) *Table {
	if err := db.Create(t); err != nil {
		panic(err)
	}
	return t
}

// Ensure registers t unless a table with the same name already exists,
// in which case the existing table is returned after verifying its
// shape matches t's (columns, primary key, auto-increment, index set).
// Subsystem Setup functions go through Ensure so they are idempotent:
// on a freshly opened durable database the tables already exist from
// recovery, and Setup must adopt them rather than fail.
func (db *DB) Ensure(t *Table) (*Table, error) {
	if existing, ok := db.Table(t.name); ok {
		if err := schemaEquiv(existing, t); err != nil {
			return nil, fmt.Errorf("relation: table %q exists with different shape: %w", t.name, err)
		}
		return existing, nil
	}
	if err := db.Create(t); err != nil {
		return nil, err
	}
	return t, nil
}

// MustEnsure is Ensure that panics on error; for statically known schemas.
func (db *DB) MustEnsure(t *Table) *Table {
	got, err := db.Ensure(t)
	if err != nil {
		panic(err)
	}
	return got
}

// schemaEquiv reports whether two tables have the same shape. Ordered
// indexes may exist on `have` beyond `want`'s — AddOrderedIndex is
// legal at runtime, so a recovered table may have accumulated more.
func schemaEquiv(have, want *Table) error {
	hs, ws := have.Schema(), want.Schema()
	if hs.Len() != ws.Len() {
		return fmt.Errorf("%d columns vs %d", hs.Len(), ws.Len())
	}
	for i := 0; i < ws.Len(); i++ {
		hc, wc := hs.Column(i), ws.Column(i)
		if hc.Name != wc.Name || hc.Type != wc.Type || hc.NotNull != wc.NotNull {
			return fmt.Errorf("column %d is %s %s, want %s %s", i, hc.Name, hc.Type, wc.Name, wc.Type)
		}
	}
	if !equalStrings(have.PrimaryKey(), want.PrimaryKey()) {
		return fmt.Errorf("primary key %v vs %v", have.PrimaryKey(), want.PrimaryKey())
	}
	if have.AutoIncrement() != want.AutoIncrement() {
		return fmt.Errorf("auto-increment %q vs %q", have.AutoIncrement(), want.AutoIncrement())
	}
	if !equalStrings(have.SecondaryIndexes(), want.SecondaryIndexes()) {
		return fmt.Errorf("indexes %v vs %v", have.SecondaryIndexes(), want.SecondaryIndexes())
	}
	for _, col := range want.OrderedIndexes() {
		if !have.HasOrderedIndex(col) {
			return fmt.Errorf("missing ordered index on %s", col)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// MustTable returns the named table, panicking if absent; for tables the
// program itself created.
func (db *DB) MustTable(name string) *Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("relation: no table %q", name))
	}
	return t
}

// Drop removes the named table, reporting whether it existed. On a
// durable DB the drop is journaled; a WAL failure leaves the table in
// place and reports false.
func (db *DB) Drop(name string) bool {
	db.mu.Lock()
	s := db.store
	if s == nil {
		defer db.mu.Unlock()
		_, ok := db.tables[name]
		delete(db.tables, name)
		return ok
	}
	db.mu.Unlock()
	s.BeginMutate()
	db.mu.Lock()
	t, ok := db.tables[name]
	if !ok {
		db.mu.Unlock()
		s.EndMutate()
		return false
	}
	lsn, err := s.LogDrop(name)
	if err != nil {
		db.mu.Unlock()
		s.EndMutate()
		return false
	}
	t.store.Store(nil)
	delete(db.tables, name)
	db.mu.Unlock()
	s.EndMutate()
	s.WaitDurable(lsn)
	return true
}

// Names returns the table names in sorted order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package relation

import (
	"fmt"
	"sort"
	"sync"
)

// DB is a named collection of tables — the database instance the rest of
// CourseRank (SQL engine, FlexRecs, search indexing) operates on.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Create registers a table. It fails if a table with the same
// (case-sensitive) name already exists.
func (db *DB) Create(t *Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[t.name]; dup {
		return fmt.Errorf("relation: table %q already exists", t.name)
	}
	db.tables[t.name] = t
	return nil
}

// MustCreate registers a table and panics on conflict; for schema setup.
func (db *DB) MustCreate(t *Table) *Table {
	if err := db.Create(t); err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// MustTable returns the named table, panicking if absent; for tables the
// program itself created.
func (db *DB) MustTable(name string) *Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("relation: no table %q", name))
	}
	return t
}

// Drop removes the named table, reporting whether it existed.
func (db *DB) Drop(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.tables[name]
	delete(db.tables, name)
	return ok
}

// Names returns the table names in sorted order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

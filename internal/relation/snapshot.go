package relation

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot persistence: a database serializes to a stream of JSON lines
// — one header object per table (schema, keys, indexes) followed by its
// rows — and loads back into an equivalent database. CourseRank uses it
// to checkpoint generated deployments and to ship fixtures.

// snapshotHeader describes one table in the stream.
type snapshotHeader struct {
	Table   string       `json:"table"`
	Columns []columnJSON `json:"columns"`
	PK      []string     `json:"pk,omitempty"`
	AutoInc string       `json:"autoInc,omitempty"`
	Indexes []string     `json:"indexes,omitempty"`
	Ordered []string     `json:"ordered,omitempty"`
	Rows    int          `json:"rows"`
}

type columnJSON struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	NotNull bool   `json:"notNull,omitempty"`
}

var typeByName = map[string]Type{
	"INT": TypeInt, "FLOAT": TypeFloat, "TEXT": TypeString, "BOOL": TypeBool,
}

// Save writes the whole database to w as JSON lines, tables in sorted
// name order, rows in slot order.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, name := range db.Names() {
		t, _ := db.Table(name)
		head := headerFor(t)
		if err := enc.Encode(head); err != nil {
			return err
		}
		var encErr error
		t.Scan(func(_ int, row Row) bool {
			encErr = enc.Encode([]Value(row))
			return encErr == nil
		})
		if encErr != nil {
			return encErr
		}
	}
	return bw.Flush()
}

// tableFromHeader materializes an empty table matching a stream
// header's declared shape. Shared by snapshot Load and the durable
// backend's recovery paths (checkpoint load, CREATE-record replay).
func tableFromHeader(head snapshotHeader) (*Table, error) {
	cols := make([]Column, len(head.Columns))
	for i, c := range head.Columns {
		typ, ok := typeByName[c.Type]
		if !ok {
			return nil, fmt.Errorf("table %s: unknown type %q", head.Table, c.Type)
		}
		cols[i] = Column{Name: c.Name, Type: typ, NotNull: c.NotNull}
	}
	var opts []TableOption
	if len(head.PK) > 0 {
		opts = append(opts, WithPrimaryKey(head.PK...))
	}
	if head.AutoInc != "" {
		opts = append(opts, WithAutoIncrement(head.AutoInc))
	}
	for _, ix := range head.Indexes {
		opts = append(opts, WithIndex(ix))
	}
	for _, ix := range head.Ordered {
		opts = append(opts, WithOrderedIndex(ix))
	}
	t, err := NewTable(head.Table, NewSchema(cols...), opts...)
	if err != nil {
		return nil, fmt.Errorf("table %s: %w", head.Table, err)
	}
	return t, nil
}

// headerFor builds the stream header describing t. Shared by Save and
// the durable backend (checkpoint snapshots, CREATE records).
func headerFor(t *Table) snapshotHeader {
	head := snapshotHeader{
		Table:   t.Name(),
		PK:      t.PrimaryKey(),
		AutoInc: t.AutoIncrement(),
		Indexes: t.SecondaryIndexes(),
		Ordered: t.OrderedIndexes(),
		Rows:    t.Len(),
	}
	for _, c := range t.Schema().Columns() {
		head.Columns = append(head.Columns, columnJSON{Name: c.Name, Type: c.Type.String(), NotNull: c.NotNull})
	}
	return head
}

// Load reads a Save stream into a fresh database. Decode failures are
// reported with the offending table and the 1-based line number in the
// stream, so a corrupt or truncated snapshot points at where it broke.
func Load(r io.Reader) (*DB, error) {
	db := NewDB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	line := 0
	next := func() ([]byte, bool, error) {
		if !sc.Scan() {
			return nil, false, sc.Err()
		}
		line++
		return sc.Bytes(), true, nil
	}
	for {
		buf, ok, err := next()
		if err != nil {
			return nil, fmt.Errorf("relation: snapshot line %d: %w", line+1, err)
		}
		if !ok {
			return db, nil
		}
		if len(bytes.TrimSpace(buf)) == 0 {
			continue
		}
		var head snapshotHeader
		if err := json.Unmarshal(buf, &head); err != nil {
			return nil, fmt.Errorf("relation: snapshot line %d: bad table header: %w", line, err)
		}
		t, err := tableFromHeader(head)
		if err != nil {
			return nil, fmt.Errorf("relation: snapshot line %d: %w", line, err)
		}
		if err := db.Create(t); err != nil {
			return nil, fmt.Errorf("relation: snapshot line %d: %w", line, err)
		}
		cols := t.Schema().Columns()
		for i := 0; i < head.Rows; i++ {
			buf, ok, err := next()
			if err != nil {
				return nil, fmt.Errorf("relation: snapshot line %d: table %s: %w", line+1, head.Table, err)
			}
			if !ok {
				return nil, fmt.Errorf("relation: snapshot line %d: table %s: truncated stream: got %d of %d rows", line, head.Table, i, head.Rows)
			}
			var raw []json.RawMessage
			if err := json.Unmarshal(buf, &raw); err != nil {
				return nil, fmt.Errorf("relation: snapshot line %d: table %s row %d: %w", line, head.Table, i, err)
			}
			if len(raw) != len(cols) {
				return nil, fmt.Errorf("%w: snapshot line %d: table %s row %d has %d cells", ErrArity, line, head.Table, i, len(raw))
			}
			row := make(Row, len(raw))
			for j, cell := range raw {
				v, err := decodeCell(cell, cols[j].Type)
				if err != nil {
					return nil, fmt.Errorf("relation: snapshot line %d: table %s row %d col %s: %w", line, head.Table, i, cols[j].Name, err)
				}
				row[j] = v
			}
			if _, err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("relation: snapshot line %d: table %s row %d: %w", line, head.Table, i, err)
			}
		}
	}
}

// decodeCell parses one JSON cell into the canonical value for the
// column type. JSON numbers arrive as float64; INT columns restore
// int64 exactly via json.Number semantics.
func decodeCell(raw json.RawMessage, typ Type) (Value, error) {
	if string(raw) == "null" {
		return nil, nil
	}
	switch typ {
	case TypeInt:
		var n int64
		if err := json.Unmarshal(raw, &n); err != nil {
			return nil, err
		}
		return n, nil
	case TypeFloat:
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, err
		}
		return f, nil
	case TypeString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return s, nil
	case TypeBool:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, err
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown column type")
}

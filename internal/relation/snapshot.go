package relation

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot persistence: a database serializes to a stream of JSON lines
// — one header object per table (schema, keys, indexes) followed by its
// rows — and loads back into an equivalent database. CourseRank uses it
// to checkpoint generated deployments and to ship fixtures.

// snapshotHeader describes one table in the stream.
type snapshotHeader struct {
	Table   string       `json:"table"`
	Columns []columnJSON `json:"columns"`
	PK      []string     `json:"pk,omitempty"`
	AutoInc string       `json:"autoInc,omitempty"`
	Indexes []string     `json:"indexes,omitempty"`
	Ordered []string     `json:"ordered,omitempty"`
	Rows    int          `json:"rows"`
}

type columnJSON struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	NotNull bool   `json:"notNull,omitempty"`
}

var typeByName = map[string]Type{
	"INT": TypeInt, "FLOAT": TypeFloat, "TEXT": TypeString, "BOOL": TypeBool,
}

// Save writes the whole database to w as JSON lines, tables in sorted
// name order, rows in slot order.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, name := range db.Names() {
		t, _ := db.Table(name)
		sch := t.Schema()
		head := snapshotHeader{
			Table:   name,
			PK:      t.PrimaryKey(),
			AutoInc: t.AutoIncrement(),
			Indexes: t.SecondaryIndexes(),
			Ordered: t.OrderedIndexes(),
			Rows:    t.Len(),
		}
		for _, c := range sch.Columns() {
			head.Columns = append(head.Columns, columnJSON{Name: c.Name, Type: c.Type.String(), NotNull: c.NotNull})
		}
		if err := enc.Encode(head); err != nil {
			return err
		}
		var encErr error
		t.Scan(func(_ int, row Row) bool {
			encErr = enc.Encode([]Value(row))
			return encErr == nil
		})
		if encErr != nil {
			return encErr
		}
	}
	return bw.Flush()
}

// Load reads a Save stream into a fresh database.
func Load(r io.Reader) (*DB, error) {
	db := NewDB()
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var head snapshotHeader
		if err := dec.Decode(&head); err == io.EOF {
			return db, nil
		} else if err != nil {
			return nil, fmt.Errorf("relation: bad snapshot header: %w", err)
		}
		cols := make([]Column, len(head.Columns))
		for i, c := range head.Columns {
			typ, ok := typeByName[c.Type]
			if !ok {
				return nil, fmt.Errorf("relation: snapshot table %s: unknown type %q", head.Table, c.Type)
			}
			cols[i] = Column{Name: c.Name, Type: typ, NotNull: c.NotNull}
		}
		var opts []TableOption
		if len(head.PK) > 0 {
			opts = append(opts, WithPrimaryKey(head.PK...))
		}
		if head.AutoInc != "" {
			opts = append(opts, WithAutoIncrement(head.AutoInc))
		}
		for _, ix := range head.Indexes {
			opts = append(opts, WithIndex(ix))
		}
		for _, ix := range head.Ordered {
			opts = append(opts, WithOrderedIndex(ix))
		}
		t, err := NewTable(head.Table, NewSchema(cols...), opts...)
		if err != nil {
			return nil, fmt.Errorf("relation: snapshot table %s: %w", head.Table, err)
		}
		if err := db.Create(t); err != nil {
			return nil, err
		}
		for i := 0; i < head.Rows; i++ {
			var raw []json.RawMessage
			if err := dec.Decode(&raw); err != nil {
				return nil, fmt.Errorf("relation: snapshot table %s row %d: %w", head.Table, i, err)
			}
			if len(raw) != len(cols) {
				return nil, fmt.Errorf("%w: snapshot table %s row %d has %d cells", ErrArity, head.Table, i, len(raw))
			}
			row := make(Row, len(raw))
			for j, cell := range raw {
				v, err := decodeCell(cell, cols[j].Type)
				if err != nil {
					return nil, fmt.Errorf("relation: snapshot table %s row %d col %s: %w", head.Table, i, cols[j].Name, err)
				}
				row[j] = v
			}
			if _, err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("relation: snapshot table %s row %d: %w", head.Table, i, err)
			}
		}
	}
}

// decodeCell parses one JSON cell into the canonical value for the
// column type. JSON numbers arrive as float64; INT columns restore
// int64 exactly via json.Number semantics.
func decodeCell(raw json.RawMessage, typ Type) (Value, error) {
	if string(raw) == "null" {
		return nil, nil
	}
	switch typ {
	case TypeInt:
		var n int64
		if err := json.Unmarshal(raw, &n); err != nil {
			return nil, err
		}
		return n, nil
	case TypeFloat:
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, err
		}
		return f, nil
	case TypeString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return s, nil
	case TypeBool:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, err
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown column type")
}

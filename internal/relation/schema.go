package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
}

// Schema is an ordered set of columns with case-insensitive name lookup.
// Schemas are immutable once created.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// (case-insensitively); NewSchema panics otherwise, since schemas are
// program constants in this system.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			panic(fmt.Sprintf("relation: duplicate column %q", c.Name))
		}
		s.byName[key] = i
	}
	return s
}

// Col is shorthand for constructing a nullable column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// NotNullCol is shorthand for constructing a NOT NULL column.
func NotNullCol(name string, t Type) Column { return Column{Name: name, Type: t, NotNull: true} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns a copy of the column definitions.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Column returns the i-th column definition.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Index returns the position of the named column (case-insensitive).
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[strings.ToLower(name)]
	return i, ok
}

// MustIndex is Index that panics on a missing column; used for columns the
// program itself declares.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.Index(name)
	if !ok {
		panic(fmt.Sprintf("relation: no column %q", name))
	}
	return i
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a INT, b TEXT, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple. Cells align positionally with the owning schema.
type Row []Value

// Clone returns a shallow copy of the row (cells are immutable values).
func (r Row) Clone() Row { return append(Row(nil), r...) }

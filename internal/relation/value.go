package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Type identifies the declared type of a column.
type Type uint8

// Column types supported by the engine.
const (
	TypeInvalid Type = iota
	TypeInt          // int64
	TypeFloat        // float64
	TypeString       // string
	TypeBool         // bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return "INVALID"
	}
}

// Value is a dynamically typed cell value. The concrete type is one of
// nil (SQL NULL), int64, float64, string, or bool. Inserts coerce Go
// integer and float variants to the canonical representation.
type Value = any

// TypeOf reports the engine type of a value. NULL has TypeInvalid.
func TypeOf(v Value) Type {
	switch v.(type) {
	case nil:
		return TypeInvalid
	case int64:
		return TypeInt
	case float64:
		return TypeFloat
	case string:
		return TypeString
	case bool:
		return TypeBool
	default:
		return TypeInvalid
	}
}

// Normalize converts the supported Go numeric and string variants into the
// canonical cell representation (int64, float64, string, bool, nil).
// It returns an error for unsupported dynamic types.
func Normalize(v Value) (Value, error) {
	switch x := v.(type) {
	case nil, int64, float64, string, bool:
		return x, nil
	case int:
		return int64(x), nil
	case int8:
		return int64(x), nil
	case int16:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case uint:
		return int64(x), nil
	case uint8:
		return int64(x), nil
	case uint16:
		return int64(x), nil
	case uint32:
		return int64(x), nil
	case uint64:
		return int64(x), nil
	case float32:
		return float64(x), nil
	default:
		return nil, fmt.Errorf("relation: unsupported value type %T", v)
	}
}

// Coerce converts v to column type t, applying the numeric widenings a SQL
// engine would (int→float, float with zero fraction→int). NULL passes
// through unchanged.
func Coerce(v Value, t Type) (Value, error) {
	if v == nil {
		return nil, nil
	}
	nv, err := Normalize(v)
	if err != nil {
		return nil, err
	}
	switch t {
	case TypeInt:
		switch x := nv.(type) {
		case int64:
			return x, nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
			return nil, fmt.Errorf("relation: cannot coerce %v to INT without loss", x)
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		}
	case TypeFloat:
		switch x := nv.(type) {
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		}
	case TypeString:
		if s, ok := nv.(string); ok {
			return s, nil
		}
	case TypeBool:
		if b, ok := nv.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("relation: cannot coerce %T to %s", nv, t)
}

// Compare imposes a total order over cell values: NULL < bool < number <
// string; numbers compare numerically across int64/float64; false < true.
// It returns -1, 0, or +1.
func Compare(a, b Value) int {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // bool
		ab, bb := a.(bool), b.(bool)
		switch {
		case ab == bb:
			return 0
		case !ab:
			return -1
		default:
			return 1
		}
	case 2: // numeric
		af, bf := numeric(a), numeric(b)
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	default: // string
		return strings.Compare(a.(string), b.(string))
	}
}

// Equal reports whether two cell values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

func rank(v Value) int {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int64, float64:
		return 2
	default:
		return 3
	}
}

func numeric(v Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

// Truthy reports whether a value counts as true in a boolean context:
// non-zero numbers, true, and non-empty strings. NULL is false.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	}
	return false
}

// Format renders a value the way the engine prints result cells.
// NULL renders as "NULL"; floats use the shortest round-trip form.
func Format(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	}
	return fmt.Sprint(v)
}

// encodeKey renders a slice of values into a unique string usable as a hash
// index key. The encoding is injective: it tags each value with its type
// rank and escapes separator bytes in strings.
func encodeKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		switch x := v.(type) {
		case nil:
			b.WriteString("n|")
		case bool:
			if x {
				b.WriteString("b1|")
			} else {
				b.WriteString("b0|")
			}
		case int64:
			b.WriteString("i")
			b.WriteString(strconv.FormatInt(x, 10))
			b.WriteString("|")
		case float64:
			if x == float64(int64(x)) {
				// Integral floats key identically to ints so that a lookup
				// with int64(3) finds rows stored with 3.0.
				b.WriteString("i")
				b.WriteString(strconv.FormatInt(int64(x), 10))
			} else {
				b.WriteString("f")
				b.WriteString(strconv.FormatFloat(x, 'b', -1, 64))
			}
			b.WriteString("|")
		case string:
			b.WriteString("s")
			b.WriteString(strconv.Quote(x))
			b.WriteString("|")
		default:
			b.WriteString("?")
			b.WriteString(fmt.Sprint(x))
			b.WriteString("|")
		}
	}
	return b.String()
}

package relation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"courserank/internal/wal"
)

func getVal(t *testing.T, tbl *Table, id int64) (string, bool) {
	t.Helper()
	r, ok := tbl.Get(id)
	if !ok {
		return "", false
	}
	return r[1].(string), true
}

func TestTxSnapshotIsolation(t *testing.T) {
	db := NewDB()
	tbl := db.MustCreate(kvTable())
	tbl.MustInsert(Row{int64(1), "old", int64(10)})

	tx := db.Begin()
	defer tx.Rollback()
	// A write committed after the snapshot is invisible to the
	// transaction but immediately visible to plain readers.
	if err := tbl.UpdateByKey([]Value{int64(1)}, func(r Row) Row { r[1] = "new"; return r }); err != nil {
		t.Fatal(err)
	}
	if v, _ := getVal(t, tbl, 1); v != "new" {
		t.Fatalf("plain read = %q, want new", v)
	}
	if r, ok := tx.Get(tbl, int64(1)); !ok || r[1] != "old" {
		t.Fatalf("tx read = %v, want old", r)
	}
	// Index and scan paths honor the snapshot too.
	if got := tx.Lookup(tbl, "Num", int64(10)); len(got) != 1 || got[0][1] != "old" {
		t.Fatalf("tx Lookup = %v, want the old version", got)
	}
	n := 0
	tx.Scan(tbl, func(r Row) bool {
		if r[1] != "old" {
			t.Fatalf("tx Scan saw %v", r)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("tx Scan saw %d rows, want 1", n)
	}
	// Rows inserted after the snapshot are invisible.
	tbl.MustInsert(Row{int64(2), "later", int64(20)})
	if _, ok := tx.Get(tbl, int64(2)); ok {
		t.Fatal("tx sees a row inserted after its snapshot")
	}
}

func TestTxReadYourOwnWrites(t *testing.T) {
	db := NewDB()
	tbl := db.MustCreate(kvTable())
	tbl.MustInsert(Row{int64(1), "committed", int64(1)})

	tx := db.Begin()
	defer tx.Rollback()
	if _, err := tx.Insert(tbl, Row{int64(2), "mine", int64(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
		func(r Row) Row { r[1] = "mine too"; return r }); err != nil {
		t.Fatal(err)
	}
	// The transaction sees both of its writes.
	if r, ok := tx.Get(tbl, int64(2)); !ok || r[1] != "mine" {
		t.Fatalf("tx does not see its own insert: %v", r)
	}
	if r, ok := tx.Get(tbl, int64(1)); !ok || r[1] != "mine too" {
		t.Fatalf("tx does not see its own update: %v", r)
	}
	// Nobody else does.
	if _, ok := tbl.Get(int64(2)); ok {
		t.Fatal("plain reader sees an uncommitted insert")
	}
	if v, _ := getVal(t, tbl, 1); v != "committed" {
		t.Fatalf("plain reader sees uncommitted update: %q", v)
	}
	other := db.Begin()
	if _, ok := other.Get(tbl, int64(2)); ok {
		t.Fatal("another tx sees an uncommitted insert")
	}
	other.Rollback()
	// Delete your own staged insert: gone for you, never there for others.
	if n, err := tx.DeleteWhere(tbl, func(r Row) bool { return r[0] == int64(2) }); err != nil || n != 1 {
		t.Fatalf("DeleteWhere own insert = %d, %v", n, err)
	}
	if _, ok := tx.Get(tbl, int64(2)); ok {
		t.Fatal("tx sees its own deleted insert")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(int64(2)); ok {
		t.Fatal("erased insert became visible after commit")
	}
	if v, _ := getVal(t, tbl, 1); v != "mine too" {
		t.Fatalf("committed update not visible: %q", v)
	}
}

func TestTxRollbackRestoresEverything(t *testing.T) {
	db := NewDB()
	tbl := db.MustCreate(kvTable())
	tbl.MustInsert(Row{int64(1), "a", int64(10)})
	tbl.MustInsert(Row{int64(2), "b", int64(20)})

	tx := db.Begin()
	if _, err := tx.Insert(tbl, Row{int64(3), "c", int64(30)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
		func(r Row) Row { r[1] = "A"; r[2] = int64(11); return r }); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.DeleteWhere(tbl, func(r Row) bool { return r[0] == int64(2) }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
	if v, ok := getVal(t, tbl, 1); !ok || v != "a" {
		t.Fatalf("row 1 = %q, want a", v)
	}
	if v, ok := getVal(t, tbl, 2); !ok || v != "b" {
		t.Fatalf("row 2 = %q, want b", v)
	}
	if _, ok := tbl.Get(int64(3)); ok {
		t.Fatal("rolled-back insert survived")
	}
	if got := tbl.Lookup("Num", int64(11)); len(got) != 0 {
		t.Fatalf("index kept rolled-back entry: %v", got)
	}
	if got := tbl.Lookup("Num", int64(10)); len(got) != 1 {
		t.Fatalf("index lost original entry: %v", got)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Commit after Rollback = %v, want ErrTxDone", err)
	}
}

func TestTxWriteWriteConflict(t *testing.T) {
	db := NewDB()
	tbl := db.MustCreate(kvTable())
	tbl.MustInsert(Row{int64(1), "base", int64(1)})

	t.Run("staged-vs-tx", func(t *testing.T) {
		tx1 := db.Begin()
		tx2 := db.Begin()
		if _, err := tx1.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
			func(r Row) Row { r[1] = "one"; return r }); err != nil {
			t.Fatal(err)
		}
		if _, err := tx2.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
			func(r Row) Row { r[1] = "two"; return r }); !errors.Is(err, ErrTxConflict) {
			t.Fatalf("second writer got %v, want ErrTxConflict", err)
		}
		// tx2 is poisoned: Commit reports the conflict and rolls back.
		if err := tx2.Commit(); !errors.Is(err, ErrTxConflict) {
			t.Fatalf("poisoned Commit = %v, want ErrTxConflict", err)
		}
		if err := tx1.Commit(); err != nil {
			t.Fatal(err)
		}
		if v, _ := getVal(t, tbl, 1); v != "one" {
			t.Fatalf("winner's write lost: %q", v)
		}
	})

	t.Run("committed-after-snapshot", func(t *testing.T) {
		tx := db.Begin()
		if err := tbl.UpdateByKey([]Value{int64(1)}, func(r Row) Row { r[1] = "newer"; return r }); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
			func(r Row) Row { r[1] = "stale"; return r }); !errors.Is(err, ErrTxConflict) {
			t.Fatalf("stale writer got %v, want ErrTxConflict", err)
		}
		tx.Rollback()
		if v, _ := getVal(t, tbl, 1); v != "newer" {
			t.Fatalf("first committer's write lost: %q", v)
		}
	})

	t.Run("autocommit-vs-staged", func(t *testing.T) {
		tx := db.Begin()
		if _, err := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
			func(r Row) Row { r[1] = "staged"; return r }); err != nil {
			t.Fatal(err)
		}
		if err := tbl.UpdateByKey([]Value{int64(1)}, func(r Row) Row { r[1] = "auto"; return r }); !errors.Is(err, ErrTxConflict) {
			t.Fatalf("autocommit writer got %v, want ErrTxConflict", err)
		}
		tx.Rollback()
	})

	st := db.TxStats()
	if st.Conflicts < 3 {
		t.Fatalf("Conflicts = %d, want >= 3", st.Conflicts)
	}
	if st.Active != 0 {
		t.Fatalf("Active = %d, want 0", st.Active)
	}
}

func TestTxInsertAfterOwnDelete(t *testing.T) {
	db := NewDB()
	tbl := db.MustCreate(kvTable())
	tbl.MustInsert(Row{int64(1), "orig", int64(1)})

	tx := db.Begin()
	if n, err := tx.DeleteWhere(tbl, func(r Row) bool { return r[0] == int64(1) }); err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	if _, err := tx.Insert(tbl, Row{int64(1), "reborn", int64(2)}); err != nil {
		t.Fatalf("reinsert of own-deleted key: %v", err)
	}
	if r, ok := tx.Get(tbl, int64(1)); !ok || r[1] != "reborn" {
		t.Fatalf("tx read after reinsert = %v", r)
	}
	if v, _ := getVal(t, tbl, 1); v != "orig" {
		t.Fatalf("plain read mid-tx = %q, want orig", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := getVal(t, tbl, 1); v != "reborn" {
		t.Fatalf("after commit = %q, want reborn", v)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

// TestTxCommitAtomicity is the isolation property test: concurrent
// readers poll a multi-row invariant while transactions move value
// between two rows; under snapshot isolation no reader may ever observe
// a partial transaction (a sum off balance).
func TestTxCommitAtomicity(t *testing.T) {
	db := NewDB()
	tbl := db.MustCreate(MustTable("Acct",
		NewSchema(NotNullCol("ID", TypeInt), NotNullCol("Bal", TypeInt)),
		WithPrimaryKey("ID")))
	tbl.MustInsert(Row{int64(1), int64(500)})
	tbl.MustInsert(Row{int64(2), int64(500)})

	const writers, transfers = 4, 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int64

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Plain readers use the latest snapshot; transactional
				// readers a fixed one. Both must see the invariant.
				rtx := db.Begin()
				var sum int64
				n := 0
				rtx.Scan(tbl, func(r Row) bool { sum += r[1].(int64); n++; return true })
				rtx.Rollback()
				if n == 2 && sum != 1000 {
					violations.Add(1)
				}
				var psum int64
				pn := 0
				tbl.Scan(func(_ int, r Row) bool { psum += r[1].(int64); pn++; return true })
				if pn == 2 && psum != 1000 {
					violations.Add(1)
				}
			}
		}()
	}

	var committed atomic.Int64
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(seed int64) {
			defer wwg.Done()
			for i := 0; i < transfers; i++ {
				amt := (seed*int64(i))%37 + 1
				tx := db.Begin()
				_, err1 := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
					func(r Row) Row { r[1] = r[1].(int64) - amt; return r })
				_, err2 := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(2) },
					func(r Row) Row { r[1] = r[1].(int64) + amt; return r })
				if err1 != nil || err2 != nil {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err == nil {
					committed.Add(1)
				} else if !errors.Is(err, ErrTxConflict) {
					t.Errorf("commit: %v", err)
				}
			}
		}(int64(w + 1))
	}
	wwg.Wait()
	close(stop)
	wg.Wait()

	if violations.Load() != 0 {
		t.Fatalf("%d partial-transaction observations", violations.Load())
	}
	if committed.Load() == 0 {
		t.Fatal("no transfer ever committed")
	}
	var sum int64
	tbl.Scan(func(_ int, r Row) bool { sum += r[1].(int64); return true })
	if sum != 1000 {
		t.Fatalf("final sum = %d, want 1000", sum)
	}
	st := db.TxStats()
	if st.Active != 0 {
		t.Fatalf("Active = %d after the storm", st.Active)
	}
}

func TestTxVersionGC(t *testing.T) {
	db := NewDB()
	tbl := db.MustCreate(kvTable())
	tbl.MustInsert(Row{int64(1), "v0", int64(0)})

	// Pin a snapshot, then churn versions under it.
	pin := db.Begin()
	for i := 1; i <= 5; i++ {
		tx := db.Begin()
		if _, err := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
			func(r Row) Row { r[1] = fmt.Sprintf("v%d", i); return r }); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if r, ok := pin.Get(tbl, int64(1)); !ok || r[1] != "v0" {
		t.Fatalf("pinned snapshot reads %v, want v0", r)
	}
	pin.Rollback()

	tbl.MaybeGC()
	tbl.mu.RLock()
	residue := len(tbl.vslots)
	var chain int
	for _, m := range tbl.meta {
		for n := m.prev; n != nil; n = n.prev {
			chain++
		}
	}
	tbl.mu.RUnlock()
	if residue != 0 || chain != 0 {
		t.Fatalf("after GC: %d residue slots, %d chain nodes", residue, chain)
	}
	if v, _ := getVal(t, tbl, 1); v != "v5" {
		t.Fatalf("latest = %q, want v5", v)
	}
	if got := tbl.Lookup("Num", int64(0)); len(got) != 1 {
		t.Fatalf("Lookup after GC = %v", got)
	}
}

// failingStore is a Storage stub whose LogMutations fails on demand —
// the poisoned-log regression harness for write-path error surfacing.
type failingStore struct {
	mu   sync.Mutex
	fail bool
	logs int
}

func (f *failingStore) BeginMutate() {}
func (f *failingStore) EndMutate()  {}
func (f *failingStore) LogMutations(string, []Mutation) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return 0, fmt.Errorf("poisoned log")
	}
	f.logs++
	return uint64(f.logs), nil
}
func (f *failingStore) LogCreate(*Table) (uint64, error)      { return 0, nil }
func (f *failingStore) LogDrop(string) (uint64, error)        { return 0, nil }
func (f *failingStore) LogAlter(string, string) (uint64, error) { return 0, nil }
func (f *failingStore) WaitDurable(uint64) error              { return nil }

// TestDeleteWherePoisonedLog is the satellite regression: a WAL append
// failure during DeleteWhere must surface as a non-nil error (not a
// silent 0) and leave the rows in place.
func TestDeleteWherePoisonedLog(t *testing.T) {
	db := NewDB()
	tbl := db.MustCreate(kvTable())
	fs := &failingStore{}
	db.attachStorage(fs)
	for i := 0; i < 3; i++ {
		tbl.MustInsert(Row{nil, fmt.Sprintf("v%d", i), int64(i)})
	}

	fs.mu.Lock()
	fs.fail = true
	fs.mu.Unlock()
	n, err := tbl.DeleteWhere(func(Row) bool { return true })
	if err == nil {
		t.Fatal("DeleteWhere on a poisoned log returned nil error")
	}
	if n != 0 {
		t.Fatalf("DeleteWhere applied %d deletes despite log failure", n)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d after failed delete, want 3", tbl.Len())
	}
	fs.mu.Lock()
	fs.fail = false
	fs.mu.Unlock()
	if n, err := tbl.DeleteWhere(func(Row) bool { return true }); err != nil || n != 3 {
		t.Fatalf("recovered DeleteWhere = %d, %v", n, err)
	}
}

func TestTxDurableCommitRecovery(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(kvTable())
	tbl := db.MustTable("KV")
	tbl.MustInsert(Row{int64(1), "seed", int64(0)})

	tx := db.Begin()
	if _, err := tx.Insert(tbl, Row{int64(2), "tx-insert", int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
		func(r Row) Row { r[1] = "tx-update"; return r }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(db)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	db2, store2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if got := fingerprint(db2); !equalPrints(want, got) {
		t.Fatalf("recovered state differs\nwant %v\ngot  %v", want, got)
	}
}

// TestKillReplayMidTransaction extends the kill-replay harness to
// transactions: a crash before the commit record must recover NONE of
// the transaction's effects (even though its statement records are in
// the WAL), a crash after rollback likewise, and a crash after commit
// must recover ALL of them.
func TestKillReplayMidTransaction(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	db.MustCreate(kvTable())
	tbl := db.MustTable("KV")
	tbl.MustInsert(Row{int64(1), "base", int64(0)})
	base := fingerprint(db)

	check := func(label, snapDir string, want map[string][]string) {
		t.Helper()
		db2, store2, err := OpenDurable(snapDir, DurableOptions{Sync: wal.SyncAlways})
		if err != nil {
			t.Fatalf("%s: reopen: %v", label, err)
		}
		defer store2.Close()
		if got := fingerprint(db2); !equalPrints(want, got) {
			t.Fatalf("%s: recovered state differs\nwant %v\ngot  %v", label, want, got)
		}
	}

	// Crash with an open transaction: statements journaled, no commit.
	tx := db.Begin()
	if _, err := tx.Insert(tbl, Row{int64(10), "half", int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateWhere(tbl, func(r Row) bool { return r[0] == int64(1) },
		func(r Row) Row { r[1] = "half-update"; return r }); err != nil {
		t.Fatal(err)
	}
	midDir := copyDir(t, dir)
	check("mid-transaction", midDir, base)

	// Crash after rollback: the abort marker (or its absence) must not
	// resurrect anything either.
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	check("after-rollback", copyDir(t, dir), base)

	// Crash after commit: everything must be there.
	tx2 := db.Begin()
	if _, err := tx2.Insert(tbl, Row{int64(20), "whole", int64(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.DeleteWhere(tbl, func(r Row) bool { return r[0] == int64(1) }); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(db)
	check("after-commit", copyDir(t, dir), want)
}

// TestTxCheckpointWaitsForOpenTx pins the gate discipline: a checkpoint
// cannot run while a transaction is open, so a checkpointed snapshot
// never contains uncommitted effects.
func TestTxCheckpointWaitsForOpenTx(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	db.MustCreate(kvTable())
	tbl := db.MustTable("KV")

	tx := db.Begin()
	if _, err := tx.Insert(tbl, Row{int64(1), "staged", int64(1)}); err != nil {
		t.Fatal(err)
	}
	ckDone := make(chan error, 1)
	go func() { ckDone <- store.Checkpoint() }()
	select {
	case err := <-ckDone:
		t.Fatalf("checkpoint finished under an open transaction: %v", err)
	default:
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-ckDone; err != nil {
		t.Fatalf("checkpoint after commit: %v", err)
	}
	// The checkpoint image alone (WAL truncated) must hold the tx row.
	db2, store2, err := OpenDurable(copyDir(t, dir), DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if r, ok := db2.MustTable("KV").Get(int64(1)); !ok || r[1] != "staged" {
		t.Fatalf("checkpointed tx row = %v", r)
	}
}

// TestNotifyAfterDurable pins the observer-ordering contract: on a
// durable table with a synchronous commit policy, observers fire only
// after the WAL record is confirmed on disk, and the unconfirmed
// counter stays zero; under an asynchronous policy the delivery is
// counted as inside the durability window.
func TestNotifyAfterDurable(t *testing.T) {
	db, store, err := OpenDurable(t.TempDir(), DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	tbl := db.MustCreate(kvTable())
	var got atomic.Int64
	tbl.Observe(func(kind MutKind, before, after Row) { got.Add(1) })
	tbl.MustInsert(Row{int64(1), "a", int64(1)})
	if got.Load() != 1 {
		t.Fatalf("observer fired %d times, want 1 (after WaitDurable)", got.Load())
	}
	if unconfirmed, dropped := db.NotifyStats(); unconfirmed != 0 || dropped != 0 {
		t.Fatalf("sync policy counters = %d unconfirmed, %d dropped", unconfirmed, dropped)
	}

	db2, store2, err := OpenDurable(t.TempDir(), DurableOptions{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	tbl2 := db2.MustCreate(kvTable())
	tbl2.Observe(func(MutKind, Row, Row) {})
	tbl2.MustInsert(Row{int64(1), "a", int64(1)})
	if unconfirmed, _ := db2.NotifyStats(); unconfirmed == 0 {
		t.Fatal("async policy did not count the durability window")
	}
}

package relation

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Common errors returned by table operations.
var (
	ErrDuplicateKey = errors.New("relation: duplicate primary key")
	ErrNotFound     = errors.New("relation: row not found")
	ErrArity        = errors.New("relation: row arity does not match schema")
)

// TableOption configures a table at construction time.
type TableOption func(*Table) error

// WithPrimaryKey declares the primary key columns. Inserts enforce
// uniqueness and Get performs O(1) lookups on the key.
func WithPrimaryKey(cols ...string) TableOption {
	return func(t *Table) error {
		for _, c := range cols {
			i, ok := t.schema.Index(c)
			if !ok {
				return fmt.Errorf("relation: primary key column %q not in schema", c)
			}
			t.pk = append(t.pk, i)
		}
		t.pkIndex = make(map[string]int)
		return nil
	}
}

// WithAutoIncrement makes the named INT column auto-assign increasing
// values when an insert supplies NULL for it.
func WithAutoIncrement(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: auto-increment column %q not in schema", col)
		}
		if t.schema.Column(i).Type != TypeInt {
			return fmt.Errorf("relation: auto-increment column %q must be INT", col)
		}
		t.autoCol = i
		return nil
	}
}

// WithIndex adds a secondary hash index on a single column, accelerating
// Lookup on equality.
func WithIndex(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: index column %q not in schema", col)
		}
		t.indexes[strings.ToLower(col)] = &secondaryIndex{col: i, slots: make(map[string][]int)}
		return nil
	}
}

// secondaryIndex is a hash index from a single column's encoded value to
// the row slots holding that value.
type secondaryIndex struct {
	col   int
	slots map[string][]int
}

func (ix *secondaryIndex) add(slot int, row Row) {
	k := encodeKey([]Value{row[ix.col]})
	ix.slots[k] = append(ix.slots[k], slot)
}

func (ix *secondaryIndex) remove(slot int, row Row) {
	k := encodeKey([]Value{row[ix.col]})
	list := ix.slots[k]
	for i, s := range list {
		if s == slot {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(ix.slots, k)
	} else {
		ix.slots[k] = list
	}
}

// update rekeys slot from old's value to repl's. Updates usually touch
// columns other than this index's, so the unchanged-value case skips
// the remove/add pair (two key encodings plus a slot-list scan).
func (ix *secondaryIndex) update(slot int, old, repl Row) {
	if Equal(old[ix.col], repl[ix.col]) {
		return
	}
	ix.remove(slot, old)
	ix.add(slot, repl)
}

// Table is a mutable, thread-safe relation: a schema plus rows, with
// optional primary-key and secondary hash indexes. Deleted rows leave
// tombstones that scans skip; slots are reused by later inserts.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    []Row      // nil entries are tombstones; always the NEWEST version
	meta    []slotMeta // parallel to rows: MVCC visibility stamps (see txn.go)
	free    []int      // tombstone slots available for reuse
	live    int
	pk      []int
	pkIndex map[string]int
	indexes map[string]*secondaryIndex
	ordered map[string]*orderedIndex
	autoCol int
	nextAut int64
	shardCol int           // -1 = no declared shard key (see shard.go)
	obs      []RowObserver // committed-mutation observers (see shard.go)
	version uint64
	epoch   uint64
	store   atomic.Pointer[storageBox] // nil = ephemeral (memory-only) backend
	clock   *txClock                   // owning DB's transaction clock; nil until registered

	// vslots marks slots carrying transactional residue — staged
	// writes, retained version chains, or committed-dead heads awaiting
	// GC. Empty vslots is the fast path: every slot is plain and reads
	// skip version resolution.
	vslots map[int]struct{}

	// Deferred observer delivery for durable tables (see shard.go):
	// mutations queue under nqMu (taken inside mu) and deliver under
	// notifyMu once their WAL record is confirmed.
	nqMu     sync.Mutex
	nq       []queuedNotify
	notifyMu sync.Mutex
}

// Version returns a counter that increases on every mutation (insert,
// update, delete). Derived views and caches compare versions to decide
// whether a rebuild is due, instead of diffing rows.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// SchemaEpoch returns a counter that increases only when the table's
// shape changes — today, when an index is added to a live table
// (AddOrderedIndex). Row DML never moves it. Query plans fingerprint on
// the epoch rather than the mutation version, so cached plans survive
// writes and replan only when an access path could have appeared or
// vanished (or when statistics drift far enough; see sqlmini's cache).
func (t *Table) SchemaEpoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// PlanFingerprint returns the schema epoch and live-row count under a
// single lock acquisition — the plan-cache validity probe, which runs
// once per dependent table on every statement execution.
func (t *Table) PlanFingerprint() (epoch uint64, rows int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, t.live
}

// ViewFingerprint returns the schema epoch and mutation version under a
// single lock acquisition — the materialized-view freshness probe.
// Where plans fingerprint on (epoch, row-count drift) because they bake
// in access paths but never data, views bake in DATA: any row DML makes
// a view's contents potentially stale, so views key on the full
// mutation counter.
func (t *Table) ViewFingerprint() (epoch, version uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, t.version
}

// NewTable constructs an empty table with the given name and schema.
func NewTable(name string, schema *Schema, opts ...TableOption) (*Table, error) {
	t := &Table{
		name:     name,
		schema:   schema,
		indexes:  make(map[string]*secondaryIndex),
		ordered:  make(map[string]*orderedIndex),
		autoCol:  -1,
		nextAut:  1,
		shardCol: -1,
	}
	for _, opt := range opts {
		if err := opt(t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustTable is NewTable that panics on error; for statically known schemas.
func MustTable(name string, schema *Schema, opts ...TableOption) *Table {
	t, err := NewTable(name, schema, opts...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// PrimaryKey returns the primary-key column names, if any.
func (t *Table) PrimaryKey() []string {
	out := make([]string, len(t.pk))
	for i, c := range t.pk {
		out[i] = t.schema.Column(c).Name
	}
	return out
}

// AutoIncrement returns the auto-increment column name, or "".
func (t *Table) AutoIncrement() string {
	if t.autoCol < 0 {
		return ""
	}
	return t.schema.Column(t.autoCol).Name
}

// SecondaryIndexes returns the names of columns with secondary indexes,
// sorted.
func (t *Table) SecondaryIndexes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for name := range t.indexes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// validate coerces a row to the schema, applying auto-increment and
// checking arity, types and NOT NULL constraints. Caller holds the lock.
func (t *Table) validate(row Row) (Row, error) {
	if len(row) != t.schema.Len() {
		return nil, fmt.Errorf("%w: table %s wants %d columns, got %d", ErrArity, t.name, t.schema.Len(), len(row))
	}
	out := make(Row, len(row))
	for i, v := range row {
		if v == nil && i == t.autoCol {
			v = t.nextAut
			t.nextAut++
		}
		col := t.schema.Column(i)
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("relation: table %s column %s: %w", t.name, col.Name, err)
		}
		if cv == nil && col.NotNull {
			return nil, fmt.Errorf("relation: table %s column %s: NULL in NOT NULL column", t.name, col.Name)
		}
		if iv, ok := cv.(int64); ok && i == t.autoCol && iv >= t.nextAut {
			t.nextAut = iv + 1
		}
		out[i] = cv
	}
	return out, nil
}

func (t *Table) pkKey(row Row) string {
	vals := make([]Value, len(t.pk))
	for i, c := range t.pk {
		vals[i] = row[c]
	}
	return encodeKey(vals)
}

// insertLocked validates and stores a row; the caller holds the write
// lock and stamps meta[slot].begin before releasing it. It returns the
// slot and the stored row.
func (t *Table) insertLocked(row Row) (int, Row, error) {
	r, err := t.validate(row)
	if err != nil {
		return 0, nil, err
	}
	var key string
	if t.pkIndex != nil {
		key = t.pkKey(r)
		if slot, dup := t.pkIndex[key]; dup {
			// The mapping can be stale: retained versions of a deleted
			// row keep their key mapped until GC. Only a claim that is
			// live in the latest-committed view (or staged by an open
			// transaction) blocks the insert.
			if row := t.visibleLocked(slot, LatestSnap()); row != nil && t.pkKey(row) == key {
				return 0, nil, fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.name, key)
			}
			if m := &t.meta[slot]; m.btx != 0 && t.pkKey(t.rows[slot]) == key {
				t.countConflict()
				return 0, nil, fmt.Errorf("relation: table %s key %v staged by an open transaction: %w", t.name, key, ErrTxConflict)
			}
		}
	}
	slot := t.newSlotLocked(r)
	if t.pkIndex != nil {
		t.pkIndex[key] = slot
	}
	for _, ix := range t.indexes {
		ix.add(slot, r)
	}
	for _, ix := range t.ordered {
		ix.add(slot, r)
	}
	t.live++
	t.version++
	return slot, r, nil
}

// Insert validates and stores a row, returning the slot it occupies.
// On a table with attached Storage the insert is journaled before
// Insert returns; a WAL failure rolls the row back out of memory.
func (t *Table) Insert(row Row) (int, error) {
	if sb := t.store.Load(); sb != nil {
		slot, _, err := t.insertDurable(sb.s, row)
		return slot, err
	}
	seq, _ := t.clock.alloc()
	t.mu.Lock()
	slot, r, err := t.insertLocked(row)
	if err == nil {
		t.meta[slot].begin = seq
		t.notifyLocked(MutInsert, nil, r)
	}
	t.mu.Unlock()
	t.clock.complete(seq)
	return slot, err
}

// InsertGet inserts a row and returns a copy of the stored row, which
// reflects auto-increment assignment and type coercion.
func (t *Table) InsertGet(row Row) (Row, error) {
	if sb := t.store.Load(); sb != nil {
		_, r, err := t.insertDurable(sb.s, row)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
	seq, _ := t.clock.alloc()
	t.mu.Lock()
	slot, r, err := t.insertLocked(row)
	if err != nil {
		t.mu.Unlock()
		t.clock.complete(seq)
		return nil, err
	}
	t.meta[slot].begin = seq
	t.notifyLocked(MutInsert, nil, r)
	clone := r.Clone()
	t.mu.Unlock()
	t.clock.complete(seq)
	return clone, nil
}

// insertDurable applies an insert and journals it following the
// Storage protocol (see storage.go). The returned row is a copy.
// Observer delivery waits for the WAL confirmation (see shard.go).
func (t *Table) insertDurable(s Storage, row Row) (int, Row, error) {
	s.BeginMutate()
	seq, _ := t.clock.alloc()
	t.mu.Lock()
	slot, r, err := t.insertLocked(row)
	if err != nil {
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		return 0, nil, err
	}
	lsn, err := s.LogMutations(t.name, []Mutation{{Kind: MutInsert, Slot: slot, Row: r}})
	if err != nil {
		t.applyDeleteSlot(slot)
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		return 0, nil, err
	}
	t.meta[slot].begin = seq
	t.queueNotifyLocked(lsn, MutInsert, nil, r)
	clone := r.Clone()
	t.mu.Unlock()
	t.clock.complete(seq)
	s.EndMutate()
	werr := s.WaitDurable(lsn)
	t.flushNotifies(lsn, werr, s)
	return slot, clone, werr
}

// MustInsert inserts and panics on error; for generator/loader code paths
// where a failure indicates a programming bug.
func (t *Table) MustInsert(row Row) int {
	slot, err := t.Insert(row)
	if err != nil {
		panic(err)
	}
	return slot
}

// Get returns a copy of the row with the given primary-key values.
func (t *Table) Get(key ...Value) (Row, bool) {
	return t.GetSnap(LatestSnap(), key...)
}

// GetSnap is Get as of a snapshot. When the pk mapping misses but the
// table carries transactional residue it falls back to a scan: a
// re-inserted key remaps the pk index to the newest slot, which an old
// snapshot may not see even though an older version elsewhere matches.
func (t *Table) GetSnap(sn Snap, key ...Value) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.pkSlotLocked(key)
	if ok {
		if r := t.visibleLocked(slot, sn); r != nil {
			return r.Clone(), true
		}
	}
	if len(t.vslots) == 0 || t.pkIndex == nil || len(key) != len(t.pk) {
		return nil, false
	}
	norm := make([]Value, len(key))
	for i, v := range key {
		nv, err := Normalize(v)
		if err != nil {
			return nil, false
		}
		norm[i] = nv
	}
	if r, ok := t.pkFallbackLocked(sn, encodeKey(norm)); ok {
		return r.Clone(), true
	}
	return nil, false
}

// pkFallbackLocked scans for the visible row carrying primary key want.
// It backs up the pk mapping while transactional residue exists: a
// re-inserted key remaps the index to the newest slot, which a given
// snapshot (including the latest, while the re-insert is only staged)
// may not see even though the version it can see lives in another slot.
func (t *Table) pkFallbackLocked(sn Snap, want string) (Row, bool) {
	for slot := range t.rows {
		if r := t.visibleLocked(slot, sn); r != nil && t.pkKey(r) == want {
			return r, true
		}
	}
	return nil, false
}

// pkSlotLocked resolves primary-key values to a row slot; the caller
// holds at least the read lock. The single integer key — the dominant
// probe shape (auto-increment ids) — skips the normalization slice and
// encodeKey's builder: the key renders into a stack buffer and the
// string([]byte) map index compiles to a no-allocation lookup.
func (t *Table) pkSlotLocked(key []Value) (int, bool) {
	if t.pkIndex == nil || len(key) != len(t.pk) {
		return 0, false
	}
	if len(key) == 1 {
		var x int64
		switch v := key[0].(type) {
		case int64:
			x = v
		case int:
			x = int64(v)
		case float64:
			if v != float64(int64(v)) {
				goto general // non-integral floats key with an "f" tag
			}
			x = int64(v)
		default:
			goto general
		}
		{
			var kb [24]byte
			b := append(kb[:0], 'i')
			b = strconv.AppendInt(b, x, 10)
			b = append(b, '|')
			slot, ok := t.pkIndex[string(b)]
			return slot, ok
		}
	}
general:
	norm := make([]Value, len(key))
	for i, v := range key {
		nv, err := Normalize(v)
		if err != nil {
			return 0, false
		}
		norm[i] = nv
	}
	slot, ok := t.pkIndex[encodeKey(norm)]
	return slot, ok
}

// Scan calls fn for every live row in slot order; fn returning false stops
// the scan. The row passed to fn must not be mutated or retained.
func (t *Table) Scan(fn func(slot int, row Row) bool) {
	t.ScanSnap(LatestSnap(), fn)
}

// ScanSnap is Scan as of a snapshot.
func (t *Table) ScanSnap(sn Snap, fn func(slot int, row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if sn.latest() && len(t.vslots) == 0 {
		for slot, r := range t.rows {
			if r == nil {
				continue
			}
			if !fn(slot, r) {
				return
			}
		}
		return
	}
	for slot := range t.rows {
		r := t.visibleLocked(slot, sn)
		if r == nil {
			continue
		}
		if !fn(slot, r) {
			return
		}
	}
}

// Rows returns copies of all live rows in slot order.
func (t *Table) Rows() []Row {
	out := make([]Row, 0, t.Len())
	t.Scan(func(_ int, r Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// SelectWhere returns copies of the rows satisfying pred.
func (t *Table) SelectWhere(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(_ int, r Row) bool {
		if pred(r) {
			out = append(out, r.Clone())
		}
		return true
	})
	return out
}

// Lookup returns copies of the rows whose named column equals v, using a
// secondary index when one exists, and a scan otherwise.
func (t *Table) Lookup(col string, v Value) []Row {
	return t.LookupSnap(LatestSnap(), col, v)
}

// LookupSnap is Lookup as of a snapshot. Index entries over-approximate
// when versions are retained, so hits re-validate against the resolved
// row.
func (t *Table) LookupSnap(sn Snap, col string, v Value) []Row {
	nv, err := Normalize(v)
	if err != nil {
		return nil
	}
	t.mu.RLock()
	ix, ok := t.indexes[strings.ToLower(col)]
	if ok {
		slots := ix.slots[encodeKey([]Value{nv})]
		out := make([]Row, 0, len(slots))
		sorted := append([]int(nil), slots...)
		sort.Ints(sorted)
		for _, s := range sorted {
			r := t.visibleLocked(s, sn)
			if r == nil || !Equal(r[ix.col], nv) {
				continue
			}
			out = append(out, r.Clone())
		}
		t.mu.RUnlock()
		return out
	}
	t.mu.RUnlock()
	ci, ok := t.schema.Index(col)
	if !ok {
		return nil
	}
	var out []Row
	t.ScanSnap(sn, func(_ int, r Row) bool {
		if Equal(r[ci], nv) {
			out = append(out, r.Clone())
		}
		return true
	})
	return out
}

// LookupMany returns copies of the rows whose named column equals any
// of the keys, in slot (scan) order with duplicates removed, acquiring
// the read lock once for the whole batch. Upper layers use it to drive
// multi-key index probes (IN lists, batched joins) without per-row
// locking. NULL keys match nothing, mirroring SQL equality; with no
// index on the column it degrades to a single scan.
func (t *Table) LookupMany(col string, keys []Value) []Row {
	refs := t.lookupManySnap(LatestSnap(), col, keys, true)
	return refs
}

// GetMany returns copies of the rows matching the given primary keys —
// a batch Get under one read lock. Rows come back in slot (scan) order
// with duplicates removed, matching Lookup/LookupMany, so planned
// multi-key probes order rows exactly as a scan would; absent keys are
// skipped.
func (t *Table) GetMany(keys ...[]Value) []Row {
	return t.getManySnap(LatestSnap(), keys, true)
}

// getManySnap is the shared body of the batch pk probes. Mappings can
// be stale while versions are retained, so non-plain hits re-validate
// the resolved row's key.
func (t *Table) getManySnap(sn Snap, keys [][]Value, clone bool) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pkIndex == nil {
		return nil
	}
	slots := make([]int, 0, len(keys))
	var wantKeys map[string]bool
	fast := sn.latest() && len(t.vslots) == 0
	if !fast {
		wantKeys = make(map[string]bool, len(keys))
	}
	for _, key := range keys {
		if len(key) != len(t.pk) {
			continue
		}
		norm := make([]Value, len(key))
		bad := false
		for i, v := range key {
			nv, err := Normalize(v)
			if err != nil {
				bad = true
				break
			}
			norm[i] = nv
		}
		if bad {
			continue
		}
		ek := encodeKey(norm)
		if !fast {
			wantKeys[ek] = true
		}
		if slot, ok := t.pkIndex[ek]; ok {
			slots = append(slots, slot)
		}
	}
	sort.Ints(slots)
	out := make([]Row, 0, len(slots))
	prev := -1
	for _, s := range slots {
		if s == prev {
			continue
		}
		prev = s
		r := t.rows[s]
		if !fast {
			r = t.visibleLocked(s, sn)
			if r == nil || !wantKeys[t.pkKey(r)] {
				continue
			}
			delete(wantKeys, t.pkKey(r))
		}
		if clone {
			r = r.Clone()
		}
		out = append(out, r)
	}
	// Keys the mapping could not resolve may still have a visible
	// version in a displaced slot; see pkFallbackLocked. Fallback rows
	// append after the mapped ones, so strict slot order is only kept
	// while no key is displaced.
	if !fast && len(wantKeys) > 0 && len(t.vslots) > 0 {
		for want := range wantKeys {
			if r, ok := t.pkFallbackLocked(sn, want); ok {
				if clone {
					r = r.Clone()
				}
				out = append(out, r)
			}
		}
	}
	return out
}

// GetRef is Get without the defensive copy: the returned row is the
// stored row itself. The store never mutates a stored row in place —
// updates validate a replacement and swap the slot pointer — so the
// reference stays a consistent snapshot; the caller must not mutate or
// grow it. Query executors batch through this to skip one allocation
// per probed row.
func (t *Table) GetRef(key ...Value) (Row, bool) {
	return t.GetRefSnap(LatestSnap(), key...)
}

// GetRefSnap is GetRef as of a snapshot.
func (t *Table) GetRefSnap(sn Snap, key ...Value) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.pkSlotLocked(key)
	if ok {
		if r := t.visibleLocked(slot, sn); r != nil {
			return r, true
		}
	}
	if len(t.vslots) == 0 || t.pkIndex == nil || len(key) != len(t.pk) {
		return nil, false
	}
	norm := make([]Value, len(key))
	for i, v := range key {
		nv, err := Normalize(v)
		if err != nil {
			return nil, false
		}
		norm[i] = nv
	}
	return t.pkFallbackLocked(sn, encodeKey(norm))
}

// LookupManyRef is LookupMany returning references to the stored rows
// instead of copies — same slot order, same dedup, one lock
// acquisition. Rows must not be mutated or retained past the point
// where a copy would have been taken; see GetRef for why references
// stay consistent.
func (t *Table) LookupManyRef(col string, keys []Value) []Row {
	return t.lookupManySnap(LatestSnap(), col, keys, false)
}

// LookupManyRefSnap is LookupManyRef as of a snapshot.
func (t *Table) LookupManyRefSnap(sn Snap, col string, keys []Value) []Row {
	return t.lookupManySnap(sn, col, keys, false)
}

// lookupManySnap is the shared body of the multi-key column probes.
// Index hits resolve through the snapshot and, when the slot carries
// residue, re-validate the probed value (retained entries
// over-approximate the visible rows).
func (t *Table) lookupManySnap(sn Snap, col string, keys []Value, clone bool) []Row {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k == nil {
			continue
		}
		nk, err := Normalize(k)
		if err != nil {
			continue
		}
		want[encodeKey([]Value{nk})] = true
	}
	if len(want) == 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ix, ok := t.indexes[strings.ToLower(col)]; ok {
		var slots []int
		for k := range want {
			slots = append(slots, ix.slots[k]...)
		}
		sort.Ints(slots)
		out := make([]Row, 0, len(slots))
		prev := -1
		fast := sn.latest() && len(t.vslots) == 0
		for _, s := range slots {
			if s == prev {
				continue // same row reached via equal-encoding keys
			}
			prev = s
			r := t.rows[s]
			if !fast {
				r = t.visibleLocked(s, sn)
				if r == nil || r[ix.col] == nil || !want[encodeKey([]Value{r[ix.col]})] {
					continue
				}
			}
			if clone {
				r = r.Clone()
			}
			out = append(out, r)
		}
		return out
	}
	ci, ok := t.schema.Index(col)
	if !ok {
		return nil
	}
	var out []Row
	fast := sn.latest() && len(t.vslots) == 0
	for slot, r := range t.rows {
		if !fast {
			r = t.visibleLocked(slot, sn)
		}
		if r == nil || r[ci] == nil {
			continue
		}
		if want[encodeKey([]Value{r[ci]})] {
			if clone {
				r = r.Clone()
			}
			out = append(out, r)
		}
	}
	return out
}

// GetManyRef is GetMany returning references to the stored rows instead
// of copies — same slot order and dedup. Rows must not be mutated; see
// GetRef.
func (t *Table) GetManyRef(keys ...[]Value) []Row {
	return t.getManySnap(LatestSnap(), keys, false)
}

// GetManyRefSnap is GetManyRef as of a snapshot.
func (t *Table) GetManyRefSnap(sn Snap, keys ...[]Value) []Row {
	return t.getManySnap(sn, keys, false)
}

// HasIndex reports whether a secondary index exists on the column.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(col)]
	return ok
}

// UpdateByKey updates the row with the given primary-key values via set,
// in O(1). It returns ErrNotFound when the key is absent and fails if the
// replacement would collide on a changed key. With attached Storage the
// update is journaled before returning; a WAL failure restores the old
// row.
func (t *Table) UpdateByKey(key []Value, set func(Row) Row) error {
	if sb := t.store.Load(); sb != nil {
		return t.updateByKeyDurable(sb.s, key, set)
	}
	seq, keep := t.clock.alloc()
	t.mu.Lock()
	slot, old, repl, node, err := t.updateByKeyLocked(key, set, keep)
	if err == nil {
		t.sealUpdateLocked(slot, node, seq)
		t.notifyLocked(MutUpdate, old, repl)
	}
	t.mu.Unlock()
	t.clock.complete(seq)
	return err
}

func (t *Table) updateByKeyDurable(s Storage, key []Value, set func(Row) Row) error {
	s.BeginMutate()
	seq, keep := t.clock.alloc()
	t.mu.Lock()
	slot, old, repl, node, err := t.updateByKeyLocked(key, set, keep)
	if err != nil {
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		return err
	}
	lsn, err := s.LogMutations(t.name, []Mutation{{Kind: MutUpdate, Slot: slot, Row: repl}})
	if err != nil {
		if node != nil {
			t.popHeadLocked(slot, node)
		} else {
			t.applyUpdateSlot(slot, old)
		}
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		return err
	}
	t.sealUpdateLocked(slot, node, seq)
	t.queueNotifyLocked(lsn, MutUpdate, old, repl)
	t.mu.Unlock()
	t.clock.complete(seq)
	s.EndMutate()
	werr := s.WaitDurable(lsn)
	t.flushNotifies(lsn, werr, s)
	return werr
}

// sealUpdateLocked stamps an applied autocommit update with its commit
// seq: the new head begins at seq and the retained version (if any)
// ends there.
func (t *Table) sealUpdateLocked(slot int, node *rowVersion, seq uint64) {
	t.meta[slot].begin = seq
	if node != nil {
		node.end = seq
	}
}

// updateByKeyLocked performs the update under the write lock, returning
// the slot plus the pre- and post-image rows for journaling/undo. With
// keep set the superseded version is pushed onto the slot's chain (and
// returned) so active snapshots keep seeing it; the caller stamps it
// via sealUpdateLocked once the write is final.
func (t *Table) updateByKeyLocked(key []Value, set func(Row) Row, keep bool) (int, Row, Row, *rowVersion, error) {
	if t.pkIndex == nil || len(key) != len(t.pk) {
		return 0, nil, nil, nil, fmt.Errorf("%w: table %s has no matching primary key", ErrNotFound, t.name)
	}
	if len(t.vslots) > 0 {
		t.gcLocked(t.clock.minActive())
	}
	norm := make([]Value, len(key))
	for i, v := range key {
		nv, err := Normalize(v)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		norm[i] = nv
	}
	oldKey := encodeKey(norm)
	slot, ok := t.pkIndex[oldKey]
	if !ok {
		return 0, nil, nil, nil, fmt.Errorf("%w: table %s key %v", ErrNotFound, t.name, norm)
	}
	if m := &t.meta[slot]; m.btx != 0 || m.etx != 0 {
		t.countConflict()
		return 0, nil, nil, nil, fmt.Errorf("relation: table %s key %v staged by an open transaction: %w", t.name, norm, ErrTxConflict)
	}
	old := t.visibleLocked(slot, LatestSnap())
	if old == nil || t.pkKey(old) != oldKey {
		return 0, nil, nil, nil, fmt.Errorf("%w: table %s key %v", ErrNotFound, t.name, norm)
	}
	repl, err := t.validate(set(old.Clone()))
	if err != nil {
		return 0, nil, nil, nil, err
	}
	newKey := t.pkKey(repl)
	if newKey != oldKey {
		if s, dup := t.pkIndex[newKey]; dup {
			if r := t.visibleLocked(s, LatestSnap()); r != nil && t.pkKey(r) == newKey {
				return 0, nil, nil, nil, fmt.Errorf("%w: table %s", ErrDuplicateKey, t.name)
			}
			if m := &t.meta[s]; m.btx != 0 && t.pkKey(t.rows[s]) == newKey {
				t.countConflict()
				return 0, nil, nil, nil, fmt.Errorf("relation: table %s key staged by an open transaction: %w", t.name, ErrTxConflict)
			}
		}
		if !keep {
			delete(t.pkIndex, oldKey)
		}
		t.pkIndex[newKey] = slot
	}
	node := t.applyUpdateVersionLocked(slot, old, repl, keep)
	t.version++
	return slot, old, repl, node, nil
}

// applyUpdateVersionLocked swaps repl in as slot's head. With keep set
// the committed head goes onto the version chain (returned, unstamped)
// and its index entries are retained; otherwise the indexes rekey in
// place exactly as before MVCC.
func (t *Table) applyUpdateVersionLocked(slot int, old, repl Row, keep bool) *rowVersion {
	if !keep {
		for _, ix := range t.indexes {
			ix.update(slot, old, repl)
		}
		for _, ix := range t.ordered {
			ix.update(slot, old, repl)
		}
		t.rows[slot] = repl
		return nil
	}
	m := &t.meta[slot]
	node := &rowVersion{row: old, begin: m.begin, prev: m.prev}
	t.addEntriesLocked(slot, repl, nil)
	t.rows[slot] = repl
	m.begin, m.prev = 0, node
	t.vslotAdd(slot)
	return node
}

// appliedUpdate records one retained-version update for stamping/undo.
type appliedUpdate struct {
	slot int
	node *rowVersion
}

// UpdateWhere applies set to every row satisfying pred and reports how
// many rows changed. The set function receives a copy and returns the
// replacement row, which is validated like an insert. A mid-batch
// validation error leaves earlier updates applied (and, with attached
// Storage, journaled); a WAL failure instead rolls the whole batch back.
func (t *Table) UpdateWhere(pred func(Row) bool, set func(Row) Row) (int, error) {
	sb := t.store.Load()
	if sb == nil {
		seq, keep := t.clock.alloc()
		t.mu.Lock()
		// Effects are collected only when an observer needs the pre/post
		// image pairs; the unobserved path keeps its zero-allocation shape.
		n, muts, undo, ups, err := t.updateWhereLocked(pred, set, t.observedLocked(), keep)
		for _, u := range ups {
			t.sealUpdateLocked(u.slot, u.node, seq)
		}
		t.notifyUpdatesLocked(muts, undo)
		t.mu.Unlock()
		t.clock.complete(seq)
		return n, err
	}
	s := sb.s
	s.BeginMutate()
	seq, keep := t.clock.alloc()
	t.mu.Lock()
	n, muts, undo, ups, uerr := t.updateWhereLocked(pred, set, true, keep)
	if n == 0 {
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		return 0, uerr
	}
	lsn, err := s.LogMutations(t.name, muts)
	if err != nil {
		if len(ups) > 0 {
			for i := len(ups) - 1; i >= 0; i-- {
				t.popHeadLocked(ups[i].slot, ups[i].node)
			}
		} else {
			t.undoLocked(undo)
		}
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		return 0, err
	}
	for _, u := range ups {
		t.sealUpdateLocked(u.slot, u.node, seq)
	}
	for i := range muts {
		t.queueNotifyLocked(lsn, MutUpdate, undo[i].Row, muts[i].Row)
	}
	t.mu.Unlock()
	t.clock.complete(seq)
	s.EndMutate()
	werr := s.WaitDurable(lsn)
	t.flushNotifies(lsn, werr, s)
	if uerr == nil {
		uerr = werr
	}
	return n, uerr
}

// updateWhereLocked is UpdateWhere's body under the write lock. With
// collect set it gathers the applied effects (post-images) and their
// inverses (pre-images) for journaling and rollback; the memory path
// skips both allocations. While transaction snapshots are active (keep,
// or leftover residue) it routes through the version-retaining path and
// additionally returns the applied slots/chain nodes for stamping.
func (t *Table) updateWhereLocked(pred func(Row) bool, set func(Row) Row, collect, keep bool) (int, []Mutation, []Mutation, []appliedUpdate, error) {
	if len(t.vslots) > 0 {
		t.gcLocked(t.clock.minActive())
	}
	n := 0
	var muts, undo []Mutation
	if !keep && len(t.vslots) == 0 {
		for slot, r := range t.rows {
			if r == nil || !pred(r) {
				continue
			}
			repl, err := t.validate(set(r.Clone()))
			if err != nil {
				return n, muts, undo, nil, err
			}
			if t.pkIndex != nil {
				oldKey, newKey := t.pkKey(r), t.pkKey(repl)
				if oldKey != newKey {
					if _, dup := t.pkIndex[newKey]; dup {
						return n, muts, undo, nil, fmt.Errorf("%w: table %s", ErrDuplicateKey, t.name)
					}
					delete(t.pkIndex, oldKey)
					t.pkIndex[newKey] = slot
				}
			}
			for _, ix := range t.indexes {
				ix.update(slot, r, repl)
			}
			for _, ix := range t.ordered {
				ix.update(slot, r, repl)
			}
			t.rows[slot] = repl
			t.version++
			n++
			if collect {
				muts = append(muts, Mutation{Kind: MutUpdate, Slot: slot, Row: repl})
				undo = append(undo, Mutation{Kind: MutUpdate, Slot: slot, Row: r})
			}
		}
		return n, muts, undo, nil, nil
	}
	// Version-retaining path: snapshots are active, so superseded
	// versions go onto the chains and staged rows conflict.
	var ups []appliedUpdate
	for slot := range t.rows {
		cur := t.visibleLocked(slot, LatestSnap())
		if cur == nil || !pred(cur) {
			continue
		}
		if m := &t.meta[slot]; m.btx != 0 || m.etx != 0 {
			t.countConflict()
			return n, muts, undo, ups, fmt.Errorf("relation: table %s slot %d staged by an open transaction: %w", t.name, slot, ErrTxConflict)
		}
		repl, err := t.validate(set(cur.Clone()))
		if err != nil {
			return n, muts, undo, ups, err
		}
		if t.pkIndex != nil {
			oldKey, newKey := t.pkKey(cur), t.pkKey(repl)
			if oldKey != newKey {
				if s, dup := t.pkIndex[newKey]; dup && s != slot {
					if r := t.visibleLocked(s, LatestSnap()); r != nil && t.pkKey(r) == newKey {
						return n, muts, undo, ups, fmt.Errorf("%w: table %s", ErrDuplicateKey, t.name)
					}
				}
				t.pkIndex[newKey] = slot
			}
		}
		node := t.applyUpdateVersionLocked(slot, cur, repl, true)
		t.version++
		n++
		ups = append(ups, appliedUpdate{slot: slot, node: node})
		if collect {
			muts = append(muts, Mutation{Kind: MutUpdate, Slot: slot, Row: repl})
			undo = append(undo, Mutation{Kind: MutUpdate, Slot: slot, Row: cur})
		}
	}
	return n, muts, undo, ups, nil
}

// DeleteWhere removes every row satisfying pred and reports the count.
// With attached Storage the batch is journaled as one record; if the
// WAL rejects it the deletes are rolled back and the error is returned
// (previously this was silently reported as 0 rows). While transaction
// snapshots are active, deleted versions are retained on their slots
// until no snapshot can see them; a row staged by an open transaction
// makes the statement fail with ErrTxConflict before any row is
// removed.
func (t *Table) DeleteWhere(pred func(Row) bool) (int, error) {
	sb := t.store.Load()
	if sb == nil {
		seq, keep := t.clock.alloc()
		t.mu.Lock()
		if !keep && t.sweptPlainLocked() {
			n, _, undo := t.deleteWhereLocked(pred, t.observedLocked())
			t.notifyDeletesLocked(undo)
			t.mu.Unlock()
			t.clock.complete(seq)
			return n, nil
		}
		slots, pre, err := t.deleteWhereVersionedLocked(pred)
		if err != nil {
			t.mu.Unlock()
			t.clock.complete(seq)
			return 0, err
		}
		t.sealDeletesLocked(slots, seq)
		for _, r := range pre {
			t.notifyLocked(MutDelete, r, nil)
		}
		t.mu.Unlock()
		t.clock.complete(seq)
		return len(slots), nil
	}
	s := sb.s
	s.BeginMutate()
	seq, keep := t.clock.alloc()
	t.mu.Lock()
	if !keep && t.sweptPlainLocked() {
		n, muts, undo := t.deleteWhereLocked(pred, true)
		if n == 0 {
			t.mu.Unlock()
			t.clock.complete(seq)
			s.EndMutate()
			return 0, nil
		}
		lsn, err := s.LogMutations(t.name, muts)
		if err != nil {
			t.undoLocked(undo)
			t.mu.Unlock()
			t.clock.complete(seq)
			s.EndMutate()
			return 0, err
		}
		for _, u := range undo {
			t.queueNotifyLocked(lsn, MutDelete, u.Row, nil)
		}
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		werr := s.WaitDurable(lsn)
		t.flushNotifies(lsn, werr, s)
		return n, werr
	}
	// Version-retaining path: nothing is applied until the WAL accepts
	// the record, so a rejection needs no undo.
	slots, pre, err := t.deleteWhereVersionedLocked(pred)
	if err != nil || len(slots) == 0 {
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		return 0, err
	}
	muts := make([]Mutation, len(slots))
	for i, slot := range slots {
		muts[i] = Mutation{Kind: MutDelete, Slot: slot}
	}
	lsn, err := s.LogMutations(t.name, muts)
	if err != nil {
		t.mu.Unlock()
		t.clock.complete(seq)
		s.EndMutate()
		return 0, err
	}
	t.sealDeletesLocked(slots, seq)
	for _, r := range pre {
		t.queueNotifyLocked(lsn, MutDelete, r, nil)
	}
	t.mu.Unlock()
	t.clock.complete(seq)
	s.EndMutate()
	werr := s.WaitDurable(lsn)
	t.flushNotifies(lsn, werr, s)
	return len(slots), werr
}

// sweptPlainLocked sweeps residue and reports whether every slot came
// out plain — the precondition for the legacy physical-delete path.
func (t *Table) sweptPlainLocked() bool {
	if len(t.vslots) > 0 {
		t.gcLocked(t.clock.minActive())
	}
	return len(t.vslots) == 0
}

// deleteWhereVersionedLocked collects the latest-visible rows matching
// pred without applying anything; sealDeletesLocked makes them dead.
// A matching row staged by an open transaction aborts the statement.
func (t *Table) deleteWhereVersionedLocked(pred func(Row) bool) ([]int, []Row, error) {
	var slots []int
	var pre []Row
	for slot := range t.rows {
		cur := t.visibleLocked(slot, LatestSnap())
		if cur == nil || !pred(cur) {
			continue
		}
		if m := &t.meta[slot]; m.btx != 0 || m.etx != 0 {
			t.countConflict()
			return nil, nil, fmt.Errorf("relation: table %s slot %d staged by an open transaction: %w", t.name, slot, ErrTxConflict)
		}
		slots = append(slots, slot)
		pre = append(pre, cur)
	}
	return slots, pre, nil
}

// sealDeletesLocked stamps the collected slots dead at seq, retaining
// their versions (rows, index entries, pk mappings) for snapshots that
// still see them; GC reclaims the slots once no snapshot can.
func (t *Table) sealDeletesLocked(slots []int, seq uint64) {
	for _, slot := range slots {
		m := &t.meta[slot]
		m.end = seq
		t.vslotAdd(slot)
		t.live--
		t.version++
	}
}

// deleteWhereLocked is DeleteWhere's physical body under the write
// lock; with collect set it gathers effects and their inverses for
// journaling. Only valid when every slot is plain (no active
// snapshots).
func (t *Table) deleteWhereLocked(pred func(Row) bool, collect bool) (int, []Mutation, []Mutation) {
	n := 0
	var muts, undo []Mutation
	for slot, r := range t.rows {
		if r == nil || !pred(r) {
			continue
		}
		if t.pkIndex != nil {
			delete(t.pkIndex, t.pkKey(r))
		}
		for _, ix := range t.indexes {
			ix.remove(slot, r)
		}
		for _, ix := range t.ordered {
			ix.remove(slot, r)
		}
		t.rows[slot] = nil
		t.free = append(t.free, slot)
		t.live--
		t.version++
		n++
		if collect {
			muts = append(muts, Mutation{Kind: MutDelete, Slot: slot})
			undo = append(undo, Mutation{Kind: MutInsert, Slot: slot, Row: r})
		}
	}
	return n, muts, undo
}

// --- slot-addressed effect application ---------------------------------
//
// The helpers below re-apply (or reverse) row effects at exact slots,
// maintaining every index, the free list and the live/version counters
// without re-validation. Recovery replay drives them forward; the
// journaled mutators drive them backward when the WAL rejects a record.
// Caller holds the write lock.

// applyInsertSlot places r at slot, growing the row slice as needed.
// Replayed rows carry the "ancient" begin stamp: recovery runs with no
// live snapshots, so every recovered row predates every future one.
func (t *Table) applyInsertSlot(slot int, r Row) error {
	for len(t.rows) <= slot {
		t.rows = append(t.rows, nil)
		t.meta = append(t.meta, slotMeta{})
	}
	if t.rows[slot] != nil {
		return fmt.Errorf("relation: table %s replay insert into occupied slot %d", t.name, slot)
	}
	t.meta[slot] = slotMeta{begin: 1}
	for i, s := range t.free {
		if s == slot {
			t.free[i] = t.free[len(t.free)-1]
			t.free = t.free[:len(t.free)-1]
			break
		}
	}
	t.rows[slot] = r
	if t.pkIndex != nil {
		t.pkIndex[t.pkKey(r)] = slot
	}
	for _, ix := range t.indexes {
		ix.add(slot, r)
	}
	for _, ix := range t.ordered {
		ix.add(slot, r)
	}
	t.live++
	t.version++
	t.bumpAutoLocked(r)
	return nil
}

// applyUpdateSlot replaces the live row at slot with repl.
func (t *Table) applyUpdateSlot(slot int, repl Row) error {
	if slot < 0 || slot >= len(t.rows) || t.rows[slot] == nil {
		return fmt.Errorf("relation: table %s replay update of dead slot %d", t.name, slot)
	}
	old := t.rows[slot]
	if t.pkIndex != nil {
		oldKey, newKey := t.pkKey(old), t.pkKey(repl)
		if oldKey != newKey {
			delete(t.pkIndex, oldKey)
			t.pkIndex[newKey] = slot
		}
	}
	for _, ix := range t.indexes {
		ix.update(slot, old, repl)
	}
	for _, ix := range t.ordered {
		ix.update(slot, old, repl)
	}
	t.rows[slot] = repl
	t.meta[slot] = slotMeta{begin: 1}
	t.version++
	t.bumpAutoLocked(repl)
	return nil
}

// applyDeleteSlot tombstones the live row at slot.
func (t *Table) applyDeleteSlot(slot int) error {
	if slot < 0 || slot >= len(t.rows) || t.rows[slot] == nil {
		return fmt.Errorf("relation: table %s replay delete of dead slot %d", t.name, slot)
	}
	t.meta[slot] = slotMeta{}
	r := t.rows[slot]
	if t.pkIndex != nil {
		delete(t.pkIndex, t.pkKey(r))
	}
	for _, ix := range t.indexes {
		ix.remove(slot, r)
	}
	for _, ix := range t.ordered {
		ix.remove(slot, r)
	}
	t.rows[slot] = nil
	t.free = append(t.free, slot)
	t.live--
	t.version++
	return nil
}

// undoLocked reverses a batch of inverse effects, newest first.
func (t *Table) undoLocked(undo []Mutation) {
	for i := len(undo) - 1; i >= 0; i-- {
		m := undo[i]
		switch m.Kind {
		case MutInsert:
			t.applyInsertSlot(m.Slot, m.Row)
		case MutUpdate:
			t.applyUpdateSlot(m.Slot, m.Row)
		case MutDelete:
			t.applyDeleteSlot(m.Slot)
		}
	}
}

// bumpAutoLocked keeps the auto-increment counter ahead of any id that
// arrives via replay, so post-recovery inserts never collide.
func (t *Table) bumpAutoLocked(r Row) {
	if t.autoCol < 0 {
		return
	}
	if iv, ok := r[t.autoCol].(int64); ok && iv >= t.nextAut {
		t.nextAut = iv + 1
	}
}

// rebuildFreeLocked recomputes the free list from the tombstones —
// recovery's final step, after snapshot load and replay both poked
// slots directly. It also squares up the meta slice with the rows
// (recovered rows carry the ancient begin stamp).
func (t *Table) rebuildFreeLocked() {
	t.free = t.free[:0]
	for len(t.meta) < len(t.rows) {
		t.meta = append(t.meta, slotMeta{})
	}
	for slot, r := range t.rows {
		if r == nil {
			t.free = append(t.free, slot)
			t.meta[slot] = slotMeta{}
		} else if t.meta[slot].begin == 0 {
			t.meta[slot] = slotMeta{begin: 1}
		}
	}
}

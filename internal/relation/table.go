package relation

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Common errors returned by table operations.
var (
	ErrDuplicateKey = errors.New("relation: duplicate primary key")
	ErrNotFound     = errors.New("relation: row not found")
	ErrArity        = errors.New("relation: row arity does not match schema")
)

// TableOption configures a table at construction time.
type TableOption func(*Table) error

// WithPrimaryKey declares the primary key columns. Inserts enforce
// uniqueness and Get performs O(1) lookups on the key.
func WithPrimaryKey(cols ...string) TableOption {
	return func(t *Table) error {
		for _, c := range cols {
			i, ok := t.schema.Index(c)
			if !ok {
				return fmt.Errorf("relation: primary key column %q not in schema", c)
			}
			t.pk = append(t.pk, i)
		}
		t.pkIndex = make(map[string]int)
		return nil
	}
}

// WithAutoIncrement makes the named INT column auto-assign increasing
// values when an insert supplies NULL for it.
func WithAutoIncrement(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: auto-increment column %q not in schema", col)
		}
		if t.schema.Column(i).Type != TypeInt {
			return fmt.Errorf("relation: auto-increment column %q must be INT", col)
		}
		t.autoCol = i
		return nil
	}
}

// WithIndex adds a secondary hash index on a single column, accelerating
// Lookup on equality.
func WithIndex(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: index column %q not in schema", col)
		}
		t.indexes[strings.ToLower(col)] = &secondaryIndex{col: i, slots: make(map[string][]int)}
		return nil
	}
}

// secondaryIndex is a hash index from a single column's encoded value to
// the row slots holding that value.
type secondaryIndex struct {
	col   int
	slots map[string][]int
}

func (ix *secondaryIndex) add(slot int, row Row) {
	k := encodeKey([]Value{row[ix.col]})
	ix.slots[k] = append(ix.slots[k], slot)
}

func (ix *secondaryIndex) remove(slot int, row Row) {
	k := encodeKey([]Value{row[ix.col]})
	list := ix.slots[k]
	for i, s := range list {
		if s == slot {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(ix.slots, k)
	} else {
		ix.slots[k] = list
	}
}

// update rekeys slot from old's value to repl's. Updates usually touch
// columns other than this index's, so the unchanged-value case skips
// the remove/add pair (two key encodings plus a slot-list scan).
func (ix *secondaryIndex) update(slot int, old, repl Row) {
	if Equal(old[ix.col], repl[ix.col]) {
		return
	}
	ix.remove(slot, old)
	ix.add(slot, repl)
}

// Table is a mutable, thread-safe relation: a schema plus rows, with
// optional primary-key and secondary hash indexes. Deleted rows leave
// tombstones that scans skip; slots are reused by later inserts.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    []Row // nil entries are tombstones
	free    []int // tombstone slots available for reuse
	live    int
	pk      []int
	pkIndex map[string]int
	indexes map[string]*secondaryIndex
	ordered map[string]*orderedIndex
	autoCol int
	nextAut int64
	shardCol int           // -1 = no declared shard key (see shard.go)
	obs      []RowObserver // committed-mutation observers (see shard.go)
	version uint64
	epoch   uint64
	store   atomic.Pointer[storageBox] // nil = ephemeral (memory-only) backend
}

// Version returns a counter that increases on every mutation (insert,
// update, delete). Derived views and caches compare versions to decide
// whether a rebuild is due, instead of diffing rows.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// SchemaEpoch returns a counter that increases only when the table's
// shape changes — today, when an index is added to a live table
// (AddOrderedIndex). Row DML never moves it. Query plans fingerprint on
// the epoch rather than the mutation version, so cached plans survive
// writes and replan only when an access path could have appeared or
// vanished (or when statistics drift far enough; see sqlmini's cache).
func (t *Table) SchemaEpoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// PlanFingerprint returns the schema epoch and live-row count under a
// single lock acquisition — the plan-cache validity probe, which runs
// once per dependent table on every statement execution.
func (t *Table) PlanFingerprint() (epoch uint64, rows int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, t.live
}

// ViewFingerprint returns the schema epoch and mutation version under a
// single lock acquisition — the materialized-view freshness probe.
// Where plans fingerprint on (epoch, row-count drift) because they bake
// in access paths but never data, views bake in DATA: any row DML makes
// a view's contents potentially stale, so views key on the full
// mutation counter.
func (t *Table) ViewFingerprint() (epoch, version uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, t.version
}

// NewTable constructs an empty table with the given name and schema.
func NewTable(name string, schema *Schema, opts ...TableOption) (*Table, error) {
	t := &Table{
		name:     name,
		schema:   schema,
		indexes:  make(map[string]*secondaryIndex),
		ordered:  make(map[string]*orderedIndex),
		autoCol:  -1,
		nextAut:  1,
		shardCol: -1,
	}
	for _, opt := range opts {
		if err := opt(t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustTable is NewTable that panics on error; for statically known schemas.
func MustTable(name string, schema *Schema, opts ...TableOption) *Table {
	t, err := NewTable(name, schema, opts...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// PrimaryKey returns the primary-key column names, if any.
func (t *Table) PrimaryKey() []string {
	out := make([]string, len(t.pk))
	for i, c := range t.pk {
		out[i] = t.schema.Column(c).Name
	}
	return out
}

// AutoIncrement returns the auto-increment column name, or "".
func (t *Table) AutoIncrement() string {
	if t.autoCol < 0 {
		return ""
	}
	return t.schema.Column(t.autoCol).Name
}

// SecondaryIndexes returns the names of columns with secondary indexes,
// sorted.
func (t *Table) SecondaryIndexes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for name := range t.indexes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// validate coerces a row to the schema, applying auto-increment and
// checking arity, types and NOT NULL constraints. Caller holds the lock.
func (t *Table) validate(row Row) (Row, error) {
	if len(row) != t.schema.Len() {
		return nil, fmt.Errorf("%w: table %s wants %d columns, got %d", ErrArity, t.name, t.schema.Len(), len(row))
	}
	out := make(Row, len(row))
	for i, v := range row {
		if v == nil && i == t.autoCol {
			v = t.nextAut
			t.nextAut++
		}
		col := t.schema.Column(i)
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("relation: table %s column %s: %w", t.name, col.Name, err)
		}
		if cv == nil && col.NotNull {
			return nil, fmt.Errorf("relation: table %s column %s: NULL in NOT NULL column", t.name, col.Name)
		}
		if iv, ok := cv.(int64); ok && i == t.autoCol && iv >= t.nextAut {
			t.nextAut = iv + 1
		}
		out[i] = cv
	}
	return out, nil
}

func (t *Table) pkKey(row Row) string {
	vals := make([]Value, len(t.pk))
	for i, c := range t.pk {
		vals[i] = row[c]
	}
	return encodeKey(vals)
}

// insertLocked validates and stores a row; the caller holds the write
// lock. It returns the slot and the stored row.
func (t *Table) insertLocked(row Row) (int, Row, error) {
	r, err := t.validate(row)
	if err != nil {
		return 0, nil, err
	}
	var key string
	if t.pkIndex != nil {
		key = t.pkKey(r)
		if _, dup := t.pkIndex[key]; dup {
			return 0, nil, fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.name, key)
		}
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = r
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, r)
	}
	if t.pkIndex != nil {
		t.pkIndex[key] = slot
	}
	for _, ix := range t.indexes {
		ix.add(slot, r)
	}
	for _, ix := range t.ordered {
		ix.add(slot, r)
	}
	t.live++
	t.version++
	return slot, r, nil
}

// Insert validates and stores a row, returning the slot it occupies.
// On a table with attached Storage the insert is journaled before
// Insert returns; a WAL failure rolls the row back out of memory.
func (t *Table) Insert(row Row) (int, error) {
	if sb := t.store.Load(); sb != nil {
		slot, _, err := t.insertDurable(sb.s, row)
		return slot, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	slot, r, err := t.insertLocked(row)
	if err == nil {
		t.notifyLocked(MutInsert, nil, r)
	}
	return slot, err
}

// InsertGet inserts a row and returns a copy of the stored row, which
// reflects auto-increment assignment and type coercion.
func (t *Table) InsertGet(row Row) (Row, error) {
	if sb := t.store.Load(); sb != nil {
		_, r, err := t.insertDurable(sb.s, row)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, r, err := t.insertLocked(row)
	if err != nil {
		return nil, err
	}
	t.notifyLocked(MutInsert, nil, r)
	return r.Clone(), nil
}

// insertDurable applies an insert and journals it following the
// Storage protocol (see storage.go). The returned row is a copy.
func (t *Table) insertDurable(s Storage, row Row) (int, Row, error) {
	s.BeginMutate()
	t.mu.Lock()
	slot, r, err := t.insertLocked(row)
	if err != nil {
		t.mu.Unlock()
		s.EndMutate()
		return 0, nil, err
	}
	lsn, err := s.LogMutations(t.name, []Mutation{{Kind: MutInsert, Slot: slot, Row: r}})
	if err != nil {
		t.applyDeleteSlot(slot)
		t.mu.Unlock()
		s.EndMutate()
		return 0, nil, err
	}
	t.notifyLocked(MutInsert, nil, r)
	clone := r.Clone()
	t.mu.Unlock()
	s.EndMutate()
	return slot, clone, s.WaitDurable(lsn)
}

// MustInsert inserts and panics on error; for generator/loader code paths
// where a failure indicates a programming bug.
func (t *Table) MustInsert(row Row) int {
	slot, err := t.Insert(row)
	if err != nil {
		panic(err)
	}
	return slot
}

// Get returns a copy of the row with the given primary-key values.
func (t *Table) Get(key ...Value) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.pkSlotLocked(key)
	if !ok {
		return nil, false
	}
	return t.rows[slot].Clone(), true
}

// pkSlotLocked resolves primary-key values to a row slot; the caller
// holds at least the read lock. The single integer key — the dominant
// probe shape (auto-increment ids) — skips the normalization slice and
// encodeKey's builder: the key renders into a stack buffer and the
// string([]byte) map index compiles to a no-allocation lookup.
func (t *Table) pkSlotLocked(key []Value) (int, bool) {
	if t.pkIndex == nil || len(key) != len(t.pk) {
		return 0, false
	}
	if len(key) == 1 {
		var x int64
		switch v := key[0].(type) {
		case int64:
			x = v
		case int:
			x = int64(v)
		case float64:
			if v != float64(int64(v)) {
				goto general // non-integral floats key with an "f" tag
			}
			x = int64(v)
		default:
			goto general
		}
		{
			var kb [24]byte
			b := append(kb[:0], 'i')
			b = strconv.AppendInt(b, x, 10)
			b = append(b, '|')
			slot, ok := t.pkIndex[string(b)]
			return slot, ok
		}
	}
general:
	norm := make([]Value, len(key))
	for i, v := range key {
		nv, err := Normalize(v)
		if err != nil {
			return 0, false
		}
		norm[i] = nv
	}
	slot, ok := t.pkIndex[encodeKey(norm)]
	return slot, ok
}

// Scan calls fn for every live row in slot order; fn returning false stops
// the scan. The row passed to fn must not be mutated or retained.
func (t *Table) Scan(fn func(slot int, row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for slot, r := range t.rows {
		if r == nil {
			continue
		}
		if !fn(slot, r) {
			return
		}
	}
}

// Rows returns copies of all live rows in slot order.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, t.live)
	for _, r := range t.rows {
		if r != nil {
			out = append(out, r.Clone())
		}
	}
	return out
}

// SelectWhere returns copies of the rows satisfying pred.
func (t *Table) SelectWhere(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(_ int, r Row) bool {
		if pred(r) {
			out = append(out, r.Clone())
		}
		return true
	})
	return out
}

// Lookup returns copies of the rows whose named column equals v, using a
// secondary index when one exists, and a scan otherwise.
func (t *Table) Lookup(col string, v Value) []Row {
	nv, err := Normalize(v)
	if err != nil {
		return nil
	}
	t.mu.RLock()
	ix, ok := t.indexes[strings.ToLower(col)]
	if ok {
		slots := ix.slots[encodeKey([]Value{nv})]
		out := make([]Row, 0, len(slots))
		sorted := append([]int(nil), slots...)
		sort.Ints(sorted)
		for _, s := range sorted {
			out = append(out, t.rows[s].Clone())
		}
		t.mu.RUnlock()
		return out
	}
	t.mu.RUnlock()
	ci, ok := t.schema.Index(col)
	if !ok {
		return nil
	}
	return t.SelectWhere(func(r Row) bool { return Equal(r[ci], nv) })
}

// LookupMany returns copies of the rows whose named column equals any
// of the keys, in slot (scan) order with duplicates removed, acquiring
// the read lock once for the whole batch. Upper layers use it to drive
// multi-key index probes (IN lists, batched joins) without per-row
// locking. NULL keys match nothing, mirroring SQL equality; with no
// index on the column it degrades to a single scan.
func (t *Table) LookupMany(col string, keys []Value) []Row {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k == nil {
			continue
		}
		nk, err := Normalize(k)
		if err != nil {
			continue
		}
		want[encodeKey([]Value{nk})] = true
	}
	if len(want) == 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ix, ok := t.indexes[strings.ToLower(col)]; ok {
		var slots []int
		for k := range want {
			slots = append(slots, ix.slots[k]...)
		}
		sort.Ints(slots)
		out := make([]Row, 0, len(slots))
		prev := -1
		for _, s := range slots {
			if s == prev {
				continue // same row reached via equal-encoding keys
			}
			prev = s
			out = append(out, t.rows[s].Clone())
		}
		return out
	}
	ci, ok := t.schema.Index(col)
	if !ok {
		return nil
	}
	var out []Row
	for _, r := range t.rows {
		if r == nil || r[ci] == nil {
			continue
		}
		if want[encodeKey([]Value{r[ci]})] {
			out = append(out, r.Clone())
		}
	}
	return out
}

// GetMany returns copies of the rows matching the given primary keys —
// a batch Get under one read lock. Rows come back in slot (scan) order
// with duplicates removed, matching Lookup/LookupMany, so planned
// multi-key probes order rows exactly as a scan would; absent keys are
// skipped.
func (t *Table) GetMany(keys ...[]Value) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pkIndex == nil {
		return nil
	}
	slots := make([]int, 0, len(keys))
	for _, key := range keys {
		if len(key) != len(t.pk) {
			continue
		}
		norm := make([]Value, len(key))
		bad := false
		for i, v := range key {
			nv, err := Normalize(v)
			if err != nil {
				bad = true
				break
			}
			norm[i] = nv
		}
		if bad {
			continue
		}
		if slot, ok := t.pkIndex[encodeKey(norm)]; ok {
			slots = append(slots, slot)
		}
	}
	sort.Ints(slots)
	out := make([]Row, 0, len(slots))
	prev := -1
	for _, s := range slots {
		if s == prev {
			continue
		}
		prev = s
		out = append(out, t.rows[s].Clone())
	}
	return out
}

// GetRef is Get without the defensive copy: the returned row is the
// stored row itself. The store never mutates a stored row in place —
// updates validate a replacement and swap the slot pointer — so the
// reference stays a consistent snapshot; the caller must not mutate or
// grow it. Query executors batch through this to skip one allocation
// per probed row.
func (t *Table) GetRef(key ...Value) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.pkSlotLocked(key)
	if !ok {
		return nil, false
	}
	return t.rows[slot], true
}

// LookupManyRef is LookupMany returning references to the stored rows
// instead of copies — same slot order, same dedup, one lock
// acquisition. Rows must not be mutated or retained past the point
// where a copy would have been taken; see GetRef for why references
// stay consistent.
func (t *Table) LookupManyRef(col string, keys []Value) []Row {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k == nil {
			continue
		}
		nk, err := Normalize(k)
		if err != nil {
			continue
		}
		want[encodeKey([]Value{nk})] = true
	}
	if len(want) == 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ix, ok := t.indexes[strings.ToLower(col)]; ok {
		var slots []int
		for k := range want {
			slots = append(slots, ix.slots[k]...)
		}
		sort.Ints(slots)
		out := make([]Row, 0, len(slots))
		prev := -1
		for _, s := range slots {
			if s == prev {
				continue // same row reached via equal-encoding keys
			}
			prev = s
			out = append(out, t.rows[s])
		}
		return out
	}
	ci, ok := t.schema.Index(col)
	if !ok {
		return nil
	}
	var out []Row
	for _, r := range t.rows {
		if r == nil || r[ci] == nil {
			continue
		}
		if want[encodeKey([]Value{r[ci]})] {
			out = append(out, r)
		}
	}
	return out
}

// GetManyRef is GetMany returning references to the stored rows instead
// of copies — same slot order and dedup. Rows must not be mutated; see
// GetRef.
func (t *Table) GetManyRef(keys ...[]Value) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pkIndex == nil {
		return nil
	}
	slots := make([]int, 0, len(keys))
	for _, key := range keys {
		if len(key) != len(t.pk) {
			continue
		}
		norm := make([]Value, len(key))
		bad := false
		for i, v := range key {
			nv, err := Normalize(v)
			if err != nil {
				bad = true
				break
			}
			norm[i] = nv
		}
		if bad {
			continue
		}
		if slot, ok := t.pkIndex[encodeKey(norm)]; ok {
			slots = append(slots, slot)
		}
	}
	sort.Ints(slots)
	out := make([]Row, 0, len(slots))
	prev := -1
	for _, s := range slots {
		if s == prev {
			continue
		}
		prev = s
		out = append(out, t.rows[s])
	}
	return out
}

// HasIndex reports whether a secondary index exists on the column.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(col)]
	return ok
}

// UpdateByKey updates the row with the given primary-key values via set,
// in O(1). It returns ErrNotFound when the key is absent and fails if the
// replacement would collide on a changed key. With attached Storage the
// update is journaled before returning; a WAL failure restores the old
// row.
func (t *Table) UpdateByKey(key []Value, set func(Row) Row) error {
	if sb := t.store.Load(); sb != nil {
		return t.updateByKeyDurable(sb.s, key, set)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, old, repl, err := t.updateByKeyLocked(key, set)
	if err == nil {
		t.notifyLocked(MutUpdate, old, repl)
	}
	return err
}

func (t *Table) updateByKeyDurable(s Storage, key []Value, set func(Row) Row) error {
	s.BeginMutate()
	t.mu.Lock()
	slot, old, repl, err := t.updateByKeyLocked(key, set)
	if err != nil {
		t.mu.Unlock()
		s.EndMutate()
		return err
	}
	lsn, err := s.LogMutations(t.name, []Mutation{{Kind: MutUpdate, Slot: slot, Row: repl}})
	if err != nil {
		t.applyUpdateSlot(slot, old)
		t.mu.Unlock()
		s.EndMutate()
		return err
	}
	t.notifyLocked(MutUpdate, old, repl)
	t.mu.Unlock()
	s.EndMutate()
	return s.WaitDurable(lsn)
}

// updateByKeyLocked performs the update under the write lock, returning
// the slot plus the pre- and post-image rows for journaling/undo.
func (t *Table) updateByKeyLocked(key []Value, set func(Row) Row) (int, Row, Row, error) {
	if t.pkIndex == nil || len(key) != len(t.pk) {
		return 0, nil, nil, fmt.Errorf("%w: table %s has no matching primary key", ErrNotFound, t.name)
	}
	norm := make([]Value, len(key))
	for i, v := range key {
		nv, err := Normalize(v)
		if err != nil {
			return 0, nil, nil, err
		}
		norm[i] = nv
	}
	oldKey := encodeKey(norm)
	slot, ok := t.pkIndex[oldKey]
	if !ok {
		return 0, nil, nil, fmt.Errorf("%w: table %s key %v", ErrNotFound, t.name, norm)
	}
	old := t.rows[slot]
	repl, err := t.validate(set(old.Clone()))
	if err != nil {
		return 0, nil, nil, err
	}
	newKey := t.pkKey(repl)
	if newKey != oldKey {
		if _, dup := t.pkIndex[newKey]; dup {
			return 0, nil, nil, fmt.Errorf("%w: table %s", ErrDuplicateKey, t.name)
		}
		delete(t.pkIndex, oldKey)
		t.pkIndex[newKey] = slot
	}
	for _, ix := range t.indexes {
		ix.update(slot, old, repl)
	}
	for _, ix := range t.ordered {
		ix.update(slot, old, repl)
	}
	t.rows[slot] = repl
	t.version++
	return slot, old, repl, nil
}

// UpdateWhere applies set to every row satisfying pred and reports how
// many rows changed. The set function receives a copy and returns the
// replacement row, which is validated like an insert. A mid-batch
// validation error leaves earlier updates applied (and, with attached
// Storage, journaled); a WAL failure instead rolls the whole batch back.
func (t *Table) UpdateWhere(pred func(Row) bool, set func(Row) Row) (int, error) {
	sb := t.store.Load()
	if sb == nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		// Effects are collected only when an observer needs the pre/post
		// image pairs; the unobserved path keeps its zero-allocation shape.
		n, muts, undo, err := t.updateWhereLocked(pred, set, t.observedLocked())
		t.notifyUpdatesLocked(muts, undo)
		return n, err
	}
	s := sb.s
	s.BeginMutate()
	t.mu.Lock()
	n, muts, undo, uerr := t.updateWhereLocked(pred, set, true)
	if n == 0 {
		t.mu.Unlock()
		s.EndMutate()
		return 0, uerr
	}
	lsn, err := s.LogMutations(t.name, muts)
	if err != nil {
		t.undoLocked(undo)
		t.mu.Unlock()
		s.EndMutate()
		return 0, err
	}
	t.notifyUpdatesLocked(muts, undo)
	t.mu.Unlock()
	s.EndMutate()
	if werr := s.WaitDurable(lsn); uerr == nil {
		uerr = werr
	}
	return n, uerr
}

// updateWhereLocked is UpdateWhere's body under the write lock. With
// collect set it gathers the applied effects (post-images) and their
// inverses (pre-images) for journaling and rollback; the memory path
// skips both allocations.
func (t *Table) updateWhereLocked(pred func(Row) bool, set func(Row) Row, collect bool) (int, []Mutation, []Mutation, error) {
	n := 0
	var muts, undo []Mutation
	for slot, r := range t.rows {
		if r == nil || !pred(r) {
			continue
		}
		repl, err := t.validate(set(r.Clone()))
		if err != nil {
			return n, muts, undo, err
		}
		if t.pkIndex != nil {
			oldKey, newKey := t.pkKey(r), t.pkKey(repl)
			if oldKey != newKey {
				if _, dup := t.pkIndex[newKey]; dup {
					return n, muts, undo, fmt.Errorf("%w: table %s", ErrDuplicateKey, t.name)
				}
				delete(t.pkIndex, oldKey)
				t.pkIndex[newKey] = slot
			}
		}
		for _, ix := range t.indexes {
			ix.update(slot, r, repl)
		}
		for _, ix := range t.ordered {
			ix.update(slot, r, repl)
		}
		t.rows[slot] = repl
		t.version++
		n++
		if collect {
			muts = append(muts, Mutation{Kind: MutUpdate, Slot: slot, Row: repl})
			undo = append(undo, Mutation{Kind: MutUpdate, Slot: slot, Row: r})
		}
	}
	return n, muts, undo, nil
}

// DeleteWhere removes every row satisfying pred and reports the count.
// With attached Storage the batch is journaled as one record; if the
// WAL rejects it the deletes are rolled back and 0 is reported (the
// log poisons itself on write failure, so subsequent mutations surface
// the error).
func (t *Table) DeleteWhere(pred func(Row) bool) int {
	sb := t.store.Load()
	if sb == nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		n, _, undo := t.deleteWhereLocked(pred, t.observedLocked())
		t.notifyDeletesLocked(undo)
		return n
	}
	s := sb.s
	s.BeginMutate()
	t.mu.Lock()
	n, muts, undo := t.deleteWhereLocked(pred, true)
	if n == 0 {
		t.mu.Unlock()
		s.EndMutate()
		return 0
	}
	lsn, err := s.LogMutations(t.name, muts)
	if err != nil {
		t.undoLocked(undo)
		t.mu.Unlock()
		s.EndMutate()
		return 0
	}
	t.notifyDeletesLocked(undo)
	t.mu.Unlock()
	s.EndMutate()
	s.WaitDurable(lsn)
	return n
}

// deleteWhereLocked is DeleteWhere's body under the write lock; with
// collect set it gathers effects and their inverses for journaling.
func (t *Table) deleteWhereLocked(pred func(Row) bool, collect bool) (int, []Mutation, []Mutation) {
	n := 0
	var muts, undo []Mutation
	for slot, r := range t.rows {
		if r == nil || !pred(r) {
			continue
		}
		if t.pkIndex != nil {
			delete(t.pkIndex, t.pkKey(r))
		}
		for _, ix := range t.indexes {
			ix.remove(slot, r)
		}
		for _, ix := range t.ordered {
			ix.remove(slot, r)
		}
		t.rows[slot] = nil
		t.free = append(t.free, slot)
		t.live--
		t.version++
		n++
		if collect {
			muts = append(muts, Mutation{Kind: MutDelete, Slot: slot})
			undo = append(undo, Mutation{Kind: MutInsert, Slot: slot, Row: r})
		}
	}
	return n, muts, undo
}

// --- slot-addressed effect application ---------------------------------
//
// The helpers below re-apply (or reverse) row effects at exact slots,
// maintaining every index, the free list and the live/version counters
// without re-validation. Recovery replay drives them forward; the
// journaled mutators drive them backward when the WAL rejects a record.
// Caller holds the write lock.

// applyInsertSlot places r at slot, growing the row slice as needed.
func (t *Table) applyInsertSlot(slot int, r Row) error {
	for len(t.rows) <= slot {
		t.rows = append(t.rows, nil)
	}
	if t.rows[slot] != nil {
		return fmt.Errorf("relation: table %s replay insert into occupied slot %d", t.name, slot)
	}
	for i, s := range t.free {
		if s == slot {
			t.free[i] = t.free[len(t.free)-1]
			t.free = t.free[:len(t.free)-1]
			break
		}
	}
	t.rows[slot] = r
	if t.pkIndex != nil {
		t.pkIndex[t.pkKey(r)] = slot
	}
	for _, ix := range t.indexes {
		ix.add(slot, r)
	}
	for _, ix := range t.ordered {
		ix.add(slot, r)
	}
	t.live++
	t.version++
	t.bumpAutoLocked(r)
	return nil
}

// applyUpdateSlot replaces the live row at slot with repl.
func (t *Table) applyUpdateSlot(slot int, repl Row) error {
	if slot < 0 || slot >= len(t.rows) || t.rows[slot] == nil {
		return fmt.Errorf("relation: table %s replay update of dead slot %d", t.name, slot)
	}
	old := t.rows[slot]
	if t.pkIndex != nil {
		oldKey, newKey := t.pkKey(old), t.pkKey(repl)
		if oldKey != newKey {
			delete(t.pkIndex, oldKey)
			t.pkIndex[newKey] = slot
		}
	}
	for _, ix := range t.indexes {
		ix.update(slot, old, repl)
	}
	for _, ix := range t.ordered {
		ix.update(slot, old, repl)
	}
	t.rows[slot] = repl
	t.version++
	t.bumpAutoLocked(repl)
	return nil
}

// applyDeleteSlot tombstones the live row at slot.
func (t *Table) applyDeleteSlot(slot int) error {
	if slot < 0 || slot >= len(t.rows) || t.rows[slot] == nil {
		return fmt.Errorf("relation: table %s replay delete of dead slot %d", t.name, slot)
	}
	r := t.rows[slot]
	if t.pkIndex != nil {
		delete(t.pkIndex, t.pkKey(r))
	}
	for _, ix := range t.indexes {
		ix.remove(slot, r)
	}
	for _, ix := range t.ordered {
		ix.remove(slot, r)
	}
	t.rows[slot] = nil
	t.free = append(t.free, slot)
	t.live--
	t.version++
	return nil
}

// undoLocked reverses a batch of inverse effects, newest first.
func (t *Table) undoLocked(undo []Mutation) {
	for i := len(undo) - 1; i >= 0; i-- {
		m := undo[i]
		switch m.Kind {
		case MutInsert:
			t.applyInsertSlot(m.Slot, m.Row)
		case MutUpdate:
			t.applyUpdateSlot(m.Slot, m.Row)
		case MutDelete:
			t.applyDeleteSlot(m.Slot)
		}
	}
}

// bumpAutoLocked keeps the auto-increment counter ahead of any id that
// arrives via replay, so post-recovery inserts never collide.
func (t *Table) bumpAutoLocked(r Row) {
	if t.autoCol < 0 {
		return
	}
	if iv, ok := r[t.autoCol].(int64); ok && iv >= t.nextAut {
		t.nextAut = iv + 1
	}
}

// rebuildFreeLocked recomputes the free list from the tombstones —
// recovery's final step, after snapshot load and replay both poked
// slots directly.
func (t *Table) rebuildFreeLocked() {
	t.free = t.free[:0]
	for slot, r := range t.rows {
		if r == nil {
			t.free = append(t.free, slot)
		}
	}
}

package relation

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Common errors returned by table operations.
var (
	ErrDuplicateKey = errors.New("relation: duplicate primary key")
	ErrNotFound     = errors.New("relation: row not found")
	ErrArity        = errors.New("relation: row arity does not match schema")
)

// TableOption configures a table at construction time.
type TableOption func(*Table) error

// WithPrimaryKey declares the primary key columns. Inserts enforce
// uniqueness and Get performs O(1) lookups on the key.
func WithPrimaryKey(cols ...string) TableOption {
	return func(t *Table) error {
		for _, c := range cols {
			i, ok := t.schema.Index(c)
			if !ok {
				return fmt.Errorf("relation: primary key column %q not in schema", c)
			}
			t.pk = append(t.pk, i)
		}
		t.pkIndex = make(map[string]int)
		return nil
	}
}

// WithAutoIncrement makes the named INT column auto-assign increasing
// values when an insert supplies NULL for it.
func WithAutoIncrement(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: auto-increment column %q not in schema", col)
		}
		if t.schema.Column(i).Type != TypeInt {
			return fmt.Errorf("relation: auto-increment column %q must be INT", col)
		}
		t.autoCol = i
		return nil
	}
}

// WithIndex adds a secondary hash index on a single column, accelerating
// Lookup on equality.
func WithIndex(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: index column %q not in schema", col)
		}
		t.indexes[strings.ToLower(col)] = &secondaryIndex{col: i, slots: make(map[string][]int)}
		return nil
	}
}

// secondaryIndex is a hash index from a single column's encoded value to
// the row slots holding that value.
type secondaryIndex struct {
	col   int
	slots map[string][]int
}

func (ix *secondaryIndex) add(slot int, row Row) {
	k := encodeKey([]Value{row[ix.col]})
	ix.slots[k] = append(ix.slots[k], slot)
}

func (ix *secondaryIndex) remove(slot int, row Row) {
	k := encodeKey([]Value{row[ix.col]})
	list := ix.slots[k]
	for i, s := range list {
		if s == slot {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(ix.slots, k)
	} else {
		ix.slots[k] = list
	}
}

// update rekeys slot from old's value to repl's. Updates usually touch
// columns other than this index's, so the unchanged-value case skips
// the remove/add pair (two key encodings plus a slot-list scan).
func (ix *secondaryIndex) update(slot int, old, repl Row) {
	if Equal(old[ix.col], repl[ix.col]) {
		return
	}
	ix.remove(slot, old)
	ix.add(slot, repl)
}

// Table is a mutable, thread-safe relation: a schema plus rows, with
// optional primary-key and secondary hash indexes. Deleted rows leave
// tombstones that scans skip; slots are reused by later inserts.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    []Row // nil entries are tombstones
	free    []int // tombstone slots available for reuse
	live    int
	pk      []int
	pkIndex map[string]int
	indexes map[string]*secondaryIndex
	ordered map[string]*orderedIndex
	autoCol int
	nextAut int64
	version uint64
	epoch   uint64
}

// Version returns a counter that increases on every mutation (insert,
// update, delete). Derived views and caches compare versions to decide
// whether a rebuild is due, instead of diffing rows.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// SchemaEpoch returns a counter that increases only when the table's
// shape changes — today, when an index is added to a live table
// (AddOrderedIndex). Row DML never moves it. Query plans fingerprint on
// the epoch rather than the mutation version, so cached plans survive
// writes and replan only when an access path could have appeared or
// vanished (or when statistics drift far enough; see sqlmini's cache).
func (t *Table) SchemaEpoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// PlanFingerprint returns the schema epoch and live-row count under a
// single lock acquisition — the plan-cache validity probe, which runs
// once per dependent table on every statement execution.
func (t *Table) PlanFingerprint() (epoch uint64, rows int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, t.live
}

// ViewFingerprint returns the schema epoch and mutation version under a
// single lock acquisition — the materialized-view freshness probe.
// Where plans fingerprint on (epoch, row-count drift) because they bake
// in access paths but never data, views bake in DATA: any row DML makes
// a view's contents potentially stale, so views key on the full
// mutation counter.
func (t *Table) ViewFingerprint() (epoch, version uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, t.version
}

// NewTable constructs an empty table with the given name and schema.
func NewTable(name string, schema *Schema, opts ...TableOption) (*Table, error) {
	t := &Table{
		name:    name,
		schema:  schema,
		indexes: make(map[string]*secondaryIndex),
		ordered: make(map[string]*orderedIndex),
		autoCol: -1,
		nextAut: 1,
	}
	for _, opt := range opts {
		if err := opt(t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustTable is NewTable that panics on error; for statically known schemas.
func MustTable(name string, schema *Schema, opts ...TableOption) *Table {
	t, err := NewTable(name, schema, opts...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// PrimaryKey returns the primary-key column names, if any.
func (t *Table) PrimaryKey() []string {
	out := make([]string, len(t.pk))
	for i, c := range t.pk {
		out[i] = t.schema.Column(c).Name
	}
	return out
}

// AutoIncrement returns the auto-increment column name, or "".
func (t *Table) AutoIncrement() string {
	if t.autoCol < 0 {
		return ""
	}
	return t.schema.Column(t.autoCol).Name
}

// SecondaryIndexes returns the names of columns with secondary indexes,
// sorted.
func (t *Table) SecondaryIndexes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for name := range t.indexes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// validate coerces a row to the schema, applying auto-increment and
// checking arity, types and NOT NULL constraints. Caller holds the lock.
func (t *Table) validate(row Row) (Row, error) {
	if len(row) != t.schema.Len() {
		return nil, fmt.Errorf("%w: table %s wants %d columns, got %d", ErrArity, t.name, t.schema.Len(), len(row))
	}
	out := make(Row, len(row))
	for i, v := range row {
		if v == nil && i == t.autoCol {
			v = t.nextAut
			t.nextAut++
		}
		col := t.schema.Column(i)
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("relation: table %s column %s: %w", t.name, col.Name, err)
		}
		if cv == nil && col.NotNull {
			return nil, fmt.Errorf("relation: table %s column %s: NULL in NOT NULL column", t.name, col.Name)
		}
		if iv, ok := cv.(int64); ok && i == t.autoCol && iv >= t.nextAut {
			t.nextAut = iv + 1
		}
		out[i] = cv
	}
	return out, nil
}

func (t *Table) pkKey(row Row) string {
	vals := make([]Value, len(t.pk))
	for i, c := range t.pk {
		vals[i] = row[c]
	}
	return encodeKey(vals)
}

// insertLocked validates and stores a row; the caller holds the write
// lock. It returns the slot and the stored row.
func (t *Table) insertLocked(row Row) (int, Row, error) {
	r, err := t.validate(row)
	if err != nil {
		return 0, nil, err
	}
	var key string
	if t.pkIndex != nil {
		key = t.pkKey(r)
		if _, dup := t.pkIndex[key]; dup {
			return 0, nil, fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.name, key)
		}
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = r
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, r)
	}
	if t.pkIndex != nil {
		t.pkIndex[key] = slot
	}
	for _, ix := range t.indexes {
		ix.add(slot, r)
	}
	for _, ix := range t.ordered {
		ix.add(slot, r)
	}
	t.live++
	t.version++
	return slot, r, nil
}

// Insert validates and stores a row, returning the slot it occupies.
func (t *Table) Insert(row Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	slot, _, err := t.insertLocked(row)
	return slot, err
}

// InsertGet inserts a row and returns a copy of the stored row, which
// reflects auto-increment assignment and type coercion.
func (t *Table) InsertGet(row Row) (Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, r, err := t.insertLocked(row)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// MustInsert inserts and panics on error; for generator/loader code paths
// where a failure indicates a programming bug.
func (t *Table) MustInsert(row Row) int {
	slot, err := t.Insert(row)
	if err != nil {
		panic(err)
	}
	return slot
}

// Get returns a copy of the row with the given primary-key values.
func (t *Table) Get(key ...Value) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.pkSlotLocked(key)
	if !ok {
		return nil, false
	}
	return t.rows[slot].Clone(), true
}

// pkSlotLocked resolves primary-key values to a row slot; the caller
// holds at least the read lock. The single integer key — the dominant
// probe shape (auto-increment ids) — skips the normalization slice and
// encodeKey's builder: the key renders into a stack buffer and the
// string([]byte) map index compiles to a no-allocation lookup.
func (t *Table) pkSlotLocked(key []Value) (int, bool) {
	if t.pkIndex == nil || len(key) != len(t.pk) {
		return 0, false
	}
	if len(key) == 1 {
		var x int64
		switch v := key[0].(type) {
		case int64:
			x = v
		case int:
			x = int64(v)
		case float64:
			if v != float64(int64(v)) {
				goto general // non-integral floats key with an "f" tag
			}
			x = int64(v)
		default:
			goto general
		}
		{
			var kb [24]byte
			b := append(kb[:0], 'i')
			b = strconv.AppendInt(b, x, 10)
			b = append(b, '|')
			slot, ok := t.pkIndex[string(b)]
			return slot, ok
		}
	}
general:
	norm := make([]Value, len(key))
	for i, v := range key {
		nv, err := Normalize(v)
		if err != nil {
			return 0, false
		}
		norm[i] = nv
	}
	slot, ok := t.pkIndex[encodeKey(norm)]
	return slot, ok
}

// Scan calls fn for every live row in slot order; fn returning false stops
// the scan. The row passed to fn must not be mutated or retained.
func (t *Table) Scan(fn func(slot int, row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for slot, r := range t.rows {
		if r == nil {
			continue
		}
		if !fn(slot, r) {
			return
		}
	}
}

// Rows returns copies of all live rows in slot order.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, t.live)
	for _, r := range t.rows {
		if r != nil {
			out = append(out, r.Clone())
		}
	}
	return out
}

// SelectWhere returns copies of the rows satisfying pred.
func (t *Table) SelectWhere(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(_ int, r Row) bool {
		if pred(r) {
			out = append(out, r.Clone())
		}
		return true
	})
	return out
}

// Lookup returns copies of the rows whose named column equals v, using a
// secondary index when one exists, and a scan otherwise.
func (t *Table) Lookup(col string, v Value) []Row {
	nv, err := Normalize(v)
	if err != nil {
		return nil
	}
	t.mu.RLock()
	ix, ok := t.indexes[strings.ToLower(col)]
	if ok {
		slots := ix.slots[encodeKey([]Value{nv})]
		out := make([]Row, 0, len(slots))
		sorted := append([]int(nil), slots...)
		sort.Ints(sorted)
		for _, s := range sorted {
			out = append(out, t.rows[s].Clone())
		}
		t.mu.RUnlock()
		return out
	}
	t.mu.RUnlock()
	ci, ok := t.schema.Index(col)
	if !ok {
		return nil
	}
	return t.SelectWhere(func(r Row) bool { return Equal(r[ci], nv) })
}

// LookupMany returns copies of the rows whose named column equals any
// of the keys, in slot (scan) order with duplicates removed, acquiring
// the read lock once for the whole batch. Upper layers use it to drive
// multi-key index probes (IN lists, batched joins) without per-row
// locking. NULL keys match nothing, mirroring SQL equality; with no
// index on the column it degrades to a single scan.
func (t *Table) LookupMany(col string, keys []Value) []Row {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k == nil {
			continue
		}
		nk, err := Normalize(k)
		if err != nil {
			continue
		}
		want[encodeKey([]Value{nk})] = true
	}
	if len(want) == 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ix, ok := t.indexes[strings.ToLower(col)]; ok {
		var slots []int
		for k := range want {
			slots = append(slots, ix.slots[k]...)
		}
		sort.Ints(slots)
		out := make([]Row, 0, len(slots))
		prev := -1
		for _, s := range slots {
			if s == prev {
				continue // same row reached via equal-encoding keys
			}
			prev = s
			out = append(out, t.rows[s].Clone())
		}
		return out
	}
	ci, ok := t.schema.Index(col)
	if !ok {
		return nil
	}
	var out []Row
	for _, r := range t.rows {
		if r == nil || r[ci] == nil {
			continue
		}
		if want[encodeKey([]Value{r[ci]})] {
			out = append(out, r.Clone())
		}
	}
	return out
}

// GetMany returns copies of the rows matching the given primary keys —
// a batch Get under one read lock. Rows come back in slot (scan) order
// with duplicates removed, matching Lookup/LookupMany, so planned
// multi-key probes order rows exactly as a scan would; absent keys are
// skipped.
func (t *Table) GetMany(keys ...[]Value) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pkIndex == nil {
		return nil
	}
	slots := make([]int, 0, len(keys))
	for _, key := range keys {
		if len(key) != len(t.pk) {
			continue
		}
		norm := make([]Value, len(key))
		bad := false
		for i, v := range key {
			nv, err := Normalize(v)
			if err != nil {
				bad = true
				break
			}
			norm[i] = nv
		}
		if bad {
			continue
		}
		if slot, ok := t.pkIndex[encodeKey(norm)]; ok {
			slots = append(slots, slot)
		}
	}
	sort.Ints(slots)
	out := make([]Row, 0, len(slots))
	prev := -1
	for _, s := range slots {
		if s == prev {
			continue
		}
		prev = s
		out = append(out, t.rows[s].Clone())
	}
	return out
}

// GetRef is Get without the defensive copy: the returned row is the
// stored row itself. The store never mutates a stored row in place —
// updates validate a replacement and swap the slot pointer — so the
// reference stays a consistent snapshot; the caller must not mutate or
// grow it. Query executors batch through this to skip one allocation
// per probed row.
func (t *Table) GetRef(key ...Value) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.pkSlotLocked(key)
	if !ok {
		return nil, false
	}
	return t.rows[slot], true
}

// LookupManyRef is LookupMany returning references to the stored rows
// instead of copies — same slot order, same dedup, one lock
// acquisition. Rows must not be mutated or retained past the point
// where a copy would have been taken; see GetRef for why references
// stay consistent.
func (t *Table) LookupManyRef(col string, keys []Value) []Row {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k == nil {
			continue
		}
		nk, err := Normalize(k)
		if err != nil {
			continue
		}
		want[encodeKey([]Value{nk})] = true
	}
	if len(want) == 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ix, ok := t.indexes[strings.ToLower(col)]; ok {
		var slots []int
		for k := range want {
			slots = append(slots, ix.slots[k]...)
		}
		sort.Ints(slots)
		out := make([]Row, 0, len(slots))
		prev := -1
		for _, s := range slots {
			if s == prev {
				continue // same row reached via equal-encoding keys
			}
			prev = s
			out = append(out, t.rows[s])
		}
		return out
	}
	ci, ok := t.schema.Index(col)
	if !ok {
		return nil
	}
	var out []Row
	for _, r := range t.rows {
		if r == nil || r[ci] == nil {
			continue
		}
		if want[encodeKey([]Value{r[ci]})] {
			out = append(out, r)
		}
	}
	return out
}

// GetManyRef is GetMany returning references to the stored rows instead
// of copies — same slot order and dedup. Rows must not be mutated; see
// GetRef.
func (t *Table) GetManyRef(keys ...[]Value) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pkIndex == nil {
		return nil
	}
	slots := make([]int, 0, len(keys))
	for _, key := range keys {
		if len(key) != len(t.pk) {
			continue
		}
		norm := make([]Value, len(key))
		bad := false
		for i, v := range key {
			nv, err := Normalize(v)
			if err != nil {
				bad = true
				break
			}
			norm[i] = nv
		}
		if bad {
			continue
		}
		if slot, ok := t.pkIndex[encodeKey(norm)]; ok {
			slots = append(slots, slot)
		}
	}
	sort.Ints(slots)
	out := make([]Row, 0, len(slots))
	prev := -1
	for _, s := range slots {
		if s == prev {
			continue
		}
		prev = s
		out = append(out, t.rows[s])
	}
	return out
}

// HasIndex reports whether a secondary index exists on the column.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(col)]
	return ok
}

// UpdateByKey updates the row with the given primary-key values via set,
// in O(1). It returns ErrNotFound when the key is absent and fails if the
// replacement would collide on a changed key.
func (t *Table) UpdateByKey(key []Value, set func(Row) Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pkIndex == nil || len(key) != len(t.pk) {
		return fmt.Errorf("%w: table %s has no matching primary key", ErrNotFound, t.name)
	}
	norm := make([]Value, len(key))
	for i, v := range key {
		nv, err := Normalize(v)
		if err != nil {
			return err
		}
		norm[i] = nv
	}
	oldKey := encodeKey(norm)
	slot, ok := t.pkIndex[oldKey]
	if !ok {
		return fmt.Errorf("%w: table %s key %v", ErrNotFound, t.name, norm)
	}
	old := t.rows[slot]
	repl, err := t.validate(set(old.Clone()))
	if err != nil {
		return err
	}
	newKey := t.pkKey(repl)
	if newKey != oldKey {
		if _, dup := t.pkIndex[newKey]; dup {
			return fmt.Errorf("%w: table %s", ErrDuplicateKey, t.name)
		}
		delete(t.pkIndex, oldKey)
		t.pkIndex[newKey] = slot
	}
	for _, ix := range t.indexes {
		ix.update(slot, old, repl)
	}
	for _, ix := range t.ordered {
		ix.update(slot, old, repl)
	}
	t.rows[slot] = repl
	t.version++
	return nil
}

// UpdateWhere applies set to every row satisfying pred and reports how
// many rows changed. The set function receives a copy and returns the
// replacement row, which is validated like an insert.
func (t *Table) UpdateWhere(pred func(Row) bool, set func(Row) Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for slot, r := range t.rows {
		if r == nil || !pred(r) {
			continue
		}
		repl, err := t.validate(set(r.Clone()))
		if err != nil {
			return n, err
		}
		if t.pkIndex != nil {
			oldKey, newKey := t.pkKey(r), t.pkKey(repl)
			if oldKey != newKey {
				if _, dup := t.pkIndex[newKey]; dup {
					return n, fmt.Errorf("%w: table %s", ErrDuplicateKey, t.name)
				}
				delete(t.pkIndex, oldKey)
				t.pkIndex[newKey] = slot
			}
		}
		for _, ix := range t.indexes {
			ix.update(slot, r, repl)
		}
		for _, ix := range t.ordered {
			ix.update(slot, r, repl)
		}
		t.rows[slot] = repl
		t.version++
		n++
	}
	return n, nil
}

// DeleteWhere removes every row satisfying pred and reports the count.
func (t *Table) DeleteWhere(pred func(Row) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for slot, r := range t.rows {
		if r == nil || !pred(r) {
			continue
		}
		if t.pkIndex != nil {
			delete(t.pkIndex, t.pkKey(r))
		}
		for _, ix := range t.indexes {
			ix.remove(slot, r)
		}
		for _, ix := range t.ordered {
			ix.remove(slot, r)
		}
		t.rows[slot] = nil
		t.free = append(t.free, slot)
		t.live--
		t.version++
		n++
	}
	return n
}

package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeOf(t *testing.T) {
	cases := []struct {
		v    Value
		want Type
	}{
		{nil, TypeInvalid},
		{int64(3), TypeInt},
		{3.5, TypeFloat},
		{"x", TypeString},
		{true, TypeBool},
	}
	for _, c := range cases {
		if got := TypeOf(c.v); got != c.want {
			t.Errorf("TypeOf(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	for _, c := range []struct {
		in   any
		want Value
	}{
		{7, int64(7)},
		{int8(7), int64(7)},
		{int16(7), int64(7)},
		{int32(7), int64(7)},
		{uint(7), int64(7)},
		{uint32(7), int64(7)},
		{float32(1.5), float64(1.5)},
		{"s", "s"},
		{true, true},
		{nil, nil},
	} {
		got, err := Normalize(c.in)
		if err != nil {
			t.Fatalf("Normalize(%v): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Normalize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := Normalize(struct{}{}); err == nil {
		t.Error("Normalize(struct{}{}) should fail")
	}
}

func TestCoerce(t *testing.T) {
	if v, err := Coerce(3.0, TypeInt); err != nil || v != int64(3) {
		t.Errorf("Coerce(3.0, INT) = %v, %v", v, err)
	}
	if _, err := Coerce(3.5, TypeInt); err == nil {
		t.Error("Coerce(3.5, INT) should fail")
	}
	if v, err := Coerce(int64(3), TypeFloat); err != nil || v != 3.0 {
		t.Errorf("Coerce(3, FLOAT) = %v, %v", v, err)
	}
	if v, err := Coerce(true, TypeInt); err != nil || v != int64(1) {
		t.Errorf("Coerce(true, INT) = %v, %v", v, err)
	}
	if v, err := Coerce(nil, TypeString); err != nil || v != nil {
		t.Errorf("Coerce(nil, TEXT) = %v, %v", v, err)
	}
	if _, err := Coerce("x", TypeInt); err == nil {
		t.Error("Coerce(string, INT) should fail")
	}
}

func TestCompareOrdering(t *testing.T) {
	// NULL < bool < number < string, and within kinds natural order.
	ordered := []Value{nil, false, true, int64(-2), 0.5, int64(1), 3.5, "a", "b"}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareCrossNumeric(t *testing.T) {
	if Compare(int64(2), 2.0) != 0 {
		t.Error("int64(2) should equal 2.0")
	}
	if Compare(int64(2), 2.5) != -1 {
		t.Error("2 < 2.5")
	}
}

// Property: Compare is antisymmetric and consistent with Equal for
// arbitrary int/float/string mixes.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64, fa, fb float64, sa, sb string) bool {
		if math.IsNaN(fa) || math.IsNaN(fb) {
			return true
		}
		vals := []Value{a, b, fa, fb, sa, sb, nil}
		for _, x := range vals {
			for _, y := range vals {
				if Compare(x, y) != -Compare(y, x) {
					return false
				}
				if (Compare(x, y) == 0) != Equal(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{true, int64(1), -1.5, "x"}
	falsy := []Value{nil, false, int64(0), 0.0, ""}
	for _, v := range truthy {
		if !Truthy(v) {
			t.Errorf("Truthy(%v) should be true", v)
		}
	}
	for _, v := range falsy {
		if Truthy(v) {
			t.Errorf("Truthy(%v) should be false", v)
		}
	}
}

func TestFormat(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want string
	}{
		{nil, "NULL"},
		{int64(42), "42"},
		{2.5, "2.5"},
		{"hi", "hi"},
		{true, "true"},
		{false, "false"},
	} {
		if got := Format(c.v); got != c.want {
			t.Errorf("Format(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

// Property: encodeKey is injective over distinct single values.
func TestEncodeKeyInjectiveProperty(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		if a != b && encodeKey([]Value{a}) == encodeKey([]Value{b}) {
			return false
		}
		if s1 != s2 && encodeKey([]Value{s1}) == encodeKey([]Value{s2}) {
			return false
		}
		// A string never collides with an int key.
		return encodeKey([]Value{s1}) != encodeKey([]Value{a})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyIntFloatUnify(t *testing.T) {
	if encodeKey([]Value{int64(3)}) != encodeKey([]Value{3.0}) {
		t.Error("integral float should key identically to int")
	}
	if encodeKey([]Value{3.5}) == encodeKey([]Value{int64(3)}) {
		t.Error("3.5 must not collide with 3")
	}
}

func TestTypeString(t *testing.T) {
	for _, c := range []struct {
		t    Type
		want string
	}{{TypeInt, "INT"}, {TypeFloat, "FLOAT"}, {TypeString, "TEXT"}, {TypeBool, "BOOL"}, {TypeInvalid, "INVALID"}} {
		if c.t.String() != c.want {
			t.Errorf("%v.String() = %q", c.t, c.t.String())
		}
	}
}

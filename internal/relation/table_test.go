package relation

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func studentsTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("Students",
		NewSchema(NotNullCol("SuID", TypeInt), NotNullCol("Name", TypeString), Col("Class", TypeString), Col("GPA", TypeFloat)),
		WithPrimaryKey("SuID"), WithAutoIncrement("SuID"), WithIndex("Class"))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestInsertAndGet(t *testing.T) {
	tbl := studentsTable(t)
	if _, err := tbl.Insert(Row{int64(1), "Ann", "2008", 3.9}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{int64(2), "Bob", "2009", 3.1}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
	row, ok := tbl.Get(int64(2))
	if !ok || row[1] != "Bob" {
		t.Fatalf("Get(2) = %v, %v", row, ok)
	}
	if _, ok := tbl.Get(int64(99)); ok {
		t.Error("Get(99) should miss")
	}
}

func TestInsertDuplicatePK(t *testing.T) {
	tbl := studentsTable(t)
	tbl.MustInsert(Row{int64(1), "Ann", "2008", 3.9})
	_, err := tbl.Insert(Row{int64(1), "Dup", "2008", 2.0})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
}

func TestAutoIncrement(t *testing.T) {
	tbl := studentsTable(t)
	tbl.MustInsert(Row{nil, "Ann", "2008", 3.9})
	tbl.MustInsert(Row{nil, "Bob", "2008", 3.0})
	if _, ok := tbl.Get(int64(1)); !ok {
		t.Error("auto id 1 missing")
	}
	if _, ok := tbl.Get(int64(2)); !ok {
		t.Error("auto id 2 missing")
	}
	// Explicit id above the counter advances it.
	tbl.MustInsert(Row{int64(10), "Eve", "2010", 3.5})
	tbl.MustInsert(Row{nil, "Zed", "2010", 2.8})
	if _, ok := tbl.Get(int64(11)); !ok {
		t.Error("auto id should continue from 11 after explicit 10")
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := studentsTable(t)
	if _, err := tbl.Insert(Row{int64(1), "Ann"}); !errors.Is(err, ErrArity) {
		t.Errorf("short row: want ErrArity, got %v", err)
	}
	if _, err := tbl.Insert(Row{int64(1), nil, "2008", 3.9}); err == nil {
		t.Error("NULL in NOT NULL column should fail")
	}
	if _, err := tbl.Insert(Row{int64(1), "Ann", "2008", "high"}); err == nil {
		t.Error("type mismatch should fail")
	}
	// Int widens to float in GPA column.
	if _, err := tbl.Insert(Row{int64(1), "Ann", "2008", 4}); err != nil {
		t.Errorf("int into FLOAT column should widen: %v", err)
	}
}

func TestLookupIndexedAndUnindexed(t *testing.T) {
	tbl := studentsTable(t)
	tbl.MustInsert(Row{nil, "Ann", "2008", 3.9})
	tbl.MustInsert(Row{nil, "Bob", "2009", 3.1})
	tbl.MustInsert(Row{nil, "Cal", "2008", 3.4})

	if got := tbl.Lookup("Class", "2008"); len(got) != 2 {
		t.Errorf("indexed Lookup(Class, 2008) = %d rows, want 2", len(got))
	}
	if !tbl.HasIndex("class") {
		t.Error("HasIndex should be case-insensitive")
	}
	if got := tbl.Lookup("Name", "Bob"); len(got) != 1 || got[0][3] != 3.1 {
		t.Errorf("unindexed Lookup(Name, Bob) = %v", got)
	}
	if got := tbl.Lookup("NoSuchCol", 1); got != nil {
		t.Errorf("Lookup on missing column = %v, want nil", got)
	}
}

func TestUpdateWhere(t *testing.T) {
	tbl := studentsTable(t)
	tbl.MustInsert(Row{nil, "Ann", "2008", 3.9})
	tbl.MustInsert(Row{nil, "Bob", "2009", 3.1})
	n, err := tbl.UpdateWhere(
		func(r Row) bool { return r[1] == "Bob" },
		func(r Row) Row { r[3] = 3.6; return r })
	if err != nil || n != 1 {
		t.Fatalf("UpdateWhere = %d, %v", n, err)
	}
	row, _ := tbl.Get(int64(2))
	if row[3] != 3.6 {
		t.Errorf("Bob GPA = %v, want 3.6", row[3])
	}
}

func TestUpdatePKMove(t *testing.T) {
	tbl := studentsTable(t)
	tbl.MustInsert(Row{int64(1), "Ann", "2008", 3.9})
	tbl.MustInsert(Row{int64(2), "Bob", "2009", 3.1})
	// Moving Bob onto Ann's key must fail.
	_, err := tbl.UpdateWhere(
		func(r Row) bool { return r[0] == int64(2) },
		func(r Row) Row { r[0] = int64(1); return r })
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
	// Moving to a fresh key succeeds and old key disappears.
	if _, err := tbl.UpdateWhere(
		func(r Row) bool { return r[0] == int64(2) },
		func(r Row) Row { r[0] = int64(5); return r }); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(int64(2)); ok {
		t.Error("old key 2 should be gone")
	}
	if _, ok := tbl.Get(int64(5)); !ok {
		t.Error("new key 5 should exist")
	}
}

func TestDeleteWhereAndSlotReuse(t *testing.T) {
	tbl := studentsTable(t)
	tbl.MustInsert(Row{nil, "Ann", "2008", 3.9})
	tbl.MustInsert(Row{nil, "Bob", "2009", 3.1})
	tbl.MustInsert(Row{nil, "Cal", "2008", 3.4})
	if n, _ := tbl.DeleteWhere(func(r Row) bool { return r[2] == "2008" }); n != 2 {
		t.Fatalf("DeleteWhere = %d, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	if got := tbl.Lookup("Class", "2008"); len(got) != 0 {
		t.Errorf("index should be empty for 2008, got %v", got)
	}
	// Freed slots are reused.
	tbl.MustInsert(Row{nil, "Dot", "2010", 3.2})
	tbl.MustInsert(Row{nil, "Eli", "2010", 3.3})
	if tbl.Len() != 3 {
		t.Fatalf("Len after reuse = %d, want 3", tbl.Len())
	}
	if got := tbl.Lookup("Class", "2010"); len(got) != 2 {
		t.Errorf("Lookup(2010) = %d rows, want 2", len(got))
	}
}

func TestScanEarlyStopAndRows(t *testing.T) {
	tbl := studentsTable(t)
	for i := 0; i < 5; i++ {
		tbl.MustInsert(Row{nil, "S", "2008", 3.0})
	}
	seen := 0
	tbl.Scan(func(_ int, _ Row) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Errorf("early stop saw %d rows, want 3", seen)
	}
	if rows := tbl.Rows(); len(rows) != 5 {
		t.Errorf("Rows() = %d, want 5", len(rows))
	}
}

func TestSelectWhere(t *testing.T) {
	tbl := studentsTable(t)
	tbl.MustInsert(Row{nil, "Ann", "2008", 3.9})
	tbl.MustInsert(Row{nil, "Bob", "2009", 3.1})
	got := tbl.SelectWhere(func(r Row) bool { return r[3].(float64) > 3.5 })
	if len(got) != 1 || got[0][1] != "Ann" {
		t.Errorf("SelectWhere = %v", got)
	}
}

func TestTableOptionErrors(t *testing.T) {
	sch := NewSchema(Col("A", TypeInt), Col("B", TypeString))
	if _, err := NewTable("t", sch, WithPrimaryKey("nope")); err == nil {
		t.Error("bad PK column should fail")
	}
	if _, err := NewTable("t", sch, WithAutoIncrement("B")); err == nil {
		t.Error("auto-increment on TEXT should fail")
	}
	if _, err := NewTable("t", sch, WithIndex("nope")); err == nil {
		t.Error("bad index column should fail")
	}
}

// Invariant check used by the randomized test: every live row is reachable
// through the PK index and the secondary index buckets exactly cover the
// live rows.
func checkIndexConsistency(t *testing.T, tbl *Table) {
	t.Helper()
	tbl.mu.RLock()
	defer tbl.mu.RUnlock()
	live := 0
	for slot, r := range tbl.rows {
		if r == nil {
			continue
		}
		live++
		if tbl.pkIndex != nil {
			got, ok := tbl.pkIndex[tbl.pkKey(r)]
			if !ok || got != slot {
				t.Fatalf("pk index inconsistent for slot %d", slot)
			}
		}
	}
	if live != tbl.live {
		t.Fatalf("live count %d != tracked %d", live, tbl.live)
	}
	if tbl.pkIndex != nil && len(tbl.pkIndex) != live {
		t.Fatalf("pk index size %d != live %d", len(tbl.pkIndex), live)
	}
	for _, ix := range tbl.indexes {
		n := 0
		for _, slots := range ix.slots {
			for _, s := range slots {
				if tbl.rows[s] == nil {
					t.Fatal("secondary index points at tombstone")
				}
				n++
			}
		}
		if n != live {
			t.Fatalf("secondary index covers %d rows, want %d", n, live)
		}
	}
}

// Property: under a random interleaving of inserts, deletes and updates the
// indexes stay exactly consistent with the live rows.
func TestRandomizedMutationInvariant(t *testing.T) {
	tbl := studentsTable(t)
	rng := rand.New(rand.NewSource(7))
	ids := make(map[int64]bool)
	next := int64(1)
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			id := next
			next++
			tbl.MustInsert(Row{id, "S", []string{"2008", "2009", "2010"}[rng.Intn(3)], float64(rng.Intn(40)) / 10})
			ids[id] = true
		case op < 8: // delete random existing
			for id := range ids {
				tbl.DeleteWhere(func(r Row) bool { return r[0] == id })
				delete(ids, id)
				break
			}
		default: // update class of a random row
			for id := range ids {
				if _, err := tbl.UpdateWhere(
					func(r Row) bool { return r[0] == id },
					func(r Row) Row { r[2] = "2011"; return r }); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	checkIndexConsistency(t, tbl)
	if tbl.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(ids))
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	tbl := studentsTable(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tbl.MustInsert(Row{nil, "S", "2008", 3.0})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tbl.Scan(func(_ int, row Row) bool { _ = row[0]; return true })
				tbl.Len()
			}
		}()
	}
	wg.Wait()
	if tbl.Len() != 800 {
		t.Fatalf("Len = %d, want 800", tbl.Len())
	}
	checkIndexConsistency(t, tbl)
}

func TestDBLifecycle(t *testing.T) {
	db := NewDB()
	tbl := studentsTable(t)
	if err := db.Create(tbl); err != nil {
		t.Fatal(err)
	}
	if err := db.Create(tbl); err == nil {
		t.Error("duplicate Create should fail")
	}
	got, ok := db.Table("Students")
	if !ok || got != tbl {
		t.Error("Table lookup failed")
	}
	if _, ok := db.Table("Nope"); ok {
		t.Error("missing table should not resolve")
	}
	if names := db.Names(); len(names) != 1 || names[0] != "Students" {
		t.Errorf("Names = %v", names)
	}
	if !db.Drop("Students") {
		t.Error("Drop should report true")
	}
	if db.Drop("Students") {
		t.Error("second Drop should report false")
	}
}

func TestMustTablePanics(t *testing.T) {
	db := NewDB()
	defer func() {
		if recover() == nil {
			t.Error("MustTable on missing table should panic")
		}
	}()
	db.MustTable("missing")
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(Col("A", TypeInt), NotNullCol("B", TypeString))
	if s.Len() != 2 {
		t.Fatal("Len")
	}
	if i, ok := s.Index("b"); !ok || i != 1 {
		t.Error("case-insensitive Index failed")
	}
	if s.MustIndex("A") != 0 {
		t.Error("MustIndex")
	}
	if got := s.String(); got != "(A INT, B TEXT NOT NULL)" {
		t.Errorf("String = %q", got)
	}
	if names := s.Names(); names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate column should panic")
		}
	}()
	NewSchema(Col("x", TypeInt), Col("X", TypeInt))
}

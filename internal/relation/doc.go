// Package relation implements the relational storage engine that
// underpins CourseRank. It provides typed schemas, row storage with
// primary and secondary hash indexes, ordered (sorted) indexes,
// predicate-based scans, and two interchangeable backends: a pure
// in-memory store (NewDB) and a durable store (OpenDurable) that
// journals every mutation through a write-ahead log and checkpoints
// into a page file. The SQL engine in package sqlmini executes against
// this store, which is the "conventional DBMS" the paper's FlexRecs
// workflows compile into.
//
// # The Storage interface: pluggable table backends
//
// Table and DB never talk to disk directly. Each table instead holds an
// optional Storage (storage.go), attached atomically, that observes
// mutations:
//
//	BeginMutate / EndMutate     bracket a mutation (checkpoint gate)
//	LogMutations(table, muts)   journal applied row effects, return LSN
//	LogCreate / LogDrop / LogAlter  journal DDL
//	WaitDurable(lsn)            block until the LSN is commit-durable
//
// A nil Storage is the in-memory backend: the mutation path is exactly
// the pre-durability code — one atomic pointer load and no effect
// collection, so memory-backed deployments pay nothing for the
// subsystem's existence. With a Storage attached, every
// Insert/UpdateByKey/UpdateWhere/DeleteWhere and every DDL call
// collects the row effects it applied (Mutation: kind, slot,
// post-image), journals them while still holding the table lock — so
// WAL order always equals apply order — and then waits for durability
// outside all locks. If the journal write fails, the already-applied
// effects are rolled back slot-for-slot (undoLocked) and the error is
// returned: a mutation is either applied-and-journaled or not applied.
//
// # Effect-based redo logging
//
// WAL records carry the EFFECTS of a statement, not the statement:
// exact row slots plus post-images. Predicates and set functions are Go
// closures and cannot be serialized; replay therefore re-applies slots
// verbatim (applyInsertSlot/applyUpdateSlot/applyDeleteSlot) with no
// re-evaluation, and recovery is deterministic regardless of what code
// produced the mutation. Auto-increment sequences recover from the
// largest replayed key; free lists and indexes are rebuilt after
// replay.
//
// # WAL record format
//
// The log (package wal) is a single append-only file:
//
//	header: magic "CRWAL1\0\0" + uint64 start LSN
//	record: uint32 length | uint32 CRC32-Castagnoli | uint64 LSN |
//	        uint8 type | payload
//
// The CRC covers (LSN, type, payload). Payloads here are JSON:
// recDML (1) is {table, [op "i"/"u"/"d", slot, row-cells]...};
// recCreate (2) is the table's snapshot header; recDrop (3) and
// recAlter (4) name the table (and ordered-index column). On open, the
// scan stops at the first short or CRC-failing record and physically
// truncates the file there: a torn final record from a crash is
// discarded, every earlier record is preserved.
//
// # LSN and checkpoint lifecycle
//
// Every appended record gets the next LSN; Commit(lsn) makes it
// durable per the sync policy. A checkpoint (DurableStore.Checkpoint)
// takes the gate exclusively (quiescing mutators), snapshots every
// table into the page file, and truncates the WAL up to the snapshot
// LSN. Snapshots are written ping-pong: the new snapshot lands in
// pages disjoint from the active region, is flushed and synced, and
// only then does the header metadata {LSN, start, pages, length} swap
// to it — the swap is the commit point, so a crash mid-checkpoint
// leaves the previous snapshot intact. Recovery loads the snapshot,
// then replays only WAL records with LSN > snapshot LSN (covering a
// crash between the metadata swap and the log truncation).
// Checkpoints also run automatically every CheckpointEvery journaled
// records (synchronously, inside the WaitDurable of the record that
// crossed the threshold), and DurableStore.Bulk loads data with the
// journal detached and checkpoints once at the end — the bulk corpus
// lands in the page file, not the log.
//
// # Sync vs async commit
//
// wal.SyncAlways fsyncs on every commit, with group commit: concurrent
// committers ride one another's fsyncs (a leader syncs once for every
// waiter whose LSN it covers), so the log issues far fewer fsyncs than
// commits under load. wal.SyncNone acknowledges as soon as the record
// is written to the OS, with a background flusher (FlushEvery) and
// fsyncs at checkpoints and Close: a process crash loses nothing (the
// OS has the writes); power loss can lose the last flush interval.
//
// The durable fixture serves CourseRank end to end: core.NewDurableSite
// opens a site over OpenDurable, cmd/courserank exposes it as
// -durable DIR -fsync sync|async, and /api/stats reports the WAL,
// pager and checkpoint counters under "durability".
package relation

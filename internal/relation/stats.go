package relation

import "strings"

// TableStats is a point-in-time snapshot of the optimizer statistics a
// table maintains. The underlying counters are kept incrementally by the
// index structures themselves — every insert, update and delete adjusts
// the live-row count and the per-index slot maps — so taking a snapshot
// is O(#indexes), never a scan.
type TableStats struct {
	// Rows is the number of live rows.
	Rows int
	// Distinct maps an indexed column (lower-cased name) to the number
	// of distinct values currently stored in it. Single-column primary
	// keys appear too: every value is unique, so Distinct equals Rows.
	Distinct map[string]int
}

// DistinctOf returns the distinct-value count for a column, reporting
// whether the column has statistics (i.e. is indexed).
func (s TableStats) DistinctOf(col string) (int, bool) {
	n, ok := s.Distinct[strings.ToLower(col)]
	return n, ok
}

// Selectivity estimates the number of rows matching an equality
// predicate on col: Rows/Distinct for indexed columns, and a third of
// the table for columns the statistics know nothing about.
func (s TableStats) Selectivity(col string) float64 {
	if d, ok := s.DistinctOf(col); ok && d > 0 {
		return float64(s.Rows) / float64(d)
	}
	return float64(s.Rows) / 3
}

// Stats snapshots the table's optimizer statistics: the live-row count
// and the distinct-value count of every indexed column. The query
// planner in package sqlmini uses these to pick access paths and hash
// join build sides.
func (t *Table) Stats() TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d := make(map[string]int, len(t.indexes)+1)
	nullKey := encodeKey([]Value{nil})
	for name, ix := range t.indexes {
		n := len(ix.slots)
		// NULL is not a value: counting its bucket would inflate the
		// distinct estimate on sparse columns and skew selectivity.
		if _, ok := ix.slots[nullKey]; ok {
			n--
		}
		d[name] = n
	}
	if len(t.pk) == 1 {
		d[strings.ToLower(t.schema.Column(t.pk[0]).Name)] = t.live
	}
	return TableStats{Rows: t.live, Distinct: d}
}

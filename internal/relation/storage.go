package relation

// Storage is the pluggable durability backend behind a DB. The
// in-memory backend is the absence of one — tables with no attached
// Storage mutate under their own lock and nothing else — while the
// durable backend (DurableStore) journals every mutation through a
// write-ahead log before the mutator returns.
//
// The protocol a journaled mutation follows, in order:
//
//  1. BeginMutate — enter the checkpoint gate (shared side). While any
//     mutator is inside the gate a checkpoint cannot start, so the
//     snapshot a checkpoint captures is always on a record boundary.
//  2. Apply the change in memory under the table lock, collecting the
//     applied row effects as Mutations.
//  3. LogMutations — still under the table lock, so WAL order equals
//     apply order. On error the caller reverses the in-memory effects
//     with the slot-addressed undo helpers and reports failure.
//  4. EndMutate — leave the gate.
//  5. WaitDurable — outside every lock, block until the record's LSN
//     is durable per the store's commit policy (fsync now, or return
//     immediately and let the background flusher catch up).
//
// DDL goes through LogCreate/LogDrop/LogAlter with the same bracket.
type Storage interface {
	// BeginMutate enters the checkpoint gate; every Log* call must be
	// bracketed by BeginMutate/EndMutate.
	BeginMutate()
	// EndMutate leaves the checkpoint gate.
	EndMutate()
	// LogMutations appends one redo record covering the applied row
	// effects of a single statement against table. Called under the
	// table's write lock.
	LogMutations(table string, muts []Mutation) (lsn uint64, err error)
	// LogCreate appends a redo record for a table definition.
	LogCreate(t *Table) (lsn uint64, err error)
	// LogDrop appends a redo record dropping the named table.
	LogDrop(name string) (lsn uint64, err error)
	// LogAlter appends a redo record adding an ordered index.
	LogAlter(table, orderedCol string) (lsn uint64, err error)
	// WaitDurable blocks until the record at lsn is durable under the
	// store's commit policy. Called outside all locks.
	WaitDurable(lsn uint64) error
}

// TxStorage is the optional transactional extension of Storage. A
// backend that implements it can journal multi-statement transactions
// atomically: per-statement effects are logged as transaction records
// (no-ops at replay unless the transaction committed), and a single
// commit record makes the whole transaction redo-visible. Recovery
// replays a transaction's effects if and only if its commit record made
// it to the log — a crash mid-transaction loses the transaction as a
// unit, never a prefix of it.
//
// The gate discipline differs from autocommit: a transaction enters the
// checkpoint gate once at Begin (BeginTxGate) and leaves at
// Commit/Rollback (EndTxGate), so a checkpoint never captures a table
// image with uncommitted transaction effects in it.
type TxStorage interface {
	Storage
	// BeginTxGate enters the checkpoint gate (shared side) for the
	// lifetime of one transaction.
	BeginTxGate()
	// EndTxGate leaves the gate entered by BeginTxGate.
	EndTxGate()
	// LogTxMutations appends one transaction redo record covering the
	// staged row effects of a single statement against table. Called
	// under the table's write lock. The effects are ignored at replay
	// unless tx's commit record is also in the log.
	LogTxMutations(tx uint64, table string, muts []Mutation) (lsn uint64, err error)
	// LogTxCommit appends the commit record for tx.
	LogTxCommit(tx uint64) (lsn uint64, err error)
	// LogTxAbort appends an abort record for tx (advisory: replay
	// ignores uncommitted transactions with or without it).
	LogTxAbort(tx uint64) (lsn uint64, err error)
	// SyncConfirms reports whether WaitDurable returning nil means the
	// data is actually on stable storage (true for synchronous commit
	// policies, false when a background flusher catches up later).
	SyncConfirms() bool
}

// MutKind discriminates the row effects a statement applied.
type MutKind uint8

// The three row-level effects a redo record can carry.
const (
	MutInsert MutKind = iota // Row stored at Slot
	MutUpdate                // Row replaced the row at Slot
	MutDelete                // row at Slot tombstoned (Row is nil)
)

// Mutation is one applied row effect: the exact slot it touched and
// the post-image row (nil for deletes). Effects — not logical
// statements — are what the WAL carries, because predicates and set
// functions are Go closures that cannot be serialized; replay
// re-applies effects slot-for-slot and needs no re-evaluation.
type Mutation struct {
	Kind MutKind
	Slot int
	Row  Row
}

// storageBox wraps the Storage interface in a pointer cell so tables
// can read their backend with a single atomic load on the hot path and
// swap it during attach/detach (open, Bulk) without a lock.
type storageBox struct{ s Storage }

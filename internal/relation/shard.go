package relation

import "fmt"

// This file holds the small hooks the scatter-gather router
// (internal/shard) needs from the storage layer: shard-key metadata on
// tables, and row observers that let a shard cluster follow a base
// table's mutations for write-through propagation.

// WithShardKey declares col as the table's shard key: the column whose
// value decides which shard of a partitioned cluster owns each row.
// The metadata is advisory — a standalone table behaves identically
// with or without it — and deliberately does not participate in
// schemaEquiv, so durable recovery can adopt tables created before the
// key was declared.
func WithShardKey(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: shard key column %q not in schema", col)
		}
		t.shardCol = i
		return nil
	}
}

// SetShardKey declares the shard key on a live table; see WithShardKey.
func (t *Table) SetShardKey(col string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.schema.Index(col)
	if !ok {
		return fmt.Errorf("relation: shard key column %q not in table %s", col, t.name)
	}
	t.shardCol = i
	return nil
}

// ShardKey returns the declared shard key column name, if any.
func (t *Table) ShardKey() (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.shardCol < 0 {
		return "", false
	}
	return t.schema.Column(t.shardCol).Name, true
}

// RowObserver sees every committed row mutation on a table:
//
//	MutInsert: before == nil, after is the stored row
//	MutUpdate: before is the pre-image, after the post-image
//	MutDelete: before is the pre-image, after == nil
//
// Observers run under the table's write lock, after the mutation is
// final (on a durable table: after it is journaled; a WAL rejection
// rolls the rows back without notifying). They therefore must be fast,
// must not call back into the observed table, and must copy any row
// they retain — the slices are the stored rows themselves. Recovery
// replay and WAL-failure rollback bypass observers: they reconstruct
// state, they do not originate new mutations.
type RowObserver func(kind MutKind, before, after Row)

// Observe attaches a row observer. Observers cannot be detached;
// attach them to tables whose lifetime matches the observer's.
func (t *Table) Observe(fn RowObserver) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.obs = append(t.obs, fn)
}

// observedLocked reports whether any observer is attached; caller
// holds at least the read lock.
func (t *Table) observedLocked() bool { return len(t.obs) > 0 }

// notifyLocked fans one committed mutation out to the observers;
// caller holds the write lock.
func (t *Table) notifyLocked(kind MutKind, before, after Row) {
	for _, fn := range t.obs {
		fn(kind, before, after)
	}
}

// notifyUpdatesLocked replays collected update effects (post-images in
// muts, pre-images in undo, index-aligned) to the observers.
func (t *Table) notifyUpdatesLocked(muts, undo []Mutation) {
	if len(t.obs) == 0 {
		return
	}
	for i := range muts {
		t.notifyLocked(MutUpdate, undo[i].Row, muts[i].Row)
	}
}

// notifyDeletesLocked replays collected delete effects (pre-images in
// undo) to the observers.
func (t *Table) notifyDeletesLocked(undo []Mutation) {
	if len(t.obs) == 0 {
		return
	}
	for i := range undo {
		t.notifyLocked(MutDelete, undo[i].Row, nil)
	}
}

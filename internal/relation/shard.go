package relation

import "fmt"

// This file holds the small hooks the scatter-gather router
// (internal/shard) needs from the storage layer: shard-key metadata on
// tables, and row observers that let a shard cluster follow a base
// table's mutations for write-through propagation.

// WithShardKey declares col as the table's shard key: the column whose
// value decides which shard of a partitioned cluster owns each row.
// The metadata is advisory — a standalone table behaves identically
// with or without it — and deliberately does not participate in
// schemaEquiv, so durable recovery can adopt tables created before the
// key was declared.
func WithShardKey(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: shard key column %q not in schema", col)
		}
		t.shardCol = i
		return nil
	}
}

// SetShardKey declares the shard key on a live table; see WithShardKey.
func (t *Table) SetShardKey(col string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.schema.Index(col)
	if !ok {
		return fmt.Errorf("relation: shard key column %q not in table %s", col, t.name)
	}
	t.shardCol = i
	return nil
}

// ShardKey returns the declared shard key column name, if any.
func (t *Table) ShardKey() (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.shardCol < 0 {
		return "", false
	}
	return t.schema.Column(t.shardCol).Name, true
}

// RowObserver sees every committed row mutation on a table:
//
//	MutInsert: before == nil, after is the stored row
//	MutUpdate: before is the pre-image, after the post-image
//	MutDelete: before is the pre-image, after == nil
//
// On an ephemeral table observers run synchronously under the table's
// write lock, immediately after the mutation is applied. On a durable
// table they run after WaitDurable confirms the mutation's WAL record —
// never before, so a crash cannot leave an observer (e.g. a shard
// write-through) holding rows the recovered base never committed.
// Deferred delivery is serialized per table in WAL order (mutations are
// never reordered or dropped relative to each other), outside the table
// lock; a WAL append rejection rolls the rows back without notifying,
// and a WaitDurable failure drops the queued notifications and counts
// them in NotifyStats. Under an asynchronous commit policy WaitDurable
// returns before the fsync lands; those deliveries are counted as
// unconfirmed in NotifyStats rather than held back.
//
// Observers must be fast, must not call back into the observed table,
// and must copy any row they retain — the slices are the stored rows
// themselves. Recovery replay and WAL-failure rollback bypass
// observers: they reconstruct state, they do not originate mutations.
type RowObserver func(kind MutKind, before, after Row)

// queuedNotify is one committed mutation on a durable table awaiting
// durability confirmation before the observers may see it.
type queuedNotify struct {
	lsn    uint64
	kind   MutKind
	before Row
	after  Row
}

// queueNotifyLocked records a committed mutation for observer delivery.
// With lsn == 0 (ephemeral table) delivery is synchronous under the
// table write lock, as before; otherwise the notification is parked
// until flushNotifies confirms the record durable. Caller holds the
// table write lock.
func (t *Table) queueNotifyLocked(lsn uint64, kind MutKind, before, after Row) {
	if len(t.obs) == 0 {
		return
	}
	if lsn == 0 {
		t.notifyLocked(kind, before, after)
		return
	}
	t.nqMu.Lock()
	t.nq = append(t.nq, queuedNotify{lsn: lsn, kind: kind, before: before, after: after})
	t.nqMu.Unlock()
}

// flushNotifies delivers every queued notification with LSN at or below
// lsn, after WaitDurable(lsn) returned werr. Delivery order is WAL
// order: notifyMu serializes concurrent flushers, and a later flusher
// covering a group-committed batch drains earlier writers' entries too.
// On werr != nil the covered entries are dropped and counted; under a
// commit policy whose WaitDurable does not confirm the fsync they are
// delivered but counted as unconfirmed. Called outside all table locks.
func (t *Table) flushNotifies(lsn uint64, werr error, s Storage) {
	t.nqMu.Lock()
	pending := len(t.nq) > 0
	t.nqMu.Unlock()
	if !pending {
		return
	}
	t.notifyMu.Lock()
	defer t.notifyMu.Unlock()
	t.nqMu.Lock()
	i := 0
	for i < len(t.nq) && t.nq[i].lsn <= lsn {
		i++
	}
	batch := t.nq[:i:i]
	t.nq = append([]queuedNotify(nil), t.nq[i:]...)
	if len(t.nq) == 0 {
		t.nq = nil
	}
	t.nqMu.Unlock()
	if len(batch) == 0 {
		return
	}
	if werr != nil {
		if t.clock != nil {
			t.clock.notifyDropped.Add(uint64(len(batch)))
		}
		return
	}
	if t.clock != nil && !storageSyncConfirms(s) {
		t.clock.notifyUnconfirmed.Add(uint64(len(batch)))
	}
	t.mu.RLock()
	obs := append([]RowObserver(nil), t.obs...)
	t.mu.RUnlock()
	for _, q := range batch {
		for _, fn := range obs {
			fn(q.kind, q.before, q.after)
		}
	}
}

// storageSyncConfirms reports whether s's WaitDurable confirms the
// fsync (conservatively false for backends that don't say).
func storageSyncConfirms(s Storage) bool {
	ts, ok := s.(TxStorage)
	return ok && ts.SyncConfirms()
}

// Observe attaches a row observer. Observers cannot be detached;
// attach them to tables whose lifetime matches the observer's.
func (t *Table) Observe(fn RowObserver) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.obs = append(t.obs, fn)
}

// observedLocked reports whether any observer is attached; caller
// holds at least the read lock.
func (t *Table) observedLocked() bool { return len(t.obs) > 0 }

// notifyLocked fans one committed mutation out to the observers;
// caller holds the write lock.
func (t *Table) notifyLocked(kind MutKind, before, after Row) {
	for _, fn := range t.obs {
		fn(kind, before, after)
	}
}

// notifyUpdatesLocked replays collected update effects (post-images in
// muts, pre-images in undo, index-aligned) to the observers.
func (t *Table) notifyUpdatesLocked(muts, undo []Mutation) {
	if len(t.obs) == 0 {
		return
	}
	for i := range muts {
		t.notifyLocked(MutUpdate, undo[i].Row, muts[i].Row)
	}
}

// notifyDeletesLocked replays collected delete effects (pre-images in
// undo) to the observers.
func (t *Table) notifyDeletesLocked(undo []Mutation) {
	if len(t.obs) == 0 {
		return
	}
	for i := range undo {
		t.notifyLocked(MutDelete, undo[i].Row, nil)
	}
}

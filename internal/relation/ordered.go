package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Ordered secondary indexes: a sorted slot list per column, maintained
// incrementally by binary search on every insert, update and delete.
// Where the hash indexes in table.go answer equality probes, an ordered
// index answers range predicates (<, <=, >, >=, BETWEEN) and yields its
// rows in key order — which lets the SQL planner elide an ORDER BY whose
// key the chosen index already sorts by.

// orderedEntry pairs one indexed value with the slot storing it.
type orderedEntry struct {
	val  Value
	slot int
}

// orderedIndex keeps entries sorted by (Compare(val), slot). NULLs are
// not indexed: no range predicate matches NULL, mirroring SQL
// comparison semantics.
type orderedIndex struct {
	col     int
	entries []orderedEntry
}

// search returns the position of the first entry >= (val, slot).
func (ix *orderedIndex) search(val Value, slot int) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		c := Compare(ix.entries[i].val, val)
		if c != 0 {
			return c > 0
		}
		return ix.entries[i].slot >= slot
	})
}

func (ix *orderedIndex) add(slot int, row Row) {
	v := row[ix.col]
	if v == nil {
		return
	}
	i := ix.search(v, slot)
	ix.entries = append(ix.entries, orderedEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = orderedEntry{val: v, slot: slot}
}

func (ix *orderedIndex) remove(slot int, row Row) {
	v := row[ix.col]
	if v == nil {
		return
	}
	i := ix.search(v, slot)
	if i < len(ix.entries) && ix.entries[i].slot == slot && Equal(ix.entries[i].val, v) {
		ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
	}
}

// update rekeys slot from old's value to repl's. An unchanged key keeps
// its position, so the whole maintenance is skipped; a changed key
// relocates with one memmove over the span between the old and new
// positions, instead of the remove/add pair's two tail moves.
func (ix *orderedIndex) update(slot int, old, repl Row) {
	ov, nv := old[ix.col], repl[ix.col]
	if ov == nil {
		ix.add(slot, repl)
		return
	}
	if nv == nil {
		ix.remove(slot, old)
		return
	}
	if Equal(ov, nv) {
		return
	}
	i := ix.search(ov, slot)
	if i >= len(ix.entries) || ix.entries[i].slot != slot || !Equal(ix.entries[i].val, ov) {
		ix.add(slot, repl) // old entry absent; keep the index consistent
		return
	}
	// j is the insertion point in the array as it stands, old entry
	// still in place at i; the three cases below collapse remove(i) +
	// insert into a single bounded shift.
	j := ix.search(nv, slot)
	switch {
	case j > i+1: // moving right: (i, j) shifts left, entry lands at j-1
		copy(ix.entries[i:], ix.entries[i+1:j])
		ix.entries[j-1] = orderedEntry{val: nv, slot: slot}
	case j < i: // moving left: [j, i) shifts right, entry lands at j
		copy(ix.entries[j+1:i+1], ix.entries[j:i])
		ix.entries[j] = orderedEntry{val: nv, slot: slot}
	default: // j == i or i+1: the new key sorts in the same place
		ix.entries[i] = orderedEntry{val: nv, slot: slot}
	}
}

// RangeBound is one end of a range probe. A nil *RangeBound means the
// end is unbounded; NULL bound values match nothing (x >= NULL is never
// true), which callers handle before building the bound.
type RangeBound struct {
	Value     Value
	Inclusive bool
}

// span returns the half-open entry interval [i, j) matching the bounds.
func (ix *orderedIndex) span(lo, hi *RangeBound) (int, int) {
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := Compare(ix.entries[i].val, lo.Value)
			if lo.Inclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(ix.entries)
	if hi != nil {
		end = sort.Search(len(ix.entries), func(i int) bool {
			c := Compare(ix.entries[i].val, hi.Value)
			if hi.Inclusive {
				return c > 0
			}
			return c >= 0
		})
	}
	if end < start {
		end = start
	}
	return start, end
}

// WithOrderedIndex adds an ordered secondary index on a single column,
// accelerating range predicates and ordered iteration. A column may
// carry both a hash index (equality) and an ordered index (ranges).
func WithOrderedIndex(col string) TableOption {
	return func(t *Table) error {
		i, ok := t.schema.Index(col)
		if !ok {
			return fmt.Errorf("relation: ordered index column %q not in schema", col)
		}
		t.ordered[strings.ToLower(col)] = &orderedIndex{col: i}
		return nil
	}
}

// AddOrderedIndex builds an ordered index on the column over the
// existing rows. It is the one in-place DDL operation tables support,
// so it bumps the schema epoch: cached query plans fingerprinted on the
// old epoch replan and can adopt the new access path. Adding an index
// that already exists is a no-op. With attached Storage the alter is
// journaled so a recovered table rebuilds the same access paths.
func (t *Table) AddOrderedIndex(col string) error {
	sb := t.store.Load()
	if sb == nil {
		return t.addOrderedIndexLocked(col)
	}
	sb.s.BeginMutate()
	err := t.addOrderedIndexLocked(col)
	var lsn uint64
	if err == nil {
		lsn, err = sb.s.LogAlter(t.Name(), col)
	}
	sb.s.EndMutate()
	if err != nil {
		return err
	}
	return sb.s.WaitDurable(lsn)
}

func (t *Table) addOrderedIndexLocked(col string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(col)
	if _, dup := t.ordered[key]; dup {
		return nil
	}
	ci, ok := t.schema.Index(col)
	if !ok {
		return fmt.Errorf("relation: ordered index column %q not in schema", col)
	}
	ix := &orderedIndex{col: ci}
	for slot, r := range t.rows {
		if r != nil && r[ci] != nil {
			ix.entries = append(ix.entries, orderedEntry{val: r[ci], slot: slot})
		}
		if len(t.vslots) == 0 {
			continue
		}
		// Retained versions index too (set semantics per slot), so
		// snapshot range reads opened after the DDL still find them.
		for nd := t.meta[slot].prev; nd != nil; nd = nd.prev {
			v := nd.row[ci]
			if v == nil {
				continue
			}
			dup := r != nil && r[ci] != nil && Equal(r[ci], v)
			for x := t.meta[slot].prev; !dup && x != nd; x = x.prev {
				dup = x.row[ci] != nil && Equal(x.row[ci], v)
			}
			if !dup {
				ix.entries = append(ix.entries, orderedEntry{val: v, slot: slot})
			}
		}
	}
	sort.Slice(ix.entries, func(a, b int) bool {
		c := Compare(ix.entries[a].val, ix.entries[b].val)
		if c != 0 {
			return c < 0
		}
		return ix.entries[a].slot < ix.entries[b].slot
	})
	t.ordered[key] = ix
	t.epoch++
	return nil
}

// HasOrderedIndex reports whether an ordered index exists on the column.
func (t *Table) HasOrderedIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.ordered[strings.ToLower(col)]
	return ok
}

// OrderedIndexes returns the names of columns with ordered indexes,
// sorted.
func (t *Table) OrderedIndexes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.ordered))
	for name := range t.ordered {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RangeCount returns how many index entries fall inside the bounds —
// an O(log n) selectivity estimate for the query planner — and whether
// the column has an ordered index at all.
func (t *Table) RangeCount(col string, lo, hi *RangeBound) (int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.ordered[strings.ToLower(col)]
	if !ok {
		return 0, false
	}
	i, j := ix.span(lo, hi)
	return j - i, true
}

// RangeCursor iterates the rows an ordered index places inside [lo, hi]
// in key order (ties in slot order). The matching (key, slot) entries
// are snapshotted when the cursor opens; rows are then fetched in
// batches under the read lock, so an open cursor never blocks writers
// and a long drain holds the lock only per batch. Concurrent DML is
// handled by comparing each fetched row's current key against the
// snapshotted one: a deleted row, or one whose key changed since the
// snapshot (including a slot reused for a different key), is skipped
// rather than emitted out of order. A slot reused for an EQUAL key may
// surface a row inserted after the cursor opened — the same
// read-committed-flavored visibility the scan cursor has — but every
// emitted row still satisfies the range and the emitted key sequence is
// always ascending (the basis of ORDER BY elision).
type RangeCursor struct {
	t       *Table
	col     int
	sn      Snap
	entries []orderedEntry
	pos     int
}

// NewRangeCursor opens a range iteration over the column's ordered
// index, reporting false when the column has none.
func (t *Table) NewRangeCursor(col string, lo, hi *RangeBound) (*RangeCursor, bool) {
	return t.NewRangeCursorSnap(LatestSnap(), col, lo, hi)
}

// NewRangeCursorSnap is NewRangeCursor as of a snapshot: emitted rows
// are the versions the snapshot sees, still in ascending key order.
func (t *Table) NewRangeCursorSnap(sn Snap, col string, lo, hi *RangeBound) (*RangeCursor, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.ordered[strings.ToLower(col)]
	if !ok {
		return nil, false
	}
	i, j := ix.span(lo, hi)
	entries := make([]orderedEntry, j-i)
	copy(entries, ix.entries[i:j])
	return &RangeCursor{t: t, col: ix.col, sn: sn, entries: entries}, true
}

// NextBatch fills dst with row references in key order, returning how
// many it produced; 0 means the cursor is exhausted. The rows must not
// be mutated (stored rows are immutable once inserted, so holding the
// references across batches is safe).
func (c *RangeCursor) NextBatch(dst []Row) int {
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	n := 0
	fast := c.sn.latest() && len(c.t.vslots) == 0
	for c.pos < len(c.entries) && n < len(dst) {
		en := c.entries[c.pos]
		c.pos++
		if en.slot >= len(c.t.rows) {
			continue
		}
		row := c.t.rows[en.slot]
		if !fast {
			row = c.t.visibleLocked(en.slot, c.sn)
		}
		if row == nil || row[c.col] == nil || !Equal(row[c.col], en.val) {
			continue
		}
		dst[n] = row
		n++
	}
	return n
}

// Range returns copies of the rows whose column value lies inside the
// bounds, in key order — the materialized convenience over RangeCursor.
func (t *Table) Range(col string, lo, hi *RangeBound) []Row {
	cur, ok := t.NewRangeCursor(col, lo, hi)
	if !ok {
		return nil
	}
	var out []Row
	buf := make([]Row, 64)
	for {
		n := cur.NextBatch(buf)
		if n == 0 {
			return out
		}
		for _, r := range buf[:n] {
			out = append(out, r.Clone())
		}
	}
}

// DescCursor iterates the rows an ordered index places inside [lo, hi]
// in DESCENDING key order, with ties in ascending slot order — exactly
// the sequence a stable descending sort of a slot-order scan produces,
// which is what lets the SQL planner elide ORDER BY key DESC and still
// match the sorted path row for row. It shares RangeCursor's DML
// discipline: the matching (key, slot) entries snapshot when the cursor
// opens, rows fetch in batches under the read lock, and rows deleted or
// re-keyed since the snapshot are skipped rather than emitted out of
// order, so the emitted key sequence is always non-increasing.
type DescCursor struct{ RangeCursor }

// NewDescCursor opens a descending range iteration over the column's
// ordered index, reporting false when the column has none.
func (t *Table) NewDescCursor(col string, lo, hi *RangeBound) (*DescCursor, bool) {
	return t.NewDescCursorSnap(LatestSnap(), col, lo, hi)
}

// NewDescCursorSnap is NewDescCursor as of a snapshot.
func (t *Table) NewDescCursorSnap(sn Snap, col string, lo, hi *RangeBound) (*DescCursor, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.ordered[strings.ToLower(col)]
	if !ok {
		return nil, false
	}
	i, j := ix.span(lo, hi)
	// Reverse by key group: groups of equal keys walk back to front,
	// each group's entries kept in ascending slot order.
	entries := make([]orderedEntry, 0, j-i)
	for j > i {
		gs := j - 1
		for gs > i && Equal(ix.entries[gs-1].val, ix.entries[j-1].val) {
			gs--
		}
		entries = append(entries, ix.entries[gs:j]...)
		j = gs
	}
	return &DescCursor{RangeCursor{t: t, col: ix.col, sn: sn, entries: entries}}, true
}

// ScanCursor iterates every live row in slot order, fetching references
// in batches under the read lock — the streaming counterpart of Scan
// for pull-based executors. Rows inserted behind the cursor's position
// during iteration are not revisited; rows appended ahead are seen.
type ScanCursor struct {
	t    *Table
	sn   Snap
	next int
}

// NewScanCursor opens a batched full-table iteration.
func (t *Table) NewScanCursor() *ScanCursor {
	return &ScanCursor{t: t, sn: LatestSnap()}
}

// NewScanCursorSnap is NewScanCursor as of a snapshot.
func (t *Table) NewScanCursorSnap(sn Snap) *ScanCursor {
	return &ScanCursor{t: t, sn: sn}
}

// NextBatch fills dst with live row references in slot order, returning
// how many it produced; 0 means the table is exhausted.
func (c *ScanCursor) NextBatch(dst []Row) int {
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	n := 0
	fast := c.sn.latest() && len(c.t.vslots) == 0
	for c.next < len(c.t.rows) && n < len(dst) {
		slot := c.next
		c.next++
		row := c.t.rows[slot]
		if !fast {
			row = c.t.visibleLocked(slot, c.sn)
		}
		if row == nil {
			continue
		}
		dst[n] = row
		n++
	}
	return n
}

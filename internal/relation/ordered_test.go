package relation

import (
	"bytes"
	"reflect"
	"testing"
)

func orderedTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustTable("m", NewSchema(
		NotNullCol("ID", TypeInt),
		Col("Score", TypeInt),
	), WithPrimaryKey("ID"), WithOrderedIndex("Score"))
	for i := 0; i < 10; i++ {
		var score Value
		if i != 7 { // one NULL: must never match a range
			score = int64((i * 3) % 10)
		}
		tbl.MustInsert(Row{int64(i), score})
	}
	return tbl
}

func scores(rows []Row) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[1].(int64)
	}
	return out
}

func TestOrderedRangeBounds(t *testing.T) {
	tbl := orderedTable(t)
	// Scores present: 0,3,6,9,2,5,8,(NULL),4,7 → sorted 0,2,3,4,5,6,7,8,9
	got := scores(tbl.Range("Score", &RangeBound{Value: int64(3), Inclusive: true}, &RangeBound{Value: int64(7), Inclusive: true}))
	if want := []int64{3, 4, 5, 6, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("inclusive range = %v, want %v", got, want)
	}
	got = scores(tbl.Range("Score", &RangeBound{Value: int64(3)}, &RangeBound{Value: int64(7)}))
	if want := []int64{4, 5, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("exclusive range = %v, want %v", got, want)
	}
	got = scores(tbl.Range("Score", nil, &RangeBound{Value: int64(2), Inclusive: true}))
	if want := []int64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unbounded-low range = %v, want %v", got, want)
	}
	if got := tbl.Range("nope", nil, nil); got != nil {
		t.Fatalf("range over unindexed column = %v, want nil", got)
	}
	// NULL never matches, even fully unbounded.
	if got := tbl.Range("Score", nil, nil); len(got) != 9 {
		t.Fatalf("unbounded range saw %d rows, want 9 (NULL excluded)", len(got))
	}
	if n, ok := tbl.RangeCount("Score", &RangeBound{Value: int64(5), Inclusive: true}, nil); !ok || n != 5 {
		t.Fatalf("RangeCount = %d,%v want 5,true", n, ok)
	}
}

func TestOrderedIndexMaintenance(t *testing.T) {
	tbl := orderedTable(t)
	// Update moves a row across the order.
	if err := tbl.UpdateByKey([]Value{int64(0)}, func(r Row) Row { r[1] = int64(99); return r }); err != nil {
		t.Fatal(err)
	}
	got := scores(tbl.Range("Score", &RangeBound{Value: int64(90)}, nil))
	if want := []int64{99}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after update: %v, want %v", got, want)
	}
	// Delete removes entries.
	tbl.DeleteWhere(func(r Row) bool { return r[1] != nil && r[1].(int64) >= 5 })
	got = scores(tbl.Range("Score", nil, nil))
	if want := []int64{2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after delete: %v, want %v", got, want)
	}
	// Reinserted rows (reusing tombstone slots) index correctly.
	tbl.MustInsert(Row{int64(50), int64(6)})
	got = scores(tbl.Range("Score", &RangeBound{Value: int64(5)}, nil))
	if want := []int64{6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after reinsert: %v, want %v", got, want)
	}
}

func TestSchemaEpoch(t *testing.T) {
	tbl := orderedTable(t)
	e0 := tbl.SchemaEpoch()
	tbl.MustInsert(Row{int64(100), int64(1)})
	tbl.DeleteWhere(func(r Row) bool { return r[0] == int64(100) })
	if tbl.SchemaEpoch() != e0 {
		t.Fatal("row DML must not move the schema epoch")
	}
	if err := tbl.AddOrderedIndex("ID"); err != nil {
		t.Fatal(err)
	}
	if tbl.SchemaEpoch() != e0+1 {
		t.Fatalf("AddOrderedIndex should bump the epoch: %d → %d", e0, tbl.SchemaEpoch())
	}
	// Idempotent: re-adding is a no-op and does not bump again.
	if err := tbl.AddOrderedIndex("ID"); err != nil {
		t.Fatal(err)
	}
	if tbl.SchemaEpoch() != e0+1 {
		t.Fatal("re-adding an existing ordered index must not bump the epoch")
	}
	if err := tbl.AddOrderedIndex("Nope"); err == nil {
		t.Fatal("unknown column should fail")
	}
	// The freshly built index answers ranges over pre-existing rows.
	if n, ok := tbl.RangeCount("ID", &RangeBound{Value: int64(5), Inclusive: true}, nil); !ok || n != 5 {
		t.Fatalf("built-from-rows index RangeCount = %d,%v", n, ok)
	}
}

func TestOrderedIndexSnapshotRoundTrip(t *testing.T) {
	db := NewDB()
	db.MustCreate(orderedTable(t))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lt := loaded.MustTable("m")
	if !lt.HasOrderedIndex("Score") {
		t.Fatal("ordered index lost across snapshot")
	}
	want := scores(db.MustTable("m").Range("Score", nil, nil))
	got := scores(lt.Range("Score", nil, nil))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("range after load = %v, want %v", got, want)
	}
}

func TestScanCursorBatches(t *testing.T) {
	tbl := orderedTable(t)
	cur := tbl.NewScanCursor()
	buf := make([]Row, 3)
	var ids []int64
	for {
		n := cur.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, r := range buf[:n] {
			ids = append(ids, r[0].(int64))
		}
	}
	if len(ids) != 10 || ids[0] != 0 || ids[9] != 9 {
		t.Fatalf("scan cursor ids = %v", ids)
	}
}

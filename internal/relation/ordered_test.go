package relation

import (
	"bytes"
	"reflect"
	"testing"
)

func orderedTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustTable("m", NewSchema(
		NotNullCol("ID", TypeInt),
		Col("Score", TypeInt),
	), WithPrimaryKey("ID"), WithOrderedIndex("Score"))
	for i := 0; i < 10; i++ {
		var score Value
		if i != 7 { // one NULL: must never match a range
			score = int64((i * 3) % 10)
		}
		tbl.MustInsert(Row{int64(i), score})
	}
	return tbl
}

func scores(rows []Row) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[1].(int64)
	}
	return out
}

func TestOrderedRangeBounds(t *testing.T) {
	tbl := orderedTable(t)
	// Scores present: 0,3,6,9,2,5,8,(NULL),4,7 → sorted 0,2,3,4,5,6,7,8,9
	got := scores(tbl.Range("Score", &RangeBound{Value: int64(3), Inclusive: true}, &RangeBound{Value: int64(7), Inclusive: true}))
	if want := []int64{3, 4, 5, 6, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("inclusive range = %v, want %v", got, want)
	}
	got = scores(tbl.Range("Score", &RangeBound{Value: int64(3)}, &RangeBound{Value: int64(7)}))
	if want := []int64{4, 5, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("exclusive range = %v, want %v", got, want)
	}
	got = scores(tbl.Range("Score", nil, &RangeBound{Value: int64(2), Inclusive: true}))
	if want := []int64{0, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unbounded-low range = %v, want %v", got, want)
	}
	if got := tbl.Range("nope", nil, nil); got != nil {
		t.Fatalf("range over unindexed column = %v, want nil", got)
	}
	// NULL never matches, even fully unbounded.
	if got := tbl.Range("Score", nil, nil); len(got) != 9 {
		t.Fatalf("unbounded range saw %d rows, want 9 (NULL excluded)", len(got))
	}
	if n, ok := tbl.RangeCount("Score", &RangeBound{Value: int64(5), Inclusive: true}, nil); !ok || n != 5 {
		t.Fatalf("RangeCount = %d,%v want 5,true", n, ok)
	}
}

func TestOrderedIndexMaintenance(t *testing.T) {
	tbl := orderedTable(t)
	// Update moves a row across the order.
	if err := tbl.UpdateByKey([]Value{int64(0)}, func(r Row) Row { r[1] = int64(99); return r }); err != nil {
		t.Fatal(err)
	}
	got := scores(tbl.Range("Score", &RangeBound{Value: int64(90)}, nil))
	if want := []int64{99}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after update: %v, want %v", got, want)
	}
	// Delete removes entries.
	tbl.DeleteWhere(func(r Row) bool { return r[1] != nil && r[1].(int64) >= 5 })
	got = scores(tbl.Range("Score", nil, nil))
	if want := []int64{2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after delete: %v, want %v", got, want)
	}
	// Reinserted rows (reusing tombstone slots) index correctly.
	tbl.MustInsert(Row{int64(50), int64(6)})
	got = scores(tbl.Range("Score", &RangeBound{Value: int64(5)}, nil))
	if want := []int64{6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after reinsert: %v, want %v", got, want)
	}
}

func TestSchemaEpoch(t *testing.T) {
	tbl := orderedTable(t)
	e0 := tbl.SchemaEpoch()
	tbl.MustInsert(Row{int64(100), int64(1)})
	tbl.DeleteWhere(func(r Row) bool { return r[0] == int64(100) })
	if tbl.SchemaEpoch() != e0 {
		t.Fatal("row DML must not move the schema epoch")
	}
	if err := tbl.AddOrderedIndex("ID"); err != nil {
		t.Fatal(err)
	}
	if tbl.SchemaEpoch() != e0+1 {
		t.Fatalf("AddOrderedIndex should bump the epoch: %d → %d", e0, tbl.SchemaEpoch())
	}
	// Idempotent: re-adding is a no-op and does not bump again.
	if err := tbl.AddOrderedIndex("ID"); err != nil {
		t.Fatal(err)
	}
	if tbl.SchemaEpoch() != e0+1 {
		t.Fatal("re-adding an existing ordered index must not bump the epoch")
	}
	if err := tbl.AddOrderedIndex("Nope"); err == nil {
		t.Fatal("unknown column should fail")
	}
	// The freshly built index answers ranges over pre-existing rows.
	if n, ok := tbl.RangeCount("ID", &RangeBound{Value: int64(5), Inclusive: true}, nil); !ok || n != 5 {
		t.Fatalf("built-from-rows index RangeCount = %d,%v", n, ok)
	}
}

func TestOrderedIndexSnapshotRoundTrip(t *testing.T) {
	db := NewDB()
	db.MustCreate(orderedTable(t))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lt := loaded.MustTable("m")
	if !lt.HasOrderedIndex("Score") {
		t.Fatal("ordered index lost across snapshot")
	}
	want := scores(db.MustTable("m").Range("Score", nil, nil))
	got := scores(lt.Range("Score", nil, nil))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("range after load = %v, want %v", got, want)
	}
}

// drainDesc empties a DescCursor into rows.
func drainDesc(c *DescCursor) []Row {
	var out []Row
	buf := make([]Row, 4)
	for {
		n := c.NextBatch(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func TestDescCursorOrderAndTies(t *testing.T) {
	tbl := MustTable("d", NewSchema(
		NotNullCol("ID", TypeInt),
		Col("Score", TypeInt),
	), WithPrimaryKey("ID"), WithOrderedIndex("Score"))
	// Duplicate keys across interleaved slots, plus a NULL.
	for i, s := range []Value{int64(5), int64(2), int64(5), nil, int64(9), int64(2), int64(5)} {
		tbl.MustInsert(Row{int64(i), s})
	}
	cur, ok := tbl.NewDescCursor("Score", nil, nil)
	if !ok {
		t.Fatal("no desc cursor over the ordered column")
	}
	rows := drainDesc(cur)
	// Keys descend; within a key, slots ascend — the stable descending
	// sort's tie order. NULL is never emitted.
	var got [][2]int64
	for _, r := range rows {
		got = append(got, [2]int64{r[1].(int64), r[0].(int64)})
	}
	want := [][2]int64{{9, 4}, {5, 0}, {5, 2}, {5, 6}, {2, 1}, {2, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("desc order = %v, want %v", got, want)
	}
}

func TestDescCursorBounds(t *testing.T) {
	tbl := orderedTable(t)
	// Scores sorted: 0,2,3,4,5,6,7,8,9 (one NULL excluded).
	cur, ok := tbl.NewDescCursor("Score",
		&RangeBound{Value: int64(3), Inclusive: true},
		&RangeBound{Value: int64(7)})
	if !ok {
		t.Fatal("no desc cursor")
	}
	got := scores(drainDesc(cur))
	if want := []int64{6, 5, 4, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounded desc = %v, want %v", got, want)
	}
	if _, ok := tbl.NewDescCursor("nope", nil, nil); ok {
		t.Fatal("desc cursor over an unindexed column should report false")
	}
}

// TestDescCursorDMLSafety pins the concurrent-DML contract shared with
// RangeCursor: rows deleted or re-keyed after the cursor opened are
// skipped, so the emitted key sequence stays non-increasing and every
// emitted row still carries its snapshotted key.
func TestDescCursorDMLSafety(t *testing.T) {
	tbl := orderedTable(t)
	cur, ok := tbl.NewDescCursor("Score", nil, nil)
	if !ok {
		t.Fatal("no desc cursor")
	}
	buf := make([]Row, 2)
	n := cur.NextBatch(buf) // consume the top batch first
	if n != 2 || buf[0][1].(int64) != 9 {
		t.Fatalf("first batch = %v", buf[:n])
	}
	prev := buf[n-1][1].(int64)
	// Mutate beneath the open cursor: delete one mid row, move another.
	tbl.DeleteWhere(func(r Row) bool { return r[1] != nil && r[1].(int64) == 5 })
	if err := tbl.UpdateByKey([]Value{int64(1)}, func(r Row) Row { r[1] = int64(42); return r }); err != nil {
		t.Fatal(err) // slot for score 3 now carries 42
	}
	for {
		n := cur.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, r := range buf[:n] {
			s := r[1].(int64)
			if s > prev {
				t.Fatalf("desc cursor emitted ascending key %d after %d", s, prev)
			}
			if s == 5 || s == 3 {
				t.Fatalf("desc cursor emitted a deleted/re-keyed row: %v", r)
			}
			prev = s
		}
	}
}

func TestScanCursorBatches(t *testing.T) {
	tbl := orderedTable(t)
	cur := tbl.NewScanCursor()
	buf := make([]Row, 3)
	var ids []int64
	for {
		n := cur.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, r := range buf[:n] {
			ids = append(ids, r[0].(int64))
		}
	}
	if len(ids) != 10 || ids[0] != 0 || ids[9] != 9 {
		t.Fatalf("scan cursor ids = %v", ids)
	}
}

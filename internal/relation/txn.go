package relation

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the MVCC core: a per-DB commit clock, per-slot version
// metadata, snapshot visibility, and the Tx API (DB.Begin → snapshot
// reads, read-your-own-writes, first-committer-wins conflicts, commit /
// rollback).
//
// The representation keeps the existing rows/slot layout: rows[slot]
// always holds the NEWEST version of a row, and meta[slot] carries its
// begin/end commit stamps plus a chain of superseded committed versions.
// Readers that are not inside a transaction see the latest committed
// state exactly as before (the degenerate snapshot), so the hot paths
// keep their shape; transaction snapshots walk the chains. Writers never
// block readers and readers never block writers — a reader holds the
// table RLock only per batch, and visibility is decided by stamps, not
// by lock exclusion.

// ErrTxDone is returned when a finished transaction is used again.
var ErrTxDone = errors.New("relation: transaction already committed or rolled back")

// ErrTxConflict is the first-committer-wins write-write conflict: the
// transaction tried to write a row version it cannot own — either a row
// another in-flight transaction has staged a write against, or one that
// was committed after this transaction's snapshot. The transaction is
// poisoned: only Rollback (or Commit, which reports this error and
// rolls back) remains.
var ErrTxConflict = errors.New("relation: write-write conflict")

// slotMeta is the visibility metadata behind one row slot. The zero
// value (all stamps zero, no chain) means "uncommitted by an unknown
// writer" and is never observable: every code path that fills a slot
// stamps it before releasing the write lock.
type slotMeta struct {
	begin uint64      // commit seq of the creating write; 0 = creator still in flight
	end   uint64      // commit seq of the deleting write; 0 = live
	btx   uint64      // in-flight creator tx id (begin==0 while set)
	etx   uint64      // in-flight deleter tx id (end==0 while set)
	prev  *rowVersion // superseded committed versions, newest first
}

// plain reports whether the slot has no transactional residue: exactly
// one committed, live version and no chain. Index entries for a plain
// slot are exact, so lookups skip re-validation.
func (m *slotMeta) plain() bool {
	return m.btx == 0 && m.etx == 0 && m.end == 0 && m.prev == nil
}

// rowVersion is one superseded committed version of a row.
type rowVersion struct {
	row   Row
	begin uint64
	end   uint64 // 0 while the superseding head is uncommitted
	prev  *rowVersion
}

// Snap identifies what a read can see: every version committed at or
// before seq, plus the uncommitted writes of transaction tx (0 = none).
type Snap struct {
	seq uint64
	tx  uint64
}

const latestSeq = ^uint64(0)

// LatestSnap is the degenerate snapshot non-transactional reads use: it
// admits every committed version and no in-flight one — the same
// read-committed-flavored visibility the table had before MVCC.
func LatestSnap() Snap { return Snap{seq: latestSeq} }

func (sn Snap) latest() bool { return sn.seq == latestSeq && sn.tx == 0 }

// visibleLocked resolves the row version at slot that sn can see, or
// nil. Caller holds at least the table read lock.
func (t *Table) visibleLocked(slot int, sn Snap) Row {
	row := t.rows[slot]
	if row == nil {
		return nil
	}
	m := &t.meta[slot]
	if m.btx != 0 {
		// Head is an in-flight write; visible only to its own transaction
		// (unless that same transaction also staged its deletion).
		if m.btx == sn.tx {
			if m.etx == sn.tx {
				return nil
			}
			return row
		}
	} else if m.begin <= sn.seq {
		if m.etx != 0 && m.etx == sn.tx {
			return nil // we staged this row's deletion
		}
		if m.end != 0 && m.end <= sn.seq {
			return nil // deleted at or before the snapshot
		}
		return row
	}
	// Head invisible: committed past the snapshot, or another
	// transaction's in-flight write. Walk the superseded versions.
	for v := m.prev; v != nil; v = v.prev {
		if v.begin <= sn.seq && (v.end == 0 || v.end > sn.seq) {
			return v.row
		}
	}
	return nil
}

// txClock is the per-DB transaction clock: a commit-sequence allocator,
// the committed watermark (every seq at or below it is fully stamped),
// the active-snapshot registry, and the transaction counters served
// under /api/stats.
type txClock struct {
	mu        sync.Mutex
	commitSeq uint64              // last allocated commit seq
	pending   map[uint64]struct{} // allocated, not yet fully stamped
	snaps     map[uint64]uint64   // active tx id → snapshot seq
	watermark atomic.Uint64       // largest seq with no pending seq at or below it
	nextTx    atomic.Uint64

	active    atomic.Int64
	committed atomic.Uint64
	aborted   atomic.Uint64
	conflicts atomic.Uint64

	// Observer-delivery accounting for the durable notify reorder (see
	// table.go flushNotifies): deliveries made before the fsync was
	// confirmed (async commit policy), and deliveries dropped because
	// the WAL rejected the commit.
	notifyUnconfirmed atomic.Uint64
	notifyDropped     atomic.Uint64
}

func newTxClock() *txClock {
	c := &txClock{
		commitSeq: 1, // seq 1 is the "ancient" stamp pre-MVCC rows carry
		pending:   make(map[uint64]struct{}),
		snaps:     make(map[uint64]uint64),
	}
	c.watermark.Store(1)
	return c
}

// alloc reserves the next commit seq and reports whether superseded
// versions must be retained (true while any transaction snapshot is
// active). The seq stays pending — excluded from new snapshots — until
// complete is called; allocation and the keep-versions decision are
// atomic so a transaction beginning mid-statement can never observe a
// discarded version it was entitled to.
func (c *txClock) alloc() (seq uint64, keepOld bool) {
	if c == nil {
		return 1, false
	}
	c.mu.Lock()
	c.commitSeq++
	seq = c.commitSeq
	c.pending[seq] = struct{}{}
	keepOld = len(c.snaps) > 0
	c.mu.Unlock()
	return seq, keepOld
}

// complete marks seq fully stamped and advances the watermark over any
// contiguous run of completed seqs.
func (c *txClock) complete(seq uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	delete(c.pending, seq)
	w := c.watermark.Load()
	for w < c.commitSeq {
		if _, open := c.pending[w+1]; open {
			break
		}
		w++
	}
	c.watermark.Store(w)
	c.mu.Unlock()
}

// beginSnap registers a new transaction. It waits until no commit is
// mid-stamp so the snapshot is a clean prefix: every seq at or below it
// is fully stamped, every seq above it is invisible.
func (c *txClock) beginSnap() (id, snap uint64) {
	id = c.nextTx.Add(1)
	for {
		c.mu.Lock()
		if len(c.pending) == 0 {
			snap = c.commitSeq
			c.snaps[id] = snap
			c.mu.Unlock()
			c.active.Add(1)
			return id, snap
		}
		c.mu.Unlock()
		runtime.Gosched() // stamp loops are short; spin rather than block
	}
}

// endSnap unregisters a transaction's snapshot.
func (c *txClock) endSnap(id uint64) {
	c.mu.Lock()
	delete(c.snaps, id)
	c.mu.Unlock()
	c.active.Add(-1)
}

// minActive returns the oldest active snapshot seq, or the maximum
// uint64 when no snapshot is active — the horizon below which
// superseded versions are unreachable and may be garbage collected.
func (c *txClock) minActive() uint64 {
	if c == nil {
		return latestSeq
	}
	c.mu.Lock()
	min := uint64(latestSeq)
	for _, s := range c.snaps {
		if s < min {
			min = s
		}
	}
	c.mu.Unlock()
	return min
}

// anyActive reports whether any transaction snapshot is registered.
func (c *txClock) anyActive() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	n := len(c.snaps)
	c.mu.Unlock()
	return n > 0
}

// TxStats is the transaction section of /api/stats.
type TxStats struct {
	Active    int64  `json:"active"`
	Committed uint64 `json:"committed"`
	Aborted   uint64 `json:"aborted"`
	Conflicts uint64 `json:"conflicts"`
	Watermark uint64 `json:"watermark"`
}

// TxStats snapshots the database's transaction counters.
func (db *DB) TxStats() TxStats {
	c := db.clock
	return TxStats{
		Active:    c.active.Load(),
		Committed: c.committed.Load(),
		Aborted:   c.aborted.Load(),
		Conflicts: c.conflicts.Load(),
		Watermark: c.watermark.Load(),
	}
}

// NotifyStats reports the durable observer-delivery accounting: how
// many notifications were delivered before their fsync was confirmed
// (async commit policy — the write-through window), and how many were
// dropped because the WAL rejected their records.
func (db *DB) NotifyStats() (unconfirmed, dropped uint64) {
	return db.clock.notifyUnconfirmed.Load(), db.clock.notifyDropped.Load()
}

// Tx is a snapshot-isolation transaction over one DB. Reads see the
// database exactly as of Begin plus the transaction's own writes;
// writes stage in-flight versions invisible to everyone else until
// Commit stamps them with a single commit seq. Write-write conflicts
// (first-committer-wins) surface as ErrTxConflict on the writing
// statement and poison the transaction. A Tx is not safe for
// concurrent use by multiple goroutines.
type Tx struct {
	db    *DB
	clock *txClock
	id    uint64
	snap  uint64

	writes  []*txEffect
	bySlot  map[txSlotKey]*txEffect
	tables  map[*Table]struct{}
	gate    TxStorage // non-nil while holding the checkpoint gate
	done    bool
	poison  error
	doneSeq uint64 // commit seq once committed (0 otherwise)
}

type txSlotKey struct {
	t    *Table
	slot int
}

// txEffect is this transaction's net effect on one slot.
type txEffect struct {
	t      *Table
	kind   MutKind     // MutInsert / MutUpdate / MutDelete
	slot   int
	node   *rowVersion // update: the chain node holding the superseded version
	before Row         // committed pre-image for observers (update/delete)
	erased bool        // insert later deleted by this same tx: commit to a dead version

	// A staged insert/rekey can displace a primary-key mapping that a
	// dead-but-retained version still holds; rollback restores it.
	pkDisplaced bool
	pkKey       string
	pkPrev      int
}

// Begin opens a snapshot-isolation transaction. On a durable DB the
// transaction holds the checkpoint gate (shared side) for its lifetime,
// so a checkpoint can never truncate WAL records of an open
// transaction; long-lived transactions therefore delay checkpoints.
func (db *DB) Begin() *Tx {
	tx := &Tx{db: db, clock: db.clock}
	db.mu.RLock()
	s := db.store
	db.mu.RUnlock()
	if ts, ok := s.(TxStorage); ok {
		ts.BeginTxGate()
		tx.gate = ts
	}
	tx.id, tx.snap = db.clock.beginSnap()
	return tx
}

// Snapshot returns the visibility snapshot of the transaction's reads.
func (tx *Tx) Snapshot() Snap { return Snap{seq: tx.snap, tx: tx.id} }

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.id }

func (tx *Tx) usable() error {
	if tx.done {
		return ErrTxDone
	}
	return nil
}

// countConflict bumps the DB-wide conflict counter; the autocommit
// write paths in table.go call it when a statement loses to a row
// staged by an open transaction.
func (t *Table) countConflict() {
	if t.clock != nil {
		t.clock.conflicts.Add(1)
	}
}

func (tx *Tx) fail(err error) error {
	if errors.Is(err, ErrTxConflict) {
		tx.clock.conflicts.Add(1)
		if tx.poison == nil {
			tx.poison = err
		}
	}
	return err
}

func (tx *Tx) touch(t *Table) {
	if tx.tables == nil {
		tx.tables = make(map[*Table]struct{})
		tx.bySlot = make(map[txSlotKey]*txEffect)
	}
	tx.tables[t] = struct{}{}
}

func (tx *Tx) record(e *txEffect) {
	tx.touch(e.t)
	tx.writes = append(tx.writes, e)
	tx.bySlot[txSlotKey{e.t, e.slot}] = e
}

// canWriteLocked checks the first-committer-wins rule for slot: the
// head version must be this transaction's own staged write, or a
// committed live version inside the snapshot. Caller holds the write
// lock and has established that the slot is visible to tx.
func (tx *Tx) canWriteLocked(t *Table, slot int) error {
	m := &t.meta[slot]
	if m.btx != 0 {
		if m.btx != tx.id {
			return ErrTxConflict
		}
		return nil
	}
	if m.etx != 0 && m.etx != tx.id {
		return ErrTxConflict
	}
	if m.begin > tx.snap || m.end != 0 {
		// Committed after our snapshot began (or already deleted by a
		// later committer): first committer won.
		return ErrTxConflict
	}
	return nil
}

// logTx journals a statement's staged effects under the table lock,
// mirroring the autocommit Storage protocol but with tx-tagged records
// and no per-statement fsync: only the commit record is awaited.
func (tx *Tx) logTx(t *Table, muts []Mutation) error {
	if tx.gate == nil {
		return nil
	}
	_, err := tx.gate.LogTxMutations(tx.id, t.name, muts)
	return err
}

// Insert stages a row insert. The returned row is the stored image
// (auto-increment and coercion applied).
func (tx *Tx) Insert(t *Table, row Row) (Row, error) {
	if err := tx.usable(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r, err := t.validate(row)
	if err != nil {
		return nil, err
	}
	var key string
	displaced, prevSlot := false, 0
	if t.pkIndex != nil {
		key = t.pkKey(r)
		if slot, dup := t.pkIndex[key]; dup {
			// The mapping may be stale: the version under it may be
			// deleted (awaiting GC) or staged for deletion by this very
			// transaction. Steal it only when no live-to-us claim remains.
			if t.slotHasKeyLocked(slot, key) {
				m := &t.meta[slot]
				switch {
				case m.btx != 0 && m.btx != tx.id:
					return nil, tx.fail(fmt.Errorf("relation: table %s key %v staged by another transaction: %w", t.name, key, ErrTxConflict))
				case m.etx == tx.id:
					// We deleted this row in this transaction: the key is
					// free for us. The mapping moves to the new slot; the
					// old version stays reachable through its slot.
				case t.visibleLocked(slot, tx.Snapshot()) != nil:
					return nil, fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.name, key)
				case m.btx == 0 && m.end == 0:
					// A live head committed after our snapshot: the first
					// committer won this key.
					return nil, tx.fail(fmt.Errorf("relation: table %s key %v committed after snapshot: %w", t.name, key, ErrTxConflict))
				}
			}
			displaced, prevSlot = true, slot
		}
	}
	slot := t.newSlotLocked(r)
	t.meta[slot] = slotMeta{btx: tx.id}
	t.vslotAdd(slot)
	if t.pkIndex != nil {
		t.pkIndex[key] = slot
	}
	t.addEntriesLocked(slot, r, nil)
	if err := tx.logTx(t, []Mutation{{Kind: MutInsert, Slot: slot, Row: r}}); err != nil {
		t.removeHeadLocked(slot)
		if displaced {
			t.pkIndex[key] = prevSlot
		}
		return nil, err
	}
	tx.record(&txEffect{t: t, kind: MutInsert, slot: slot, pkDisplaced: displaced, pkKey: key, pkPrev: prevSlot})
	return r.Clone(), nil
}

// UpdateWhere stages an update of every row (visible to tx) satisfying
// pred, reporting how many. A conflict or validation error mid-batch
// leaves the earlier staged updates in place — roll back to discard
// them.
func (tx *Tx) UpdateWhere(t *Table, pred func(Row) bool, set func(Row) Row) (int, error) {
	if err := tx.usable(); err != nil {
		return 0, err
	}
	sn := tx.Snapshot()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	var muts []Mutation
	for slot := range t.rows {
		cur := t.visibleLocked(slot, sn)
		if cur == nil || !pred(cur) {
			continue
		}
		if err := tx.canWriteLocked(t, slot); err != nil {
			return n, tx.fail(fmt.Errorf("relation: table %s slot %d: %w", t.name, slot, err))
		}
		repl, err := t.validate(set(cur.Clone()))
		if err != nil {
			return n, err
		}
		if err := tx.stageUpdateLocked(t, slot, repl); err != nil {
			return n, err
		}
		muts = append(muts, Mutation{Kind: MutUpdate, Slot: slot, Row: repl})
		n++
	}
	if len(muts) > 0 {
		if err := tx.logTx(t, muts); err != nil {
			return n, err
		}
	}
	return n, nil
}

// stageUpdateLocked replaces slot's head with repl under this
// transaction: the committed head (if any) is pushed onto the version
// chain, and index entries for repl's values are added while the old
// entries are retained for other snapshots.
func (tx *Tx) stageUpdateLocked(t *Table, slot int, repl Row) error {
	m := &t.meta[slot]
	old := t.rows[slot]
	displaced, prevSlot := false, 0
	var newKey string
	if t.pkIndex != nil {
		oldKey := t.pkKey(old)
		newKey = t.pkKey(repl)
		if newKey != oldKey {
			if s, dup := t.pkIndex[newKey]; dup && s != slot {
				if t.slotHasKeyLocked(s, newKey) {
					return fmt.Errorf("%w: table %s", ErrDuplicateKey, t.name)
				}
				displaced, prevSlot = true, s
			}
			t.pkIndex[newKey] = slot
			// The old key's mapping stays: superseded versions (and, on
			// our own rewrite, possibly chain versions) still claim it;
			// GC retires it when the last claimant goes.
		}
	}
	if m.btx == tx.id {
		// Rewriting our own staged head: swap in place, keeping the
		// entry sets consistent with the surviving versions.
		t.retireEntriesLocked(slot, old, repl)
		t.addEntriesLocked(slot, repl, nil)
		t.rows[slot] = repl
		if t.pkIndex != nil {
			// The rewritten head's key may now be unclaimed.
			if oldKey := t.pkKey(old); oldKey != newKey {
				if s, ok := t.pkIndex[oldKey]; ok && s == slot && !t.slotHasKeyLocked(slot, oldKey) {
					delete(t.pkIndex, oldKey)
				}
			}
		}
		if displaced {
			if e := tx.bySlot[txSlotKey{t, slot}]; e != nil && !e.pkDisplaced {
				e.pkDisplaced, e.pkKey, e.pkPrev = true, newKey, prevSlot
			}
		}
		return nil
	}
	node := &rowVersion{row: old, begin: m.begin, prev: m.prev}
	t.addEntriesLocked(slot, repl, nil)
	t.rows[slot] = repl
	*m = slotMeta{btx: tx.id, prev: node}
	t.vslotAdd(slot)
	tx.record(&txEffect{t: t, kind: MutUpdate, slot: slot, node: node, before: old,
		pkDisplaced: displaced, pkKey: newKey, pkPrev: prevSlot})
	return nil
}

// DeleteWhere stages deletion of every row (visible to tx) satisfying
// pred, reporting how many.
func (tx *Tx) DeleteWhere(t *Table, pred func(Row) bool) (int, error) {
	if err := tx.usable(); err != nil {
		return 0, err
	}
	sn := tx.Snapshot()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	var muts []Mutation
	for slot := range t.rows {
		cur := t.visibleLocked(slot, sn)
		if cur == nil || !pred(cur) {
			continue
		}
		if err := tx.canWriteLocked(t, slot); err != nil {
			return n, tx.fail(fmt.Errorf("relation: table %s slot %d: %w", t.name, slot, err))
		}
		m := &t.meta[slot]
		m.etx = tx.id
		t.vslotAdd(slot)
		if e := tx.bySlot[txSlotKey{t, slot}]; e != nil && m.btx == tx.id {
			// Deleting a row we inserted/updated in this transaction:
			// the staged head commits as created-and-deleted (invisible
			// to every snapshot).
			e.erased = e.kind == MutInsert
			if e.kind == MutUpdate {
				e.kind = MutDelete
			}
		} else {
			tx.record(&txEffect{t: t, kind: MutDelete, slot: slot, before: t.rows[slot]})
		}
		muts = append(muts, Mutation{Kind: MutDelete, Slot: slot})
		n++
	}
	if len(muts) > 0 {
		if err := tx.logTx(t, muts); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Get returns a copy of the row with the given primary key as this
// transaction sees it.
func (tx *Tx) Get(t *Table, key ...Value) (Row, bool) {
	if tx.done {
		return nil, false
	}
	return t.GetSnap(tx.Snapshot(), key...)
}

// Lookup returns copies of the rows whose column equals v, as this
// transaction sees them.
func (tx *Tx) Lookup(t *Table, col string, v Value) []Row {
	if tx.done {
		return nil
	}
	return t.LookupSnap(tx.Snapshot(), col, v)
}

// Scan iterates the rows this transaction sees, in slot order.
func (tx *Tx) Scan(t *Table, fn func(row Row) bool) {
	if tx.done {
		return
	}
	t.ScanSnap(tx.Snapshot(), func(_ int, r Row) bool { return fn(r) })
}

// Commit stamps every staged write with one commit seq, making the
// whole transaction visible atomically per table (and atomically to
// every snapshot begun afterwards), journals the WAL commit record, and
// waits for it to be durable. A poisoned (conflicted) transaction
// rolls back instead and reports the conflict.
func (tx *Tx) Commit() error {
	if err := tx.usable(); err != nil {
		return err
	}
	if tx.poison != nil {
		err := tx.poison
		tx.rollback()
		return err
	}
	// The commit record is appended before stamping: if the WAL rejects
	// it the transaction can still roll back cleanly, and recovery
	// treats an uncommitted transaction as aborted either way.
	var commitLSN uint64
	if tx.gate != nil && len(tx.writes) > 0 {
		lsn, err := tx.gate.LogTxCommit(tx.id)
		if err != nil {
			tx.rollback()
			return err
		}
		commitLSN = lsn
	}
	seq, _ := tx.clock.alloc()
	for t := range tx.tables {
		t.mu.Lock()
		for _, e := range tx.writes {
			if e.t != t {
				continue
			}
			m := &t.meta[e.slot]
			switch e.kind {
			case MutInsert:
				m.begin, m.btx = seq, 0
				if e.erased || m.etx == tx.id {
					m.end, m.etx = seq, 0 // born dead: never visible
					t.version++
					continue
				}
				t.live++
				t.version++
				t.queueNotifyLocked(commitLSN, MutInsert, nil, t.rows[e.slot])
			case MutUpdate:
				m.begin, m.btx = seq, 0
				if e.node != nil {
					e.node.end = seq
				}
				t.version++
				t.queueNotifyLocked(commitLSN, MutUpdate, e.before, t.rows[e.slot])
			case MutDelete:
				if m.btx == tx.id { // delete of our own staged update
					m.begin, m.btx = seq, 0
					if e.node != nil {
						e.node.end = seq
					}
				}
				m.end, m.etx = seq, 0
				t.live--
				t.version++
				t.queueNotifyLocked(commitLSN, MutDelete, e.before, nil)
			}
			t.vslotAdd(e.slot)
		}
		t.gcLocked(tx.clock.minActiveExcept(tx.id))
		t.mu.Unlock()
	}
	tx.clock.complete(seq)
	tx.finish(seq)
	tx.clock.committed.Add(1)
	var err error
	if tx.gate != nil && commitLSN != 0 {
		err = tx.gate.WaitDurable(commitLSN)
	}
	for t := range tx.tables {
		t.flushNotifies(commitLSN, err, tx.gate)
	}
	tx.releaseGate()
	return err
}

// minActiveExcept is minActive ignoring one transaction — the horizon a
// committing transaction sweeps against (its own snapshot is moot).
func (c *txClock) minActiveExcept(id uint64) uint64 {
	c.mu.Lock()
	min := uint64(latestSeq)
	for tid, s := range c.snaps {
		if tid != id && s < min {
			min = s
		}
	}
	c.mu.Unlock()
	return min
}

// Rollback discards every staged write. Nothing was ever visible to
// other snapshots, so this only unwinds the staged versions.
func (tx *Tx) Rollback() error {
	if err := tx.usable(); err != nil {
		return err
	}
	tx.rollback()
	return nil
}

func (tx *Tx) rollback() {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		e := tx.writes[i]
		t := e.t
		t.mu.Lock()
		m := &t.meta[e.slot]
		switch e.kind {
		case MutInsert:
			t.removeHeadLocked(e.slot)
		case MutUpdate:
			t.popHeadLocked(e.slot, e.node)
		case MutDelete:
			if m.btx == tx.id { // delete of our own staged update
				t.popHeadLocked(e.slot, e.node)
				m = &t.meta[e.slot]
			}
			if m.etx == tx.id {
				m.etx = 0
				if m.plain() {
					delete(t.vslots, e.slot)
				}
			}
		}
		if e.pkDisplaced && t.pkIndex != nil {
			if s, ok := t.pkIndex[e.pkKey]; !ok || s == e.slot {
				t.pkIndex[e.pkKey] = e.pkPrev
			}
		}
		t.mu.Unlock()
	}
	if tx.gate != nil && len(tx.writes) > 0 {
		tx.gate.LogTxAbort(tx.id) // best effort; recovery drops uncommitted txs anyway
	}
	tx.finish(0)
	tx.clock.aborted.Add(1)
	tx.releaseGate()
}

func (tx *Tx) finish(seq uint64) {
	tx.done = true
	tx.doneSeq = seq
	tx.clock.endSnap(tx.id)
}

func (tx *Tx) releaseGate() {
	if tx.gate != nil {
		tx.gate.EndTxGate()
		tx.gate = nil
	}
}

// --- staged-version maintenance on Table --------------------------------

// newSlotLocked takes a slot from the free list or appends one, storing
// r as the head row. meta is grown in step; the caller stamps it.
func (t *Table) newSlotLocked(r Row) int {
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = r
		t.meta[slot] = slotMeta{}
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, r)
		t.meta = append(t.meta, slotMeta{})
	}
	return slot
}

// vslotAdd marks a slot as carrying transactional residue (staged
// writes, version chains, or a committed-dead head awaiting GC).
func (t *Table) vslotAdd(slot int) {
	if t.vslots == nil {
		t.vslots = make(map[int]struct{})
	}
	t.vslots[slot] = struct{}{}
}

// addEntriesLocked adds index and ordered-index entries for row's
// values at slot, skipping values some other surviving version of the
// slot already carries (entry sets stay duplicate-free so removal by
// value stays exact). excl is a version to ignore (being removed).
func (t *Table) addEntriesLocked(slot int, row Row, excl *rowVersion) {
	for _, ix := range t.indexes {
		if !t.slotHasIxValueLocked(slot, ix.col, row[ix.col], row, excl) {
			ix.add(slot, row)
		}
	}
	for _, ix := range t.ordered {
		if row[ix.col] == nil {
			continue
		}
		if !t.slotHasIxValueLocked(slot, ix.col, row[ix.col], row, excl) {
			ix.add(slot, row)
		}
	}
}

// retireEntriesLocked removes index entries for gone's values at slot,
// unless another surviving version (head keep, or chain) still carries
// the value.
func (t *Table) retireEntriesLocked(slot int, gone Row, keep Row) {
	for _, ix := range t.indexes {
		if !t.ixValueSurvivesLocked(slot, ix.col, gone[ix.col], gone, keep) {
			ix.remove(slot, gone)
		}
	}
	for _, ix := range t.ordered {
		if gone[ix.col] == nil {
			continue
		}
		if !t.ixValueSurvivesLocked(slot, ix.col, gone[ix.col], gone, keep) {
			ix.remove(slot, gone)
		}
	}
}

// slotHasIxValueLocked reports whether any version of slot other than
// probe (and excl) carries an Equal value in column col.
func (t *Table) slotHasIxValueLocked(slot, col int, v Value, probe Row, excl *rowVersion) bool {
	if head := t.rows[slot]; head != nil && !sameRow(head, probe) && Equal(head[col], v) {
		return true
	}
	for n := t.meta[slot].prev; n != nil; n = n.prev {
		if n == excl || sameRow(n.row, probe) {
			continue
		}
		if Equal(n.row[col], v) {
			return true
		}
	}
	return false
}

// ixValueSurvivesLocked reports whether a version other than gone still
// carries v: the head replacement keep (if non-nil) or any chain node.
func (t *Table) ixValueSurvivesLocked(slot, col int, v Value, gone, keep Row) bool {
	if keep != nil && Equal(keep[col], v) {
		return true
	}
	if head := t.rows[slot]; head != nil && !sameRow(head, gone) && Equal(head[col], v) {
		return true
	}
	for n := t.meta[slot].prev; n != nil; n = n.prev {
		if sameRow(n.row, gone) {
			continue
		}
		if Equal(n.row[col], v) {
			return true
		}
	}
	return false
}

func sameRow(a, b Row) bool {
	return len(a) > 0 && len(b) > 0 && len(a) == len(b) && &a[0] == &b[0]
}

// slotHasKeyLocked reports whether any version of slot (head or chain)
// has the encoded primary key.
func (t *Table) slotHasKeyLocked(slot int, key string) bool {
	if head := t.rows[slot]; head != nil && t.pkKey(head) == key {
		return true
	}
	for n := t.meta[slot].prev; n != nil; n = n.prev {
		if t.pkKey(n.row) == key {
			return true
		}
	}
	return false
}

// removeHeadLocked physically removes a staged insert's head: its index
// entries, its pk mapping (if it points here and no surviving version
// claims the key), the row, and the slot back to the free list.
func (t *Table) removeHeadLocked(slot int) {
	r := t.rows[slot]
	m := &t.meta[slot]
	t.retireEntriesLocked(slot, r, nil)
	if t.pkIndex != nil {
		key := t.pkKey(r)
		if s, ok := t.pkIndex[key]; ok && s == slot {
			delete(t.pkIndex, key)
			// A chain version (from an aborted update chain — cannot
			// happen for inserts, but keep the invariant) may still
			// claim the key.
			for n := m.prev; n != nil; n = n.prev {
				if t.pkKey(n.row) == key {
					t.pkIndex[key] = slot
					break
				}
			}
		}
	}
	if m.prev == nil {
		t.rows[slot] = nil
		*m = slotMeta{}
		t.free = append(t.free, slot)
		delete(t.vslots, slot)
	} else {
		// Should not happen for a staged insert; keep the chain intact.
		t.rows[slot] = nil
	}
}

// popHeadLocked unwinds a staged update: the superseded version in node
// becomes the head again and the staged head's entries retire.
func (t *Table) popHeadLocked(slot int, node *rowVersion) {
	if node == nil {
		return
	}
	staged := t.rows[slot]
	m := &t.meta[slot]
	t.retireEntriesLocked(slot, staged, node.row)
	if t.pkIndex != nil {
		key := t.pkKey(staged)
		if key != t.pkKey(node.row) {
			if s, ok := t.pkIndex[key]; ok && s == slot && !t.hasChainKeyLocked(node, key) {
				delete(t.pkIndex, key)
			}
			t.pkIndex[t.pkKey(node.row)] = slot
		}
	}
	t.rows[slot] = node.row
	*m = slotMeta{begin: node.begin, end: node.end, etx: m.etx, prev: node.prev}
	if m.etx != 0 || m.end != 0 || m.prev != nil {
		t.vslotAdd(slot)
	} else {
		delete(t.vslots, slot)
	}
}

func (t *Table) hasChainKeyLocked(from *rowVersion, key string) bool {
	for n := from; n != nil; n = n.prev {
		if t.pkKey(n.row) == key {
			return true
		}
	}
	return false
}

// --- garbage collection -------------------------------------------------

// gcLocked prunes transactional residue no snapshot at or after horizon
// can reach: chain versions whose end is at or below the horizon, and
// committed-dead heads. Index entries whose value survives in no
// remaining version retire with them. Caller holds the write lock.
func (t *Table) gcLocked(horizon uint64) {
	if len(t.vslots) == 0 {
		return
	}
	for slot := range t.vslots {
		m := &t.meta[slot]
		// Prune the chain from the oldest end: nodes whose end is at or
		// below the horizon are unreachable (every snapshot at or after
		// it sees a newer version). Nodes with end 0 — superseded by an
		// in-flight head — always stay.
		m.prev = t.pruneChainLocked(slot, m.prev, horizon)
		if m.btx == 0 && m.etx == 0 && m.end != 0 && m.end <= horizon {
			// Committed-dead head nobody can see: physically delete.
			r := t.rows[slot]
			t.retireEntriesLocked(slot, r, nil)
			if t.pkIndex != nil {
				key := t.pkKey(r)
				if s, ok := t.pkIndex[key]; ok && s == slot {
					delete(t.pkIndex, key)
				}
			}
			t.rows[slot] = nil
			*m = slotMeta{}
			t.free = append(t.free, slot)
		}
		if t.rows[slot] == nil || m.plain() {
			delete(t.vslots, slot)
		}
	}
}

// pruneChainLocked drops chain nodes whose end is at or below horizon,
// retiring their index entries, and returns the surviving chain.
func (t *Table) pruneChainLocked(slot int, n *rowVersion, horizon uint64) *rowVersion {
	if n == nil {
		return nil
	}
	n.prev = t.pruneChainLocked(slot, n.prev, horizon)
	if n.end != 0 && n.end <= horizon {
		// Detach before retiring so the survival checks don't see the
		// node itself.
		dropped := n.row
		surv := n.prev
		t.retireChainNodeLocked(slot, dropped, surv)
		return surv
	}
	return n
}

// retireChainNodeLocked retires entries and the pk mapping of a dropped
// chain version whose row was dropped; surv is the rest of its chain.
func (t *Table) retireChainNodeLocked(slot int, dropped Row, surv *rowVersion) {
	t.retireEntriesLocked(slot, dropped, nil)
	if t.pkIndex != nil {
		key := t.pkKey(dropped)
		if s, ok := t.pkIndex[key]; ok && s == slot && !t.slotHasKeyLocked(slot, key) {
			delete(t.pkIndex, key)
		}
	}
}

// MaybeGC opportunistically sweeps transactional residue; tests and
// idle-time callers use it, and every autocommit write path sweeps the
// same way before applying.
func (t *Table) MaybeGC() {
	t.mu.Lock()
	t.gcLocked(t.clock.minActive())
	t.mu.Unlock()
}

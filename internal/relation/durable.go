package relation

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"courserank/internal/pager"
	"courserank/internal/wal"
)

// DurableStore is the disk-backed Storage implementation: every
// mutation is journaled through an append-only WAL before the mutator
// returns, and checkpoints stream a slot-preserving snapshot of the
// whole database through the pager, after which the WAL is truncated.
// OpenDurable recovers by loading the checkpoint snapshot and replaying
// WAL records past the checkpoint LSN slot-for-slot.
//
// Layout under the store directory:
//
//	pages.db — page file; header meta holds the active snapshot extent
//	           {lsn, start page, page count, byte length}
//	wal.log  — redo log of records since (at most) the checkpoint LSN
//
// Checkpoints ping-pong between two page regions so a crash mid-write
// never corrupts the active snapshot: the new region is written and
// synced first, then the header meta swaps to it in a single small
// header write.
type DurableStore struct {
	dir string
	db  *DB
	log *wal.Log
	pg  *pager.Pager

	// gate is the checkpoint gate: mutators hold the shared side across
	// apply+journal (Storage.BeginMutate/EndMutate); Checkpoint holds it
	// exclusively, freezing the database on a record boundary.
	gate sync.RWMutex
	ckMu sync.Mutex // serializes whole checkpoint runs

	ckEvery       int64
	sinceCk       atomic.Int64
	ckLSN         atomic.Uint64
	checkpointing atomic.Bool
	checkpoints   atomic.Uint64
	recovered     int
	closed        atomic.Bool
}

// DefaultCheckpointEvery is the auto-checkpoint threshold (WAL records
// appended since the last checkpoint) when DurableOptions.CheckpointEvery
// is zero.
const DefaultCheckpointEvery = 4096

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Sync selects the commit policy: SyncAlways fsyncs before a
	// mutator returns (group commit lets concurrent committers share
	// one fsync); SyncNone returns immediately and a background flusher
	// bounds the staleness window.
	Sync wal.SyncPolicy
	// FlushEvery is the background flush cadence under SyncNone
	// (default 100ms).
	FlushEvery time.Duration
	// CheckpointEvery is the number of WAL records between automatic
	// checkpoints; 0 means DefaultCheckpointEvery, negative disables
	// auto-checkpointing (explicit Checkpoint calls only).
	CheckpointEvery int
	// PageSize and PoolPages pass through to the pager.
	PageSize  int
	PoolPages int
}

// WAL record types.
const (
	recDML      byte = 1
	recCreate   byte = 2
	recDrop     byte = 3
	recAlter    byte = 4
	recTxDML    byte = 5 // transaction statement effects; redo only if committed
	recTxCommit byte = 6 // transaction commit marker
	recTxAbort  byte = 7 // transaction abort marker (advisory)
)

// walMut is one row effect inside a DML record.
type walMut struct {
	Op   string          `json:"op"` // "i", "u", "d"
	Slot int             `json:"s"`
	Row  json.RawMessage `json:"r,omitempty"` // JSON array of cells
}

type walDML struct {
	Table string   `json:"t"`
	Muts  []walMut `json:"m"`
}

// walTxDML is one transaction statement's row effects. Unlike walDML it
// is a no-op at replay unless the transaction's commit record is also
// in the log: recovery redoes transactions as a unit or not at all.
type walTxDML struct {
	Tx    uint64   `json:"x"`
	Table string   `json:"t"`
	Muts  []walMut `json:"m"`
}

// walTx is a commit or abort marker.
type walTx struct {
	Tx uint64 `json:"x"`
}

type walDrop struct {
	Table string `json:"t"`
}

type walAlter struct {
	Table string `json:"t"`
	Col   string `json:"c"`
}

// pagerMeta is the checkpoint descriptor stored in the pager header.
type pagerMeta struct {
	LSN   uint64 `json:"lsn"`   // WAL records at or below this are in the snapshot
	Start int    `json:"start"` // first page of the active snapshot region
	Pages int    `json:"pages"` // pages in the region
	Len   int64  `json:"len"`   // snapshot byte length
}

// durableHeader heads one table in the checkpoint snapshot. Unlike the
// portable Save format it preserves slot layout: Slots is the length of
// the row slice including tombstones, and each row line carries its
// slot, so post-checkpoint WAL records keep addressing the right rows.
type durableHeader struct {
	snapshotHeader
	Slots    int   `json:"slots"`
	NextAuto int64 `json:"nextAuto"`
}

// OpenDurable opens (or creates) a durable database in dir: it loads
// the checkpoint snapshot through the pager, replays committed WAL
// records past the checkpoint LSN, and attaches the store so every
// subsequent mutation is journaled. The returned DB is ready to serve.
func OpenDurable(dir string, opts DurableOptions) (*DB, *DurableStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("relation: durable open: %w", err)
	}
	pg, err := pager.Open(filepath.Join(dir, "pages.db"), pager.Options{PageSize: opts.PageSize, PoolPages: opts.PoolPages})
	if err != nil {
		return nil, nil, fmt.Errorf("relation: durable open: %w", err)
	}
	db := NewDB()
	meta, err := loadCheckpoint(pg, db)
	if err != nil {
		pg.Close()
		return nil, nil, err
	}
	log, recs, err := wal.Open(filepath.Join(dir, "wal.log"), wal.Options{Sync: opts.Sync, FlushEvery: opts.FlushEvery})
	if err != nil {
		pg.Close()
		return nil, nil, fmt.Errorf("relation: durable open: %w", err)
	}
	s := &DurableStore{dir: dir, db: db, log: log, pg: pg, ckEvery: int64(opts.CheckpointEvery)}
	if opts.CheckpointEvery == 0 {
		s.ckEvery = DefaultCheckpointEvery
	}
	s.ckLSN.Store(meta.LSN)
	if err := s.replay(recs, meta.LSN); err != nil {
		log.Close()
		pg.Close()
		return nil, nil, err
	}
	// Snapshot load and replay both poke slots directly; settle the
	// free lists before the first live insert.
	for _, name := range db.Names() {
		t := db.MustTable(name)
		t.mu.Lock()
		t.rebuildFreeLocked()
		t.mu.Unlock()
	}
	s.sinceCk.Store(int64(s.recovered))
	db.attachStorage(s)
	return db, s, nil
}

// loadCheckpoint reads the active snapshot region into db. A fresh or
// empty page file yields an empty database and a zero meta.
func loadCheckpoint(pg *pager.Pager, db *DB) (pagerMeta, error) {
	var meta pagerMeta
	raw := pg.Meta()
	if len(raw) == 0 {
		return meta, nil
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		return meta, fmt.Errorf("relation: corrupt checkpoint meta: %w", err)
	}
	if meta.Len == 0 {
		return meta, nil
	}
	data := make([]byte, 0, meta.Len)
	for i := 0; i < meta.Pages; i++ {
		p, err := pg.Acquire(meta.Start + i)
		if err != nil {
			return meta, fmt.Errorf("relation: checkpoint page %d: %w", meta.Start+i, err)
		}
		data = append(data, p.Data()...)
		p.Release()
	}
	if int64(len(data)) < meta.Len {
		return meta, fmt.Errorf("relation: checkpoint region holds %d bytes, meta says %d", len(data), meta.Len)
	}
	if err := loadDurableSnapshot(db, data[:meta.Len]); err != nil {
		return meta, err
	}
	return meta, nil
}

// loadDurableSnapshot decodes a slot-preserving snapshot into db.
func loadDurableSnapshot(db *DB, data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		buf := sc.Bytes()
		if len(bytes.TrimSpace(buf)) == 0 {
			continue
		}
		var head durableHeader
		if err := json.Unmarshal(buf, &head); err != nil {
			return fmt.Errorf("relation: checkpoint header: %w", err)
		}
		t, err := tableFromHeader(head.snapshotHeader)
		if err != nil {
			return fmt.Errorf("relation: checkpoint: %w", err)
		}
		if err := db.Create(t); err != nil {
			return fmt.Errorf("relation: checkpoint: %w", err)
		}
		cols := t.Schema().Columns()
		for i := 0; i < head.Rows; i++ {
			if !sc.Scan() {
				return fmt.Errorf("relation: checkpoint table %s: truncated at row %d of %d", head.Table, i, head.Rows)
			}
			var line []json.RawMessage
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				return fmt.Errorf("relation: checkpoint table %s row %d: %w", head.Table, i, err)
			}
			if len(line) != len(cols)+1 {
				return fmt.Errorf("relation: checkpoint table %s row %d: %d fields, want slot+%d cells", head.Table, i, len(line), len(cols))
			}
			var slot int
			if err := json.Unmarshal(line[0], &slot); err != nil {
				return fmt.Errorf("relation: checkpoint table %s row %d slot: %w", head.Table, i, err)
			}
			row := make(Row, len(cols))
			for j, cell := range line[1:] {
				v, err := decodeCell(cell, cols[j].Type)
				if err != nil {
					return fmt.Errorf("relation: checkpoint table %s row %d col %s: %w", head.Table, i, cols[j].Name, err)
				}
				row[j] = v
			}
			if err := t.applyInsertSlot(slot, row); err != nil {
				return err
			}
		}
		// Tombstone tail: grow the slice to the recorded slot count so
		// replayed records addressing trailing tombstones stay in range.
		// Version stamps grow in lockstep (len(meta) == len(rows)).
		t.mu.Lock()
		for len(t.rows) < head.Slots {
			t.rows = append(t.rows, nil)
			t.meta = append(t.meta, slotMeta{})
		}
		if head.NextAuto > t.nextAut {
			t.nextAut = head.NextAuto
		}
		t.mu.Unlock()
	}
	return sc.Err()
}

// replay applies committed WAL records past the checkpoint LSN. Records
// at or below ckLSN are already inside the snapshot — they survive in
// the log only when a crash landed between the checkpoint's meta swap
// and its WAL truncation. Replay is two-pass: the first pass collects
// the IDs of transactions whose commit record made it to the log, the
// second applies records in LSN order, skipping transaction effects
// whose commit never landed — a crash mid-transaction loses the whole
// transaction, never a prefix.
func (s *DurableStore) replay(recs []wal.Record, ckLSN uint64) error {
	var committed map[uint64]bool
	for _, rec := range recs {
		if rec.LSN <= ckLSN || rec.Type != recTxCommit {
			continue
		}
		var op walTx
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fmt.Errorf("relation: recovery lsn %d: %w", rec.LSN, err)
		}
		if committed == nil {
			committed = make(map[uint64]bool)
		}
		committed[op.Tx] = true
	}
	for _, rec := range recs {
		if rec.LSN <= ckLSN {
			continue
		}
		if err := s.applyRecord(rec, committed); err != nil {
			return fmt.Errorf("relation: recovery lsn %d: %w", rec.LSN, err)
		}
		s.recovered++
	}
	return nil
}

// applyDML redoes one statement's row effects slot-for-slot.
func (s *DurableStore) applyDML(table string, muts []walMut) error {
	t, ok := s.db.Table(table)
	if !ok {
		return fmt.Errorf("DML against unknown table %q", table)
	}
	cols := t.Schema().Columns()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range muts {
		switch m.Op {
		case "d":
			if err := t.applyDeleteSlot(m.Slot); err != nil {
				return err
			}
		case "i", "u":
			row, err := decodeWALRow(m.Row, cols)
			if err != nil {
				return err
			}
			if m.Op == "i" {
				err = t.applyInsertSlot(m.Slot, row)
			} else {
				err = t.applyUpdateSlot(m.Slot, row)
			}
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown mutation op %q", m.Op)
		}
	}
	return nil
}

func (s *DurableStore) applyRecord(rec wal.Record, committed map[uint64]bool) error {
	switch rec.Type {
	case recDML:
		var op walDML
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		return s.applyDML(op.Table, op.Muts)
	case recTxDML:
		var op walTxDML
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		if !committed[op.Tx] {
			return nil // transaction never committed; drop its effects
		}
		return s.applyDML(op.Table, op.Muts)
	case recTxCommit, recTxAbort:
		return nil // markers; consumed by the first pass
	case recCreate:
		var head snapshotHeader
		if err := json.Unmarshal(rec.Data, &head); err != nil {
			return err
		}
		t, err := tableFromHeader(head)
		if err != nil {
			return err
		}
		return s.db.Create(t)
	case recDrop:
		var op walDrop
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		s.db.Drop(op.Table)
		return nil
	case recAlter:
		var op walAlter
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		t, ok := s.db.Table(op.Table)
		if !ok {
			return fmt.Errorf("ALTER against unknown table %q", op.Table)
		}
		return t.addOrderedIndexLocked(op.Col)
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
}

func decodeWALRow(raw json.RawMessage, cols []Column) (Row, error) {
	var cells []json.RawMessage
	if err := json.Unmarshal(raw, &cells); err != nil {
		return nil, err
	}
	if len(cells) != len(cols) {
		return nil, fmt.Errorf("row has %d cells, schema wants %d", len(cells), len(cols))
	}
	row := make(Row, len(cols))
	for j, cell := range cells {
		v, err := decodeCell(cell, cols[j].Type)
		if err != nil {
			return nil, err
		}
		row[j] = v
	}
	return row, nil
}

// --- Storage interface --------------------------------------------------

// BeginMutate enters the checkpoint gate (shared side).
func (s *DurableStore) BeginMutate() { s.gate.RLock() }

// EndMutate leaves the checkpoint gate.
func (s *DurableStore) EndMutate() { s.gate.RUnlock() }

// LogMutations appends one redo record for a statement's row effects.
func (s *DurableStore) LogMutations(table string, muts []Mutation) (uint64, error) {
	wm, err := encodeWalMuts(muts)
	if err != nil {
		return 0, err
	}
	return s.append(recDML, walDML{Table: table, Muts: wm})
}

func encodeWalMuts(muts []Mutation) ([]walMut, error) {
	wm := make([]walMut, len(muts))
	for i, m := range muts {
		var raw json.RawMessage
		if m.Row != nil {
			b, err := json.Marshal([]Value(m.Row))
			if err != nil {
				return nil, fmt.Errorf("relation: encode row for WAL: %w", err)
			}
			raw = b
		}
		op := "i"
		switch m.Kind {
		case MutUpdate:
			op = "u"
		case MutDelete:
			op = "d"
		}
		wm[i] = walMut{Op: op, Slot: m.Slot, Row: raw}
	}
	return wm, nil
}

// --- TxStorage interface ------------------------------------------------

// BeginTxGate enters the checkpoint gate for a transaction's lifetime,
// so a checkpoint never snapshots uncommitted transaction effects.
func (s *DurableStore) BeginTxGate() { s.gate.RLock() }

// EndTxGate leaves the gate entered by BeginTxGate.
func (s *DurableStore) EndTxGate() { s.gate.RUnlock() }

// LogTxMutations appends one transaction statement's row effects;
// replay ignores them unless tx's commit record follows.
func (s *DurableStore) LogTxMutations(tx uint64, table string, muts []Mutation) (uint64, error) {
	wm, err := encodeWalMuts(muts)
	if err != nil {
		return 0, err
	}
	return s.append(recTxDML, walTxDML{Tx: tx, Table: table, Muts: wm})
}

// LogTxCommit appends the commit record that makes tx's effects
// redo-visible at recovery.
func (s *DurableStore) LogTxCommit(tx uint64) (uint64, error) {
	return s.append(recTxCommit, walTx{Tx: tx})
}

// LogTxAbort appends an advisory abort marker for tx.
func (s *DurableStore) LogTxAbort(tx uint64) (uint64, error) {
	return s.append(recTxAbort, walTx{Tx: tx})
}

// SyncConfirms reports whether WaitDurable confirms the fsync: true
// under SyncAlways, false when a background flusher catches up later.
func (s *DurableStore) SyncConfirms() bool { return s.log.Policy() == wal.SyncAlways }

// LogCreate appends a redo record carrying the table definition.
func (s *DurableStore) LogCreate(t *Table) (uint64, error) {
	return s.append(recCreate, headerFor(t))
}

// LogDrop appends a redo record dropping the named table.
func (s *DurableStore) LogDrop(name string) (uint64, error) {
	return s.append(recDrop, walDrop{Table: name})
}

// LogAlter appends a redo record adding an ordered index.
func (s *DurableStore) LogAlter(table, col string) (uint64, error) {
	return s.append(recAlter, walAlter{Table: table, Col: col})
}

func (s *DurableStore) append(typ byte, v any) (uint64, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	lsn, err := s.log.Append(typ, payload)
	if err == nil {
		s.sinceCk.Add(1)
	}
	return lsn, err
}

// WaitDurable blocks until lsn is durable under the commit policy, then
// triggers an auto-checkpoint if the WAL has grown past the threshold.
// Called outside the gate and every table lock.
func (s *DurableStore) WaitDurable(lsn uint64) error {
	err := s.log.Commit(lsn)
	s.maybeCheckpoint()
	return err
}

func (s *DurableStore) maybeCheckpoint() {
	if s.ckEvery <= 0 || s.sinceCk.Load() < s.ckEvery || s.closed.Load() {
		return
	}
	if !s.checkpointing.CompareAndSwap(false, true) {
		return // someone else is on it
	}
	defer s.checkpointing.Store(false)
	s.Checkpoint() // the unlucky committer crossing the threshold pays
}

// --- checkpointing ------------------------------------------------------

// Checkpoint freezes the database, streams a slot-preserving snapshot
// of every table through the pager, swaps the header meta to the new
// region, and truncates the WAL. Mutators block for the duration
// (readers do not).
func (s *DurableStore) Checkpoint() error {
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	if s.closed.Load() {
		return fmt.Errorf("relation: durable store closed")
	}
	s.gate.Lock()
	defer s.gate.Unlock()
	lsn := s.log.LastLSN()
	data, err := s.encodeSnapshot()
	if err != nil {
		return err
	}
	if err := s.writeSnapshot(data, lsn); err != nil {
		return err
	}
	if err := s.log.Truncate(lsn); err != nil {
		return err
	}
	s.ckLSN.Store(lsn)
	s.sinceCk.Store(0)
	s.checkpoints.Add(1)
	return nil
}

// encodeSnapshot serializes every table in the slot-preserving format.
// Caller holds the gate exclusively, so table state cannot move; row
// reads still take each table's read lock for the race detector's sake.
func (s *DurableStore) encodeSnapshot() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, name := range s.db.Names() {
		t := s.db.MustTable(name)
		// headerFor takes the table's read lock internally; build it
		// before entering our own RLock to avoid recursive locking.
		head := durableHeader{snapshotHeader: headerFor(t)}
		t.mu.RLock()
		head.Slots = len(t.rows)
		head.NextAuto = t.nextAut
		if err := enc.Encode(head); err != nil {
			t.mu.RUnlock()
			return nil, err
		}
		for slot, r := range t.rows {
			if r == nil {
				continue
			}
			// A committed-dead head (deleted, retained only for late
			// snapshot readers) is not part of the durable image. Staged
			// transaction heads cannot occur here: transactions hold the
			// gate shared and the checkpoint holds it exclusively.
			if slot < len(t.meta) && t.meta[slot].end != 0 {
				continue
			}
			line := make([]any, 0, len(r)+1)
			line = append(line, slot)
			for _, c := range r {
				line = append(line, c)
			}
			if err := enc.Encode(line); err != nil {
				t.mu.RUnlock()
				return nil, err
			}
		}
		t.mu.RUnlock()
	}
	return buf.Bytes(), nil
}

// writeSnapshot writes data into a page region disjoint from the active
// one, syncs it, then swaps the header meta — the commit point — and
// reclaims file space when the new region is the prefix.
func (s *DurableStore) writeSnapshot(data []byte, lsn uint64) error {
	payload := s.pg.PayloadSize()
	need := (len(data) + payload - 1) / payload
	var old pagerMeta
	if raw := s.pg.Meta(); len(raw) > 0 {
		if err := json.Unmarshal(raw, &old); err != nil {
			return fmt.Errorf("relation: corrupt checkpoint meta: %w", err)
		}
	}
	start := 1
	if old.Pages > 0 && old.Start <= need {
		start = old.Start + old.Pages
	}
	for i := 0; i < need; i++ {
		id := start + i
		var p *pager.Page
		var err error
		if id <= s.pg.PageCount() {
			p, err = s.pg.Acquire(id)
		} else {
			p, err = s.pg.Allocate()
		}
		if err != nil {
			return err
		}
		chunk := data[i*payload:]
		if len(chunk) > payload {
			chunk = chunk[:payload]
		}
		n := copy(p.Data(), chunk)
		for j := n; j < payload; j++ {
			p.Data()[j] = 0
		}
		p.MarkDirty()
		p.Release()
	}
	newMeta, err := json.Marshal(pagerMeta{LSN: lsn, Start: start, Pages: need, Len: int64(len(data))})
	if err != nil {
		return err
	}
	// New region durable first, then the meta swap commits it.
	if err := s.pg.FlushAll(); err != nil {
		return err
	}
	if err := s.pg.Sync(); err != nil {
		return err
	}
	if err := s.pg.SetMeta(newMeta); err != nil {
		return err
	}
	if err := s.pg.FlushAll(); err != nil {
		return err
	}
	if err := s.pg.Sync(); err != nil {
		return err
	}
	if start == 1 && s.pg.PageCount() > need {
		// The old region sits past the new one; drop it.
		if err := s.pg.Truncate(need); err != nil {
			return err
		}
		if err := s.pg.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// --- lifecycle ----------------------------------------------------------

// Bulk runs fn with journaling detached — the unlogged fast path for
// initial data loads — then reattaches and checkpoints so the loaded
// state is durable. The store must not be serving concurrent mutators.
func (s *DurableStore) Bulk(fn func() error) error {
	s.db.detachStorage()
	err := fn()
	s.db.attachStorage(s)
	if err != nil {
		return err
	}
	return s.Checkpoint()
}

// Close drains the store: outstanding WAL records are synced and dirty
// pages flushed, but the WAL is NOT truncated — reopening replays it.
// Call Checkpoint first for a clean (replay-free) shutdown. Idempotent.
func (s *DurableStore) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.ckMu.Lock() // let an in-flight checkpoint finish
	defer s.ckMu.Unlock()
	err := s.log.Close()
	if perr := s.pg.Close(); err == nil {
		err = perr
	}
	return err
}

// DurableStats is a point-in-time view of the store for /api/stats.
type DurableStats struct {
	Dir              string      `json:"dir"`
	Policy           string      `json:"policy"`
	WAL              wal.Stats   `json:"wal"`
	Pager            pager.Stats `json:"pager"`
	Checkpoints      uint64      `json:"checkpoints"`
	CheckpointLSN    uint64      `json:"checkpointLSN"`
	RecordsSinceCk   int64       `json:"recordsSinceCheckpoint"`
	RecoveredRecords int         `json:"recoveredRecords"`
}

// Stats returns WAL, pager and checkpoint counters.
func (s *DurableStore) Stats() DurableStats {
	ws := s.log.Stats()
	return DurableStats{
		Dir:              s.dir,
		Policy:           s.log.Policy().String(),
		WAL:              ws,
		Pager:            s.pg.Stats(),
		Checkpoints:      s.checkpoints.Load(),
		CheckpointLSN:    s.ckLSN.Load(),
		RecordsSinceCk:   s.sinceCk.Load(),
		RecoveredRecords: s.recovered,
	}
}

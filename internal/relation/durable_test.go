package relation

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"courserank/internal/wal"
)

func kvTable() *Table {
	return MustTable("KV",
		NewSchema(NotNullCol("ID", TypeInt), Col("Val", TypeString), Col("Num", TypeInt)),
		WithPrimaryKey("ID"), WithAutoIncrement("ID"), WithIndex("Num"))
}

// fingerprint captures a slot-independent view of every table: sorted
// encoded rows. Two databases with equal fingerprints hold the same
// relations regardless of tombstone layout.
func fingerprint(db *DB) map[string][]string {
	out := make(map[string][]string)
	for _, name := range db.Names() {
		t := db.MustTable(name)
		var rows []string
		t.Scan(func(_ int, r Row) bool {
			rows = append(rows, encodeKey(r))
			return true
		})
		sort.Strings(rows)
		out[name] = rows
	}
	return out
}

func equalPrints(a, b map[string][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for name, rows := range a {
		brows, ok := b[name]
		if !ok || len(rows) != len(brows) {
			return false
		}
		for i := range rows {
			if rows[i] != brows[i] {
				return false
			}
		}
	}
	return true
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Create(kvTable()); err != nil {
		t.Fatal(err)
	}
	kv := db.MustTable("KV")
	for i := 0; i < 10; i++ {
		if _, err := kv.Insert(Row{nil, fmt.Sprintf("v%d", i), int64(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.UpdateByKey([]Value{int64(3)}, func(r Row) Row { r[1] = "updated"; return r }); err != nil {
		t.Fatal(err)
	}
	if n, err := kv.DeleteWhere(func(r Row) bool { return r[2] == int64(2) }); err != nil || n == 0 {
		t.Fatal("delete matched nothing")
	}
	want := fingerprint(db)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	db2, store2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if !equalPrints(want, fingerprint(db2)) {
		t.Fatalf("recovered DB differs:\nwant %v\ngot  %v", want, fingerprint(db2))
	}
	// The recovered table keeps working: auto-increment continues past
	// replayed ids and the indexes answer.
	kv2 := db2.MustTable("KV")
	r, err := kv2.InsertGet(Row{nil, "fresh", int64(9)})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].(int64) != 11 {
		t.Fatalf("auto-increment resumed at %v, want 11", r[0])
	}
	if got := kv2.Lookup("Num", int64(0)); len(got) == 0 {
		t.Fatal("secondary index empty after recovery")
	}
}

func TestDurableCheckpointThenReplay(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(kvTable())
	kv := db.MustTable("KV")
	for i := 0; i < 20; i++ {
		kv.MustInsert(Row{nil, fmt.Sprintf("pre%d", i), int64(i)})
	}
	kv.DeleteWhere(func(r Row) bool { return r[0].(int64)%4 == 0 })
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if store.Stats().WAL.LastLSN != store.Stats().CheckpointLSN {
		t.Fatalf("WAL not truncated at checkpoint: %+v", store.Stats())
	}
	// Post-checkpoint tail that must replay on top of the snapshot,
	// including slot reuse of checkpointed tombstones.
	for i := 0; i < 7; i++ {
		kv.MustInsert(Row{nil, fmt.Sprintf("post%d", i), int64(100 + i)})
	}
	if _, err := kv.UpdateWhere(
		func(r Row) bool { return r[0].(int64)%2 == 1 },
		func(r Row) Row { r[1] = r[1].(string) + "!"; return r },
	); err != nil {
		t.Fatal(err)
	}
	if err := kv.AddOrderedIndex("Num"); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(db)
	store.Close()

	db2, store2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if !equalPrints(want, fingerprint(db2)) {
		t.Fatalf("recovered DB differs:\nwant %v\ngot  %v", want, fingerprint(db2))
	}
	if !db2.MustTable("KV").HasOrderedIndex("Num") {
		t.Fatal("replayed ALTER lost the ordered index")
	}
	if store2.Stats().RecoveredRecords == 0 {
		t.Fatal("expected WAL replay past the checkpoint")
	}
}

func TestDurableDDLRecovery(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(kvTable())
	db.MustCreate(MustTable("Gone", NewSchema(Col("X", TypeInt))))
	db.MustTable("Gone").MustInsert(Row{int64(1)})
	if !db.Drop("Gone") {
		t.Fatal("drop failed")
	}
	store.Close()

	db2, store2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if _, ok := db2.Table("Gone"); ok {
		t.Fatal("dropped table resurrected by replay")
	}
	if _, ok := db2.Table("KV"); !ok {
		t.Fatal("created table lost")
	}
}

func TestEnsureAdoptsAndRejects(t *testing.T) {
	db := NewDB()
	orig := db.MustEnsure(kvTable())
	orig.MustInsert(Row{nil, "x", int64(1)})
	again := db.MustEnsure(kvTable())
	if again != orig {
		t.Fatal("Ensure built a new table instead of adopting")
	}
	if again.Len() != 1 {
		t.Fatal("adopted table lost rows")
	}
	bad := MustTable("KV", NewSchema(Col("Other", TypeString)))
	if _, err := db.Ensure(bad); err == nil {
		t.Fatal("Ensure accepted a mismatched schema")
	}
}

func TestBulkLoadsUnjournaledThenCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(kvTable())
	walBefore := store.Stats().WAL.Appends
	err = store.Bulk(func() error {
		kv := db.MustTable("KV")
		for i := 0; i < 500; i++ {
			if _, err := kv.Insert(Row{nil, fmt.Sprintf("bulk%d", i), int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if appends := store.Stats().WAL.Appends; appends != walBefore {
		t.Fatalf("bulk load journaled %d records", appends-walBefore)
	}
	want := fingerprint(db)
	store.Close()
	db2, store2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if !equalPrints(want, fingerprint(db2)) {
		t.Fatal("bulk-loaded rows did not survive the checkpoint")
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(kvTable())
	kv := db.MustTable("KV")
	for i := 0; i < 120; i++ {
		kv.MustInsert(Row{nil, "v", int64(i)})
	}
	st := store.Stats()
	if st.Checkpoints == 0 {
		t.Fatalf("no auto-checkpoint after 120 records (threshold 25): %+v", st)
	}
	want := fingerprint(db)
	store.Close()
	db2, store2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if !equalPrints(want, fingerprint(db2)) {
		t.Fatal("recovered DB differs after auto-checkpoints")
	}
}

// TestDurableConcurrentCommitters exercises group commit end-to-end
// under the race detector: many goroutines journaling inserts and
// updates against two tables at once, then a recovery equality check.
func TestDurableConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(kvTable())
	db.MustCreate(MustTable("Other",
		NewSchema(NotNullCol("ID", TypeInt), Col("N", TypeInt)),
		WithPrimaryKey("ID"), WithAutoIncrement("ID")))
	const writers, per = 6, 40
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kv, other := db.MustTable("KV"), db.MustTable("Other")
			for i := 0; i < per; i++ {
				r, err := kv.InsertGet(Row{nil, fmt.Sprintf("w%d-%d", w, i), int64(w)})
				if err != nil {
					errCh <- err
					return
				}
				if i%3 == 0 {
					if err := kv.UpdateByKey([]Value{r[0]}, func(row Row) Row { row[2] = int64(w * 100); return row }); err != nil {
						errCh <- err
						return
					}
				}
				if _, err := other.Insert(Row{nil, int64(i)}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	ws := store.Stats().WAL
	if ws.DurableLSN != ws.LastLSN {
		t.Fatalf("not fully durable: %+v", ws)
	}
	want := fingerprint(db)
	store.Close()
	db2, store2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if !equalPrints(want, fingerprint(db2)) {
		t.Fatal("recovered DB differs after concurrent storm")
	}
}

// stormOp applies one scripted operation to a database; the same script
// drives the durable DB and the in-memory oracle so their states stay
// comparable at every step.
type stormOp func(db *DB)

// makeStorm builds a deterministic DML storm: inserts, point updates,
// predicate updates and deletes, plus one mid-storm ALTER.
func makeStorm(rng *rand.Rand, n int) []stormOp {
	ops := make([]stormOp, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 5: // insert
			val, num := fmt.Sprintf("s%d", i), int64(rng.Intn(7))
			ops = append(ops, func(db *DB) {
				db.MustTable("KV").MustInsert(Row{nil, val, num})
			})
		case k < 7: // point update of a (probably) existing id
			id := int64(rng.Intn(i + 1))
			ops = append(ops, func(db *DB) {
				db.MustTable("KV").UpdateByKey([]Value{id}, func(r Row) Row {
					r[1] = r[1].(string) + "+"
					return r
				})
			})
		case k < 8: // predicate update
			num := int64(rng.Intn(7))
			ops = append(ops, func(db *DB) {
				db.MustTable("KV").UpdateWhere(
					func(r Row) bool { return r[2] == num },
					func(r Row) Row { r[2] = num + 7; return r },
				)
			})
		case k < 9: // delete a band
			id := int64(rng.Intn(i + 1))
			ops = append(ops, func(db *DB) {
				db.MustTable("KV").DeleteWhere(func(r Row) bool {
					v := r[0].(int64)
					return v >= id && v < id+2
				})
			})
		default: // ordered-index ALTER (idempotent after the first)
			ops = append(ops, func(db *DB) {
				db.MustTable("KV").AddOrderedIndex("Num")
			})
		}
	}
	return ops
}

// TestKillReplay is the kill-replay harness: it runs a scripted DML
// storm against a durable store, hard-abandons the writer at random
// points (the store is never Closed — its files are copied as-is, which
// is exactly what a crashed process leaves behind), reopens each copy,
// and asserts the recovered database is row-for-row equal to the
// in-memory oracle at that point in the script.
func TestKillReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nOps = 300
	ops := makeStorm(rng, nOps)

	// Pick random abandonment points, plus the very start and end.
	kills := map[int]bool{0: true, nOps - 1: true}
	for len(kills) < 12 {
		kills[rng.Intn(nOps)] = true
	}

	dir := t.TempDir()
	// CheckpointEvery 60 makes several kills land between a checkpoint
	// and the next, covering snapshot+replay recovery as well as
	// replay-only.
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: 60})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(kvTable())
	oracle := NewDB()
	oracle.MustCreate(kvTable())

	type snap struct {
		dir   string
		print map[string][]string
		op    int
	}
	var snaps []snap
	for i, op := range ops {
		op(db)
		op(oracle)
		if kills[i] {
			// Hard abandonment: no Close, no flush — just the files as
			// the OS has them.
			snaps = append(snaps, snap{dir: copyDir(t, dir), print: fingerprint(oracle), op: i})
		}
	}
	store.Close()

	for _, sn := range snaps {
		db2, store2, err := OpenDurable(sn.dir, DurableOptions{Sync: wal.SyncAlways})
		if err != nil {
			t.Fatalf("reopen after kill at op %d: %v", sn.op, err)
		}
		if got := fingerprint(db2); !equalPrints(sn.print, got) {
			t.Fatalf("kill at op %d: recovered DB differs from oracle\nwant %v\ngot  %v", sn.op, sn.print, got)
		}
		// The recovered store accepts new writes.
		if _, err := db2.MustTable("KV").Insert(Row{nil, "post-recovery", int64(1)}); err != nil {
			t.Fatalf("kill at op %d: post-recovery insert: %v", sn.op, err)
		}
		store2.Close()
	}
}

// TestReplayAtEveryRecordBoundary is the satellite property test: for a
// scripted storm it truncates the WAL at every record boundary (and at
// torn mid-record offsets) and asserts each prefix recovers exactly the
// oracle state after the corresponding op — torn final records
// discarded, every earlier commit preserved.
func TestReplayAtEveryRecordBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nOps = 60
	ops := makeStorm(rng, nOps)

	dir := t.TempDir()
	// No auto-checkpoint: the whole storm must live in the WAL so every
	// record boundary is a valid recovery point.
	db, store, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(kvTable())
	oracle := NewDB()
	oracle.MustCreate(kvTable())

	// records[j] = total WAL records after op j; prints[j] = oracle
	// fingerprint after op j. Ops touching zero rows append nothing, so
	// a record count can map to several ops — all with equal states.
	recsAfter := make([]uint64, nOps)
	prints := make([]map[string][]string, nOps)
	for i, op := range ops {
		op(db)
		op(oracle)
		recsAfter[i] = store.Stats().WAL.Appends
		prints[i] = fingerprint(oracle)
	}
	store.Close()

	walPath := filepath.Join(dir, "wal.log")
	recs, err := wal.ScanFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// recsAfter counts every append, the initial CREATE record included.
	if uint64(len(recs)) != recsAfter[nOps-1] {
		t.Fatalf("WAL holds %d records, script appended %d", len(recs), recsAfter[nOps-1])
	}
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := os.ReadFile(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}

	printForRecords := func(m uint64) (map[string][]string, bool) {
		// Find the last op whose cumulative append count (CREATE record
		// included) is exactly m.
		for j := nOps - 1; j >= 0; j-- {
			if recsAfter[j] == m {
				return prints[j], true
			}
			if recsAfter[j] < m {
				break
			}
		}
		return nil, false
	}

	// Every record boundary, plus torn cuts inside the following record.
	for k := 1; k <= len(recs); k++ {
		cuts := []int64{recs[k-1].End}
		if k < len(recs) {
			cuts = append(cuts, recs[k-1].End+3, recs[k].End-2)
		}
		for ci, cut := range cuts {
			want, ok := printForRecords(uint64(k))
			if !ok {
				if k == 1 {
					continue // bare CREATE: covered by kills[0] in TestKillReplay
				}
				t.Fatalf("no op maps to %d records", k)
			}
			sub := t.TempDir()
			if err := os.WriteFile(filepath.Join(sub, "wal.log"), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sub, "pages.db"), pages, 0o644); err != nil {
				t.Fatal(err)
			}
			db2, store2, err := OpenDurable(sub, DurableOptions{Sync: wal.SyncAlways})
			if err != nil {
				t.Fatalf("recover %d records (cut %d variant %d): %v", k, cut, ci, err)
			}
			if got := fingerprint(db2); !equalPrints(want, got) {
				t.Fatalf("recover %d records (cut %d variant %d): state differs\nwant %v\ngot  %v", k, cut, ci, want, got)
			}
			store2.Close()
		}
	}
}

package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func snapshotDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	students, err := NewTable("Students",
		NewSchema(NotNullCol("SuID", TypeInt), NotNullCol("Name", TypeString), Col("GPA", TypeFloat), Col("Active", TypeBool)),
		WithPrimaryKey("SuID"), WithAutoIncrement("SuID"), WithIndex("Name"))
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(students)
	students.MustInsert(Row{nil, "Ann", 3.9, true})
	students.MustInsert(Row{nil, "Bob", nil, false})
	plain, err := NewTable("Plain", NewSchema(Col("X", TypeInt)))
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreate(plain)
	plain.MustInsert(Row{int64(7)})
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := snapshotDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if names := got.Names(); len(names) != 2 {
		t.Fatalf("tables = %v", names)
	}
	st := got.MustTable("Students")
	if st.Len() != 2 {
		t.Fatalf("rows = %d", st.Len())
	}
	row, ok := st.Get(int64(1))
	if !ok || row[1] != "Ann" || row[2] != 3.9 || row[3] != true {
		t.Errorf("row = %v", row)
	}
	row, _ = st.Get(int64(2))
	if row[2] != nil || row[3] != false {
		t.Errorf("null round trip: %v", row)
	}
	// Metadata survives: PK, auto-increment continues, index works.
	if got := st.PrimaryKey(); len(got) != 1 || got[0] != "SuID" {
		t.Errorf("pk = %v", got)
	}
	if st.AutoIncrement() != "SuID" {
		t.Errorf("autoinc = %q", st.AutoIncrement())
	}
	st.MustInsert(Row{nil, "Cal", 3.0, true})
	if _, ok := st.Get(int64(3)); !ok {
		t.Error("auto-increment did not resume after load")
	}
	if hits := st.Lookup("Name", "Ann"); len(hits) != 1 {
		t.Errorf("index lookup = %v", hits)
	}
	if !st.HasIndex("Name") {
		t.Error("secondary index lost")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`{"table":"T","columns":[{"name":"A","type":"WAT"}],"rows":0}`,
		`{"table":"T","columns":[{"name":"A","type":"INT"}],"rows":1}` + "\n" + `["x"]`,
		`{"table":"T","columns":[{"name":"A","type":"INT"}],"rows":1}` + "\n" + `[1,2]`,
		`{"table":"T","columns":[{"name":"A","type":"INT"}],"rows":1}`, // missing row
		`not json`,
		`{"table":"T","columns":[{"name":"A","type":"INT"}],"pk":["nope"],"rows":0}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Duplicate table name in stream.
	dup := `{"table":"T","columns":[{"name":"A","type":"INT"}],"rows":0}` + "\n" +
		`{"table":"T","columns":[{"name":"A","type":"INT"}],"rows":0}`
	if _, err := Load(strings.NewReader(dup)); err == nil {
		t.Error("duplicate table should fail")
	}
	// Empty stream loads an empty database.
	db, err := Load(strings.NewReader(""))
	if err != nil || len(db.Names()) != 0 {
		t.Errorf("empty stream: %v, %v", db.Names(), err)
	}
}

// TestLoadTruncatedStream cuts a valid snapshot at every byte length
// short of complete: Load must fail (never silently load a partial
// database), and the error must name the offending table and the line
// where the stream broke.
func TestLoadTruncatedStream(t *testing.T) {
	full := `{"table":"Users","columns":[{"name":"ID","type":"INT"},{"name":"Name","type":"TEXT"}],"pk":["ID"],"rows":2}` + "\n" +
		`[1,"ann"]` + "\n" +
		`[2,"bob"]` + "\n"
	// Start inside the final row's JSON (dropping only the trailing
	// newline is still a complete stream).
	for cut := len(full) - 2; cut > len(full)-12; cut-- {
		_, err := Load(strings.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: truncated stream loaded without error", cut)
		}
		msg := err.Error()
		if !strings.Contains(msg, "Users") {
			t.Fatalf("cut at %d: error does not name the table: %v", cut, err)
		}
		if !strings.Contains(msg, "line") {
			t.Fatalf("cut at %d: error does not carry a line number: %v", cut, err)
		}
	}
	// Cutting mid-header still reports the line.
	if _, err := Load(strings.NewReader(full[:40])); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("mid-header cut: %v", err)
	}
}

// Property: save→load→save is a fixed point (byte-identical second
// snapshot) for random row contents.
func TestSnapshotFixedPointProperty(t *testing.T) {
	f := func(names []string, gpas []float64, flags []bool) bool {
		db := NewDB()
		tbl, err := NewTable("T",
			NewSchema(NotNullCol("ID", TypeInt), Col("Name", TypeString), Col("GPA", TypeFloat), Col("Flag", TypeBool)),
			WithPrimaryKey("ID"), WithAutoIncrement("ID"))
		if err != nil {
			return false
		}
		db.MustCreate(tbl)
		for i, n := range names {
			var gpa Value
			if i < len(gpas) && !isNaN(gpas[i]) {
				gpa = gpas[i]
			}
			var flag Value
			if i < len(flags) {
				flag = flags[i]
			}
			if _, err := tbl.Insert(Row{nil, n, gpa, flag}); err != nil {
				return false
			}
		}
		var b1, b2 bytes.Buffer
		if db.Save(&b1) != nil {
			return false
		}
		db2, err := Load(bytes.NewReader(b1.Bytes()))
		if err != nil {
			return false
		}
		if db2.Save(&b2) != nil {
			return false
		}
		return bytes.Equal(b1.Bytes(), b2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func isNaN(f float64) bool { return f != f }

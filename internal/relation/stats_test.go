package relation

import "testing"

func statsTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustTable("People",
		NewSchema(
			NotNullCol("ID", TypeInt),
			NotNullCol("Dep", TypeString),
			Col("Age", TypeInt),
		), WithPrimaryKey("ID"), WithIndex("Dep"))
	for i, dep := range []string{"cs", "cs", "ee", "me", "ee", "cs"} {
		tbl.MustInsert(Row{int64(i + 1), dep, int64(20 + i)})
	}
	return tbl
}

func TestStatsIncremental(t *testing.T) {
	tbl := statsTable(t)
	st := tbl.Stats()
	if st.Rows != 6 {
		t.Fatalf("Rows = %d, want 6", st.Rows)
	}
	if d, ok := st.DistinctOf("Dep"); !ok || d != 3 {
		t.Fatalf("DistinctOf(Dep) = %d,%v, want 3,true", d, ok)
	}
	if d, ok := st.DistinctOf("ID"); !ok || d != 6 {
		t.Fatalf("DistinctOf(ID) = %d,%v, want 6,true (pk)", d, ok)
	}
	if _, ok := st.DistinctOf("Age"); ok {
		t.Fatal("Age has no index, should have no distinct estimate")
	}

	// Statistics track mutations without rescans.
	tbl.DeleteWhere(func(r Row) bool { return r[1] == "me" })
	st = tbl.Stats()
	if st.Rows != 5 {
		t.Fatalf("Rows after delete = %d, want 5", st.Rows)
	}
	if d, _ := st.DistinctOf("Dep"); d != 2 {
		t.Fatalf("DistinctOf(Dep) after delete = %d, want 2", d)
	}
	tbl.MustInsert(Row{int64(9), "bio", int64(30)})
	if d, _ := tbl.Stats().DistinctOf("Dep"); d != 3 {
		t.Fatalf("DistinctOf(Dep) after insert = %d, want 3", d)
	}
}

func TestStatsIgnoreNullBucket(t *testing.T) {
	tbl := MustTable("Opt",
		NewSchema(NotNullCol("ID", TypeInt), Col("Tag", TypeString)),
		WithPrimaryKey("ID"), WithIndex("Tag"))
	tbl.MustInsert(Row{int64(1), "a"})
	tbl.MustInsert(Row{int64(2), nil})
	tbl.MustInsert(Row{int64(3), nil})
	if d, _ := tbl.Stats().DistinctOf("Tag"); d != 1 {
		t.Fatalf("DistinctOf(Tag) = %d, want 1 (NULLs are not values)", d)
	}
}

func TestStatsSelectivity(t *testing.T) {
	tbl := statsTable(t)
	st := tbl.Stats()
	if got := st.Selectivity("Dep"); got != 2 {
		t.Fatalf("Selectivity(Dep) = %v, want 2 (6 rows / 3 distinct)", got)
	}
	if got := st.Selectivity("Age"); got != 2 {
		t.Fatalf("Selectivity(Age) = %v, want 6/3 fallback", got)
	}
}

func TestVersionBumps(t *testing.T) {
	tbl := statsTable(t)
	v0 := tbl.Version()
	tbl.MustInsert(Row{int64(7), "cs", nil})
	if tbl.Version() <= v0 {
		t.Fatal("insert should bump version")
	}
	v1 := tbl.Version()
	if _, err := tbl.UpdateWhere(func(r Row) bool { return r[0] == int64(7) }, func(r Row) Row {
		r[2] = int64(33)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() <= v1 {
		t.Fatal("update should bump version")
	}
	v2 := tbl.Version()
	tbl.DeleteWhere(func(r Row) bool { return r[0] == int64(7) })
	if tbl.Version() <= v2 {
		t.Fatal("delete should bump version")
	}
	v3 := tbl.Version()
	tbl.Scan(func(_ int, _ Row) bool { return true })
	if tbl.Version() != v3 {
		t.Fatal("reads must not bump version")
	}
}

func TestLookupMany(t *testing.T) {
	tbl := statsTable(t)
	rows := tbl.LookupMany("Dep", []Value{"cs", "me", nil, "nope"})
	if len(rows) != 4 {
		t.Fatalf("LookupMany = %d rows, want 4 (3 cs + 1 me; NULL and absent match nothing)", len(rows))
	}
	// Slot order, deduplicated even when keys repeat.
	rows = tbl.LookupMany("Dep", []Value{"ee", "ee"})
	if len(rows) != 2 || rows[0][0] != int64(3) || rows[1][0] != int64(5) {
		t.Fatalf("LookupMany dedup/order broken: %v", rows)
	}
	// Unindexed column degrades to one scan with identical semantics.
	rows = tbl.LookupMany("Age", []Value{int64(21), int64(24)})
	if len(rows) != 2 {
		t.Fatalf("unindexed LookupMany = %d rows, want 2", len(rows))
	}
	if got := tbl.LookupMany("Dep", nil); got != nil {
		t.Fatalf("empty key set should return nil, got %v", got)
	}
}

func TestGetMany(t *testing.T) {
	tbl := statsTable(t)
	rows := tbl.GetMany([]Value{int64(5)}, []Value{int64(99)}, []Value{int64(2)}, []Value{int64(5)})
	if len(rows) != 2 {
		t.Fatalf("GetMany = %d rows, want 2 (missing keys skipped, dups collapsed)", len(rows))
	}
	if rows[0][0] != int64(2) || rows[1][0] != int64(5) {
		t.Fatalf("GetMany should return slot order regardless of key order: %v", rows)
	}
	// Returned rows are copies: mutating them must not corrupt storage.
	rows[0][1] = "hacked"
	if fresh, _ := tbl.Get(int64(2)); fresh[1] != "cs" {
		t.Fatal("GetMany must return clones")
	}
}

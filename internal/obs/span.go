package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed region within a Trace, offset-stamped against the
// trace's start so spans from concurrent goroutines line up on one
// timeline.
type Span struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Trace collects spans across layers (and goroutines) of one logical
// operation — a scatter-gather fan-out timing its per-shard legs, a
// workflow timing its steps. It is deliberately tiny: no context
// propagation, no sampling, just named stopwatches on a shared
// timeline. Safe for concurrent use.
type Trace struct {
	t0    time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace; its timeline zero is now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// Start opens a span and returns the function that closes it.
func (t *Trace) Start(name string) func() {
	s0 := time.Now()
	return func() { t.Add(name, s0, time.Since(s0)) }
}

// Add records a completed span.
func (t *Trace) Add(name string, start time.Time, d time.Duration) {
	sp := Span{Name: name, StartNs: int64(start.Sub(t.t0)), DurNs: int64(d)}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// String renders the timeline, one span per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, s := range t.Spans() {
		fmt.Fprintf(&b, "%s: +%v for %v\n", s.Name, time.Duration(s.StartNs), time.Duration(s.DurNs))
	}
	return b.String()
}

// Package obs is the query-observability layer: latency histograms,
// a slow-query log, transaction-outcome counters, and trace spans,
// shared by every execution layer (sqlmini statements, shard
// scatter-gather, the HTTP handlers).
//
// # Design
//
// The package holds only passive accumulators — nothing here knows
// how to execute a query. The execution layers push into a Collector
// at their natural completion points (Stmt.Query/Exec/QueryTx, the
// HTTP middleware), keyed by statement fingerprint: the statement's
// SQL text, the same key the plan cache uses, so /api/queries rows
// line up one-to-one with plan-cache entries.
//
// Everything on the record path is lock-free: Histogram buckets are
// atomic counters (log-linear, 16 sub-buckets per octave, ≤6.25%
// relative error — any reported quantile is within one bucket of the
// true order statistic), QueryStat lookups are one sync.Map load on
// the steady state, and the SlowLog rejects below-floor latencies
// with a single atomic load before ever taking its insertion lock.
// When no collector is installed the execution layers skip all of it
// behind one atomic-pointer nil check, so the bare path stays at its
// benchmarked cost (the crbench ObservedVsBare scenario measures the
// difference).
//
// # Slow-query plan capture
//
// A SlowLog entry is admitted without a plan: instrumenting the very
// execution that turned out slow would require instrumenting every
// execution. Instead the recording layer arms the fingerprint and the
// statement's next execution runs with EXPLAIN ANALYZE
// instrumentation, back-filling the entry (SlowLog.AttachPlan). The
// plan shown is therefore from a later run of the same statement —
// the standard deferred-capture trade-off.
//
// # WAL wait attribution
//
// On durable sites Collector.WALWait samples the WAL's cumulative
// commit-wait counters; the recording layer takes before/after deltas
// around a statement to attribute durability wait (own fsync vs
// riding another commit's group fsync) to slow-log entries. Deltas
// are per-process counters, so under concurrent commits a statement
// may be attributed a neighbor's wait — good enough to answer "was
// this slow because of fsync?", and documented as approximate.
package obs

package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCollectorTopAndRoutes(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 100; i++ {
		c.Record("SELECT fast", "query", 10*time.Microsecond, 1, false)
	}
	for i := 0; i < 5; i++ {
		c.Record("SELECT slow", "fan-out", 5*time.Millisecond, 40, false)
	}
	c.Record("SELECT erring", "query", time.Millisecond, 0, true)

	top := c.Top(2, "p99")
	if len(top) != 2 || top[0].SQL != "SELECT slow" {
		t.Fatalf("Top(2, p99) = %+v, want SELECT slow first", top)
	}
	if top[0].Route != "fan-out" || top[0].Rows != 200 || top[0].Count != 5 {
		t.Fatalf("slow summary wrong: %+v", top[0])
	}
	byTotal := c.Top(0, "total")
	if len(byTotal) != 3 {
		t.Fatalf("Top(0) returned %d summaries, want 3", len(byTotal))
	}
	for _, s := range byTotal {
		if s.SQL == "SELECT erring" && s.Errors != 1 {
			t.Fatalf("error count not recorded: %+v", s)
		}
	}
}

func TestCollectorOverflowCap(t *testing.T) {
	c := NewCollector(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < maxStatements; i++ {
				c.Record(fmt.Sprintf("q-%d-%d", g, i), "query", time.Microsecond, 0, false)
			}
		}(g)
	}
	wg.Wait()
	n := 0
	total := uint64(0)
	c.stats.Range(func(_, v any) bool {
		n++
		total += v.(*QueryStat).hist.Count()
		return true
	})
	// LoadOrStore races can overshoot the cap by at most the number of
	// concurrent recorders; nothing may be lost.
	if n > maxStatements+8 {
		t.Fatalf("collector grew to %d stats, cap is %d", n, maxStatements)
	}
	if total != 4*maxStatements {
		t.Fatalf("recorded %d observations, want %d", total, 4*maxStatements)
	}
	if _, ok := c.stats.Load(overflowKey); !ok {
		t.Fatal("overflow key missing after exceeding the cap")
	}
}

func TestSlowLogAdmissionAndFloor(t *testing.T) {
	l := NewSlowLog(3)
	for i := 1; i <= 5; i++ {
		l.Offer(SlowEntry{SQL: fmt.Sprintf("q%d", i), LatencyNs: int64(i) * 1000, At: time.Now()})
	}
	es := l.Entries()
	if len(es) != 3 || es[0].SQL != "q5" || es[2].SQL != "q3" {
		t.Fatalf("entries = %+v, want q5,q4,q3", es)
	}
	if l.Floor() != 3000 {
		t.Fatalf("floor = %d, want 3000", l.Floor())
	}
	if l.Offer(SlowEntry{SQL: "meh", LatencyNs: 2999}) {
		t.Fatal("below-floor entry admitted")
	}
	if !l.Offer(SlowEntry{SQL: "spike", LatencyNs: 99999}) {
		t.Fatal("above-floor entry rejected")
	}
}

func TestSlowLogPlanCapture(t *testing.T) {
	l := NewSlowLog(4)
	l.Offer(SlowEntry{SQL: "SELECT x", LatencyNs: 1000, At: time.Unix(1, 0)})
	l.Offer(SlowEntry{SQL: "SELECT x", LatencyNs: 2000, At: time.Unix(2, 0)})
	if !l.NeedsPlan("SELECT x") {
		t.Fatal("NeedsPlan should report plan-less entries")
	}
	if !l.AttachPlan("SELECT x", "the plan") {
		t.Fatal("AttachPlan found no entry")
	}
	es := l.Entries()
	// The newest plan-less entry (At=2, which sorted first) gets it.
	if es[0].Plan != "the plan" || es[1].Plan != "" {
		t.Fatalf("plan attached to wrong entry: %+v", es)
	}
	if l.AttachPlan("SELECT y", "nope") {
		t.Fatal("AttachPlan matched a missing SQL")
	}
}

func TestSlowLogRedact(t *testing.T) {
	l := NewSlowLog(2)
	l.SetRedact(true)
	l.Offer(SlowEntry{SQL: "q", Params: []string{"secret"}, LatencyNs: 10})
	if es := l.Entries(); len(es) != 1 || es[0].Params != nil {
		t.Fatalf("params not redacted: %+v", es)
	}
}

func TestCollectorTxCounts(t *testing.T) {
	c := NewCollector(0)
	c.RecordTx(TxCommitted)
	c.RecordTx(TxCommitted)
	c.RecordTx(TxConflicted)
	c.RecordTx(TxRolledBack)
	commits, conflicts, rollbacks := c.TxCounts()
	if commits != 2 || conflicts != 1 || rollbacks != 1 {
		t.Fatalf("tx counts = %d/%d/%d", commits, conflicts, rollbacks)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	end := tr.Start("phase-a")
	time.Sleep(time.Millisecond)
	end()
	tr.Add("phase-b", time.Now(), 2*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "phase-a" || spans[0].DurNs <= 0 {
		t.Fatalf("spans = %+v", spans)
	}
	if s := tr.String(); s == "" {
		t.Fatal("String() empty")
	}
}

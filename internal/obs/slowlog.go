package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one slow-query record: what ran, how long it took, and
// why — the ANALYZE-annotated plan (captured on the statement's next
// execution, see Offer), the transaction outcome if it ran in one,
// and how much of the latency was WAL durability wait.
type SlowEntry struct {
	SQL       string    `json:"sql"`
	Params    []string  `json:"params,omitempty"`
	Route     string    `json:"route,omitempty"`
	Rows      int       `json:"rows"`
	LatencyNs int64     `json:"latency_ns"`
	Plan      string    `json:"plan,omitempty"`
	TxOutcome string    `json:"tx_outcome,omitempty"`
	WALOwnNs  int64     `json:"wal_own_fsync_ns,omitempty"`
	WALRideNs int64     `json:"wal_ride_ns,omitempty"`
	Err       string    `json:"error,omitempty"`
	At        time.Time `json:"at"`

	// TxTag links the entry to an open transaction so its outcome can
	// be resolved at commit/rollback time (ResolveTx). Not serialized:
	// the outcome lands in TxOutcome.
	TxTag string `json:"-"`
}

// SlowLog keeps the N slowest statements seen so far, ordered
// slowest-first. Admission is cheap to reject: once the log is full,
// a latency at or below the current floor (the Nth-slowest latency)
// returns without taking the lock.
//
// Entries are admitted without a plan — running EXPLAIN ANALYZE
// inline would double the very execution that was already slow.
// Instead the recording layer arms the statement's fingerprint and
// the statement's NEXT execution runs instrumented, back-filling the
// entry via AttachPlan (the classic deferred-capture design: the plan
// shown may be from a later, faster run of the same statement).
type SlowLog struct {
	mu      sync.Mutex
	max     int
	entries []SlowEntry // sorted descending by LatencyNs
	floor   atomic.Int64
	redact  atomic.Bool
}

// NewSlowLog returns a log keeping the n slowest statements.
func NewSlowLog(n int) *SlowLog {
	if n < 1 {
		n = 1
	}
	return &SlowLog{max: n}
}

// SetRedact toggles parameter redaction: when on, entries store no
// bound parameter values (for logs that may leave the machine).
func (l *SlowLog) SetRedact(on bool) { l.redact.Store(on) }

// Redacting reports whether parameter redaction is on.
func (l *SlowLog) Redacting() bool { return l.redact.Load() }

// Floor returns the latency a statement must exceed to be admitted
// once the log is full (0 until then).
func (l *SlowLog) Floor() int64 { return l.floor.Load() }

// Offer proposes an entry, reporting whether it was admitted.
func (l *SlowLog) Offer(e SlowEntry) bool {
	if l == nil {
		return false
	}
	if e.LatencyNs <= l.floor.Load() {
		return false
	}
	if l.redact.Load() {
		e.Params = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i := len(l.entries)
	for i > 0 && l.entries[i-1].LatencyNs < e.LatencyNs {
		i--
	}
	if i >= l.max {
		return false
	}
	l.entries = append(l.entries, SlowEntry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	if len(l.entries) > l.max {
		l.entries = l.entries[:l.max]
	}
	if len(l.entries) == l.max {
		l.floor.Store(l.entries[len(l.entries)-1].LatencyNs)
	}
	return true
}

// AttachPlan back-fills the newest plan-less entry for sql, reporting
// whether one was found.
func (l *SlowLog) AttachPlan(sql, plan string) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var target *SlowEntry
	for i := range l.entries {
		e := &l.entries[i]
		if e.SQL != sql || e.Plan != "" {
			continue
		}
		if target == nil || e.At.After(target.At) {
			target = e
		}
	}
	if target == nil {
		return false
	}
	target.Plan = plan
	return true
}

// ResolveTx stamps the outcome ("committed", "conflicted", "rolled
// back") onto every entry recorded under the given transaction tag —
// a statement's slow entry exists before its transaction's fate does.
func (l *SlowLog) ResolveTx(tag, outcome string) {
	if l == nil || tag == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.entries {
		if l.entries[i].TxTag == tag {
			l.entries[i].TxOutcome = outcome
		}
	}
}

// NeedsPlan reports whether the log holds a plan-less entry for sql —
// the recording layer uses it to decide whether to arm plan capture.
func (l *SlowLog) NeedsPlan(sql string) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.entries {
		if l.entries[i].SQL == sql && l.entries[i].Plan == "" {
			return true
		}
	}
	return false
}

// Entries returns a slowest-first copy of the log.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SlowEntry(nil), l.entries...)
}

package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxStatements bounds the collector's fingerprint map. A workload
// that somehow produces more distinct statement texts (the plan cache
// is keyed the same way, so this would mean the plan cache is also
// thrashing) aggregates the overflow under one catch-all key instead
// of growing without bound.
const (
	maxStatements = 1024
	overflowKey   = "(other)"
)

// QueryStat is the per-fingerprint accumulator: a latency histogram
// plus row and error totals. All methods are safe for concurrent use.
type QueryStat struct {
	fingerprint string
	route       atomic.Pointer[string]
	hist        Histogram
	rows        atomic.Int64
	errs        atomic.Uint64
}

// Hist exposes the latency histogram.
func (q *QueryStat) Hist() *Histogram { return &q.hist }

// QuerySummary is one fingerprint's extract: counts, percentiles and
// the route the statement last took. Shaped for /api/queries.
type QuerySummary struct {
	SQL     string `json:"sql"`
	Route   string `json:"route,omitempty"`
	Count   uint64 `json:"count"`
	Rows    int64  `json:"rows"`
	Errors  uint64 `json:"errors,omitempty"`
	TotalNs int64  `json:"total_ns"`
	MeanNs  int64  `json:"mean_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P95Ns   int64  `json:"p95_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// TxOutcome classifies how a transaction ended.
type TxOutcome uint8

const (
	TxCommitted TxOutcome = iota
	TxConflicted
	TxRolledBack
)

// Collector aggregates per-statement latency histograms keyed by
// statement fingerprint (the same text key the plan cache uses), an
// optional slow-query log, and transaction-outcome counters. One
// collector serves a whole site; all methods are safe for concurrent
// use.
//
// WALWait, when non-nil, samples the storage layer's cumulative WAL
// commit-wait counters (own-fsync ns, group-ride ns); the slow-query
// log uses before/after deltas to attribute durability wait to a
// statement. It must be installed before traffic starts.
type Collector struct {
	stats  sync.Map // fingerprint → *QueryStat
	nstats atomic.Int64
	slow   *SlowLog

	commits   atomic.Uint64
	conflicts atomic.Uint64
	rollbacks atomic.Uint64

	WALWait func() (ownNs, rideNs int64)
}

// NewCollector returns a collector whose slow-query log keeps the
// slowN slowest statements (slowN <= 0 disables the log).
func NewCollector(slowN int) *Collector {
	c := &Collector{}
	if slowN > 0 {
		c.slow = NewSlowLog(slowN)
	}
	return c
}

// Slow returns the slow-query log, or nil when disabled.
func (c *Collector) Slow() *SlowLog { return c.slow }

// Stat returns the accumulator for a fingerprint, creating it on
// first use. Past maxStatements distinct fingerprints, new ones
// aggregate under a shared overflow key.
func (c *Collector) Stat(fingerprint string) *QueryStat {
	if v, ok := c.stats.Load(fingerprint); ok {
		return v.(*QueryStat)
	}
	if c.nstats.Load() >= maxStatements && fingerprint != overflowKey {
		return c.Stat(overflowKey)
	}
	v, loaded := c.stats.LoadOrStore(fingerprint, &QueryStat{fingerprint: fingerprint})
	if !loaded {
		c.nstats.Add(1)
	}
	return v.(*QueryStat)
}

// Record adds one execution: end-to-end latency, rows returned, the
// route it took ("query", "exec", "tx", "fan-out", "http", ...), and
// whether it errored. Returns the accumulator so callers can reuse it.
func (c *Collector) Record(fingerprint, route string, d time.Duration, rows int, errored bool) *QueryStat {
	st := c.Stat(fingerprint)
	st.hist.Record(d)
	st.rows.Add(int64(rows))
	if errored {
		st.errs.Add(1)
	}
	if route != "" {
		if cur := st.route.Load(); cur == nil || *cur != route {
			st.route.Store(&route)
		}
	}
	return st
}

// RecordTx counts one transaction outcome.
func (c *Collector) RecordTx(o TxOutcome) {
	switch o {
	case TxCommitted:
		c.commits.Add(1)
	case TxConflicted:
		c.conflicts.Add(1)
	default:
		c.rollbacks.Add(1)
	}
}

// TxCounts returns the transaction-outcome counters.
func (c *Collector) TxCounts() (commits, conflicts, rollbacks uint64) {
	return c.commits.Load(), c.conflicts.Load(), c.rollbacks.Load()
}

// summary extracts one stat's QuerySummary.
func (q *QueryStat) summary() QuerySummary {
	s := QuerySummary{
		SQL:     q.fingerprint,
		Count:   q.hist.Count(),
		Rows:    q.rows.Load(),
		Errors:  q.errs.Load(),
		TotalNs: q.hist.SumNs(),
		MeanNs:  q.hist.MeanNs(),
		P50Ns:   int64(q.hist.Quantile(0.50)),
		P95Ns:   int64(q.hist.Quantile(0.95)),
		P99Ns:   int64(q.hist.Quantile(0.99)),
		MaxNs:   q.hist.MaxNs(),
	}
	if r := q.route.Load(); r != nil {
		s.Route = *r
	}
	return s
}

// Top returns the k highest-ranked fingerprints; by is "p99" or
// "total" (total time; the default). k <= 0 returns everything.
func (c *Collector) Top(k int, by string) []QuerySummary {
	var all []QuerySummary
	c.stats.Range(func(_, v any) bool {
		all = append(all, v.(*QueryStat).summary())
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if by == "p99" {
			if all[i].P99Ns != all[j].P99Ns {
				return all[i].P99Ns > all[j].P99Ns
			}
		}
		if all[i].TotalNs != all[j].TotalNs {
			return all[i].TotalNs > all[j].TotalNs
		}
		return all[i].SQL < all[j].SQL
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

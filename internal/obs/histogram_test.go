package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's low bound must map back to that bucket, bounds
	// must be strictly increasing, and values one below a bound must
	// land in the previous bucket.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo := bucketLow(i)
		if lo <= prev && !(lo == math.MaxInt64 && prev == math.MaxInt64) {
			t.Fatalf("bucket %d: low %d not above previous %d", i, lo, prev)
		}
		if got := bucketOf(lo); got != i && lo != math.MaxInt64 {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d", i, got)
		}
		if i > 0 && lo > 0 && lo != math.MaxInt64 {
			if got := bucketOf(lo - 1); got != i-1 {
				t.Fatalf("bucketOf(%d) = %d, want %d", lo-1, got, i-1)
			}
		}
		prev = lo
	}
	if got := bucketOf(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("bucketOf(MaxInt64) = %d, want %d", got, histBuckets-1)
	}
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("bucketOf(-5) = %d, want 0", got)
	}
}

func TestBucketRelativeError(t *testing.T) {
	// Above the unit buckets, bucket width must stay within 1/histSub
	// of the low bound — the ±1-bucket quantile guarantee rests on it.
	for i := histSub; i < histBuckets-1; i++ {
		lo, hi := bucketLow(i), bucketLow(i+1)
		if hi == math.MaxInt64 {
			break
		}
		if width := hi - lo; float64(width)/float64(lo) > 1.0/histSub+1e-12 {
			t.Fatalf("bucket %d: width %d over low %d exceeds %.4f", i, width, lo, 1.0/histSub)
		}
	}
}

// refQuantile is the sorted-reference order statistic the histogram
// approximates: the rank-⌈p·n⌉ sample.
func refQuantile(sorted []int64, p float64) int64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistogramQuantileProperty is the correctness property from the
// issue: histograms filled by concurrent recorders and merged across
// per-goroutine instances must report every quantile within ±1 bucket
// of a sorted reference over the raw samples. Run under -race in CI.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := []struct {
		name string
		gen  func(r *rand.Rand) int64
	}{
		{"uniform", func(r *rand.Rand) int64 { return r.Int63n(10_000_000) }},
		{"exponential", func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 500_000) }},
		{"bimodal", func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 50_000_000 + r.Int63n(1_000_000) // slow tail
			}
			return 10_000 + r.Int63n(5_000)
		}},
		{"tiny", func(r *rand.Rand) int64 { return r.Int63n(20) }},
	}
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			const goroutines = 8
			const perG = 5000
			// Pre-generate all samples so the reference sees exactly what
			// the recorders record.
			samples := make([][]int64, goroutines)
			var all []int64
			for g := range samples {
				samples[g] = make([]int64, perG)
				for i := range samples[g] {
					samples[g][i] = dist.gen(rng)
					all = append(all, samples[g][i])
				}
			}

			// Concurrent recorders: half share one histogram, half get
			// per-goroutine histograms merged afterwards — covering both
			// the shared-fingerprint and the per-shard merge shapes.
			var shared Histogram
			perGoroutine := make([]*Histogram, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				perGoroutine[g] = &Histogram{}
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for _, v := range samples[g] {
						if g%2 == 0 {
							shared.RecordNs(v)
						} else {
							perGoroutine[g].RecordNs(v)
						}
					}
				}(g)
			}
			wg.Wait()
			merged := &Histogram{}
			merged.Merge(&shared)
			for g := 1; g < goroutines; g += 2 {
				merged.Merge(perGoroutine[g])
			}

			if got, want := merged.Count(), uint64(len(all)); got != want {
				t.Fatalf("count = %d, want %d", got, want)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			var sum int64
			for _, v := range all {
				sum += v
			}
			if merged.SumNs() != sum {
				t.Fatalf("sum = %d, want %d", merged.SumNs(), sum)
			}
			if merged.MaxNs() != all[len(all)-1] {
				t.Fatalf("max = %d, want %d", merged.MaxNs(), all[len(all)-1])
			}
			for _, p := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
				ref := refQuantile(all, p)
				got := int64(merged.Quantile(p))
				if d := bucketOf(ref) - bucketOf(got); d < -1 || d > 1 {
					t.Errorf("p%.0f: reported %d (bucket %d), reference %d (bucket %d): off by %d buckets",
						p*100, got, bucketOf(got), ref, bucketOf(ref), d)
				}
			}
		})
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.MeanNs() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(3 * time.Millisecond)
	if q := h.Quantile(0.5); q < 2800*time.Microsecond || q > 3200*time.Microsecond {
		t.Fatalf("single-sample p50 = %v, want ≈3ms", q)
	}
}

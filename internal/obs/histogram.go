package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear with histSub sub-buckets per
// octave. Values below histSub land in exact unit buckets (0..15);
// above that, each power-of-two octave splits into histSub
// equal-width sub-buckets, so the relative width of any bucket is at
// most 1/histSub = 6.25%. That bound is the histogram's whole
// contract: any quantile it reports is within one bucket of the true
// order statistic, which is what the property test asserts.
const (
	histSub     = 16
	histSubBits = 4
	// 59 octaves (bits.Len64 of a positive int64 tops out at 63) of
	// histSub buckets above the 16 unit buckets:
	// bucketOf(math.MaxInt64) == 959.
	histBuckets = 960
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	b := bits.Len64(u) // >= 5
	// The leading bit plus the next histSubBits bits select the
	// sub-bucket: u>>(b-5) is in [16,32).
	return (b-4)*histSub + int(u>>(uint(b)-5)) - histSub
}

// bucketLow is the inverse: the smallest value that maps to bucket i.
func bucketLow(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	e := uint(i/histSub - 1)
	r := uint64(i % histSub)
	lo := (histSub + r) << e
	if lo > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(lo)
}

// Histogram is a lock-free log-bucketed latency histogram. Record and
// Merge are safe for concurrent use from any number of goroutines;
// Quantile reads the buckets without synchronization, so a quantile
// taken during concurrent recording is a consistent-enough snapshot
// (each bucket is atomically read) but not a point-in-time one.
//
// The zero value is ready to use. A Histogram weighs about 8KB and is
// meant to live for the process lifetime keyed by statement
// fingerprint — not to be allocated per request.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) { h.RecordNs(int64(d)) }

// RecordNs adds one observation in nanoseconds.
func (h *Histogram) RecordNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Merge adds src's observations into h. Both histograms may be
// recorded into concurrently; the merge itself is bucket-by-bucket
// atomic, so counts are never lost (though a merge racing a Record
// may or may not include that one observation).
func (h *Histogram) Merge(src *Histogram) {
	if src == nil {
		return
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	for {
		m, sm := h.max.Load(), src.max.Load()
		if sm <= m || h.max.CompareAndSwap(m, sm) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumNs returns the total of all observations in nanoseconds.
func (h *Histogram) SumNs() int64 { return h.sum.Load() }

// MaxNs returns the largest observation in nanoseconds.
func (h *Histogram) MaxNs() int64 { return h.max.Load() }

// MeanNs returns the mean observation in nanoseconds.
func (h *Histogram) MeanNs() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / int64(n)
}

// Quantile returns the p-quantile (0 < p <= 1) as the midpoint of the
// bucket holding the rank-⌈p·n⌉ observation — within one bucket
// (≤6.25% relative error) of the true order statistic. An empty
// histogram reports 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			lo := bucketLow(i)
			hi := bucketLow(i + 1)
			return time.Duration(lo + (hi-lo)/2)
		}
	}
	return time.Duration(h.max.Load())
}

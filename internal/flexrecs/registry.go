package flexrecs

import (
	"fmt"
	"sort"
	"sync"
)

// Template is a named, parameterized recommendation strategy. The paper
// positions FlexRecs as a tool "for the site administrator ... to
// quickly define recommendation strategies that can be then selected
// (and personalized) by a student" (§2.1); templates are those
// administrator-defined strategies, and the params a student supplies
// (their id, a course title, a year) personalize each run.
type Template struct {
	Name        string
	Description string
	// Params documents the parameter names Build expects.
	Params []string
	// Build instantiates the workflow for one personalized request.
	Build func(params map[string]any) (*Step, error)
}

// Registry is a concurrency-safe catalog of recommendation strategies.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Template
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]Template)} }

// Register adds a strategy; duplicate names are rejected.
func (r *Registry) Register(t Template) error {
	if t.Name == "" {
		return fmt.Errorf("flexrecs: template needs a name")
	}
	if t.Build == nil {
		return fmt.Errorf("flexrecs: template %q needs a Build function", t.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[t.Name]; dup {
		return fmt.Errorf("flexrecs: template %q already registered", t.Name)
	}
	r.m[t.Name] = t
	return nil
}

// Get looks up a strategy by name.
func (r *Registry) Get(name string) (Template, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.m[name]
	return t, ok
}

// List returns all strategies sorted by name.
func (r *Registry) List() []Template {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Template, 0, len(r.m))
	for _, t := range r.m {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Run instantiates the named strategy with params and executes it.
func (r *Registry) Run(e *Engine, name string, params map[string]any) (*Relation, error) {
	t, ok := r.Get(name)
	if !ok {
		return nil, fmt.Errorf("flexrecs: no strategy %q", name)
	}
	w, err := t.Build(params)
	if err != nil {
		return nil, fmt.Errorf("flexrecs: building %q: %w", name, err)
	}
	return e.Run(w)
}

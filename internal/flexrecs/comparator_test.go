package flexrecs

import (
	"strings"
	"testing"
)

// TestComparatorLabels pins the Explain annotations to the paper's
// notation.
func TestComparatorLabels(t *testing.T) {
	cases := []struct {
		c    Comparator
		want string
	}{
		{JaccardOn("Title"), "Jaccard[Title]"},
		{InvEuclideanOn("Ratings"), "inv_Euclidean[Ratings]"},
		{CosineOn("Ratings"), "Cosine[Ratings]"},
		{PearsonOn("Ratings"), "Pearson[Ratings]"},
		{OverlapOn("Ratings"), "Overlap[Ratings]"},
		{WeightedAvg("CourseID", "Ratings", "Score"), "Identify[CourseID,Ratings], W_Avg[Score]"},
		{AvgOf("CourseID", "Ratings"), "Identify[CourseID,Ratings], Avg"},
	}
	for _, c := range cases {
		if got := c.c.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
}

func TestVectorComparatorsInWorkflows(t *testing.T) {
	e := NewEngine(paperDB(t))
	ratings := Rel("Comments").Project("SuID", "CourseID", "Rating")
	for _, cmp := range []Comparator{CosineOn("Ratings"), PearsonOn("Ratings"), OverlapOn("Ratings")} {
		wf := Recommend(
			ratings.Select("SuID <> 444").Extend("SuID", "CourseID", "Rating", "Ratings"),
			ratings.Select("SuID = 444").Extend("SuID", "CourseID", "Rating", "Ratings"),
			cmp,
		)
		res, err := e.Run(wf)
		if err != nil {
			t.Fatalf("%s: %v", cmp.Label(), err)
		}
		if res.Len() != 3 {
			t.Fatalf("%s: rows = %d", cmp.Label(), res.Len())
		}
		si := res.MustCol("Score")
		// Scores descend.
		for i := 1; i < res.Len(); i++ {
			if res.Rows[i][si].(float64) > res.Rows[i-1][si].(float64) {
				t.Errorf("%s: scores not sorted", cmp.Label())
			}
		}
		// The twin (445) rates like 444; the anti-twin (446) opposes.
		// Under every similarity, 445 must not rank below 446.
		su := res.MustCol("SuID")
		pos := map[int64]int{}
		for i := range res.Rows {
			pos[res.Rows[i][su].(int64)] = i
		}
		if pos[445] > pos[446] {
			t.Errorf("%s: twin ranked below anti-twin: %v", cmp.Label(), pos)
		}
	}
}

func TestAvgOfComparator(t *testing.T) {
	e := NewEngine(paperDB(t))
	wf := Recommend(
		Rel("Courses").Select("Year = 2008"),
		Rel("Comments").Project("SuID", "CourseID", "Rating").Extend("SuID", "CourseID", "Rating", "Ratings"),
		AvgOf("CourseID", "Ratings"),
	)
	res, err := e.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	ci, si := res.MustCol("CourseID"), res.MustCol("Score")
	scores := map[int64]float64{}
	for i := range res.Rows {
		scores[res.Rows[i][ci].(int64)] = res.Rows[i][si].(float64)
	}
	// Course 1 ratings: 5, 5, 1 → mean 11/3.
	if got := scores[1]; got < 3.66 || got > 3.67 {
		t.Errorf("course 1 avg = %v", got)
	}
	// Course 4 rated only by 444 (2) → mean 2.
	if scores[4] != 2 {
		t.Errorf("course 4 avg = %v", scores[4])
	}
}

func TestExplainResidualOperators(t *testing.T) {
	e := NewEngine(paperDB(t))
	wf := Rel("Comments").Project("SuID", "CourseID", "Rating").
		Extend("SuID", "CourseID", "Rating", "Ratings").
		Select("SuID > 444").
		Top(3)
	plan := e.Explain(wf)
	for _, want := range []string{"top[3]", "σ[SuID > 444]", "ε[SuID: CourseID→Rating as Ratings]", "SQL> SELECT SuID, CourseID, Rating FROM Comments"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestBlendOperator(t *testing.T) {
	e := NewEngine(paperDB(t))
	// Left: content similarity to course 1's title over all courses.
	content := Recommend(
		Rel("Courses"),
		Rel("Courses").Select("CourseID = 1"),
		JaccardOn("Title"),
	).Project("CourseID", "Title", "Score")
	// Right: average rating per course (scaled down to [0,1]).
	cf := Recommend(
		Rel("Courses").Select("Year = 2008"),
		Rel("Comments").Project("SuID", "CourseID", "Rating").Extend("SuID", "CourseID", "Rating", "Ratings"),
		AvgOf("CourseID", "Ratings"),
	).Project("CourseID", "Score")
	wf := Blend(content, cf, "CourseID", "Score", 1.0, 0.2)
	res, err := e.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	ci, si := res.MustCol("CourseID"), res.MustCol("Score")
	scores := map[int64]float64{}
	for i := range res.Rows {
		scores[res.Rows[i][ci].(int64)] = res.Rows[i][si].(float64)
		if i > 0 && res.Rows[i][si].(float64) > res.Rows[i-1][si].(float64) {
			t.Error("blend output must sort by blended score")
		}
	}
	// Course 1: Jaccard 1.0 + 0.2·avg(5,5,1)=0.2·11/3 ≈ 1.733.
	if got := scores[1]; got < 1.72 || got > 1.75 {
		t.Errorf("course 1 blended = %v", got)
	}
	// Course 4 ("American History"): Jaccard 0 + 0.2·2 = 0.4.
	if got := scores[4]; got < 0.39 || got > 0.41 {
		t.Errorf("course 4 blended = %v", got)
	}
	// Course 5 exists only on the left (2007 → absent from right): its
	// blended score is pure content.
	if got, ok := scores[5]; !ok || got < 0.99 {
		t.Errorf("left-only course 5 = %v, %v", got, ok)
	}
	// Validation and error paths.
	if _, err := e.Run(Blend(content, cf, "", "Score", 1, 1)); err == nil {
		t.Error("missing key should fail validation")
	}
	if _, err := e.Run(Blend(content, cf, "Nope", "Score", 1, 1)); err == nil {
		t.Error("unknown key column should fail")
	}
	if _, err := e.Run(Blend(content.Project("CourseID", "Title"), cf, "CourseID", "Score", 1, 1)); err == nil {
		t.Error("missing score column should fail")
	}
	// Explain shows the blend node.
	plan := e.Explain(wf)
	if !strings.Contains(plan, "blend[Score: 1·L + 0.2·R on CourseID]") {
		t.Errorf("plan = %s", plan)
	}
}

func TestExtendSkipsNullsAndBadTypes(t *testing.T) {
	e := NewEngine(paperDB(t))
	// Comment with NULL rating exists for SuID 448 in paperDB? Not in
	// this fixture; add rows through the SQL engine.
	if _, err := e.SQL().Exec(`INSERT INTO Comments VALUES (500, 1, 2008, 'Aut', 'x', NULL, 'd')`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Rel("Comments").Select("SuID = 500").Project("SuID", "CourseID", "Rating").
		Extend("SuID", "CourseID", "Rating", "Ratings"))
	if err != nil {
		t.Fatal(err)
	}
	// The only row has a NULL rating → no vector entries → no group row
	// (the student has nothing comparable).
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Len())
	}
	// Extending over a non-numeric value column errors.
	if _, err := e.Run(Rel("Comments").Project("SuID", "CourseID", "Text").
		Extend("SuID", "CourseID", "Text", "Texts")); err == nil {
		t.Error("non-numeric extend value should fail")
	}
}

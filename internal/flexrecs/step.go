package flexrecs

import (
	"fmt"
	"strings"
	"time"
)

// stepKind discriminates workflow operators.
type stepKind uint8

const (
	relStep stepKind = iota + 1
	selectStep
	projectStep
	joinStep
	extendStep
	recommendStep
	blendStep
	topStep
	orderStep
	matStep
)

// Step is one node of a workflow DAG. Workflows are built fluently:
//
//	similar := flexrecs.Recommend(
//	    flexrecs.Rel("Courses").Select("Year = 2008"),
//	    flexrecs.Rel("Courses").Select("Title = ?", "Introduction to Programming"),
//	    flexrecs.JaccardOn("Title"),
//	).Top(10)
//
// which is exactly the related-course workflow of Figure 5(a).
type Step struct {
	kind stepKind

	table string // relStep: base table (may carry an alias, "Courses c")

	cond string // selectStep: SQL boolean expression
	args []any  // selectStep: placeholder bindings

	cols []string // projectStep

	on string // joinStep: SQL join condition

	groupBy, keyCol, valCol, as string // extendStep

	cmp     Comparator // recommendStep
	scoreAs string     // recommendStep: output column (default "Score")

	blendKey string // blendStep: join key column
	wL, wR   float64

	k int // topStep

	orderCol string // orderStep
	desc     bool

	mat MatOptions // matStep

	child, other *Step // other = join right side / recommend reference
}

// Rel starts a workflow at a base table. The table string is passed
// through to SQL, so it may include an alias ("Courses c").
func Rel(table string) *Step { return &Step{kind: relStep, table: table} }

// Select appends a selection (σ) with a SQL boolean condition;
// placeholders ('?') bind to args.
func (s *Step) Select(cond string, args ...any) *Step {
	return &Step{kind: selectStep, cond: cond, args: args, child: s}
}

// Project appends a projection (π) to the named columns.
func (s *Step) Project(cols ...string) *Step {
	return &Step{kind: projectStep, cols: append([]string(nil), cols...), child: s}
}

// JoinOn appends a join with the right-hand workflow under a SQL
// condition.
func (s *Step) JoinOn(right *Step, on string) *Step {
	return &Step{kind: joinStep, on: on, child: s, other: right}
}

// Extend appends the extend operator (ε): the child relation is grouped
// by groupBy, and each group's (keyCol → valCol) pairs are nested as a
// Vector attribute named as. The output schema is (groupBy, as) — the
// set of ratings becomes "another attribute of the student irrespective
// of the database schema" (paper §3.2).
func (s *Step) Extend(groupBy, keyCol, valCol, as string) *Step {
	return &Step{kind: extendStep, groupBy: groupBy, keyCol: keyCol, valCol: valCol, as: as, child: s}
}

// Recommend builds the recommend operator (▷): it ranks the target
// tuples by comparing each to the reference tuples with the given
// comparator, appending the similarity as a "Score" column (rename with
// As) and sorting best-first.
func Recommend(target, ref *Step, cmp Comparator) *Step {
	return &Step{kind: recommendStep, child: target, other: ref, cmp: cmp, scoreAs: "Score"}
}

// As renames the score column of a recommend step.
func (s *Step) As(col string) *Step {
	if s.kind != recommendStep {
		panic("flexrecs: As applies only to Recommend steps")
	}
	dup := *s
	dup.scoreAs = col
	return &dup
}

// Blend merges two recommendation workflows — "the operator may be
// combined with other recommend operators" (§3.2). Rows pair up on the
// key column; the output score is wL·left + wR·right, with an absent
// side contributing zero (union semantics). The left side's non-score
// columns are kept for rows present on the left; right-only rows keep
// the key and score.
func Blend(left, right *Step, key, scoreCol string, wL, wR float64) *Step {
	return &Step{kind: blendStep, child: left, other: right, blendKey: key, scoreAs: scoreCol, wL: wL, wR: wR}
}

// Top truncates the workflow result to its first k rows.
func (s *Step) Top(k int) *Step { return &Step{kind: topStep, k: k, child: s} }

// OrderBy sorts the result by one column.
func (s *Step) OrderBy(col string, desc bool) *Step {
	return &Step{kind: orderStep, orderCol: col, desc: desc, child: s}
}

// MatOptions configures a Materialize step.
type MatOptions struct {
	// Name keys the view in the matview registry. The engine appends a
	// fingerprint of the subtree's parameter values, so one named
	// Materialize in a personalized template yields one view per
	// distinct parameter binding. Required.
	Name string
	// Async serves a bounded-stale snapshot while a background refresh
	// runs; sync (the default) refreshes on read.
	Async bool
	// MaxStale bounds an async view's serving staleness.
	MaxStale time.Duration
}

// Materialize caches this subtree's result in the engine's materialized
// -view registry: the first request builds it, later requests serve the
// snapshot until a dependency table mutates (sync) or the staleness
// bound expires (async). Wrap the expensive shared PREFIX of a workflow
// — typically an extend step over a whole table — and keep the cheap
// personalized operators outside the wrapper. On an engine without a
// registry the step is transparent.
func (s *Step) Materialize(o MatOptions) *Step {
	return &Step{kind: matStep, mat: o, child: s}
}

// describe renders this single operator for Explain.
func (s *Step) describe() string {
	switch s.kind {
	case relStep:
		return s.table
	case selectStep:
		return "σ[" + s.cond + "]"
	case projectStep:
		return "π{" + strings.Join(s.cols, ",") + "}"
	case joinStep:
		return "⋈[" + s.on + "]"
	case extendStep:
		return fmt.Sprintf("ε[%s: %s→%s as %s]", s.groupBy, s.keyCol, s.valCol, s.as)
	case recommendStep:
		return "▷[" + s.cmp.Label() + " as " + s.scoreAs + "]"
	case blendStep:
		return fmt.Sprintf("blend[%s: %.2g·L + %.2g·R on %s]", s.scoreAs, s.wL, s.wR, s.blendKey)
	case topStep:
		return fmt.Sprintf("top[%d]", s.k)
	case orderStep:
		dir := "asc"
		if s.desc {
			dir = "desc"
		}
		return fmt.Sprintf("order[%s %s]", s.orderCol, dir)
	case matStep:
		mode := "sync"
		if s.mat.Async {
			mode = fmt.Sprintf("async, maxStale=%v", s.mat.MaxStale)
		}
		return fmt.Sprintf("matview[%s: %s]", s.mat.Name, mode)
	}
	return "?"
}

// Validate checks structural well-formedness of the workflow without
// executing it: every operator has its operands, conditions are present,
// and recommend steps carry comparators.
func (s *Step) Validate() error {
	if s == nil {
		return fmt.Errorf("flexrecs: nil workflow step")
	}
	switch s.kind {
	case relStep:
		if s.table == "" {
			return fmt.Errorf("flexrecs: Rel requires a table name")
		}
		return nil
	case selectStep:
		if s.cond == "" {
			return fmt.Errorf("flexrecs: Select requires a condition")
		}
	case projectStep:
		if len(s.cols) == 0 {
			return fmt.Errorf("flexrecs: Project requires at least one column")
		}
	case joinStep:
		if s.on == "" {
			return fmt.Errorf("flexrecs: JoinOn requires a condition")
		}
		if err := s.other.Validate(); err != nil {
			return err
		}
	case extendStep:
		if s.groupBy == "" || s.keyCol == "" || s.valCol == "" || s.as == "" {
			return fmt.Errorf("flexrecs: Extend requires groupBy, key, value and output names")
		}
	case recommendStep:
		if s.cmp == nil {
			return fmt.Errorf("flexrecs: Recommend requires a comparator")
		}
		if err := s.other.Validate(); err != nil {
			return err
		}
	case blendStep:
		if s.blendKey == "" || s.scoreAs == "" {
			return fmt.Errorf("flexrecs: Blend requires key and score column names")
		}
		if err := s.other.Validate(); err != nil {
			return err
		}
	case topStep:
		if s.k <= 0 {
			return fmt.Errorf("flexrecs: Top requires k > 0")
		}
	case orderStep:
		if s.orderCol == "" {
			return fmt.Errorf("flexrecs: OrderBy requires a column")
		}
	case matStep:
		if s.mat.Name == "" {
			return fmt.Errorf("flexrecs: Materialize requires a view name")
		}
	default:
		return fmt.Errorf("flexrecs: unknown step kind %d", s.kind)
	}
	return s.child.Validate()
}

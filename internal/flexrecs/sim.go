package flexrecs

import (
	"math"

	"courserank/internal/textindex"
)

// This file is the FlexRecs similarity-function library — the "functions
// in a library that implement common tasks for recommendations, such as
// computing the Jaccard or Pearson similarity of two sets of objects"
// (paper §3.2). All functions are pure and exported for reuse by the
// hard-coded baseline recommenders in package recommend.

// TokenSet is a deduplicated token set, the unit Jaccard text
// similarity compares. Precomputing it once per string keeps repeated
// comparisons (one reference against a whole catalog) from
// re-tokenizing the same text per pair.
type TokenSet map[string]struct{}

// Tokens builds the token set of a string. Tokenization matches the
// search layer (lowercased, stopwords removed), so "Introduction to
// Programming" and "Introduction to Programming Methodology" compare on
// {introduction, programming} vs {introduction, programming, methodology}.
func Tokens(s string) TokenSet {
	toks := textindex.Tokenize(s)
	set := make(TokenSet, len(toks))
	for _, w := range toks {
		set[w] = struct{}{}
	}
	return set
}

// JaccardTokens computes |A∩B| / |A∪B| over two token sets, in [0,1].
// Two empty sets have similarity 0.
func JaccardTokens(a, b TokenSet) float64 {
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	inter := 0
	for w := range small {
		if _, ok := big[w]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// JaccardAgainst computes the Jaccard similarity between a raw token
// slice (as Tokenize produces; duplicates tolerated) and a precomputed
// reference set. Short slices — titles, the common case in the
// catalog-vs-reference comparison loop — deduplicate with a nested
// scan so no map is built per candidate row; longer text attributes
// fall back to a set to stay linear.
func JaccardAgainst(tokens []string, ref TokenSet) float64 {
	uniq, inter := 0, 0
	if len(tokens) > 24 {
		set := make(TokenSet, len(tokens))
		for _, w := range tokens {
			set[w] = struct{}{}
		}
		uniq = len(set)
		for w := range set {
			if _, ok := ref[w]; ok {
				inter++
			}
		}
	} else {
		for i, w := range tokens {
			dup := false
			for j := 0; j < i; j++ {
				if tokens[j] == w {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			uniq++
			if _, ok := ref[w]; ok {
				inter++
			}
		}
	}
	union := uniq + len(ref) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// JaccardText computes the Jaccard similarity of the token sets of two
// strings: |A∩B| / |A∪B|, in [0,1].
func JaccardText(a, b string) float64 {
	return JaccardAgainst(textindex.Tokenize(a), Tokens(b))
}

// commonKeys returns the values of a and b on their shared keys.
func commonKeys(a, b Vector) (av, bv []float64) {
	for k, x := range a {
		if y, ok := b[k]; ok {
			av = append(av, x)
			bv = append(bv, y)
		}
	}
	return av, bv
}

// InvEuclidean computes 1 / (1 + d) where d is the Euclidean distance
// between two sparse vectors over their common keys — the
// "inv_Euclidean" function of Figure 5(b). Vectors with no common key
// have similarity 0 (nothing comparable). The accumulation streams over
// the smaller vector rather than materializing the common keys: this
// runs once per candidate pair in the CF hot loop.
func InvEuclidean(a, b Vector) float64 {
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	n := 0
	sum := 0.0
	for k, x := range small {
		if y, ok := big[k]; ok {
			d := x - y
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return 1 / (1 + math.Sqrt(sum))
}

// Cosine computes the cosine similarity of two sparse vectors with
// missing keys treated as zero (the standard sparse definition): the dot
// product runs over common keys but each norm spans the whole vector, so
// a pair with a single shared rating does not degenerate to similarity
// 1. Zero-norm vectors have similarity 0.
func Cosine(a, b Vector) float64 {
	var dot float64
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	for k, x := range small {
		if y, ok := big[k]; ok {
			dot += x * y
		}
	}
	if dot == 0 {
		return 0
	}
	var na, nb float64
	for _, x := range a {
		na += x * x
	}
	for _, y := range b {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Pearson computes the Pearson correlation of two sparse vectors over
// their common keys, in [-1,1]. It requires at least two common keys and
// non-degenerate variance; otherwise it returns 0.
func Pearson(a, b Vector) float64 {
	av, bv := commonKeys(a, b)
	n := float64(len(av))
	if n < 2 {
		return 0
	}
	var sa, sb float64
	for i := range av {
		sa += av[i]
		sb += bv[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range av {
		da, db := av[i]-ma, bv[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}

// Overlap computes the overlap coefficient of the key sets of two
// vectors: |A∩B| / min(|A|,|B|), in [0,1].
func Overlap(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	inter := 0
	for k := range small {
		if _, ok := big[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(small))
}

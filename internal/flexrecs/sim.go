package flexrecs

import (
	"math"

	"courserank/internal/textindex"
)

// This file is the FlexRecs similarity-function library — the "functions
// in a library that implement common tasks for recommendations, such as
// computing the Jaccard or Pearson similarity of two sets of objects"
// (paper §3.2). All functions are pure and exported for reuse by the
// hard-coded baseline recommenders in package recommend.

// JaccardText computes the Jaccard similarity of the token sets of two
// strings: |A∩B| / |A∪B|, in [0,1]. Tokenization matches the search
// layer (lowercased, stopwords removed), so "Introduction to
// Programming" and "Introduction to Programming Methodology" compare on
// {introduction, programming} vs {introduction, programming, methodology}.
func JaccardText(a, b string) float64 {
	ta, tb := textindex.Tokenize(a), textindex.Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 0
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, w := range ta {
		set[w] |= 1
	}
	for _, w := range tb {
		set[w] |= 2
	}
	inter := 0
	for _, m := range set {
		if m == 3 {
			inter++
		}
	}
	if len(set) == 0 {
		return 0
	}
	return float64(inter) / float64(len(set))
}

// commonKeys returns the values of a and b on their shared keys.
func commonKeys(a, b Vector) (av, bv []float64) {
	for k, x := range a {
		if y, ok := b[k]; ok {
			av = append(av, x)
			bv = append(bv, y)
		}
	}
	return av, bv
}

// InvEuclidean computes 1 / (1 + d) where d is the Euclidean distance
// between two sparse vectors over their common keys — the
// "inv_Euclidean" function of Figure 5(b). Vectors with no common key
// have similarity 0 (nothing comparable).
func InvEuclidean(a, b Vector) float64 {
	av, bv := commonKeys(a, b)
	if len(av) == 0 {
		return 0
	}
	sum := 0.0
	for i := range av {
		d := av[i] - bv[i]
		sum += d * d
	}
	return 1 / (1 + math.Sqrt(sum))
}

// Cosine computes the cosine similarity of two sparse vectors with
// missing keys treated as zero (the standard sparse definition): the dot
// product runs over common keys but each norm spans the whole vector, so
// a pair with a single shared rating does not degenerate to similarity
// 1. Zero-norm vectors have similarity 0.
func Cosine(a, b Vector) float64 {
	var dot float64
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	for k, x := range small {
		if y, ok := big[k]; ok {
			dot += x * y
		}
	}
	if dot == 0 {
		return 0
	}
	var na, nb float64
	for _, x := range a {
		na += x * x
	}
	for _, y := range b {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Pearson computes the Pearson correlation of two sparse vectors over
// their common keys, in [-1,1]. It requires at least two common keys and
// non-degenerate variance; otherwise it returns 0.
func Pearson(a, b Vector) float64 {
	av, bv := commonKeys(a, b)
	n := float64(len(av))
	if n < 2 {
		return 0
	}
	var sa, sb float64
	for i := range av {
		sa += av[i]
		sb += bv[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range av {
		da, db := av[i]-ma, bv[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}

// Overlap computes the overlap coefficient of the key sets of two
// vectors: |A∩B| / min(|A|,|B|), in [0,1].
func Overlap(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	inter := 0
	for k := range small {
		if _, ok := big[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(small))
}

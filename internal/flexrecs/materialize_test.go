package flexrecs

import (
	"reflect"
	"strings"
	"testing"

	"courserank/internal/matview"
)

// deptPopular is the department-popular shape: the reference side —
// every student's rating vector — wrapped in Materialize so all
// departments share one build.
func deptPopular(dep string) *Step {
	return Recommend(
		Rel("Courses").Select("DepID = ?", dep),
		Rel("Comments").Project("SuID", "CourseID", "Rating").
			Extend("SuID", "CourseID", "Rating", "Ratings").
			Materialize(MatOptions{Name: "ratings-extend"}),
		AvgOf("CourseID", "Ratings"),
	).Top(10)
}

func TestMaterializeParityAndServing(t *testing.T) {
	db := paperDB(t)
	plain := NewEngine(db) // no registry: Materialize is transparent
	mat := NewEngineOver(plain.SQL())
	reg := matview.NewRegistry(db, 1)
	mat.UseMatviews(reg)

	want, err := plain.Run(deptPopular("CS"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := mat.Run(deptPopular("CS"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("materialized run diverged:\n got %v\nwant %v", got.Rows, want.Rows)
	}
	if h, s, m := mat.MatStats(); h != 0 || s != 0 || m != 1 {
		t.Fatalf("cold MatStats = %d/%d/%d, want 0 hits, 0 stale, 1 miss", h, s, m)
	}

	// A different department reuses the SAME view: the reference prefix
	// has no department parameter.
	if _, err := mat.Run(deptPopular("HIST")); err != nil {
		t.Fatal(err)
	}
	if h, _, m := mat.MatStats(); h != 1 || m != 1 {
		t.Fatalf("warm MatStats hits=%d misses=%d, want the second department to hit", h, m)
	}
	if len(reg.Views()) != 1 {
		t.Fatalf("registered %d views, want 1 shared across departments", len(reg.Views()))
	}

	// DML invalidates: a new rating must appear in the next run.
	if _, err := plain.SQL().Exec(`INSERT INTO Comments VALUES (447, 4, 2008, 'Aut', 'neat', 5, 'd')`); err != nil {
		t.Fatal(err)
	}
	res, err := mat.Run(deptPopular("HIST"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := plain.Run(deptPopular("HIST"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, fresh.Rows) {
		t.Fatalf("post-DML materialized run diverged:\n got %v\nwant %v", res.Rows, fresh.Rows)
	}
	if _, _, m := mat.MatStats(); m != 2 {
		t.Fatalf("misses = %d, want the DML to force a rebuild", m)
	}
}

// TestMaterializeSnapshotNotMutated guards the serve-side copy: the
// recommend operator sorts its target in place, so serving the shared
// snapshot without a fresh row slice would reorder it under other
// readers.
func TestMaterializeSnapshotNotMutated(t *testing.T) {
	db := paperDB(t)
	e := NewEngine(db)
	e.UseMatviews(matview.NewRegistry(db, 1))

	// Materialize a plain projection, then ORDER it two different ways:
	// both runs serve the same snapshot and sort their own copy.
	base := func() *Step {
		return Rel("Comments").Project("SuID", "CourseID", "Rating").
			Materialize(MatOptions{Name: "comments-proj"})
	}
	asc, err := e.Run(base().OrderBy("Rating", false))
	if err != nil {
		t.Fatal(err)
	}
	desc, err := e.Run(base().OrderBy("Rating", true))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(asc.Rows, desc.Rows) {
		t.Fatal("asc and desc runs returned identical row orders")
	}
	again, err := e.Run(base().OrderBy("Rating", false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(asc.Rows, again.Rows) {
		t.Fatal("snapshot was mutated by an earlier run's in-place sort")
	}
}

func TestMaterializeKeysOnArgsAndShape(t *testing.T) {
	db := paperDB(t)
	e := NewEngine(db)
	reg := matview.NewRegistry(db, 1)
	e.UseMatviews(reg)

	one := func(student int64) *Step {
		return Rel("Comments").Select("SuID = ?", student).
			Extend("SuID", "CourseID", "Rating", "Ratings").
			Materialize(MatOptions{Name: "per-student"})
	}
	r444, err := e.Run(one(444))
	if err != nil {
		t.Fatal(err)
	}
	r446, err := e.Run(one(446))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r444.Rows, r446.Rows) {
		t.Fatal("different parameter bindings served the same view")
	}
	if len(reg.Views()) != 2 {
		t.Fatalf("registered %d views, want one per binding", len(reg.Views()))
	}
	// Same name over a structurally different subtree must not collide.
	other := Rel("Students").Project("SuID", "GPA").
		Materialize(MatOptions{Name: "per-student"})
	if _, err := e.Run(other); err != nil {
		t.Fatal(err)
	}
	if len(reg.Views()) != 3 {
		t.Fatalf("registered %d views, want a distinct view for the distinct shape", len(reg.Views()))
	}
}

func TestMaterializeExplainAnnotates(t *testing.T) {
	db := paperDB(t)
	e := NewEngine(db)
	e.UseMatviews(matview.NewRegistry(db, 1))
	wf := deptPopular("CS")

	cold := e.Explain(wf)
	if !strings.Contains(cold, "matview[ratings-extend: sync]") || !strings.Contains(cold, "cold") {
		t.Fatalf("cold explain missing matview annotation:\n%s", cold)
	}
	if _, err := e.Run(wf); err != nil {
		t.Fatal(err)
	}
	warm := e.Explain(deptPopular("HIST"))
	if !strings.Contains(warm, "matview hit (age=") {
		t.Fatalf("warm explain missing hit annotation:\n%s", warm)
	}

	bare := NewEngine(db) // no registry
	if out := bare.Explain(wf); !strings.Contains(out, "no registry") {
		t.Fatalf("registry-less explain should say the step is transparent:\n%s", out)
	}
}

func TestMaterializeValidate(t *testing.T) {
	bad := Rel("Comments").Materialize(MatOptions{})
	if err := bad.Validate(); err == nil {
		t.Fatal("Materialize without a name should fail validation")
	}
}

package flexrecs

import (
	"fmt"

	"courserank/internal/relation"
	"courserank/internal/textindex"
)

// Comparator scores one target tuple against the set of reference
// tuples inside a recommend operator. Implementations resolve their
// attribute columns once per execution via bind.
type Comparator interface {
	// Label renders the comparator the way the paper annotates recommend
	// triangles, e.g. "Jaccard[Title]" or "inv_Euclidean[Ratings]".
	Label() string
	// bind resolves columns against the target and reference schemas and
	// returns the scoring closure.
	bind(target, ref *Relation) (func(trow []any) (float64, error), error)
}

// attrString extracts a string attribute from a tuple.
func attrString(row []any, idx int) (string, error) {
	v := row[idx]
	if v == nil {
		return "", nil
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("flexrecs: attribute is %T, want string", v)
	}
	return s, nil
}

// attrVector extracts a Vector attribute from a tuple.
func attrVector(row []any, idx int) (Vector, error) {
	v := row[idx]
	if v == nil {
		return nil, nil
	}
	vec, ok := v.(Vector)
	if !ok {
		return nil, fmt.Errorf("flexrecs: attribute is %T, want Vector (did you Extend first?)", v)
	}
	return vec, nil
}

// jaccardCmp compares a string attribute by token-set Jaccard; the
// target's score is its best similarity to any reference tuple.
type jaccardCmp struct{ attr string }

// JaccardOn compares the named string attribute with token-set Jaccard
// similarity — "Jaccard[Title]" in Figure 5(a).
func JaccardOn(attr string) Comparator { return &jaccardCmp{attr: attr} }

func (c *jaccardCmp) Label() string { return "Jaccard[" + c.attr + "]" }

func (c *jaccardCmp) bind(target, ref *Relation) (func([]any) (float64, error), error) {
	ti, ok := target.Col(c.attr)
	if !ok {
		return nil, fmt.Errorf("flexrecs: target has no attribute %q", c.attr)
	}
	ri, ok := ref.Col(c.attr)
	if !ok {
		return nil, fmt.Errorf("flexrecs: reference has no attribute %q", c.attr)
	}
	// Tokenize every reference once; each target then tokenizes once and
	// intersects, instead of re-tokenizing both sides per pair.
	refSets := make([]TokenSet, 0, len(ref.Rows))
	for _, r := range ref.Rows {
		s, err := attrString(r, ri)
		if err != nil {
			return nil, err
		}
		refSets = append(refSets, Tokens(s))
	}
	// recommend drives the closure sequentially, so one token buffer
	// can serve every target row — tokens are consumed by the Jaccard
	// intersections below and never escape a call.
	var tokBuf []string
	return func(trow []any) (float64, error) {
		s, err := attrString(trow, ti)
		if err != nil {
			return 0, err
		}
		tokBuf = textindex.TokenizeInto(s, tokBuf)
		best := 0.0
		for _, rt := range refSets {
			if j := JaccardAgainst(tokBuf, rt); j > best {
				best = j
			}
		}
		return best, nil
	}, nil
}

// vectorCmp compares a Vector attribute with a pluggable pairwise
// function; the target's score is its best similarity to any reference.
type vectorCmp struct {
	attr string
	name string
	fn   func(a, b Vector) float64
}

// InvEuclideanOn compares the named Vector attribute by inverse
// Euclidean distance — "inv_Euclidean[Ratings]" in Figure 5(b).
func InvEuclideanOn(attr string) Comparator {
	return &vectorCmp{attr: attr, name: "inv_Euclidean", fn: InvEuclidean}
}

// CosineOn compares the named Vector attribute by cosine similarity.
func CosineOn(attr string) Comparator {
	return &vectorCmp{attr: attr, name: "Cosine", fn: Cosine}
}

// PearsonOn compares the named Vector attribute by Pearson correlation.
func PearsonOn(attr string) Comparator {
	return &vectorCmp{attr: attr, name: "Pearson", fn: Pearson}
}

// OverlapOn compares the named Vector attribute by key-set overlap.
func OverlapOn(attr string) Comparator {
	return &vectorCmp{attr: attr, name: "Overlap", fn: Overlap}
}

func (c *vectorCmp) Label() string { return c.name + "[" + c.attr + "]" }

func (c *vectorCmp) bind(target, ref *Relation) (func([]any) (float64, error), error) {
	ti, ok := target.Col(c.attr)
	if !ok {
		return nil, fmt.Errorf("flexrecs: target has no attribute %q", c.attr)
	}
	ri, ok := ref.Col(c.attr)
	if !ok {
		return nil, fmt.Errorf("flexrecs: reference has no attribute %q", c.attr)
	}
	refVecs := make([]Vector, 0, len(ref.Rows))
	for _, r := range ref.Rows {
		v, err := attrVector(r, ri)
		if err != nil {
			return nil, err
		}
		refVecs = append(refVecs, v)
	}
	return func(trow []any) (float64, error) {
		v, err := attrVector(trow, ti)
		if err != nil {
			return 0, err
		}
		best := 0.0
		for _, rv := range refVecs {
			if s := c.fn(v, rv); s > best {
				best = s
			}
		}
		return best, nil
	}, nil
}

// wavgCmp scores a target tuple by the weighted average of the
// reference tuples' vector values at the target's key — the
// "Identify[CourseID, Ratings], W_Avg[Score]" combination closing
// Figure 5(b): a course's score is the average of the ratings given by
// the similar students, weighted by how similar each student is.
type wavgCmp struct {
	keyAttr    string // target column whose value indexes the vectors
	vecAttr    string // reference Vector column
	weightAttr string // reference weight column (e.g. prior Score)
}

// WeightedAvg builds the Identify+W_Avg comparator.
func WeightedAvg(keyAttr, vecAttr, weightAttr string) Comparator {
	return &wavgCmp{keyAttr: keyAttr, vecAttr: vecAttr, weightAttr: weightAttr}
}

// AvgOf is WeightedAvg with every reference weighted equally — a plain
// average of the reference vectors' values at the target key.
func AvgOf(keyAttr, vecAttr string) Comparator {
	return &wavgCmp{keyAttr: keyAttr, vecAttr: vecAttr}
}

func (c *wavgCmp) Label() string {
	if c.weightAttr == "" {
		return fmt.Sprintf("Identify[%s,%s], Avg", c.keyAttr, c.vecAttr)
	}
	return fmt.Sprintf("Identify[%s,%s], W_Avg[%s]", c.keyAttr, c.vecAttr, c.weightAttr)
}

func (c *wavgCmp) bind(target, ref *Relation) (func([]any) (float64, error), error) {
	ki, ok := target.Col(c.keyAttr)
	if !ok {
		return nil, fmt.Errorf("flexrecs: target has no attribute %q", c.keyAttr)
	}
	vi, ok := ref.Col(c.vecAttr)
	if !ok {
		return nil, fmt.Errorf("flexrecs: reference has no attribute %q", c.vecAttr)
	}
	wi := -1
	if c.weightAttr != "" {
		if wi, ok = ref.Col(c.weightAttr); !ok {
			return nil, fmt.Errorf("flexrecs: reference has no attribute %q", c.weightAttr)
		}
	}
	// Fold the reference vectors into one aggregation table up front:
	// scoring a target is then a single lookup instead of a pass over
	// every reference vector per target row.
	type agg struct{ num, den float64 }
	table := map[relation.Value]agg{}
	for _, r := range ref.Rows {
		vec, err := attrVector(r, vi)
		if err != nil {
			return nil, err
		}
		w := 1.0
		if wi >= 0 {
			if w, err = toWeight(r[wi]); err != nil {
				return nil, err
			}
		}
		if w <= 0 {
			continue
		}
		for k, v := range vec {
			a := table[k]
			a.num += w * v
			a.den += w
			table[k] = a
		}
	}
	return func(trow []any) (float64, error) {
		key, err := relation.Normalize(trow[ki])
		if err != nil {
			return 0, err
		}
		a := table[key]
		if a.den == 0 {
			return 0, nil
		}
		return a.num / a.den, nil
	}, nil
}

func toWeight(v any) (float64, error) {
	switch x := v.(type) {
	case nil:
		return 0, nil
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	}
	return 0, fmt.Errorf("flexrecs: weight is %T, want number", v)
}

package flexrecs

import (
	"fmt"
	"strings"
	"time"

	"courserank/internal/matview"
	"courserank/internal/sqlmini"
)

// EXPLAIN ANALYZE for workflows: the workflow executes for real and
// the report is Explain's operator tree annotated with per-step
// actuals. SQL-compiled subtrees run through the backend's analyze
// path when it has one — single-node statements and cluster statements
// both do — so their lines carry the fully annotated physical plan
// (per-operator rows/batches/time, shard fan-out, short-circuit).
// Materialize steps report how THIS request was served: a matview hit
// with the snapshot's age and freshness, a stale serve, or the build a
// cold view paid. Step times are inclusive of the step's operands,
// matching the SQL layer's convention.

// queryAnalyzer is the optional analyze surface of a PreparedQuery.
// *sqlmini.Stmt and *shard.Stmt both satisfy it; a backend whose
// statements don't still analyzes, just without per-operator plans.
type queryAnalyzer interface {
	QueryAnalyze(args ...any) (*sqlmini.Result, string, error)
}

// analyzeNode is one rendered line of the report plus its children —
// built bottom-up because a step's actuals are known only after its
// subtree ran.
type analyzeNode struct {
	line     string
	sub      []string // extra own lines (indented plan text)
	children []*analyzeNode
}

func (n *analyzeNode) render(depth int, b *strings.Builder) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s\n", indent, n.line)
	for _, s := range n.sub {
		fmt.Fprintf(b, "%s  | %s\n", indent, s)
	}
	for _, c := range n.children {
		c.render(depth+1, b)
	}
}

// RunAnalyze validates and executes a workflow with instrumentation,
// returning the result and the annotated report.
func (e *Engine) RunAnalyze(w *Step) (*Relation, string, error) {
	if err := w.Validate(); err != nil {
		return nil, "", err
	}
	t0 := time.Now()
	rel, root, err := e.analyzeStep(w)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	root.render(0, &b)
	fmt.Fprintf(&b, "analyzed workflow: %d rows out, total %s\n",
		len(rel.Rows), time.Since(t0).Round(time.Microsecond))
	return rel, b.String(), nil
}

// ExplainAnalyze is RunAnalyze discarding the rows.
func (e *Engine) ExplainAnalyze(w *Step) (string, error) {
	_, report, err := e.RunAnalyze(w)
	return report, err
}

func (e *Engine) analyzeStep(s *Step) (*Relation, *analyzeNode, error) {
	if sqlable(s) {
		return e.analyzeSQL(s)
	}
	if s.kind == matStep {
		return e.analyzeMat(s)
	}
	node := &analyzeNode{}
	run := func(cs *Step) (*Relation, error) {
		rel, child, err := e.analyzeStep(cs)
		if err != nil {
			return nil, err
		}
		node.children = append(node.children, child)
		return rel, nil
	}
	t0 := time.Now()
	rel, err := e.applyStep(s, run)
	if err != nil {
		return nil, nil, err
	}
	node.line = fmt.Sprintf("%s (actual rows=%d time=%s)",
		s.describe(), len(rel.Rows), time.Since(t0).Round(time.Microsecond))
	return rel, node, nil
}

// analyzeSQL runs one compiled subtree, preferring the backend
// statement's analyze path for the annotated physical plan.
func (e *Engine) analyzeSQL(s *Step) (*Relation, *analyzeNode, error) {
	cs, err := e.compiledFor(s)
	if err != nil {
		return nil, nil, err
	}
	args := gatherShapeArgs(s, nil)
	for i, j := 0, len(args)-1; i < j; i, j = i+1, j-1 {
		args[i], args[j] = args[j], args[i]
	}
	var res *sqlmini.Result
	var plan string
	t0 := time.Now()
	if qa, ok := cs.stmt.(queryAnalyzer); ok {
		res, plan, err = qa.QueryAnalyze(args...)
	} else {
		res, err = cs.stmt.Query(args...)
	}
	d := time.Since(t0)
	if err != nil {
		return nil, nil, fmt.Errorf("flexrecs: executing %q: %w", cs.sql, err)
	}
	rel := &Relation{Cols: res.Columns, Rows: make([][]any, len(res.Rows))}
	for i, r := range res.Rows {
		rel.Rows[i] = r
	}
	node := &analyzeNode{}
	head := "SQL> " + cs.sql
	if len(args) > 0 {
		head += fmt.Sprintf("  -- args %v", args)
	}
	node.line = fmt.Sprintf("%s (actual rows=%d time=%s)", head, len(rel.Rows), d.Round(time.Microsecond))
	if plan != "" {
		node.sub = strings.Split(strings.TrimRight(plan, "\n"), "\n")
	}
	return rel, node, nil
}

// analyzeMat runs one Materialize step, annotating how it was served.
// A hit or stale serve never ran the child, so the line is the whole
// story; a build ran the child uninstrumented inside the registry's
// single-flight, and the line says what that cost.
func (e *Engine) analyzeMat(s *Step) (*Relation, *analyzeNode, error) {
	t0 := time.Now()
	rel, serve, hadRegistry, err := e.runMatServe(s)
	if err != nil {
		return nil, nil, err
	}
	d := time.Since(t0).Round(time.Microsecond)
	var how string
	switch {
	case !hadRegistry:
		how = "no registry (transparent, ran child)"
	case serve.Kind == matview.ServeFresh:
		how = fmt.Sprintf("matview hit (age=%v, fresh)", serve.Age.Round(time.Millisecond))
	case serve.Kind == matview.ServeStale:
		how = fmt.Sprintf("matview hit (age=%v, stale for %v)",
			serve.Age.Round(time.Millisecond), serve.StaleFor.Round(time.Millisecond))
	default:
		how = "matview miss (built by this request)"
	}
	node := &analyzeNode{line: fmt.Sprintf("%s — %s (actual rows=%d time=%s)", s.describe(), how, len(rel.Rows), d)}
	return rel, node, nil
}

package flexrecs

import (
	"reflect"
	"strings"
	"testing"

	"courserank/internal/matview"
)

// TestRunAnalyzeAnnotatesWorkflow: a hybrid workflow's analyze report
// shows the operator tree with per-step actuals, SQL leaves with their
// fully annotated physical plans, and results identical to Run.
func TestRunAnalyzeAnnotatesWorkflow(t *testing.T) {
	e := NewEngine(paperDB(t))
	wf := Recommend(
		Rel("Courses").Select("Year = 2008"),
		Rel("Courses").Select("Title = ?", "Introduction to Programming"),
		JaccardOn("Title"),
	)
	want, err := e.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	got, report, err := e.RunAnalyze(wf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("RunAnalyze diverged from Run:\n got %v\nwant %v", got.Rows, want.Rows)
	}
	for _, wantFrag := range []string{
		"▷[Jaccard[Title] as Score] (actual rows=4 time=",                  // operator line with actuals
		"SQL> SELECT * FROM Courses WHERE Year = 2008 (actual rows=4 time=", // compiled leaf
		"-- args [Introduction to Programming]",                             // bound leaf args
		"| scan Courses",                        // the SQL engine's annotated plan, piped
		"| analyzed: ",                          // per-statement footer rode along
		"analyzed workflow: 4 rows out, total ", // workflow footer
	} {
		if !strings.Contains(report, wantFrag) {
			t.Errorf("report missing %q:\n%s", wantFrag, report)
		}
	}
}

// TestRunAnalyzeMatviewAnnotations: Materialize lines say how the
// request was served — built when cold, hit with age and freshness
// when warm.
func TestRunAnalyzeMatviewAnnotations(t *testing.T) {
	db := paperDB(t)
	e := NewEngine(db)
	e.UseMatviews(matview.NewRegistry(db, 1))

	_, cold, err := e.RunAnalyze(deptPopular("CS"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold, "matview miss (built by this request)") {
		t.Fatalf("cold run not annotated as a build:\n%s", cold)
	}
	_, warm, err := e.RunAnalyze(deptPopular("HIST"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm, "matview hit (age=") || !strings.Contains(warm, ", fresh)") {
		t.Fatalf("warm run not annotated as a fresh hit:\n%s", warm)
	}

	// Without a registry the step is transparent and says so.
	plain := NewEngine(db)
	_, rep, err := plain.RunAnalyze(deptPopular("CS"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "no registry (transparent, ran child)") {
		t.Fatalf("transparent Materialize not annotated:\n%s", rep)
	}
}

// Package flexrecs implements the paper's FlexRecs engine (§3.2):
// recommendation strategies expressed declaratively as workflows over
// structured data. A workflow combines classical relational operators
// (select σ, project π, join) with an extend operator (ε) that nests a
// set of key/value pairs as a vector-valued attribute, and a special
// recommend operator (▷) that ranks one set of tuples by comparing them
// to another set using a pluggable similarity function (Jaccard, Pearson,
// cosine, inverse Euclidean, weighted average).
//
// Decoupling strategy definition from execution lets new recommendation
// types be defined without touching engine code, and lets end users pick
// and personalize strategies. Relational subtrees of a workflow are
// compiled into SQL statements executed by the conventional DBMS
// (package sqlmini); extend, recommend and post-filters over nested
// attributes run as external functions — exactly the hybrid execution
// the paper describes.
package flexrecs

import (
	"fmt"
	"strings"

	"courserank/internal/relation"
)

// Vector is a nested set-valued attribute produced by the extend
// operator: a sparse map from key (e.g. CourseID) to numeric value
// (e.g. Rating). Keys are canonical relation values.
type Vector map[relation.Value]float64

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// Relation is a materialized intermediate result of a workflow. Cells
// hold either scalar relation values or Vector attributes created by
// extend.
type Relation struct {
	Cols []string
	Rows [][]any
}

// Col returns the position of the named column, case-insensitively.
func (r *Relation) Col(name string) (int, bool) {
	for i, c := range r.Cols {
		if strings.EqualFold(c, name) {
			return i, true
		}
	}
	return 0, false
}

// MustCol is Col that panics on a missing column; for callers that just
// constructed the relation.
func (r *Relation) MustCol(name string) int {
	i, ok := r.Col(name)
	if !ok {
		panic(fmt.Sprintf("flexrecs: no column %q in %v", name, r.Cols))
	}
	return i
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Strings renders one row for display.
func (r *Relation) Strings(i int) []string {
	out := make([]string, len(r.Cols))
	for j, v := range r.Rows[i] {
		switch x := v.(type) {
		case Vector:
			out[j] = fmt.Sprintf("<vector:%d>", len(x))
		default:
			out[j] = relation.Format(x)
		}
	}
	return out
}

package flexrecs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"courserank/internal/matview"
)

// This file wires Materialize steps to the matview registry. A matStep
// caches its child subtree's result as a materialized view: the first
// request registers the view (build = run the child), later requests
// serve the snapshot — single-flighted when cold, stale-bounded when
// async. Without UseMatviews the step is transparent and simply runs
// its child.

// UseMatviews attaches a materialized-view registry; Materialize steps
// in workflows executed after this call cache through it. Call it at
// wiring time, before the engine serves requests — the field is not
// synchronized against concurrent Run calls. The Site facade shares one
// registry (and its refresher pool) across FlexRecs and the baseline
// recommenders.
func (e *Engine) UseMatviews(reg *matview.Registry) { e.views = reg }

// Matviews returns the attached registry, nil when none.
func (e *Engine) Matviews() *matview.Registry { return e.views }

// MatStats reports how Materialize steps were served: a hit returned a
// fresh snapshot, a stale hit served inside an async bound while a
// refresh ran behind it, and a miss blocked on a (single-flighted)
// build. Engines without a registry report zeros.
func (e *Engine) MatStats() (hits, stale, misses uint64) {
	return e.matHits.Load(), e.matStale.Load(), e.matMisses.Load()
}

// matKey derives the registry key for a matStep: the declared name, a
// short fingerprint of the child subtree's SHAPE and the serving
// options (so a reused name over a different tree — e.g. a band width
// baked into an ON clause — or under different async/staleness options
// cannot serve the wrong view), and the subtree's parameter values (so
// one Materialize in a personalized template yields one view per
// binding). Argument values render with their dynamic type, keeping
// int64(1) and "1" — or differently grouped args that stringify alike —
// on separate views. Unlike shapeKey/gatherShapeArgs — which only see
// sqlable kinds — the walk here spans EVERY operator: materialized
// prefixes routinely hold extend and recommend steps.
func matKey(s *Step) string {
	var shape strings.Builder
	var args []any
	var walk func(*Step)
	walk = func(s *Step) {
		if s == nil {
			return
		}
		fmt.Fprintf(&shape, "%d|%s", s.kind, s.describe())
		shape.WriteByte(0)
		if s.kind == selectStep {
			args = append(args, s.args...)
		}
		walk(s.child)
		walk(s.other)
	}
	walk(s.child)
	fmt.Fprintf(&shape, "opts|%v|%v", s.mat.Async, s.mat.MaxStale)
	h := fnv.New32a()
	h.Write([]byte(shape.String()))
	key := fmt.Sprintf("flex/%s@%08x", s.mat.Name, h.Sum32())
	if len(args) > 0 {
		var b strings.Builder
		for _, a := range args {
			fmt.Fprintf(&b, "%T:%v\x00", a, a)
		}
		key += "|" + b.String()
	}
	return key
}

// baseTables collects the distinct base-table names a subtree reads —
// the view's dependency set — stripping relation aliases ("Courses c").
func baseTables(s *Step) []string {
	seen := map[string]bool{}
	var walk func(*Step)
	walk = func(s *Step) {
		if s == nil {
			return
		}
		if s.kind == relStep {
			name := s.table
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				name = name[:i]
			}
			seen[name] = true
		}
		walk(s.child)
		walk(s.other)
	}
	walk(s)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// viewFor resolves (lazily registering) the matview behind a matStep.
func (e *Engine) viewFor(s *Step) (*matview.View, error) {
	deps := baseTables(s.child)
	if len(deps) == 0 {
		return nil, fmt.Errorf("flexrecs: Materialize %q wraps a subtree with no base tables", s.mat.Name)
	}
	mode := matview.Sync
	if s.mat.Async {
		mode = matview.Async
	}
	// The build captures the child tree by reference; template builds
	// construct a fresh immutable tree per request, so the captured one
	// stays valid for the view's lifetime.
	child := s.child
	return e.views.GetOrRegister(matview.Options{
		Name:     matKey(s),
		Deps:     deps,
		Mode:     mode,
		MaxStale: s.mat.MaxStale,
		Build: func() (any, error) {
			return e.runStep(child)
		},
	})
}

// runMat executes a matStep: through the registry when one is attached,
// transparently otherwise. Snapshots are shared and immutable, so the
// serve hands downstream operators (which sort and truncate in place) a
// fresh Relation header and row slice; the row cells themselves are
// never mutated by any operator.
func (e *Engine) runMat(s *Step) (*Relation, error) {
	rel, _, _, err := e.runMatServe(s)
	return rel, err
}

// runMatServe is runMat also reporting how the request was served —
// the serve kind and whether a registry was consulted at all — for
// EXPLAIN ANALYZE's matview annotations.
func (e *Engine) runMatServe(s *Step) (*Relation, matview.Serve, bool, error) {
	if e.views == nil {
		rel, err := e.runStep(s.child)
		return rel, matview.Serve{}, false, err
	}
	v, err := e.viewFor(s)
	if err != nil {
		return nil, matview.Serve{}, false, err
	}
	val, serve, err := v.Get()
	if err != nil {
		return nil, matview.Serve{}, false, err
	}
	switch serve.Kind {
	case matview.ServeFresh:
		e.matHits.Add(1)
	case matview.ServeStale:
		e.matStale.Add(1)
	default:
		e.matMisses.Add(1)
	}
	rel := val.(*Relation)
	return &Relation{
		Cols: append([]string(nil), rel.Cols...),
		Rows: append([][]any(nil), rel.Rows...),
	}, serve, true, nil
}

// explainMat renders a matStep for Explain, annotating how a request
// would be served right now: a warm view shows "matview hit" with the
// snapshot's age and freshness, a cold or invalidated one shows the
// build that the next request pays. Peek never builds or counts.
func (e *Engine) explainMat(s *Step) string {
	line := s.describe()
	if e.views == nil {
		return line + " — no registry (transparent)"
	}
	v, ok := e.views.View(matKey(s))
	if !ok {
		return line + " — cold (view not built yet)"
	}
	_, serve, ok := v.Peek()
	if !ok {
		return line + " — cold (view not built yet)"
	}
	state := "fresh"
	if serve.Kind != matview.ServeFresh {
		state = "stale"
	}
	return fmt.Sprintf("%s — matview hit (age=%v, %s)", line, serve.Age.Round(time.Millisecond), state)
}

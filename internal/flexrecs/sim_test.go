package flexrecs

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccardText(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"Introduction to Programming", "Introduction to Programming", 1},
		{"Introduction to Programming", "Advanced Programming", 1.0 / 3}, // {introduction,programming} ∪ {advanced,programming}
		{"Operating Systems", "Greek Science", 0},
		{"", "", 0},
		{"the of and", "x", 0}, // all stopwords on one side
	}
	for _, c := range cases {
		if got := JaccardText(c.a, c.b); !almostEq(got, c.want) {
			t.Errorf("JaccardText(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Properties: Jaccard is symmetric, bounded in [0,1], and 1 on identical
// non-empty token sets.
func TestJaccardProperties(t *testing.T) {
	f := func(a, b string) bool {
		x, y := JaccardText(a, b), JaccardText(b, a)
		if !almostEq(x, y) || x < 0 || x > 1 {
			return false
		}
		self := JaccardText(a, a)
		return self == 0 || almostEq(self, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInvEuclidean(t *testing.T) {
	a := Vector{int64(1): 5, int64(2): 3}
	b := Vector{int64(1): 5, int64(2): 3}
	if got := InvEuclidean(a, b); !almostEq(got, 1) {
		t.Errorf("identical vectors = %v, want 1", got)
	}
	c := Vector{int64(1): 1, int64(2): 0}
	// distance = sqrt(16+9) = 5 → 1/6
	if got := InvEuclidean(a, c); !almostEq(got, 1.0/6) {
		t.Errorf("InvEuclidean = %v, want 1/6", got)
	}
	if got := InvEuclidean(a, Vector{int64(9): 4}); got != 0 {
		t.Errorf("disjoint vectors = %v, want 0", got)
	}
	if got := InvEuclidean(nil, nil); got != 0 {
		t.Errorf("nil vectors = %v", got)
	}
}

func TestCosine(t *testing.T) {
	a := Vector{int64(1): 3, int64(2): 4}
	if got := Cosine(a, a); !almostEq(got, 1) {
		t.Errorf("self cosine = %v", got)
	}
	b := Vector{int64(1): 4, int64(2): -3}
	if got := Cosine(a, b); !almostEq(got, 0) {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, Vector{int64(3): 1}); got != 0 {
		t.Error("disjoint cosine should be 0")
	}
	if got := Cosine(a, Vector{int64(1): 0, int64(2): 0}); got != 0 {
		t.Error("zero-norm cosine should be 0")
	}
}

func TestPearson(t *testing.T) {
	a := Vector{int64(1): 1, int64(2): 2, int64(3): 3}
	b := Vector{int64(1): 2, int64(2): 4, int64(3): 6}
	if got := Pearson(a, b); !almostEq(got, 1) {
		t.Errorf("perfect correlation = %v", got)
	}
	c := Vector{int64(1): 3, int64(2): 2, int64(3): 1}
	if got := Pearson(a, c); !almostEq(got, -1) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(a, Vector{int64(1): 5}); got != 0 {
		t.Error("single common key should be 0")
	}
	flat := Vector{int64(1): 2, int64(2): 2, int64(3): 2}
	if got := Pearson(a, flat); got != 0 {
		t.Error("zero variance should be 0")
	}
}

func TestOverlap(t *testing.T) {
	a := Vector{int64(1): 1, int64(2): 1}
	b := Vector{int64(2): 9, int64(3): 9, int64(4): 9}
	if got := Overlap(a, b); !almostEq(got, 0.5) {
		t.Errorf("Overlap = %v, want 0.5", got)
	}
	if Overlap(a, nil) != 0 {
		t.Error("empty overlap should be 0")
	}
}

// Properties shared by all vector similarities: symmetry and bounds.
func TestVectorSimilarityProperties(t *testing.T) {
	mk := func(ks, vs []uint8) Vector {
		v := Vector{}
		for i := range ks {
			if i >= len(vs) {
				break
			}
			v[int64(ks[i]%8)] = float64(vs[i] % 6)
		}
		return v
	}
	f := func(ka, va, kb, vb []uint8) bool {
		a, b := mk(ka, va), mk(kb, vb)
		for _, fn := range []func(Vector, Vector) float64{InvEuclidean, Cosine, Overlap} {
			x, y := fn(a, b), fn(b, a)
			if !almostEq(x, y) || x < 0 || x > 1+1e-9 {
				return false
			}
		}
		p, q := Pearson(a, b), Pearson(b, a)
		return almostEq(p, q) && p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVectorClone(t *testing.T) {
	a := Vector{int64(1): 2}
	b := a.Clone()
	b[int64(1)] = 9
	if a[int64(1)] != 2 {
		t.Error("Clone must not alias")
	}
}

package flexrecs

import (
	"fmt"
	"sort"
	"strings"

	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// Engine executes workflows. Purely relational subtrees (σ, π, ⋈ over
// base tables) are compiled into single SQL statements run by the
// conventional DBMS; extend, recommend and residual operators over
// nested attributes execute as external functions over materialized
// results — the hybrid strategy of paper §3.2.
type Engine struct {
	sql *sqlmini.Engine
}

// NewEngine builds an engine over the database.
func NewEngine(db *relation.DB) *Engine {
	return &Engine{sql: sqlmini.New(db)}
}

// SQL exposes the underlying SQL engine (used by tests and the facade).
func (e *Engine) SQL() *sqlmini.Engine { return e.sql }

// Run validates and executes a workflow, returning its materialized
// result.
func (e *Engine) Run(w *Step) (*Relation, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return e.runStep(w)
}

// sqlable reports whether the subtree compiles to a single SQL
// statement.
func sqlable(s *Step) bool {
	switch s.kind {
	case relStep:
		return true
	case selectStep, projectStep:
		return sqlable(s.child)
	case joinStep:
		return sqlable(s.child) && sqlable(s.other)
	}
	return false
}

// sqlParts accumulates the pieces of a compiled statement.
type sqlParts struct {
	from  string   // "T" or "T JOIN U ON ... JOIN V ON ..."
	conds []string // WHERE conjuncts, outermost first
	args  []any
	proj  []string // outermost projection wins; empty = *
}

// gather walks a sqlable subtree, collecting FROM/WHERE/projection.
func gather(s *Step, p *sqlParts) error {
	switch s.kind {
	case relStep:
		p.from = s.table
		return nil
	case selectStep:
		p.conds = append(p.conds, s.cond)
		p.args = append(p.args, s.args...)
		return gather(s.child, p)
	case projectStep:
		if len(p.proj) == 0 {
			p.proj = s.cols
		}
		return gather(s.child, p)
	case joinStep:
		if err := gather(s.child, p); err != nil {
			return err
		}
		var right sqlParts
		if err := gather(s.other, &right); err != nil {
			return err
		}
		if strings.Contains(right.from, " JOIN ") {
			return fmt.Errorf("flexrecs: right side of a join must be a base table")
		}
		p.from += " JOIN " + right.from + " ON " + s.on
		p.conds = append(p.conds, right.conds...)
		p.args = append(p.args, right.args...)
		return nil
	}
	return fmt.Errorf("flexrecs: step %s is not SQL-compilable", s.describe())
}

// CompileSQL renders a sqlable subtree as its SQL statement. It is
// exported so Explain output and tests can show the exact statements
// shipped to the DBMS.
func CompileSQL(s *Step) (string, []any, error) {
	var p sqlParts
	if err := gather(s, &p); err != nil {
		return "", nil, err
	}
	sel := "*"
	if len(p.proj) > 0 {
		sel = strings.Join(p.proj, ", ")
	}
	sql := "SELECT " + sel + " FROM " + p.from
	if len(p.conds) > 0 {
		// Conditions were gathered outermost-first; apply innermost first
		// for readability (order is irrelevant under AND).
		for i, j := 0, len(p.conds)-1; i < j; i, j = i+1, j-1 {
			p.conds[i], p.conds[j] = p.conds[j], p.conds[i]
		}
		sql += " WHERE " + strings.Join(p.conds, " AND ")
	}
	// Placeholder args attach in the same outermost-first order the
	// conditions were gathered, so reverse them alongside.
	args := make([]any, 0, len(p.args))
	for i := len(p.args) - 1; i >= 0; i-- {
		args = append(args, p.args[i])
	}
	return sql, args, nil
}

func (e *Engine) runSQL(s *Step) (*Relation, error) {
	sql, args, err := CompileSQL(s)
	if err != nil {
		return nil, err
	}
	res, err := e.sql.Query(sql, args...)
	if err != nil {
		return nil, fmt.Errorf("flexrecs: executing %q: %w", sql, err)
	}
	rel := &Relation{Cols: res.Columns, Rows: make([][]any, len(res.Rows))}
	for i, r := range res.Rows {
		rel.Rows[i] = r
	}
	return rel, nil
}

func (e *Engine) runStep(s *Step) (*Relation, error) {
	if sqlable(s) {
		return e.runSQL(s)
	}
	switch s.kind {
	case selectStep:
		child, err := e.runStep(s.child)
		if err != nil {
			return nil, err
		}
		expr, err := sqlmini.ParseExpr(s.cond, s.args...)
		if err != nil {
			return nil, err
		}
		out := &Relation{Cols: child.Cols}
		for _, row := range child.Rows {
			v, err := sqlmini.EvalExpr(expr, child.Cols, row)
			if err != nil {
				return nil, err
			}
			if relation.Truthy(v) {
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil

	case projectStep:
		child, err := e.runStep(s.child)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(s.cols))
		for i, c := range s.cols {
			ci, ok := child.Col(c)
			if !ok {
				return nil, fmt.Errorf("flexrecs: project: no column %q", c)
			}
			idx[i] = ci
		}
		out := &Relation{Cols: append([]string(nil), s.cols...), Rows: make([][]any, len(child.Rows))}
		for i, row := range child.Rows {
			nr := make([]any, len(idx))
			for j, ci := range idx {
				nr[j] = row[ci]
			}
			out.Rows[i] = nr
		}
		return out, nil

	case joinStep:
		left, err := e.runStep(s.child)
		if err != nil {
			return nil, err
		}
		right, err := e.runStep(s.other)
		if err != nil {
			return nil, err
		}
		return joinRelations(left, right, s.on)

	case extendStep:
		child, err := e.runStep(s.child)
		if err != nil {
			return nil, err
		}
		return extend(child, s.groupBy, s.keyCol, s.valCol, s.as)

	case recommendStep:
		target, err := e.runStep(s.child)
		if err != nil {
			return nil, err
		}
		ref, err := e.runStep(s.other)
		if err != nil {
			return nil, err
		}
		return recommend(target, ref, s.cmp, s.scoreAs)

	case blendStep:
		left, err := e.runStep(s.child)
		if err != nil {
			return nil, err
		}
		right, err := e.runStep(s.other)
		if err != nil {
			return nil, err
		}
		return blend(left, right, s.blendKey, s.scoreAs, s.wL, s.wR)

	case topStep:
		child, err := e.runStep(s.child)
		if err != nil {
			return nil, err
		}
		if len(child.Rows) > s.k {
			child.Rows = child.Rows[:s.k]
		}
		return child, nil

	case orderStep:
		child, err := e.runStep(s.child)
		if err != nil {
			return nil, err
		}
		ci, ok := child.Col(s.orderCol)
		if !ok {
			return nil, fmt.Errorf("flexrecs: order: no column %q", s.orderCol)
		}
		sort.SliceStable(child.Rows, func(a, b int) bool {
			c := relation.Compare(child.Rows[a][ci], child.Rows[b][ci])
			if s.desc {
				return c > 0
			}
			return c < 0
		})
		return child, nil
	}
	return nil, fmt.Errorf("flexrecs: cannot execute step %s", s.describe())
}

// joinRelations nested-loop-joins two materialized relations on a SQL
// condition evaluated over the concatenated row. Column names are the
// concatenation of both sides' names; ambiguous references in the
// condition are an error surfaced by the evaluator.
func joinRelations(left, right *Relation, on string) (*Relation, error) {
	expr, err := sqlmini.ParseExpr(on)
	if err != nil {
		return nil, err
	}
	cols := append(append([]string{}, left.Cols...), right.Cols...)
	out := &Relation{Cols: cols}
	for _, l := range left.Rows {
		for _, r := range right.Rows {
			row := make([]any, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			v, err := sqlmini.EvalExpr(expr, cols, row)
			if err != nil {
				return nil, err
			}
			if relation.Truthy(v) {
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

// extend implements ε: group child rows by groupBy and nest each group's
// (key, value) pairs as a Vector attribute. Rows with NULL key or
// non-numeric value are skipped — a student's unrated comment
// contributes nothing to the rating vector.
func extend(child *Relation, groupBy, keyCol, valCol, as string) (*Relation, error) {
	gi, ok := child.Col(groupBy)
	if !ok {
		return nil, fmt.Errorf("flexrecs: extend: no column %q", groupBy)
	}
	ki, ok := child.Col(keyCol)
	if !ok {
		return nil, fmt.Errorf("flexrecs: extend: no column %q", keyCol)
	}
	vi, ok := child.Col(valCol)
	if !ok {
		return nil, fmt.Errorf("flexrecs: extend: no column %q", valCol)
	}
	order := []relation.Value{}
	groups := map[relation.Value]Vector{}
	for _, row := range child.Rows {
		g, err := relation.Normalize(row[gi])
		if err != nil {
			return nil, err
		}
		if g == nil {
			continue
		}
		k, err := relation.Normalize(row[ki])
		if err != nil {
			return nil, err
		}
		if k == nil {
			continue
		}
		var val float64
		switch x := row[vi].(type) {
		case int64:
			val = float64(x)
		case float64:
			val = x
		case nil:
			continue
		default:
			return nil, fmt.Errorf("flexrecs: extend: value column %q is %T, want number", valCol, row[vi])
		}
		vec, seen := groups[g]
		if !seen {
			vec = Vector{}
			groups[g] = vec
			order = append(order, g)
		}
		vec[k] = val
	}
	out := &Relation{Cols: []string{groupBy, as}, Rows: make([][]any, 0, len(order))}
	for _, g := range order {
		out.Rows = append(out.Rows, []any{g, groups[g]})
	}
	return out, nil
}

// recommend implements ▷: score every target row against the reference
// set, append the score column, and sort best-first (ties broken by
// original order for determinism).
func recommend(target, ref *Relation, cmp Comparator, scoreAs string) (*Relation, error) {
	if _, exists := target.Col(scoreAs); exists {
		return nil, fmt.Errorf("flexrecs: recommend: target already has column %q", scoreAs)
	}
	score, err := cmp.bind(target, ref)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: append(append([]string{}, target.Cols...), scoreAs)}
	out.Rows = make([][]any, len(target.Rows))
	for i, row := range target.Rows {
		s, err := score(row)
		if err != nil {
			return nil, err
		}
		nr := make([]any, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, s)
		out.Rows[i] = nr
	}
	si := len(out.Cols) - 1
	sort.SliceStable(out.Rows, func(a, b int) bool {
		return out.Rows[a][si].(float64) > out.Rows[b][si].(float64)
	})
	return out, nil
}

// blend implements the blend operator: rows of two scored relations are
// matched on key; output score = wL·scoreL + wR·scoreR with missing
// sides contributing 0. Output rows order by blended score descending.
func blend(left, right *Relation, key, scoreCol string, wL, wR float64) (*Relation, error) {
	lk, ok := left.Col(key)
	if !ok {
		return nil, fmt.Errorf("flexrecs: blend: left has no column %q", key)
	}
	ls, ok := left.Col(scoreCol)
	if !ok {
		return nil, fmt.Errorf("flexrecs: blend: left has no column %q", scoreCol)
	}
	rk, ok := right.Col(key)
	if !ok {
		return nil, fmt.Errorf("flexrecs: blend: right has no column %q", key)
	}
	rs, ok := right.Col(scoreCol)
	if !ok {
		return nil, fmt.Errorf("flexrecs: blend: right has no column %q", scoreCol)
	}
	rightScore := map[relation.Value]float64{}
	for _, row := range right.Rows {
		k, err := relation.Normalize(row[rk])
		if err != nil {
			return nil, err
		}
		w, err := toWeight(row[rs])
		if err != nil {
			return nil, err
		}
		rightScore[k] = w
	}
	out := &Relation{Cols: append([]string(nil), left.Cols...)}
	seen := map[relation.Value]bool{}
	for _, row := range left.Rows {
		k, err := relation.Normalize(row[lk])
		if err != nil {
			return nil, err
		}
		seen[k] = true
		lw, err := toWeight(row[ls])
		if err != nil {
			return nil, err
		}
		nr := append([]any(nil), row...)
		nr[ls] = wL*lw + wR*rightScore[k]
		out.Rows = append(out.Rows, nr)
	}
	// Right-only rows: key and blended score, other columns NULL.
	for _, row := range right.Rows {
		k, err := relation.Normalize(row[rk])
		if err != nil {
			return nil, err
		}
		if seen[k] {
			continue
		}
		nr := make([]any, len(out.Cols))
		nr[lk] = k
		nr[ls] = wR * rightScore[k]
		out.Rows = append(out.Rows, nr)
	}
	si := ls
	sort.SliceStable(out.Rows, func(a, b int) bool {
		return out.Rows[a][si].(float64) > out.Rows[b][si].(float64)
	})
	return out, nil
}

// Explain renders the workflow plan: operator tree with SQL-compiled
// subtrees shown as the exact statements shipped to the DBMS.
func (e *Engine) Explain(w *Step) string {
	var b strings.Builder
	explain(w, 0, &b)
	return b.String()
}

func explain(s *Step, depth int, b *strings.Builder) {
	indent := strings.Repeat("  ", depth)
	if sqlable(s) {
		sql, args, err := CompileSQL(s)
		if err != nil {
			fmt.Fprintf(b, "%s!error: %v\n", indent, err)
			return
		}
		if len(args) > 0 {
			fmt.Fprintf(b, "%sSQL> %s  -- args %v\n", indent, sql, args)
		} else {
			fmt.Fprintf(b, "%sSQL> %s\n", indent, sql)
		}
		return
	}
	fmt.Fprintf(b, "%s%s\n", indent, s.describe())
	if s.child != nil {
		explain(s.child, depth+1, b)
	}
	if s.other != nil {
		explain(s.other, depth+1, b)
	}
}

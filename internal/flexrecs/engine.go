package flexrecs

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"courserank/internal/matview"
	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// Engine executes workflows. Purely relational subtrees (σ, π, ⋈ over
// base tables) are compiled into single SQL statements run by the
// conventional DBMS; extend, recommend and residual operators over
// nested attributes execute as external functions over materialized
// results — the hybrid strategy of paper §3.2.
//
// Compiled statements memoize per workflow SHAPE: template builds
// produce a fresh Step tree per personalized request, but the tree's
// structure — and therefore its SQL text — is stable across requests,
// only the '?' arguments change. The engine keys a prepared *Stmt on a
// structural fingerprint of the subtree, so a repeated workflow skips
// string re-rendering AND the SQL engine's text-keyed cache lookup:
// per request only argument gathering, bind and execute remain.
type Engine struct {
	sql     *sqlmini.Engine
	backend Backend // executes compiled statements; defaults to the SQL engine

	compiled      sync.Map // shape fingerprint → *compiledSQL
	compiledN     atomic.Int64
	compileHits   atomic.Uint64
	compileMisses atomic.Uint64

	// views backs Materialize steps (materialize.go); nil = transparent.
	views     *matview.Registry
	matHits   atomic.Uint64
	matStale  atomic.Uint64
	matMisses atomic.Uint64
}

// PreparedQuery is one prepared SELECT a backend hands back:
// bind-and-execute, returning the materialized result. *sqlmini.Stmt
// satisfies it, as does the shard layer's cluster statement.
type PreparedQuery interface {
	Query(args ...any) (*sqlmini.Result, error)
}

// Backend is where compiled workflow statements execute. The default
// backend is the engine's own SQL engine; a sharded site substitutes
// its scatter-gather cluster, so every compiled subtree routes —
// shard-key-pinned fragments to one shard, the rest fanned out and
// merged — without the workflow layer knowing.
type Backend interface {
	Prepare(sql string) (PreparedQuery, error)
	Explain(sql string, args ...any) (string, error)
}

// sqlBackend adapts a *sqlmini.Engine to the Backend seam.
type sqlBackend struct{ e *sqlmini.Engine }

func (b sqlBackend) Prepare(sql string) (PreparedQuery, error) { return b.e.Prepare(sql) }
func (b sqlBackend) Explain(sql string, args ...any) (string, error) {
	return b.e.Explain(sql, args...)
}

// compiledSQL is one memoized sqlable subtree: its rendered statement
// text and the prepared statement executing it.
type compiledSQL struct {
	sql  string
	stmt PreparedQuery
}

// compiledCacheMax bounds the shape cache. Deployed sites register a
// fixed handful of strategies, so the bound only guards degenerate
// workloads; past it, new shapes compile per call without caching.
const compiledCacheMax = 256

// NewEngine builds an engine over the database with its own SQL engine
// (and therefore its own plan cache).
func NewEngine(db *relation.DB) *Engine {
	return NewEngineOver(sqlmini.New(db))
}

// NewEngineOver builds an engine over an existing SQL engine, sharing
// its plan cache — the wiring the Site facade uses so FlexRecs, the
// baseline recommenders and ad-hoc queries all reuse one plan per
// statement text.
func NewEngineOver(sql *sqlmini.Engine) *Engine {
	return &Engine{sql: sql, backend: sqlBackend{sql}}
}

// NewEngineWithBackend builds an engine whose compiled statements
// execute on backend instead of the SQL engine directly. The SQL
// engine is still required: expression parsing, step-wise residual
// evaluation and ForceScan parity run against it.
func NewEngineWithBackend(sql *sqlmini.Engine, backend Backend) *Engine {
	return &Engine{sql: sql, backend: backend}
}

// ForceScan returns a workflow engine whose compiled statements execute
// with the naive full-scan/nested-loop strategy — the forced side of
// planner parity tests. The returned engine shares the database and is
// safe to use concurrently with the planning engine. Forced execution
// always runs on the local SQL engine, even for cluster-backed engines.
func (e *Engine) ForceScan() *Engine {
	forced := e.sql.ForceScan()
	return &Engine{sql: forced, backend: sqlBackend{forced}}
}

// SQL exposes the underlying SQL engine (used by tests and the facade).
func (e *Engine) SQL() *sqlmini.Engine { return e.sql }

// Run validates and executes a workflow, returning its materialized
// result.
func (e *Engine) Run(w *Step) (*Relation, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return e.runStep(w)
}

// sqlable reports whether the subtree compiles to a single SQL
// statement. An OrderBy over a sqlable subtree compiles too — as the
// statement's ORDER BY clause, where the planner can elide it against
// an ordered index — but only an OUTERMOST one: SQL has a single
// ORDER BY, and an order underneath a join or another order cannot be
// expressed in it (compiling would silently drop or hoist the inner
// sort), so those trees keep the step-wise path, which sorts the
// operand before the enclosing operator consumes it.
func sqlable(s *Step) bool {
	switch s.kind {
	case relStep:
		return true
	case selectStep, projectStep:
		return sqlable(s.child)
	case joinStep:
		return sqlable(s.child) && sqlable(s.other) &&
			!containsOrder(s.child) && !containsOrder(s.other)
	case orderStep:
		return sqlable(s.child) && !containsOrder(s.child)
	}
	return false
}

// containsOrder reports whether a sqlable subtree holds an orderStep.
func containsOrder(s *Step) bool {
	switch s.kind {
	case orderStep:
		return true
	case selectStep, projectStep:
		return containsOrder(s.child)
	case joinStep:
		return containsOrder(s.child) || containsOrder(s.other)
	}
	return false
}

// sqlParts accumulates the pieces of a compiled statement.
type sqlParts struct {
	from      string   // "T" or "T JOIN U ON ... JOIN V ON ..."
	conds     []string // WHERE conjuncts, outermost first
	args      []any
	proj      []string // outermost projection wins; empty = *
	orderCol  string   // ORDER BY column; empty = none
	orderDesc bool
}

// gather walks a sqlable subtree, collecting FROM/WHERE/projection.
func gather(s *Step, p *sqlParts) error {
	switch s.kind {
	case relStep:
		p.from = s.table
		return nil
	case selectStep:
		p.conds = append(p.conds, s.cond)
		p.args = append(p.args, s.args...)
		return gather(s.child, p)
	case projectStep:
		if len(p.proj) == 0 {
			p.proj = s.cols
		}
		return gather(s.child, p)
	case joinStep:
		if err := gather(s.child, p); err != nil {
			return err
		}
		var right sqlParts
		if err := gather(s.other, &right); err != nil {
			return err
		}
		if strings.Contains(right.from, " JOIN ") {
			return fmt.Errorf("flexrecs: right side of a join must be a base table")
		}
		p.from += " JOIN " + right.from + " ON " + s.on
		p.conds = append(p.conds, right.conds...)
		p.args = append(p.args, right.args...)
		return nil
	case orderStep:
		p.orderCol, p.orderDesc = s.orderCol, s.desc
		return gather(s.child, p)
	}
	return fmt.Errorf("flexrecs: step %s is not SQL-compilable", s.describe())
}

// CompileSQL renders a sqlable subtree as its SQL statement. It is
// exported so Explain output and tests can show the exact statements
// shipped to the DBMS.
func CompileSQL(s *Step) (string, []any, error) {
	var p sqlParts
	if err := gather(s, &p); err != nil {
		return "", nil, err
	}
	sel := "*"
	if len(p.proj) > 0 {
		sel = strings.Join(p.proj, ", ")
	}
	sql := "SELECT " + sel + " FROM " + p.from
	if len(p.conds) > 0 {
		// Conditions were gathered outermost-first; apply innermost first
		// for readability (order is irrelevant under AND).
		for i, j := 0, len(p.conds)-1; i < j; i, j = i+1, j-1 {
			p.conds[i], p.conds[j] = p.conds[j], p.conds[i]
		}
		sql += " WHERE " + strings.Join(p.conds, " AND ")
	}
	if p.orderCol != "" {
		sql += " ORDER BY " + p.orderCol
		if p.orderDesc {
			sql += " DESC"
		}
	}
	// Placeholder args attach in the same outermost-first order the
	// conditions were gathered, so reverse them alongside.
	args := make([]any, 0, len(p.args))
	for i := len(p.args) - 1; i >= 0; i-- {
		args = append(args, p.args[i])
	}
	return sql, args, nil
}

// shapeKey writes a structural fingerprint of a sqlable subtree:
// operator kinds and their SQL text fragments, excluding argument
// values. Two trees with equal fingerprints compile to identical SQL.
func shapeKey(s *Step, b *strings.Builder) {
	switch s.kind {
	case relStep:
		b.WriteString("R|")
		b.WriteString(s.table)
		b.WriteByte(0)
	case selectStep:
		b.WriteString("S|")
		b.WriteString(s.cond)
		b.WriteByte(0)
		shapeKey(s.child, b)
	case projectStep:
		b.WriteString("P|")
		for _, c := range s.cols {
			b.WriteString(c)
			b.WriteByte(1)
		}
		b.WriteByte(0)
		shapeKey(s.child, b)
	case joinStep:
		b.WriteString("J|")
		b.WriteString(s.on)
		b.WriteByte(0)
		shapeKey(s.child, b)
		shapeKey(s.other, b)
	case orderStep:
		b.WriteString("O|")
		b.WriteString(s.orderCol)
		if s.desc {
			b.WriteString("|D")
		}
		b.WriteByte(0)
		shapeKey(s.child, b)
	}
}

// gatherShapeArgs collects the subtree's placeholder arguments in the
// same traversal order gather uses; CompileSQL reverses its gathered
// list, so callers reverse this one identically.
func gatherShapeArgs(s *Step, args []any) []any {
	switch s.kind {
	case selectStep:
		args = append(args, s.args...)
		return gatherShapeArgs(s.child, args)
	case projectStep, orderStep:
		return gatherShapeArgs(s.child, args)
	case joinStep:
		args = gatherShapeArgs(s.child, args)
		return gatherShapeArgs(s.other, args)
	}
	return args
}

// compiledFor resolves a sqlable subtree to its memoized prepared
// statement, compiling and preparing on first sight of the shape.
func (e *Engine) compiledFor(s *Step) (*compiledSQL, error) {
	var b strings.Builder
	shapeKey(s, &b)
	key := b.String()
	if v, ok := e.compiled.Load(key); ok {
		e.compileHits.Add(1)
		return v.(*compiledSQL), nil
	}
	e.compileMisses.Add(1)
	sql, _, err := CompileSQL(s)
	if err != nil {
		return nil, err
	}
	st, err := e.backend.Prepare(sql)
	if err != nil {
		return nil, fmt.Errorf("flexrecs: compiling %q: %w", sql, err)
	}
	cs := &compiledSQL{sql: sql, stmt: st}
	if e.compiledN.Load() < compiledCacheMax {
		if _, loaded := e.compiled.LoadOrStore(key, cs); !loaded {
			e.compiledN.Add(1)
		}
	}
	return cs, nil
}

// CompileStats reports the workflow-shape compile cache's counters: a
// hit means a request skipped SQL re-rendering and statement lookup
// entirely, going straight to bind + execute.
func (e *Engine) CompileStats() (hits, misses uint64) {
	return e.compileHits.Load(), e.compileMisses.Load()
}

func (e *Engine) runSQL(s *Step) (*Relation, error) {
	cs, err := e.compiledFor(s)
	if err != nil {
		return nil, err
	}
	args := gatherShapeArgs(s, nil)
	for i, j := 0, len(args)-1; i < j; i, j = i+1, j-1 {
		args[i], args[j] = args[j], args[i]
	}
	res, err := cs.stmt.Query(args...)
	if err != nil {
		return nil, fmt.Errorf("flexrecs: executing %q: %w", cs.sql, err)
	}
	rel := &Relation{Cols: res.Columns, Rows: make([][]any, len(res.Rows))}
	for i, r := range res.Rows {
		rel.Rows[i] = r
	}
	return rel, nil
}

func (e *Engine) runStep(s *Step) (*Relation, error) {
	if sqlable(s) {
		return e.runSQL(s)
	}
	return e.applyStep(s, e.runStep)
}

// applyStep executes one non-sqlable operator, obtaining operand
// relations through run — e.runStep normally, the instrumented
// recursion under RunAnalyze.
func (e *Engine) applyStep(s *Step, run func(*Step) (*Relation, error)) (*Relation, error) {
	switch s.kind {
	case selectStep:
		child, err := run(s.child)
		if err != nil {
			return nil, err
		}
		expr, err := sqlmini.ParseExpr(s.cond, s.args...)
		if err != nil {
			return nil, err
		}
		eval := sqlmini.Evaluator(expr, child.Cols)
		out := &Relation{Cols: child.Cols}
		for _, row := range child.Rows {
			v, err := eval(row)
			if err != nil {
				return nil, err
			}
			if relation.Truthy(v) {
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil

	case projectStep:
		child, err := run(s.child)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(s.cols))
		for i, c := range s.cols {
			ci, ok := child.Col(c)
			if !ok {
				return nil, fmt.Errorf("flexrecs: project: no column %q", c)
			}
			idx[i] = ci
		}
		out := &Relation{Cols: append([]string(nil), s.cols...), Rows: make([][]any, len(child.Rows))}
		for i, row := range child.Rows {
			nr := make([]any, len(idx))
			for j, ci := range idx {
				nr[j] = row[ci]
			}
			out.Rows[i] = nr
		}
		return out, nil

	case joinStep:
		left, err := run(s.child)
		if err != nil {
			return nil, err
		}
		right, err := run(s.other)
		if err != nil {
			return nil, err
		}
		return joinRelations(left, right, s.on)

	case extendStep:
		child, err := run(s.child)
		if err != nil {
			return nil, err
		}
		return extend(child, s.groupBy, s.keyCol, s.valCol, s.as)

	case recommendStep:
		target, err := run(s.child)
		if err != nil {
			return nil, err
		}
		ref, err := run(s.other)
		if err != nil {
			return nil, err
		}
		return recommend(target, ref, s.cmp, s.scoreAs)

	case blendStep:
		left, err := run(s.child)
		if err != nil {
			return nil, err
		}
		right, err := run(s.other)
		if err != nil {
			return nil, err
		}
		return blend(left, right, s.blendKey, s.scoreAs, s.wL, s.wR)

	case topStep:
		if s.child.kind == recommendStep {
			// Fuse ▷ with the following top-k: score everything but sort
			// and materialize only the k survivors. Recommend feeding Top
			// is the shape every shipped strategy ends with, and the fused
			// path skips the whole-catalog stable sort plus one output row
			// per discarded candidate.
			target, err := run(s.child.child)
			if err != nil {
				return nil, err
			}
			ref, err := run(s.child.other)
			if err != nil {
				return nil, err
			}
			return recommendTop(target, ref, s.child.cmp, s.child.scoreAs, s.k)
		}
		child, err := run(s.child)
		if err != nil {
			return nil, err
		}
		if len(child.Rows) > s.k {
			child.Rows = child.Rows[:s.k]
		}
		return child, nil

	case matStep:
		return e.runMat(s)

	case orderStep:
		child, err := run(s.child)
		if err != nil {
			return nil, err
		}
		ci, ok := child.Col(s.orderCol)
		if !ok {
			return nil, fmt.Errorf("flexrecs: order: no column %q", s.orderCol)
		}
		slices.SortStableFunc(child.Rows, func(a, b []any) int {
			c := relation.Compare(a[ci], b[ci])
			if s.desc {
				return -c
			}
			return c
		})
		return child, nil
	}
	return nil, fmt.Errorf("flexrecs: cannot execute step %s", s.describe())
}

// joinRelations joins two materialized relations on a SQL condition
// evaluated over the concatenated row. Column names are the
// concatenation of both sides' names; ambiguous references in the
// condition are an error surfaced by the evaluator. Equality conjuncts
// between the two sides execute as a build/probe hash join — the same
// strategy the sqlmini planner applies to base-table joins — with the
// remaining conjuncts as a residual filter; without any equi key the
// join falls back to a nested loop.
func joinRelations(left, right *Relation, on string) (*Relation, error) {
	expr, err := sqlmini.ParseExpr(on)
	if err != nil {
		return nil, err
	}
	cols := append(append([]string{}, left.Cols...), right.Cols...)
	out := &Relation{Cols: cols}

	var leftKeys, rightKeys []int
	var residual []sqlmini.Expr
	for _, c := range sqlmini.SplitConjuncts(expr) {
		if li, ri, ok := equiColumns(c, left, right); ok {
			leftKeys = append(leftKeys, li)
			rightKeys = append(rightKeys, ri)
			continue
		}
		residual = append(residual, c)
	}
	evals := make([]func([]any) (any, error), len(residual))
	for i, c := range residual {
		evals[i] = sqlmini.Evaluator(c, cols)
	}
	pass := func(row []any) (bool, error) {
		for _, ev := range evals {
			v, err := ev(row)
			if err != nil {
				return false, err
			}
			if !relation.Truthy(v) {
				return false, nil
			}
		}
		return true, nil
	}

	if len(leftKeys) > 0 {
		buckets := make(map[string][][]any, len(right.Rows))
		for _, r := range right.Rows {
			k, ok, err := encodeJoinKey(r, rightKeys)
			if err != nil {
				return nil, err
			}
			if ok {
				buckets[k] = append(buckets[k], r)
			}
		}
		for _, l := range left.Rows {
			k, ok, err := encodeJoinKey(l, leftKeys)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			for _, r := range buckets[k] {
				row := make([]any, 0, len(l)+len(r))
				row = append(row, l...)
				row = append(row, r...)
				keep, err := pass(row)
				if err != nil {
					return nil, err
				}
				if keep {
					out.Rows = append(out.Rows, row)
				}
			}
		}
		return out, nil
	}

	for _, l := range left.Rows {
		for _, r := range right.Rows {
			row := make([]any, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			keep, err := pass(row)
			if err != nil {
				return nil, err
			}
			if keep {
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

// equiColumns recognizes an "l = r" conjunct joining the two relations,
// returning the column positions on each side. References resolve
// case-insensitively by unqualified name; a name that is ambiguous —
// duplicated within a side or present on both sides — disqualifies the
// conjunct, leaving it to the residual evaluator, which raises the same
// "ambiguous column" error the nested loop always has.
func equiColumns(c sqlmini.Expr, left, right *Relation) (int, int, bool) {
	b, ok := c.(*sqlmini.Binary)
	if !ok || b.Op != "=" {
		return 0, 0, false
	}
	lr, lok := b.L.(*sqlmini.Ref)
	rr, rok := b.R.(*sqlmini.Ref)
	if !lok || !rok || lr.Qual != "" || rr.Qual != "" {
		return 0, 0, false
	}
	if li, ok := colUnique(left, lr.Name); ok && !colPresent(right, lr.Name) {
		if ri, ok := colUnique(right, rr.Name); ok && !colPresent(left, rr.Name) {
			return li, ri, true
		}
		return 0, 0, false
	}
	if li, ok := colUnique(left, rr.Name); ok && !colPresent(right, rr.Name) {
		if ri, ok := colUnique(right, lr.Name); ok && !colPresent(left, lr.Name) {
			return li, ri, true
		}
	}
	return 0, 0, false
}

// colUnique resolves name within one relation, requiring exactly one
// case-insensitive match.
func colUnique(r *Relation, name string) (int, bool) {
	found := -1
	for i, c := range r.Cols {
		if strings.EqualFold(c, name) {
			if found >= 0 {
				return 0, false
			}
			found = i
		}
	}
	return found, found >= 0
}

func colPresent(r *Relation, name string) bool {
	_, ok := r.Col(name)
	return ok
}

// encodeJoinKey encodes the join-key cells of a row, reporting ok=false
// for NULL keys (which never join). Non-relational cells (nested
// vectors) cannot key a join.
func encodeJoinKey(row []any, cols []int) (string, bool, error) {
	vals := make([]relation.Value, len(cols))
	for i, c := range cols {
		if row[c] == nil {
			return "", false, nil
		}
		v, err := relation.Normalize(row[c])
		if err != nil {
			return "", false, fmt.Errorf("flexrecs: join key column: %w", err)
		}
		vals[i] = v
	}
	return sqlmini.JoinKey(vals), true, nil
}

// extend implements ε: group child rows by groupBy and nest each group's
// (key, value) pairs as a Vector attribute. Rows with NULL key or
// non-numeric value are skipped — a student's unrated comment
// contributes nothing to the rating vector.
func extend(child *Relation, groupBy, keyCol, valCol, as string) (*Relation, error) {
	gi, ok := child.Col(groupBy)
	if !ok {
		return nil, fmt.Errorf("flexrecs: extend: no column %q", groupBy)
	}
	ki, ok := child.Col(keyCol)
	if !ok {
		return nil, fmt.Errorf("flexrecs: extend: no column %q", keyCol)
	}
	vi, ok := child.Col(valCol)
	if !ok {
		return nil, fmt.Errorf("flexrecs: extend: no column %q", valCol)
	}
	// Pre-size each group's vector with one integer-keyed counting pass.
	// The build loop below assigns into interface-keyed Vector maps —
	// extend's dominant cost — and starting every map at its final size
	// removes the growth rehashes entirely. Overcounts (rows the build
	// loop later skips for NULL keys or values) only waste capacity.
	counts := make(map[int64]int32, len(child.Rows)/8+8)
	for _, row := range child.Rows {
		if g, ok := row[gi].(int64); ok {
			counts[g]++
		} else {
			counts = nil // non-int group keys: build unsized below
			break
		}
	}
	// Grouping keys are almost always int64 ids (students, courses); a
	// dedicated map skips interface hashing in this hot loop and falls
	// back to a generic map on the first key of any other type.
	var (
		order     []relation.Value
		intGroups = map[int64]Vector{}
		anyGroups map[relation.Value]Vector
	)
	vecFor := func(g relation.Value) Vector {
		if anyGroups == nil {
			if ig, ok := g.(int64); ok {
				vec, seen := intGroups[ig]
				if !seen {
					vec = make(Vector, int(counts[ig])) // counts nil-safe: missing key sizes 0
					intGroups[ig] = vec
					order = append(order, g)
				}
				return vec
			}
			anyGroups = make(map[relation.Value]Vector, len(intGroups))
			for k, v := range intGroups {
				anyGroups[k] = v
			}
		}
		vec, seen := anyGroups[g]
		if !seen {
			vec = Vector{}
			anyGroups[g] = vec
			order = append(order, g)
		}
		return vec
	}
	for _, row := range child.Rows {
		g, err := relation.Normalize(row[gi])
		if err != nil {
			return nil, err
		}
		if g == nil {
			continue
		}
		k, err := relation.Normalize(row[ki])
		if err != nil {
			return nil, err
		}
		if k == nil {
			continue
		}
		var val float64
		switch x := row[vi].(type) {
		case int64:
			val = float64(x)
		case float64:
			val = x
		case nil:
			continue
		default:
			return nil, fmt.Errorf("flexrecs: extend: value column %q is %T, want number", valCol, row[vi])
		}
		vecFor(g)[k] = val
	}
	out := &Relation{Cols: []string{groupBy, as}, Rows: make([][]any, 0, len(order))}
	slab := make([]any, 2*len(order)) // one backing array for every (group, vector) pair
	for i, g := range order {
		nr := slab[2*i : 2*i+2 : 2*i+2]
		nr[0], nr[1] = g, vecFor(g)
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// recommend implements ▷: score every target row against the reference
// set, append the score column, and sort best-first (ties broken by
// original order for determinism).
func recommend(target, ref *Relation, cmp Comparator, scoreAs string) (*Relation, error) {
	if _, exists := target.Col(scoreAs); exists {
		return nil, fmt.Errorf("flexrecs: recommend: target already has column %q", scoreAs)
	}
	score, err := cmp.bind(target, ref)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: append(append([]string{}, target.Cols...), scoreAs)}
	out.Rows = make([][]any, len(target.Rows))
	// Carve the output rows from one slab instead of one make per row:
	// recommend runs over whole catalogs, and the per-row slices are the
	// operator's dominant garbage.
	stride := len(target.Cols) + 1
	slab := make([]any, len(target.Rows)*stride)
	for i, row := range target.Rows {
		s, err := score(row)
		if err != nil {
			return nil, err
		}
		var nr []any
		if len(row)+1 == stride {
			nr = slab[:0:stride]
			slab = slab[stride:]
		} else {
			nr = make([]any, 0, len(row)+1)
		}
		nr = append(nr, row...)
		nr = append(nr, s)
		out.Rows[i] = nr
	}
	si := len(out.Cols) - 1
	sortByScoreDesc(out.Rows, si)
	return out, nil
}

// recommendTop is recommend fused with a following top-k. Every target
// row is still scored (so scoring errors surface identically), but only
// the k best — ties broken by original position, exactly the prefix a
// stable best-first sort would keep — are materialized as output rows.
// The selection runs a binary-search insertion into a k-bounded list:
// for the catalog-sized inputs and ten-to-fifty k the strategies use,
// that replaces an O(n log n) interface-typed sort with O(n log k)
// float compares and shrinks the output slab from n rows to k.
func recommendTop(target, ref *Relation, cmp Comparator, scoreAs string, k int) (*Relation, error) {
	if k <= 0 || k*4 >= len(target.Rows) {
		// Nothing (or too little) to discard: the fused path saves only
		// when most candidates drop, so keep the plain sort's behavior.
		out, err := recommend(target, ref, cmp, scoreAs)
		if err != nil {
			return nil, err
		}
		if len(out.Rows) > k {
			out.Rows = out.Rows[:k]
		}
		return out, nil
	}
	if _, exists := target.Col(scoreAs); exists {
		return nil, fmt.Errorf("flexrecs: recommend: target already has column %q", scoreAs)
	}
	score, err := cmp.bind(target, ref)
	if err != nil {
		return nil, err
	}
	type scored struct {
		idx int
		s   float64
	}
	// kept stays sorted best-first on (score desc, index asc); better
	// mirrors sortByScoreDesc's comparator, with the index as the
	// stability tiebreak.
	better := func(a, b scored) bool {
		if a.s != b.s {
			return a.s > b.s
		}
		return a.idx < b.idx
	}
	kept := make([]scored, 0, k)
	for i, row := range target.Rows {
		s, err := score(row)
		if err != nil {
			return nil, err
		}
		cand := scored{idx: i, s: s}
		if len(kept) == k && !better(cand, kept[k-1]) {
			continue
		}
		lo, hi := 0, len(kept)
		for lo < hi {
			mid := (lo + hi) / 2
			if better(cand, kept[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if len(kept) < k {
			kept = append(kept, scored{})
		}
		copy(kept[lo+1:], kept[lo:])
		kept[lo] = cand
	}
	out := &Relation{Cols: append(append([]string{}, target.Cols...), scoreAs)}
	out.Rows = make([][]any, len(kept))
	stride := len(target.Cols) + 1
	slab := make([]any, len(kept)*stride)
	for i, sc := range kept {
		row := target.Rows[sc.idx]
		var nr []any
		if len(row)+1 == stride {
			nr = slab[:0:stride]
			slab = slab[stride:]
		} else {
			nr = make([]any, 0, len(row)+1)
		}
		nr = append(nr, row...)
		nr = append(nr, sc.s)
		out.Rows[i] = nr
	}
	return out, nil
}

// sortByScoreDesc stably sorts rows best-first on the float score
// column, without the reflection-based swapper of sort.SliceStable —
// these sorts run over whole catalogs per recommendation.
func sortByScoreDesc(rows [][]any, si int) {
	slices.SortStableFunc(rows, func(a, b []any) int {
		av, bv := a[si].(float64), b[si].(float64)
		switch {
		case av > bv:
			return -1
		case av < bv:
			return 1
		}
		return 0
	})
}

// blend implements the blend operator: rows of two scored relations are
// matched on key; output score = wL·scoreL + wR·scoreR with missing
// sides contributing 0. Output rows order by blended score descending.
func blend(left, right *Relation, key, scoreCol string, wL, wR float64) (*Relation, error) {
	lk, ok := left.Col(key)
	if !ok {
		return nil, fmt.Errorf("flexrecs: blend: left has no column %q", key)
	}
	ls, ok := left.Col(scoreCol)
	if !ok {
		return nil, fmt.Errorf("flexrecs: blend: left has no column %q", scoreCol)
	}
	rk, ok := right.Col(key)
	if !ok {
		return nil, fmt.Errorf("flexrecs: blend: right has no column %q", key)
	}
	rs, ok := right.Col(scoreCol)
	if !ok {
		return nil, fmt.Errorf("flexrecs: blend: right has no column %q", scoreCol)
	}
	rightScore := map[relation.Value]float64{}
	for _, row := range right.Rows {
		k, err := relation.Normalize(row[rk])
		if err != nil {
			return nil, err
		}
		w, err := toWeight(row[rs])
		if err != nil {
			return nil, err
		}
		rightScore[k] = w
	}
	out := &Relation{Cols: append([]string(nil), left.Cols...)}
	seen := map[relation.Value]bool{}
	for _, row := range left.Rows {
		k, err := relation.Normalize(row[lk])
		if err != nil {
			return nil, err
		}
		seen[k] = true
		lw, err := toWeight(row[ls])
		if err != nil {
			return nil, err
		}
		nr := append([]any(nil), row...)
		nr[ls] = wL*lw + wR*rightScore[k]
		out.Rows = append(out.Rows, nr)
	}
	// Right-only rows: key and blended score, other columns NULL.
	for _, row := range right.Rows {
		k, err := relation.Normalize(row[rk])
		if err != nil {
			return nil, err
		}
		if seen[k] {
			continue
		}
		nr := make([]any, len(out.Cols))
		nr[lk] = k
		nr[ls] = wR * rightScore[k]
		out.Rows = append(out.Rows, nr)
	}
	sortByScoreDesc(out.Rows, ls)
	return out, nil
}

// Explain renders the workflow plan: operator tree with SQL-compiled
// subtrees shown as the exact statements shipped to the DBMS, each
// followed by the physical plan the SQL engine's planner chose for it
// (access paths, join algorithms, pushed predicates).
func (e *Engine) Explain(w *Step) string {
	var b strings.Builder
	e.explain(w, 0, &b)
	return b.String()
}

func (e *Engine) explain(s *Step, depth int, b *strings.Builder) {
	indent := strings.Repeat("  ", depth)
	if sqlable(s) {
		sql, args, err := CompileSQL(s)
		if err != nil {
			fmt.Fprintf(b, "%s!error: %v\n", indent, err)
			return
		}
		if len(args) > 0 {
			fmt.Fprintf(b, "%sSQL> %s  -- args %v\n", indent, sql, args)
		} else {
			fmt.Fprintf(b, "%sSQL> %s\n", indent, sql)
		}
		if plan, err := e.backend.Explain(sql, args...); err == nil {
			for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
				fmt.Fprintf(b, "%s  | %s\n", indent, line)
			}
		}
		return
	}
	if s.kind == matStep {
		fmt.Fprintf(b, "%s%s\n", indent, e.explainMat(s))
		e.explain(s.child, depth+1, b)
		return
	}
	fmt.Fprintf(b, "%s%s\n", indent, s.describe())
	if s.child != nil {
		e.explain(s.child, depth+1, b)
	}
	if s.other != nil {
		e.explain(s.other, depth+1, b)
	}
}

package flexrecs

import (
	"reflect"
	"strings"
	"testing"

	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// paperDB recreates the schema and a small instance of the paper's §3.2
// example relations:
//
//	Courses(CourseID,DepID,Title,Description,Units,Url)
//	Students(SuID,Name,Class,GPA)
//	Comments(SuID,CourseID,Year,Term,Text,Rating,Date)
func paperDB(t *testing.T) *relation.DB {
	t.Helper()
	db := relation.NewDB()
	sq := sqlmini.New(db)
	ddl := []string{
		`CREATE TABLE Courses (CourseID INT NOT NULL, DepID TEXT, Title TEXT, Description TEXT, Units INT, Year INT, PRIMARY KEY (CourseID))`,
		`CREATE TABLE Students (SuID INT NOT NULL, Name TEXT, Class TEXT, GPA FLOAT, PRIMARY KEY (SuID))`,
		`CREATE TABLE Comments (SuID INT, CourseID INT, Year INT, Term TEXT, Text TEXT, Rating FLOAT, Date TEXT)`,
	}
	for _, s := range ddl {
		if _, err := sq.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	dml := []string{
		`INSERT INTO Courses VALUES
			(1, 'CS', 'Introduction to Programming', 'java basics', 5, 2008),
			(2, 'CS', 'Introduction to Programming Methodology', 'more java', 5, 2008),
			(3, 'CS', 'Advanced Programming', 'c++ and beyond', 4, 2008),
			(4, 'HIST', 'American History', 'survey', 3, 2008),
			(5, 'CS', 'Introduction to Programming', 'old offering', 5, 2007)`,
		`INSERT INTO Students VALUES (444, 'Sally', '2009', 3.8), (445, 'Twin', '2009', 3.7), (446, 'Anti', '2010', 3.1), (447, 'Stranger', '2010', 3.0)`,
		// Student 444 rates courses 1:5, 2:4, 4:2.
		// Student 445 rates nearly identically → most similar.
		// Student 446 rates oppositely → dissimilar.
		// Student 447 shares no courses → incomparable.
		`INSERT INTO Comments VALUES
			(444, 1, 2008, 'Aut', 'great', 5, 'd'),
			(444, 2, 2008, 'Win', 'good', 4, 'd'),
			(444, 4, 2008, 'Spr', 'meh', 2, 'd'),
			(445, 1, 2008, 'Aut', 'great', 5, 'd'),
			(445, 2, 2008, 'Win', 'good', 4, 'd'),
			(445, 3, 2008, 'Spr', 'superb', 5, 'd'),
			(446, 1, 2008, 'Aut', 'awful', 1, 'd'),
			(446, 2, 2008, 'Win', 'bad', 1, 'd'),
			(446, 3, 2008, 'Spr', 'nope', 2, 'd'),
			(447, 3, 2008, 'Aut', 'fine', 4, 'd')`,
	}
	for _, s := range dml {
		if _, err := sq.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestFigure5aRelatedCourses runs the exact workflow of Figure 5(a):
// rank 2008 courses by title Jaccard against "Introduction to
// Programming".
func TestFigure5aRelatedCourses(t *testing.T) {
	e := NewEngine(paperDB(t))
	wf := Recommend(
		Rel("Courses").Select("Year = 2008"),
		Rel("Courses").Select("Title = ?", "Introduction to Programming"),
		JaccardOn("Title"),
	)
	res, err := e.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("target rows = %d, want 4 (the 2008 courses)", res.Len())
	}
	ti, si := res.MustCol("Title"), res.MustCol("Score")
	// Best: the identical title (course 1). Then "Introduction to
	// Programming Methodology" (2/3), then "Advanced Programming" (1/3),
	// then "American History" (0).
	wantOrder := []string{
		"Introduction to Programming",
		"Introduction to Programming Methodology",
		"Advanced Programming",
		"American History",
	}
	for i, want := range wantOrder {
		if res.Rows[i][ti] != want {
			t.Errorf("rank %d = %v, want %s (scores: %v)", i, res.Rows[i][ti], want, res.Rows[i][si])
		}
	}
	if s := res.Rows[0][si].(float64); s != 1.0 {
		t.Errorf("top score = %v, want 1", s)
	}
	if s := res.Rows[3][si].(float64); s != 0.0 {
		t.Errorf("bottom score = %v, want 0", s)
	}
}

// TestFigure5bCollaborative runs the two-recommend workflow of Figure
// 5(b): find students similar to 444 by inverse Euclidean distance over
// rating vectors, then rank 2008 courses by the similarity-weighted
// average of those students' ratings.
func TestFigure5bCollaborative(t *testing.T) {
	e := NewEngine(paperDB(t))
	ratings := Rel("Comments").Project("SuID", "CourseID", "Rating")
	similar := Recommend(
		ratings.Select("SuID <> 444").Extend("SuID", "CourseID", "Rating", "Ratings"),
		ratings.Select("SuID = 444").Extend("SuID", "CourseID", "Rating", "Ratings"),
		InvEuclideanOn("Ratings"),
	)
	courses := Recommend(
		Rel("Courses").Select("Year = 2008"),
		similar.Top(2),
		WeightedAvg("CourseID", "Ratings", "Score"),
	)
	res, err := e.Run(courses)
	if err != nil {
		t.Fatal(err)
	}

	// First check the similar-students stage directly.
	simRes, err := e.Run(similar)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Len() != 3 {
		t.Fatalf("similar students = %d, want 3", simRes.Len())
	}
	su, sc := simRes.MustCol("SuID"), simRes.MustCol("Score")
	if simRes.Rows[0][su] != int64(445) {
		t.Errorf("most similar student = %v, want 445", simRes.Rows[0][su])
	}
	if simRes.Rows[0][sc].(float64) != 1.0 {
		t.Errorf("twin similarity = %v, want 1 (identical common ratings)", simRes.Rows[0][sc])
	}
	// Student 447 has no common course with 444 → similarity 0, ranked last.
	if simRes.Rows[2][su] != int64(447) {
		t.Errorf("least similar = %v, want 447", simRes.Rows[2][su])
	}

	// Then the final course ranking: course 1 (rated 5 by the twin and 1
	// by the dissimilar student) must beat course 4 (unrated by
	// neighbors).
	ci, si := res.MustCol("CourseID"), res.MustCol("Score")
	scores := map[int64]float64{}
	for i := range res.Rows {
		scores[res.Rows[i][ci].(int64)] = res.Rows[i][si].(float64)
	}
	if !(scores[1] > scores[4]) {
		t.Errorf("course 1 (%v) should beat course 4 (%v)", scores[1], scores[4])
	}
	if !(scores[3] > 0) {
		t.Errorf("course 3 rated by neighbors should score > 0, got %v", scores[3])
	}
	// The twin (weight 1.0) rated course 1 a 5; the dissimilar student's
	// weight is small, so the weighted average stays near 5.
	if scores[1] < 4.0 {
		t.Errorf("course 1 weighted score = %v, want near 5", scores[1])
	}
}

func TestCompileSQL(t *testing.T) {
	wf := Rel("Courses").Select("Year = 2008").Select("DepID = 'CS'").Project("CourseID", "Title")
	sql, args, err := CompileSQL(wf)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT CourseID, Title FROM Courses WHERE Year = 2008 AND DepID = 'CS'"
	if sql != want {
		t.Errorf("sql = %q, want %q", sql, want)
	}
	if len(args) != 0 {
		t.Errorf("args = %v", args)
	}
}

func TestCompileSQLJoinAndArgs(t *testing.T) {
	wf := Rel("Comments m").
		JoinOn(Rel("Students s"), "m.SuID = s.SuID").
		Select("m.Rating >= ?", 4).
		Project("s.Name", "m.Rating")
	sql, args, err := CompileSQL(wf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "FROM Comments m JOIN Students s ON m.SuID = s.SuID") {
		t.Errorf("sql = %q", sql)
	}
	if len(args) != 1 || args[0] != 4 {
		t.Errorf("args = %v", args)
	}
	// And it actually executes.
	e := NewEngine(paperDB(t))
	res, err := e.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6 {
		t.Errorf("rows = %d, want 6", res.Len())
	}
}

func TestExplainShowsSQLAndOperators(t *testing.T) {
	e := NewEngine(paperDB(t))
	wf := Recommend(
		Rel("Courses").Select("Year = 2008"),
		Rel("Courses").Select("Title = 'Introduction to Programming'"),
		JaccardOn("Title"),
	).Top(3)
	plan := e.Explain(wf)
	for _, want := range []string{"top[3]", "▷[Jaccard[Title] as Score]", "SQL> SELECT * FROM Courses WHERE Year = 2008"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExtendSemantics(t *testing.T) {
	e := NewEngine(paperDB(t))
	res, err := e.Run(Rel("Comments").Project("SuID", "CourseID", "Rating").Extend("SuID", "CourseID", "Rating", "Ratings"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("students with ratings = %d, want 4", res.Len())
	}
	si, vi := res.MustCol("SuID"), res.MustCol("Ratings")
	byStudent := map[int64]Vector{}
	for _, r := range res.Rows {
		byStudent[r[si].(int64)] = r[vi].(Vector)
	}
	v444 := byStudent[444]
	if len(v444) != 3 || v444[int64(1)] != 5 || v444[int64(4)] != 2 {
		t.Errorf("444 vector = %v", v444)
	}
}

func TestPostExtendSelect(t *testing.T) {
	// A select above extend cannot compile to SQL; it runs as a residual
	// filter over the materialized relation.
	e := NewEngine(paperDB(t))
	wf := Rel("Comments").Project("SuID", "CourseID", "Rating").
		Extend("SuID", "CourseID", "Rating", "Ratings").
		Select("SuID > 445")
	res, err := e.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
}

func TestProjectAfterRecommend(t *testing.T) {
	e := NewEngine(paperDB(t))
	wf := Recommend(
		Rel("Courses").Select("Year = 2008"),
		Rel("Courses").Select("CourseID = 1"),
		JaccardOn("Title"),
	).Project("Title", "Score").Top(2)
	res, err := e.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0] != "Title" {
		t.Errorf("cols = %v", res.Cols)
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestOrderByStep(t *testing.T) {
	e := NewEngine(paperDB(t))
	wf := Recommend(
		Rel("Courses").Select("Year = 2008"),
		Rel("Courses").Select("CourseID = 1"),
		JaccardOn("Title"),
	).OrderBy("Title", false)
	res, err := e.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	ti := res.MustCol("Title")
	if res.Rows[0][ti] != "Advanced Programming" {
		t.Errorf("order by title: %v", res.Rows[0][ti])
	}
}

// TestOrderByCompilesOnlyOutermost pins where an OrderBy step is
// allowed into the compiled SQL: the outermost position, where the
// planner can see — and possibly elide — it. An order underneath a
// join has step semantics SQL's single ORDER BY cannot express (sort
// the operand, then join), so those trees must stay off the compiled
// path rather than silently dropping the sort.
func TestOrderByCompilesOnlyOutermost(t *testing.T) {
	outer := Rel("Courses").Select("DepID = 'CS'").OrderBy("Title", true)
	if !sqlable(outer) {
		t.Fatal("outermost OrderBy over a sqlable subtree should compile")
	}
	sql, _, err := CompileSQL(outer)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "ORDER BY Title DESC") {
		t.Fatalf("compiled SQL lost the order: %s", sql)
	}
	for _, wf := range []*Step{
		Rel("Comments").JoinOn(Rel("Courses").OrderBy("Title", false), "Comments.CourseID = Courses.CourseID"),
		Rel("Comments").OrderBy("Rating", true).JoinOn(Rel("Courses"), "Comments.CourseID = Courses.CourseID"),
		Rel("Courses").OrderBy("Title", false).OrderBy("Units", true),
	} {
		if sqlable(wf) {
			t.Errorf("non-outermost OrderBy must not be SQL-compilable: %s", wf.describe())
		}
	}
	// A refused tree still executes step-wise with both sorts applied:
	// the inner ORDER BY Title compiles into the subtree's SQL, the
	// outer Units sort runs externally and, being stable, keeps the
	// title order within equal units.
	e := NewEngine(paperDB(t))
	res, err := e.Run(Rel("Courses").OrderBy("Title", false).OrderBy("Units", true))
	if err != nil {
		t.Fatal(err)
	}
	ci := res.MustCol("CourseID")
	var got []int64
	for _, row := range res.Rows {
		got = append(got, row[ci].(int64))
	}
	if want := []int64{1, 5, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("nested orders = %v, want %v", got, want)
	}
}

func TestJoinOverMaterialized(t *testing.T) {
	// Join where the left side has been extended — forces the residual
	// (non-SQL) join path.
	e := NewEngine(paperDB(t))
	wf := Rel("Comments").Project("SuID", "CourseID", "Rating").
		Extend("SuID", "CourseID", "Rating", "Ratings").
		JoinOn(Rel("Students").Project("SuID", "Name").Select("GPA > 3.5"), "Name <> ''")
	_, err := e.Run(wf)
	// The ON references Name (right side); the combined relation has two
	// SuID columns, but the condition doesn't touch them so this works.
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	e := NewEngine(paperDB(t))
	bad := []*Step{
		Rel(""),
		Rel("Courses").Select(""),
		Rel("Courses").Project(),
		Rel("Courses").Top(0),
		Rel("Courses").OrderBy("", false),
		Recommend(Rel("Courses"), Rel("Courses"), nil),
		Rel("Courses").JoinOn(Rel("Students"), ""),
	}
	for i, w := range bad {
		if _, err := e.Run(w); err == nil {
			t.Errorf("workflow %d should fail validation", i)
		}
	}
	if _, err := e.Run(Rel("NoSuchTable")); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := e.Run(Rel("Courses").Select("NoCol = 3")); err == nil {
		t.Error("bad column should fail")
	}
	// Recommend attribute errors.
	if _, err := e.Run(Recommend(Rel("Courses"), Rel("Courses"), JaccardOn("Nope"))); err == nil {
		t.Error("missing comparator attribute should fail")
	}
	if _, err := e.Run(Recommend(Rel("Courses"), Rel("Courses"), InvEuclideanOn("Title"))); err == nil {
		t.Error("non-vector attribute should fail")
	}
	// Score column collision.
	wf := Recommend(
		Recommend(Rel("Courses"), Rel("Courses"), JaccardOn("Title")),
		Rel("Courses"),
		JaccardOn("Title"),
	)
	if _, err := e.Run(wf); err == nil {
		t.Error("duplicate Score column should fail")
	}
	// As() renames and fixes the collision.
	wf2 := Recommend(
		Recommend(Rel("Courses"), Rel("Courses"), JaccardOn("Title")).As("Inner"),
		Rel("Courses"),
		JaccardOn("Title"),
	)
	if _, err := e.Run(wf2); err != nil {
		t.Errorf("renamed score should work: %v", err)
	}
}

func TestAsPanicsOffRecommend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("As on non-recommend should panic")
		}
	}()
	Rel("Courses").As("X")
}

func TestRegistry(t *testing.T) {
	e := NewEngine(paperDB(t))
	reg := NewRegistry()
	tpl := Template{
		Name:        "related-courses",
		Description: "Courses with similar titles",
		Params:      []string{"title", "year"},
		Build: func(p map[string]any) (*Step, error) {
			return Recommend(
				Rel("Courses").Select("Year = ?", p["year"]),
				Rel("Courses").Select("Title = ?", p["title"]),
				JaccardOn("Title"),
			).Top(3), nil
		},
	}
	if err := reg.Register(tpl); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(tpl); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := reg.Register(Template{Name: ""}); err == nil {
		t.Error("unnamed template should fail")
	}
	if err := reg.Register(Template{Name: "nobuild"}); err == nil {
		t.Error("template without Build should fail")
	}
	res, err := reg.Run(e, "related-courses", map[string]any{"title": "Introduction to Programming", "year": 2008})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("rows = %d", res.Len())
	}
	if _, err := reg.Run(e, "nope", nil); err == nil {
		t.Error("unknown strategy should fail")
	}
	if got := reg.List(); len(got) != 1 || got[0].Name != "related-courses" {
		t.Errorf("List = %v", got)
	}
	if _, ok := reg.Get("related-courses"); !ok {
		t.Error("Get failed")
	}
}

func TestRelationHelpers(t *testing.T) {
	r := &Relation{Cols: []string{"A", "B"}, Rows: [][]any{{int64(1), Vector{int64(2): 3}}}}
	if _, ok := r.Col("a"); !ok {
		t.Error("Col should be case-insensitive")
	}
	if _, ok := r.Col("z"); ok {
		t.Error("missing column")
	}
	ss := r.Strings(0)
	if ss[0] != "1" || !strings.Contains(ss[1], "vector") {
		t.Errorf("Strings = %v", ss)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol should panic")
		}
	}()
	r.MustCol("z")
}

// TestCompileMemoization pins the workflow-shape cache: two builds of
// the same template shape — fresh Step trees, different argument values
// — compile SQL exactly once, and the memoized prepared statement
// returns exactly what per-request compilation did.
func TestCompileMemoization(t *testing.T) {
	e := NewEngine(paperDB(t))
	build := func(title string) *Step {
		return Rel("Courses").Select("Year = 2008").Select("Title = ?", title).Project("CourseID", "Title")
	}
	first, err := e.Run(build("Introduction to Programming"))
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) != 1 || first.Rows[0][0] != int64(1) {
		t.Fatalf("first run rows: %v", first.Rows)
	}
	hits0, misses0 := e.CompileStats()
	if misses0 == 0 {
		t.Fatal("first run should compile")
	}
	// Same shape, different argument: pure compile-cache hit, correct rows.
	second, err := e.Run(build("American History"))
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Rows) != 1 || second.Rows[0][0] != int64(4) {
		t.Fatalf("second run rows: %v", second.Rows)
	}
	hits1, misses1 := e.CompileStats()
	if misses1 != misses0 {
		t.Fatalf("same shape recompiled: misses %d → %d", misses0, misses1)
	}
	if hits1 <= hits0 {
		t.Fatalf("expected a compile-cache hit: hits %d → %d", hits0, hits1)
	}
	// A different shape misses once, then hits.
	if _, err := e.Run(Rel("Courses").Select("Units >= ?", 4)); err != nil {
		t.Fatal(err)
	}
	_, misses2 := e.CompileStats()
	if misses2 != misses1+1 {
		t.Fatalf("new shape should compile once: misses %d → %d", misses1, misses2)
	}
	if _, err := e.Run(Rel("Courses").Select("Units >= ?", 3)); err != nil {
		t.Fatal(err)
	}
	if _, misses3 := e.CompileStats(); misses3 != misses2 {
		t.Fatalf("repeated new shape recompiled: misses %d → %d", misses2, misses3)
	}
}

// Package matview is the asynchronous materialization layer: a registry
// of materialized views over the relation store, each a precomputed
// value (a rating map, a feed relation, an extend-step result) that
// interactive requests read instead of recomputing — the precomputation
// pattern social-systems infrastructure leans on to keep recommendation
// and feed queries at interactive latencies.
//
// # Versioned invalidation
//
// A view declares the base tables it depends on. Every build captures a
// fingerprint per dependency — the table pointer (identity across
// DROP/CREATE), its SCHEMA EPOCH and its MUTATION VERSION
// (relation.Table.ViewFingerprint) — before the build reads anything,
// so a write racing the build merely makes the snapshot stale a round
// early, never wrong. A read is a hit when every dependency still
// matches exactly. The fingerprint split matters:
//
//   - version moved (row DML): the view's DATA is stale. Async views
//     may still serve it inside their staleness bound.
//   - epoch moved or the table was replaced (DDL): the view may hold
//     stale-SCHEMA rows. These are never served — the snapshot is
//     dropped and the read rebuilds.
//
// This is the same (SchemaEpoch, Version) machinery sqlmini's plan
// cache fingerprints with, keyed one level stricter: plans bake in
// access paths and survive row DML; views bake in data and do not.
//
// # Single-flight refresh
//
// All rebuilds of one view are single-flighted: the first reader (or
// background worker) to find the view stale runs the build; every
// concurrent reader joins that in-flight build and shares its result.
// A cold view hit by N simultaneous requests builds once, not N times
// — the stampede the hand-rolled caches this package replaced would
// serialize into N sequential rebuilds.
//
// # Serving modes
//
// Sync views refresh on read: a stale read blocks on the (shared)
// rebuild and always returns data reflecting every mutation committed
// before the build started.
//
// Async views bound staleness instead of eliminating it: once a read
// observes the snapshot stale the staleness clock starts, and reads
// inside the view's MaxStale bound serve the previous snapshot
// immediately while enqueueing a background refresh behind them
// (deduplicated — one queued refresh per view). A read past the bound —
// meaning refreshes have failed to land for MaxStale despite demand —
// blocks like Sync. The clock starts at first OBSERVATION rather than
// at the write because a write nobody reads after serves nobody stale
// data, and it makes a long-fresh snapshot that just went stale serve
// instantly instead of spuriously blocking on its calendar age.
// Snapshots are immutable and published through an atomic pointer, so
// a reader never observes a torn view: it gets the whole previous
// snapshot or the whole next one.
//
// # Lifecycle
//
// A Registry owns the background refresher pool: Start launches the
// workers, Close stops them and drains in-flight builds. An unstarted
// (or closed) registry still serves every view correctly — async views
// simply degrade to blocking refreshes once past their bound. The core
// Site starts its registry at construction and exposes Close; tests
// defer it so goroutines drain.
package matview

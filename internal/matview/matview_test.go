package matview

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"courserank/internal/relation"
)

// kvDB builds a database with one KV(ID, Val) table holding n rows
// Val = 10*ID.
func kvDB(t testing.TB, n int) (*relation.DB, *relation.Table) {
	t.Helper()
	db := relation.NewDB()
	tbl := relation.MustTable("KV",
		relation.NewSchema(
			relation.NotNullCol("ID", relation.TypeInt),
			relation.NotNullCol("Val", relation.TypeInt),
		), relation.WithPrimaryKey("ID"))
	db.MustCreate(tbl)
	for i := 1; i <= n; i++ {
		tbl.MustInsert(relation.Row{int64(i), int64(10 * i)})
	}
	return db, tbl
}

// sumKV is a build function summing KV.Val — cheap, deterministic, and
// sensitive to every row mutation.
func sumKV(tbl *relation.Table, builds *atomic.Int64) func() (any, error) {
	return func() (any, error) {
		builds.Add(1)
		var sum int64
		tbl.Scan(func(_ int, r relation.Row) bool {
			sum += r[1].(int64)
			return true
		})
		return sum, nil
	}
}

func TestSyncServing(t *testing.T) {
	db, tbl := kvDB(t, 4)
	reg := NewRegistry(db, 1)
	var builds atomic.Int64
	v, err := reg.Register(Options{Name: "sum", Deps: []string{"KV"}, Build: sumKV(tbl, &builds)})
	if err != nil {
		t.Fatal(err)
	}

	val, serve, err := v.Get()
	if err != nil {
		t.Fatal(err)
	}
	if val.(int64) != 100 || serve.Kind != ServeBuilt {
		t.Fatalf("cold read = %v (%v), want 100 built", val, serve.Kind)
	}
	val, serve, _ = v.Get()
	if val.(int64) != 100 || serve.Kind != ServeFresh || builds.Load() != 1 {
		t.Fatalf("warm read = %v (%v, builds=%d), want fresh hit off 1 build", val, serve.Kind, builds.Load())
	}

	// Row DML stales the view; a sync read blocks on the rebuild and
	// sees the write.
	tbl.MustInsert(relation.Row{int64(5), int64(50)})
	val, serve, _ = v.Get()
	if val.(int64) != 150 || serve.Kind != ServeBuilt || builds.Load() != 2 {
		t.Fatalf("post-DML read = %v (%v, builds=%d), want 150 rebuilt once", val, serve.Kind, builds.Load())
	}

	st := v.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Refreshes != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 2 refreshes", st)
	}
}

// TestSyncSingleFlight is the cold-stampede regression: N concurrent
// cold readers must share ONE build, not run N.
func TestSyncSingleFlight(t *testing.T) {
	db, tbl := kvDB(t, 4)
	reg := NewRegistry(db, 1)
	var builds atomic.Int64
	slowBuild := func() (any, error) {
		builds.Add(1)
		time.Sleep(30 * time.Millisecond) // hold the flight open
		var sum int64
		tbl.Scan(func(_ int, r relation.Row) bool { sum += r[1].(int64); return true })
		return sum, nil
	}
	v, err := reg.Register(Options{Name: "sum", Deps: []string{"KV"}, Build: slowBuild})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 16
	var wg sync.WaitGroup
	vals := make([]int64, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, _, err := v.Get()
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = val.(int64)
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("%d concurrent cold reads ran %d builds, want 1", readers, builds.Load())
	}
	for i, got := range vals {
		if got != 100 {
			t.Fatalf("reader %d got %d, want 100", i, got)
		}
	}
}

func TestAsyncStaleBoundedServing(t *testing.T) {
	db, tbl := kvDB(t, 4)
	reg := NewRegistry(db, 1)
	reg.Start()
	defer reg.Close()
	var builds atomic.Int64
	v, err := reg.Register(Options{
		Name: "sum", Deps: []string{"KV"}, Mode: Async, MaxStale: time.Minute,
		Build: sumKV(tbl, &builds),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, serve, err := v.Get(); err != nil || serve.Kind != ServeBuilt {
		t.Fatalf("cold read: %v %v", serve.Kind, err)
	}

	// DML stales the view; the next read is inside the bound, so it
	// serves the OLD snapshot immediately and refreshes behind.
	tbl.MustInsert(relation.Row{int64(5), int64(50)})
	val, serve, err := v.Get()
	if err != nil {
		t.Fatal(err)
	}
	if serve.Kind != ServeStale || val.(int64) != 100 {
		t.Fatalf("bounded read = %v (%v), want the previous 100 served stale", val, serve.Kind)
	}
	if serve.StaleFor > time.Minute {
		t.Fatalf("stale serve staleness %v exceeds the bound", serve.StaleFor)
	}

	// The background refresh lands; soon a read is a fresh hit on the
	// new value.
	deadline := time.Now().Add(2 * time.Second)
	for {
		val, serve, err = v.Get()
		if err != nil {
			t.Fatal(err)
		}
		if serve.Kind == ServeFresh && val.(int64) == 150 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background refresh never landed: %v (%v)", val, serve.Kind)
		}
		time.Sleep(time.Millisecond)
	}
	if st := v.Stats(); st.StaleHits == 0 {
		t.Fatalf("stats = %+v, want a stale hit recorded", st)
	}
}

// TestAsyncBeyondBoundBlocks: the staleness clock starts when a read
// first OBSERVES the snapshot stale; once known-stale for longer than
// the bound (here: no worker pool ever refreshes), reads must block and
// rebuild rather than keep serving.
func TestAsyncBeyondBoundBlocks(t *testing.T) {
	db, tbl := kvDB(t, 4)
	reg := NewRegistry(db, 1) // never started: past the bound MUST still be correct
	var builds atomic.Int64
	v, err := reg.Register(Options{
		Name: "sum", Deps: []string{"KV"}, Mode: Async, MaxStale: 5 * time.Millisecond,
		Build: sumKV(tbl, &builds),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Get(); err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(relation.Row{int64(5), int64(50)})
	// First read after the write: observes the staleness, starts the
	// clock, serves the old snapshot instantly.
	val, serve, err := v.Get()
	if err != nil {
		t.Fatal(err)
	}
	if serve.Kind != ServeStale || val.(int64) != 100 {
		t.Fatalf("first stale observation = %v (%v), want the old 100 served", val, serve.Kind)
	}
	time.Sleep(10 * time.Millisecond) // known-stale past the bound, no refresher running
	val, serve, err = v.Get()
	if err != nil {
		t.Fatal(err)
	}
	if serve.Kind != ServeBuilt || val.(int64) != 150 {
		t.Fatalf("read past the bound = %v (%v), want a blocking rebuild to 150", val, serve.Kind)
	}
}

// TestSchemaEpochInvalidates is the DDL test: an epoch bump must drop
// the snapshot and rebuild — an async view must NOT serve stale-schema
// rows even inside its staleness bound.
func TestSchemaEpochInvalidates(t *testing.T) {
	db, tbl := kvDB(t, 4)
	reg := NewRegistry(db, 1)
	var builds atomic.Int64
	v, err := reg.Register(Options{
		Name: "sum", Deps: []string{"KV"}, Mode: Async, MaxStale: time.Hour,
		Build: sumKV(tbl, &builds),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Get(); err != nil {
		t.Fatal(err)
	}
	// In-place DDL: bumps SchemaEpoch without touching the version.
	if err := tbl.AddOrderedIndex("Val"); err != nil {
		t.Fatal(err)
	}
	_, serve, err := v.Get()
	if err != nil {
		t.Fatal(err)
	}
	if serve.Kind != ServeBuilt {
		t.Fatalf("post-DDL read served %v, want a rebuild (stale-schema rows must never serve)", serve.Kind)
	}
	if st := v.Stats(); st.Invalidations != 1 || st.StaleHits != 0 {
		t.Fatalf("stats = %+v, want 1 invalidation and no stale hit", st)
	}
}

// TestTableReplacedInvalidates covers DROP/CREATE: the fingerprint pins
// table identity, so a same-named replacement cannot serve the old
// snapshot.
func TestTableReplacedInvalidates(t *testing.T) {
	db, tbl := kvDB(t, 4)
	reg := NewRegistry(db, 1)
	var builds atomic.Int64
	build := func() (any, error) {
		builds.Add(1)
		cur, ok := db.Table("KV")
		if !ok {
			return nil, errors.New("KV missing")
		}
		var sum int64
		cur.Scan(func(_ int, r relation.Row) bool { sum += r[1].(int64); return true })
		return sum, nil
	}
	v, err := reg.Register(Options{Name: "sum", Deps: []string{"KV"}, Mode: Async, MaxStale: time.Hour, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Get(); err != nil {
		t.Fatal(err)
	}
	db.Drop("KV")
	repl := relation.MustTable("KV", tbl.Schema())
	db.MustCreate(repl)
	repl.MustInsert(relation.Row{int64(1), int64(7)})
	val, serve, err := v.Get()
	if err != nil {
		t.Fatal(err)
	}
	if serve.Kind != ServeBuilt || val.(int64) != 7 {
		t.Fatalf("post-replace read = %v (%v), want 7 rebuilt", val, serve.Kind)
	}
}

// TestJoinedBuildRevalidates: a blocking read that JOINS an in-flight
// build may be handed data from before its own write — the flight
// started earlier. The strict rebuild path must detect the stale result
// and run one more build, so sync reads keep read-your-writes.
func TestJoinedBuildRevalidates(t *testing.T) {
	db, tbl := kvDB(t, 2) // sum = 30
	reg := NewRegistry(db, 1)
	gate := make(chan struct{})
	var firstBuild atomic.Bool
	firstBuild.Store(true)
	var builds atomic.Int64
	v, err := reg.Register(Options{
		Name: "sum", Deps: []string{"KV"},
		Build: func() (any, error) {
			builds.Add(1)
			var sum int64
			tbl.Scan(func(_ int, r relation.Row) bool { sum += r[1].(int64); return true })
			if firstBuild.CompareAndSwap(true, false) {
				<-gate // hold the first flight open with its pre-write data
			}
			return sum, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	aDone := make(chan int64, 1)
	go func() {
		val, _, err := v.Get()
		if err != nil {
			t.Error(err)
			aDone <- -1
			return
		}
		aDone <- val.(int64)
	}()
	for builds.Load() == 0 {
		time.Sleep(100 * time.Microsecond) // wait for A's build to be in flight
	}
	// The write commits while A's build (fingerprinted before it) hangs.
	tbl.MustInsert(relation.Row{int64(3), int64(100)})
	bDone := make(chan int64, 1)
	go func() {
		val, _, err := v.Get()
		if err != nil {
			t.Error(err)
			bDone <- -1
			return
		}
		bDone <- val.(int64)
	}()
	time.Sleep(10 * time.Millisecond) // let B reach and join the flight
	close(gate)
	if got := <-aDone; got != 30 {
		t.Fatalf("A (who started the pre-write build) = %d, want 30", got)
	}
	if got := <-bDone; got != 130 {
		t.Fatalf("B read after its write = %d, want 130 (joined result revalidated)", got)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want the joined stale result to trigger exactly one more", builds.Load())
	}
}

// TestAbsentDependencyCaches: a view whose dependency table does not
// exist yet must still cache its (empty) snapshot — the fingerprint
// records the absence and matches while the table stays absent — and
// must invalidate the moment the table is created.
func TestAbsentDependencyCaches(t *testing.T) {
	db := relation.NewDB()
	reg := NewRegistry(db, 1)
	var builds atomic.Int64
	v, err := reg.Register(Options{
		Name: "sum", Deps: []string{"KV"},
		Build: func() (any, error) {
			builds.Add(1)
			t, ok := db.Table("KV")
			if !ok {
				return int64(0), nil
			}
			var sum int64
			t.Scan(func(_ int, r relation.Row) bool { sum += r[1].(int64); return true })
			return sum, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if val, _, err := v.Get(); err != nil || val.(int64) != 0 {
		t.Fatalf("absent-table read = %v, %v", val, err)
	}
	if _, serve, _ := v.Get(); serve.Kind != ServeFresh || builds.Load() != 1 {
		t.Fatalf("second absent-table read = %v after %d builds, want a fresh hit off 1 build",
			serve.Kind, builds.Load())
	}
	tbl := relation.MustTable("KV",
		relation.NewSchema(
			relation.NotNullCol("ID", relation.TypeInt),
			relation.NotNullCol("Val", relation.TypeInt),
		))
	db.MustCreate(tbl)
	tbl.MustInsert(relation.Row{int64(1), int64(7)})
	if val, serve, _ := v.Get(); serve.Kind != ServeBuilt || val.(int64) != 7 {
		t.Fatalf("post-create read = %v (%v), want 7 rebuilt", val, serve.Kind)
	}
}

// TestGetOrRegisterOptionMismatch: reuse under one name requires the
// serving contract to agree.
func TestGetOrRegisterOptionMismatch(t *testing.T) {
	db, tbl := kvDB(t, 1)
	reg := NewRegistry(db, 1)
	build := sumKV(tbl, new(atomic.Int64))
	if _, err := reg.GetOrRegister(Options{Name: "v", Deps: []string{"KV"}, Build: build}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.GetOrRegister(Options{Name: "v", Deps: []string{"KV"}, Mode: Async, MaxStale: time.Second, Build: build}); err == nil {
		t.Fatal("conflicting serving options should not silently reuse the view")
	}
}

func TestBuildErrorRetries(t *testing.T) {
	db, tbl := kvDB(t, 2)
	reg := NewRegistry(db, 1)
	fail := atomic.Bool{}
	fail.Store(true)
	var builds atomic.Int64
	build := func() (any, error) {
		builds.Add(1)
		if fail.Load() {
			return nil, errors.New("boom")
		}
		return sumKV(tbl, new(atomic.Int64))()
	}
	v, err := reg.Register(Options{Name: "sum", Deps: []string{"KV"}, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Get(); err == nil {
		t.Fatal("failing build should surface its error")
	}
	if st := v.Stats(); st.Errors != 1 || st.HasSnapshot {
		t.Fatalf("stats = %+v, want 1 error and no snapshot", st)
	}
	fail.Store(false)
	val, _, err := v.Get()
	if err != nil || val.(int64) != 30 {
		t.Fatalf("recovered read = %v, %v; want 30", val, err)
	}
}

func TestRegistryRegistration(t *testing.T) {
	db, tbl := kvDB(t, 1)
	reg := NewRegistry(db, 1)
	opts := Options{Name: "v", Deps: []string{"KV"}, Build: sumKV(tbl, new(atomic.Int64))}
	v1, err := reg.Register(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(opts); err == nil {
		t.Fatal("duplicate Register should fail")
	}
	v2, err := reg.GetOrRegister(opts)
	if err != nil || v2 != v1 {
		t.Fatalf("GetOrRegister should return the existing view (err=%v)", err)
	}
	for _, bad := range []Options{
		{Deps: []string{"KV"}, Build: opts.Build},
		{Name: "x", Build: opts.Build},
		{Name: "x", Deps: []string{"KV"}},
	} {
		if _, err := reg.Register(bad); err == nil {
			t.Fatalf("Register(%+v) should fail", bad)
		}
	}
	if got := len(reg.Views()); got != 1 {
		t.Fatalf("Views() len = %d, want 1", got)
	}
	if s := reg.Stats(); s.Views != 1 {
		t.Fatalf("Stats().Views = %d, want 1", s.Views)
	}
}

// TestCloseDrains: Close must wait for an in-flight background refresh
// and leave the registry serving (degraded to blocking refreshes).
func TestCloseDrains(t *testing.T) {
	db, tbl := kvDB(t, 4)
	reg := NewRegistry(db, 2)
	reg.Start()
	building := make(chan struct{}, 8)
	v, err := reg.Register(Options{
		Name: "sum", Deps: []string{"KV"}, Mode: Async, MaxStale: time.Minute,
		Build: func() (any, error) {
			building <- struct{}{}
			time.Sleep(20 * time.Millisecond)
			var sum int64
			tbl.Scan(func(_ int, r relation.Row) bool { sum += r[1].(int64); return true })
			return sum, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Get(); err != nil {
		t.Fatal(err)
	}
	<-building // the cold build's signal
	tbl.MustInsert(relation.Row{int64(5), int64(50)})
	if _, serve, _ := v.Get(); serve.Kind != ServeStale {
		t.Fatalf("expected a stale serve kicking a background refresh, got %v", serve.Kind)
	}
	<-building // the worker started the background refresh
	reg.Close() // must block until that build completes
	val, _, err := v.Get()
	if err != nil {
		t.Fatal(err)
	}
	if val.(int64) != 150 {
		t.Fatalf("post-Close read = %v, want 150 (refresh completed before Close returned)", val)
	}
	reg.Close() // idempotent
}

// TestAsyncDedup: a storm of stale reads enqueues at most one refresh
// at a time.
func TestAsyncDedup(t *testing.T) {
	db, tbl := kvDB(t, 4)
	reg := NewRegistry(db, 1)
	reg.Start()
	defer reg.Close()
	var builds atomic.Int64
	v, err := reg.Register(Options{
		Name: "sum", Deps: []string{"KV"}, Mode: Async, MaxStale: time.Minute,
		Build: func() (any, error) {
			builds.Add(1)
			time.Sleep(10 * time.Millisecond)
			return int64(0), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Get(); err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(relation.Row{int64(5), int64(50)})
	for i := 0; i < 50; i++ {
		// Every read inside the bound serves immediately — fresh once the
		// refresh lands, stale before — and NEVER blocks on a build.
		if _, serve, _ := v.Get(); serve.Kind == ServeBuilt {
			t.Fatalf("read %d blocked on a build inside the staleness bound", i)
		}
	}
	time.Sleep(50 * time.Millisecond)
	// 1 cold build + a handful of deduplicated background refreshes —
	// far fewer than the 50 stale reads.
	if b := builds.Load(); b > 5 {
		t.Fatalf("50 stale reads caused %d builds, want deduplicated refreshes", b)
	}
}

func TestModeAndServeStrings(t *testing.T) {
	if Sync.String() != "sync" || Async.String() != "async" {
		t.Fatal("mode strings")
	}
}

func TestPeekDoesNotBuild(t *testing.T) {
	db, tbl := kvDB(t, 2)
	reg := NewRegistry(db, 1)
	var builds atomic.Int64
	v, err := reg.Register(Options{Name: "sum", Deps: []string{"KV"}, Build: sumKV(tbl, &builds)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := v.Peek(); ok || builds.Load() != 0 {
		t.Fatal("Peek on a cold view must not build")
	}
	if _, _, err := v.Get(); err != nil {
		t.Fatal(err)
	}
	if val, serve, ok := v.Peek(); !ok || val.(int64) != 30 || serve.Kind != ServeFresh {
		t.Fatalf("warm Peek = %v %v %v", val, serve, ok)
	}
	tbl.MustInsert(relation.Row{int64(3), int64(30)})
	if _, serve, ok := v.Peek(); !ok || serve.Kind != ServeStale {
		t.Fatalf("stale Peek kind = %v, want stale without building", serve.Kind)
	}
	if builds.Load() != 1 {
		t.Fatalf("Peek triggered builds: %d", builds.Load())
	}
}

func TestStatsFields(t *testing.T) {
	db, tbl := kvDB(t, 2)
	reg := NewRegistry(db, 1)
	v, err := reg.Register(Options{
		Name: "sum", Deps: []string{"KV"}, Mode: Async, MaxStale: time.Second,
		Build: sumKV(tbl, new(atomic.Int64)),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Name != "sum" || st.Mode != "async" || st.MaxStale != time.Second {
		t.Fatalf("stats identity = %+v", st)
	}
	if fmt.Sprint(st.Deps) != "[KV]" {
		t.Fatalf("deps = %v", st.Deps)
	}
	if _, _, err := v.Get(); err != nil {
		t.Fatal(err)
	}
	if st = v.Stats(); !st.HasSnapshot || st.Age < 0 {
		t.Fatalf("post-build stats = %+v", st)
	}
	v.Invalidate()
	if st = v.Stats(); st.HasSnapshot || st.Invalidations != 1 {
		t.Fatalf("post-Invalidate stats = %+v", st)
	}
}

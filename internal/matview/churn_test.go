package matview

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"courserank/internal/relation"
)

// TestChurnStaleBoundAndNoTornSnapshots is the refresh-lifecycle race
// test: concurrent readers against a DML storm, asserting two
// invariants on every single read —
//
//  1. snapshots are never torn: the writer holds the table's write lock
//     for a whole round (every row set to the same value) and the build
//     reads under one read lock, so every legal snapshot is UNIFORM; a
//     reader observing a mixed snapshot caught a torn publish;
//  2. the staleness bound is honored: a read served stale reports a
//     known-staleness inside the view's bound (fresh and built serves
//     are exact).
//
// Run under -race it also shakes out unsynchronized access between
// readers, the background workers and the single-flight path.
func TestChurnStaleBoundAndNoTornSnapshots(t *testing.T) {
	const (
		rows     = 64
		readers  = 4
		bound    = 25 * time.Millisecond
		duration = 400 * time.Millisecond
	)
	db := relation.NewDB()
	tbl := relation.MustTable("KV",
		relation.NewSchema(
			relation.NotNullCol("ID", relation.TypeInt),
			relation.NotNullCol("Val", relation.TypeInt),
		), relation.WithPrimaryKey("ID"))
	db.MustCreate(tbl)
	for i := 1; i <= rows; i++ {
		tbl.MustInsert(relation.Row{int64(i), int64(0)})
	}

	reg := NewRegistry(db, 2)
	reg.Start()
	defer reg.Close()
	// The build copies every Val under one Scan (a single read lock), so
	// a snapshot taken between writer rounds is all-equal.
	v, err := reg.Register(Options{
		Name: "vals", Deps: []string{"KV"}, Mode: Async, MaxStale: bound,
		Build: func() (any, error) {
			var vals []int64
			tbl.Scan(func(_ int, r relation.Row) bool {
				vals = append(vals, r[1].(int64))
				return true
			})
			return vals, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var staleServes, freshServes, builtServes atomic.Int64

	// Writer: rounds of UpdateWhere setting EVERY row to the round
	// number — one write-lock pass per round.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		round := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			round++
			if _, err := tbl.UpdateWhere(
				func(relation.Row) bool { return true },
				func(r relation.Row) relation.Row { r[1] = round; return r },
			); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				val, serve, err := v.Get()
				if err != nil {
					t.Error(err)
					return
				}
				vals := val.([]int64)
				if len(vals) != rows {
					t.Errorf("snapshot has %d rows, want %d", len(vals), rows)
					return
				}
				for _, x := range vals[1:] {
					if x != vals[0] {
						t.Errorf("torn snapshot: mixed values %d and %d", vals[0], x)
						return
					}
				}
				switch serve.Kind {
				case ServeStale:
					staleServes.Add(1)
					if serve.StaleFor > bound {
						t.Errorf("stale serve staleness %v exceeds bound %v", serve.StaleFor, bound)
						return
					}
				case ServeFresh:
					freshServes.Add(1)
				default:
					builtServes.Add(1)
				}
			}
		}()
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	t.Logf("serves: %d fresh, %d stale, %d built; view stats %+v",
		freshServes.Load(), staleServes.Load(), builtServes.Load(), v.Stats())
	if staleServes.Load() == 0 {
		t.Error("churn never exercised the stale-bounded path")
	}
}

// TestChurnTableReplacement races readers against DROP/CREATE cycles:
// reads during the gap may fail (the build sees no table) but must
// never serve rows from the dropped table's snapshot once the
// replacement exists, and the registry must survive the whole storm.
func TestChurnTableReplacement(t *testing.T) {
	db := relation.NewDB()
	mk := func(tag int64) *relation.Table {
		tbl := relation.MustTable("KV",
			relation.NewSchema(
				relation.NotNullCol("ID", relation.TypeInt),
				relation.NotNullCol("Val", relation.TypeInt),
			), relation.WithPrimaryKey("ID"))
		tbl.MustInsert(relation.Row{int64(1), tag})
		return tbl
	}
	db.MustCreate(mk(0))

	reg := NewRegistry(db, 1)
	reg.Start()
	defer reg.Close()
	v, err := reg.Register(Options{
		Name: "tag", Deps: []string{"KV"}, Mode: Async, MaxStale: time.Hour,
		Build: func() (any, error) {
			cur, ok := db.Table("KV")
			if !ok {
				return nil, errUnknownTable
			}
			var tag int64
			cur.Scan(func(_ int, r relation.Row) bool { tag = r[1].(int64); return true })
			return tag, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen++
			db.Drop("KV")
			db.MustCreate(mk(gen))
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := v.Get()
				if err != nil && !strings.Contains(err.Error(), "unknown table") {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

var errUnknownTable = &tableError{}

type tableError struct{}

func (*tableError) Error() string { return "unknown table KV (dropped mid-churn)" }

package matview

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"courserank/internal/relation"
)

// Mode selects how a view meets a read that finds its snapshot stale.
type Mode int

const (
	// Sync views refresh on read: a stale read blocks while the view
	// rebuilds (single-flighted, so concurrent cold reads build once).
	Sync Mode = iota
	// Async views serve the previous snapshot immediately while a
	// background worker refreshes behind the read, as long as the
	// snapshot's age is inside the view's staleness bound; beyond the
	// bound — or after a schema change — they block like Sync.
	Async
)

// String names the mode for listings and JSON.
func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// ServeKind says how one read was satisfied.
type ServeKind int

const (
	// ServeFresh: the snapshot's fingerprint matched every dependency.
	ServeFresh ServeKind = iota
	// ServeStale: an async view served its previous snapshot inside the
	// staleness bound while a refresh ran behind the read.
	ServeStale
	// ServeBuilt: the read blocked on a (single-flighted) rebuild.
	ServeBuilt
)

// Serve describes how a Get was answered: the path taken, the age of
// the snapshot it returned (time since its build; zero for a snapshot
// built by this read) and — for stale serves — how long the snapshot
// has been KNOWN stale, the quantity the staleness bound caps.
type Serve struct {
	Kind     ServeKind
	Age      time.Duration
	StaleFor time.Duration
}

// Options declares one materialized view.
type Options struct {
	// Name keys the view in the registry; required and unique.
	Name string
	// Deps are the base-table names whose mutations stale the view.
	Deps []string
	// Mode is Sync (refresh-on-read) or Async (stale-bounded serving).
	Mode Mode
	// MaxStale bounds an Async view's serving staleness: once a read
	// observes the snapshot stale, later reads keep serving it for at
	// most this long while refreshes run behind them — beyond it (the
	// refresher is lagging or dead) reads block like Sync. Zero makes
	// Async behave like Sync. Ignored for Sync views.
	MaxStale time.Duration
	// Build computes one snapshot value. The returned value is shared
	// between all readers of the snapshot and MUST be treated as
	// immutable by everyone — builds return fresh values, never mutate
	// a previous one.
	Build func() (any, error)
}

// tableFP pins one dependency at build time: the table pointer (identity
// across DROP/CREATE), its schema epoch and its mutation version — the
// same (SchemaEpoch, Version) machinery the plan cache fingerprints
// with, except views key on the full mutation counter because they bake
// in data, not access paths. A nil tbl records that the table did not
// exist at build time.
type tableFP struct {
	name    string
	tbl     *relation.Table
	epoch   uint64
	version uint64
}

// snapshot is one immutable build result. Readers obtain the whole
// snapshot through an atomic pointer, so a reader never observes a
// half-replaced view — refreshes publish a new snapshot or none.
// staleAt is the one mutable cell: a CAS-once observation marker
// recording when a read first found the snapshot stale, the clock the
// staleness bound runs against. (A version mismatch never un-stales —
// versions are monotonic — so the marker is set at most once.)
type snapshot struct {
	value    any
	fps      []tableFP
	builtAt  time.Time
	buildDur time.Duration
	staleAt  atomic.Int64 // unix nanos of the first stale observation; 0 = none
}

// staleFor returns how long the snapshot has been known stale as of
// now, marking the first observation.
func (s *snapshot) staleFor(now time.Time) time.Duration {
	sa := s.staleAt.Load()
	if sa == 0 {
		s.staleAt.CompareAndSwap(0, now.UnixNano())
		sa = s.staleAt.Load()
	}
	return now.Sub(time.Unix(0, sa))
}

// fresh reports whether every dependency still matches its build-time
// fingerprint exactly. A dependency absent at build time matches while
// it stays absent — the snapshot legitimately reflects "no table".
func (s *snapshot) fresh(db *relation.DB) bool {
	for _, fp := range s.fps {
		t, ok := db.Table(fp.name)
		if !ok {
			if fp.tbl == nil {
				continue // absent at build, still absent
			}
			return false
		}
		if t != fp.tbl {
			return false
		}
		epoch, version := t.ViewFingerprint()
		if epoch != fp.epoch || version != fp.version {
			return false
		}
	}
	return true
}

// sameShape reports whether every dependency is still the same table at
// the same schema epoch — the precondition for serving the snapshot
// STALE: row DML inside the staleness bound is tolerated, but a dropped,
// replaced or re-shaped table must never serve stale-schema rows.
func (s *snapshot) sameShape(db *relation.DB) bool {
	for _, fp := range s.fps {
		t, ok := db.Table(fp.name)
		if !ok {
			if fp.tbl == nil {
				continue
			}
			return false
		}
		if t != fp.tbl {
			return false
		}
		epoch, _ := t.ViewFingerprint()
		if epoch != fp.epoch {
			return false
		}
	}
	return true
}

// call is one in-flight build that late readers join instead of
// building again — the single-flight mechanism.
type call struct {
	done chan struct{}
	snap *snapshot
	err  error
}

// View is one registered materialized view. All methods are safe for
// concurrent use.
type View struct {
	reg      *Registry
	name     string
	deps     []string
	mode     Mode
	maxStale time.Duration
	build    func() (any, error)

	snap   atomic.Pointer[snapshot]
	mu     sync.Mutex // guards inflight
	flight *call
	queued atomic.Bool // a background refresh is enqueued or running

	hits          atomic.Uint64
	staleHits     atomic.Uint64
	misses        atomic.Uint64
	refreshes     atomic.Uint64
	invalidations atomic.Uint64
	errors        atomic.Uint64
}

// Name returns the view's registry key.
func (v *View) Name() string { return v.name }

// Mode returns the view's serving mode.
func (v *View) Mode() Mode { return v.mode }

// MaxStale returns the async staleness bound (zero for sync views).
func (v *View) MaxStale() time.Duration { return v.maxStale }

// Deps returns the dependency table names.
func (v *View) Deps() []string { return append([]string(nil), v.deps...) }

// fingerprint captures every dependency's current (pointer, epoch,
// version). It is taken BEFORE the build reads any table, so a mutation
// racing the build makes the snapshot immediately stale — conservative,
// never incorrect.
func (v *View) fingerprint() []tableFP {
	fps := make([]tableFP, len(v.deps))
	for i, name := range v.deps {
		fps[i] = tableFP{name: name}
		if t, ok := v.reg.db.Table(name); ok {
			fps[i].tbl = t
			fps[i].epoch, fps[i].version = t.ViewFingerprint()
		}
	}
	return fps
}

// rebuild runs (or joins) the single-flight build and returns its
// snapshot. Readers arriving while a build is in flight wait for that
// build instead of starting their own.
//
// When strict is set (blocking reads), a JOINED build's result is
// revalidated: the flight may have started before the write or DDL
// that sent this reader here, so a result that is already stale — or
// worse, pre-DDL — triggers one more round instead of being returned
// as ServeBuilt. The second round is always acceptable: any flight
// encountered then was created after the first one cleared, i.e. after
// this read began, so its fingerprint covers everything the reader has
// seen. Background refreshes pass strict=false — joining whatever
// refresh is running is exactly the deduplication they want.
func (v *View) rebuild(strict bool) (*snapshot, error) {
	joined := false
	for {
		v.mu.Lock()
		if c := v.flight; c != nil {
			v.mu.Unlock()
			<-c.done
			if c.err != nil {
				return nil, c.err
			}
			if !strict || joined || (c.snap != nil && c.snap.fresh(v.reg.db)) {
				return c.snap, nil
			}
			joined = true
			continue
		}
		c := &call{done: make(chan struct{})}
		v.flight = c
		v.mu.Unlock()

		fps := v.fingerprint()
		t0 := time.Now()
		val, err := v.build()
		if err != nil {
			v.errors.Add(1)
			c.err = fmt.Errorf("matview: building %q: %w", v.name, err)
		} else {
			c.snap = &snapshot{value: val, fps: fps, builtAt: time.Now(), buildDur: time.Since(t0)}
			v.snap.Store(c.snap)
			v.refreshes.Add(1)
		}

		v.mu.Lock()
		v.flight = nil
		v.mu.Unlock()
		close(c.done)
		return c.snap, c.err
	}
}

// Get serves the view: a fresh snapshot immediately (hit), a stale one
// inside an async view's bound while a background refresh runs
// (stale-hit), or the result of a blocking single-flighted rebuild
// (miss). The returned value is shared and immutable — callers must not
// modify it.
func (v *View) Get() (any, Serve, error) {
	if s := v.snap.Load(); s != nil {
		if s.fresh(v.reg.db) {
			v.hits.Add(1)
			return s.value, Serve{Kind: ServeFresh, Age: time.Since(s.builtAt)}, nil
		}
		if !s.sameShape(v.reg.db) {
			// Schema epoch moved or the table was replaced: the snapshot
			// may hold stale-SCHEMA rows, which must never be served.
			// Drop it so even a racing reader cannot pick it up; the CAS
			// guard counts one invalidation per event, not per reader.
			if v.snap.CompareAndSwap(s, nil) {
				v.invalidations.Add(1)
			}
		} else if v.mode == Async && v.maxStale > 0 {
			// The bound caps KNOWN staleness: the clock starts when a read
			// first observes the snapshot stale (a write nobody reads after
			// serves nobody stale data), so a long-fresh snapshot that just
			// went stale serves instantly while the refresh it triggered
			// runs — and keeps serving only while refreshes keep up.
			now := time.Now()
			if staleFor := s.staleFor(now); staleFor <= v.maxStale {
				v.staleHits.Add(1)
				v.enqueueRefresh()
				return s.value, Serve{Kind: ServeStale, Age: now.Sub(s.builtAt), StaleFor: staleFor}, nil
			}
		}
	}
	v.misses.Add(1)
	s, err := v.rebuild(true)
	if err != nil {
		return nil, Serve{}, err
	}
	return s.value, Serve{Kind: ServeBuilt, Age: time.Since(s.builtAt)}, nil
}

// Peek returns the current snapshot without serving it: no build is
// triggered and no counter moves. ok is false when the view has never
// been built (or was invalidated by a schema change). Explain-style
// introspection uses it to annotate plans without perturbing stats.
func (v *View) Peek() (value any, serve Serve, ok bool) {
	s := v.snap.Load()
	if s == nil {
		return nil, Serve{}, false
	}
	kind := ServeStale
	if s.fresh(v.reg.db) {
		kind = ServeFresh
	}
	return s.value, Serve{Kind: kind, Age: time.Since(s.builtAt)}, true
}

// Refresh forces a (single-flighted) rebuild regardless of freshness
// and blocks until it completes.
func (v *View) Refresh() error {
	_, err := v.rebuild(false)
	return err
}

// Invalidate drops the current snapshot, so the next read rebuilds.
// Registered as a manual invalidation in the counters.
func (v *View) Invalidate() {
	if v.snap.Swap(nil) != nil {
		v.invalidations.Add(1)
	}
}

// enqueueRefresh schedules one background rebuild, deduplicating: while
// a refresh is queued or running, further stale reads do not enqueue
// again. With no started worker pool (or a closed registry) this is a
// no-op — correctness is unaffected because reads beyond the staleness
// bound block and rebuild synchronously.
func (v *View) enqueueRefresh() {
	r := v.reg
	if !r.started.Load() || r.closed.Load() {
		return
	}
	if !v.queued.CompareAndSwap(false, true) {
		return
	}
	select {
	case r.queue <- v:
	default:
		// Queue full: drop the request; a later read re-triggers.
		v.queued.Store(false)
	}
}

// ViewStats is a point-in-time snapshot of one view's counters and
// snapshot state.
type ViewStats struct {
	Name          string        `json:"name"`
	Mode          string        `json:"mode"`
	MaxStale      time.Duration `json:"maxStale"`
	Deps          []string      `json:"deps"`
	Hits          uint64        `json:"hits"`
	StaleHits     uint64        `json:"staleHits"`
	Misses        uint64        `json:"misses"`
	Refreshes     uint64        `json:"refreshes"`
	Invalidations uint64        `json:"invalidations"`
	Errors        uint64        `json:"errors"`
	HasSnapshot   bool          `json:"hasSnapshot"`
	Age           time.Duration `json:"age"`       // of the current snapshot; 0 when none
	LastBuild     time.Duration `json:"lastBuild"` // duration of the last completed build
}

// Stats snapshots the view's counters.
func (v *View) Stats() ViewStats {
	st := ViewStats{
		Name:          v.name,
		Mode:          v.mode.String(),
		MaxStale:      v.maxStale,
		Deps:          v.Deps(),
		Hits:          v.hits.Load(),
		StaleHits:     v.staleHits.Load(),
		Misses:        v.misses.Load(),
		Refreshes:     v.refreshes.Load(),
		Invalidations: v.invalidations.Load(),
		Errors:        v.errors.Load(),
	}
	if s := v.snap.Load(); s != nil {
		st.HasSnapshot = true
		st.Age = time.Since(s.builtAt)
		st.LastBuild = s.buildDur
	}
	return st
}

// Stats aggregates counters across every view in a registry.
type Stats struct {
	Views         int    `json:"views"`
	Hits          uint64 `json:"hits"`
	StaleHits     uint64 `json:"staleHits"`
	Misses        uint64 `json:"misses"`
	Refreshes     uint64 `json:"refreshes"`
	Invalidations uint64 `json:"invalidations"`
	Errors        uint64 `json:"errors"`
}

// Registry is the catalog of materialized views over one database plus
// the background refresher pool serving its async views. The zero
// lifecycle is Start → serve → Close; an unstarted registry still
// serves every view correctly (async views simply degrade to blocking
// refreshes once past their staleness bound).
type Registry struct {
	db      *relation.DB
	workers int
	queue   chan *View
	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	closed  atomic.Bool

	mu    sync.RWMutex
	views map[string]*View
}

// NewRegistry builds a registry over db with the given background
// refresher pool size (minimum 1, applied at Start).
func NewRegistry(db *relation.DB, workers int) *Registry {
	if workers < 1 {
		workers = 1
	}
	return &Registry{
		db:      db,
		workers: workers,
		queue:   make(chan *View, 16*workers),
		stop:    make(chan struct{}),
		views:   make(map[string]*View),
	}
}

// DB returns the database the registry's views are defined over.
func (r *Registry) DB() *relation.DB { return r.db }

// Register declares a view. Duplicate names are rejected; use
// GetOrRegister for idempotent registration.
func (r *Registry) Register(o Options) (*View, error) {
	return r.register(o, false)
}

// GetOrRegister returns the existing view under o.Name, or registers o.
// Lazy wiring (FlexRecs Materialize steps) uses it so the first request
// to a workflow shape installs the view and later requests share it.
// Reuse requires the serving options to agree: a name registered sync
// cannot be silently re-fetched as async (or with different deps or
// bound) — that would hand one of the two callers the wrong staleness
// contract, so the mismatch is an error instead.
func (r *Registry) GetOrRegister(o Options) (*View, error) {
	return r.register(o, true)
}

func (r *Registry) register(o Options, reuse bool) (*View, error) {
	if o.Name == "" {
		return nil, fmt.Errorf("matview: view needs a name")
	}
	if o.Build == nil {
		return nil, fmt.Errorf("matview: view %q needs a Build function", o.Name)
	}
	if len(o.Deps) == 0 {
		return nil, fmt.Errorf("matview: view %q needs at least one dependency table", o.Name)
	}
	// Warm lookups take only the read lock: GetOrRegister sits on every
	// serve of lazily-wired views, so it must not serialize readers on
	// the registry's write lock once the view exists.
	if reuse {
		r.mu.RLock()
		v := r.views[o.Name]
		r.mu.RUnlock()
		if v != nil {
			return reusable(v, o)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, dup := r.views[o.Name]; dup {
		if !reuse {
			return nil, fmt.Errorf("matview: view %q already registered", o.Name)
		}
		return reusable(v, o)
	}
	v := &View{
		reg:      r,
		name:     o.Name,
		deps:     append([]string(nil), o.Deps...),
		mode:     o.Mode,
		maxStale: o.MaxStale,
		build:    o.Build,
	}
	r.views[o.Name] = v
	return v, nil
}

// Replace swaps the definition registered under o.Name — build, deps
// and serving options — publishing a fresh view with no snapshot, so
// the next read pays one build under the new definition. Callers still
// holding the old *View keep serving the old definition; lookups after
// Replace see the new one. The site uses this to swap a feed build for
// its sharded per-shard-partials variant when sharding is enabled.
func (r *Registry) Replace(o Options) (*View, error) {
	if o.Name == "" {
		return nil, fmt.Errorf("matview: view needs a name")
	}
	if o.Build == nil {
		return nil, fmt.Errorf("matview: view %q needs a Build function", o.Name)
	}
	if len(o.Deps) == 0 {
		return nil, fmt.Errorf("matview: view %q needs at least one dependency table", o.Name)
	}
	v := &View{
		reg:      r,
		name:     o.Name,
		deps:     append([]string(nil), o.Deps...),
		mode:     o.Mode,
		maxStale: o.MaxStale,
		build:    o.Build,
	}
	r.mu.Lock()
	r.views[o.Name] = v
	r.mu.Unlock()
	return v, nil
}

// reusable enforces the reuse contract: the existing view's serving
// options must agree with the requested ones.
func reusable(v *View, o Options) (*View, error) {
	if v.mode != o.Mode || v.maxStale != o.MaxStale || !slices.Equal(v.deps, o.Deps) {
		return nil, fmt.Errorf("matview: view %q already registered with different serving options", o.Name)
	}
	return v, nil
}

// View looks up a view by name.
func (r *Registry) View(name string) (*View, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.views[name]
	return v, ok
}

// Views returns every registered view sorted by name.
func (r *Registry) Views() []*View {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*View, 0, len(r.views))
	for _, v := range r.views {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// Stats aggregates counters across all views.
func (r *Registry) Stats() Stats {
	var s Stats
	for _, v := range r.Views() {
		vs := v.Stats()
		s.Views++
		s.Hits += vs.Hits
		s.StaleHits += vs.StaleHits
		s.Misses += vs.Misses
		s.Refreshes += vs.Refreshes
		s.Invalidations += vs.Invalidations
		s.Errors += vs.Errors
	}
	return s
}

// Start launches the background refresher pool. Idempotent.
func (r *Registry) Start() {
	if r.closed.Load() || !r.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < r.workers; i++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for {
				select {
				case <-r.stop:
					return
				case v := <-r.queue:
					// Clear the dedup flag BEFORE building so DML landing
					// during the build can re-enqueue a follow-up refresh.
					v.queued.Store(false)
					_, _ = v.rebuild(false)
				}
			}
		}()
	}
}

// Close stops the refresher pool and waits for in-flight builds to
// drain. Views keep serving afterwards (async ones degrade to blocking
// refreshes). Idempotent.
func (r *Registry) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	close(r.stop)
	r.wg.Wait()
	// Drop queued-but-unprocessed requests so their dedup flags reset.
	for {
		select {
		case v := <-r.queue:
			v.queued.Store(false)
		default:
			return
		}
	}
}

package cloud

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"courserank/internal/textindex"
)

// corpus builds an index shaped like the Figure 3 scenario: a large body
// of unrelated courses plus an "american" cluster with sub-themes.
func corpus(t *testing.T) (*textindex.Index, []int64) {
	t.Helper()
	ix := textindex.MustNew(textindex.Field{Name: "text", Weight: 1})
	var american []int64
	id := int64(0)
	add := func(text string, inResults bool) {
		id++
		if err := ix.Add(id, []string{text}); err != nil {
			t.Fatal(err)
		}
		if inResults {
			american = append(american, id)
		}
	}
	// Varied sentences, as real comments are: theme words appear in many
	// different bigram contexts so they stand alone in the cloud.
	politics := []string{
		"american history and politics of the united states",
		"modern politics in american life",
		"politics shaped this american century",
		"comparative politics with an american lens",
	}
	for i := 0; i < 12; i++ {
		add(politics[i%len(politics)], true)
	}
	for i := 0; i < 8; i++ {
		add("latin american literature and culture", true)
	}
	for i := 0; i < 5; i++ {
		add("african american experience in american cities", true)
	}
	indians := []string{
		"american indians and tribal nations",
		"indians of the great plains in american memory",
		"history of the indians before american settlement",
	}
	for i := 0; i < 4; i++ {
		add(indians[i%len(indians)], true)
	}
	// Background noise: common words that appear everywhere should score
	// low even if present in results.
	for i := 0; i < 60; i++ {
		add("introduction to chemistry with laboratory units", false)
	}
	for i := 0; i < 40; i++ {
		add("calculus for engineers covering derivatives", false)
	}
	ix.Finish()
	return ix, american
}

func TestComputeSurfacesThemes(t *testing.T) {
	ix, results := corpus(t)
	c := Compute(ix, results, Options{Exclude: []string{"american"}})
	if c.ResultSize != len(results) {
		t.Fatalf("ResultSize = %d", c.ResultSize)
	}
	for _, want := range []string{"latin american", "politics", "indians", "african american"} {
		if !c.Has(want) {
			t.Errorf("cloud should contain %q; got %s", want, c.String())
		}
	}
	if c.Has("american") {
		t.Error("query term must be excluded")
	}
	if c.Has("chemistry") {
		t.Error("non-result terms must not appear")
	}
}

func TestSubsumption(t *testing.T) {
	ix, results := corpus(t)
	c := Compute(ix, results, Options{Exclude: []string{"american"}})
	// "latin" occurs only inside "latin american": the unigram is
	// subsumed by the bigram.
	if c.Has("latin") {
		t.Errorf("unigram 'latin' should be subsumed by 'latin american': %s", c.String())
	}
	kept := Compute(ix, results, Options{Exclude: []string{"american"}, KeepSubsumed: true})
	if !kept.Has("latin") {
		t.Error("KeepSubsumed should retain 'latin'")
	}
}

func TestMinDocsFilter(t *testing.T) {
	ix := textindex.MustNew(textindex.Field{Name: "text", Weight: 1})
	for i := int64(1); i <= 10; i++ {
		text := "shared theme words"
		if i == 1 {
			text += " singleton"
		}
		if err := ix.Add(i, []string{text}); err != nil {
			t.Fatal(err)
		}
	}
	ix.Finish()
	ids := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	c := Compute(ix, ids, Options{})
	if c.Has("singleton") {
		t.Error("default MinDocs=2 should drop single-doc terms")
	}
	c = Compute(ix, ids, Options{MinDocs: 1, KeepSubsumed: true})
	if !c.Has("singleton") {
		t.Error("MinDocs=1 should keep singleton")
	}
}

func TestMaxTermsAndWeights(t *testing.T) {
	ix, results := corpus(t)
	c := Compute(ix, results, Options{MaxTerms: 5, Exclude: []string{"american"}})
	if len(c.Terms) > 5 {
		t.Fatalf("MaxTerms violated: %d", len(c.Terms))
	}
	// Scores descend; weights within 1..MaxWeight and non-increasing.
	for i := range c.Terms {
		if c.Terms[i].Weight < 1 || c.Terms[i].Weight > MaxWeight {
			t.Errorf("weight out of range: %+v", c.Terms[i])
		}
		if i > 0 {
			if c.Terms[i].Score > c.Terms[i-1].Score {
				t.Error("scores must descend")
			}
			if c.Terms[i].Weight > c.Terms[i-1].Weight {
				t.Error("weights must not increase as score drops")
			}
		}
	}
	if c.Terms[0].Weight != MaxWeight {
		t.Errorf("top term should have max weight, got %d", c.Terms[0].Weight)
	}
}

func TestNumericTermsDropped(t *testing.T) {
	ix := textindex.MustNew(textindex.Field{Name: "text", Weight: 1})
	for i := int64(1); i <= 4; i++ {
		if err := ix.Add(i, []string{"offered 2008 2009 winter quarter"}); err != nil {
			t.Fatal(err)
		}
	}
	ix.Finish()
	c := Compute(ix, []int64{1, 2, 3, 4}, Options{})
	if c.Has("2008") {
		t.Errorf("pure numbers should be dropped: %s", c.String())
	}
	// "winter" is subsumed by the stronger phrase "winter quarter".
	if !c.Has("winter quarter") {
		t.Error("alphabetic phrases should remain")
	}
	// Mixed alnum tokens like cs106 survive.
	if isNumeric("cs106") {
		t.Error("cs106 is not numeric")
	}
	if !isNumeric("2008 2009") {
		t.Error("'2008 2009' is numeric")
	}
}

func TestEmptyResultsAndEmptyCloud(t *testing.T) {
	ix, _ := corpus(t)
	c := Compute(ix, nil, Options{})
	if len(c.Terms) != 0 || c.ResultSize != 0 {
		t.Errorf("empty results should yield empty cloud: %+v", c)
	}
	if c.String() != "" {
		t.Error("empty cloud String should be empty")
	}
}

func TestAlphabeticalAndString(t *testing.T) {
	ix, results := corpus(t)
	c := Compute(ix, results, Options{Exclude: []string{"american"}})
	alpha := c.Alphabetical()
	for i := 1; i < len(alpha); i++ {
		if alpha[i-1].Text > alpha[i].Text {
			t.Fatal("Alphabetical not sorted")
		}
	}
	s := c.String()
	if !strings.Contains(s, "(") {
		t.Errorf("String misses weights: %q", s)
	}
}

// Property: the refinement story holds — the cloud of a subset never
// reports more result docs per term than the superset cloud, and every
// term's ResultDocs is at most the subset size.
func TestCloudCountsBoundedProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%30) + 5
		ix := textindex.MustNew(textindex.Field{Name: "t", Weight: 1})
		ids := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			id := int64(i + 1)
			if err := ix.Add(id, []string{fmt.Sprintf("theme alpha beta word%d", i%3)}); err != nil {
				return false
			}
			ids = append(ids, id)
		}
		ix.Finish()
		full := Compute(ix, ids, Options{MinDocs: 1})
		half := Compute(ix, ids[:n/2], Options{MinDocs: 1})
		fullCount := map[string]int{}
		for _, tm := range full.Terms {
			if tm.ResultDocs > n {
				return false
			}
			fullCount[tm.Text] = tm.ResultDocs
		}
		for _, tm := range half.Terms {
			if tm.ResultDocs > n/2 {
				return false
			}
			if fc, ok := fullCount[tm.Text]; ok && tm.ResultDocs > fc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Package cloud computes Data Clouds (paper §3.1): tag clouds whose
// "tags" are the most significant terms found in the results of a keyword
// search over the database. Terms are scored by contrasting their
// frequency inside the result set against the whole corpus, so the cloud
// surfaces concepts that characterize *these* results ("Latin American",
// "Indians", "politics" for the query "American") rather than globally
// common words. Cloud terms are hyperlink-like handles for refinement:
// clicking one narrows the search (Figure 3 → Figure 4).
package cloud

import (
	"math"
	"sort"
	"strings"

	"courserank/internal/textindex"
)

// Term is one cloud entry.
type Term struct {
	Text       string  // display text, e.g. "latin american"
	ResultDocs int     // result documents containing the term
	Score      float64 // significance score (higher = more characteristic)
	Weight     int     // display bucket 1..MaxWeight (font size)
}

// MaxWeight is the number of display size buckets.
const MaxWeight = 5

// Options tunes cloud computation. The zero value selects sensible
// defaults (40 terms, minimum 2 result docs, subsumption on).
type Options struct {
	// MaxTerms caps the cloud size; 0 means 40.
	MaxTerms int
	// MinDocs drops terms appearing in fewer result documents; 0 means 2
	// (a term seen once is noise, not a theme).
	MinDocs int
	// Exclude removes the given terms (typically the query's own terms);
	// matching is on tokenized form.
	Exclude []string
	// KeepSubsumed retains unigrams that occur almost exclusively inside
	// a selected bigram (by default "latin" is dropped when nearly all of
	// its result occurrences are inside "latin american").
	KeepSubsumed bool
}

func (o Options) maxTerms() int {
	if o.MaxTerms <= 0 {
		return 40
	}
	return o.MaxTerms
}

func (o Options) minDocs() int {
	if o.MinDocs <= 0 {
		return 2
	}
	return o.MinDocs
}

// Cloud is a computed data cloud, terms ordered by descending score.
type Cloud struct {
	Terms      []Term
	ResultSize int // number of result documents summarized
}

// Compute builds the data cloud for a set of result document ids over the
// given index. Each term's significance is
//
//	score = rdf × log(1 + N/df)
//
// where rdf counts result documents containing the term, df counts corpus
// documents, and N is the corpus size — result-frequency damped by
// corpus-rarity, the classic "significant terms" contrast.
func Compute(ix *textindex.Index, docIDs []int64, opts Options) *Cloud {
	n := float64(ix.DocCount())
	excluded := make(map[string]bool, len(opts.Exclude))
	for _, t := range opts.Exclude {
		toks := textindex.Tokenize(t)
		if len(toks) > 0 {
			excluded[strings.Join(toks, " ")] = true
		}
	}

	rdf := make(map[string]int)
	for _, id := range docIDs {
		ix.DocTerms(id, func(term string, _ int) bool {
			rdf[term]++
			return true
		})
	}

	type cand struct {
		text  string
		rdf   int
		score float64
	}
	var cands []cand
	for term, c := range rdf {
		if c < opts.minDocs() || excluded[term] {
			continue
		}
		if isNumeric(term) {
			continue
		}
		df := ix.DocFreq(term)
		if df == 0 {
			df = c
		}
		score := float64(c) * math.Log(1+n/float64(df))
		cands = append(cands, cand{text: term, rdf: c, score: score})
	}

	// Subsumption: a unigram that occurs (almost) only inside a candidate
	// bigram is redundant — the bigram carries the concept. Excluded
	// phrases subsume too: refining by "african american" must not
	// resurface the bare "african".
	if !opts.KeepSubsumed {
		bigramMax := make(map[string]int)
		noteBigram := func(text string, n int) {
			if i := strings.IndexByte(text, ' '); i > 0 {
				for _, w := range [2]string{text[:i], text[i+1:]} {
					if n > bigramMax[w] {
						bigramMax[w] = n
					}
				}
			}
		}
		for _, c := range cands {
			noteBigram(c.text, c.rdf)
		}
		for phrase := range excluded {
			noteBigram(phrase, rdf[phrase])
		}
		kept := cands[:0]
		for _, c := range cands {
			if !strings.Contains(c.text, " ") {
				if bm := bigramMax[c.text]; bm > 0 && float64(bm) >= 0.8*float64(c.rdf) {
					continue
				}
			}
			kept = append(kept, c)
		}
		cands = kept
	}

	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].text < cands[b].text
	})
	if len(cands) > opts.maxTerms() {
		cands = cands[:opts.maxTerms()]
	}

	out := &Cloud{ResultSize: len(docIDs), Terms: make([]Term, len(cands))}
	if len(cands) == 0 {
		return out
	}
	// Weight buckets: linear split of the score range, so the strongest
	// theme renders largest.
	lo, hi := cands[len(cands)-1].score, cands[0].score
	span := hi - lo
	for i, c := range cands {
		w := MaxWeight
		if span > 0 {
			w = 1 + int(float64(MaxWeight-1)*(c.score-lo)/span+0.5)
			if w > MaxWeight {
				w = MaxWeight
			}
			if w < 1 {
				w = 1
			}
		}
		out.Terms[i] = Term{Text: c.text, ResultDocs: c.rdf, Score: c.score, Weight: w}
	}
	return out
}

// isNumeric reports whether the term consists only of digit tokens —
// years and section numbers are not useful cloud themes.
func isNumeric(term string) bool {
	for _, tok := range strings.Split(term, " ") {
		hasAlpha := false
		for _, r := range tok {
			if r >= 'a' && r <= 'z' {
				hasAlpha = true
				break
			}
		}
		if hasAlpha {
			return false
		}
	}
	return true
}

// Has reports whether the cloud contains the term (tokenized form).
func (c *Cloud) Has(term string) bool {
	want := strings.Join(textindex.Tokenize(term), " ")
	for _, t := range c.Terms {
		if t.Text == want {
			return true
		}
	}
	return false
}

// Alphabetical returns the terms sorted for display, the way classic tag
// clouds lay out alphabetically with size encoding importance.
func (c *Cloud) Alphabetical() []Term {
	out := append([]Term(nil), c.Terms...)
	sort.Slice(out, func(a, b int) bool { return out[a].Text < out[b].Text })
	return out
}

// String renders the cloud compactly as "term(weight)" entries in
// alphabetical order.
func (c *Cloud) String() string {
	var b strings.Builder
	for i, t := range c.Alphabetical() {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(t.Text)
		b.WriteByte('(')
		b.WriteByte(byte('0' + t.Weight))
		b.WriteByte(')')
	}
	return b.String()
}

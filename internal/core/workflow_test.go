package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"courserank/internal/catalog"
	"courserank/internal/relation"
)

func TestEnrollCommentRate(t *testing.T) {
	s := seedSite(t)
	defer s.Close()
	course := s.Catalog.CoursesByDept("CS")[0].ID

	id, err := s.EnrollCommentRate(Review{
		SuID: 444, CourseID: course, Year: 2008, Term: catalog.Autumn,
		Grade: "A", Text: "great intro", Rating: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("no comment id")
	}
	entries := s.Planner.Entries(444)
	if len(entries) != 1 || entries[0].CourseID != course || entries[0].Grade != "A" {
		t.Fatalf("enrollment = %+v", entries)
	}
	found := false
	for _, c := range s.Comments.ByCourse(course) {
		if c.ID == id && c.Text == "great intro" {
			found = true
		}
	}
	if !found {
		t.Fatal("comment missing")
	}
	if avg, n := s.Comments.AvgRating(course); n != 1 || avg != 5 {
		t.Fatalf("rating = %v (%d)", avg, n)
	}

	// A duplicate submission leaves nothing behind.
	before := s.Comments.Count()
	if _, err := s.EnrollCommentRate(Review{
		SuID: 444, CourseID: course, Year: 2008, Term: catalog.Autumn,
		Text: "again", Rating: 4,
	}); err == nil {
		t.Fatal("duplicate enrollment accepted")
	}
	if s.Comments.Count() != before {
		t.Fatal("failed workflow leaked a comment")
	}
	if avg, _ := s.Comments.AvgRating(course); avg != 5 {
		t.Fatalf("failed workflow touched the rating: %v", avg)
	}

	// Validation failures reject before writing anything.
	if _, err := s.EnrollCommentRate(Review{SuID: 445, CourseID: course, Year: 2008, Term: catalog.Autumn, Text: "x", Rating: 9}); err == nil {
		t.Fatal("out-of-range rating accepted")
	}
	if _, err := s.EnrollCommentRate(Review{SuID: 445, CourseID: 999, Year: 2008, Term: catalog.Autumn, Text: "x", Rating: 3}); err == nil {
		t.Fatal("unknown course accepted")
	}
	if len(s.Planner.Entries(445)) != 0 {
		t.Fatal("rejected workflow wrote an enrollment")
	}
}

// TestEnrollCommentRateAtomic is the workflow atomicity property test:
// concurrent readers poll mid-transaction and must always see
// all-or-nothing — an enrollment implies its comment and its rating in
// the same snapshot.
func TestEnrollCommentRateAtomic(t *testing.T) {
	s := seedSite(t)
	defer s.Close()
	course := s.Catalog.CoursesByDept("CS")[0].ID
	enroll := s.DB.MustTable("Enrollments")
	commentsT := s.DB.MustTable("Comments")
	ratings := s.DB.MustTable("Ratings")

	const writers, perWriter = 4, 25
	stop := make(chan struct{})
	var torn atomic.Int64
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Only the storm's students (SuID >= 1000) are under
				// test; seedSite's fixtures predate the workflow.
				tx := s.DB.Begin()
				seen := map[int64]bool{}
				tx.Scan(enroll, func(r relation.Row) bool {
					if su := r[0].(int64); su >= 1000 {
						seen[su] = true
					}
					return true
				})
				commented := map[int64]bool{}
				tx.Scan(commentsT, func(r relation.Row) bool {
					if su := r[1].(int64); su >= 1000 {
						commented[su] = true
					}
					return true
				})
				rated := map[int64]bool{}
				tx.Scan(ratings, func(r relation.Row) bool {
					if su := r[0].(int64); su >= 1000 {
						rated[su] = true
					}
					return true
				})
				tx.Rollback()
				for su := range seen {
					if !commented[su] || !rated[su] {
						torn.Add(1)
					}
				}
				for su := range commented {
					if !seen[su] {
						torn.Add(1)
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				su := int64(1000 + w*perWriter + i)
				_, err := s.EnrollCommentRate(Review{
					SuID: su, CourseID: course, Year: 2008, Term: catalog.Autumn,
					Text: fmt.Sprintf("review by %d", su), Rating: float64(1 + i%5),
				})
				if err != nil && !errors.Is(err, relation.ErrTxConflict) {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d torn (partial-workflow) observations", torn.Load())
	}
	if failures.Load() != 0 {
		t.Fatalf("%d unexpected workflow failures", failures.Load())
	}
	if n := len(s.Comments.ByCourse(course)); n != writers*perWriter {
		t.Fatalf("committed %d comments, want %d", n, writers*perWriter)
	}
	if st := s.DB.TxStats(); st.Active != 0 {
		t.Fatalf("Active = %d after the storm", st.Active)
	}
}

package core

package core

import (
	"fmt"
	"sort"
	"time"

	"courserank/internal/matview"
	"courserank/internal/shard"
)

// matviewWorkers sizes the site's background refresher pool. Two
// workers keep independent async views from queueing behind one slow
// build without spawning a goroutine per view.
const matviewWorkers = 2

// FeedViewName is the registry key of the site's top-rated-per-
// department feed — the async, stale-bounded view every feed-style
// request reads.
const FeedViewName = "core/top-rated-by-dept"

// FeedMaxStale bounds how old a feed snapshot a read may be served:
// inside the bound a request gets the previous ranking instantly while
// a refresh runs behind it; past it the read blocks on the rebuild.
// A couple of seconds is invisible for a ranking that moves one rating
// at a time.
const FeedMaxStale = 2 * time.Second

// FeedEntry is one course in a department's top-rated feed.
type FeedEntry struct {
	CourseID int64   `json:"courseId"`
	Title    string  `json:"title"`
	Avg      float64 `json:"avg"`
	Raters   int64   `json:"raters"`
}

// feedTopPerDept caps how many courses each department's feed keeps.
const feedTopPerDept = 20

// registerFeedViews installs the site's precomputed feed views — the
// paper's "expensive aggregation served at interactive latency"
// pattern. The top-rated feed aggregates every rating in one SQL pass
// and is registered ASYNC: reads inside FeedMaxStale serve the previous
// snapshot immediately while the refresher pool rebuilds behind them.
func (s *Site) registerFeedViews() error {
	_, err := s.Views.Register(matview.Options{
		Name:     FeedViewName,
		Deps:     []string{"Comments", "Courses"},
		Mode:     matview.Async,
		MaxStale: FeedMaxStale,
		Build:    func() (any, error) { return s.buildTopRatedFeed() },
	})
	return err
}

// buildTopRatedFeed computes the whole feed in one aggregation pass:
// average rating and rater count per course, grouped into departments,
// each department's list sorted best-first and truncated.
func (s *Site) buildTopRatedFeed() (map[string][]FeedEntry, error) {
	rows, err := s.SQL.QueryRows(`SELECT c.DepID, c.CourseID, c.Title, AVG(m.Rating), COUNT(m.Rating)
		FROM Comments m JOIN Courses c ON m.CourseID = c.CourseID
		GROUP BY c.DepID, c.CourseID, c.Title`)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	out := map[string][]FeedEntry{}
	for rows.Next() {
		var dep, title string
		var cid, raters int64
		var avg any
		if err := rows.Scan(&dep, &cid, &title, &avg, &raters); err != nil {
			return nil, err
		}
		if raters == 0 {
			continue // a course whose comments carry no ratings
		}
		e := FeedEntry{CourseID: cid, Title: title, Raters: raters}
		switch x := avg.(type) {
		case float64:
			e.Avg = x
		case int64:
			e.Avg = float64(x)
		default:
			continue
		}
		out[dep] = append(out[dep], e)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return rankFeed(out), nil
}

// buildTopRatedFeedSharded is the scatter-gather variant installed by
// EnableSharding: every shard aggregates COUNT/SUM rating partials
// over its own Comments partition in parallel (the Courses side of the
// join is replicated, so the join never crosses shards), the cluster
// merges the partials by group key, and the average — which does not
// distribute — is finished here at the coordinator.
func (s *Site) buildTopRatedFeedSharded(c *shard.Cluster) (map[string][]FeedEntry, error) {
	res, err := c.Query(`SELECT c.DepID, c.CourseID, c.Title, COUNT(m.Rating), SUM(m.Rating)
		FROM Comments m JOIN Courses c ON m.CourseID = c.CourseID
		GROUP BY c.DepID, c.CourseID, c.Title`)
	if err != nil {
		return nil, err
	}
	out := map[string][]FeedEntry{}
	for _, r := range res.Rows {
		dep, _ := r[0].(string)
		cid, _ := r[1].(int64)
		title, _ := r[2].(string)
		raters, _ := r[3].(int64)
		if raters == 0 {
			continue // a course whose comments carry no ratings
		}
		var sum float64
		switch x := r[4].(type) {
		case float64:
			sum = x
		case int64:
			sum = float64(x)
		default:
			continue
		}
		out[dep] = append(out[dep], FeedEntry{
			CourseID: cid, Title: title,
			Avg: sum / float64(raters), Raters: raters,
		})
	}
	return rankFeed(out), nil
}

// rankFeed sorts each department's list best-first (average rating
// descending, course id as the tiebreak) and truncates to the per-
// department cap — the shared tail of both feed builds.
func rankFeed(out map[string][]FeedEntry) map[string][]FeedEntry {
	for dep, list := range out {
		sort.Slice(list, func(a, b int) bool {
			if list[a].Avg != list[b].Avg {
				return list[a].Avg > list[b].Avg
			}
			return list[a].CourseID < list[b].CourseID
		})
		if len(list) > feedTopPerDept {
			list = list[:feedTopPerDept]
		}
		out[dep] = list
	}
	return out
}

// TopRatedFeed returns one department's top-rated courses (at most k)
// from the materialized feed view. The serve report says whether the
// request hit a fresh snapshot, rode a bounded-stale one, or paid for
// the rebuild.
func (s *Site) TopRatedFeed(dep string, k int) ([]FeedEntry, matview.Serve, error) {
	v, ok := s.Views.View(FeedViewName)
	if !ok {
		return nil, matview.Serve{}, fmt.Errorf("core: feed view %q not registered", FeedViewName)
	}
	val, serve, err := v.Get()
	if err != nil {
		return nil, serve, err
	}
	list := val.(map[string][]FeedEntry)[dep]
	if k > 0 && len(list) > k {
		list = list[:k]
	}
	// The snapshot is shared and immutable; the truncation above only
	// re-slices, so handing the slice out is safe as long as callers
	// treat it as read-only (they do: it renders straight to JSON).
	return list, serve, nil
}

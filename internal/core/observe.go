package core

import "courserank/internal/obs"

// Query-level observability for a Site. Off by default — an
// uninstrumented site's only cost is one nil atomic-pointer load per
// statement, which keeps benchmark baselines honest — and switched on
// by the HTTP server (and anything else that wants /api/queries-style
// introspection) with one call.

// slowLogDepth is how many slowest statements a site's slow-query log
// retains.
const slowLogDepth = 32

// EnableObservability installs a query-level collector on the site's
// SQL engine (and on every shard engine, when sharded): per-statement
// latency histograms, transaction outcome counters, and a slow-query
// log whose entries get ANALYZE-annotated plans back-filled. Durable
// sites also wire WAL durability-wait attribution, so slow-log entries
// split their latency into own-fsync vs group-commit-ride time.
// Idempotent; returns the collector.
func (s *Site) EnableObservability() *obs.Collector {
	if s.Obs != nil {
		return s.Obs
	}
	c := obs.NewCollector(slowLogDepth)
	if s.Durable != nil {
		store := s.Durable
		c.WALWait = func() (ownNs, rideNs int64) {
			ws := store.Stats().WAL
			return ws.SyncWaitNs, ws.RideWaitNs
		}
	}
	s.SQL.Observe(c)
	if s.Sharded != nil {
		for i := 0; i < s.Sharded.Shards(); i++ {
			s.Sharded.Engine(i).Observe(c)
		}
	}
	s.Obs = c
	return c
}

// DisableObservability uninstalls the collector; recorded data remains
// readable on the returned collector until it is garbage.
func (s *Site) DisableObservability() {
	if s.Obs == nil {
		return
	}
	s.SQL.Observe(nil)
	if s.Sharded != nil {
		for i := 0; i < s.Sharded.Shards(); i++ {
			s.Sharded.Engine(i).Observe(nil)
		}
	}
	s.Obs = nil
}

package core_test

// External test package: exercising the sharded site end to end needs
// datagen, which imports core.

import (
	"math"
	"testing"

	"courserank/internal/comments"
	"courserank/internal/core"
	"courserank/internal/datagen"
)

func shardedPair(t *testing.T) (mono, sharded *core.Site, man *datagen.Manifest) {
	t.Helper()
	build := func() (*core.Site, *datagen.Manifest) {
		s, err := core.NewSite()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		m, err := datagen.Populate(s, datagen.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		return s, m
	}
	mono, man = build()
	sharded, _ = build() // same seed → identical corpus
	if err := sharded.EnableSharding(3); err != nil {
		t.Fatal(err)
	}
	return mono, sharded, man
}

// avgClose absorbs the float reassociation of distributed SUM partials.
func avgClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestShardedSitePlacement: splitting partitions the student-keyed
// tables (disjoint, union = base) and replicates everything else.
func TestShardedSitePlacement(t *testing.T) {
	_, s, _ := shardedPair(t)
	st := s.Sharded.Stats()
	if st.Shards != 3 {
		t.Fatalf("shards = %d", st.Shards)
	}
	want := map[string]bool{"Comments": true, "Enrollments": true, "EnrollmentPoints": true}
	for _, name := range st.PartitionedTables {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Fatalf("tables not partitioned: %v (have %v)", want, st.PartitionedTables)
	}
	total, spread := 0, 0
	for i := 0; i < st.Shards; i++ {
		n := s.Sharded.DB(i).MustTable("Comments").Len()
		total += n
		if n > 0 {
			spread++
		}
	}
	if got := s.Scale().Comments; total != got {
		t.Fatalf("sharded Comments rows = %d, base has %d", total, got)
	}
	if spread < 2 {
		t.Fatalf("comments landed on %d shards; partitioning is not spreading", spread)
	}
}

// TestShardedStrategies: the FlexRecs workflows recompile onto the
// cluster and keep answering — the per-student history feed rides the
// single-shard fast path, the similarity workflows fan out.
func TestShardedStrategies(t *testing.T) {
	mono, s, man := shardedPair(t)

	res, err := s.Strategies.Run(s.Flex, "related-courses", map[string]any{
		"title": "Introduction to Programming", "year": int64(2008), "k": 5})
	if err != nil {
		t.Fatal(err)
	}
	if ti := res.MustCol("Title"); res.Len() == 0 || res.Rows[0][ti] != "Introduction to Programming" {
		t.Fatalf("sharded related-courses top = %+v", res.Rows)
	}

	before := s.Sharded.Stats()
	hist, err := s.Strategies.Run(s.Flex, "rated-courses", map[string]any{
		"student": man.SampleStudent, "k": 20})
	if err != nil {
		t.Fatal(err)
	}
	monoHist, err := mono.Strategies.Run(mono.Flex, "rated-courses", map[string]any{
		"student": man.SampleStudent, "k": 20})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() == 0 || hist.Len() != monoHist.Len() {
		t.Fatalf("rated-courses: sharded %d rows, mono %d", hist.Len(), monoHist.Len())
	}
	after := s.Sharded.Stats()
	if after.FastPath <= before.FastPath {
		t.Fatalf("per-student history did not ride the fast path: %+v → %+v", before, after)
	}

	for _, name := range []string{"cf-courses", "grade-peers"} {
		shardRes, err := s.Strategies.Run(s.Flex, name, map[string]any{
			"student": man.SampleStudent, "k": 5})
		if err != nil {
			t.Fatalf("sharded %s: %v", name, err)
		}
		monoRes, err := mono.Strategies.Run(mono.Flex, name, map[string]any{
			"student": man.SampleStudent, "k": 5})
		if err != nil {
			t.Fatalf("mono %s: %v", name, err)
		}
		if shardRes.Len() != monoRes.Len() {
			t.Errorf("%s: sharded %d rows, mono %d", name, shardRes.Len(), monoRes.Len())
		}
	}
	if st := s.Sharded.Stats(); st.FanOut == 0 {
		t.Fatalf("similarity workflows never fanned out: %+v", st)
	}
}

// TestShardedFeedParity: the scatter-gather feed build (COUNT/SUM
// partials merged by group key, averages finished at the coordinator)
// must rank every department exactly like the monolithic AVG pass,
// with float tolerance for the reassociated sums.
func TestShardedFeedParity(t *testing.T) {
	mono, s, _ := shardedPair(t)
	deps, err := mono.SQL.Query(`SELECT DepID FROM Departments ORDER BY DepID`)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, r := range deps.Rows {
		dep := r[0].(string)
		want, _, err := mono.TopRatedFeed(dep, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := s.TopRatedFeed(dep, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s feed: sharded %d entries, mono %d", dep, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.CourseID != w.CourseID || g.Raters != w.Raters || !avgClose(g.Avg, w.Avg) {
				t.Fatalf("%s feed[%d]: sharded %+v, mono %+v", dep, i, g, w)
			}
		}
		checked += len(want)
	}
	if checked == 0 {
		t.Fatal("no feed entries compared; generator produced no rated courses?")
	}
	if st := s.Sharded.Stats(); st.MergeCombine == 0 {
		t.Fatalf("feed build did not use combine merge: %+v", st)
	}
}

// TestShardedWriteThrough: base writes made after sharding propagate
// into the shards synchronously, so cluster reads see them.
func TestShardedWriteThrough(t *testing.T) {
	_, s, man := shardedPair(t)
	count := func() int64 {
		res, err := s.ShardedQuery(`SELECT COUNT(*) FROM Comments WHERE SuID = ?`, man.SampleStudent)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].(int64)
	}
	n0 := count()
	course, err := s.ShardedQuery(`SELECT CourseID FROM Courses ORDER BY CourseID LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Comments.Add(comments.Comment{
		SuID: man.SampleStudent, CourseID: course.Rows[0][0].(int64),
		Year: 2008, Term: "Winter", Text: "after sharding", Rating: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if n1 := count(); n1 != n0+1 {
		t.Fatalf("write-through lost the comment: %d → %d", n0, n1)
	}
	if st := s.Sharded.Stats(); st.ApplyErrors != 0 {
		t.Fatalf("propagation errors: %+v", st)
	}
}

// Package core assembles CourseRank itself: the social system of
// Figure 2. It wires every subsystem — data access (relational store +
// SQL engine), keyword search over course entities, Course Cloud,
// FlexRecs, Planner, Requirement Tracker, Statistics/Eval, Q/A, Book
// Exchange — behind one Site facade, the public API that the examples,
// the HTTP server, and the experiment harness all use.
package core

import (
	"fmt"
	"sort"
	"strings"

	"courserank/internal/advisor"
	"courserank/internal/analytics"
	"courserank/internal/bookx"
	"courserank/internal/catalog"
	"courserank/internal/cloud"
	"courserank/internal/comments"
	"courserank/internal/community"
	"courserank/internal/flexrecs"
	"courserank/internal/matview"
	"courserank/internal/obs"
	"courserank/internal/planner"
	"courserank/internal/qa"
	"courserank/internal/recommend"
	"courserank/internal/relation"
	"courserank/internal/requirements"
	"courserank/internal/search"
	"courserank/internal/shard"
	"courserank/internal/sqlmini"
	"courserank/internal/stats"
)

// Site is a running CourseRank instance. All subsystems share one
// relational database, mirroring the deployed system's single MySQL
// back end.
type Site struct {
	DB        *relation.DB
	SQL       *sqlmini.Engine
	Directory *community.Directory

	Catalog      *catalog.Store
	Community    *community.Service
	Comments     *comments.Store
	Planner      *planner.Store
	Requirements *requirements.Registry
	Stats        *stats.Service
	QA           *qa.Service
	Books        *bookx.Service

	Flex       *flexrecs.Engine
	Strategies *flexrecs.Registry
	Baseline   *recommend.Engine
	Advisor    *advisor.Advisor
	Analytics  *analytics.Service
	Views      *matview.Registry

	// Durable is the write-ahead-logged storage backend when the site
	// was opened with NewDurableSite; nil for an ephemeral site.
	Durable *relation.DurableStore

	// Sharded is the scatter-gather cluster when EnableSharding was
	// called; nil for a monolithic site.
	Sharded *shard.Cluster

	// Obs is the query-level observability collector when
	// EnableObservability was called; nil (and costless) otherwise.
	Obs *obs.Collector

	index           *search.Index
	instructorIndex *search.Index
	bookIndex       *search.Index
}

// NewSite creates an empty CourseRank instance with every subsystem
// wired and the default FlexRecs strategies registered. One SQL engine
// — and therefore one shared plan cache — backs the facade, the
// FlexRecs compiler and the baseline recommenders, so any statement
// text any subsystem repeats plans exactly once.
func NewSite() (*Site, error) {
	return newSite(relation.NewDB())
}

// NewDurableSite opens (or recovers) a CourseRank instance whose
// database lives at dir behind the pager + WAL storage engine: every
// mutation any subsystem makes is journaled before it is acknowledged,
// and reopening after a crash replays the committed tail onto the last
// checkpoint. The subsystem Setups adopt recovered tables via
// DB.Ensure, so opening an existing directory yields the same wired
// site over the surviving data. Close the site to drain the WAL.
func NewDurableSite(dir string, opts relation.DurableOptions) (*Site, error) {
	db, store, err := relation.OpenDurable(dir, opts)
	if err != nil {
		return nil, err
	}
	s, err := newSite(db)
	if err != nil {
		store.Close()
		return nil, err
	}
	s.Durable = store
	return s, nil
}

func newSite(db *relation.DB) (*Site, error) {
	dir := community.NewDirectory()
	sql := sqlmini.New(db)
	views := matview.NewRegistry(db, matviewWorkers)
	s := &Site{
		DB:           db,
		SQL:          sql,
		Directory:    dir,
		Requirements: requirements.NewRegistry(),
		Flex:         flexrecs.NewEngineOver(sql),
		Strategies:   flexrecs.NewRegistry(),
		Baseline:     recommend.NewOver(db, sql),
		Views:        views,
	}
	// One materialization layer across the stack: FlexRecs Materialize
	// steps, the baseline recommenders' ratings view and the site's feed
	// views all register here and share the background refresher pool
	// (started below, after every fallible setup step, so failed
	// constructions leak no goroutines).
	s.Flex.UseMatviews(views)
	s.Baseline.UseViews(views)
	var err error
	if s.Catalog, err = catalog.Setup(db); err != nil {
		return nil, err
	}
	if s.Community, err = community.Setup(db, dir); err != nil {
		return nil, err
	}
	if s.Comments, err = comments.Setup(db); err != nil {
		return nil, err
	}
	if err := s.Comments.SetupFaculty(); err != nil {
		return nil, err
	}
	if s.Planner, err = planner.Setup(db, s.Catalog); err != nil {
		return nil, err
	}
	if s.Stats, err = stats.Setup(db, s.Catalog); err != nil {
		return nil, err
	}
	if s.QA, err = qa.Setup(db, s.Community, expertise{s}); err != nil {
		return nil, err
	}
	if s.Books, err = bookx.Setup(db, s.Catalog); err != nil {
		return nil, err
	}
	s.Advisor = advisor.New(db, s.Catalog, s.Planner, s.Requirements)
	s.Analytics = analytics.New(db)
	if err := s.registerDefaultStrategies(); err != nil {
		return nil, err
	}
	if err := s.registerFeedViews(); err != nil {
		return nil, err
	}
	views.Start()
	return s, nil
}

// Close releases the site's background resources: the materialized-view
// refresher pool stops and in-flight builds drain, then the durable
// store (if any) is drained — outstanding WAL records synced, dirty
// pages flushed — so a reopened site recovers everything acknowledged.
// Tests defer it.
func (s *Site) Close() {
	s.Views.Close()
	if s.Durable != nil {
		s.Durable.Close()
	}
}

// CourseEntityDef is the search-entity definition for courses (paper
// §3.1): a course entity spans its title, bulletin description, all
// student comments, its instructors and its department — with weights
// answering "should a title match score like a comment match?".
func CourseEntityDef() search.EntityDef {
	return search.EntityDef{
		Name: "course",
		Fields: []search.FieldSpec{
			{Name: "title", Weight: 4},
			{Name: "description", Weight: 2},
			{Name: "comments", Weight: 1},
			{Name: "instructors", Weight: 1.5},
			{Name: "department", Weight: 1},
		},
	}
}

// BuildSearchIndex (re)builds the course-entity index from the current
// catalog and comments. Call it after bulk loading; queries before the
// first build return errors.
func (s *Site) BuildSearchIndex() error {
	b, err := search.NewBuilder(CourseEntityDef())
	if err != nil {
		return err
	}
	var buildErr error
	s.Catalog.EachCourse(func(c catalog.Course) bool {
		if err := b.Append(c.ID, "title", c.Title); err != nil {
			buildErr = err
			return false
		}
		if c.Description != "" {
			if err := b.Append(c.ID, "description", c.Description); err != nil {
				buildErr = err
				return false
			}
		}
		if d, ok := s.Catalog.Department(c.DepID); ok {
			if err := b.Append(c.ID, "department", d.Name); err != nil {
				buildErr = err
				return false
			}
		}
		seen := map[int64]bool{}
		for _, o := range s.Catalog.Offerings(c.ID) {
			if o.InstructorID == 0 || seen[o.InstructorID] {
				continue
			}
			seen[o.InstructorID] = true
			if in, ok := s.Catalog.Instructor(o.InstructorID); ok {
				if err := b.Append(c.ID, "instructors", in.Name); err != nil {
					buildErr = err
					return false
				}
			}
		}
		return true
	})
	if buildErr != nil {
		return buildErr
	}
	// Comments attach to their course entity; scanning the comments
	// table directly avoids one pass per course.
	tbl := s.DB.MustTable("Comments")
	sch := tbl.Schema()
	cid, txt := sch.MustIndex("CourseID"), sch.MustIndex("Text")
	tbl.Scan(func(_ int, r relation.Row) bool {
		buildErr = b.Append(r[cid].(int64), "comments", r[txt].(string))
		return buildErr == nil
	})
	if buildErr != nil {
		return buildErr
	}
	ix, err := b.Build()
	if err != nil {
		return err
	}
	s.index = ix
	return nil
}

// SearchIndex returns the built course index, or an error before
// BuildSearchIndex has run.
func (s *Site) SearchIndex() (*search.Index, error) {
	if s.index == nil {
		return nil, fmt.Errorf("core: search index not built; call BuildSearchIndex after loading data")
	}
	return s.index, nil
}

// SearchCourses runs a keyword search over course entities.
func (s *Site) SearchCourses(query string) (*search.Results, error) {
	ix, err := s.SearchIndex()
	if err != nil {
		return nil, err
	}
	return ix.Search(query), nil
}

// RefineSearch narrows previous results by a clicked cloud term
// (Figure 3 → Figure 4).
func (s *Site) RefineSearch(prev *search.Results, term string) (*search.Results, error) {
	ix, err := s.SearchIndex()
	if err != nil {
		return nil, err
	}
	return ix.Refine(prev, term), nil
}

// CourseCloud computes the data cloud summarizing a result set,
// excluding the query's own terms.
func (s *Site) CourseCloud(res *search.Results, maxTerms int) (*cloud.Cloud, error) {
	ix, err := s.SearchIndex()
	if err != nil {
		return nil, err
	}
	return cloud.Compute(ix.Text(), res.IDs(), cloud.Options{
		MaxTerms: maxTerms,
		Exclude:  res.Query.Terms(),
	}), nil
}

// RequirementsCheck evaluates a program against a transcript of taken
// course ids, using the catalog for unit counts.
func (s *Site) RequirementsCheck(p requirements.Program, taken []int64) requirements.Report {
	return requirements.Check(p, taken, s.Catalog)
}

// expertise implements qa.Expertise: people with experience in a
// department are its faculty plus the students with the most completed
// courses there.
type expertise struct{ s *Site }

// ExpertsIn returns user ids ranked by departmental experience.
func (e expertise) ExpertsIn(depID string, limit int) []int64 {
	type scored struct {
		id int64
		n  int
	}
	counts := map[int64]int{}
	// Students: completed courses in the department.
	enroll := e.s.DB.MustTable("Enrollments")
	sch := enroll.Schema()
	su, co, pl := sch.MustIndex("SuID"), sch.MustIndex("CourseID"), sch.MustIndex("Planned")
	enroll.Scan(func(_ int, r relation.Row) bool {
		if r[pl].(bool) {
			return true
		}
		c, ok := e.s.Catalog.Course(r[co].(int64))
		if !ok || c.DepID != depID {
			return true
		}
		counts[r[su].(int64)]++
		return true
	})
	// Faculty in the department outrank students.
	users := e.s.DB.MustTable("Users")
	usch := users.Schema()
	uid, role, dep := usch.MustIndex("UserID"), usch.MustIndex("Role"), usch.MustIndex("DepID")
	users.Scan(func(_ int, r relation.Row) bool {
		if r[role].(string) == string(community.RoleFaculty) && r[dep] != nil && r[dep].(string) == depID {
			counts[r[uid].(int64)] += 1000
		}
		return true
	})
	list := make([]scored, 0, len(counts))
	for id, n := range counts {
		list = append(list, scored{id: id, n: n})
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].n != list[b].n {
			return list[a].n > list[b].n
		}
		return list[a].id < list[b].id
	})
	if limit > 0 && len(list) > limit {
		list = list[:limit]
	}
	out := make([]int64, len(list))
	for i, s := range list {
		out[i] = s.id
	}
	return out
}

// Scale reports the live deployment statistics that §2 of the paper
// quotes for CourseRank.
type Scale struct {
	Courses           int
	Comments          int
	Ratings           int
	Users             int
	Undergrads        int
	DirectorySize     int
	DirectoryStudents int // the university's student population (~14,000)
	Departments       int
	Questions         int
}

// Scale gathers the current instance's scale statistics.
func (s *Site) Scale() Scale {
	return Scale{
		Courses:           s.Catalog.CourseCount(),
		Comments:          s.Comments.Count(),
		Ratings:           s.Comments.RatingCount(),
		Users:             s.Community.UserCount(),
		Undergrads:        s.Community.UndergradCount(),
		DirectorySize:     s.Directory.Len(),
		DirectoryStudents: s.Directory.CountRole(community.RoleStudent),
		Departments:       len(s.Catalog.Departments()),
		Questions:         s.QA.QuestionCount(),
	}
}

// Component describes one Figure-2 box for the architecture experiment.
type Component struct {
	Name string
	Role string
	OK   bool
}

// Components enumerates the Figure 2 architecture with a live health
// check per box.
func (s *Site) Components() []Component {
	searchOK := s.index != nil
	return []Component{
		{Name: "Data Access", Role: "relational store + SQL engine over user and official data", OK: s.DB != nil && s.SQL != nil},
		{Name: "User data", Role: "comments, ratings, plans, listings, points", OK: s.Comments != nil},
		{Name: "Official data", Role: "courses, schedules, instructors, grade distributions", OK: s.Catalog != nil},
		{Name: "Keyword Search", Role: "entity search spanning relations (§3.1)", OK: searchOK},
		{Name: "Course Cloud", Role: "data clouds summarizing search results (§3.1)", OK: searchOK},
		{Name: "FlexRecs", Role: "declarative recommendation workflows (§3.2)", OK: s.Flex != nil && len(s.Strategies.List()) > 0},
		{Name: "Planner", Role: "quarterly schedules, conflicts, GPA (Figure 1)", OK: s.Planner != nil},
		{Name: "Req Tracker", Role: "program requirement checking", OK: s.Requirements != nil},
		{Name: "Statistics", Role: "grade distributions with privacy controls", OK: s.Stats != nil},
		{Name: "Q/A", Role: "forum with FAQ seeding and expert routing", OK: s.QA != nil},
		{Name: "Book Exchange", Role: "volunteer-reported textbooks, buy/sell matching", OK: s.Books != nil},
		{Name: "Eval", Role: "comment accuracy votes and quality ranking", OK: s.Comments != nil},
		{Name: "User Interface", Role: "students / faculty / staff constituents", OK: s.Community != nil},
	}
}

// Table1Row is one row of the paper's Table 1 comparison. The
// CourseRank column is verified live against this instance where a
// check is implementable.
type Table1Row struct {
	Dimension  string
	DB         string
	Web        string
	SocialSite string
	CourseRank string
	Verified   bool
}

// Table1 regenerates the paper's comparison table. Rows whose
// CourseRank claim is mechanically checkable are marked Verified when
// the live instance bears it out.
func (s *Site) Table1() []Table1Row {
	scale := s.Scale()
	roles := s.Community.CountByRole()
	return []Table1Row{
		{"data: control", "centrally controlled", "uncontrolled, highly distributed", "centrally stored", "centrally stored",
			len(s.DB.Names()) > 0},
		{"data: source", "transactional, official", "many providers", "user contributed", "user contributed + official",
			scale.Comments > 0 && scale.Courses > 0},
		{"data: structure", "structured", "unstructured + deep web", "mostly unstructured", "both types",
			s.index != nil},
		{"data: size", "very large", "humongous", "extra large", "large", true},
		{"access", "1 provider - many consumers", "many providers - mass consumers", "users-to-users", "closed community",
			s.Directory.Len() > 0},
		{"users: auth", "authorized", "anyone", "authorized", "authorized", true},
		{"users: identity", "real ids", "anonymous", "fake and multiple ids", "real ids",
			roles[community.RoleStudent]+roles[community.RoleFaculty]+roles[community.RoleStaff] == scale.Users},
		{"users: interests", "very focused interests", "diverse interests (hard to know)", "shared but diverse interests", "community-shaped interests", true},
		{"apps", "financial, telecommunications", "keyword search, browsing", "bookmarking, networking", "university site, corporate site", true},
		{"research", "long-time established, ACID database", "index and search", "little research, home-made solutions", "lots of challenges", true},
	}
}

// registerDefaultStrategies installs the administrator-defined FlexRecs
// strategies (§2.1): the two Figure 5 workflows plus grade-based and
// department-scoped variants showing the personalization axes §3.2
// motivates.
func (s *Site) registerDefaultStrategies() error {
	reg := []flexrecs.Template{
		{
			Name:        "related-courses",
			Description: "Courses offered in a year (or since one, with 'since') whose titles resemble a given course (Figure 5a)",
			Params:      []string{"title", "year", "since", "k"},
			Build: func(p map[string]any) (*flexrecs.Step, error) {
				title, ok := p["title"].(string)
				if !ok {
					return nil, fmt.Errorf("related-courses needs a title")
				}
				return flexrecs.Recommend(
					offeredCourses(p["year"], p["since"]),
					flexrecs.Rel("Courses").Select("Title = ?", title),
					flexrecs.JaccardOn("Title"),
				).Top(intParam(p, "k", 10)), nil
			},
		},
		{
			Name:        "rated-courses",
			Description: "The courses you rated, best first — the per-student history feed",
			Params:      []string{"student", "k"},
			Build: func(p map[string]any) (*flexrecs.Step, error) {
				student, ok := p["student"].(int64)
				if !ok {
					return nil, fmt.Errorf("rated-courses needs a student id")
				}
				// The compiled join probes Comments on the student's id
				// (a handful of rows) against the whole catalog — the
				// shape the planner answers with an index nested-loop
				// join through the Courses primary key.
				return flexrecs.Rel("Comments").
					Select("Comments.SuID = ?", student).
					JoinOn(flexrecs.Rel("Courses"), "Comments.CourseID = Courses.CourseID").
					Project("Courses.CourseID", "Title", "Rating").
					OrderBy("Rating", true).
					Top(intParam(p, "k", 20)), nil
			},
		},
		{
			Name:        "top-rated",
			Description: "The best-rated comments sitewide with their courses, best first — rides the descending ordered-index walk (ORDER BY Rating DESC elided)",
			Params:      []string{"min", "k"},
			Build: func(p map[string]any) (*flexrecs.Step, error) {
				// Compiles to one SELECT whose Rating >= ? range and ORDER
				// BY Rating DESC the planner answers together: a descending
				// walk of the Comments.Rating ordered index, no sort.
				return flexrecs.Rel("Comments").
					Select("Comments.Rating >= ?", floatParam(p, "min", 4.0)).
					JoinOn(flexrecs.Rel("Courses"), "Comments.CourseID = Courses.CourseID").
					Project("Courses.CourseID", "Title", "Rating").
					OrderBy("Rating", true).
					Top(intParam(p, "k", 10)), nil
			},
		},
		{
			Name:        "contemporary-courses",
			Description: "Courses offered within ±band years of a given course's offerings — a band join riding per-row ordered-index range probes",
			Params:      []string{"course", "band", "k"},
			Build: func(p map[string]any) (*flexrecs.Step, error) {
				course, ok := p["course"].(int64)
				if !ok {
					return nil, fmt.Errorf("contemporary-courses needs a course id")
				}
				band := intParam(p, "band", 1)
				// The band width bakes into the ON text (ON clauses carry no
				// placeholders); each width is its own compiled shape.
				on := fmt.Sprintf("b.Year BETWEEN a.Year - %d AND a.Year + %d", band, band)
				return flexrecs.Rel("CourseYears a").
					Select("a.CourseID = ?", course).
					JoinOn(flexrecs.Rel("CourseYears b"), on).
					Select("b.CourseID <> ?", course).
					Project("b.CourseID", "b.Year").
					Top(intParam(p, "k", 50)), nil
			},
		},
		{
			Name:        "cf-courses",
			Description: "Courses ranked by ratings of students similar to you (Figure 5b)",
			Params:      []string{"student", "year", "k", "neighbors"},
			Build: func(p map[string]any) (*flexrecs.Step, error) {
				student, ok := p["student"].(int64)
				if !ok {
					return nil, fmt.Errorf("cf-courses needs a student id")
				}
				ratings := flexrecs.Rel("Comments").Project("SuID", "CourseID", "Rating")
				similar := flexrecs.Recommend(
					ratings.Select("SuID <> ?", student).Extend("SuID", "CourseID", "Rating", "Ratings"),
					ratings.Select("SuID = ?", student).Extend("SuID", "CourseID", "Rating", "Ratings"),
					flexrecs.InvEuclideanOn("Ratings"),
				).Top(intParam(p, "neighbors", 20))
				return flexrecs.Recommend(
					offeredCourses(p["year"], nil),
					similar,
					flexrecs.WeightedAvg("CourseID", "Ratings", "Score"),
				).Top(intParam(p, "k", 10)), nil
			},
		},
		{
			Name:        "grade-peers",
			Description: "Courses taken by students with grade histories like yours (§3 'people with similar grades, as opposed to similar tastes')",
			Params:      []string{"student", "k", "neighbors"},
			Build: func(p map[string]any) (*flexrecs.Step, error) {
				student, ok := p["student"].(int64)
				if !ok {
					return nil, fmt.Errorf("grade-peers needs a student id")
				}
				grades := flexrecs.Rel("EnrollmentPoints")
				similar := flexrecs.Recommend(
					grades.Select("SuID <> ?", student).Extend("SuID", "CourseID", "Points", "Grades"),
					grades.Select("SuID = ?", student).Extend("SuID", "CourseID", "Points", "Grades"),
					flexrecs.InvEuclideanOn("Grades"),
				).Top(intParam(p, "neighbors", 20))
				return flexrecs.Recommend(
					flexrecs.Rel("Courses"),
					similar,
					flexrecs.WeightedAvg("CourseID", "Grades", "Score"),
				).Top(intParam(p, "k", 10)), nil
			},
		},
		{
			Name:        "department-popular",
			Description: "Best-rated courses within one department — the extend over every rating materializes once and is shared by all departments",
			Params:      []string{"dep", "k"},
			Build: func(p map[string]any) (*flexrecs.Step, error) {
				dep, ok := p["dep"].(string)
				if !ok {
					return nil, fmt.Errorf("department-popular needs a department")
				}
				// The reference side — nesting EVERY student's ratings — is
				// the expensive shared prefix of this workflow: it has no
				// personalization parameters, so one materialized result
				// serves every department and every caller until a rating
				// lands (sync mode: refresh-on-read, single-flighted).
				return flexrecs.Recommend(
					flexrecs.Rel("Courses").Select("DepID = ?", dep),
					flexrecs.Rel("Comments").Project("SuID", "CourseID", "Rating").
						Extend("SuID", "CourseID", "Rating", "Ratings").
						Materialize(flexrecs.MatOptions{Name: "ratings-extend"}),
					flexrecs.AvgOf("CourseID", "Ratings"),
				).Top(intParam(p, "k", 10)), nil
			},
		},
		{
			Name:        "hybrid",
			Description: "Blend of title similarity and collaborative filtering (content + CF)",
			Params:      []string{"student", "title", "k"},
			Build: func(p map[string]any) (*flexrecs.Step, error) {
				student, ok := p["student"].(int64)
				if !ok {
					return nil, fmt.Errorf("hybrid needs a student id")
				}
				title, ok := p["title"].(string)
				if !ok {
					return nil, fmt.Errorf("hybrid needs a title")
				}
				content := flexrecs.Recommend(
					flexrecs.Rel("Courses"),
					flexrecs.Rel("Courses").Select("Title = ?", title),
					flexrecs.JaccardOn("Title"),
				).Project("CourseID", "Title", "Score")
				ratings := flexrecs.Rel("Comments").Project("SuID", "CourseID", "Rating")
				similar := flexrecs.Recommend(
					ratings.Select("SuID <> ?", student).Extend("SuID", "CourseID", "Rating", "Ratings"),
					ratings.Select("SuID = ?", student).Extend("SuID", "CourseID", "Rating", "Ratings"),
					flexrecs.InvEuclideanOn("Ratings"),
				).Top(20)
				cf := flexrecs.Recommend(
					flexrecs.Rel("Courses"),
					similar,
					flexrecs.WeightedAvg("CourseID", "Ratings", "Score"),
				).Project("CourseID", "Score")
				// Title similarity is already in [0,1]; CF predictions
				// sit in [0,5], so weight them to comparable ranges.
				return flexrecs.Blend(content, cf, "CourseID", "Score", 1.0, 0.2).
					Top(intParam(p, "k", 10)), nil
			},
		},
	}
	for _, t := range reg {
		if err := s.Strategies.Register(t); err != nil {
			return err
		}
	}
	return nil
}

// offeredCourses scopes the Courses relation to one offering year (an
// equality probe) or to every year since one (a range scan over the
// CourseYears ordered index) when the parameters are supplied. Courses
// carry no Year column in the full catalog schema; the datagen layer
// materializes a CourseYears view for this purpose.
func offeredCourses(year, since any) *flexrecs.Step {
	if year == nil && since == nil {
		return flexrecs.Rel("Courses")
	}
	scoped := flexrecs.Rel("Courses").
		JoinOn(flexrecs.Rel("CourseYears"), "Courses.CourseID = CourseYears.CourseID")
	if year != nil {
		scoped = scoped.Select("CourseYears.Year = ?", year)
	} else {
		scoped = scoped.Select("CourseYears.Year >= ?", since)
	}
	return scoped.Project("Courses.CourseID", "Title", "DepID", "Units")
}

func intParam(p map[string]any, key string, def int) int {
	switch v := p[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	}
	return def
}

func floatParam(p map[string]any, key string, def float64) float64 {
	switch v := p[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return def
}

// RefreshDerived rebuilds the derived tables some strategies depend on:
// EnrollmentPoints (numeric grade points per enrollment, feeding the
// grade-peers strategy's extend) and CourseYears (course → offering
// year). Call after bulk loading or when enrollments change.
func (s *Site) RefreshDerived() error {
	s.DB.Drop("EnrollmentPoints")
	ep := relation.MustTable("EnrollmentPoints",
		relation.NewSchema(
			relation.NotNullCol("SuID", relation.TypeInt),
			relation.NotNullCol("CourseID", relation.TypeInt),
			relation.NotNullCol("Points", relation.TypeFloat),
		), relation.WithIndex("SuID"), relation.WithShardKey("SuID"))
	if err := s.DB.Create(ep); err != nil {
		return err
	}
	enroll := s.DB.MustTable("Enrollments")
	sch := enroll.Schema()
	su, co, gr, pl := sch.MustIndex("SuID"), sch.MustIndex("CourseID"), sch.MustIndex("Grade"), sch.MustIndex("Planned")
	var insErr error
	enroll.Scan(func(_ int, r relation.Row) bool {
		if r[pl].(bool) || r[gr] == nil {
			return true
		}
		pts, ok := catalog.Grade(r[gr].(string)).Points()
		if !ok {
			return true
		}
		_, insErr = ep.Insert(relation.Row{r[su], r[co], pts})
		return insErr == nil
	})
	if insErr != nil {
		return insErr
	}

	s.DB.Drop("CourseYears")
	// The hash index on Year turns the Figure 5(a) year-scoped join into
	// an index probe under the SQL planner; the ordered index covers the
	// "Year >= since" recency scope as a range scan.
	cy := relation.MustTable("CourseYears",
		relation.NewSchema(
			relation.NotNullCol("CourseID", relation.TypeInt),
			relation.NotNullCol("Year", relation.TypeInt),
		), relation.WithPrimaryKey("CourseID", "Year"), relation.WithIndex("Year"), relation.WithIndex("CourseID"),
		relation.WithOrderedIndex("Year"))
	if err := s.DB.Create(cy); err != nil {
		return err
	}
	off := s.DB.MustTable("Offerings")
	osch := off.Schema()
	oc, oy := osch.MustIndex("CourseID"), osch.MustIndex("Year")
	off.Scan(func(_ int, r relation.Row) bool {
		// Duplicate (course, year) pairs collapse via the primary key.
		_, err := cy.Insert(relation.Row{r[oc], r[oy]})
		if err != nil && !strings.Contains(err.Error(), "duplicate") {
			insErr = err
			return false
		}
		return true
	})
	return insErr
}

package core

import (
	"strings"
	"testing"
	"time"

	"courserank/internal/comments"
	"courserank/internal/matview"
	"courserank/internal/recommend"
)

// TestTopRatedFeedLifecycle drives the async feed view end to end:
// cold build, warm hit, stale-bounded serve after a rating lands, and
// the background refresh converging on the new ranking.
func TestTopRatedFeedLifecycle(t *testing.T) {
	s := seedSite(t)
	defer s.Close()

	entries, serve, err := s.TopRatedFeed("HISTORY", 5)
	if err != nil {
		t.Fatal(err)
	}
	if serve.Kind != matview.ServeBuilt {
		t.Fatalf("cold feed served %v, want a build", serve.Kind)
	}
	if len(entries) != 1 || entries[0].Avg != 5 {
		t.Fatalf("HISTORY feed = %+v, want the one rated course at 5", entries)
	}

	if _, serve, err = s.TopRatedFeed("HISTORY", 5); err != nil || serve.Kind != matview.ServeFresh {
		t.Fatalf("warm feed served %v (err=%v), want a fresh hit", serve.Kind, err)
	}

	// A new rating stales the view; the read inside FeedMaxStale gets
	// the previous ranking instantly.
	if _, err := s.Comments.Add(comments.Comment{SuID: 1, CourseID: entries[0].CourseID, Year: 2008, Term: "Winter", Text: "again", Rating: 1}); err != nil {
		t.Fatal(err)
	}
	entries, serve, err = s.TopRatedFeed("HISTORY", 5)
	if err != nil {
		t.Fatal(err)
	}
	if serve.Kind != matview.ServeStale || entries[0].Avg != 5 {
		t.Fatalf("bounded read served %v avg=%v, want the stale 5 served instantly", serve.Kind, entries[0].Avg)
	}

	// The refresher pool converges on the new average (5+1)/2 = 3.
	deadline := time.Now().Add(2 * time.Second)
	for {
		entries, serve, err = s.TopRatedFeed("HISTORY", 5)
		if err != nil {
			t.Fatal(err)
		}
		if serve.Kind == matview.ServeFresh && entries[0].Avg == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh never converged: %+v (%v)", entries, serve.Kind)
		}
		time.Sleep(time.Millisecond)
	}

	v, ok := s.Views.View(FeedViewName)
	if !ok {
		t.Fatal("feed view not registered")
	}
	st := v.Stats()
	if st.Mode != "async" || st.MaxStale != FeedMaxStale || st.StaleHits == 0 {
		t.Fatalf("feed view stats = %+v", st)
	}
}

// TestRatingsViewSharedRegistry: the baseline recommenders' ratings
// view must land in the Site's registry (not a private one) so it
// shows up in /api/views and shares the refresher pool.
func TestRatingsViewSharedRegistry(t *testing.T) {
	s := seedSite(t)
	defer s.Close()
	if out := s.Baseline.Popularity(1, 5); len(out) == 0 {
		t.Fatal("Popularity returned nothing")
	}
	if _, ok := s.Views.View(recommend.RatingsViewName); !ok {
		t.Fatalf("ratings view missing from the shared registry; have %v",
			viewNames(s))
	}
}

func viewNames(s *Site) []string {
	var names []string
	for _, v := range s.Views.Views() {
		names = append(names, v.Name())
	}
	return names
}

// TestDepartmentPopularRidesMatview: the strategy's extend prefix must
// serve from the materialized view on repeat runs, and Explain must say
// so.
func TestDepartmentPopularRidesMatview(t *testing.T) {
	s := seedSite(t)
	defer s.Close()
	tpl, ok := s.Strategies.Get("department-popular")
	if !ok {
		t.Fatal("no department-popular strategy")
	}
	run := func(dep string) int {
		res, err := s.Strategies.Run(s.Flex, "department-popular", map[string]any{"dep": dep, "k": 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Len()
	}
	if n := run("HISTORY"); n == 0 {
		t.Fatal("first run empty")
	}
	h0, _, m0 := s.Flex.MatStats()
	if m0 == 0 {
		t.Fatal("first run should have built the ratings-extend view")
	}
	// A DIFFERENT department hits the same shared view.
	run("CS")
	if h1, _, m1 := s.Flex.MatStats(); h1 != h0+1 || m1 != m0 {
		t.Fatalf("second department: hits %d→%d misses %d→%d, want one more hit off the shared view", h0, h1, m0, m1)
	}
	wf, err := tpl.Build(map[string]any{"dep": "CS", "k": 5})
	if err != nil {
		t.Fatal(err)
	}
	if out := s.Flex.Explain(wf); !strings.Contains(out, "matview hit (age=") {
		t.Fatalf("explain does not annotate the matview serve:\n%s", out)
	}
}

package core

import (
	"fmt"

	"courserank/internal/flexrecs"
	"courserank/internal/matview"
	"courserank/internal/shard"
	"courserank/internal/sqlmini"
)

// shardedTables are the site tables partitioned on the student axis
// when sharding is enabled. Everything else — catalog, offerings,
// requirement programs — is reference data and replicates to every
// shard, so joins against it stay local.
var shardedTables = []string{"Comments", "Enrollments", "EnrollmentPoints"}

// shardBackend routes FlexRecs' compiled workflow statements through
// the scatter-gather cluster: shard-key-pinned fragments hit one
// shard, the rest fan out and merge.
type shardBackend struct{ c *shard.Cluster }

func (b shardBackend) Prepare(sql string) (flexrecs.PreparedQuery, error) {
	return b.c.Prepare(sql)
}

func (b shardBackend) Explain(sql string, args ...any) (string, error) {
	return b.c.Explain(sql, args...)
}

// EnableSharding splits the site's student-keyed tables across n
// shards and rewires query execution above them:
//
//   - Comments, Enrollments and EnrollmentPoints are partitioned on
//     SuID; every other table replicates, so per-student working sets
//     — the dominant axis of the paper's workload — live on one shard
//     while catalog joins never cross shards.
//   - The shards trail the base database through row observers, so
//     the existing write paths (comment posts, planner moves, bulk
//     load) keep working untouched and reads through the cluster see
//     every committed base write.
//   - FlexRecs workflows recompile onto the cluster: each compiled
//     subtree routes to a single shard when its predicates pin the
//     shard key, and scatter-gathers otherwise.
//   - The top-rated feed view swaps to a per-shard parallel build:
//     each shard computes COUNT/SUM rating partials that the
//     coordinator merges by group key before finishing the averages.
//
// Call after bulk loading and RefreshDerived: base-side DDL after
// enabling (for example re-running RefreshDerived, which drops and
// recreates EnrollmentPoints) is not followed and requires resharding.
func (s *Site) EnableSharding(n int) error {
	if s.Sharded != nil {
		return fmt.Errorf("core: sharding already enabled")
	}
	for _, name := range shardedTables {
		tbl, ok := s.DB.Table(name)
		if !ok {
			continue // EnrollmentPoints exists only after RefreshDerived
		}
		if err := tbl.SetShardKey("SuID"); err != nil {
			return fmt.Errorf("core: declaring shard key on %s: %w", name, err)
		}
	}
	c, err := shard.Split(s.DB, n)
	if err != nil {
		return err
	}

	// The feed rebuild becomes a scatter-gather aggregation; existing
	// view handles keep serving the old (mono) build until re-fetched,
	// which TopRatedFeed does on every call. The build closes over the
	// cluster directly, and this Replace is the last fallible step:
	// site state is only mutated once everything that can fail has
	// succeeded, so a failed enable leaves the site mono and the call
	// retryable.
	if _, err := s.Views.Replace(matview.Options{
		Name:     FeedViewName,
		Deps:     []string{"Comments", "Courses"},
		Mode:     matview.Async,
		MaxStale: FeedMaxStale,
		Build:    func() (any, error) { return s.buildTopRatedFeedSharded(c) },
	}); err != nil {
		return err
	}

	c.FollowBase(s.DB)
	s.Sharded = c

	// Recompile workflows onto the cluster. The base SQL engine stays
	// for expression evaluation and ForceScan parity runs.
	s.Flex = flexrecs.NewEngineWithBackend(s.SQL, shardBackend{c})
	s.Flex.UseMatviews(s.Views)

	// A collector installed before sharding covers the new engines too.
	if s.Obs != nil {
		for i := 0; i < c.Shards(); i++ {
			c.Engine(i).Observe(s.Obs)
		}
	}
	return nil
}

// ShardedQuery runs one statement through the cluster, for callers —
// experiments, the HTTP layer — that want explicit scatter-gather
// execution rather than the facade's subsystem methods.
func (s *Site) ShardedQuery(text string, args ...any) (*sqlmini.Result, error) {
	if s.Sharded == nil {
		return nil, fmt.Errorf("core: sharding not enabled")
	}
	return s.Sharded.Query(text, args...)
}

package core

import (
	"strings"
	"testing"

	"courserank/internal/catalog"
	"courserank/internal/comments"
	"courserank/internal/community"
	"courserank/internal/planner"
	"courserank/internal/relation"
	"courserank/internal/requirements"
	"courserank/internal/wal"
)

// seedSite builds a minimal hand-populated site (no datagen, which
// would be an import cycle here).
func seedSite(t *testing.T) *Site {
	t.Helper()
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(s.Catalog.AddDepartment(catalog.Department{ID: "CS", Name: "Computer Science", School: "Engineering"}))
	must(s.Catalog.AddDepartment(catalog.Department{ID: "HISTORY", Name: "History", School: "H&S"}))
	intro, err := s.Catalog.AddCourse(catalog.Course{DepID: "CS", Number: "106A", Title: "Introduction to Programming", Description: "java basics", Units: 5})
	must(err)
	hist, err := s.Catalog.AddCourse(catalog.Course{DepID: "HISTORY", Number: "1", Title: "American History", Description: "a survey of american politics", Units: 3})
	must(err)
	inst, err := s.Catalog.AddInstructor(catalog.Instructor{Name: "Prof. Ada", DepID: "CS"})
	must(err)
	_, err = s.Catalog.AddOffering(catalog.Offering{CourseID: intro, Year: 2008, Term: catalog.Autumn, Days: "MWF", StartMin: 600, EndMin: 650, InstructorID: inst})
	must(err)
	_, err = s.Catalog.AddOffering(catalog.Offering{CourseID: hist, Year: 2008, Term: catalog.Winter, Days: "TR", StartMin: 600, EndMin: 675})
	must(err)
	must(s.Directory.Add(community.DirectoryEntry{Username: "sally", Name: "Sally", Role: community.RoleStudent, DepID: "CS", Undergrad: true}))
	must(s.Directory.Add(community.DirectoryEntry{Username: "widom", Name: "Prof. Widom", Role: community.RoleFaculty, DepID: "CS"}))
	u, err := s.Community.Register("sally")
	must(err)
	_, err = s.Community.Register("widom")
	must(err)
	must(s.Planner.Record(planner.Entry{SuID: u.ID, CourseID: intro, Year: 2008, Term: catalog.Autumn, Grade: "A"}))
	_, err = s.Comments.Add(comments.Comment{SuID: u.ID, CourseID: hist, Year: 2008, Term: "Winter", Text: "loved the american culture material", Rating: 5})
	must(err)
	must(s.RefreshDerived())
	must(s.BuildSearchIndex())
	return s
}

func TestSearchBeforeIndexBuild(t *testing.T) {
	s, err := NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SearchCourses("x"); err == nil {
		t.Error("search before BuildSearchIndex should fail")
	}
	if _, err := s.CourseCloud(nil, 10); err == nil {
		t.Error("cloud before BuildSearchIndex should fail")
	}
	if _, err := s.RefineSearch(nil, "x"); err == nil {
		t.Error("refine before BuildSearchIndex should fail")
	}
}

func TestEntitySearchCoversCommentsAndInstructors(t *testing.T) {
	s := seedSite(t)
	// "american" appears in title/description/comment of the history
	// course only.
	res, err := s.SearchCourses("american")
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 1 {
		t.Fatalf("american results = %d", res.Total())
	}
	// Instructor names are part of the course entity.
	res, err = s.SearchCourses("ada")
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 1 {
		t.Errorf("instructor search = %d results", res.Total())
	}
	// Department names too.
	res, _ = s.SearchCourses("computer science")
	if res.Total() != 1 {
		t.Errorf("department search = %d results", res.Total())
	}
}

func TestRefreshDerivedTables(t *testing.T) {
	s := seedSite(t)
	ep, ok := s.DB.Table("EnrollmentPoints")
	if !ok || ep.Len() != 1 {
		t.Fatalf("EnrollmentPoints = %v", ep)
	}
	cy, ok := s.DB.Table("CourseYears")
	if !ok || cy.Len() != 2 {
		t.Fatalf("CourseYears len = %d", cy.Len())
	}
	// Refresh is idempotent (drops and rebuilds).
	if err := s.RefreshDerived(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndComponents(t *testing.T) {
	s := seedSite(t)
	sc := s.Scale()
	if sc.Courses != 2 || sc.Comments != 1 || sc.Users != 2 {
		t.Errorf("scale = %+v", sc)
	}
	for _, c := range s.Components() {
		if !c.OK {
			t.Errorf("component %s down", c.Name)
		}
	}
}

func TestTable1LiveChecks(t *testing.T) {
	s := seedSite(t)
	for _, row := range s.Table1() {
		if !row.Verified {
			t.Errorf("row %q unverified", row.Dimension)
		}
	}
}

func TestStrategiesRegistered(t *testing.T) {
	s := seedSite(t)
	names := []string{}
	for _, tpl := range s.Strategies.List() {
		names = append(names, tpl.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"related-courses", "cf-courses", "grade-peers", "department-popular"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing strategy %s in %v", want, names)
		}
	}
	// Strategy parameter validation.
	if _, err := s.Strategies.Run(s.Flex, "related-courses", map[string]any{}); err == nil {
		t.Error("related-courses without title should fail")
	}
	if _, err := s.Strategies.Run(s.Flex, "cf-courses", map[string]any{}); err == nil {
		t.Error("cf-courses without student should fail")
	}
	if _, err := s.Strategies.Run(s.Flex, "grade-peers", map[string]any{}); err == nil {
		t.Error("grade-peers without student should fail")
	}
	if _, err := s.Strategies.Run(s.Flex, "department-popular", map[string]any{}); err == nil {
		t.Error("department-popular without dep should fail")
	}
}

func TestRelatedCoursesWithYearScope(t *testing.T) {
	s := seedSite(t)
	res, err := s.Strategies.Run(s.Flex, "related-courses", map[string]any{
		"title": "Introduction to Programming", "year": int64(2008), "k": 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d (both courses offered 2008)", res.Len())
	}
	// Year with no offerings yields nothing.
	res, err = s.Strategies.Run(s.Flex, "related-courses", map[string]any{
		"title": "Introduction to Programming", "year": int64(1999), "k": 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("1999 rows = %d", res.Len())
	}
}

func TestExpertiseRouting(t *testing.T) {
	s := seedSite(t)
	exp := expertise{s}
	ids := exp.ExpertsIn("CS", 5)
	if len(ids) < 2 {
		t.Fatalf("experts = %v", ids)
	}
	// Faculty outrank students.
	fac, _ := s.Community.UserByUsername("widom")
	if ids[0] != fac.ID {
		t.Errorf("faculty should rank first: %v", ids)
	}
	if got := exp.ExpertsIn("NONE", 5); len(got) != 0 {
		t.Errorf("unknown dept experts = %v", got)
	}
}

func TestAuxIndexes(t *testing.T) {
	s := seedSite(t)
	// Before building: errors.
	if _, err := s.SearchInstructors("ada"); err == nil {
		t.Error("instructor search before BuildAuxIndexes should fail")
	}
	if _, err := s.SearchBooks("x"); err == nil {
		t.Error("book search before BuildAuxIndexes should fail")
	}
	// Add a textbook so the book index has content.
	intro := int64(1)
	if _, err := s.Catalog.ReportTextbook(catalog.Textbook{CourseID: intro, Title: "The Art of Java", Author: "Gosling", ReportedBy: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildAuxIndexes(); err != nil {
		t.Fatal(err)
	}
	// Instructor entity spans name, department and taught titles.
	res, err := s.SearchInstructors("ada")
	if err != nil || res.Total() != 1 {
		t.Errorf("instructor by name: %v, %v", res, err)
	}
	res, _ = s.SearchInstructors("programming") // via taught course title
	if res.Total() != 1 {
		t.Errorf("instructor by taught title: %d", res.Total())
	}
	// Book entity spans title, author, and owning course.
	res, err = s.SearchBooks("gosling")
	if err != nil || res.Total() != 1 {
		t.Errorf("book by author: %v, %v", res, err)
	}
	res, _ = s.SearchBooks("programming") // via course title
	if res.Total() != 1 {
		t.Errorf("book by course: %d", res.Total())
	}
	if _, err := s.InstructorIndex(); err != nil {
		t.Error(err)
	}
	if _, err := s.BookIndex(); err != nil {
		t.Error(err)
	}
}

func TestRequirementsCheckFacade(t *testing.T) {
	s := seedSite(t)
	prog := requirements.Program{Name: "mini", Requirements: []requirements.Requirement{
		{Name: "one", Kind: requirements.KindChoose, K: 1, Courses: []int64{1, 2}},
	}}
	rep := s.RequirementsCheck(prog, []int64{1})
	if !rep.Satisfied {
		t.Errorf("report = %+v", rep)
	}
	rep = s.RequirementsCheck(prog, nil)
	if rep.Satisfied {
		t.Error("empty transcript should not satisfy")
	}
}

func TestHybridStrategyParamValidation(t *testing.T) {
	s := seedSite(t)
	if _, err := s.Strategies.Run(s.Flex, "hybrid", map[string]any{"title": "x"}); err == nil {
		t.Error("hybrid without student should fail")
	}
	if _, err := s.Strategies.Run(s.Flex, "hybrid", map[string]any{"student": int64(1)}); err == nil {
		t.Error("hybrid without title should fail")
	}
}

func TestIntParamCoercions(t *testing.T) {
	if intParam(map[string]any{"k": 7}, "k", 3) != 7 {
		t.Error("int")
	}
	if intParam(map[string]any{"k": int64(9)}, "k", 3) != 9 {
		t.Error("int64")
	}
	if intParam(map[string]any{"k": "nope"}, "k", 3) != 3 {
		t.Error("bad type should default")
	}
	if intParam(map[string]any{}, "k", 3) != 3 {
		t.Error("missing should default")
	}
}

func TestCourseEntityDefWeights(t *testing.T) {
	def := CourseEntityDef()
	if def.Name != "course" || len(def.Fields) != 5 {
		t.Fatalf("def = %+v", def)
	}
	// Title outweighs comments (§3.1's ranking question).
	var title, comments float64
	for _, f := range def.Fields {
		switch f.Name {
		case "title":
			title = f.Weight
		case "comments":
			comments = f.Weight
		}
	}
	if title <= comments {
		t.Errorf("title weight %v should exceed comments %v", title, comments)
	}
}

// TestDurableSiteRoundTrip: a durable site survives Close and reopen —
// catalog, community and comment rows all come back, the auto-increment
// sequences resume past recovered ids, and the rebuilt search index
// answers queries over recovered text.
func TestDurableSiteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableSite(dir, relation.DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if s.Durable == nil {
		t.Fatal("durable site has nil Durable store")
	}
	if err := s.Catalog.AddDepartment(catalog.Department{ID: "CS", Name: "Computer Science", School: "Engineering"}); err != nil {
		t.Fatal(err)
	}
	intro, err := s.Catalog.AddCourse(catalog.Course{DepID: "CS", Number: "106A", Title: "Introduction to Programming", Description: "java basics", Units: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Directory.Add(community.DirectoryEntry{Username: "sally", Name: "Sally", Role: community.RoleStudent, DepID: "CS", Undergrad: true}); err != nil {
		t.Fatal(err)
	}
	u, err := s.Community.Register("sally")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Comments.Add(comments.Comment{SuID: u.ID, CourseID: intro, Year: 2008, Term: "Aut", Text: "great intro course", Rating: 5}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re, err := NewDurableSite(dir, relation.DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	c, ok := re.Catalog.Course(intro)
	if !ok || c.Title != "Introduction to Programming" {
		t.Fatalf("recovered course = %+v, %v", c, ok)
	}
	if _, err := re.Community.Login("sally", 1); err != nil {
		t.Fatalf("recovered user cannot log in: %v", err)
	}
	got := re.Comments.ByCourse(intro)
	if len(got) != 1 || got[0].Text != "great intro course" {
		t.Fatalf("recovered comments = %+v", got)
	}
	// New inserts continue past recovered auto-increment ids.
	next, err := re.Catalog.AddCourse(catalog.Course{DepID: "CS", Number: "106B", Title: "Programming Abstractions", Description: "c++", Units: 5})
	if err != nil {
		t.Fatal(err)
	}
	if next <= intro {
		t.Errorf("auto-increment regressed: %d after %d", next, intro)
	}
	if err := re.BuildSearchIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := re.SearchCourses("programming")
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 2 {
		t.Errorf("search over recovered+new rows found %d courses, want 2", res.Total())
	}
}

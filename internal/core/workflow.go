package core

import (
	"fmt"

	"courserank/internal/catalog"
	"courserank/internal/relation"
)

// Review is the input to the EnrollCommentRate workflow: one student's
// complete evaluation of one course — the enrollment record, the
// written comment and the standalone rating the paper's evaluation
// pages collect together (§2.1).
type Review struct {
	SuID     int64
	CourseID int64
	Year     int64
	Term     catalog.Term
	Grade    catalog.Grade // "" when ungraded
	Text     string
	Rating   float64
	Date     string // optional display date for the comment
}

// EnrollCommentRate records a course evaluation atomically: the
// enrollment, the comment and the standalone rating commit together or
// not at all. Readers — including the feed matviews and the stats
// pages — never observe a comment without its enrollment or a rating
// without its comment. The whole workflow runs in one
// snapshot-isolation transaction; a write-write conflict (for example
// two devices submitting ratings for the same student concurrently)
// surfaces as relation.ErrTxConflict with nothing applied, and the
// caller can simply retry.
func (s *Site) EnrollCommentRate(rv Review) (commentID int64, err error) {
	if _, ok := s.Catalog.Course(rv.CourseID); !ok {
		return 0, fmt.Errorf("core: unknown course %d", rv.CourseID)
	}
	if catalog.TermIndex(rv.Term) < 0 {
		return 0, fmt.Errorf("core: unknown term %q", rv.Term)
	}
	if rv.Grade != "" && !rv.Grade.Valid() {
		return 0, fmt.Errorf("core: unknown grade %q", rv.Grade)
	}
	if rv.Text == "" {
		return 0, fmt.Errorf("core: empty comment text")
	}
	if rv.Rating < 1 || rv.Rating > 5 {
		return 0, fmt.Errorf("core: rating %v out of range [1,5]", rv.Rating)
	}

	enroll := s.DB.MustTable("Enrollments")
	comments := s.DB.MustTable("Comments")
	ratings := s.DB.MustTable("Ratings")

	tx := s.DB.Begin()
	defer func() {
		if err != nil {
			tx.Rollback()
		}
	}()

	// Duplicate-enrollment check inside the transaction: it sees prior
	// committed entries and this transaction's own staged ones, and the
	// first-committer-wins rule at Commit keeps two racing submissions
	// from both slipping past it.
	for _, r := range tx.Lookup(enroll, "SuID", rv.SuID) {
		if r[1] == rv.CourseID && r[2] == rv.Year && r[3] == string(rv.Term) {
			return 0, fmt.Errorf("core: duplicate enrollment for course %d in %s %d", rv.CourseID, rv.Term, rv.Year)
		}
	}
	var grade relation.Value
	if rv.Grade != "" {
		grade = string(rv.Grade)
	}
	if _, err = tx.Insert(enroll, relation.Row{rv.SuID, rv.CourseID, rv.Year, string(rv.Term), grade, false}); err != nil {
		return 0, err
	}

	var date relation.Value
	if rv.Date != "" {
		date = rv.Date
	}
	crow, err := tx.Insert(comments, relation.Row{
		nil, rv.SuID, rv.CourseID, rv.Year, string(rv.Term), rv.Text, rv.Rating, date,
	})
	if err != nil {
		return 0, err
	}
	commentID = crow[0].(int64)

	// Standalone rating upsert, mirroring comments.Store.Rate but under
	// the transaction's snapshot.
	if _, exists := tx.Get(ratings, rv.SuID, rv.CourseID); exists {
		if _, err = tx.UpdateWhere(ratings, func(r relation.Row) bool {
			return r[0] == rv.SuID && r[1] == rv.CourseID
		}, func(r relation.Row) relation.Row {
			r[2] = rv.Rating
			return r
		}); err != nil {
			return 0, err
		}
	} else if _, err = tx.Insert(ratings, relation.Row{rv.SuID, rv.CourseID, rv.Rating}); err != nil {
		return 0, err
	}

	if err = tx.Commit(); err != nil {
		return 0, err
	}
	return commentID, nil
}

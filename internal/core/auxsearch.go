package core

import (
	"fmt"
	"strings"

	"courserank/internal/relation"
	"courserank/internal/search"
)

// Auxiliary search entities — the expansion §3.1 anticipates: "We could
// easily expand searching with clouds to other entities, such as books
// and instructors." An instructor entity spans name ⊕ department ⊕ the
// titles of everything they teach; a book entity spans title ⊕ author ⊕
// the course it belongs to. Both indexes feed the same cloud layer as
// courses do.

// InstructorEntityDef defines the instructor search entity.
func InstructorEntityDef() search.EntityDef {
	return search.EntityDef{
		Name: "instructor",
		Fields: []search.FieldSpec{
			{Name: "name", Weight: 4},
			{Name: "department", Weight: 2},
			{Name: "teaches", Weight: 1},
		},
	}
}

// BookEntityDef defines the textbook search entity.
func BookEntityDef() search.EntityDef {
	return search.EntityDef{
		Name: "book",
		Fields: []search.FieldSpec{
			{Name: "title", Weight: 4},
			{Name: "author", Weight: 2},
			{Name: "course", Weight: 1},
		},
	}
}

// BuildAuxIndexes builds the instructor and book entity indexes from
// the current catalog. Call after bulk loading (BuildSearchIndex does
// not build these; they are optional features).
func (s *Site) BuildAuxIndexes() error {
	// Instructors: name, department, taught course titles.
	ib, err := search.NewBuilder(InstructorEntityDef())
	if err != nil {
		return err
	}
	taught := map[int64][]string{} // instructor → course titles
	off := s.DB.MustTable("Offerings")
	osch := off.Schema()
	oc, oi := osch.MustIndex("CourseID"), osch.MustIndex("InstructorID")
	var scanErr error
	off.Scan(func(_ int, r relation.Row) bool {
		if r[oi] == nil {
			return true
		}
		inst := r[oi].(int64)
		if c, ok := s.Catalog.Course(r[oc].(int64)); ok {
			taught[inst] = append(taught[inst], c.Title)
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	insts := s.DB.MustTable("Instructors")
	isch := insts.Schema()
	ii, iname, idep := isch.MustIndex("InstructorID"), isch.MustIndex("Name"), isch.MustIndex("DepID")
	var buildErr error
	insts.Scan(func(_ int, r relation.Row) bool {
		id := r[ii].(int64)
		if buildErr = ib.Append(id, "name", r[iname].(string)); buildErr != nil {
			return false
		}
		if d, ok := s.Catalog.Department(r[idep].(string)); ok {
			if buildErr = ib.Append(id, "department", d.Name); buildErr != nil {
				return false
			}
		}
		if titles := taught[id]; len(titles) > 0 {
			if buildErr = ib.Append(id, "teaches", strings.Join(titles, "\n")); buildErr != nil {
				return false
			}
		}
		return true
	})
	if buildErr != nil {
		return buildErr
	}
	if s.instructorIndex, err = ib.Build(); err != nil {
		return err
	}

	// Books: title, author, owning course title.
	bb, err := search.NewBuilder(BookEntityDef())
	if err != nil {
		return err
	}
	books := s.DB.MustTable("Textbooks")
	bsch := books.Schema()
	bid, bcid, btitle, bauthor := bsch.MustIndex("BookID"), bsch.MustIndex("CourseID"), bsch.MustIndex("Title"), bsch.MustIndex("Author")
	books.Scan(func(_ int, r relation.Row) bool {
		id := r[bid].(int64)
		if buildErr = bb.Append(id, "title", r[btitle].(string)); buildErr != nil {
			return false
		}
		if r[bauthor] != nil {
			if buildErr = bb.Append(id, "author", r[bauthor].(string)); buildErr != nil {
				return false
			}
		}
		if c, ok := s.Catalog.Course(r[bcid].(int64)); ok {
			if buildErr = bb.Append(id, "course", c.Title); buildErr != nil {
				return false
			}
		}
		return true
	})
	if buildErr != nil {
		return buildErr
	}
	if s.bookIndex, err = bb.Build(); err != nil {
		return err
	}
	return nil
}

// SearchInstructors searches instructor entities.
func (s *Site) SearchInstructors(query string) (*search.Results, error) {
	if s.instructorIndex == nil {
		return nil, fmt.Errorf("core: instructor index not built; call BuildAuxIndexes")
	}
	return s.instructorIndex.Search(query), nil
}

// SearchBooks searches textbook entities.
func (s *Site) SearchBooks(query string) (*search.Results, error) {
	if s.bookIndex == nil {
		return nil, fmt.Errorf("core: book index not built; call BuildAuxIndexes")
	}
	return s.bookIndex.Search(query), nil
}

// InstructorIndex exposes the instructor index (for clouds).
func (s *Site) InstructorIndex() (*search.Index, error) {
	if s.instructorIndex == nil {
		return nil, fmt.Errorf("core: instructor index not built; call BuildAuxIndexes")
	}
	return s.instructorIndex, nil
}

// BookIndex exposes the book index (for clouds).
func (s *Site) BookIndex() (*search.Index, error) {
	if s.bookIndex == nil {
		return nil, fmt.Errorf("core: book index not built; call BuildAuxIndexes")
	}
	return s.bookIndex, nil
}

// Package textindex provides the full-text substrate for CourseRank: a
// field-aware inverted index with BM25F ranking and per-document term
// statistics. It indexes both unigrams and bigrams, which lets the data
// cloud layer (package cloud) surface multi-word concepts such as
// "Latin American" (paper §3.1) and lets searches refine by phrase.
package textindex

import (
	"strings"
	"unicode"
)

// stopwords is a compact English stopword list. Stopwords are excluded
// from the index and never participate in bigrams.
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`a about above after again all also am an and any are as at be because
		been before being below between both but by can could did do does doing down during each few for from
		further had has have having he her here hers him his how i if in into is it its itself just me more
		most my no nor not of off on once only or other our ours out over own same she should so some such
		than that the their theirs them then there these they this those through to too under until up very
		was we were what when where which while who whom why will with you your yours s t d ll m re ve`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether the lowercase token is a stopword.
func IsStopword(w string) bool { return stopwords[w] }

// Tokenize lowercases text and splits it into alphanumeric tokens,
// dropping stopwords and single-character tokens. Token order is
// preserved; a sentinel gap is NOT inserted at punctuation, so bigram
// formation (see Bigrams) treats clause boundaries as adjacency — the
// same simplification classic tag-cloud systems make.
func Tokenize(text string) []string {
	return TokenizeInto(text, nil)
}

// TokenizeInto is Tokenize appending into buf's backing array (from
// buf[:0]), for callers that tokenize in a loop and drop each result
// before the next call — scoring loops tokenize thousands of titles
// per recommendation, and reusing one buffer removes the slice-growth
// garbage entirely. The returned slice aliases buf; pass it back in as
// the next call's buf. Tokens themselves remain independent strings.
func TokenizeInto(text string, buf []string) []string {
	// Lowercase once, then slice tokens out of the lowered string so
	// each token shares its backing memory instead of being built rune
	// by rune — this is the hot path of indexing, clouds and Jaccard
	// comparisons alike.
	lower := strings.ToLower(text)
	out := buf[:0]
	start := -1
	apos := false
	flush := func(end int) {
		if start < 0 {
			return
		}
		w := lower[start:end]
		start = -1
		if apos {
			// Drop apostrophes so "student's" tokenizes as "students".
			w = strings.ReplaceAll(w, "'", "")
			apos = false
		}
		if len(w) < 2 || stopwords[w] {
			return
		}
		out = append(out, w)
	}
	for i, r := range lower {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if start < 0 {
				start = i
			}
		case r == '\'':
			apos = apos || start >= 0
		default:
			flush(i)
		}
	}
	flush(len(lower))
	return out
}

// Bigrams returns the adjacent-pair phrases of a token stream, each as
// "w1 w2". Tokens must already be stopword-free (as Tokenize produces).
func Bigrams(tokens []string) []string {
	if len(tokens) < 2 {
		return nil
	}
	out := make([]string, 0, len(tokens)-1)
	for i := 0; i+1 < len(tokens); i++ {
		out = append(out, tokens[i]+" "+tokens[i+1])
	}
	return out
}

package textindex

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Field declares one weighted document field. Weights express how much a
// term occurrence in this field contributes to relevance — the paper's
// question "should a course that mentions Java in its title score the
// same as one that mentions it in the comments?" (§3.1) is answered by
// giving the title a higher weight.
type Field struct {
	Name   string
	Weight float64
}

// posting records one (document, field) occurrence count of a term.
type posting struct {
	doc   int32 // ordinal into Index.docs
	field uint8
	freq  int32
}

// termFreq is one entry of a document's forward index (term id → count,
// aggregated across fields, unigrams and bigrams together).
type termFreq struct {
	term int32
	freq int32
}

// docEntry is the per-document state.
type docEntry struct {
	id       int64
	fieldLen []int32 // tokens per field
	terms    []termFreq
}

// Index is an inverted index over documents with weighted fields. Add all
// documents, then Finish once before searching; the index is then safe
// for concurrent readers.
type Index struct {
	mu       sync.RWMutex
	fields   []Field
	fieldIdx map[string]int

	vocab    map[string]int32
	words    []string
	df       []int32     // term id → number of docs containing it
	postings [][]posting // term id → postings, in doc-ordinal order

	docs     []docEntry
	byID     map[int64]int32
	totalLen []int64 // per-field token totals, for BM25F length norm
	finished bool
}

// New creates an index with the given fields. At least one field is
// required; weights must be positive.
func New(fields ...Field) (*Index, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("textindex: at least one field required")
	}
	if len(fields) > 250 {
		return nil, fmt.Errorf("textindex: too many fields")
	}
	ix := &Index{
		fields:   append([]Field(nil), fields...),
		fieldIdx: make(map[string]int, len(fields)),
		vocab:    make(map[string]int32),
		byID:     make(map[int64]int32),
		totalLen: make([]int64, len(fields)),
	}
	for i, f := range fields {
		if f.Weight <= 0 {
			return nil, fmt.Errorf("textindex: field %q must have positive weight", f.Name)
		}
		key := strings.ToLower(f.Name)
		if _, dup := ix.fieldIdx[key]; dup {
			return nil, fmt.Errorf("textindex: duplicate field %q", f.Name)
		}
		ix.fieldIdx[key] = i
	}
	return ix, nil
}

// MustNew is New that panics on error; for statically known field sets.
func MustNew(fields ...Field) *Index {
	ix, err := New(fields...)
	if err != nil {
		panic(err)
	}
	return ix
}

// Fields returns the field definitions.
func (ix *Index) Fields() []Field { return append([]Field(nil), ix.fields...) }

func (ix *Index) intern(term string) int32 {
	if id, ok := ix.vocab[term]; ok {
		return id
	}
	// Tokenize returns slices into the document's lowered text; clone
	// before storing so the vocabulary doesn't pin whole documents.
	term = strings.Clone(term)
	id := int32(len(ix.words))
	ix.vocab[term] = id
	ix.words = append(ix.words, term)
	ix.df = append(ix.df, 0)
	ix.postings = append(ix.postings, nil)
	return id
}

// Add indexes a document. fieldValues align positionally with the fields
// passed to New; a document id may be added only once.
func (ix *Index) Add(docID int64, fieldValues []string) error {
	if len(fieldValues) != len(ix.fields) {
		return fmt.Errorf("textindex: got %d field values, want %d", len(fieldValues), len(ix.fields))
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.finished {
		return fmt.Errorf("textindex: cannot Add after Finish")
	}
	if _, dup := ix.byID[docID]; dup {
		return fmt.Errorf("textindex: duplicate document id %d", docID)
	}
	ord := int32(len(ix.docs))
	entry := docEntry{id: docID, fieldLen: make([]int32, len(ix.fields))}
	perField := make([]map[int32]int32, len(ix.fields))
	docTotals := make(map[int32]int32)
	for fi, text := range fieldValues {
		toks := Tokenize(text)
		entry.fieldLen[fi] = int32(len(toks))
		ix.totalLen[fi] += int64(len(toks))
		counts := make(map[int32]int32, len(toks)*2)
		for _, w := range toks {
			counts[ix.intern(w)]++
		}
		for _, bg := range Bigrams(toks) {
			counts[ix.intern(bg)]++
		}
		perField[fi] = counts
		for id, c := range counts {
			docTotals[id] += c
		}
	}
	for fi, counts := range perField {
		for id, c := range counts {
			ix.postings[id] = append(ix.postings[id], posting{doc: ord, field: uint8(fi), freq: c})
		}
	}
	entry.terms = make([]termFreq, 0, len(docTotals))
	for id, c := range docTotals {
		entry.terms = append(entry.terms, termFreq{term: id, freq: c})
		ix.df[id]++
	}
	sort.Slice(entry.terms, func(a, b int) bool { return entry.terms[a].term < entry.terms[b].term })
	ix.docs = append(ix.docs, entry)
	ix.byID[docID] = ord
	return nil
}

// Finish seals the index and sorts postings for deterministic iteration.
// It is idempotent.
func (ix *Index) Finish() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.finished {
		return
	}
	for _, plist := range ix.postings {
		sort.Slice(plist, func(a, b int) bool {
			if plist[a].doc != plist[b].doc {
				return plist[a].doc < plist[b].doc
			}
			return plist[a].field < plist[b].field
		})
	}
	ix.finished = true
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// DocFreq returns how many documents contain the term (unigram or
// "w1 w2" bigram), matching on the tokenized form.
func (ix *Index) DocFreq(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.vocab[normalizeTerm(term)]
	if !ok {
		return 0
	}
	return int(ix.df[id])
}

// normalizeTerm canonicalizes a user-supplied term or phrase to the
// indexed form (lowercased tokens joined by single spaces).
func normalizeTerm(term string) string {
	toks := Tokenize(term)
	return strings.Join(toks, " ")
}

// DocTerms streams the (term, frequency) pairs of one document in
// deterministic term order; fn returning false stops iteration. It
// reports whether the document exists.
func (ix *Index) DocTerms(docID int64, fn func(term string, freq int) bool) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ord, ok := ix.byID[docID]
	if !ok {
		return false
	}
	for _, tf := range ix.docs[ord].terms {
		if !fn(ix.words[tf.term], int(tf.freq)) {
			return false
		}
	}
	return true
}

// Hit is one search result.
type Hit struct {
	DocID int64
	Score float64
}

// Query is a conjunctive keyword query: every keyword and every phrase
// must occur somewhere in a matching document.
type Query struct {
	Keywords []string // single tokens
	Phrases  []string // "w1 w2" bigram phrases
}

// Empty reports whether the query has no terms.
func (q Query) Empty() bool { return len(q.Keywords) == 0 && len(q.Phrases) == 0 }

// Terms returns all query terms in indexed form (keywords then phrases).
func (q Query) Terms() []string {
	out := append([]string(nil), q.Keywords...)
	return append(out, q.Phrases...)
}

// String renders the query in user syntax (phrases quoted).
func (q Query) String() string {
	parts := append([]string(nil), q.Keywords...)
	for _, p := range q.Phrases {
		parts = append(parts, `"`+p+`"`)
	}
	return strings.Join(parts, " ")
}

// ParseQuery splits a query string into keywords and quoted phrases.
// Unquoted multi-word input becomes a conjunction of keywords; quoted
// spans become phrase terms (split into bigram chains when longer than
// two words).
func ParseQuery(s string) Query {
	var q Query
	for {
		open := strings.IndexByte(s, '"')
		if open < 0 {
			break
		}
		closeIdx := strings.IndexByte(s[open+1:], '"')
		if closeIdx < 0 {
			break
		}
		phrase := s[open+1 : open+1+closeIdx]
		toks := Tokenize(phrase)
		switch {
		case len(toks) == 1:
			q.Keywords = append(q.Keywords, toks[0])
		case len(toks) >= 2:
			q.Phrases = append(q.Phrases, Bigrams(toks)...)
		}
		s = s[:open] + " " + s[open+1+closeIdx+1:]
	}
	q.Keywords = append(q.Keywords, Tokenize(s)...)
	return q
}

// bm25 constants (standard defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Search returns documents matching every term of the query, ranked by a
// BM25F-style score in which each field's term frequency is scaled by the
// field weight and normalized by the field length. limit <= 0 returns all
// matches. Results are ordered by descending score, then ascending doc id
// for determinism.
func (ix *Index) Search(q Query, limit int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if q.Empty() || len(ix.docs) == 0 {
		return nil
	}
	terms := make([]int32, 0, len(q.Keywords)+len(q.Phrases))
	for _, t := range q.Terms() {
		id, ok := ix.vocab[normalizeTerm(t)]
		if !ok {
			return nil // conjunctive: an unknown term matches nothing
		}
		terms = append(terms, id)
	}
	// Intersect candidate docs starting from the rarest term.
	sort.Slice(terms, func(a, b int) bool { return ix.df[terms[a]] < ix.df[terms[b]] })
	candidates := docSet(ix.postings[terms[0]])
	for _, t := range terms[1:] {
		if len(candidates) == 0 {
			return nil
		}
		next := make(map[int32]struct{}, len(candidates))
		for _, p := range ix.postings[t] {
			if _, ok := candidates[p.doc]; ok {
				next[p.doc] = struct{}{}
			}
		}
		candidates = next
	}
	if len(candidates) == 0 {
		return nil
	}
	// Score candidates with BM25F.
	n := float64(len(ix.docs))
	avgLen := make([]float64, len(ix.fields))
	for fi := range ix.fields {
		avgLen[fi] = float64(ix.totalLen[fi]) / n
		if avgLen[fi] == 0 {
			avgLen[fi] = 1
		}
	}
	scores := make(map[int32]float64, len(candidates))
	for _, t := range terms {
		df := float64(ix.df[t])
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		for _, p := range ix.postings[t] {
			if _, ok := candidates[p.doc]; !ok {
				continue
			}
			fl := float64(ix.docs[p.doc].fieldLen[p.field])
			norm := 1 - bm25B + bm25B*fl/avgLen[p.field]
			wtf := ix.fields[p.field].Weight * float64(p.freq) / norm
			scores[p.doc] += idf * wtf / (bm25K1 + wtf)
		}
	}
	hits := make([]Hit, 0, len(scores))
	for ord, s := range scores {
		hits = append(hits, Hit{DocID: ix.docs[ord].id, Score: s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].DocID < hits[b].DocID
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Count returns the number of documents matching the conjunctive query
// without scoring them.
func (ix *Index) Count(q Query) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if q.Empty() {
		return 0
	}
	terms := make([]int32, 0, 4)
	for _, t := range q.Terms() {
		id, ok := ix.vocab[normalizeTerm(t)]
		if !ok {
			return 0
		}
		terms = append(terms, id)
	}
	sort.Slice(terms, func(a, b int) bool { return ix.df[terms[a]] < ix.df[terms[b]] })
	candidates := docSet(ix.postings[terms[0]])
	for _, t := range terms[1:] {
		next := make(map[int32]struct{}, len(candidates))
		for _, p := range ix.postings[t] {
			if _, ok := candidates[p.doc]; ok {
				next[p.doc] = struct{}{}
			}
		}
		candidates = next
	}
	return len(candidates)
}

func docSet(ps []posting) map[int32]struct{} {
	set := make(map[int32]struct{}, len(ps))
	for _, p := range ps {
		set[p.doc] = struct{}{}
	}
	return set
}

// VocabSize returns the number of distinct indexed terms (unigrams plus
// bigrams).
func (ix *Index) VocabSize() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.words)
}

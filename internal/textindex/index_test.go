package textindex

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"American History", []string{"american", "history"}},
		{"The history of the Americas!", []string{"history", "americas"}},
		{"CS106: Programming, Abstractions.", []string{"cs106", "programming", "abstractions"}},
		{"a an the of", nil},
		{"student's view", []string{"students", "view"}},
		{"x", nil}, // single char dropped
		{"", nil},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: tokenizing is idempotent — re-tokenizing the joined output
// yields the same tokens.
func TestTokenizeIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		first := Tokenize(s)
		second := Tokenize(strings.Join(first, " "))
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBigrams(t *testing.T) {
	got := Bigrams([]string{"latin", "american", "history"})
	want := []string{"latin american", "american history"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Bigrams = %v", got)
	}
	if Bigrams([]string{"solo"}) != nil {
		t.Error("single token has no bigrams")
	}
}

func buildIndex(t *testing.T) *Index {
	t.Helper()
	ix := MustNew(Field{Name: "title", Weight: 3}, Field{Name: "body", Weight: 1})
	docs := []struct {
		id    int64
		title string
		body  string
	}{
		{1, "American History", "a survey of american politics and culture"},
		{2, "Latin American Studies", "literature and politics of latin america"},
		{3, "African American Literature", "american writers and the african american experience"},
		{4, "Greek Science", "history of science with famous greek scientists"},
		{5, "Intro to Java", "java programming for beginners covering american coding style"},
	}
	for _, d := range docs {
		if err := ix.Add(d.id, []string{d.title, d.body}); err != nil {
			t.Fatal(err)
		}
	}
	ix.Finish()
	return ix
}

func TestSearchConjunctive(t *testing.T) {
	ix := buildIndex(t)
	hits := ix.Search(ParseQuery("american"), 0)
	if len(hits) != 4 {
		t.Fatalf("american hits = %v", hits)
	}
	hits = ix.Search(ParseQuery("american politics"), 0)
	if len(hits) != 2 {
		t.Fatalf("american politics hits = %v", hits)
	}
	if hits := ix.Search(ParseQuery("nonexistentword"), 0); hits != nil {
		t.Errorf("unknown term should match nothing, got %v", hits)
	}
	if hits := ix.Search(Query{}, 0); hits != nil {
		t.Errorf("empty query should match nothing")
	}
}

func TestSearchTitleWeighting(t *testing.T) {
	ix := buildIndex(t)
	// Doc 1 has "american" in the title (weight 3); doc 5 only in body.
	hits := ix.Search(ParseQuery("american"), 0)
	rank := map[int64]int{}
	for i, h := range hits {
		rank[h.DocID] = i
	}
	if rank[1] > rank[5] {
		t.Errorf("title match should outrank body match: %v", hits)
	}
}

func TestPhraseSearch(t *testing.T) {
	ix := buildIndex(t)
	hits := ix.Search(ParseQuery(`"african american"`), 0)
	if len(hits) != 1 || hits[0].DocID != 3 {
		t.Fatalf("phrase hits = %v", hits)
	}
	// Refinement semantics: keyword + phrase conjunction.
	hits = ix.Search(ParseQuery(`american "latin american"`), 0)
	if len(hits) != 1 || hits[0].DocID != 2 {
		t.Fatalf("refined hits = %v", hits)
	}
}

func TestParseQuery(t *testing.T) {
	q := ParseQuery(`history "latin american" java`)
	if !reflect.DeepEqual(q.Keywords, []string{"history", "java"}) {
		t.Errorf("Keywords = %v", q.Keywords)
	}
	if !reflect.DeepEqual(q.Phrases, []string{"latin american"}) {
		t.Errorf("Phrases = %v", q.Phrases)
	}
	// A long quoted phrase becomes a bigram chain.
	q = ParseQuery(`"history of modern science"`)
	if !reflect.DeepEqual(q.Phrases, []string{"history modern", "modern science"}) {
		t.Errorf("Phrases = %v", q.Phrases)
	}
	// Quoted single word degrades to a keyword.
	q = ParseQuery(`"java"`)
	if len(q.Keywords) != 1 || q.Keywords[0] != "java" {
		t.Errorf("quoted single word: %v", q)
	}
	if got := ParseQuery(`a "b`).String(); got != "" {
		t.Errorf("unterminated quote should yield empty query, got %q", got)
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Keywords: []string{"american"}, Phrases: []string{"latin american"}}
	if got := q.String(); got != `american "latin american"` {
		t.Errorf("String = %q", got)
	}
}

func TestCountMatchesSearch(t *testing.T) {
	ix := buildIndex(t)
	for _, qs := range []string{"american", "american politics", `"african american"`, "science"} {
		q := ParseQuery(qs)
		if got, want := ix.Count(q), len(ix.Search(q, 0)); got != want {
			t.Errorf("Count(%q) = %d, Search len = %d", qs, got, want)
		}
	}
	if ix.Count(Query{}) != 0 {
		t.Error("empty query Count should be 0")
	}
	if ix.Count(ParseQuery("zzzz")) != 0 {
		t.Error("unknown term Count should be 0")
	}
}

func TestDocFreqAndDocTerms(t *testing.T) {
	ix := buildIndex(t)
	if df := ix.DocFreq("american"); df != 4 {
		t.Errorf("DocFreq(american) = %d, want 4", df)
	}
	if df := ix.DocFreq("African American"); df != 1 {
		t.Errorf("DocFreq(bigram) = %d, want 1", df)
	}
	if df := ix.DocFreq("nope"); df != 0 {
		t.Errorf("DocFreq(nope) = %d", df)
	}
	seen := map[string]int{}
	if !ix.DocTerms(3, func(term string, freq int) bool {
		seen[term] = freq
		return true
	}) {
		t.Fatal("DocTerms(3) should exist")
	}
	if seen["african american"] != 2 {
		t.Errorf("doc 3 'african american' freq = %d, want 2", seen["african american"])
	}
	if seen["american"] != 3 {
		t.Errorf("doc 3 'american' freq = %d, want 3", seen["american"])
	}
	if ix.DocTerms(99, func(string, int) bool { return true }) {
		t.Error("DocTerms(99) should report false")
	}
	// Early stop.
	calls := 0
	ix.DocTerms(3, func(string, int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop made %d calls", calls)
	}
}

func TestAddErrors(t *testing.T) {
	ix := MustNew(Field{Name: "f", Weight: 1})
	if err := ix.Add(1, []string{"a", "b"}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := ix.Add(1, []string{"hello world"}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(1, []string{"again"}); err == nil {
		t.Error("duplicate doc id should fail")
	}
	ix.Finish()
	if err := ix.Add(2, []string{"too late"}); err == nil {
		t.Error("Add after Finish should fail")
	}
	ix.Finish() // idempotent
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("no fields should fail")
	}
	if _, err := New(Field{Name: "f", Weight: 0}); err == nil {
		t.Error("zero weight should fail")
	}
	if _, err := New(Field{Name: "f", Weight: 1}, Field{Name: "F", Weight: 1}); err == nil {
		t.Error("duplicate field should fail")
	}
}

func TestSearchLimitAndDeterminism(t *testing.T) {
	ix := MustNew(Field{Name: "f", Weight: 1})
	for i := int64(1); i <= 20; i++ {
		if err := ix.Add(i, []string{"common word"}); err != nil {
			t.Fatal(err)
		}
	}
	ix.Finish()
	hits := ix.Search(ParseQuery("common"), 5)
	if len(hits) != 5 {
		t.Fatalf("limit ignored: %d hits", len(hits))
	}
	// Equal scores tie-break by ascending doc id.
	for i, h := range hits {
		if h.DocID != int64(i+1) {
			t.Errorf("hit %d = doc %d, want %d", i, h.DocID, i+1)
		}
	}
}

// Property: every document added with a marker token is findable, and
// Search with a limit never returns more than the limit.
func TestSearchRecallProperty(t *testing.T) {
	f := func(n uint8) bool {
		ix := MustNew(Field{Name: "f", Weight: 1})
		docs := int(n%32) + 1
		for i := 0; i < docs; i++ {
			if err := ix.Add(int64(i), []string{fmt.Sprintf("marker%d shared filler", i)}); err != nil {
				return false
			}
		}
		ix.Finish()
		if len(ix.Search(ParseQuery("shared"), 0)) != docs {
			return false
		}
		for i := 0; i < docs; i++ {
			hits := ix.Search(ParseQuery(fmt.Sprintf("marker%d", i)), 0)
			if len(hits) != 1 || hits[0].DocID != int64(i) {
				return false
			}
		}
		return len(ix.Search(ParseQuery("shared"), 3)) <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVocabAndDocCount(t *testing.T) {
	ix := buildIndex(t)
	if ix.DocCount() != 5 {
		t.Errorf("DocCount = %d", ix.DocCount())
	}
	if ix.VocabSize() == 0 {
		t.Error("VocabSize should be positive")
	}
	if len(ix.Fields()) != 2 {
		t.Error("Fields")
	}
}

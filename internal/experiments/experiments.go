// Package experiments regenerates every table and figure of the paper
// against a synthetic deployment: Table 1, Figures 1–5, the §2 scale
// statistics, the §2.2 grade-validity claim and incentive scheme, plus
// the ablations DESIGN.md defines. Each experiment returns a printable
// report; cmd/crbench prints them and the root benchmarks time them.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"courserank/internal/catalog"
	"courserank/internal/cloud"
	"courserank/internal/community"
	"courserank/internal/core"
	"courserank/internal/datagen"
	"courserank/internal/qa"
	"courserank/internal/render"
	"courserank/internal/search"
)

// Runner holds one populated site and its generation manifest.
type Runner struct {
	Site *core.Site
	Man  *datagen.Manifest
	Cfg  datagen.Config
}

// NewRunner generates a deployment at the given scale.
func NewRunner(cfg datagen.Config) (*Runner, error) {
	site, err := core.NewSite()
	if err != nil {
		return nil, err
	}
	man, err := datagen.Populate(site, cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{Site: site, Man: man, Cfg: cfg}, nil
}

func header(title string) string {
	bar := strings.Repeat("═", 72)
	return fmt.Sprintf("%s\n%s\n%s\n", bar, title, bar)
}

// Table1 regenerates the paper's comparison table, with the CourseRank
// column verified against the live instance.
func (r *Runner) Table1() string {
	rows := r.Site.Table1()
	cells := make([][]string, len(rows))
	verified := 0
	for i, row := range rows {
		mark := " "
		if row.Verified {
			mark = "✓"
			verified++
		}
		cells[i] = []string{row.Dimension, row.DB, row.SocialSite, row.CourseRank, mark}
	}
	var b strings.Builder
	b.WriteString(header("Table 1 — DB vs Social Sites vs CourseRank (Web column elided for width)"))
	b.WriteString(render.Table([]string{"dimension", "DB", "Social Sites", "CourseRank", "live"}, cells))
	fmt.Fprintf(&b, "\n%d/%d CourseRank claims verified against this running instance.\n", verified, len(rows))
	return b.String()
}

// Figure1 renders the course descriptor page and the multi-year
// planner for the sample student.
func (r *Runner) Figure1() string {
	var b strings.Builder
	b.WriteString(header("Figure 1 — course descriptor page (left) and course planner (right)"))
	courseID := r.Man.Planted["intro-programming"]
	page, err := render.CoursePage(r.Site, courseID)
	if err != nil {
		return b.String() + "error: " + err.Error()
	}
	b.WriteString(page)
	b.WriteString("\n")
	b.WriteString(render.Plan(r.Site, r.Man.SampleStudent))
	return b.String()
}

// Figure2 lists the architecture components with live health checks.
func (r *Runner) Figure2() string {
	var b strings.Builder
	b.WriteString(header("Figure 2 — CourseRank system components"))
	rows := make([][]string, 0, 16)
	for _, c := range r.Site.Components() {
		ok := "down"
		if c.OK {
			ok = "up"
		}
		rows = append(rows, []string{c.Name, c.Role, ok})
	}
	b.WriteString(render.Table([]string{"component", "role", "status"}, rows))
	return b.String()
}

// Figure3 searches for "American": the paper reports 1160 matching
// courses and a cloud with terms like "Latin American", "Indians",
// "politics".
func (r *Runner) Figure3() (string, *search.Results, error) {
	res, err := r.Site.SearchCourses("american")
	if err != nil {
		return "", nil, err
	}
	cl, err := r.Site.CourseCloud(res, 30)
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString(header(`Figure 3 — searching for "American"`))
	b.WriteString(render.SearchResults(r.Site, res, 8))
	fmt.Fprintf(&b, "\npaper: 1160 of 18605 courses (%.2f%%) · here: %d of %d (%.2f%%)\n",
		100*1160.0/18605.0, res.Total(), r.Site.Scale().Courses,
		100*float64(res.Total())/float64(r.Site.Scale().Courses))
	b.WriteString("\nCourse Cloud:\n")
	b.WriteString(render.Cloud(cl))
	b.WriteString("\n")
	return b.String(), res, nil
}

// Figure4 refines Figure 3's results by the clicked term "African
// American": the paper reports 123 matches and an updated cloud.
func (r *Runner) Figure4() (string, error) {
	_, res, err := r.Figure3()
	if err != nil {
		return "", err
	}
	ref, err := r.Site.RefineSearch(res, "african american")
	if err != nil {
		return "", err
	}
	cl, err := r.Site.CourseCloud(ref, 30)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header(`Figure 4 — refining to "African American"`))
	b.WriteString(render.SearchResults(r.Site, ref, 8))
	fmt.Fprintf(&b, "\npaper: narrowed 1160 → 123 (%.1f%%) · here: %d → %d (%.1f%%)\n",
		100*123.0/1160.0, res.Total(), ref.Total(), 100*float64(ref.Total())/float64(res.Total()))
	b.WriteString("\nUpdated Course Cloud:\n")
	b.WriteString(render.Cloud(cl))
	b.WriteString("\n")
	return b.String(), nil
}

// Figure5a runs the related-course workflow (σYear ▷Jaccard[Title]).
func (r *Runner) Figure5a() (string, error) {
	year := r.Cfg.Years[len(r.Cfg.Years)-1]
	tpl, _ := r.Site.Strategies.Get("related-courses")
	wf, err := tpl.Build(map[string]any{"title": "Introduction to Programming", "year": year, "k": 6})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header("Figure 5(a) — related-course workflow"))
	b.WriteString("Plan:\n" + r.Site.Flex.Explain(wf) + "\n")
	res, err := r.Site.Flex.Run(wf)
	if err != nil {
		return "", err
	}
	ti, si := res.MustCol("Title"), res.MustCol("Score")
	rows := make([][]string, res.Len())
	for i := range res.Rows {
		rows[i] = []string{fmt.Sprint(res.Rows[i][ti]), fmt.Sprintf("%.3f", res.Rows[i][si])}
	}
	b.WriteString(render.Table([]string{"related course (by title Jaccard)", "score"}, rows))
	return b.String(), nil
}

// Figure5b runs the collaborative-filtering workflow (extend ε +
// inv_Euclidean neighbors + Identify/W_Avg course ranking).
func (r *Runner) Figure5b() (string, error) {
	tpl, _ := r.Site.Strategies.Get("cf-courses")
	wf, err := tpl.Build(map[string]any{"student": r.Man.SampleStudent, "k": 8, "neighbors": 15})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Figure 5(b) — collaborative filtering workflow (student %d)", r.Man.SampleStudent)))
	b.WriteString("Plan:\n" + r.Site.Flex.Explain(wf) + "\n")
	res, err := r.Site.Flex.Run(wf)
	if err != nil {
		return "", err
	}
	ci, si := res.MustCol("CourseID"), res.MustCol("Score")
	rows := make([][]string, 0, res.Len())
	for i := range res.Rows {
		c, ok := r.Site.Catalog.Course(res.Rows[i][ci].(int64))
		if !ok {
			continue
		}
		rows = append(rows, []string{c.Code(), c.Title, fmt.Sprintf("%.2f", res.Rows[i][si])})
	}
	b.WriteString(render.Table([]string{"course", "title", "predicted rating"}, rows))
	return b.String(), nil
}

// ScaleStats compares this deployment's §2 statistics with the paper's.
func (r *Runner) ScaleStats() string {
	s := r.Site.Scale()
	var b strings.Builder
	b.WriteString(header("§2 deployment statistics — paper vs this instance"))
	rows := [][]string{
		{"courses", "18,605", fmt.Sprint(s.Courses)},
		{"comments", "134,000", fmt.Sprint(s.Comments)},
		{"ratings", "50,300", fmt.Sprint(s.Ratings)},
		{"registered users", "> 9,000", fmt.Sprint(s.Users)},
		{"undergraduates", "~ 6,500", fmt.Sprint(s.Undergrads)},
		{"university students", "~ 14,000", fmt.Sprint(s.DirectoryStudents)},
		{"departments", "(not stated)", fmt.Sprint(s.Departments)},
		{"forum questions", "(low traffic)", fmt.Sprint(s.Questions)},
	}
	b.WriteString(render.Table([]string{"metric", "paper", "here"}, rows))
	return b.String()
}

// GradeDivergence reproduces the §2.2 claim: official Engineering
// distributions are very close to self-reported ones. It reports the
// mean total-variation distance per school.
func (r *Runner) GradeDivergence() string {
	type agg struct {
		sum float64
		n   int
	}
	// Compare only courses with enough self-reports for the empirical
	// distribution to be meaningful — small classes are sampling noise
	// (and their charts are suppressed in the UI anyway).
	const minSelfReports = 30
	bySchool := map[string]*agg{}
	for _, d := range r.Site.Catalog.Departments() {
		for _, c := range r.Site.Catalog.CoursesByDept(d.ID) {
			if r.Site.Stats.SelfReportedDistribution(c.ID).Total < minSelfReports {
				continue
			}
			tv, ok := r.Site.Stats.Divergence(c.ID)
			if !ok {
				continue
			}
			a := bySchool[d.School]
			if a == nil {
				a = &agg{}
				bySchool[d.School] = a
			}
			a.sum += tv
			a.n++
		}
	}
	var b strings.Builder
	b.WriteString(header("§2.2 — official vs self-reported grade distributions (TV distance)"))
	schools := make([]string, 0, len(bySchool))
	for s := range bySchool {
		schools = append(schools, s)
	}
	sort.Strings(schools)
	rows := make([][]string, 0, len(schools))
	for _, s := range schools {
		a := bySchool[s]
		disclosed := "suppressed"
		if r.Site.Stats.Discloses(s) {
			disclosed = "disclosed"
		}
		rows = append(rows, []string{s, fmt.Sprintf("%.3f", a.sum/float64(a.n)), fmt.Sprint(a.n), disclosed})
	}
	b.WriteString(render.Table([]string{"school", "mean TV distance", "courses compared", "official policy"}, rows))
	b.WriteString("\npaper: \"the official Engineering grade distributions seem to be very close\n" +
		"to the corresponding self-reported ones\" — small distances reproduce it;\n" +
		"only Engineering's official charts are shown (others suppressed).\n")
	return b.String()
}

// Incentives exercises the §2.2 point scheme end to end and verifies
// the ledger arithmetic.
func (r *Runner) Incentives() (string, error) {
	svc := r.Site.Community
	asker, answerer, voter := "stu00001", "stu00002", "stu00003"
	ua, _ := svc.UserByUsername(asker)
	ub, _ := svc.UserByUsername(answerer)
	uc, _ := svc.UserByUsername(voter)
	base := map[int64]int{ua.ID: svc.Points(ua.ID), ub.ID: svc.Points(ub.ID), uc.ID: svc.Points(uc.ID)}

	// Two login days for the asker, one each for the others.
	for _, day := range []int64{101, 102} {
		if _, err := svc.Login(asker, day); err != nil {
			return "", err
		}
	}
	if _, err := svc.Login(answerer, 101); err != nil {
		return "", err
	}
	if _, err := svc.Login(voter, 101); err != nil {
		return "", err
	}
	qid, _, err := r.Site.QA.Ask(qa.Question{SuID: ua.ID, Title: "Which databases course first?", Text: "CS145 or CS245?", DepID: "CS"})
	if err != nil {
		return "", err
	}
	aid, err := r.Site.QA.Answer(qa.Answer{QID: qid, SuID: ub.ID, Text: "CS145; 245 assumes it."})
	if err != nil {
		return "", err
	}
	if err := r.Site.QA.Vote(aid, uc.ID); err != nil {
		return "", err
	}
	if err := r.Site.QA.MarkBest(qid, aid, ua.ID); err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString(header("§2.2 — incentive scheme (Yahoo! Answers scoring)"))
	rows := [][]string{
		{"best answer", fmt.Sprint(community.PointsBestAnswer), "10"},
		{"daily login", fmt.Sprint(community.PointsDailyLogin), "1"},
		{"vote that became best", fmt.Sprint(community.PointsVoteBecameBest), "1"},
	}
	b.WriteString(render.Table([]string{"action", "points here", "paper (Y! Answers)"}, rows))
	checks := []struct {
		name string
		id   int64
		want int
	}{
		{"asker (2 logins)", ua.ID, 2},
		{"answerer (1 login + best answer)", ub.ID, 1 + community.PointsBestAnswer},
		{"voter (1 login + winning vote)", uc.ID, 1 + community.PointsVoteBecameBest},
	}
	ok := true
	for _, c := range checks {
		got := svc.Points(c.id) - base[c.id]
		mark := "✓"
		if got != c.want {
			mark = "✗"
			ok = false
		}
		fmt.Fprintf(&b, "%-36s earned %2d (expected %2d) %s\n", c.name, got, c.want, mark)
	}
	fmt.Fprintf(&b, "ledger arithmetic verified: %v\n", ok)
	b.WriteString("\nLeaderboard (top 5):\n")
	for i, e := range svc.Leaderboard(5) {
		fmt.Fprintf(&b, "%2d. %-24s %4d points\n", i+1, e.User.Name, e.Points)
	}
	return b.String(), nil
}

// Evolution reports the §1 "how do such systems evolve over time?"
// metrics: activity per quarter, the largest rating drifts, contribution
// concentration, and catalog coverage.
func (r *Runner) Evolution() string {
	var b strings.Builder
	b.WriteString(header("§1 — system evolution: activity, drift, concentration, coverage"))
	rows := [][]string{}
	for _, q := range r.Site.Analytics.ActivityByQuarter() {
		rows = append(rows, []string{fmt.Sprintf("%s %d", q.Term, q.Year), fmt.Sprint(q.Comments), fmt.Sprint(q.Raters)})
	}
	b.WriteString(render.Table([]string{"quarter", "comments", "distinct commenters"}, rows))

	drifts := r.Site.Analytics.RatingDriftByCourse(3)
	b.WriteString("\nLargest sentiment drifts (≥3 rated comments per year):\n")
	n := len(drifts)
	if n > 5 {
		n = 5
	}
	driftRows := [][]string{}
	for _, d := range drifts[:n] {
		c, ok := r.Site.Catalog.Course(d.CourseID)
		if !ok {
			continue
		}
		driftRows = append(driftRows, []string{
			c.Code(), fmt.Sprintf("%.2f (%d)", d.FirstAvg, d.FirstYear),
			fmt.Sprintf("%.2f (%d)", d.LastAvg, d.LastYear), fmt.Sprintf("%+.2f", d.Delta),
		})
	}
	b.WriteString(render.Table([]string{"course", "first year avg", "last year avg", "drift"}, driftRows))

	con := r.Site.Analytics.ContributionConcentration()
	cov := r.Site.Analytics.CatalogCoverage()
	fmt.Fprintf(&b, "\ncontributors: %d · top-10%% share of comments: %.0f%% · Gini %.2f\n",
		con.Contributors, 100*con.Top10Share, con.Gini)
	fmt.Fprintf(&b, "catalog coverage: %.0f%% of %d courses have comments, %.0f%% have ratings\n",
		100*cov.CommentShare, cov.Courses, 100*cov.RatingShare)
	return b.String()
}

// AblationFlexVsHardcoded compares the FlexRecs CF workflow with the
// hard-coded recommender on identical inputs (A1): rankings must agree;
// the report shows both top lists.
func (r *Runner) AblationFlexVsHardcoded() (string, error) {
	hard := r.Site.Baseline.UserUserCF(r.Man.SampleStudent, 15, 8, false)
	tpl, _ := r.Site.Strategies.Get("cf-courses")
	wf, err := tpl.Build(map[string]any{"student": r.Man.SampleStudent, "k": 8, "neighbors": 15})
	if err != nil {
		return "", err
	}
	res, err := r.Site.Flex.Run(wf)
	if err != nil {
		return "", err
	}
	ci, si := res.MustCol("CourseID"), res.MustCol("Score")
	var b strings.Builder
	b.WriteString(header("A1 — declarative FlexRecs workflow vs hard-coded recommender"))
	rows := make([][]string, 0, 8)
	agree := true
	for i := 0; i < len(hard) && i < res.Len(); i++ {
		fid := res.Rows[i][ci].(int64)
		fsc := res.Rows[i][si].(float64)
		match := "≈"
		if diff := fsc - hard[i].Score; diff > 1e-6 || diff < -1e-6 {
			match = "≠"
			agree = false
		}
		rows = append(rows, []string{
			fmt.Sprintf("#%d", i+1),
			fmt.Sprintf("course %d (%.3f)", hard[i].ID, hard[i].Score),
			fmt.Sprintf("course %d (%.3f)", fid, fsc),
			match,
		})
	}
	b.WriteString(render.Table([]string{"rank", "hard-coded", "FlexRecs workflow", "score"}, rows))
	fmt.Fprintf(&b, "\nscore agreement at every rank: %v — the declarative layer costs\n"+
		"latency (see BenchmarkA1*), not quality.\n", agree)
	return b.String(), nil
}

// AblationCloudCost measures dynamic cloud computation against result
// set size (A2) — §3.1 asks "how can we dynamically and efficiently
// compute their data cloud?".
func (r *Runner) AblationCloudCost() (string, error) {
	res, err := r.Site.SearchCourses("american")
	if err != nil {
		return "", err
	}
	ix, err := r.Site.SearchIndex()
	if err != nil {
		return "", err
	}
	ids := res.IDs()
	var b strings.Builder
	b.WriteString(header("A2 — cloud computation vs result-set size"))
	rows := [][]string{}
	for _, n := range []int{10, 50, 100, len(ids)} {
		if n > len(ids) {
			n = len(ids)
		}
		c := cloud.Compute(ix.Text(), ids[:n], cloud.Options{MaxTerms: 30, Exclude: []string{"american"}})
		rows = append(rows, []string{fmt.Sprint(n), fmt.Sprint(len(c.Terms))})
	}
	b.WriteString(render.Table([]string{"result docs", "cloud terms"}, rows))
	b.WriteString("\nlatency per size is measured by BenchmarkA2CloudVsResultSize.\n")
	return b.String(), nil
}

// AblationEntitySearch contrasts entity search spanning relations with
// title-only search (A3): recall of themed courses.
func (r *Runner) AblationEntitySearch() (string, error) {
	full, err := r.Site.SearchCourses("american")
	if err != nil {
		return "", err
	}
	// Title-only index over the same catalog.
	tb, err := search.NewBuilder(search.EntityDef{Name: "title-only",
		Fields: []search.FieldSpec{{Name: "title", Weight: 1}}})
	if err != nil {
		return "", err
	}
	var berr error
	r.Site.Catalog.EachCourse(func(c catalog.Course) bool {
		berr = tb.Append(c.ID, "title", c.Title)
		return berr == nil
	})
	if berr != nil {
		return "", berr
	}
	titleIx, err := tb.Build()
	if err != nil {
		return "", err
	}
	titleOnly := titleIx.Search("american")
	var b strings.Builder
	b.WriteString(header("A3 — entity search spanning relations vs title-only (query: american)"))
	rows := [][]string{
		{"title-only tuples", fmt.Sprint(titleOnly.Total())},
		{"full entity (title+description+comments+instructors+dept)", fmt.Sprint(full.Total())},
	}
	b.WriteString(render.Table([]string{"index", "matches"}, rows))
	fmt.Fprintf(&b, "\nspanning relations finds %.1f× more of the themed courses — the\n"+
		"serendipity §3.1 motivates (the Greek-science-from-classics example).\n",
		float64(full.Total())/float64(max(1, titleOnly.Total())))
	return b.String(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

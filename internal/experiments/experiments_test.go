package experiments

import (
	"strings"
	"sync"
	"testing"

	"courserank/internal/datagen"
)

// The runner is expensive to build; share one across tests.
var (
	once   sync.Once
	shared *Runner
	genErr error
)

func runner(t *testing.T) *Runner {
	t.Helper()
	once.Do(func() { shared, genErr = NewRunner(datagen.Tiny()) })
	if genErr != nil {
		t.Fatal(genErr)
	}
	return shared
}

func TestTable1Report(t *testing.T) {
	out := runner(t).Table1()
	for _, want := range []string{"closed community", "user contributed + official", "10/10 CourseRank claims verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestFigure1Report(t *testing.T) {
	out := runner(t).Figure1()
	for _, want := range []string{"Figure 1", "CS106A", "Four-Year Plan", "Cumulative GPA"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 missing %q", want)
		}
	}
}

func TestFigure2Report(t *testing.T) {
	out := runner(t).Figure2()
	for _, want := range []string{"FlexRecs", "Course Cloud", "Req Tracker", "Book Exchange", "up"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q", want)
		}
	}
	if strings.Contains(out, "down") {
		t.Error("no component should be down")
	}
}

func TestFigure3And4Reports(t *testing.T) {
	r := runner(t)
	out3, res, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "courses returned for this search") {
		t.Error("Figure3 missing result header")
	}
	if res.Total() != r.Man.ThemedCourses {
		t.Errorf("Figure3 count = %d, want %d", res.Total(), r.Man.ThemedCourses)
	}
	out4, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out4, "Updated Course Cloud") {
		t.Error("Figure4 missing updated cloud")
	}
}

func TestFigure5Reports(t *testing.T) {
	r := runner(t)
	out, err := r.Figure5a()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SQL>", "Jaccard[Title]", "Introduction to Programming"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5a missing %q:\n%s", want, out)
		}
	}
	out, err = r.Figure5b()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"inv_Euclidean", "W_Avg", "predicted rating"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5b missing %q:\n%s", want, out)
		}
	}
}

func TestScaleStatsReport(t *testing.T) {
	out := runner(t).ScaleStats()
	for _, want := range []string{"18,605", "134,000", "50,300"} {
		if !strings.Contains(out, want) {
			t.Errorf("ScaleStats missing paper figure %q", want)
		}
	}
}

func TestGradeDivergenceReport(t *testing.T) {
	out := runner(t).GradeDivergence()
	if !strings.Contains(out, "Engineering") {
		t.Errorf("GradeDivergence missing Engineering row:\n%s", out)
	}
	if !strings.Contains(out, "disclosed") || !strings.Contains(out, "suppressed") {
		t.Error("GradeDivergence should show both disclosure policies")
	}
}

func TestIncentivesReport(t *testing.T) {
	out, err := runner(t).Incentives()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ledger arithmetic verified: true") {
		t.Errorf("incentive ledger failed:\n%s", out)
	}
}

func TestEvolutionReport(t *testing.T) {
	out := runner(t).Evolution()
	for _, want := range []string{"quarter", "comments", "Gini", "catalog coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("Evolution missing %q:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	r := runner(t)
	out, err := r.AblationFlexVsHardcoded()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "score agreement at every rank: true") {
		t.Errorf("A1 disagreement:\n%s", out)
	}
	out, err = r.AblationCloudCost()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cloud terms") {
		t.Error("A2 missing table")
	}
	out, err = r.AblationEntitySearch()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "title-only") {
		t.Error("A3 missing comparison")
	}
}

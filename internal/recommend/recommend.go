// Package recommend implements the classical, hard-coded recommenders
// that FlexRecs is contrasted against in §3.2: "the recommendation
// algorithm is typically embedded in the system code ... it is hard to
// modify the algorithm, or to experiment with different approaches."
// These baselines (popularity, user-user CF, item-item CF,
// content-based) produce the same mathematical results as the
// corresponding FlexRecs workflows — the ablation benchmarks measure
// what the declarative layer costs and the cross-check tests confirm
// the rankings agree.
package recommend

import (
	"slices"
	"sync"

	"courserank/internal/flexrecs"
	"courserank/internal/matview"
	"courserank/internal/relation"
	"courserank/internal/sqlmini"
	"courserank/internal/textindex"
)

// Scored pairs an item with a recommendation score.
type Scored struct {
	ID    int64
	Score float64
}

// byScore sorts best-first with id tie-breaks, matching FlexRecs'
// deterministic ordering.
func byScore(s []Scored) {
	slices.SortStableFunc(s, func(a, b Scored) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// RatingsViewName is the registry key of the per-student rating-vector
// view every collaborative recommender reads.
const RatingsViewName = "recommend/ratings-by-student"

// Engine computes recommendations directly against the store. Point
// lookups run as prepared statements — planned once, bound per call —
// so they ride the planner's index access paths without per-request
// parse/plan cost; the full-table rating aggregation is a matview
// materialized view keyed on the Comments table's fingerprint, so
// concurrent cold reads single-flight into one build and warm reads are
// an atomic snapshot load.
type Engine struct {
	db  *relation.DB
	sql *sqlmini.Engine

	mu          sync.Mutex
	views       *matview.Registry // lazily private unless UseViews supplied one
	ratingsView *matview.View     // resolved once per registry
	titleStmt   *sqlmini.Stmt     // pk lookup behind ContentSimilar
}

// New returns a baseline engine over the database with its own SQL
// engine (and plan cache).
func New(db *relation.DB) *Engine { return NewOver(db, sqlmini.New(db)) }

// NewOver returns a baseline engine executing through an existing SQL
// engine, sharing its plan cache with the other subsystems over the
// same database. Without UseViews the engine lazily creates a private
// view registry on first use.
func NewOver(db *relation.DB, sql *sqlmini.Engine) *Engine {
	return &Engine{db: db, sql: sql}
}

// UseViews routes the engine's materialized views through reg — the
// Site facade wiring, so the ratings view shows up beside the feed
// views in /api/views and shares the background refresher pool.
func (e *Engine) UseViews(reg *matview.Registry) {
	e.mu.Lock()
	e.views = reg
	e.ratingsView = nil // re-resolve against the new registry
	e.mu.Unlock()
}

// registry returns the wired registry, creating a private sync-only one
// on first use for engines running outside the Site facade. Caller
// holds e.mu.
func (e *Engine) registry() *matview.Registry {
	if e.views == nil {
		e.views = matview.NewRegistry(e.db, 1)
	}
	return e.views
}

// prepare lazily prepares one of the engine's statements. Preparation
// is deferred to first use because the engine is constructed before the
// schema is loaded; a failed prepare (table not created yet) is not
// cached, so the next call retries. Caller holds e.mu.
func (e *Engine) prepare(slot **sqlmini.Stmt, text string) (*sqlmini.Stmt, error) {
	if *slot != nil {
		return *slot, nil
	}
	st, err := e.sql.Prepare(text)
	if err != nil {
		return nil, err
	}
	*slot = st
	return st, nil
}

// ratingsBySuID returns every student's rating vector from the Comments
// table (SuID, CourseID, Rating), skipping unrated comments, served
// from the materialized view: warm reads are an atomic snapshot load,
// cold and invalidated reads single-flight into one rebuild no matter
// how many requests arrive at once. Callers must treat the returned
// vectors as read-only.
func (e *Engine) ratingsBySuID() map[int64]flexrecs.Vector {
	e.mu.Lock()
	v := e.ratingsView
	if v == nil {
		var err error
		v, err = e.registry().GetOrRegister(matview.Options{
			Name: RatingsViewName,
			Deps: []string{"Comments"},
			Mode: matview.Sync,
			Build: func() (any, error) { return e.buildRatings() },
		})
		if err != nil {
			e.mu.Unlock()
			return map[int64]flexrecs.Vector{}
		}
		e.ratingsView = v
	}
	e.mu.Unlock()
	val, _, err := v.Get()
	if err != nil {
		return map[int64]flexrecs.Vector{}
	}
	return val.(map[int64]flexrecs.Vector)
}

// buildRatings computes one ratings snapshot through a prepared Rows
// cursor. A missing Comments table yields an empty map (the view's
// fingerprint records the absence, so creating the table invalidates).
func (e *Engine) buildRatings() (map[int64]flexrecs.Vector, error) {
	out := map[int64]flexrecs.Vector{}
	if _, ok := e.db.Table("Comments"); !ok {
		return out, nil
	}
	// Prepare per build: the shared plan cache makes this one text-keyed
	// lookup, and a build is a full-table aggregation anyway.
	st, err := e.sql.Prepare(`SELECT SuID, CourseID, Rating FROM Comments`)
	if err != nil {
		return nil, err
	}
	rows, err := st.QueryRows()
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	for rows.Next() {
		var sid int64
		var cid, rating any
		if err := rows.Scan(&sid, &cid, &rating); err != nil {
			return nil, err
		}
		var val float64
		switch x := rating.(type) {
		case float64:
			val = x
		case int64:
			val = float64(x)
		default: // NULL: unrated comment
			continue
		}
		v, okv := out[sid]
		if !okv {
			v = flexrecs.Vector{}
			out[sid] = v
		}
		v[cid] = val
	}
	return out, rows.Err()
}

// Popularity ranks courses by mean rating, requiring at least minRaters
// ratings (damping single-rater courses out).
func (e *Engine) Popularity(minRaters, k int) []Scored {
	sums := map[int64]float64{}
	counts := map[int64]int{}
	for _, vec := range e.ratingsBySuID() {
		for cid, v := range vec {
			id := cid.(int64)
			sums[id] += v
			counts[id]++
		}
	}
	var out []Scored
	for id, sum := range sums {
		if counts[id] >= minRaters {
			out = append(out, Scored{ID: id, Score: sum / float64(counts[id])})
		}
	}
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SimilarStudents ranks other students by inverse Euclidean distance of
// rating vectors to the target student — the hard-coded equivalent of
// the lower recommend operator in Figure 5(b).
func (e *Engine) SimilarStudents(suID int64, k int) []Scored {
	return similarFrom(e.ratingsBySuID(), suID, k)
}

// similarFrom ranks students by similarity to suID over already-loaded
// rating vectors, letting UserUserCF reuse one load for both phases.
func similarFrom(vecs map[int64]flexrecs.Vector, suID int64, k int) []Scored {
	target, ok := vecs[suID]
	if !ok {
		return nil
	}
	var out []Scored
	for sid, v := range vecs {
		if sid == suID {
			continue
		}
		out = append(out, Scored{ID: sid, Score: flexrecs.InvEuclidean(target, v)})
	}
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// UserUserCF predicts course scores for a student as the
// similarity-weighted average of the k most similar students' ratings —
// the hard-coded equivalent of the full Figure 5(b) workflow. Courses
// the student already rated are excluded when excludeRated is set.
func (e *Engine) UserUserCF(suID int64, neighbors, k int, excludeRated bool) []Scored {
	vecs := e.ratingsBySuID()
	target := vecs[suID]
	sims := similarFrom(vecs, suID, neighbors)
	num := map[int64]float64{}
	den := map[int64]float64{}
	for _, s := range sims {
		if s.Score <= 0 {
			continue
		}
		for cid, v := range vecs[s.ID] {
			id := cid.(int64)
			num[id] += s.Score * v
			den[id] += s.Score
		}
	}
	var out []Scored
	for id, n := range num {
		if excludeRated && target != nil {
			if _, rated := target[int64(id)]; rated {
				continue
			}
		}
		out = append(out, Scored{ID: id, Score: n / den[id]})
	}
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ItemItemCF ranks courses by cosine similarity of their rater vectors
// to a target course ("students who liked this also liked...").
func (e *Engine) ItemItemCF(courseID int64, k int) []Scored {
	// Invert to course → (student → rating).
	byCourse := map[int64]flexrecs.Vector{}
	for sid, vec := range e.ratingsBySuID() {
		for cid, v := range vec {
			id := cid.(int64)
			cv, ok := byCourse[id]
			if !ok {
				cv = flexrecs.Vector{}
				byCourse[id] = cv
			}
			cv[sid] = v
		}
	}
	target, ok := byCourse[courseID]
	if !ok {
		return nil
	}
	var out []Scored
	for id, v := range byCourse {
		if id == courseID {
			continue
		}
		out = append(out, Scored{ID: id, Score: flexrecs.Cosine(target, v)})
	}
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ContentSimilar ranks courses by title Jaccard similarity to a target
// course — the hard-coded equivalent of Figure 5(a). The target row
// resolves through a prepared statement (a primary-key point lookup on
// Courses, planned once for every request) and its title tokenizes once
// for the whole comparison pass.
func (e *Engine) ContentSimilar(courseID int64, year int64, k int) []Scored {
	t, ok := e.db.Table("Courses")
	if !ok {
		return nil
	}
	sch := t.Schema()
	idIdx, titleIdx := sch.MustIndex("CourseID"), sch.MustIndex("Title")
	yearIdx, hasYear := sch.Index("Year")
	e.mu.Lock()
	st, err := e.prepare(&e.titleStmt, `SELECT Title FROM Courses WHERE CourseID = ?`)
	e.mu.Unlock()
	if err != nil {
		return nil
	}
	res, err := st.Query(courseID)
	if err != nil || len(res.Rows) == 0 {
		return nil
	}
	targetTitle, _ := res.Rows[0][0].(string)
	target := flexrecs.Tokens(targetTitle)
	var out []Scored
	t.Scan(func(_ int, r relation.Row) bool {
		if hasYear && year != 0 && r[yearIdx] != year {
			return true
		}
		id := r[idIdx].(int64)
		if id == courseID {
			return true
		}
		score := flexrecs.JaccardAgainst(textindex.Tokenize(r[titleIdx].(string)), target)
		out = append(out, Scored{ID: id, Score: score})
		return true
	})
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

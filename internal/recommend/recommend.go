// Package recommend implements the classical, hard-coded recommenders
// that FlexRecs is contrasted against in §3.2: "the recommendation
// algorithm is typically embedded in the system code ... it is hard to
// modify the algorithm, or to experiment with different approaches."
// These baselines (popularity, user-user CF, item-item CF,
// content-based) produce the same mathematical results as the
// corresponding FlexRecs workflows — the ablation benchmarks measure
// what the declarative layer costs and the cross-check tests confirm
// the rankings agree.
package recommend

import (
	"sort"

	"courserank/internal/flexrecs"
	"courserank/internal/relation"
)

// Scored pairs an item with a recommendation score.
type Scored struct {
	ID    int64
	Score float64
}

// byScore sorts best-first with id tie-breaks, matching FlexRecs'
// deterministic ordering.
func byScore(s []Scored) {
	sort.SliceStable(s, func(a, b int) bool {
		if s[a].Score != s[b].Score {
			return s[a].Score > s[b].Score
		}
		return s[a].ID < s[b].ID
	})
}

// Engine computes recommendations directly against the store.
type Engine struct {
	db *relation.DB
}

// New returns a baseline engine over the database.
func New(db *relation.DB) *Engine { return &Engine{db: db} }

// ratingsBySuID loads every student's rating vector from the Comments
// table (SuID, CourseID, Rating), skipping unrated comments.
func (e *Engine) ratingsBySuID() map[int64]flexrecs.Vector {
	out := map[int64]flexrecs.Vector{}
	t, ok := e.db.Table("Comments")
	if !ok {
		return out
	}
	sch := t.Schema()
	su, co, ra := sch.MustIndex("SuID"), sch.MustIndex("CourseID"), sch.MustIndex("Rating")
	t.Scan(func(_ int, r relation.Row) bool {
		if r[ra] == nil {
			return true
		}
		var val float64
		switch x := r[ra].(type) {
		case float64:
			val = x
		case int64:
			val = float64(x)
		default:
			return true
		}
		sid := r[su].(int64)
		v, okv := out[sid]
		if !okv {
			v = flexrecs.Vector{}
			out[sid] = v
		}
		v[r[co]] = val
		return true
	})
	return out
}

// Popularity ranks courses by mean rating, requiring at least minRaters
// ratings (damping single-rater courses out).
func (e *Engine) Popularity(minRaters, k int) []Scored {
	sums := map[int64]float64{}
	counts := map[int64]int{}
	for _, vec := range e.ratingsBySuID() {
		for cid, v := range vec {
			id := cid.(int64)
			sums[id] += v
			counts[id]++
		}
	}
	var out []Scored
	for id, sum := range sums {
		if counts[id] >= minRaters {
			out = append(out, Scored{ID: id, Score: sum / float64(counts[id])})
		}
	}
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SimilarStudents ranks other students by inverse Euclidean distance of
// rating vectors to the target student — the hard-coded equivalent of
// the lower recommend operator in Figure 5(b).
func (e *Engine) SimilarStudents(suID int64, k int) []Scored {
	vecs := e.ratingsBySuID()
	target, ok := vecs[suID]
	if !ok {
		return nil
	}
	var out []Scored
	for sid, v := range vecs {
		if sid == suID {
			continue
		}
		out = append(out, Scored{ID: sid, Score: flexrecs.InvEuclidean(target, v)})
	}
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// UserUserCF predicts course scores for a student as the
// similarity-weighted average of the k most similar students' ratings —
// the hard-coded equivalent of the full Figure 5(b) workflow. Courses
// the student already rated are excluded when excludeRated is set.
func (e *Engine) UserUserCF(suID int64, neighbors, k int, excludeRated bool) []Scored {
	vecs := e.ratingsBySuID()
	target := vecs[suID]
	sims := e.SimilarStudents(suID, neighbors)
	num := map[int64]float64{}
	den := map[int64]float64{}
	for _, s := range sims {
		if s.Score <= 0 {
			continue
		}
		for cid, v := range vecs[s.ID] {
			id := cid.(int64)
			num[id] += s.Score * v
			den[id] += s.Score
		}
	}
	var out []Scored
	for id, n := range num {
		if excludeRated && target != nil {
			if _, rated := target[int64(id)]; rated {
				continue
			}
		}
		out = append(out, Scored{ID: id, Score: n / den[id]})
	}
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ItemItemCF ranks courses by cosine similarity of their rater vectors
// to a target course ("students who liked this also liked...").
func (e *Engine) ItemItemCF(courseID int64, k int) []Scored {
	// Invert to course → (student → rating).
	byCourse := map[int64]flexrecs.Vector{}
	for sid, vec := range e.ratingsBySuID() {
		for cid, v := range vec {
			id := cid.(int64)
			cv, ok := byCourse[id]
			if !ok {
				cv = flexrecs.Vector{}
				byCourse[id] = cv
			}
			cv[sid] = v
		}
	}
	target, ok := byCourse[courseID]
	if !ok {
		return nil
	}
	var out []Scored
	for id, v := range byCourse {
		if id == courseID {
			continue
		}
		out = append(out, Scored{ID: id, Score: flexrecs.Cosine(target, v)})
	}
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ContentSimilar ranks courses by title Jaccard similarity to a target
// course — the hard-coded equivalent of Figure 5(a).
func (e *Engine) ContentSimilar(courseID int64, year int64, k int) []Scored {
	t, ok := e.db.Table("Courses")
	if !ok {
		return nil
	}
	sch := t.Schema()
	idIdx, titleIdx := sch.MustIndex("CourseID"), sch.MustIndex("Title")
	yearIdx, hasYear := sch.Index("Year")
	var targetTitle string
	found := false
	t.Scan(func(_ int, r relation.Row) bool {
		if r[idIdx] == courseID {
			targetTitle = r[titleIdx].(string)
			found = true
			return false
		}
		return true
	})
	if !found {
		return nil
	}
	var out []Scored
	t.Scan(func(_ int, r relation.Row) bool {
		if hasYear && year != 0 && r[yearIdx] != year {
			return true
		}
		id := r[idIdx].(int64)
		if id == courseID {
			return true
		}
		out = append(out, Scored{ID: id, Score: flexrecs.JaccardText(targetTitle, r[titleIdx].(string))})
		return true
	})
	byScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

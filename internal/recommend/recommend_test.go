package recommend

import (
	"testing"

	"courserank/internal/flexrecs"
	"courserank/internal/relation"
	"courserank/internal/sqlmini"
)

// paperDB mirrors the FlexRecs test fixture so the hard-coded engines
// can be cross-checked against the declarative workflows.
func paperDB(t *testing.T) *relation.DB {
	t.Helper()
	db := relation.NewDB()
	sq := sqlmini.New(db)
	stmts := []string{
		`CREATE TABLE Courses (CourseID INT NOT NULL, DepID TEXT, Title TEXT, Units INT, Year INT, PRIMARY KEY (CourseID))`,
		`CREATE TABLE Comments (SuID INT, CourseID INT, Year INT, Term TEXT, Text TEXT, Rating FLOAT, Date TEXT)`,
		`INSERT INTO Courses VALUES
			(1, 'CS', 'Introduction to Programming', 5, 2008),
			(2, 'CS', 'Introduction to Programming Methodology', 5, 2008),
			(3, 'CS', 'Advanced Programming', 4, 2008),
			(4, 'HIST', 'American History', 3, 2008)`,
		`INSERT INTO Comments VALUES
			(444, 1, 2008, 'Aut', 'great', 5, 'd'),
			(444, 2, 2008, 'Win', 'good', 4, 'd'),
			(444, 4, 2008, 'Spr', 'meh', 2, 'd'),
			(445, 1, 2008, 'Aut', 'great', 5, 'd'),
			(445, 2, 2008, 'Win', 'good', 4, 'd'),
			(445, 3, 2008, 'Spr', 'superb', 5, 'd'),
			(446, 1, 2008, 'Aut', 'awful', 1, 'd'),
			(446, 2, 2008, 'Win', 'bad', 1, 'd'),
			(446, 3, 2008, 'Spr', 'nope', 2, 'd'),
			(447, 3, 2008, 'Aut', 'fine', 4, 'd'),
			(448, 9, 2008, 'Aut', NULL, NULL, 'd')`,
	}
	for _, s := range stmts {
		if _, err := sq.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSimilarStudents(t *testing.T) {
	e := New(paperDB(t))
	sims := e.SimilarStudents(444, 0)
	if len(sims) != 3 {
		t.Fatalf("sims = %+v", sims)
	}
	if sims[0].ID != 445 || sims[0].Score != 1.0 {
		t.Errorf("most similar = %+v", sims[0])
	}
	if sims[len(sims)-1].ID != 447 || sims[len(sims)-1].Score != 0 {
		t.Errorf("least similar = %+v", sims[len(sims)-1])
	}
	if got := e.SimilarStudents(999, 0); got != nil {
		t.Error("unknown student should return nil")
	}
	if got := e.SimilarStudents(444, 1); len(got) != 1 {
		t.Error("limit")
	}
}

// TestCrossCheckUserUserCFAgainstFlexRecs verifies the A1 ablation
// premise: the hard-coded CF and the Figure 5(b) workflow agree.
func TestCrossCheckUserUserCFAgainstFlexRecs(t *testing.T) {
	db := paperDB(t)
	hard := New(db).UserUserCF(444, 2, 0, false)

	fe := flexrecs.NewEngine(db)
	ratings := flexrecs.Rel("Comments").Project("SuID", "CourseID", "Rating")
	similar := flexrecs.Recommend(
		ratings.Select("SuID <> 444").Extend("SuID", "CourseID", "Rating", "Ratings"),
		ratings.Select("SuID = 444").Extend("SuID", "CourseID", "Rating", "Ratings"),
		flexrecs.InvEuclideanOn("Ratings"),
	)
	wf := flexrecs.Recommend(
		flexrecs.Rel("Courses").Select("Year = 2008"),
		similar.Top(2),
		flexrecs.WeightedAvg("CourseID", "Ratings", "Score"),
	)
	res, err := fe.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	ci, si := res.MustCol("CourseID"), res.MustCol("Score")
	flexScores := map[int64]float64{}
	for _, r := range res.Rows {
		flexScores[r[ci].(int64)] = r[si].(float64)
	}
	for _, h := range hard {
		fs, ok := flexScores[h.ID]
		if !ok {
			continue // flex targets only 2008 catalog courses
		}
		if diff := fs - h.Score; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("course %d: hardcoded %v vs flexrecs %v", h.ID, h.Score, fs)
		}
	}
	if len(hard) == 0 {
		t.Fatal("hardcoded CF returned nothing")
	}
}

func TestUserUserCFExcludeRated(t *testing.T) {
	e := New(paperDB(t))
	all := e.UserUserCF(444, 2, 0, false)
	excl := e.UserUserCF(444, 2, 0, true)
	if len(excl) >= len(all) {
		t.Errorf("excludeRated should shrink results: %d vs %d", len(excl), len(all))
	}
	for _, s := range excl {
		if s.ID == 1 || s.ID == 2 || s.ID == 4 {
			t.Errorf("already-rated course %d recommended", s.ID)
		}
	}
}

func TestPopularity(t *testing.T) {
	e := New(paperDB(t))
	top := e.Popularity(2, 0)
	// Course 1 ratings: 5,5,1 → 11/3. Course 2: 4,4,1 → 3. Course 3:
	// 5,2,4 → 11/3. Course 4 has one rating (min 2 filters it).
	for _, s := range top {
		if s.ID == 4 {
			t.Error("min raters filter failed")
		}
	}
	if len(top) != 3 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].ID != 1 { // ties broken by id: course 1 before 3
		t.Errorf("top = %+v", top)
	}
	if got := e.Popularity(2, 1); len(got) != 1 {
		t.Error("limit")
	}
}

func TestItemItemCF(t *testing.T) {
	e := New(paperDB(t))
	sims := e.ItemItemCF(1, 0)
	if len(sims) == 0 {
		t.Fatal("no similar items")
	}
	// Course 2's rater vector is nearly parallel to course 1's
	// (5,5,1)·(4,4,1): highly similar.
	if sims[0].ID != 2 {
		t.Errorf("most similar item = %+v", sims[0])
	}
	if got := e.ItemItemCF(12345, 0); got != nil {
		t.Error("unknown course should return nil")
	}
}

func TestContentSimilar(t *testing.T) {
	e := New(paperDB(t))
	sims := e.ContentSimilar(1, 2008, 0)
	if len(sims) != 3 {
		t.Fatalf("sims = %+v", sims)
	}
	if sims[0].ID != 2 {
		t.Errorf("most title-similar = %+v", sims[0])
	}
	if sims[len(sims)-1].ID != 4 || sims[len(sims)-1].Score != 0 {
		t.Errorf("least similar = %+v", sims[len(sims)-1])
	}
	if got := e.ContentSimilar(999, 2008, 0); got != nil {
		t.Error("unknown target course")
	}
	if got := e.ContentSimilar(1, 2008, 2); len(got) != 2 {
		t.Error("limit")
	}
}

func TestEmptyDB(t *testing.T) {
	e := New(relation.NewDB())
	if e.Popularity(1, 0) != nil || e.SimilarStudents(1, 0) != nil || e.ItemItemCF(1, 0) != nil || e.ContentSimilar(1, 0, 0) != nil {
		t.Error("missing tables should yield nil results")
	}
}

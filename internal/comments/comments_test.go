package comments

import (
	"testing"

	"courserank/internal/relation"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Setup(relation.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddAndFetch(t *testing.T) {
	s := newStore(t)
	id, err := s.Add(Comment{SuID: 444, CourseID: 1, Year: 2008, Term: "Autumn", Text: "great intro course", Rating: 5, Date: "2008-10-01"})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("id = %d", id)
	}
	if _, err := s.Add(Comment{SuID: 444, CourseID: 1, Year: 2008, Term: "Aut", Text: ""}); err == nil {
		t.Error("empty text should fail")
	}
	if _, err := s.Add(Comment{SuID: 444, CourseID: 1, Year: 2008, Term: "Aut", Text: "x", Rating: 6}); err == nil {
		t.Error("rating 6 should fail")
	}
	if _, err := s.Add(Comment{SuID: 444, CourseID: 1, Year: 2008, Term: "Aut", Text: "unrated comment"}); err != nil {
		t.Errorf("rating 0 means unrated: %v", err)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	by := s.ByStudent(444)
	if len(by) != 2 {
		t.Errorf("ByStudent = %d", len(by))
	}
	if by[0].Rating != 5 || by[1].Rating != 0 {
		t.Errorf("ratings = %v, %v", by[0].Rating, by[1].Rating)
	}
}

func TestRatingsUpsertAndAvg(t *testing.T) {
	s := newStore(t)
	if err := s.Rate(1, 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Rate(2, 10, 2); err != nil {
		t.Fatal(err)
	}
	if avg, n := s.AvgRating(10); n != 2 || avg != 3 {
		t.Errorf("avg = %v, n = %d", avg, n)
	}
	// Re-rating replaces, not duplicates.
	if err := s.Rate(1, 10, 5); err != nil {
		t.Fatal(err)
	}
	if avg, n := s.AvgRating(10); n != 2 || avg != 3.5 {
		t.Errorf("after upsert: avg = %v, n = %d", avg, n)
	}
	if s.RatingCount() != 2 {
		t.Errorf("RatingCount = %d", s.RatingCount())
	}
	if err := s.Rate(1, 10, 0); err == nil {
		t.Error("rating 0 should fail")
	}
	if avg, n := s.AvgRating(99); avg != 0 || n != 0 {
		t.Error("unrated course")
	}
}

func TestAccuracyVotesAndQuality(t *testing.T) {
	s := newStore(t)
	id, _ := s.Add(Comment{SuID: 1, CourseID: 5, Year: 2008, Term: "Aut", Text: "solid"})
	// Unvoted comments sit at the 0.5 prior.
	if q := s.Quality(id); q != 0.5 {
		t.Errorf("prior quality = %v", q)
	}
	if err := s.VoteAccuracy(id, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := s.VoteAccuracy(id, 3, true); err != nil {
		t.Fatal(err)
	}
	if err := s.VoteAccuracy(id, 4, false); err != nil {
		t.Fatal(err)
	}
	acc, inacc := s.Votes(id)
	if acc != 2 || inacc != 1 {
		t.Errorf("votes = %d, %d", acc, inacc)
	}
	if q := s.Quality(id); q != 3.0/5.0 {
		t.Errorf("quality = %v", q)
	}
	// Changing one's vote replaces it.
	if err := s.VoteAccuracy(id, 4, true); err != nil {
		t.Fatal(err)
	}
	acc, inacc = s.Votes(id)
	if acc != 3 || inacc != 0 {
		t.Errorf("after vote change: %d, %d", acc, inacc)
	}
	if err := s.VoteAccuracy(999, 1, true); err == nil {
		t.Error("vote on missing comment should fail")
	}
}

func TestByCourseOrdersByQuality(t *testing.T) {
	s := newStore(t)
	low, _ := s.Add(Comment{SuID: 1, CourseID: 7, Year: 2008, Term: "Aut", Text: "bad info"})
	high, _ := s.Add(Comment{SuID: 2, CourseID: 7, Year: 2008, Term: "Aut", Text: "accurate info"})
	s.VoteAccuracy(low, 3, false)
	s.VoteAccuracy(high, 3, true)
	s.VoteAccuracy(high, 4, true)
	got := s.ByCourse(7)
	if len(got) != 2 || got[0].ID != high || got[1].ID != low {
		t.Errorf("order = %v", got)
	}
	if len(s.ByCourse(999)) != 0 {
		t.Error("missing course should be empty")
	}
}

// Package comments manages CourseRank's user-contributed evaluations:
// course comments (with optional ratings), standalone ratings, and the
// accuracy votes students cast on each other's comments (§2 "rank the
// accuracy of each others' comments"). Comment quality scores drive
// display order; the closed community's higher-quality contributions
// (§2.2) are measurable through them.
package comments

import (
	"fmt"
	"sort"

	"courserank/internal/relation"
)

// Comment is one course evaluation, following the paper's schema
// Comments(SuID, CourseID, Year, Term, Text, Rating, Date).
type Comment struct {
	ID       int64
	SuID     int64
	CourseID int64
	Year     int64
	Term     string
	Text     string
	Rating   float64 // 0 means unrated
	Date     string
}

// Store provides typed access to the evaluation tables.
type Store struct {
	db *relation.DB
}

// Setup creates the comment, rating and vote tables.
func Setup(db *relation.DB) (*Store, error) {
	tables := []*relation.Table{
		relation.MustTable("Comments",
			relation.NewSchema(
				relation.NotNullCol("CommentID", relation.TypeInt),
				relation.NotNullCol("SuID", relation.TypeInt),
				relation.NotNullCol("CourseID", relation.TypeInt),
				relation.NotNullCol("Year", relation.TypeInt),
				relation.NotNullCol("Term", relation.TypeString),
				relation.NotNullCol("Text", relation.TypeString),
				relation.Col("Rating", relation.TypeFloat),
				relation.Col("Date", relation.TypeString),
			), relation.WithPrimaryKey("CommentID"), relation.WithAutoIncrement("CommentID"),
			relation.WithIndex("CourseID"), relation.WithIndex("SuID"),
			// "Best rated first" feeds compile to ORDER BY Rating DESC over
			// a Rating >= ? range; the ordered index lets the SQL planner
			// answer both with one descending index walk, sort elided.
			relation.WithOrderedIndex("Rating")),
		relation.MustTable("Ratings",
			relation.NewSchema(
				relation.NotNullCol("SuID", relation.TypeInt),
				relation.NotNullCol("CourseID", relation.TypeInt),
				relation.NotNullCol("Rating", relation.TypeFloat),
			), relation.WithPrimaryKey("SuID", "CourseID"), relation.WithIndex("CourseID")),
		relation.MustTable("CommentVotes",
			relation.NewSchema(
				relation.NotNullCol("CommentID", relation.TypeInt),
				relation.NotNullCol("SuID", relation.TypeInt),
				relation.NotNullCol("Accurate", relation.TypeBool),
			), relation.WithPrimaryKey("CommentID", "SuID"), relation.WithIndex("CommentID")),
	}
	for _, t := range tables {
		if _, err := db.Ensure(t); err != nil {
			return nil, err
		}
	}
	return &Store{db: db}, nil
}

// Open wraps a database whose tables already exist.
func Open(db *relation.DB) *Store { return &Store{db: db} }

// Add stores a comment and returns its id. Ratings must be 0 (absent)
// or within [1,5].
func (s *Store) Add(c Comment) (int64, error) {
	if c.Text == "" {
		return 0, fmt.Errorf("comments: empty comment text")
	}
	if c.Rating != 0 && (c.Rating < 1 || c.Rating > 5) {
		return 0, fmt.Errorf("comments: rating %v out of range [1,5]", c.Rating)
	}
	var rating relation.Value
	if c.Rating != 0 {
		rating = c.Rating
	}
	row, err := s.db.MustTable("Comments").InsertGet(relation.Row{
		nil, c.SuID, c.CourseID, c.Year, c.Term, c.Text, rating, c.Date,
	})
	if err != nil {
		return 0, err
	}
	return row[0].(int64), nil
}

func commentFromRow(r relation.Row) Comment {
	var rating float64
	if r[6] != nil {
		rating = r[6].(float64)
	}
	var date string
	if r[7] != nil {
		date = r[7].(string)
	}
	return Comment{
		ID: r[0].(int64), SuID: r[1].(int64), CourseID: r[2].(int64),
		Year: r[3].(int64), Term: r[4].(string), Text: r[5].(string),
		Rating: rating, Date: date,
	}
}

// ByCourse returns a course's comments ordered by quality score (best
// first; ties by id for determinism).
func (s *Store) ByCourse(courseID int64) []Comment {
	rows := s.db.MustTable("Comments").Lookup("CourseID", courseID)
	out := make([]Comment, len(rows))
	for i, r := range rows {
		out[i] = commentFromRow(r)
	}
	sort.Slice(out, func(a, b int) bool {
		qa, qb := s.Quality(out[a].ID), s.Quality(out[b].ID)
		if qa != qb {
			return qa > qb
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// ByStudent returns the student's comments in insertion order.
func (s *Store) ByStudent(suID int64) []Comment {
	rows := s.db.MustTable("Comments").Lookup("SuID", suID)
	out := make([]Comment, len(rows))
	for i, r := range rows {
		out[i] = commentFromRow(r)
	}
	return out
}

// Count returns the total number of comments — the paper's "134,000
// comments".
func (s *Store) Count() int { return s.db.MustTable("Comments").Len() }

// Rate records a student's standalone rating of a course, overwriting
// any previous rating by the same student.
func (s *Store) Rate(suID, courseID int64, rating float64) error {
	if rating < 1 || rating > 5 {
		return fmt.Errorf("comments: rating %v out of range [1,5]", rating)
	}
	t := s.db.MustTable("Ratings")
	if _, exists := t.Get(suID, courseID); exists {
		return t.UpdateByKey([]relation.Value{suID, courseID},
			func(r relation.Row) relation.Row { r[2] = rating; return r })
	}
	_, err := t.Insert(relation.Row{suID, courseID, rating})
	return err
}

// RatingCount returns the number of standalone ratings — the paper's
// "over 50,300 ratings".
func (s *Store) RatingCount() int { return s.db.MustTable("Ratings").Len() }

// AvgRating returns the mean standalone rating of a course and the
// number of raters.
func (s *Store) AvgRating(courseID int64) (float64, int) {
	rows := s.db.MustTable("Ratings").Lookup("CourseID", courseID)
	if len(rows) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r[2].(float64)
	}
	return sum / float64(len(rows)), len(rows)
}

// VoteAccuracy records one student's accuracy judgment of a comment,
// overwriting their previous vote.
func (s *Store) VoteAccuracy(commentID, voterID int64, accurate bool) error {
	if _, ok := s.db.MustTable("Comments").Get(commentID); !ok {
		return fmt.Errorf("comments: no comment %d", commentID)
	}
	t := s.db.MustTable("CommentVotes")
	if _, exists := t.Get(commentID, voterID); exists {
		return t.UpdateByKey([]relation.Value{commentID, voterID},
			func(r relation.Row) relation.Row { r[2] = accurate; return r })
	}
	_, err := t.Insert(relation.Row{commentID, voterID, accurate})
	return err
}

// Votes returns a comment's (accurate, inaccurate) vote counts.
func (s *Store) Votes(commentID int64) (accurate, inaccurate int) {
	for _, r := range s.db.MustTable("CommentVotes").Lookup("CommentID", commentID) {
		if r[2].(bool) {
			accurate++
		} else {
			inaccurate++
		}
	}
	return accurate, inaccurate
}

// Quality scores a comment in [0,1] by a Laplace-smoothed accuracy
// ratio: (accurate+1) / (accurate+inaccurate+2). Unvoted comments sit
// at the 0.5 prior.
func (s *Store) Quality(commentID int64) float64 {
	acc, inacc := s.Votes(commentID)
	return float64(acc+1) / float64(acc+inacc+2)
}

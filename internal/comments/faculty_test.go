package comments

import (
	"testing"

	"courserank/internal/relation"
)

func facultyStore(t *testing.T) *Store {
	t.Helper()
	s, err := Setup(relation.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetupFaculty(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRespond(t *testing.T) {
	s := facultyStore(t)
	cid, _ := s.Add(Comment{SuID: 1, CourseID: 9, Year: 2008, Term: "Aut", Text: "the midterm was unfair"})
	rid, err := s.Respond(cid, 77, "the median was a B+; regrade requests open Friday")
	if err != nil {
		t.Fatal(err)
	}
	if rid == 0 {
		t.Error("response id")
	}
	if _, err := s.Respond(999, 77, "x"); err == nil {
		t.Error("response to missing comment should fail")
	}
	if _, err := s.Respond(cid, 77, ""); err == nil {
		t.Error("empty response should fail")
	}
	got := s.Responses(cid)
	if len(got) != 1 || got[0].InstructorID != 77 {
		t.Errorf("responses = %+v", got)
	}
	// Multiple responses keep order.
	s.Respond(cid, 78, "also see the solutions handout")
	got = s.Responses(cid)
	if len(got) != 2 || got[0].ID > got[1].ID {
		t.Errorf("order: %+v", got)
	}
}

func TestCourseNotes(t *testing.T) {
	s := facultyStore(t)
	nid, err := s.AddNote(5, 77, "This year we switch to Python; see the new syllabus.")
	if err != nil {
		t.Fatal(err)
	}
	if nid == 0 {
		t.Error("note id")
	}
	if _, err := s.AddNote(5, 77, ""); err == nil {
		t.Error("empty note should fail")
	}
	notes := s.Notes(5)
	if len(notes) != 1 || notes[0].InstructorID != 77 {
		t.Errorf("notes = %+v", notes)
	}
	if len(s.Notes(999)) != 0 {
		t.Error("missing course notes should be empty")
	}
}

// Setup is idempotent: a second SetupFaculty adopts the existing
// tables (the durable-reopen path, where recovery has already created
// them) instead of failing, and loses no data.
func TestSetupFacultyTwiceAdopts(t *testing.T) {
	s := facultyStore(t)
	if _, err := s.AddNote(5, 77, "keep me"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetupFaculty(); err != nil {
		t.Errorf("repeated SetupFaculty should adopt existing tables: %v", err)
	}
	if notes := s.Notes(5); len(notes) != 1 {
		t.Errorf("adopted tables lost data: %+v", notes)
	}
}

package comments

import (
	"fmt"
	"sort"

	"courserank/internal/relation"
)

// Faculty participation (§2 "Interaction for Constituents"): instructors
// can respond to student comments on their courses and attach notes to
// their own course pages — "updates to the official course description
// and pointers to other useful materials that may help students decide
// if the course is for them".

// Response is an instructor's reply to a student comment.
type Response struct {
	ID           int64
	CommentID    int64
	InstructorID int64
	Text         string
}

// CourseNote is an instructor-authored addendum to a course page.
type CourseNote struct {
	ID           int64
	CourseID     int64
	InstructorID int64
	Text         string
}

// SetupFaculty creates the faculty-participation tables. Call once,
// after Setup, on the same database.
func (s *Store) SetupFaculty() error {
	tables := []*relation.Table{
		relation.MustTable("CommentResponses",
			relation.NewSchema(
				relation.NotNullCol("ResponseID", relation.TypeInt),
				relation.NotNullCol("CommentID", relation.TypeInt),
				relation.NotNullCol("InstructorID", relation.TypeInt),
				relation.NotNullCol("Text", relation.TypeString),
			), relation.WithPrimaryKey("ResponseID"), relation.WithAutoIncrement("ResponseID"), relation.WithIndex("CommentID")),
		relation.MustTable("CourseNotes",
			relation.NewSchema(
				relation.NotNullCol("NoteID", relation.TypeInt),
				relation.NotNullCol("CourseID", relation.TypeInt),
				relation.NotNullCol("InstructorID", relation.TypeInt),
				relation.NotNullCol("Text", relation.TypeString),
			), relation.WithPrimaryKey("NoteID"), relation.WithAutoIncrement("NoteID"), relation.WithIndex("CourseID")),
	}
	for _, t := range tables {
		if _, err := s.db.Ensure(t); err != nil {
			return err
		}
	}
	return nil
}

// Respond records an instructor's reply to a comment.
func (s *Store) Respond(commentID, instructorID int64, text string) (int64, error) {
	if text == "" {
		return 0, fmt.Errorf("comments: empty response")
	}
	if _, ok := s.db.MustTable("Comments").Get(commentID); !ok {
		return 0, fmt.Errorf("comments: no comment %d", commentID)
	}
	row, err := s.db.MustTable("CommentResponses").InsertGet(relation.Row{nil, commentID, instructorID, text})
	if err != nil {
		return 0, err
	}
	return row[0].(int64), nil
}

// Responses lists the instructor replies to a comment, oldest first.
func (s *Store) Responses(commentID int64) []Response {
	rows := s.db.MustTable("CommentResponses").Lookup("CommentID", commentID)
	out := make([]Response, len(rows))
	for i, r := range rows {
		out[i] = Response{ID: r[0].(int64), CommentID: r[1].(int64), InstructorID: r[2].(int64), Text: r[3].(string)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// AddNote attaches an instructor note to a course page.
func (s *Store) AddNote(courseID, instructorID int64, text string) (int64, error) {
	if text == "" {
		return 0, fmt.Errorf("comments: empty note")
	}
	row, err := s.db.MustTable("CourseNotes").InsertGet(relation.Row{nil, courseID, instructorID, text})
	if err != nil {
		return 0, err
	}
	return row[0].(int64), nil
}

// Notes lists a course's instructor notes, oldest first.
func (s *Store) Notes(courseID int64) []CourseNote {
	rows := s.db.MustTable("CourseNotes").Lookup("CourseID", courseID)
	out := make([]CourseNote, len(rows))
	for i, r := range rows {
		out[i] = CourseNote{ID: r[0].(int64), CourseID: r[1].(int64), InstructorID: r[2].(int64), Text: r[3].(string)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

package render

import (
	"strings"
	"testing"

	"courserank/internal/catalog"
	"courserank/internal/cloud"
	"courserank/internal/core"
	"courserank/internal/datagen"
	"courserank/internal/planner"
)

func tinySite(t *testing.T) (*core.Site, *datagen.Manifest) {
	t.Helper()
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	man, err := datagen.Populate(site, datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return site, man
}

func TestCoursePage(t *testing.T) {
	site, man := tinySite(t)
	page, err := CoursePage(site, man.Planted["intro-programming"])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CS106A", "Introduction to Programming", "Student rating", "grade distribution"} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}
	if _, err := CoursePage(site, 999999); err == nil {
		t.Error("missing course should error")
	}
}

func TestPlanRendering(t *testing.T) {
	site, man := tinySite(t)
	out := Plan(site, man.SampleStudent)
	for _, want := range []string{"Four-Year Plan", "Cumulative GPA", "Autumn"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
}

func TestPlanShowsPrereqViolations(t *testing.T) {
	site, man := tinySite(t)
	// Fabricate a violation: a fresh student plans 106B with no 106A.
	su := int64(999999)
	err := site.Planner.Record(planner.Entry{
		SuID: su, CourseID: man.Planted["programming-abstractions"],
		Year: 2008, Term: catalog.Autumn, Planned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := Plan(site, su)
	if !strings.Contains(out, "prerequisite issues") {
		t.Errorf("plan should flag prereq violation:\n%s", out)
	}
}

func TestCloudRendering(t *testing.T) {
	c := &cloud.Cloud{Terms: []cloud.Term{
		{Text: "latin american", Weight: 5},
		{Text: "politics", Weight: 4},
		{Text: "history", Weight: 1},
	}}
	out := Cloud(c)
	if !strings.Contains(out, "LATIN AMERICAN") {
		t.Errorf("weight-5 term should be upper-cased: %s", out)
	}
	if !strings.Contains(out, "Politics") {
		t.Errorf("weight-4 term should be title-cased: %s", out)
	}
	if !strings.Contains(out, "history") {
		t.Errorf("weight-1 term should stay lower: %s", out)
	}
	if Cloud(&cloud.Cloud{}) != "(empty cloud)" {
		t.Error("empty cloud rendering")
	}
}

func TestSearchResultsRendering(t *testing.T) {
	site, _ := tinySite(t)
	res, err := site.SearchCourses("american")
	if err != nil {
		t.Fatal(err)
	}
	out := SearchResults(site, res, 3)
	if !strings.Contains(out, "courses returned for this search") {
		t.Errorf("missing figure-3 header: %s", out)
	}
	if strings.Count(out, "\n") < 3 {
		t.Errorf("expected at least 3 result lines: %s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"x", "y"}, {"longer", "z"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a") {
		t.Errorf("header: %q", lines[0])
	}
}

func TestHelpers(t *testing.T) {
	if clip("hello", 10) != "hello" {
		t.Error("clip no-op")
	}
	if got := clip("hello world", 8); len([]rune(got)) != 8 {
		t.Errorf("clip = %q", got)
	}
	if stars(4.6) != "★★★★★" {
		t.Errorf("stars = %q", stars(4.6))
	}
	if stars(0) != "☆☆☆☆☆" {
		t.Errorf("stars(0) = %q", stars(0))
	}
	if titleCase("latin american") != "Latin American" {
		t.Error("titleCase")
	}
	w := wrap("one two three four five", 9)
	for _, line := range strings.Split(w, "\n") {
		if len(line) > 9 {
			t.Errorf("wrap produced long line %q", line)
		}
	}
	if wrap("", 5) != "" {
		t.Error("wrap empty")
	}
	keys := Sorted(map[string]int{"b": 1, "a": 2})
	if keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Sorted = %v", keys)
	}
}
